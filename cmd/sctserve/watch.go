package main

// Watch mode: `sctserve -watch -connect http://HOST:PORT` polls a running
// coordinator's GET /v1/status and prints one progress line to stderr per
// change. It exits clean when the coordinator goes away (the job ended and
// the server shut down) or on interrupt, and with an error when it never
// managed to reach the coordinator at all.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"sctbench/internal/dist"
)

// watchStartupPolls is how many failed polls watch tolerates before
// concluding the coordinator was never there (covers starting the watcher
// a moment before the coordinator binds its port).
const watchStartupPolls = 20

// watchLine renders one status snapshot as the progress line the CLI test
// asserts on.
func watchLine(st dist.StatusReply) string {
	return fmt.Sprintf("watch: phase=%s bound=%d units=%d/%d leases=%d schedules=%d workers=%d",
		st.Phase, st.Bound, st.UnitsDone, st.UnitsTotal, st.Leases, st.Schedules, st.Workers)
}

func runWatch(connect string, interval time.Duration, interrupt <-chan struct{}, stderr io.Writer) int {
	if connect == "" {
		fmt.Fprintln(stderr, "-watch needs -connect http://HOST:PORT")
		return exitError
	}
	client := &http.Client{Timeout: 5 * time.Second}
	connected := false
	failures := 0
	last := ""
	for {
		st, err := pollStatus(client, connect)
		switch {
		case err == nil:
			connected = true
			failures = 0
			if line := watchLine(st); line != last {
				fmt.Fprintln(stderr, line)
				last = line
			}
		case connected:
			// The coordinator served us before and is gone now: the job
			// ended and the server shut down.
			fmt.Fprintln(stderr, "watch: coordinator gone, job over")
			return exitClean
		default:
			if failures++; failures >= watchStartupPolls {
				fmt.Fprintf(stderr, "watch: cannot reach coordinator at %s: %v\n", connect, err)
				return exitError
			}
		}
		select {
		case <-interrupt:
			return exitClean
		case <-time.After(interval):
		}
	}
}

func pollStatus(client *http.Client, addr string) (dist.StatusReply, error) {
	var st dist.StatusReply
	resp, err := client.Get(addr + "/v1/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status endpoint returned %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}
