package vthread

import "fmt"

// FailureKind classifies the bug classes of the study (§5: "Bugs are
// deadlocks, crashes or assertion failures (including those that identify
// incorrect output)").
type FailureKind int

const (
	// FailAssert is an assertion failure, including output-checker failures.
	FailAssert FailureKind = iota
	// FailDeadlock is a global deadlock: no thread enabled, some blocked.
	FailDeadlock
	// FailCrash is a modelled memory-safety crash: double unlock, use of a
	// destroyed object, out-of-bounds access with checking enabled.
	FailCrash
	// FailPanic is a Go panic escaping a program body (closure or
	// compiled-instruction operand): recovered by the engine, reported as a
	// found bug with the trace intact, and replayable like any other
	// failure. Panics in the substrate or a Chooser are NOT converted —
	// those crash loudly, as implementation bugs should.
	FailPanic
)

// String returns the human-readable kind.
func (k FailureKind) String() string {
	switch k {
	case FailAssert:
		return "assertion"
	case FailDeadlock:
		return "deadlock"
	case FailCrash:
		return "crash"
	case FailPanic:
		return "panic"
	}
	return "unknown"
}

// Failure describes a bug exposed by an execution.
type Failure struct {
	// Kind classifies the failure.
	Kind FailureKind
	// Thread is the thread that triggered the failure (for deadlocks, the
	// lowest-id blocked thread).
	Thread ThreadID
	// Message is a human-readable description from the failing check.
	Message string
}

// Error implements the error interface so failures flow naturally through
// test helpers.
func (f *Failure) Error() string {
	return fmt.Sprintf("%s in T%d: %s", f.Kind, f.Thread, f.Message)
}
