// sleepset demonstrates the partial-order-reduction extension (§7 of the
// paper names POR as the natural follow-up to the study) and the
// witness-minimisation workflow: find a bug with plain DFS, compare the
// schedule counts against sleep-set DFS, then simplify the witness to a
// minimal-preemption trace.
//
//	go run ./examples/sleepset
package main

import (
	"fmt"

	sctbench "sctbench"
)

// mixed has three workers: two touch only private state (their
// interleavings all commute — pure schedule-space waste for DFS) and one
// pair races on a shared flag.
func mixed() sctbench.Program {
	return func(t0 *sctbench.Thread) {
		shared := t0.NewVar("shared", 0)
		private1 := t0.NewVar("private1", 0)
		private2 := t0.NewVar("private2", 0)
		ts := []*sctbench.Thread{
			t0.Spawn(func(tw *sctbench.Thread) {
				for i := 0; i < 4; i++ {
					private1.Add(tw, 1)
				}
			}),
			t0.Spawn(func(tw *sctbench.Thread) {
				for i := 0; i < 4; i++ {
					private2.Add(tw, 1)
				}
			}),
			t0.Spawn(func(tw *sctbench.Thread) {
				shared.Add(tw, 1) // racy read-modify-write
			}),
			t0.Spawn(func(tw *sctbench.Thread) {
				shared.Add(tw, 1)
			}),
		}
		for _, c := range ts {
			t0.Join(c)
		}
		t0.Assert(shared.Load(t0) == 2, "lost update: shared=%d", shared.Load(t0))
	}
}

func main() {
	dfs := sctbench.Explore(sctbench.DFS, sctbench.Config{Program: mixed(), Limit: 100000})
	ss := sctbench.ExploreSleepSet(sctbench.Config{Program: mixed(), Limit: 100000})

	fmt.Printf("plain DFS:     %6d schedules (complete=%v, bug=%v)\n", dfs.Schedules, dfs.Complete, dfs.BugFound)
	fmt.Printf("sleep-set DFS: %6d schedules (complete=%v, bug=%v)\n", ss.Schedules, ss.Complete, ss.BugFound)
	fmt.Printf("reduction: %.1fx — the private-counter interleavings all commute\n\n",
		float64(dfs.Schedules)/float64(ss.Schedules))

	if ss.BugFound {
		min := sctbench.Minimize(func() sctbench.Runnable { return mixed() }, ss.Witness, nil)
		fmt.Printf("witness simplification: PC %d -> %d over %d replays\n",
			min.OriginalPC, min.PC, min.Replays)
		fmt.Printf("minimal witness: %v\n", min.Schedule)
		out, ok := sctbench.Replay(mixed(), min.Schedule)
		fmt.Printf("replays: ok=%v failure=%v\n", ok, out.Failure)
	}
}
