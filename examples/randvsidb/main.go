// randvsidb reproduces the paper's headline finding on two hand-picked
// programs: a naive random scheduler is about as good at bug finding as
// iterative delay bounding on typical benchmarks — but each technique
// owns a corner case. The ferret-style pipeline needs a thread starved
// for an entire drain, which one delay does and randomness essentially
// never does; the lazily initialised lock hides behind so many scheduling
// points that bounded search exhausts its budget while random scheduling
// stumbles straight in.
//
//	go run ./examples/randvsidb
package main

import (
	"fmt"

	sctbench "sctbench"
)

// starved is the ferret shape: the first-created stage contributes the
// pipeline's only work item; nine later stages drain and shut down.
func starved() sctbench.Program {
	return func(t0 *sctbench.Thread) {
		const consumers = 9
		m := t0.NewMutex("pipe")
		queued := t0.NewVar("queued", 0)
		processed := t0.NewVar("processed", 0)
		noise := t0.NewVar("noise", 0)
		loader := func(tw *sctbench.Thread) {
			m.Lock(tw)
			queued.Add(tw, 1)
			m.Unlock(tw)
		}
		stage := func(tw *sctbench.Thread) {
			for round := 0; round < 3; round++ {
				m.Lock(tw)
				noise.Add(tw, 1)
				m.Unlock(tw)
			}
			m.Lock(tw)
			p := processed.Add(tw, 1)
			if p == consumers {
				tw.Assert(queued.Load(tw) > 0, "pipeline drained before the loader ran")
			}
			m.Unlock(tw)
		}
		ts := []*sctbench.Thread{t0.Spawn(loader)}
		for i := 0; i < consumers; i++ {
			ts = append(ts, t0.Spawn(stage))
		}
		for _, c := range ts {
			t0.Join(c)
		}
	}
}

// buried is the radbench.bug4 shape: a double-initialisation needing two
// early delays, hidden behind noise traffic wide enough that bounded
// search exhausts its budget at bound 2.
func buried() sctbench.Program {
	return func(t0 *sctbench.Thread) {
		inited := t0.NewVar("inited", 0)
		state := t0.NewVar("state", 0)
		noise := t0.NewVar("noise", 0)
		use := func(prefix int) sctbench.Program {
			return func(tw *sctbench.Thread) {
				for r := 0; r < prefix; r++ {
					noise.Add(tw, 1)
				}
				if inited.Load(tw) == 0 {
					for r := 0; r < 3; r++ {
						noise.Add(tw, 1)
					}
					inited.Store(tw, 1)
					state.Store(tw, 0)
				}
				st := state.Add(tw, 1)
				tw.Assert(st == 1, "double lock (state=%d)", st)
				state.Store(tw, 0)
			}
		}
		a := t0.Spawn(use(2))
		b := t0.Spawn(use(40))
		c := t0.Spawn(func(tw *sctbench.Thread) {
			for r := 0; r < 120; r++ {
				noise.Add(tw, 1)
			}
		})
		t0.Join(a)
		t0.Join(b)
		t0.Join(c)
	}
}

func run(name string, p func() sctbench.Program) {
	idb := sctbench.Explore(sctbench.IDB, sctbench.Config{Program: p(), Limit: 10000})
	rnd := sctbench.Explore(sctbench.Rand, sctbench.Config{Program: p(), Limit: 10000, Seed: 3})
	fmt.Printf("%s:\n", name)
	for _, r := range []*sctbench.Result{idb, rnd} {
		if r.BugFound {
			fmt.Printf("  %-4s found after %5d schedules (buggy in %d of %d)\n",
				r.Technique, r.SchedulesToFirstBug, r.BuggySchedules, r.Schedules)
		} else {
			fmt.Printf("  %-4s missed within %d schedules\n", r.Technique, r.Schedules)
		}
	}
}

func main() {
	run("pipeline starvation (ferret shape — IDB's corner)", starved)
	run("buried lazy-init race (bug4 shape — Rand's corner)", buried)
	fmt.Println("\nOn most SCTBench programs both columns find the bug; these two shapes")
	fmt.Println("are why Figure 2b has one benchmark on each side of the IDB/Rand overlap.")
}
