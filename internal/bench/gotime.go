package bench

// The GoTime benchmark family: timeout, ticker and context-cancellation
// bugs — the time.After/select race, the leaked ticker, the inherited
// context deadline, cancellation vs completion — expressed over the
// virtual clock (vthread.Timer/Ticker/Ctx). Wall-clock time is the one
// scheduling dimension the paper's pthread programs could not model at
// all: under the virtual clock a timer firing is an ordinary schedulable
// pseudo-step of the clock thread, so these races are *enumerated* by the
// bounded techniques instead of raced against real time. The family
// extends the registry past GoIdiom (ids 58+, excluded from the Table 1
// reproduction).
//
// Like every suite file, each program confines all state to the body (the
// compiled forms instantiate their environment per run), so one Benchmark
// value can be executed concurrently by the parallel exploration workers.
// Thread counts include the clock pseudo-thread, which occupies a ThreadID
// like any other. Timers, tickers and contexts created by main and used by
// a child compile to object arguments passed at Spawn.

import "sctbench/internal/vthread"

func init() {
	register(&Benchmark{
		ID: 58, Name: "gotime.timeout_vs_result_bad", Suite: "GoTime", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "select on result vs time.After: the timeout step can win over a worker that was about to deliver",
		New:     func() vthread.Runnable { return compiledTimeoutVsResult() },
		Ref:     refTimeoutVsResult,
	})

	register(&Benchmark{
		ID: 59, Name: "gotime.ticker_leak_bad", Suite: "GoTime", Threads: 3,
		BugKind: vthread.FailDeadlock,
		Desc:    "ticker consumer checks a stop flag then receives: Stop between check and receive leaves it blocked forever",
		New:     func() vthread.Runnable { return compiledTickerLeak() },
		Ref:     refTickerLeak,
	})

	register(&Benchmark{
		ID: 60, Name: "gotime.deadline_inherits_bad", Suite: "GoTime", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "child context's generous deadline is cut short by an inherited parent deadline the caller forgot about",
		New:     func() vthread.Runnable { return compiledDeadlineInherits() },
		Ref:     refDeadlineInherits,
	})

	register(&Benchmark{
		ID: 61, Name: "gotime.cancel_after_close_bad", Suite: "GoTime", Threads: 3,
		BugKind: vthread.FailCrash,
		Desc:    "cancellation cleanup and normal completion race a closed-flag check on the results channel: double close",
		New:     func() vthread.Runnable { return compiledCancelAfterClose() },
		Ref:     refCancelAfterClose,
	})

	register(&Benchmark{
		ID: 62, Name: "gotime.timer_stop_race_bad", Suite: "GoTime", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "Timer.Stop after the fire leaves the tick buffered; an undrained channel later reads as a spurious timeout",
		New:     func() vthread.Runnable { return compiledTimerStopRace() },
		Ref:     refTimerStopRace,
	})

	register(&Benchmark{
		ID: 63, Name: "gotime.ctx_cancel_race_bad", Suite: "GoTime", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "non-blocking Done check then publish: the context can be cancelled in the window, publishing a dead result",
		New:     func() vthread.Runnable { return compiledCtxCancelRace() },
		Ref:     refCtxCancelRace,
	})
}

func refTimeoutVsResult() vthread.Program {
	return func(t0 *vthread.Thread) {
		res := t0.NewChan("res", 1)
		w := t0.Spawn(func(tw *vthread.Thread) {
			tw.Yield() // the work
			res.Send(tw, 42)
		})
		// Bug: the timeout path treats "clock fired first" as "the
		// worker failed", but the clock step is just another
		// schedulable step — it can fire before a perfectly healthy
		// worker delivers.
		idx, v, _ := t0.Select([]vthread.SelectCase{
			vthread.RecvCase(res),
			vthread.RecvCase(t0.After("timeout", 2)),
		}, false)
		t0.Join(w)
		t0.Assert(idx == 0 && v == 42, "timed out with the result in flight")
	}
}

func compiledTimeoutVsResult() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	res := p.Chan("res", 1)
	wk := p.Body(0, 0)
	wk.Yield()
	wk.Send(res, 42)
	mn := p.Main()
	w := mn.Spawn(wk)
	// Go evaluates the case list before Select: the After registers
	// first, then the select runs over both channels.
	after := mn.After("timeout", 2)
	idx, v, _ := mn.Select([]vthread.SCase{vthread.RecvC(res), vthread.RecvC(after)}, false)
	mn.Join(w)
	mn.Assert(func(t *vthread.Thread) bool { return t.Reg(idx) == 0 && t.Reg(v) == 42 },
		"timed out with the result in flight")
	return p.Build()
}

func refTickerLeak() vthread.Program {
	return func(t0 *vthread.Thread) {
		tk := t0.NewTicker("tick", 2)
		stop := t0.NewVar("stop", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			// Bug: check-then-act on the stop flag. Between the load
			// and the receive the owner can set the flag and Stop the
			// ticker — a receive on a stopped ticker blocks forever.
			for i := 0; i < 2 && stop.Load(tw) == 0; i++ {
				tk.C().Recv(tw)
			}
		})
		t0.Yield() // the owner's other work
		stop.Store(t0, 1)
		tk.Stop(t0)
		t0.Join(w)
	}
}

func compiledTickerLeak() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	stop := p.Var("stop", 0)
	wk := p.Body(0, 1) // object arg 0: the ticker
	// for i := 0; i < 2 && stop.Load() == 0; i++ — the short-circuit
	// condition loads the flag only once i < 2 has passed.
	i := wk.Let(0)
	wk.While(lt(i, 2), func() {
		s := wk.Load(stop)
		wk.If(ne(s, 0), func() { wk.Break() })
		wk.Recv(wk.OArg(0))
		wk.Set(i, plus(i, 1))
	})
	mn := p.Main()
	tk := mn.NewTicker("tick", 2)
	w := mn.Spawn(wk, tk)
	mn.Yield()
	mn.Store(stop, 1)
	mn.TickerStop(tk)
	mn.Join(w)
	return p.Build()
}

func refDeadlineInherits() vthread.Program {
	return func(t0 *vthread.Thread) {
		parent := t0.WithTimeout("parent", nil, 5)
		// Bug: the child's own 100-tick budget looks ample for a
		// 10-tick job, but deadlines inherit: the parent's 5-tick
		// deadline cancels the whole subtree first.
		child := t0.WithTimeout("child", parent, 100)
		res := t0.NewChan("res", 1)
		w := t0.Spawn(func(tw *vthread.Thread) {
			tw.Sleep("work", 10)
			res.TrySend(tw, 1)
		})
		idx, _, _ := t0.Select([]vthread.SelectCase{
			vthread.RecvCase(res),
			vthread.RecvCase(child.Done()),
		}, false)
		t0.Join(w)
		t0.Assert(idx == 0, "gave up at now=%d: %s", t0.Now(), child.Err())
	}
}

func compiledDeadlineInherits() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	res := p.Chan("res", 1)
	wk := p.Body(0, 0)
	wk.Sleep("work", 10)
	wk.TrySend(res, 1)
	mn := p.Main()
	parent := mn.WithTimeout("parent", vthread.NoCtx, 5)
	child := mn.WithTimeout("child", parent, 100)
	w := mn.Spawn(wk)
	idx, _, _ := mn.Select([]vthread.SCase{vthread.RecvC(res), vthread.RecvC(child)}, false)
	mn.Join(w)
	mn.Assert(eq(idx, 0), "gave up at now=%d: %s",
		func(t *vthread.Thread) any { return t.Now() },
		func(t *vthread.Thread) any { return t.Obj(child).(*vthread.Ctx).Err() })
	return p.Build()
}

func refCancelAfterClose() vthread.Program {
	return func(t0 *vthread.Thread) {
		ctx := t0.WithCancel("req", nil)
		out := t0.NewChan("out", 2)
		closed := t0.NewVar("closed", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			out.Send(tw, 1)
			// Normal completion closes the channel, then publishes
			// the fact on a plain flag.
			out.Close(tw)
			closed.Store(tw, 1)
		})
		canceller := t0.Spawn(func(tw *vthread.Thread) {
			ctx.Done().Recv(tw)
			// Bug: "close unless already closed" is a check-then-act
			// on the flag; the worker can close between the load and
			// the Close (Go: panic on double close).
			if closed.Load(tw) == 0 {
				out.Close(tw)
			}
		})
		ctx.Cancel(t0)
		t0.Join(w)
		t0.Join(canceller)
	}
}

func compiledCancelAfterClose() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	out := p.Chan("out", 2)
	closed := p.Var("closed", 0)
	wk := p.Body(0, 0)
	wk.Send(out, 1)
	wk.CloseChan(out)
	wk.Store(closed, 1)
	can := p.Body(0, 1) // object arg 0: the context
	can.Recv(can.OArg(0))
	c := can.Load(closed)
	can.If(eq(c, 0), func() {
		can.CloseChan(out)
	})
	mn := p.Main()
	ctx := mn.WithCancel("req", vthread.NoCtx)
	w := mn.Spawn(wk)
	h := mn.Spawn(can, ctx)
	mn.CtxCancel(ctx)
	mn.Join(w)
	mn.Join(h)
	return p.Build()
}

func refTimerStopRace() vthread.Program {
	return func(t0 *vthread.Thread) {
		tm := t0.NewTimer("deadline", 2)
		done := t0.NewChan("done", 1)
		w := t0.Spawn(func(tw *vthread.Thread) {
			tw.Yield() // the work
			// Bug: Stop returning false means the timer already
			// fired and its tick sits in the channel; correct code
			// drains tm.C() here (the documented time.Timer.Stop
			// idiom), this code does not.
			tm.Stop(tw)
			done.Send(tw, 1)
		})
		idx, _, _ := t0.Select([]vthread.SelectCase{
			vthread.RecvCase(done),
			vthread.RecvCase(tm.C()),
		}, false)
		t0.Join(w)
		t0.Assert(idx == 0, "spurious timeout from a stale, undrained tick")
	}
}

func compiledTimerStopRace() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	done := p.Chan("done", 1)
	wk := p.Body(0, 1) // object arg 0: the timer
	wk.Yield()
	wk.TimerStop(wk.OArg(0))
	wk.Send(done, 1)
	mn := p.Main()
	tm := mn.NewTimer("deadline", 2)
	w := mn.Spawn(wk, tm)
	idx, _, _ := mn.Select([]vthread.SCase{vthread.RecvC(done), vthread.RecvC(tm)}, false)
	mn.Join(w)
	mn.Assert(eq(idx, 0), "spurious timeout from a stale, undrained tick")
	return p.Build()
}

func refCtxCancelRace() vthread.Program {
	return func(t0 *vthread.Thread) {
		ctx := t0.WithCancel("req", nil)
		published := t0.NewVar("published", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			// Bug: the default-case Done probe and the publish are
			// two separate steps; cancellation can land in between,
			// so the cancelled request still gets a result.
			idx, _, _ := tw.Select([]vthread.SelectCase{
				vthread.RecvCase(ctx.Done()),
			}, true)
			if idx == vthread.DefaultCase {
				published.Store(tw, 1)
			}
		})
		ctx.Cancel(t0)
		seen := published.Load(t0)
		t0.Join(w)
		t0.Assert(published.Load(t0) == seen,
			"result published after the request was cancelled")
	}
}

func compiledCtxCancelRace() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	published := p.Var("published", 0)
	wk := p.Body(0, 1) // object arg 0: the context
	idx, _, _ := wk.Select([]vthread.SCase{vthread.RecvC(wk.OArg(0))}, true)
	wk.If(eq(idx, vthread.DefaultCase), func() {
		wk.Store(published, 1)
	})
	mn := p.Main()
	ctx := mn.WithCancel("req", vthread.NoCtx)
	w := mn.Spawn(wk, ctx)
	mn.CtxCancel(ctx)
	seen := mn.Load(published)
	mn.Join(w)
	p2 := mn.Load(published)
	mn.Assert(eqr(p2, seen), "result published after the request was cancelled")
	return p.Build()
}
