package study

import (
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/corpus"
	"sctbench/internal/explore"
)

// pick selects registry benchmarks by exact name, failing on a miss so the
// tests don't silently shrink when the registry changes.
func pick(t *testing.T, names ...string) []*bench.Benchmark {
	t.Helper()
	byName := make(map[string]*bench.Benchmark)
	for _, b := range bench.All() {
		byName[b.Name] = b
	}
	var out []*bench.Benchmark
	for _, n := range names {
		b, ok := byName[n]
		if !ok {
			t.Fatalf("benchmark %q not in the registry", n)
		}
		out = append(out, b)
	}
	return out
}

// TestSwarmGridShape pins the cell grid: bounded techniques sweep the
// bound axis, unbounded ones collapse it, and cells come back in canonical
// (bench, technique, bound, seed) order.
func TestSwarmGridShape(t *testing.T) {
	benches := pick(t, "CS.account_bad", "CS.lazy01_bad")
	cfg := SwarmConfig{
		Techniques: []explore.Technique{explore.IPB, explore.DFS},
		Bounds:     []int{2, 3},
		Seeds:      []uint64{1, 2},
		Limit:      200,
		Workers:    1,
	}
	cells := RunSwarm(benches, cfg)
	// Per benchmark: IPB × 2 bounds × 2 seeds + DFS × 1 × 2 seeds = 6.
	if want := 2 * 6; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for i := 1; i < len(cells); i++ {
		a, b := cells[i-1], cells[i]
		ka := [4]uint64{uint64(a.Bench.ID), uint64(a.Technique), uint64(a.Bound), a.Seed}
		kb := [4]uint64{uint64(b.Bench.ID), uint64(b.Technique), uint64(b.Bound), b.Seed}
		if !(ka[0] < kb[0] || ka[0] == kb[0] && (ka[1] < kb[1] || ka[1] == kb[1] &&
			(ka[2] < kb[2] || ka[2] == kb[2] && ka[3] < kb[3]))) {
			t.Fatalf("cells out of canonical order at %d: %v then %v", i, ka, kb)
		}
	}
	for _, c := range cells {
		if c.Result == nil {
			t.Fatalf("unskipped cell %s/%s has no result", c.Bench.Name, c.Technique)
		}
		if c.Technique == explore.DFS && c.Bound != 0 {
			t.Fatalf("unbounded technique swept the bound axis: bound=%d", c.Bound)
		}
	}
}

// TestSwarmFillsCorpusAndReplaysCheaper pins the corpus integration: a
// first sweep populates the corpus with every bug's witness, and a second
// sweep against the same corpus reproduces each of those bugs straight
// from the stored witness with at least ten times fewer executions.
func TestSwarmFillsCorpusAndReplaysCheaper(t *testing.T) {
	benches := pick(t, "CS.account_bad", "CS.lazy01_bad")
	store, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := SwarmConfig{
		Techniques: []explore.Technique{explore.IPB, explore.DFS},
		Seeds:      []uint64{1},
		Limit:      2000,
		Workers:    1,
		Corpus:     store,
	}
	cold := RunSwarm(benches, cfg)
	bugs := 0
	for _, c := range cold {
		if c.Result.BugFound {
			bugs++
		}
	}
	if bugs == 0 {
		t.Fatalf("cold sweep found no bugs; the replay comparison needs buggy cells")
	}
	if store.Len() == 0 {
		t.Fatalf("cold sweep wrote nothing into the corpus")
	}

	warm := RunSwarm(benches, cfg)
	if len(warm) != len(cold) {
		t.Fatalf("sweep shape changed: %d vs %d cells", len(warm), len(cold))
	}
	ratioChecked := 0
	for i, c := range cold {
		w := warm[i]
		if !c.Result.BugFound {
			continue
		}
		if !w.Result.BugFound || !w.Result.CorpusHit {
			t.Fatalf("%s/%s: warm sweep BugFound=%v CorpusHit=%v, want a stored-witness hit",
				c.Bench.Name, c.Technique, w.Result.BugFound, w.Result.CorpusHit)
		}
		if w.Result.Executions > c.Result.Executions {
			t.Errorf("%s/%s: warm sweep spent %d executions vs %d cold — replay made it dearer",
				c.Bench.Name, c.Technique, w.Result.Executions, c.Result.Executions)
		}
		// The 10x pledge only means something where the cold search was
		// actually expensive; trivial cells find the bug on execution one.
		if c.Result.Executions >= 10 {
			ratioChecked++
			if w.Result.Executions*10 > c.Result.Executions {
				t.Errorf("%s/%s: warm sweep spent %d executions vs %d cold — less than 10x cheaper",
					c.Bench.Name, c.Technique, w.Result.Executions, c.Result.Executions)
			}
		}
	}
	if ratioChecked == 0 {
		t.Fatalf("no cell had an expensive cold search; the 10x pledge went unchecked")
	}
}
