package bench

// Table 1 static metadata: the benchmark suites, what they contain, and
// what the paper had to skip (with the reasons of §4). The skipped
// benchmarks are *not* implemented — they are exactly the programs SCT
// cannot handle (networking, multiple processes, GUI nondeterminism) or
// that contain no bug; recording them keeps Table 1 reproducible.

// SuiteInfo is one Table 1 row.
type SuiteInfo struct {
	// Name is the suite name.
	Name string
	// Kinds describes the benchmark types, quoting Table 1.
	Kinds string
	// Used is the number of benchmarks included in SCTBench.
	Used int
	// Skipped is the number left out.
	Skipped int
	// SkipReason quotes the paper's reason for the skipped entries.
	SkipReason string
}

// Table1 returns the suite overview. Used counts are computed from the
// registry so the table can never drift from the implementation; skip
// counts are the paper's.
func Table1() []SuiteInfo {
	used := make(map[string]int)
	for _, b := range All() {
		used[b.Suite]++
	}
	rows := []SuiteInfo{
		{Name: "CB", Kinds: "Test cases for real applications", Skipped: 17,
			SkipReason: "networked applications"},
		{Name: "CHESS", Kinds: "Test cases for several versions of a work stealing queue", Skipped: 0,
			SkipReason: ""},
		{Name: "CS", Kinds: "Small test cases and some small programs", Skipped: 24,
			SkipReason: "non-buggy"},
		{Name: "Inspect", Kinds: "Small test cases and some small programs", Skipped: 28,
			SkipReason: "non-buggy"},
		{Name: "Miscellaneous", Kinds: "Test case for lock-free stack and a debugging library test case", Skipped: 0,
			SkipReason: ""},
		{Name: "PARSEC", Kinds: "Parallel workloads", Skipped: 29,
			SkipReason: "non-buggy"},
		{Name: "RADBench", Kinds: "Test cases for real applications", Skipped: 9,
			SkipReason: "5 Chromium browser (GUI); 4 networking"},
		{Name: "SPLASH-2", Kinds: "Parallel workloads", Skipped: 9,
			SkipReason: "shared macro bug; three representative programs kept"},
	}
	for i := range rows {
		rows[i].Used = used[rows[i].Name]
	}
	return rows
}
