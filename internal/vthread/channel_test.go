package vthread

import "testing"

func TestChanSendRecvFIFO(t *testing.T) {
	var got []int
	out := runRR(t, func(t0 *Thread) {
		c := t0.NewChan("c", 2)
		w := t0.Spawn(func(tw *Thread) {
			for i := 1; i <= 4; i++ {
				c.Send(tw, i)
			}
			c.Close(tw)
		})
		for {
			v, ok := c.Recv(t0)
			if !ok {
				break
			}
			got = append(got, v)
		}
		t0.Join(w)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (FIFO violated)", got, want)
		}
	}
}

func TestChanBlocksWhenFull(t *testing.T) {
	// A producer over a 1-slot channel with no consumer deadlocks on the
	// second send — detected as a deadlock, not a hang.
	out := runRR(t, func(t0 *Thread) {
		c := t0.NewChan("c", 1)
		c.Send(t0, 1)
		c.Send(t0, 2)
	})
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("Failure = %v, want deadlock", out.Failure)
	}
}

func TestChanRecvBlocksWhenEmpty(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		c := t0.NewChan("c", 1)
		c.Recv(t0)
	})
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("Failure = %v, want deadlock", out.Failure)
	}
}

func TestChanSendOnClosedCrashes(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		c := t0.NewChan("c", 1)
		c.Close(t0)
		c.Send(t0, 1)
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash", out.Failure)
	}
}

func TestChanDoubleCloseCrashes(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		c := t0.NewChan("c", 1)
		c.Close(t0)
		c.Close(t0)
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash", out.Failure)
	}
}

func TestChanRecvFromClosedDrains(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		c := t0.NewChan("c", 2)
		c.Send(t0, 7)
		c.Close(t0)
		v, ok := c.Recv(t0)
		t0.Assert(ok && v == 7, "drain got (%d,%v)", v, ok)
		_, ok = c.Recv(t0)
		t0.Assert(!ok, "closed empty channel reported ok")
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

func TestChanTryOps(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		c := t0.NewChan("c", 1)
		t0.Assert(c.TrySend(t0, 1), "TrySend on empty failed")
		t0.Assert(!c.TrySend(t0, 2), "TrySend on full succeeded")
		v, ok := c.TryRecv(t0)
		t0.Assert(ok && v == 1, "TryRecv got (%d,%v)", v, ok)
		_, ok = c.TryRecv(t0)
		t0.Assert(!ok, "TryRecv on empty succeeded")
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

func TestChanProducerConsumerUnderRandomSchedules(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		sum := 0
		w := NewWorld(Options{Chooser: NewRandom(seed)})
		out := w.Run(Program(func(t0 *Thread) {
			c := t0.NewChan("c", 2)
			prod := t0.Spawn(func(tw *Thread) {
				for i := 1; i <= 5; i++ {
					c.Send(tw, i)
				}
				c.Close(tw)
			})
			cons := t0.Spawn(func(tw *Thread) {
				for {
					v, ok := c.Recv(tw)
					if !ok {
						return
					}
					sum += v
				}
			})
			t0.Join(prod)
			t0.Join(cons)
		}))
		if out.Buggy() {
			t.Fatalf("seed %d: %v", seed, out.Failure)
		}
		if sum != 15 {
			t.Fatalf("seed %d: sum = %d, want 15", seed, sum)
		}
	}
}

func TestRWMutexSharedReaders(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		l := t0.NewRWMutex("l")
		inside := 0
		reader := func(tw *Thread) {
			l.RLock(tw)
			inside++
			tw.Yield()
			tw.Assert(inside >= 1, "reader evicted")
			inside--
			l.RUnlock(tw)
		}
		a := t0.Spawn(reader)
		b := t0.Spawn(reader)
		t0.Join(a)
		t0.Join(b)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

func TestRWMutexWriterExcludesReaders(t *testing.T) {
	for seed := uint64(0); seed < 80; seed++ {
		w := NewWorld(Options{Chooser: NewRandom(seed)})
		out := w.Run(Program(func(t0 *Thread) {
			l := t0.NewRWMutex("l")
			readers, writers := 0, 0
			check := func(tw *Thread) {
				tw.Assert(writers == 0 || (writers == 1 && readers == 0),
					"rw invariant: readers=%d writers=%d", readers, writers)
			}
			rd := func(tw *Thread) {
				l.RLock(tw)
				readers++
				check(tw)
				tw.Yield()
				readers--
				l.RUnlock(tw)
			}
			wr := func(tw *Thread) {
				l.Lock(tw)
				writers++
				check(tw)
				tw.Yield()
				writers--
				l.Unlock(tw)
			}
			ts := []*Thread{t0.Spawn(rd), t0.Spawn(wr), t0.Spawn(rd), t0.Spawn(wr)}
			for _, c := range ts {
				t0.Join(c)
			}
		}))
		if out.Buggy() {
			t.Fatalf("seed %d: %v", seed, out.Failure)
		}
	}
}

func TestRWMutexMisuseCrashes(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		l := t0.NewRWMutex("l")
		l.RUnlock(t0)
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash", out.Failure)
	}
	out = runRR(t, func(t0 *Thread) {
		l := t0.NewRWMutex("l")
		l.Unlock(t0)
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash", out.Failure)
	}
}

func TestRWMutexWriterPreference(t *testing.T) {
	// With a writer waiting, a new reader must not jump the queue: the
	// reader is disabled until the writer has been through.
	var order []string
	out := runRR(t, func(t0 *Thread) {
		l := t0.NewRWMutex("l")
		l.RLock(t0) // main holds a read lock
		w := t0.Spawn(func(tw *Thread) {
			l.Lock(tw)
			order = append(order, "writer")
			l.Unlock(tw)
		})
		r := t0.Spawn(func(tw *Thread) {
			l.RLock(tw)
			order = append(order, "reader")
			l.RUnlock(tw)
		})
		t0.Yield() // let both queue up: writer first (blocked), reader held off
		l.RUnlock(t0)
		t0.Join(w)
		t0.Join(r)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if len(order) != 2 || order[0] != "writer" {
		t.Fatalf("order = %v, want writer first (writer preference)", order)
	}
}
