package explore

// Kill-and-resume equivalence: a search interrupted at an arbitrary
// per-execution poll, checkpointed, and resumed must finish with exactly
// the result an uninterrupted run produces. The interruption point is
// driven deterministically by the fault-injection registry, so every
// technique is killed early, in the middle, and one execution before the
// end. The same harness exercises crash-during-checkpoint-write (the old
// file must survive intact) and the parallel pool's worker-panic
// containment.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/faultinject"
)

// ckBenchNames are the CS benchmarks the equivalence matrix runs on:
// small enough to keep the matrix fast, varied enough to hit multi-thread
// frontiers, select nodes and pruning.
var ckBenchNames = []string{"CS.account_bad", "CS.circular_buffer_bad", "CS.queue_bad"}

// ckTechniques names every sequential driver the checkpoint format covers.
var ckTechniques = []struct {
	name string
	run  func(Config) *Result
}{
	{"DFS", RunDFS},
	{"IPB", func(c Config) *Result { return RunIterative(c, CostPreemptions) }},
	{"IDB", func(c Config) *Result { return RunIterative(c, CostDelays) }},
	{"Rand", RunRand},
	{"sleepset", RunSleepSetDFS},
	{"DPOR", RunDPOR},
}

func ckCfg(t *testing.T, name string, limit int) Config {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %s", name)
	}
	return Config{
		Program:     b.New(),
		BoundsCheck: b.BoundsCheck,
		MaxSteps:    b.MaxSteps,
		Limit:       limit,
		Seed:        7,
	}
}

// diffResults compares every Result field that kill-and-resume must
// preserve, returning human-readable mismatches. CheckpointError is
// excluded (it describes the run's own checkpoint writes, not the search).
func diffResults(want, got *Result) []string {
	var d []string
	chk := func(field string, w, g any) {
		if !reflect.DeepEqual(w, g) {
			d = append(d, fmt.Sprintf("%s: got %v, want %v", field, g, w))
		}
	}
	chk("Technique", want.Technique, got.Technique)
	chk("BugFound", want.BugFound, got.BugFound)
	chk("Bound", want.Bound, got.Bound)
	chk("SchedulesToFirstBug", want.SchedulesToFirstBug, got.SchedulesToFirstBug)
	chk("Schedules", want.Schedules, got.Schedules)
	chk("NewSchedules", want.NewSchedules, got.NewSchedules)
	chk("BuggySchedules", want.BuggySchedules, got.BuggySchedules)
	chk("Complete", want.Complete, got.Complete)
	chk("LimitHit", want.LimitHit, got.LimitHit)
	chk("MaxEnabled", want.MaxEnabled, got.MaxEnabled)
	chk("MaxSchedPoints", want.MaxSchedPoints, got.MaxSchedPoints)
	chk("Threads", want.Threads, got.Threads)
	chk("Executions", want.Executions, got.Executions)
	chk("AbortedExecutions", want.AbortedExecutions, got.AbortedExecutions)
	chk("BranchesPruned", want.BranchesPruned, got.BranchesPruned)
	chk("TotalSteps", want.TotalSteps, got.TotalSteps)
	chk("Stopped", want.Stopped, got.Stopped)
	chk("WorkerPanics", want.WorkerPanics, got.WorkerPanics)
	if !want.Witness.Equal(got.Witness) {
		d = append(d, fmt.Sprintf("Witness: got %v, want %v", got.Witness, want.Witness))
	}
	if !reflect.DeepEqual(want.Failure, got.Failure) {
		d = append(d, fmt.Sprintf("Failure: got %+v, want %+v", got.Failure, want.Failure))
	}
	return d
}

func requireSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if d := diffResults(want, got); len(d) != 0 {
		t.Errorf("%s: resumed result diverged:\n  %s", label, strings.Join(d, "\n  "))
	}
}

// interruptAndResume kills run at its nth per-execution poll, requires a
// checkpoint, resumes it, and returns the resumed final result.
func interruptAndResume(t *testing.T, run func(Config) *Result, cfg Config, n int) *Result {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.json")
	killed := cfg
	killed.CheckpointPath = path
	faultinject.Arm(faultinject.ExploreInterrupt, int64(n))
	r := run(killed)
	faultinject.Reset()
	if r.Stopped != StopInterrupted {
		t.Fatalf("poll %d: Stopped = %v, want interrupted", n, r.Stopped)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("poll %d: LoadCheckpoint: %v", n, err)
	}
	res, err := Resume(ck, cfg)
	if err != nil {
		t.Fatalf("poll %d: Resume: %v", n, err)
	}
	return res
}

// TestKillAndResumeEquivalence is the tentpole acceptance matrix: every
// technique on every matrix benchmark, killed early / mid / late, resumes
// to a bit-identical final result.
func TestKillAndResumeEquivalence(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	const limit = 150
	for _, tech := range ckTechniques {
		for _, name := range ckBenchNames {
			t.Run(tech.name+"/"+name, func(t *testing.T) {
				base := tech.run(ckCfg(t, name, limit))
				if base.Stopped != StopCompleted && base.Stopped != StopLimit {
					t.Fatalf("baseline Stopped = %v", base.Stopped)
				}
				if base.Executions < 4 {
					t.Fatalf("baseline too small to interrupt: %d executions", base.Executions)
				}
				for _, n := range []int{1, base.Executions / 2, base.Executions - 1} {
					res := interruptAndResume(t, tech.run, ckCfg(t, name, limit), n)
					requireSameResult(t, fmt.Sprintf("poll %d", n), base, res)
				}
			})
		}
	}
}

// TestPeriodicCheckpointResume drives the CheckpointEvery path: a run that
// completes normally leaves its last periodic snapshot behind, and
// resuming that snapshot re-explores only the tail — landing on the same
// final result.
func TestPeriodicCheckpointResume(t *testing.T) {
	const limit = 120
	for _, tech := range ckTechniques {
		t.Run(tech.name, func(t *testing.T) {
			base := tech.run(ckCfg(t, "CS.account_bad", limit))
			path := filepath.Join(t.TempDir(), "ck.json")
			cfg := ckCfg(t, "CS.account_bad", limit)
			cfg.CheckpointPath = path
			cfg.CheckpointEvery = 3
			full := tech.run(cfg)
			requireSameResult(t, "periodic-checkpointed run", base, full)
			ck, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatalf("no periodic checkpoint left behind: %v", err)
			}
			res, err := Resume(ck, ckCfg(t, "CS.account_bad", limit))
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			requireSameResult(t, "resume from periodic snapshot", base, res)
		})
	}
}

// TestDeadlineStops: an already-expired wall-clock deadline stops the
// search at its first poll with StopDeadline and a resumable checkpoint.
func TestDeadlineStops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	base := RunDFS(ckCfg(t, "CS.queue_bad", 100))
	cfg := ckCfg(t, "CS.queue_bad", 100)
	cfg.Deadline = time.Now().Add(-time.Second)
	cfg.CheckpointPath = path
	r := RunDFS(cfg)
	if r.Stopped != StopDeadline {
		t.Fatalf("Stopped = %v, want deadline", r.Stopped)
	}
	if r.Executions != 0 {
		t.Fatalf("expired deadline still ran %d executions", r.Executions)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	res, err := Resume(ck, ckCfg(t, "CS.queue_bad", 100))
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	requireSameResult(t, "resume after deadline", base, res)
}

// tryInterruptAndResume is interruptAndResume for the parallel pool,
// where the number of per-execution polls before natural completion is
// timing-dependent: when the injected interrupt never fires, it reports
// ok=false instead of failing, and the caller skips that point.
func tryInterruptAndResume(t *testing.T, run func(Config) *Result, cfg Config, n int) (*Result, bool) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ck.json")
	killed := cfg
	killed.CheckpointPath = path
	faultinject.Arm(faultinject.ExploreInterrupt, int64(n))
	r := run(killed)
	faultinject.Reset()
	if r.Stopped != StopInterrupted {
		return nil, false
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("poll %d: LoadCheckpoint: %v", n, err)
	}
	res, err := Resume(ck, cfg)
	if err != nil {
		t.Fatalf("poll %d: Resume: %v", n, err)
	}
	return res, true
}

// maskWorkMetrics zeroes the fields the parallel pool does not promise to
// reproduce exactly: workers may have an execution in flight when the
// budget or the suspension lands, and the speculative iterative job's
// discarded progress is re-done on resume — so raw execution and step
// totals can differ while every schedule count stays exact.
func maskWorkMetrics(r *Result) *Result {
	m := *r
	m.Executions = 0
	m.TotalSteps = 0
	m.AbortedExecutions = 0
	return &m
}

// TestKillAndResumeParallel covers the worker pool: DFS with 8 workers is
// interrupted mid-pass (stop-the-world suspension parks positioned units),
// checkpointed, and resumed — schedule counts, bounds, verdicts and the
// witness must equal the sequential run exactly, per the pool's
// determinism contract. DPOR's parallel partition legitimately explores a
// different (sound) subset, so it is held to verdict-level equivalence.
func TestKillAndResumeParallel(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	const limit = 300
	t.Run("DFS", func(t *testing.T) {
		base := RunDFS(ckCfg(t, "CS.account_bad", limit))
		cfg := ckCfg(t, "CS.account_bad", limit)
		cfg.Workers = 8
		fired := 0
		for _, n := range []int{1, 40, 150} {
			res, ok := tryInterruptAndResume(t, RunDFS, cfg, n)
			if !ok {
				continue
			}
			fired++
			requireSameResult(t, fmt.Sprintf("workers=8 poll %d", n),
				maskWorkMetrics(base), maskWorkMetrics(res))
		}
		if fired == 0 {
			t.Fatal("no interruption point fired")
		}
	})
	t.Run("IPB", func(t *testing.T) {
		seq := ckCfg(t, "CS.circular_buffer_bad", limit)
		base := RunIterative(seq, CostPreemptions)
		cfg := ckCfg(t, "CS.circular_buffer_bad", limit)
		cfg.Workers = 8
		run := func(c Config) *Result { return RunIterative(c, CostPreemptions) }
		fired := 0
		for _, n := range []int{1, 10, 25} {
			res, ok := tryInterruptAndResume(t, run, cfg, n)
			if !ok {
				continue
			}
			fired++
			requireSameResult(t, fmt.Sprintf("workers=8 poll %d", n),
				maskWorkMetrics(base), maskWorkMetrics(res))
		}
		if fired == 0 {
			t.Fatal("no interruption point fired")
		}
	})
	t.Run("DPOR", func(t *testing.T) {
		base := RunDPOR(ckCfg(t, "CS.queue_bad", limit))
		cfg := ckCfg(t, "CS.queue_bad", limit)
		cfg.Workers = 8
		fired := 0
		for _, n := range []int{1, 10} {
			res, ok := tryInterruptAndResume(t, RunDPOR, cfg, n)
			if !ok {
				continue
			}
			fired++
			if res.BugFound != base.BugFound {
				t.Errorf("poll %d: BugFound = %v, want %v", n, res.BugFound, base.BugFound)
			}
			if base.Complete && !res.Complete {
				t.Errorf("poll %d: resumed DPOR incomplete, sequential completed", n)
			}
			if res.BugFound && res.Witness == nil {
				t.Errorf("poll %d: bug without witness", n)
			}
		}
		if fired == 0 {
			t.Fatal("no interruption point fired")
		}
	})
}

// TestCheckpointWriteCrash: a simulated mid-write death while saving must
// leave the previous checkpoint byte-identical on disk, and that old file
// must still resume to the uninterrupted result.
func TestCheckpointWriteCrash(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	const limit = 150
	base := RunDFS(ckCfg(t, "CS.queue_bad", limit))
	path := filepath.Join(t.TempDir(), "ck.json")

	// First interruption writes a good checkpoint.
	cfg := ckCfg(t, "CS.queue_bad", limit)
	cfg.CheckpointPath = path
	faultinject.Arm(faultinject.ExploreInterrupt, 5)
	r1 := RunDFS(cfg)
	faultinject.Reset()
	if r1.Stopped != StopInterrupted {
		t.Fatalf("first run Stopped = %v", r1.Stopped)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Resume, then die halfway through writing the next checkpoint.
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.ExploreInterrupt, 5)
	faultinject.Arm(faultinject.CheckpointWrite, 1)
	r2, err := Resume(ck, cfg)
	faultinject.Reset()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if r2.Stopped != StopInterrupted {
		t.Fatalf("second run Stopped = %v", r2.Stopped)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(good, after) {
		t.Fatal("crashed checkpoint write corrupted the previous checkpoint")
	}

	// The surviving old checkpoint still resumes to the full result.
	ck2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resume(ck2, ckCfg(t, "CS.queue_bad", limit))
	if err != nil {
		t.Fatalf("Resume from surviving checkpoint: %v", err)
	}
	requireSameResult(t, "resume from pre-crash checkpoint", base, res)
}

// TestLoadCheckpointErrors pins the failure modes a user actually hits:
// garbage bytes, a file truncated mid-write, a version from the future,
// and an internally inconsistent frontier.
func TestLoadCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	wantErr := func(name, contents, frag string) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadCheckpoint(p)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("%s: error %v, want mention of %q", name, err, frag)
		}
	}
	wantErr("garbage.json", "not json at all {", "corrupt or truncated")
	wantErr("empty.json", "", "corrupt or truncated")

	// A real checkpoint, then damaged in controlled ways.
	path := filepath.Join(dir, "real.json")
	cfg := ckCfg(t, "CS.account_bad", 100)
	cfg.CheckpointPath = path
	faultinject.Arm(faultinject.ExploreInterrupt, 3)
	RunDFS(cfg)
	faultinject.Reset()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantErr("truncated.json", string(raw[:len(raw)/2]), "corrupt or truncated")

	var ck Checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		t.Fatal(err)
	}
	ck.Version = 99
	if _, err := mutatedLoad(dir, "version.json", &ck); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: error %v, want version complaint", err)
	}
	ck.Version = CheckpointVersion
	ck.Technique = "quantum"
	if _, err := mutatedLoad(dir, "tech.json", &ck); err == nil || !strings.Contains(err.Error(), "technique") {
		t.Errorf("unknown technique: error %v, want technique complaint", err)
	}

	// An inconsistent frontier node fails at Resume with a clear error.
	if err := json.Unmarshal(raw, &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Engine == nil || len(ck.Engine.Nodes) == 0 {
		t.Fatal("DFS checkpoint has no frontier nodes")
	}
	ck.Engine.Nodes[0].Idx = 99
	if _, err := Resume(&ck, ckCfg(t, "CS.account_bad", 100)); err == nil {
		t.Error("Resume accepted an out-of-range frontier index")
	}
}

func mutatedLoad(dir, name string, ck *Checkpoint) (*Checkpoint, error) {
	data, err := json.Marshal(ck)
	if err != nil {
		return nil, err
	}
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return nil, err
	}
	return LoadCheckpoint(p)
}

// TestCheckpointGoldenFormat pins the on-disk checkpoint schema. The
// interruption point is fault-injected, so the serialized frontier is
// fully deterministic; any change to the format or to what the engines
// snapshot shows up as a diff here. Run with -update after an intentional
// format change (and bump CheckpointVersion when the change is not
// backward compatible).
func TestCheckpointGoldenFormat(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	runs := []struct {
		key string
		run func(Config) *Result
	}{
		{"dfs", RunDFS},
		{"ipb", func(c Config) *Result { return RunIterative(c, CostPreemptions) }},
		{"dpor", RunDPOR},
		{"rand", RunRand},
	}
	got := map[string]json.RawMessage{}
	for _, tc := range runs {
		path := filepath.Join(t.TempDir(), tc.key+".json")
		cfg := ckCfg(t, "CS.account_bad", 100)
		cfg.CheckpointPath = path
		cfg.Meta = CheckpointMeta{Benchmark: "CS.account_bad", Racy: []string{"balance"}}
		faultinject.Arm(faultinject.ExploreInterrupt, 6)
		r := tc.run(cfg)
		faultinject.Reset()
		if r.Stopped != StopInterrupted {
			t.Fatalf("%s: Stopped = %v", tc.key, r.Stopped)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got[tc.key] = raw
	}
	blob, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')

	golden := filepath.Join("testdata", "golden_checkpoint.json")
	if *updateGolden {
		if err := os.WriteFile(golden, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(want, blob) {
		t.Errorf("checkpoint format drifted from %s (run with -update if intentional)", golden)
	}
}

// TestWorkerPanicPoolSurvives: a worker dying mid-unit (outside the
// substrate's containment) must not wedge the pool — the unit's counts
// are forfeited, the rest of the pass drains, and the result reports the
// panic and withholds Complete. Run under -race in CI.
func TestWorkerPanicPoolSurvives(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	const limit = 400
	base := RunDFS(ckCfg(t, "CS.account_bad", limit))
	cfg := ckCfg(t, "CS.account_bad", limit)
	cfg.Workers = 8
	faultinject.Arm(faultinject.PoolUnitPanic, 30)
	r := RunDFS(cfg)
	faultinject.Reset()
	if r.WorkerPanics != 1 {
		t.Fatalf("WorkerPanics = %d, want 1", r.WorkerPanics)
	}
	if !strings.Contains(r.WorkerPanicMsg, "faultinject") {
		t.Fatalf("WorkerPanicMsg = %q", r.WorkerPanicMsg)
	}
	if r.Complete {
		t.Fatal("Complete reported despite a forfeited unit")
	}
	// The dead unit's counts — and its unexplored frontier — are forfeited,
	// so the total can only shrink. How much survives depends on when work
	// was donated to other units before the death, which is timing-dependent.
	if r.Schedules > base.Schedules {
		t.Fatalf("Schedules = %d after worker panic, sequential explored %d", r.Schedules, base.Schedules)
	}
}
