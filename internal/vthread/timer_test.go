package vthread

import (
	"strings"
	"testing"
)

// TestTimerFireIsAScheduledStep pins the core contract: a timer firing is
// a trace entry naming the clock pseudo-thread, counted in TimerPoints,
// and the delivered value is the virtual firing time.
func TestTimerFireIsAScheduledStep(t *testing.T) {
	var got int
	var when int64
	var prog Program = func(t0 *Thread) {
		ch := t0.After("a", 7)
		got, _ = ch.Recv(t0)
		when = t0.Now()
	}
	out := NewWorld(Options{Chooser: RoundRobin()}).Run(prog)
	if out.Failure != nil {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if out.TimerPoints != 1 {
		t.Errorf("TimerPoints = %d, want 1", out.TimerPoints)
	}
	if out.Threads != 2 {
		t.Errorf("Threads = %d, want 2 (program thread + clock)", out.Threads)
	}
	if got != 7 || when != 7 {
		t.Errorf("received %d at now %d, want 7 at 7", got, when)
	}
	// The clock's trace entry is the pseudo-thread's id (1 here), between
	// the arm and the receive.
	clockSteps := 0
	for _, id := range out.Trace {
		if id == 1 {
			clockSteps++
		}
	}
	if clockSteps != 1 {
		t.Errorf("trace %v names the clock %d times, want 1", out.Trace, clockSteps)
	}
}

// TestTimerOrderingDeterministic: fires happen in (deadline, arm order),
// each advancing the virtual now to its own deadline — so the delivered
// times are a function of the deadlines alone, not of arm order or of how
// the chooser interleaved the clock with the program.
func TestTimerOrderingDeterministic(t *testing.T) {
	var slowAt, fastAt, tieAt int
	var prog Program = func(t0 *Thread) {
		slow := t0.After("slow", 10)
		fast := t0.After("fast", 2)
		tie := t0.After("tie", 2) // same deadline as fast, armed later
		fastAt, _ = fast.Recv(t0)
		tieAt, _ = tie.Recv(t0)
		slowAt, _ = slow.Recv(t0)
		t0.Assert(t0.Now() == 10, "final now %d, want 10", t0.Now())
	}
	out := NewWorld(Options{Chooser: RoundRobin()}).Run(prog)
	if out.Failure != nil {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if fastAt != 2 || tieAt != 2 || slowAt != 10 {
		t.Errorf("delivered times fast=%d tie=%d slow=%d, want 2, 2, 10", fastAt, tieAt, slowAt)
	}
	if out.TimerPoints != 3 {
		t.Errorf("TimerPoints = %d, want 3", out.TimerPoints)
	}
}

// TestBlockedUntilTimerIsNotDeadlock: a thread waiting on a fireable timer
// is "blocked until the timer fires" — the clock stays enabled, the fire
// unblocks it, and the run terminates cleanly.
func TestBlockedUntilTimerIsNotDeadlock(t *testing.T) {
	var prog Program = func(t0 *Thread) {
		t0.Sleep("nap", 5)
	}
	out := NewWorld(Options{Chooser: RoundRobin()}).Run(prog)
	if out.Failure != nil {
		t.Fatalf("sleeping reported %v, want clean termination", out.Failure)
	}
}

// TestBlockedOnDeadTimerIsDeadlock: a thread waiting on a stopped ticker
// is blocked forever — a real deadlock, and the diagnosis says the armed
// timers (none here, the ticker was stopped) cannot help. A second program
// leaves the timer armed but saturated, which the message calls out.
func TestBlockedOnDeadTimerIsDeadlock(t *testing.T) {
	var stopped Program = func(t0 *Thread) {
		tk := t0.NewTicker("tick", 3)
		tk.Stop(t0)
		tk.C().Recv(t0) // never fires again
	}
	out := NewWorld(Options{Chooser: RoundRobin()}).Run(stopped)
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("stopped-ticker wait: %v, want deadlock", out.Failure)
	}

	// An armed one-shot whose channel is already full cannot fire either:
	// the waiter on an unrelated channel deadlocks, and the message names
	// the stuck timer.
	var saturated Program = func(t0 *Thread) {
		tm := t0.NewTimer("t", 1)
		t0.Sleep("pass", 2) // let tm fire; its slot now holds the tick
		_ = tm
		other := t0.NewChan("other", 1)
		other.Recv(t0) // nobody sends: blocked forever
	}
	out = NewWorld(Options{Chooser: RoundRobin()}).Run(saturated)
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("saturated-timer program: %v, want deadlock", out.Failure)
	}
	if !strings.Contains(out.Failure.Message, "deadlock") {
		t.Errorf("message %q does not mention deadlock", out.Failure.Message)
	}
}

// TestLeakedTickerFiresOnceThenQuiets: with no receiver the ticker fills
// its one-slot channel on the first fire and stops being fireable, so the
// program terminates instead of ticking forever.
func TestLeakedTickerFiresOnceThenQuiets(t *testing.T) {
	var prog Program = func(t0 *Thread) {
		t0.NewTicker("leak", 2) // never received from, never stopped
		v := t0.NewVar("v", 0)
		for i := 0; i < 5; i++ {
			v.Store(t0, i)
		}
	}
	out := NewWorld(Options{Chooser: RoundRobin()}).Run(prog)
	if out.Failure != nil {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if out.TimerPoints > 1 {
		t.Errorf("leaked ticker fired %d times, want at most once", out.TimerPoints)
	}
	if out.StepLimitHit {
		t.Error("leaked ticker ran the execution into the step limit")
	}
}

// TestTimerStopAndReset pins the Go-compatible return values: Stop is true
// only while armed, Reset re-arms from the current virtual now, and a
// fired value stays buffered across a Stop (Stop does not drain).
func TestTimerStopAndReset(t *testing.T) {
	var prog Program = func(t0 *Thread) {
		tm := t0.NewTimer("t", 4)
		t0.Assert(tm.Stop(t0), "first Stop should report armed")
		t0.Assert(!tm.Stop(t0), "second Stop should report already stopped")
		t0.Assert(!tm.Reset(t0, 3), "Reset of a stopped timer should report not armed")
		v, ok := tm.C().Recv(t0) // blocks until the reset timer fires
		t0.Assert(ok && v == 3, "reset timer delivered %d,%v", v, ok)
		t0.Assert(!tm.Stop(t0), "Stop after firing should report false")
	}
	out := NewWorld(Options{Chooser: RoundRobin()}).Run(prog)
	if out.Failure != nil {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

// TestCtxCancelCascade: cancelling a parent cancels the whole subtree with
// the parent's cause, Done channels close, and a child created under an
// already-cancelled parent is born cancelled.
func TestCtxCancelCascade(t *testing.T) {
	var prog Program = func(t0 *Thread) {
		root := t0.WithCancel("root", nil)
		child := t0.WithCancel("child", root)
		grand := t0.WithTimeout("grand", child, 1000)
		t0.Assert(root.Err() == "" && child.Err() == "" && grand.Err() == "",
			"contexts born cancelled: %q %q %q", root.Err(), child.Err(), grand.Err())
		root.Cancel(t0)
		t0.Assert(child.Err() == CtxCanceled, "child err %q", child.Err())
		t0.Assert(grand.Err() == CtxCanceled, "grandchild err %q", grand.Err())
		_, ok := grand.Done().Recv(t0)
		t0.Assert(!ok, "Done recv after cancel reported ok")
		// Born-dead child of a cancelled parent.
		late := t0.WithCancel("late", root)
		t0.Assert(late.Err() == CtxCanceled, "late child err %q", late.Err())
		// Idempotent re-cancel.
		root.Cancel(t0)
	}
	out := NewWorld(Options{Chooser: RoundRobin()}).Run(prog)
	if out.Failure != nil {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	// The grandchild's 1000-tick deadline was disarmed by the cascade: no
	// timer ever fired.
	if out.TimerPoints != 0 {
		t.Errorf("TimerPoints = %d, want 0 (deadline disarmed by cancellation)", out.TimerPoints)
	}
}

// TestCtxDeadlineFires: a WithTimeout context cancels itself — and its
// subtree — when the clock reaches its deadline, with the deadline cause.
func TestCtxDeadlineFires(t *testing.T) {
	var prog Program = func(t0 *Thread) {
		parent := t0.WithTimeout("p", nil, 3)
		child := t0.WithCancel("c", parent)
		_, ok := child.Done().Recv(t0) // blocked until the parent's deadline
		t0.Assert(!ok, "Done recv reported ok")
		t0.Assert(parent.Err() == CtxDeadlineExceeded, "parent err %q", parent.Err())
		t0.Assert(child.Err() == CtxDeadlineExceeded, "child err %q", child.Err())
		t0.Assert(t0.Now() == 3, "deadline fired at now=%d, want 3", t0.Now())
	}
	out := NewWorld(Options{Chooser: RoundRobin()}).Run(prog)
	if out.Failure != nil {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if out.TimerPoints != 1 {
		t.Errorf("TimerPoints = %d, want 1 (the deadline fire)", out.TimerPoints)
	}
}

// timerLeakProgram ends with an armed-but-unfired timer, an undrained
// ticker slot and a live (uncancelled) deadline context: the worst case
// for Executor reuse, which must not carry any of it into the next run.
var timerLeakProgram Program = func(t0 *Thread) {
	t0.NewTimer("armed", 1000) // never fires: no step blocks long enough
	tk := t0.NewTicker("tick", 1)
	tk.C().Recv(t0) // fire once, then leave the ticker armed
	t0.WithTimeout("live", nil, 5000)
	ch := t0.After("spare", 2)
	ch.Recv(t0)
}

// noTimerProgram is a plain two-thread program with no virtual time.
var noTimerProgram Program = func(t0 *Thread) {
	v := t0.NewVar("v", 0)
	c := t0.Spawn(func(tw *Thread) { v.Add(tw, 1) })
	v.Add(t0, 1)
	t0.Join(c)
	t0.Assert(v.Load(t0) == 2, "lost update")
}

// TestExecutorDoesNotCarryClockState is the reuse/leak regression test:
// runs ending with armed timers, undrained ticker channels and live
// deadline contexts must leave no clock state behind — the next run (with
// or without timers) matches a fresh World bit for bit, and the clock
// pseudo-thread never enters the worker pool (Close stays sound).
func TestExecutorDoesNotCarryClockState(t *testing.T) {
	ex := NewExecutor(Options{Chooser: RoundRobin()})
	defer ex.Close()

	wantLeak := NewWorld(Options{Chooser: RoundRobin()}).Run(timerLeakProgram)
	wantPlain := NewWorld(Options{Chooser: RoundRobin()}).Run(noTimerProgram)

	for round := 0; round < 3; round++ {
		got := ex.Run(timerLeakProgram)
		if !outcomesEqual(wantLeak, got) {
			t.Fatalf("round %d: timer run diverged from fresh World:\n got %+v\nwant %+v", round, got, wantLeak)
		}
		if got.TimerPoints == 0 {
			t.Fatalf("round %d: timer run recorded no timer points", round)
		}
		got = ex.Run(noTimerProgram)
		if !outcomesEqual(wantPlain, got) {
			t.Fatalf("round %d: plain run after timer run diverged:\n got %+v\nwant %+v", round, got, wantPlain)
		}
		if got.TimerPoints != 0 {
			t.Fatalf("round %d: plain run inherited TimerPoints=%d", round, got.TimerPoints)
		}
	}
}

// TestOutcomeCountersResetOnReuse is the counter-reset regression test:
// SchedPoints, SelectPoints and TimerPoints are recomputed from zero on
// every Executor run — a counter-free program right after a counter-heavy
// one reports all zeroes.
func TestOutcomeCountersResetOnReuse(t *testing.T) {
	busy := Program(func(t0 *Thread) {
		a := t0.NewChan("a", 1)
		b := t0.NewChan("b", 1)
		a.Send(t0, 1)
		b.Send(t0, 2)
		t0.Select([]SelectCase{RecvCase(a), RecvCase(b)}, false) // select point
		t0.Sleep("s", 1)                                         // timer point
		done := t0.Spawn(func(tw *Thread) { tw.Yield() })        // contested points
		t0.Yield()
		t0.Join(done)
	})
	quiet := Program(func(t0 *Thread) {
		v := t0.NewVar("v", 0)
		v.Store(t0, 1)
	})
	ex := NewExecutor(Options{Chooser: RoundRobin()})
	defer ex.Close()

	out := ex.Run(busy)
	if out.SelectPoints == 0 || out.TimerPoints == 0 || out.SchedPoints == 0 {
		t.Fatalf("busy run: SelectPoints=%d TimerPoints=%d SchedPoints=%d, want all nonzero",
			out.SelectPoints, out.TimerPoints, out.SchedPoints)
	}
	out = ex.Run(quiet)
	if out.SelectPoints != 0 || out.TimerPoints != 0 || out.SchedPoints != 0 {
		t.Errorf("quiet run inherited counters: SelectPoints=%d TimerPoints=%d SchedPoints=%d",
			out.SelectPoints, out.TimerPoints, out.SchedPoints)
	}
	if out.Threads != 1 {
		t.Errorf("quiet run Threads=%d, want 1 (no clock pseudo-thread)", out.Threads)
	}
}

// TestTimerReplayRoundTrip: a random-schedule run of a timer/context
// program replays to the identical trace — timer firings are replayable
// scheduling points.
func TestTimerReplayRoundTrip(t *testing.T) {
	var prog Program = func(t0 *Thread) {
		ctx := t0.WithTimeout("c", nil, 4)
		res := t0.NewChan("res", 1)
		w := t0.Spawn(func(tw *Thread) {
			tw.Yield()
			res.TrySend(tw, 42)
		})
		t0.Select([]SelectCase{RecvCase(res), RecvCase(ctx.Done())}, false)
		t0.Join(w)
	}
	for seed := uint64(1); seed <= 20; seed++ {
		ref := NewWorld(Options{Chooser: NewRandom(seed)}).Run(prog)
		rep := NewReplay(ref.Trace)
		out := NewWorld(Options{Chooser: rep}).Run(prog)
		if rep.Failed() {
			t.Fatalf("seed %d: replay diverged at %d (trace %v)", seed, rep.FailStep(), ref.Trace)
		}
		if !out.Trace.Equal(ref.Trace) || out.TimerPoints != ref.TimerPoints {
			t.Fatalf("seed %d: replayed trace %v (timers %d), want %v (timers %d)",
				seed, out.Trace, out.TimerPoints, ref.Trace, ref.TimerPoints)
		}
	}
}
