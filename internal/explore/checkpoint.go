package explore

// Checkpoint/resume: crash-safe exploration. The sequential drivers and the
// parallel pool serialize their live frontier — the branch-keyed stack (or
// parked unit set) of the depth-first walk, per-node backtrack/sleep/done
// state for the pruning engines, and every counter of the partial Result —
// into a versioned JSON file, and Resume reconstructs the search from it.
// A checkpoint is only ever taken when an engine is *positioned to run*:
// after a successful backtrack (or on a fresh engine), before the next
// runOnce. Restoring such a state and re-entering the driver loop therefore
// continues the exact schedule enumeration, so a killed-and-resumed
// exploration finishes with bit-identical counts and witnesses to an
// uninterrupted one (verdict-identical for parallel DPOR, whose counts
// already depend on stealing; see parallel.go).
//
// What is NOT serialized: the DPOR race-analysis scratch (vector clocks,
// prevOf/spawnOf, per-object access state) is per-run and recomputed from
// step zero by the next analyze() pass, and the Rand scheduler's RNG needs
// no state at all because every run i is seeded independently from
// (Seed, i) — see randRun. Checkpoint files are written atomically (temp
// file + rename), so a crash during the write leaves the previous
// checkpoint intact; the faultinject.CheckpointWrite point simulates
// exactly that crash in tests.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"sctbench/internal/faultinject"
	"sctbench/internal/fsatomic"
	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// CheckpointVersion is the checkpoint file format version; Load rejects
// files written by a different version with a clear error.
const CheckpointVersion = 1

// CheckpointMeta is CLI-facing context carried verbatim into checkpoint
// files, so a resuming process can rebuild the same program environment
// (which benchmark, and the promoted-variable set of its race phase)
// without re-running the race detection phase.
type CheckpointMeta struct {
	// Benchmark names the benchmark under exploration.
	Benchmark string
	// Racy is the promoted shared-variable set from the race phase.
	Racy []string
	// NoRace records that promotion was disabled (every variable visible).
	NoRace bool
}

// Checkpoint is the serialized live state of an interrupted exploration.
type Checkpoint struct {
	Version   int    `json:"version"`
	Technique string `json:"technique"` // DFS | IPB | IDB | Rand | DPOR | sleepset

	// Search parameters, restored on resume (overriding the resuming
	// Config, so a resumed run cannot diverge from the uninterrupted one).
	Limit         int    `json:"limit"`
	Seed          uint64 `json:"seed,omitempty"`
	MaxBound      int    `json:"maxBound,omitempty"`
	MaxExecutions int    `json:"maxExecutions,omitempty"`

	// CLI metadata (see CheckpointMeta).
	Benchmark string   `json:"benchmark,omitempty"`
	Racy      []string `json:"racy,omitempty"`
	NoRace    bool     `json:"noRace,omitempty"`

	// Result is the partial result at the moment of interruption. Fields
	// the drivers fill only at exit (Executions, the engines' pruning
	// tallies) are reconstructed from the engine state on resume.
	Result *Result `json:"result"`

	// Engine is the sequential frontier (nil for parallel checkpoints and
	// for Rand, which has no frontier).
	Engine *EngineState `json:"engine,omitempty"`

	// Bound and BoundExecs are the iterative-bounding sweep position:
	// the bound being enumerated and the executions committed by earlier
	// bounds (IPB/IDB only).
	Bound      int `json:"bound,omitempty"`
	BoundExecs int `json:"boundExecs,omitempty"`

	// NextRun is the first unexplored run index (Rand only).
	NextRun int `json:"nextRun,omitempty"`

	// Pool is the parked worker-pool state (parallel checkpoints only).
	Pool *PoolState `json:"pool,omitempty"`
}

// EngineState is the serialized frontier of one searcher.
type EngineState struct {
	// Kind identifies the engine: "bounded" (DFS/IPB/IDB), "sleepset" or
	// "dpor".
	Kind string `json:"kind"`
	// Model and Bound are the bounded engine's cost model and budget.
	Model int `json:"model,omitempty"`
	Bound int `json:"bound,omitempty"`
	// Pruned is the bounded engine's skipped-an-over-bound-branch flag.
	Pruned bool `json:"pruned,omitempty"`
	// PrunedBranches is the pruning engines' retired-sibling count.
	PrunedBranches int `json:"prunedBranches,omitempty"`
	// Executions performed by this engine so far.
	Executions int `json:"executions"`
	// MaxThreads, AnalyzeFrom and Borrowed are DPOR bookkeeping (dpor.go).
	MaxThreads  int `json:"maxThreads,omitempty"`
	AnalyzeFrom int `json:"analyzeFrom,omitempty"`
	Borrowed    int `json:"borrowed,omitempty"`
	// Nodes is the DFS stack, shallowest first.
	Nodes []NodeState `json:"nodes"`
}

// NodeState is one serialized scheduling point of an engine's stack. Which
// fields are meaningful depends on the engine kind; irrelevant ones are
// omitted.
type NodeState struct {
	Order []int `json:"order"`
	Idx   int   `json:"idx"`
	// Bounded engine: per-choice costs, owned sibling range, prefix cost.
	Costs []int `json:"costs,omitempty"`
	Hi    int   `json:"hi,omitempty"`
	Base  int   `json:"base,omitempty"`
	// Pruning engines: per-choice pending footprints and the sleep set.
	Infos []PendingState `json:"infos,omitempty"`
	Sleep []SleepEntry   `json:"sleep,omitempty"`
	// Sleep-set engine: case-decision marker.
	IsCase bool `json:"isCase,omitempty"`
	// DPOR: explored and to-explore choice sets, thread count at this
	// point, and the selecting thread of a case node (-1 = thread node).
	Done      []bool `json:"done,omitempty"`
	Backtrack []bool `json:"backtrack,omitempty"`
	NThreads  int    `json:"nthreads,omitempty"`
	SelOf     int    `json:"selOf,omitempty"`
}

// PendingState mirrors vthread.PendingInfo for serialization (Footprint is
// opaque; it round-trips through its object-key list).
type PendingState struct {
	IsAccess bool     `json:"isAccess,omitempty"`
	Key      string   `json:"key,omitempty"`
	IsWrite  bool     `json:"isWrite,omitempty"`
	Objects  []string `json:"objects,omitempty"`
	ReadOnly bool     `json:"readOnly,omitempty"`
	Opaque   bool     `json:"opaque,omitempty"`
	IsJoin   bool     `json:"isJoin,omitempty"`
	JoinOf   int      `json:"joinOf,omitempty"`
}

// SleepEntry is one sleep-set member; entries are sorted by thread id so a
// checkpoint's bytes are deterministic.
type SleepEntry struct {
	Thread int          `json:"thread"`
	Info   PendingState `json:"info"`
}

// PoolState is a suspended parallel job: every parked unit (engine plus
// partial per-unit tallies), every finished unit's result, and the job's
// shared budgets and counters.
type PoolState struct {
	BudgetLeft    int64 `json:"budgetLeft"`
	ExecLimitLeft int64 `json:"execLimitLeft"`
	OwnExecs      int64 `json:"ownExecs,omitempty"`
	Execs         int64 `json:"execs"`
	Steps         int64 `json:"steps"`
	Aborts        int64 `json:"aborts,omitempty"`
	// Counted and CommittedExecs are the schedules and executions committed
	// by earlier bounds (iterative parallel only).
	Counted        int   `json:"counted,omitempty"`
	CommittedExecs int64 `json:"committedExecs,omitempty"`

	Units []UnitState       `json:"units"`
	Done  []UnitResultState `json:"done,omitempty"`
}

// UnitState is one parked unit of a suspended job.
type UnitState struct {
	Key []int `json:"key"`
	// Positioned units run immediately on resume; unpositioned (donated,
	// never started) units backtrack first — unit.fresh, serialized.
	Positioned bool             `json:"positioned"`
	Engine     *EngineState     `json:"engine"`
	Partial    *UnitResultState `json:"partial,omitempty"`
}

// UnitResultState serializes a unitResult.
type UnitResultState struct {
	Key        []int            `json:"key"`
	Schedules  int              `json:"schedules"`
	BuggyOffs  []int            `json:"buggyOffs,omitempty"`
	Failure    *vthread.Failure `json:"failure,omitempty"`
	Witness    sched.Schedule   `json:"witness,omitempty"`
	Pruned     bool             `json:"pruned,omitempty"`
	Branches   int              `json:"branches,omitempty"`
	MaxEnabled int              `json:"maxEnabled,omitempty"`
	SchedPts   int              `json:"schedPoints,omitempty"`
	Threads    int              `json:"threads,omitempty"`
	PanicMsg   string           `json:"panic,omitempty"`
	// Per-unit work tallies (distributed units only; the in-process pool
	// counts work on shared job counters and leaves these zero).
	Executions int   `json:"executions,omitempty"`
	Steps      int64 `json:"steps,omitempty"`
	Aborted    int   `json:"aborted,omitempty"`
}

// ---------------------------------------------------------------------------
// Stop control: interruption, deadline, and the Stopped verdict.

// StopReason says why an exploration stopped. The zero value means the
// search ran to its natural end (exhaustion, or Rand's full sweep).
type StopReason int

const (
	// StopCompleted: the search was not cut short.
	StopCompleted StopReason = iota
	// StopLimit: the schedule or execution budget stopped it.
	StopLimit
	// StopDeadline: the wall-clock deadline expired.
	StopDeadline
	// StopInterrupted: an interrupt (SIGINT/SIGTERM, or an injected fault)
	// stopped it.
	StopInterrupted
)

// String returns the reason as reported in the CSV status column.
func (s StopReason) String() string {
	switch s {
	case StopCompleted:
		return "completed"
	case StopLimit:
		return "limit"
	case StopDeadline:
		return "deadline"
	case StopInterrupted:
		return "interrupted"
	}
	return "unknown"
}

// stopCtl is the shared stop signal of one exploration: polled once before
// every execution by the sequential drivers and by every pool worker. The
// fast path when nothing is configured and nothing armed is two nil checks
// and one atomic load.
type stopCtl struct {
	interrupt <-chan struct{}
	deadline  time.Time
	tripped   atomic.Int32 // 0 = running, else StopReason+1
	// crashed marks a simulated mid-write death (faultinject): the final
	// stop path must then NOT write the checkpoint again — the process is
	// pretending to be dead, and the on-disk file must stay whatever the
	// crash left behind.
	crashed atomic.Bool
}

func newStopCtl(cfg Config) *stopCtl {
	return &stopCtl{interrupt: cfg.Interrupt, deadline: cfg.Deadline}
}

// trip latches the first stop reason.
func (c *stopCtl) trip(r StopReason) {
	c.tripped.CompareAndSwap(0, int32(r)+1)
}

// reason returns the latched stop reason, false while running.
func (c *stopCtl) reason() (StopReason, bool) {
	if v := c.tripped.Load(); v != 0 {
		return StopReason(v - 1), true
	}
	return StopCompleted, false
}

// poll checks every stop source and latches the first that fires.
func (c *stopCtl) poll() (StopReason, bool) {
	if c == nil {
		return StopCompleted, false
	}
	if v := c.tripped.Load(); v != 0 {
		return StopReason(v - 1), true
	}
	if faultinject.Hit(faultinject.ExploreInterrupt) {
		c.trip(StopInterrupted)
		return c.reason()
	}
	if c.interrupt != nil {
		select {
		case <-c.interrupt:
			c.trip(StopInterrupted)
			return c.reason()
		default:
		}
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.trip(StopDeadline)
		return c.reason()
	}
	return StopCompleted, false
}

// ckWriter paces periodic checkpoint writes by execution count.
type ckWriter struct {
	path  string
	every int
	last  int
}

func newCkWriter(cfg Config) *ckWriter {
	if cfg.CheckpointPath == "" || cfg.CheckpointEvery <= 0 {
		return nil
	}
	return &ckWriter{path: cfg.CheckpointPath, every: cfg.CheckpointEvery}
}

// due reports that another periodic write is owed at this execution count.
func (w *ckWriter) due(execs int) bool {
	return w != nil && execs-w.last >= w.every
}

// ---------------------------------------------------------------------------
// File I/O.

// Save writes the checkpoint atomically and durably (temp file, fsync,
// rename, parent-directory fsync — see fsatomic.WriteFile), so a crash or
// power loss mid-write never destroys the previous checkpoint. The
// faultinject.CheckpointWrite point simulates a death mid-write (half the
// bytes in the temp file, no rename) and the faultinject.CheckpointDirSync
// point a death between the rename and the directory sync; both return
// faultinject.ErrInjected, which callers treat as "the process died here".
func (ck *Checkpoint) Save(path string) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	data = append(data, '\n')
	if faultinject.Hit(faultinject.CheckpointWrite) {
		_ = os.WriteFile(path+".tmp", data[:len(data)/2], 0o644)
		return faultinject.ErrInjected
	}
	if err := fsatomic.WriteFile(path, data, 0o644); err != nil {
		if errors.Is(err, faultinject.ErrInjected) {
			return err
		}
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file, with clear errors
// for corrupt or truncated files and unsupported versions.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("checkpoint %s: corrupt or truncated: %v", path, err)
	}
	if err := ck.validate(); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return ck, nil
}

func (ck *Checkpoint) validate() error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("format version %d, this build reads version %d",
			ck.Version, CheckpointVersion)
	}
	switch ck.Technique {
	case "DFS", "IPB", "IDB", "Rand", "DPOR", "sleepset":
	default:
		return fmt.Errorf("unknown technique %q", ck.Technique)
	}
	if ck.Result == nil {
		return errors.New("missing partial result")
	}
	if ck.Limit <= 0 {
		return fmt.Errorf("non-positive limit %d", ck.Limit)
	}
	return nil
}

// newCheckpoint builds the envelope every driver's snapshot shares.
func newCheckpoint(cfg Config, tech string, r *Result) *Checkpoint {
	return &Checkpoint{
		Version:       CheckpointVersion,
		Technique:     tech,
		Limit:         cfg.Limit,
		Seed:          cfg.Seed,
		MaxBound:      cfg.MaxBound,
		MaxExecutions: cfg.MaxExecutions,
		Benchmark:     cfg.Meta.Benchmark,
		Racy:          cfg.Meta.Racy,
		NoRace:        cfg.Meta.NoRace,
		Result:        r,
	}
}

// writeCheckpoint saves ck to cfg.CheckpointPath when one is configured.
// An injected crash returns true (the caller must stop as if killed); a
// real write error is recorded on r and the search continues — losing the
// checkpoint must not lose the run.
func writeCheckpoint(cfg Config, r *Result, ck *Checkpoint) (crashed bool) {
	if cfg.CheckpointPath == "" {
		return false
	}
	err := ck.Save(cfg.CheckpointPath)
	if err == nil {
		return false
	}
	if errors.Is(err, faultinject.ErrInjected) {
		return true
	}
	r.CheckpointError = err.Error()
	return false
}

// ---------------------------------------------------------------------------
// Engine snapshot/restore.

func threadsToInts(ts []sched.ThreadID) []int {
	out := make([]int, len(ts))
	for i, t := range ts {
		out[i] = int(t)
	}
	return out
}

func intsToThreads(xs []int) []sched.ThreadID {
	out := make([]sched.ThreadID, len(xs))
	for i, x := range xs {
		out[i] = sched.ThreadID(x)
	}
	return out
}

func pendingToState(p vthread.PendingInfo) PendingState {
	ps := PendingState{
		IsAccess: p.IsAccess, Key: p.Key, IsWrite: p.IsWrite,
		ReadOnly: p.ReadOnly, Opaque: p.Opaque,
		IsJoin: p.IsJoin, JoinOf: int(p.JoinOf),
	}
	for i := 0; i < p.Objects.Len(); i++ {
		ps.Objects = append(ps.Objects, p.Objects.Obj(i))
	}
	return ps
}

func stateToPending(ps PendingState) vthread.PendingInfo {
	return vthread.PendingInfo{
		IsAccess: ps.IsAccess, Key: ps.Key, IsWrite: ps.IsWrite,
		Objects:  vthread.NewFootprint(ps.Objects...),
		ReadOnly: ps.ReadOnly, Opaque: ps.Opaque,
		IsJoin: ps.IsJoin, JoinOf: sched.ThreadID(ps.JoinOf),
	}
}

func pendingsToStates(ps []vthread.PendingInfo) []PendingState {
	out := make([]PendingState, len(ps))
	for i, p := range ps {
		out[i] = pendingToState(p)
	}
	return out
}

func statesToPendings(ss []PendingState) []vthread.PendingInfo {
	out := make([]vthread.PendingInfo, len(ss))
	for i, s := range ss {
		out[i] = stateToPending(s)
	}
	return out
}

func sleepToEntries(m map[sched.ThreadID]vthread.PendingInfo) []SleepEntry {
	if len(m) == 0 {
		return nil
	}
	es := make([]SleepEntry, 0, len(m))
	for t, info := range m {
		es = append(es, SleepEntry{Thread: int(t), Info: pendingToState(info)})
	}
	sort.Slice(es, func(a, b int) bool { return es[a].Thread < es[b].Thread })
	return es
}

func sleepFromEntries(es []SleepEntry) map[sched.ThreadID]vthread.PendingInfo {
	m := make(map[sched.ThreadID]vthread.PendingInfo, len(es))
	for _, e := range es {
		m[sched.ThreadID(e.Thread)] = stateToPending(e.Info)
	}
	return m
}

// engineTechName maps a searcher to its checkpoint technique string.
func engineTechName(eng searcher) string {
	switch e := eng.(type) {
	case *engine:
		switch e.model {
		case CostPreemptions:
			return "IPB"
		case CostDelays:
			return "IDB"
		}
		return "DFS"
	case *ssEngine:
		return "sleepset"
	case *dporEngine:
		return "DPOR"
	}
	return "unknown"
}

// snapshotSearcher serializes any searcher's frontier.
func snapshotSearcher(eng searcher) *EngineState {
	switch e := eng.(type) {
	case *engine:
		return e.snapshot()
	case *ssEngine:
		return e.snapshot()
	case *dporEngine:
		return e.snapshot()
	}
	panic("explore: unsnapshotable searcher")
}

// restoreSearcher rebuilds a searcher from its serialized frontier,
// validating every structural invariant so a hand-edited or damaged
// checkpoint fails loudly instead of corrupting the search.
func restoreSearcher(cfg Config, st *EngineState) (searcher, error) {
	if st == nil {
		return nil, errors.New("missing engine state")
	}
	switch st.Kind {
	case "bounded":
		return restoreBounded(cfg, st)
	case "sleepset":
		return restoreSleepSet(cfg, st)
	case "dpor":
		return restoreDPOR(cfg, st)
	}
	return nil, fmt.Errorf("unknown engine kind %q", st.Kind)
}

func (e *engine) snapshot() *EngineState {
	st := &EngineState{Kind: "bounded", Model: int(e.model), Bound: e.bound,
		Pruned: e.pruned, Executions: e.executions,
		Nodes: make([]NodeState, len(e.stack))}
	for i := range e.stack {
		nd := &e.stack[i]
		st.Nodes[i] = NodeState{
			Order: threadsToInts(nd.order),
			Costs: append([]int(nil), nd.costs...),
			Idx:   nd.idx, Hi: nd.hi, Base: nd.base,
		}
	}
	return st
}

func restoreBounded(cfg Config, st *EngineState) (*engine, error) {
	if st.Model < int(CostNone) || st.Model > int(CostDelays) {
		return nil, fmt.Errorf("bad cost model %d", st.Model)
	}
	e := newEngine(cfg, CostModel(st.Model), st.Bound)
	e.pruned = st.Pruned
	e.executions = st.Executions
	e.stack = make([]node, len(st.Nodes))
	for i, ns := range st.Nodes {
		if len(ns.Order) == 0 || len(ns.Costs) != len(ns.Order) ||
			ns.Idx < 0 || ns.Idx > ns.Hi || ns.Hi >= len(ns.Order) {
			return nil, fmt.Errorf("inconsistent frontier node %d", i)
		}
		e.stack[i] = node{
			order: intsToThreads(ns.Order),
			costs: append([]int(nil), ns.Costs...),
			idx:   ns.Idx, hi: ns.Hi, base: ns.Base,
		}
	}
	return e, nil
}

func (e *ssEngine) snapshot() *EngineState {
	st := &EngineState{Kind: "sleepset", Executions: e.executions,
		PrunedBranches: e.pruned, Nodes: make([]NodeState, len(e.stack))}
	for i := range e.stack {
		nd := &e.stack[i]
		st.Nodes[i] = NodeState{
			Order:  threadsToInts(nd.order),
			Infos:  pendingsToStates(nd.infos),
			Idx:    nd.idx,
			Sleep:  sleepToEntries(nd.sleep),
			IsCase: nd.isCase,
		}
	}
	return st
}

func restoreSleepSet(cfg Config, st *EngineState) (*ssEngine, error) {
	e := &ssEngine{cfg: cfg}
	e.executions = st.Executions
	e.pruned = st.PrunedBranches
	e.stack = make([]ssNode, len(st.Nodes))
	for i, ns := range st.Nodes {
		if len(ns.Order) == 0 || len(ns.Infos) != len(ns.Order) ||
			ns.Idx < 0 || ns.Idx >= len(ns.Order) {
			return nil, fmt.Errorf("inconsistent frontier node %d", i)
		}
		e.stack[i] = ssNode{
			order:  intsToThreads(ns.Order),
			infos:  statesToPendings(ns.Infos),
			idx:    ns.Idx,
			sleep:  sleepFromEntries(ns.Sleep),
			isCase: ns.IsCase,
		}
	}
	return e, nil
}

func (e *dporEngine) snapshot() *EngineState {
	st := &EngineState{Kind: "dpor", Executions: e.executions,
		PrunedBranches: e.pruned, MaxThreads: e.maxThreads,
		AnalyzeFrom: e.analyzeFrom, Borrowed: e.borrowed,
		Nodes: make([]NodeState, len(e.stack))}
	for i := range e.stack {
		nd := &e.stack[i]
		st.Nodes[i] = NodeState{
			Order:     threadsToInts(nd.order),
			Infos:     pendingsToStates(nd.infos),
			Idx:       nd.idx,
			Done:      append([]bool(nil), nd.done...),
			Backtrack: append([]bool(nil), nd.backtrack...),
			Sleep:     sleepToEntries(nd.sleep),
			NThreads:  nd.nthreads,
			SelOf:     int(nd.selOf),
		}
	}
	return st
}

func restoreDPOR(cfg Config, st *EngineState) (*dporEngine, error) {
	e := newDPOREngine(cfg)
	e.executions = st.Executions
	e.pruned = st.PrunedBranches
	e.maxThreads = st.MaxThreads
	e.borrowed = st.Borrowed
	e.analyzeFrom = st.AnalyzeFrom
	if e.analyzeFrom < 0 || e.analyzeFrom > len(st.Nodes) {
		return nil, fmt.Errorf("analyzeFrom %d out of range", e.analyzeFrom)
	}
	e.stack = make([]dporNode, len(st.Nodes))
	for i, ns := range st.Nodes {
		if len(ns.Order) == 0 || len(ns.Infos) != len(ns.Order) ||
			len(ns.Done) != len(ns.Order) || len(ns.Backtrack) != len(ns.Order) ||
			ns.Idx < 0 || ns.Idx >= len(ns.Order) {
			return nil, fmt.Errorf("inconsistent frontier node %d", i)
		}
		e.stack[i] = dporNode{
			order:     intsToThreads(ns.Order),
			infos:     statesToPendings(ns.Infos),
			idx:       ns.Idx,
			done:      append([]bool(nil), ns.Done...),
			backtrack: append([]bool(nil), ns.Backtrack...),
			sleep:     sleepFromEntries(ns.Sleep),
			nthreads:  ns.NThreads,
			selOf:     sched.ThreadID(ns.SelOf),
		}
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Resume.

// Resume reconstructs an interrupted exploration from a checkpoint and
// runs it onward — to completion, the limit, or the next interruption.
// cfg supplies the program and environment (Program, Visible, BoundsCheck,
// MaxSteps, Debug, Workers) plus fresh stop/checkpoint controls; the search
// parameters (Limit, Seed, MaxBound, MaxExecutions) come from the
// checkpoint. A sequential checkpoint resumes sequentially regardless of
// cfg.Workers; a parallel (pool) checkpoint resumes on the pool; Rand
// checkpoints carry no frontier and resume on either driver with identical
// results.
func Resume(ck *Checkpoint, cfg Config) (*Result, error) {
	if err := ck.validate(); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	cfg.Limit = ck.Limit
	cfg.Seed = ck.Seed
	cfg.MaxBound = ck.MaxBound
	cfg.MaxExecutions = ck.MaxExecutions
	cfg = cfg.withDefaults()
	rr := *ck.Result
	r := &rr
	// The carried-over partial result says why the *previous* run stopped;
	// this run's fate is its own (the drivers set Stopped only when they
	// stop early, so a natural finish must read completed).
	r.Stopped = StopCompleted
	r.CheckpointError = ""
	if ck.Pool != nil {
		return resumeParallel(ck, cfg, r)
	}
	switch ck.Technique {
	case "DFS", "sleepset", "DPOR":
		wantKind := map[string]string{"DFS": "bounded", "sleepset": "sleepset", "DPOR": "dpor"}[ck.Technique]
		if ck.Engine == nil || ck.Engine.Kind != wantKind {
			return nil, fmt.Errorf("checkpoint: technique %s needs engine kind %q", ck.Technique, wantKind)
		}
		eng, err := restoreSearcher(cfg, ck.Engine)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		return runSequentialTree(cfg, r, eng), nil
	case "IPB", "IDB":
		model := CostPreemptions
		if ck.Technique == "IDB" {
			model = CostDelays
		}
		if ck.Engine == nil || ck.Engine.Kind != "bounded" {
			return nil, errors.New("checkpoint: iterative resume needs a bounded engine state")
		}
		eng, err := restoreBounded(cfg, ck.Engine)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		if eng.model != model || eng.bound != ck.Bound {
			return nil, fmt.Errorf("checkpoint: engine model/bound %v/%d does not match technique %s at bound %d",
				eng.model, eng.bound, ck.Technique, ck.Bound)
		}
		return iterSequential(cfg, model, r, ck.Bound, ck.BoundExecs, eng), nil
	case "Rand":
		if ck.NextRun < 0 || ck.NextRun > cfg.Limit {
			return nil, fmt.Errorf("checkpoint: nextRun %d out of range", ck.NextRun)
		}
		if cfg.Workers > 1 {
			return runRandParallel(cfg, r, ck.NextRun), nil
		}
		return randSequential(cfg, r, ck.NextRun), nil
	}
	return nil, fmt.Errorf("checkpoint: unknown technique %q", ck.Technique)
}

// resumeParallel reconstructs a suspended pool job.
func resumeParallel(ck *Checkpoint, cfg Config, r *Result) (*Result, error) {
	ps := ck.Pool
	rs := &poolResume{
		budget:         ps.BudgetLeft,
		execLimit:      ps.ExecLimitLeft,
		ownExecs:       ps.OwnExecs,
		execs:          ps.Execs,
		steps:          ps.Steps,
		aborts:         ps.Aborts,
		counted:        ps.Counted,
		committedExecs: ps.CommittedExecs,
		bound:          ck.Bound,
	}
	for i, us := range ps.Units {
		eng, err := restoreSearcher(cfg, us.Engine)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: unit %d: %w", i, err)
		}
		u := &unit{eng: eng, key: append([]int(nil), us.Key...), fresh: us.Positioned}
		if us.Partial != nil {
			u.res = stateToUnitResult(us.Partial)
		}
		rs.units = append(rs.units, u)
	}
	for _, ds := range ps.Done {
		rs.results = append(rs.results, stateToUnitResult(&ds))
	}
	switch ck.Technique {
	case "DFS", "DPOR":
		return treeParallel(cfg, r, rs), nil
	case "IPB", "IDB":
		model := CostPreemptions
		if ck.Technique == "IDB" {
			model = CostDelays
		}
		return runIterativeParallel(cfg, model, r, rs), nil
	}
	return nil, fmt.Errorf("checkpoint: technique %q has no pool state", ck.Technique)
}

// unitResult <-> UnitResultState.

func unitResultToState(u *unitResult) *UnitResultState {
	return &UnitResultState{
		Key:        append([]int(nil), u.key...),
		Schedules:  u.schedules,
		BuggyOffs:  append([]int(nil), u.buggyOffs...),
		Failure:    u.failure,
		Witness:    u.witness,
		Pruned:     u.pruned,
		Branches:   u.branches,
		MaxEnabled: u.maxEnabled,
		SchedPts:   u.schedPts,
		Threads:    u.threads,
		PanicMsg:   u.panicMsg,
		Executions: u.executions,
		Steps:      u.steps,
		Aborted:    u.aborted,
	}
}

func stateToUnitResult(s *UnitResultState) *unitResult {
	u := &unitResult{
		key:       append([]int(nil), s.Key...),
		schedules: s.Schedules,
		buggyOffs: append([]int(nil), s.BuggyOffs...),
		failure:   s.Failure,
		witness:   s.Witness,
		pruned:    s.Pruned,
		branches:  s.Branches,
		panicMsg:  s.PanicMsg,
	}
	u.maxEnabled = s.MaxEnabled
	u.schedPts = s.SchedPts
	u.threads = s.Threads
	u.executions = s.Executions
	u.steps = s.Steps
	u.aborted = s.Aborted
	return u
}
