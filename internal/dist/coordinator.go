package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/faultinject"
	"sctbench/internal/race"
)

// JobConfig parameterises one distributed exploration job.
type JobConfig struct {
	// Bench is the benchmark under exploration.
	Bench *bench.Benchmark
	// Technique must be DFS, IPB, IDB or DPOR (Rand shards trivially by
	// run index and needs no coordinator; sleepset is sequential-only).
	Technique explore.Technique
	// Limit/Seed/MaxBound/MaxExecutions are the search parameters, with
	// the explore package's defaults applied when zero.
	Limit         int
	Seed          uint64
	MaxBound      int
	MaxExecutions int
	// Racy is the promoted shared-variable set of the race phase; NoRace
	// disables promotion (every access visible). Both are propagated to
	// workers verbatim so all processes see the same scheduling points.
	Racy   []string
	NoRace bool
	// Deadline, when nonzero, drains the job at that wall-clock time with
	// Stopped = StopDeadline. Interrupt, when non-nil, drains when closed
	// (the CLI wires SIGINT/SIGTERM here).
	Deadline  time.Time
	Interrupt <-chan struct{}
	// LeaseTTL is how long a unit lease survives without a heartbeat
	// before the unit is re-dispatched (default 2s).
	LeaseTTL time.Duration
	// Shards is how many units each pass is split into up front (default
	// 8). More shards = finer failover granularity and better balance,
	// at slightly more dispatch overhead.
	Shards int
	// CheckpointPath, when nonempty, is where the coordinator durably
	// writes its resumable job checkpoint after every completion, park
	// and drain (explore.Checkpoint format — `sctrun -resume` and
	// ResumeCoordinator both read it).
	CheckpointPath string
}

func (jc JobConfig) withDefaults() JobConfig {
	if jc.Limit == 0 {
		jc.Limit = explore.DefaultLimit
	}
	if jc.MaxBound == 0 {
		jc.MaxBound = explore.DefaultMaxBound
	}
	if jc.MaxExecutions == 0 {
		jc.MaxExecutions = explore.DefaultMaxExecutions
	}
	if jc.LeaseTTL <= 0 {
		jc.LeaseTTL = 2 * time.Second
	}
	if jc.Shards <= 0 {
		jc.Shards = 8
	}
	return jc
}

// exploreConfig is the program environment for the coordinator's own
// sharding runs (one execution per pass).
func (jc JobConfig) exploreConfig() explore.Config {
	var visible func(string) bool
	if !jc.NoRace {
		visible = race.Promoted(jc.Racy)
	}
	return explore.Config{
		Program: jc.Bench.New(), Visible: visible,
		BoundsCheck: jc.Bench.BoundsCheck, MaxSteps: jc.Bench.MaxSteps,
		Limit: jc.Limit, Seed: jc.Seed,
		MaxBound: jc.MaxBound, MaxExecutions: jc.MaxExecutions,
	}
}

// ErrCoordinatorCrashed is returned by Wait when an injected
// DistCoordCrash fault killed the coordinator mid-merge; the job must be
// resumed from its checkpoint by a fresh coordinator.
var ErrCoordinatorCrashed = errors.New("dist: coordinator crashed (injected)")

// maxUnitRetries bounds re-dispatch of a unit whose worker reported a
// panic: a deterministic program panic would bounce forever, so after
// this many attempts the panicked result is accepted and its counts are
// forfeited at merge time (surfacing as Result.WorkerPanics).
const maxUnitRetries = 2

type coordPhase int

const (
	phaseSeeding coordPhase = iota
	phaseRunning
	phaseDraining
	phaseDone
	phaseCrashed
)

func (p coordPhase) String() string {
	switch p {
	case phaseSeeding:
		return "seeding"
	case phaseRunning:
		return "running"
	case phaseDraining:
		return "draining"
	case phaseDone:
		return "done"
	case phaseCrashed:
		return "crashed"
	}
	return "unknown"
}

// unitEntry is one shard of the current pass.
type unitEntry struct {
	id      int
	us      *explore.UnitState
	done    bool
	res     *explore.UnitResultState
	leaseID int64 // 0 = not leased
	retries int   // panicked completions so far
}

// leaseRec is one outstanding lease.
type leaseRec struct {
	unitID int
	expiry time.Time
}

// Coordinator owns one job: it shards each pass into leased units, serves
// them to workers over HTTP, re-dispatches expired leases, merges
// completions canonically and folds passes into the final Result exactly
// as the in-process drivers do.
type Coordinator struct {
	jc   JobConfig
	ecfg explore.Config
	iter bool // IPB/IDB: bound loop; DFS/DPOR: single pass

	mu       sync.Mutex
	cond     *sync.Cond
	phase    coordPhase
	sealed   bool // current pass merged; late submissions are stale
	bound    int
	counted  int             // schedules committed by earlier bounds
	res      *explore.Result // committed (pre-current-pass) result
	units    map[int]*unitEntry
	leases   map[int64]*leaseRec
	nextUnit int
	nextLse  int64
	limitHit bool
	drainRsn explore.StopReason
	workers  map[string]bool

	final    *explore.Result
	finalErr error
	doneCh   chan struct{}
	stopCh   chan struct{}
	srv      *http.Server
	lis      net.Listener
}

// NewCoordinator builds a coordinator for a fresh job.
func NewCoordinator(jc JobConfig) (*Coordinator, error) {
	jc = jc.withDefaults()
	if jc.Bench == nil {
		return nil, errors.New("dist: JobConfig.Bench is required")
	}
	switch jc.Technique {
	case explore.DFS, explore.IPB, explore.IDB, explore.DPOR:
	default:
		return nil, fmt.Errorf("dist: technique %s cannot be distributed", jc.Technique)
	}
	c := &Coordinator{
		jc:      jc,
		ecfg:    jc.exploreConfig(),
		iter:    jc.Technique == explore.IPB || jc.Technique == explore.IDB,
		phase:   phaseSeeding,
		res:     &explore.Result{Technique: jc.Technique},
		units:   map[int]*unitEntry{},
		leases:  map[int64]*leaseRec{},
		workers: map[string]bool{},
		doneCh:  make(chan struct{}),
		stopCh:  make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// ResumeCoordinator rebuilds a coordinator from a job checkpoint written
// by a previous coordinator (or by the in-process pool — both write the
// same PoolState format). The search parameters come from the checkpoint,
// overriding jc, so a resumed job cannot diverge from the original.
func ResumeCoordinator(ck *explore.Checkpoint, jc JobConfig) (*Coordinator, error) {
	if ck.Pool == nil {
		return nil, errors.New("dist: checkpoint has no pool state (sequential checkpoints resume via sctrun -resume)")
	}
	var tech explore.Technique
	switch ck.Technique {
	case "DFS":
		tech = explore.DFS
	case "IPB":
		tech = explore.IPB
	case "IDB":
		tech = explore.IDB
	case "DPOR":
		tech = explore.DPOR
	default:
		return nil, fmt.Errorf("dist: technique %q cannot be distributed", ck.Technique)
	}
	jc.Technique = tech
	jc.Limit = ck.Limit
	jc.Seed = ck.Seed
	jc.MaxBound = ck.MaxBound
	jc.MaxExecutions = ck.MaxExecutions
	jc.Racy = ck.Racy
	jc.NoRace = ck.NoRace
	c, err := NewCoordinator(jc)
	if err != nil {
		return nil, err
	}
	rr := *ck.Result
	rr.Stopped = explore.StopCompleted
	rr.CheckpointError = ""
	// Rebase the work tallies so that (baseline + merged per-unit sums)
	// reproduces the pool counters no matter who wrote the checkpoint:
	// dist-written checkpoints carry per-unit tallies (the subtraction
	// cancels them exactly); pool-written ones count work on shared
	// counters and leave the per-unit fields zero, so the whole counter
	// value lands in the baseline instead of being undercounted.
	var sumE, sumA int
	var sumS int64
	for i := range ck.Pool.Done {
		d := &ck.Pool.Done[i]
		sumE, sumS, sumA = sumE+d.Executions, sumS+d.Steps, sumA+d.Aborted
	}
	for i := range ck.Pool.Units {
		if p := ck.Pool.Units[i].Partial; p != nil {
			sumE, sumS, sumA = sumE+p.Executions, sumS+p.Steps, sumA+p.Aborted
		}
	}
	rr.Executions = int(ck.Pool.Execs) - sumE
	rr.TotalSteps = ck.Pool.Steps - sumS
	rr.AbortedExecutions = int(ck.Pool.Aborts) - sumA
	c.res = &rr
	c.bound = ck.Bound
	c.counted = ck.Pool.Counted
	for i := range ck.Pool.Units {
		us := ck.Pool.Units[i]
		c.nextUnit++
		c.units[c.nextUnit] = &unitEntry{id: c.nextUnit, us: &us}
	}
	for i := range ck.Pool.Done {
		ds := ck.Pool.Done[i]
		c.nextUnit++
		c.units[c.nextUnit] = &unitEntry{id: c.nextUnit, done: true, res: &ds}
	}
	if len(c.units) > 0 {
		c.phase = phaseRunning
	}
	return c, nil
}

// Serve starts the coordinator on l and returns immediately; Wait blocks
// for the result. The caller owns l's address (use "127.0.0.1:0" and
// Addr for tests).
func (c *Coordinator) Serve(l net.Listener) {
	c.lis = l
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/job", c.handleJob)
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/complete", c.handleComplete)
	mux.HandleFunc("/v1/park", c.handlePark)
	mux.HandleFunc("/v1/status", c.handleStatus)
	c.srv = &http.Server{Handler: mux}
	go func() { _ = c.srv.Serve(l) }()
	go c.run()
	go c.reaper()
	if c.jc.Interrupt != nil {
		go func() {
			select {
			case <-c.jc.Interrupt:
				c.drain(explore.StopInterrupted)
			case <-c.stopCh:
			}
		}()
	}
}

// Addr is the coordinator's listen address.
func (c *Coordinator) Addr() string { return c.lis.Addr().String() }

// Wait blocks until the job finishes (completed, limit, drained) or the
// coordinator crashed. The Result is the job's final result, nil when an
// error ended it.
func (c *Coordinator) Wait() (*explore.Result, error) {
	<-c.doneCh
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.final, c.finalErr
}

// Close tears the coordinator down (idempotent).
func (c *Coordinator) Close() {
	c.mu.Lock()
	select {
	case <-c.stopCh:
	default:
		close(c.stopCh)
	}
	c.mu.Unlock()
	if c.srv != nil {
		_ = c.srv.Close()
	}
}

// drain asks the job to stop gracefully: running workers park at their
// next poll, and the final checkpoint preserves everything.
func (c *Coordinator) drain(reason explore.StopReason) {
	c.mu.Lock()
	if c.phase == phaseSeeding || c.phase == phaseRunning {
		c.phase = phaseDraining
		c.drainRsn = reason
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// reaper expires leases (re-queueing their units) and watches the
// deadline. It ticks at a quarter of the lease TTL.
func (c *Coordinator) reaper() {
	tick := time.NewTicker(c.jc.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case now := <-tick.C:
			if !c.jc.Deadline.IsZero() && now.After(c.jc.Deadline) {
				c.drain(explore.StopDeadline)
			}
			c.mu.Lock()
			changed := false
			for id, l := range c.leases {
				if now.After(l.expiry) {
					// The worker is dead, hung or partitioned: take the
					// lease back. The unit's stored frontier is exactly
					// what was dispatched, so the re-run loses nothing.
					if u := c.units[l.unitID]; u != nil && u.leaseID == id {
						u.leaseID = 0
					}
					delete(c.leases, id)
					changed = true
				}
			}
			if changed {
				c.cond.Broadcast()
			}
			c.mu.Unlock()
		}
	}
}

// crashLocked simulates the coordinator dying abruptly (DistCoordCrash):
// the server stops answering and Wait reports the crash. State already on
// disk (the checkpoint just written) is all a resumed coordinator gets —
// exactly like a real kill -9.
func (c *Coordinator) crashLocked() {
	c.phase = phaseCrashed
	c.finalErr = ErrCoordinatorCrashed
	c.cond.Broadcast()
	srv := c.srv
	go func() {
		if srv != nil {
			_ = srv.Close()
		}
	}()
}

// run is the job's main loop: seed a pass, wait for it to end, merge,
// fold, decide — mirroring runIterativeParallel's per-bound structure.
func (c *Coordinator) run() {
	defer close(c.doneCh)
	for {
		c.mu.Lock()
		needSeed := len(c.units) == 0 && c.phase == phaseSeeding
		bound := c.bound
		c.mu.Unlock()
		if needSeed {
			set, err := explore.ShardTree(c.ecfg, c.jc.Technique, bound, c.jc.Shards)
			if err != nil {
				c.mu.Lock()
				c.phase = phaseDone
				c.finalErr = err
				c.mu.Unlock()
				return
			}
			c.installShards(set)
		}

		c.mu.Lock()
		if c.phase == phaseSeeding {
			c.phase = phaseRunning
		}
		c.sealed = false
		c.cond.Broadcast()
		for !c.passEndLocked() {
			c.cond.Wait()
		}
		if c.phase == phaseCrashed {
			c.mu.Unlock()
			return
		}
		c.sealed = true
		draining := c.phase == phaseDraining
		done, pending := c.collectLocked()
		c.mu.Unlock()

		if draining {
			c.finishDrain(done, pending)
			return
		}
		if c.finishPass(done) {
			return
		}
	}
}

// passEndLocked: the current pass is over when every unit completed, the
// schedule budget was hit (in-flight work is cancelled, as in the pool),
// or a drain has no leases left outstanding (each was parked, completed
// or expired).
func (c *Coordinator) passEndLocked() bool {
	if c.phase == phaseCrashed {
		return true
	}
	if c.phase == phaseDraining {
		return len(c.leases) == 0
	}
	if c.limitHit {
		return true
	}
	for _, u := range c.units {
		if !u.done {
			return false
		}
	}
	return true
}

// collectLocked snapshots the pass: completed results and the not-done
// units (whose stored frontiers and partial tallies a drain checkpoints).
func (c *Coordinator) collectLocked() (done []*explore.UnitResultState, pending []*explore.UnitState) {
	for _, u := range c.units {
		if u.done {
			done = append(done, u.res)
		} else {
			pending = append(pending, u.us)
		}
	}
	return done, pending
}

// installShards makes a freshly sharded pass leasable.
func (c *Coordinator) installShards(set *explore.ShardSet) {
	c.mu.Lock()
	for i := range set.Done {
		c.nextUnit++
		c.units[c.nextUnit] = &unitEntry{id: c.nextUnit, done: true, res: &set.Done[i]}
	}
	for i := range set.Units {
		c.nextUnit++
		c.units[c.nextUnit] = &unitEntry{id: c.nextUnit, us: &set.Units[i]}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	c.writeCheckpoint()
}

// finishPass merges a completed pass and either finishes the job (true)
// or advances to the next bound (false).
func (c *Coordinator) finishPass(done []*explore.UnitResultState) bool {
	m := explore.MergeUnitStates(done, c.jc.Limit-c.counted)
	c.mu.Lock()
	r := c.res
	if c.iter {
		r.Bound = c.bound
		r.NewSchedules = m.Schedules
	}
	m.FoldInto(r, c.counted)
	c.counted += m.Schedules
	r.Schedules = c.counted
	finish := func(final bool) bool {
		if final {
			c.phase = phaseDone
			c.final = r
			c.cond.Broadcast()
		} else {
			c.units = map[int]*unitEntry{}
			c.leases = map[int64]*leaseRec{}
			c.bound++
			c.phase = phaseSeeding
		}
		c.mu.Unlock()
		return final
	}
	if r.Schedules >= c.jc.Limit || c.limitHit || m.Truncated {
		r.LimitHit = true
		r.Stopped = explore.StopLimit
		return finish(true)
	}
	if !c.iter {
		// Single pass (DFS/DPOR): the space is exhausted — complete,
		// unless a forfeited unit means coverage cannot be claimed.
		if r.WorkerPanics == 0 {
			r.Complete = true
		}
		return finish(true)
	}
	if !m.Pruned {
		// Nothing was pruned anywhere: every schedule costs at most
		// bound, so the space is fully explored.
		if r.WorkerPanics == 0 {
			r.Complete = true
		}
		return finish(true)
	}
	if r.BugFound {
		// The bound that exposed the bug has been fully enumerated;
		// stop, as in the paper's methodology (§5).
		return finish(true)
	}
	if c.bound == c.jc.MaxBound {
		return finish(true)
	}
	if r.Executions >= c.jc.MaxExecutions {
		r.LimitHit = true
		r.Stopped = explore.StopLimit
		return finish(true)
	}
	return finish(false)
}

// finishDrain checkpoints the drained pass (pre-fold, matching the pool's
// checkpoint contract) and produces the partial result: completed units
// plus the partial tallies of parked ones, folded exactly as the pool's
// stopped path folds them.
func (c *Coordinator) finishDrain(done []*explore.UnitResultState, pending []*explore.UnitState) {
	c.writeCheckpoint()
	merged := done
	for _, us := range pending {
		if us.Partial != nil {
			merged = append(merged, us.Partial)
		}
	}
	m := explore.MergeUnitStates(merged, c.jc.Limit-c.counted)
	c.mu.Lock()
	r := c.res
	if c.iter {
		r.Bound = c.bound
		r.NewSchedules = m.Schedules
	}
	m.FoldInto(r, c.counted)
	c.counted += m.Schedules
	r.Schedules = c.counted
	r.Stopped = c.drainRsn
	c.phase = phaseDone
	c.final = r
	c.cond.Broadcast()
	c.mu.Unlock()
}

// writeCheckpoint durably writes the resumable job state: the committed
// (pre-current-pass) Result, plus every not-done unit's frontier and every
// completed unit's result of the current pass — the same pre-fold contract
// as the in-process pool's checkpoints, so `sctrun -resume` can also
// finish a drained distributed job in-process.
func (c *Coordinator) writeCheckpoint() {
	if c.jc.CheckpointPath == "" {
		return
	}
	c.mu.Lock()
	ck := c.checkpointLocked()
	c.mu.Unlock()
	if err := ck.Save(c.jc.CheckpointPath); err != nil {
		c.mu.Lock()
		c.res.CheckpointError = err.Error()
		c.mu.Unlock()
	}
}

func (c *Coordinator) checkpointLocked() *explore.Checkpoint {
	ps := &explore.PoolState{
		Counted:        c.counted,
		CommittedExecs: int64(c.res.Executions),
	}
	var passSched int
	var passExecs, passSteps int64
	var passAborts int
	addWork := func(ur *explore.UnitResultState) {
		passSched += ur.Schedules
		passExecs += int64(ur.Executions)
		passSteps += ur.Steps
		passAborts += ur.Aborted
	}
	for _, u := range c.units {
		if u.done {
			ps.Done = append(ps.Done, *u.res)
			addWork(u.res)
		} else {
			ps.Units = append(ps.Units, *u.us)
			if u.us.Partial != nil {
				addWork(u.us.Partial)
			}
		}
	}
	ps.BudgetLeft = int64(c.jc.Limit-c.counted) - int64(passSched)
	if ps.BudgetLeft < 0 {
		ps.BudgetLeft = 0
	}
	ps.Execs = int64(c.res.Executions) + passExecs
	ps.Steps = c.res.TotalSteps + passSteps
	ps.Aborts = int64(c.res.AbortedExecutions) + int64(passAborts)
	ps.OwnExecs = passExecs
	ps.ExecLimitLeft = int64(c.jc.MaxExecutions) - ps.Execs
	// Snapshot the committed Result: the checkpoint is marshaled outside
	// the lock (Save fsyncs — too slow to hold c.mu across), and c.res
	// keeps mutating as passes fold in. FoldInto replaces reference
	// fields rather than mutating their backing arrays, so a shallow
	// copy is a stable marshal source.
	rr := *c.res
	return &explore.Checkpoint{
		Version:       explore.CheckpointVersion,
		Technique:     c.jc.Technique.String(),
		Limit:         c.jc.Limit,
		Seed:          c.jc.Seed,
		MaxBound:      c.jc.MaxBound,
		MaxExecutions: c.jc.MaxExecutions,
		Benchmark:     c.jc.Bench.Name,
		Racy:          c.jc.Racy,
		NoRace:        c.jc.NoRace,
		Result:        &rr,
		Bound:         c.bound,
		Pool:          ps,
	}
}

// --------------------------------------------------------------------------
// HTTP handlers.

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	spec := JobSpec{
		Benchmark: c.jc.Bench.Name,
		Technique: c.jc.Technique.String(),
		Limit:     c.jc.Limit,
		Seed:      c.jc.Seed,
		Racy:      c.jc.Racy,
		NoRace:    c.jc.NoRace,
	}
	if !c.jc.Deadline.IsZero() {
		spec.DeadlineMillis = c.jc.Deadline.UnixMilli()
	}
	writeJSON(w, spec)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	hb := c.jc.LeaseTTL / 3
	if hb <= 0 {
		hb = time.Millisecond
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Worker != "" {
		c.workers[req.Worker] = true
	}
	switch c.phase {
	case phaseDone, phaseCrashed:
		writeJSON(w, LeaseReply{Status: StatusDone})
		return
	case phaseDraining:
		writeJSON(w, LeaseReply{Status: StatusDrain})
		return
	case phaseSeeding:
		writeJSON(w, LeaseReply{Status: StatusWait, RetryMillis: 20})
		return
	}
	if c.limitHit || c.sealed {
		writeJSON(w, LeaseReply{Status: StatusWait, RetryMillis: 20})
		return
	}
	// Lex-smallest pending unit first: the frontier advances in
	// approximately the sequential visit order, the same heuristic as the
	// pool's lex-priority stealing.
	var pick *unitEntry
	for _, u := range c.units {
		if u.done || u.leaseID != 0 {
			continue
		}
		if pick == nil || explore.CompareUnitKeys(u.us.Key, pick.us.Key) < 0 {
			pick = u
		}
	}
	if pick == nil {
		writeJSON(w, LeaseReply{Status: StatusWait, RetryMillis: 20})
		return
	}
	c.nextLse++
	id := c.nextLse
	c.leases[id] = &leaseRec{unitID: pick.id, expiry: time.Now().Add(c.jc.LeaseTTL)}
	pick.leaseID = id
	writeJSON(w, LeaseReply{
		Status: StatusUnit, LeaseID: id, UnitID: pick.id, Unit: pick.us,
		Budget:          c.jc.Limit - c.counted,
		HeartbeatMillis: hb.Milliseconds(),
		RetryMillis:     20,
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[req.LeaseID]
	if !ok {
		writeJSON(w, HeartbeatReply{Status: StatusStale})
		return
	}
	switch {
	case c.phase == phaseDraining:
		writeJSON(w, HeartbeatReply{Status: StatusDrain})
	case c.phase == phaseDone || c.phase == phaseCrashed || c.sealed || c.limitHit:
		delete(c.leases, req.LeaseID)
		writeJSON(w, HeartbeatReply{Status: StatusCancel})
	default:
		if u := c.units[l.unitID]; u == nil || u.done {
			// Completed by a re-dispatch race; stop the wasted work.
			delete(c.leases, req.LeaseID)
			writeJSON(w, HeartbeatReply{Status: StatusCancel})
			return
		}
		l.expiry = time.Now().Add(c.jc.LeaseTTL)
		writeJSON(w, HeartbeatReply{Status: StatusOK})
	}
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Result == nil {
		http.Error(w, "complete without result", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	if l, ok := c.leases[req.LeaseID]; ok && l.unitID == req.UnitID {
		delete(c.leases, req.LeaseID)
	}
	u, ok := c.units[req.UnitID]
	if !ok || c.sealed || c.phase == phaseDone || c.phase == phaseCrashed {
		// The pass moved on without this unit (budget stop, next bound):
		// the result is dropped. Covered ranges are re-derived from the
		// units actually merged, so dropping is always safe.
		c.mu.Unlock()
		writeJSON(w, CompleteReply{Status: StatusStale})
		return
	}
	if u.done {
		// Duplicate completion (re-dispatch race, duplicated message):
		// determinism makes it identical to the recorded one — ignore.
		c.mu.Unlock()
		writeJSON(w, CompleteReply{Status: StatusOK})
		return
	}
	// A completion from an expired lease (re-dispatch race) is accepted:
	// first wins, and the re-dispatched worker's next heartbeat gets
	// StatusCancel from the u.done check. Only the current lease is
	// detached here; a foreign lease ID stays for the reaper.
	if req.LeaseID == u.leaseID {
		u.leaseID = 0
	}
	if req.Result.PanicMsg != "" && u.retries < maxUnitRetries {
		// The worker panicked inside this unit. Retry it a bounded number
		// of times (the panic may have been the worker's own corruption);
		// a deterministic panic is accepted — forfeited — after the cap.
		u.retries++
		u.leaseID = 0
		c.cond.Broadcast()
		c.mu.Unlock()
		writeJSON(w, CompleteReply{Status: StatusOK})
		return
	}
	u.done = true
	u.res = req.Result
	if req.LimitHit {
		c.limitHit = true
	}
	c.cond.Broadcast()
	crash := faultinject.Hit(faultinject.DistCoordCrash)
	c.mu.Unlock()
	c.writeCheckpoint()
	if crash {
		// The result is recorded and checkpointed but never acknowledged:
		// the coordinator dies mid-merge. The worker's retry will fail,
		// and a resumed coordinator finds the unit already done.
		c.mu.Lock()
		c.crashLocked()
		c.mu.Unlock()
		http.Error(w, "coordinator crashed", http.StatusInternalServerError)
		return
	}
	writeJSON(w, CompleteReply{Status: StatusOK})
}

func (c *Coordinator) handlePark(w http.ResponseWriter, r *http.Request) {
	var req ParkRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Unit == nil {
		http.Error(w, "park without unit", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	u, ok := c.units[req.UnitID]
	// Parks are fenced: only the current lease may replace the unit's
	// stored frontier. A stale park (expired lease, re-dispatch already
	// out) could otherwise regress the unit to an older position — the
	// re-run would then double-count the range in between.
	if !ok || u.done || u.leaseID != req.LeaseID || c.sealed {
		c.mu.Unlock()
		writeJSON(w, ParkReply{Status: StatusStale})
		return
	}
	u.us = req.Unit
	u.leaseID = 0
	delete(c.leases, req.LeaseID)
	c.cond.Broadcast()
	c.mu.Unlock()
	c.writeCheckpoint()
	writeJSON(w, ParkReply{Status: StatusOK})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusReply{
		Phase:   c.phase.String(),
		Bound:   c.bound,
		Leases:  len(c.leases),
		Workers: len(c.workers),
	}
	sched := c.counted
	for _, u := range c.units {
		st.UnitsTotal++
		if u.done {
			st.UnitsDone++
			sched += u.res.Schedules
		} else if u.us.Partial != nil {
			sched += u.us.Partial.Schedules
		}
	}
	st.Schedules = sched
	writeJSON(w, st)
}
