// These tests feed explore-produced witnesses into the minimiser. They
// live in an external test package because internal/explore now imports
// internal/simplify for the corpus harvest — an in-package test importing
// explore would close an import cycle.
package simplify_test

import (
	"testing"

	"sctbench/internal/explore"
	"sctbench/internal/simplify"
	"sctbench/internal/vthread"
)

// racyFlag mirrors the in-package fixture: the bug needs exactly two
// preemptions, so any witness should minimise to PC = 2.
func racyFlag() vthread.Runnable {
	return vthread.Program(func(t0 *vthread.Thread) {
		x := t0.NewVar("x", 0)
		y := t0.NewVar("y", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			x.Store(tw, 1)
			y.Store(tw, 1)
		})
		xv := x.Load(t0)
		yv := y.Load(t0)
		t0.Assert(xv == yv, "x=%d y=%d", xv, yv)
		t0.Join(w)
	})
}

func TestMinimizeKeepsAlreadyMinimalWitness(t *testing.T) {
	r := explore.RunIterative(explore.Config{Program: racyFlag()}, explore.CostPreemptions)
	if !r.BugFound {
		t.Fatal("IPB missed the bug")
	}
	res := simplify.Minimize(racyFlag, r.Witness, simplify.Options{})
	if res.PC != r.Bound {
		t.Fatalf("minimisation changed an already-minimal witness: PC=%d, bound=%d", res.PC, r.Bound)
	}
}

func TestMinimizeTruncatesTrailingSteps(t *testing.T) {
	// Build a witness by hand with junk appended after the failing step;
	// replay truncates at the failure, so the minimised witness must be
	// no longer than the failing prefix.
	r := explore.RunIterative(explore.Config{Program: racyFlag()}, explore.CostPreemptions)
	if !r.BugFound {
		t.Fatal("no witness")
	}
	padded := append(r.Witness.Clone(), 0, 0, 0, 1, 1)
	res := simplify.Minimize(racyFlag, padded, simplify.Options{})
	if res.Failure == nil {
		t.Fatal("padded witness lost the bug")
	}
	if len(res.Schedule) > len(r.Witness) {
		t.Fatalf("minimised schedule longer than the failing prefix: %d > %d",
			len(res.Schedule), len(r.Witness))
	}
}
