package vthread

import (
	"fmt"
	"testing"
	"testing/quick"

	"sctbench/internal/sched"
)

// genProgram builds a deterministic small concurrent program from a shape
// seed: a few workers doing a seed-derived mix of locked and unlocked
// counter traffic, semaphore hand-offs, yields, virtual-time sleeps,
// ticker receives and context-deadline waits. It is bug-free and
// deadlock-free by construction (every timer wait is on a fireable timer),
// so any reported failure is a substrate defect.
func genProgram(shape uint32) Program {
	return func(t0 *Thread) {
		nWorkers := int(shape%3) + 1
		ops := int((shape/4)%5) + 1
		m := t0.NewMutex("m")
		v := t0.NewVar("v", 0)
		s := t0.NewSem("s", 1)
		// Go-idiom surface: two channels fed by a mix of sends, selects and
		// try-ops, a WaitGroup and a Once, so the fast-path and executor
		// equivalence properties cover the multi-object ops (including the
		// case-decision points of selects with several ready cases).
		a := t0.NewChan("a", 2)
		b := t0.NewChan("b", 2)
		g := t0.NewWaitGroup("g")
		once := t0.NewOnce("o")
		g.Add(t0, nWorkers)
		a.Send(t0, 1)
		b.Send(t0, 2)
		ts := make([]*Thread, 0, nWorkers)
		for i := 0; i < nWorkers; i++ {
			ts = append(ts, t0.Spawn(func(tw *Thread) {
				mix := shape
				for o := 0; o < ops; o++ {
					switch mix % 8 {
					case 0:
						m.Lock(tw)
						v.Add(tw, 1)
						m.Unlock(tw)
					case 1:
						v.Add(tw, 1)
					case 2:
						s.P(tw)
						tw.Yield()
						s.V(tw)
					case 3:
						if idx, x, ok := tw.Select([]SelectCase{
							RecvCase(a), RecvCase(b), SendCase(a, o),
						}, true); idx != DefaultCase && ok {
							_ = x
						}
					case 4:
						once.Do(tw, func(ti *Thread) { v.Add(ti, 1) })
						if !a.TrySend(tw, o) {
							b.TryRecv(tw)
						}
					case 5:
						tw.Yield()
					case 6:
						// Virtual time: a sleep, then a ticker received once and
						// stopped. Both waits are on fireable timers, so neither
						// can deadlock under any schedule.
						tw.Sleep(fmt.Sprintf("nap/%d/%d", tw.ID(), o), int64(o%3))
						tk := tw.NewTicker(fmt.Sprintf("tick/%d/%d", tw.ID(), o), 2)
						tk.C().Recv(tw)
						tk.Stop(tw)
					default:
						// Context deadlines: a child context under a cancellable
						// parent, waited on until the deadline fires (or, on odd
						// ops, cancelled by hand first).
						p := tw.WithCancel(fmt.Sprintf("cp/%d/%d", tw.ID(), o), nil)
						c := tw.WithTimeout(fmt.Sprintf("cc/%d/%d", tw.ID(), o), p, int64(o%2)+1)
						if o%2 == 1 {
							p.Cancel(tw)
						}
						if _, ok := c.Done().Recv(tw); ok {
							tw.Fail("ctx done channel delivered a value")
						}
					}
					mix /= 8
				}
				g.Done(tw)
			}))
		}
		g.Wait(t0)
		for _, c := range ts {
			t0.Join(c)
		}
	}
}

func runRandom(shape uint32, seed uint64) *Outcome {
	w := NewWorld(Options{Chooser: NewRandom(seed)})
	return w.Run(genProgram(shape))
}

// Property: the delay count of any executed schedule is at least its
// preemption count (§2: DB-bounded schedules are a subset of PB-bounded
// ones), and the preemption count never exceeds the context-switch count.
func TestPropertyCostOrdering(t *testing.T) {
	f := func(shape uint32, seed uint64) bool {
		out := runRandom(shape, seed)
		if out.DC < out.PC {
			t.Logf("DC %d < PC %d on trace %v", out.DC, out.PC, out.Trace)
			return false
		}
		if out.PC > out.Trace.ContextSwitches() {
			t.Logf("PC %d > context switches %d", out.PC, out.Trace.ContextSwitches())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every trace entry is valid for its scheduling point's domain —
// a thread id within the thread count at an ordinary point, a case index
// within the select's case count at a case-decision point — thread 0
// appears first, and generated (bug-free) programs never fail. The domain
// of each point is recorded by a wrapping chooser (which, not being a
// StepObserver, also forces every point through Choose).
func TestPropertyTraceWellFormed(t *testing.T) {
	type domain struct {
		isCase bool
		n      int
	}
	f := func(shape uint32, seed uint64) bool {
		inner := NewRandom(seed)
		var domains []domain
		audit := ChooserFunc(func(ctx Context) ThreadID {
			for len(domains) <= ctx.Step {
				domains = append(domains, domain{})
			}
			domains[ctx.Step] = domain{isCase: ctx.SelectOf != NoThread, n: ctx.NumThreads}
			return inner.Choose(ctx)
		})
		out := NewWorld(Options{Chooser: audit}).Run(genProgram(shape))
		if out.Buggy() {
			t.Logf("bug-free program failed: %v", out.Failure)
			return false
		}
		if out.StepLimitHit {
			t.Log("generated program hit the step limit")
			return false
		}
		if len(domains) != len(out.Trace) {
			t.Logf("saw %d scheduling points for %d trace entries", len(domains), len(out.Trace))
			return false
		}
		for i, id := range out.Trace {
			d := domains[i]
			if id < 0 || int(id) >= d.n {
				t.Logf("entry %d is %d, out of range of its %d-wide point (case=%v)", i, id, d.n, d.isCase)
				return false
			}
			if !d.isCase && int(id) >= out.Threads {
				t.Logf("trace names thread %d of %d", id, out.Threads)
				return false
			}
		}
		if len(out.Trace) > 0 && out.Trace[0] != 0 {
			t.Logf("first step by %d, want thread 0", out.Trace[0])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: replaying any recorded trace reproduces it exactly, with the
// same costs (deterministic replay is the foundation of SCT).
func TestPropertyReplayRoundTrip(t *testing.T) {
	f := func(shape uint32, seed uint64) bool {
		ref := runRandom(shape, seed)
		rep := NewReplay(ref.Trace)
		out := NewWorld(Options{Chooser: rep}).Run(genProgram(shape))
		if rep.Failed() {
			t.Logf("replay diverged at %d", rep.FailStep())
			return false
		}
		return out.Trace.Equal(ref.Trace) && out.PC == ref.PC && out.DC == ref.DC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the round-robin schedule has zero preemptions and zero delays
// for every generated program — it is the deterministic scheduler delay
// bounding is defined against.
func TestPropertyRoundRobinIsZeroCost(t *testing.T) {
	f := func(shape uint32) bool {
		w := NewWorld(Options{Chooser: RoundRobin()})
		out := w.Run(genProgram(shape))
		if out.PC != 0 || out.DC != 0 {
			t.Logf("round-robin has PC=%d DC=%d", out.PC, out.DC)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the online cost accounting agrees with recomputing the costs
// from the trace via a replay under an independent chooser path.
func TestPropertyCostsStableAcrossReplay(t *testing.T) {
	f := func(shape uint32, seed uint64) bool {
		a := runRandom(shape, seed)
		b := runRandom(shape, seed) // same seed: same schedule
		return a.Trace.Equal(b.Trace) && a.PC == b.PC && a.DC == b.DC &&
			a.SchedPoints == b.SchedPoints && a.MaxEnabled == b.MaxEnabled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: semaphore counts never go negative and mutexes are never
// double-held — checked by instrumenting a hostile random scheduler over
// the generated programs (the substrate enforces these internally; a
// violation would surface as a spurious failure, checked above, or a
// wrong final counter value, checked here).
func TestPropertyLockedCounterConsistent(t *testing.T) {
	f := func(seed uint64, workers uint8, ops uint8) bool {
		n := int(workers%4) + 1
		k := int(ops%4) + 1
		var final int
		var p Program = func(t0 *Thread) {
			m := t0.NewMutex("m")
			v := t0.NewVar("v", 0)
			ts := make([]*Thread, 0, n)
			for i := 0; i < n; i++ {
				ts = append(ts, t0.Spawn(func(tw *Thread) {
					for o := 0; o < k; o++ {
						m.Lock(tw)
						v.Add(tw, 1)
						m.Unlock(tw)
					}
				}))
			}
			for _, c := range ts {
				t0.Join(c)
			}
			final = v.Load(t0)
		}
		out := NewWorld(Options{Chooser: NewRandom(seed)}).Run(p)
		return !out.Buggy() && final == n*k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sched.CanonicalOrder over real execution contexts always
// starts with a zero-cost choice (checked against the engine's own
// accounting inside explore; here we cross-check against a live world via
// a wrapper chooser).
func TestPropertyCanonicalFirstChoiceFreeInLiveWorlds(t *testing.T) {
	f := func(shape uint32) bool {
		ok := true
		chooser := ChooserFunc(func(ctx Context) ThreadID {
			order := sched.CanonicalOrder(ctx.Enabled, ctx.Last, ctx.NumThreads)
			if sched.PCStep(ctx.Last, ctx.LastEnabled, order[0]) != 0 {
				ok = false
			}
			dc := sched.DCStep(ctx.Last, order[0], ctx.NumThreads, func(t ThreadID) bool {
				for _, x := range ctx.Enabled {
					if x == t {
						return true
					}
				}
				return false
			})
			if dc != 0 {
				ok = false
			}
			return order[0]
		})
		NewWorld(Options{Chooser: chooser}).Run(genProgram(shape))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
