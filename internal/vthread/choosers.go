package vthread

import (
	"math/rand/v2"

	"sctbench/internal/sched"
)

// RoundRobin returns the deterministic scheduler of §2: non-preemptive, and
// when the current thread blocks or exits it picks the next enabled thread
// in thread-creation order, round-robin. Executing a program under this
// chooser yields the unique zero-delay terminal schedule.
func RoundRobin() Chooser { return roundRobin{} }

type roundRobin struct{}

// Choose implements Chooser.
func (roundRobin) Choose(ctx Context) ThreadID {
	if ctx.LastEnabled {
		return ctx.Last
	}
	return sched.CanonicalFirst(ctx.Enabled, ctx.Last, ctx.NumThreads)
}

// ObserveForcedStep implements StepObserver: round-robin is stateless and
// would have picked the single enabled thread anyway, so a skipped Choose
// needs no bookkeeping at all.
func (roundRobin) ObserveForcedStep(Context) {}

// NewRandom returns the naive random scheduler of the study (Rand): at
// every scheduling point one enabled thread is chosen uniformly at random.
// The schedule nondeterminism is fully controlled, so unlike schedule
// fuzzing this yields truly pseudo-random schedules; no history is kept
// across executions.
func NewRandom(seed uint64) Chooser {
	return &randomChooser{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

type randomChooser struct{ rng *rand.Rand }

// Choose implements Chooser.
func (c *randomChooser) Choose(ctx Context) ThreadID {
	return ctx.Enabled[c.rng.IntN(len(ctx.Enabled))]
}

// ObserveForcedStep implements StepObserver. The throwaway draw is what
// makes the opt-in sound for a stateful random chooser: Choose at a
// single-enabled point would consume exactly one IntN(1) draw, so the
// fast path must consume it too — otherwise every draw after the first
// forced step, and with it the whole schedule, would diverge from a
// fast-path-off run with the same seed.
func (c *randomChooser) ObserveForcedStep(Context) { _ = c.rng.IntN(1) }

// Replay follows a recorded schedule step by step. If the recorded thread
// is not enabled at some step, or the execution outlives the recording, the
// replay is infeasible: Failed() reports it and the chooser falls back to
// round-robin so the execution still terminates.
type Replay struct {
	schedule sched.Schedule
	failed   bool
	failStep int
}

// NewReplay creates a replay chooser for the recorded schedule.
func NewReplay(schedule sched.Schedule) *Replay {
	return &Replay{schedule: schedule, failStep: -1}
}

// Choose implements Chooser.
func (r *Replay) Choose(ctx Context) ThreadID {
	if ctx.Step < len(r.schedule) {
		want := r.schedule[ctx.Step]
		if containsThread(ctx.Enabled, want) {
			return want
		}
	}
	if !r.failed {
		r.failed = true
		r.failStep = ctx.Step
	}
	if ctx.LastEnabled {
		return ctx.Last
	}
	return sched.CanonicalFirst(ctx.Enabled, ctx.Last, ctx.NumThreads)
}

// ObserveForcedStep implements StepObserver: the replay cursor is
// ctx.Step, which advances with the trace whether or not Choose runs, so
// a forced step only needs the divergence check Choose would have done —
// with one enabled thread, "recorded thread enabled" collapses to
// "recorded thread is the forced thread", and on a mismatch the fallback
// Choose would pick is the forced thread anyway.
func (r *Replay) ObserveForcedStep(ctx Context) {
	if ctx.Step < len(r.schedule) && r.schedule[ctx.Step] == ctx.Enabled[0] {
		return
	}
	if !r.failed {
		r.failed = true
		r.failStep = ctx.Step
	}
}

// Failed reports whether the replay diverged from the recording.
func (r *Replay) Failed() bool { return r.failed }

// FailStep returns the step at which replay diverged, or -1.
func (r *Replay) FailStep() int { return r.failStep }
