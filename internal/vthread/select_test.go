package vthread

import "testing"

// caseForcer is a chooser that schedules round-robin but, at case-decision
// points, picks a scripted sequence of case indices (falling back to the
// lowest ready case when the script runs out or the scripted case is not
// ready).
type caseForcer struct {
	picks []ThreadID
	used  int
	// points records every case-decision Context seen: (SelectOf, len(Enabled)).
	points [][2]int
}

func (c *caseForcer) Choose(ctx Context) ThreadID {
	if ctx.SelectOf != NoThread {
		c.points = append(c.points, [2]int{int(ctx.SelectOf), len(ctx.Enabled)})
		if c.used < len(c.picks) {
			want := c.picks[c.used]
			c.used++
			for _, e := range ctx.Enabled {
				if e == want {
					return e
				}
			}
		}
		return ctx.Enabled[0]
	}
	if ctx.LastEnabled {
		return ctx.Last
	}
	return ctx.Enabled[0]
}

func TestSelectSingleReadyCaseHasNoDecisionPoint(t *testing.T) {
	var got int
	out := runRR(t, func(t0 *Thread) {
		a := t0.NewChan("a", 1)
		b := t0.NewChan("b", 1)
		b.Send(t0, 42)
		idx, v, ok := t0.Select([]SelectCase{RecvCase(a), RecvCase(b)}, false)
		t0.Assert(idx == 1 && ok, "idx=%d ok=%v", idx, ok)
		got = v
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if got != 42 {
		t.Fatalf("received %d, want 42", got)
	}
	if out.SelectPoints != 0 {
		t.Fatalf("SelectPoints = %d, want 0 (single ready case decides itself)", out.SelectPoints)
	}
}

func TestSelectDefaultFiresWhenNothingReady(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		a := t0.NewChan("a", 1)
		idx, _, ok := t0.Select([]SelectCase{RecvCase(a)}, true)
		t0.Assert(idx == DefaultCase && !ok, "idx=%d ok=%v", idx, ok)
		// With a ready case, default must NOT fire.
		a.Send(t0, 1)
		idx, v, ok := t0.Select([]SelectCase{RecvCase(a)}, true)
		t0.Assert(idx == 0 && ok && v == 1, "idx=%d v=%d ok=%v", idx, v, ok)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

func TestSelectClosedChannelCases(t *testing.T) {
	// A recv case on a closed drained channel is ready and commits ok=false.
	out := runRR(t, func(t0 *Thread) {
		a := t0.NewChan("a", 1)
		b := t0.NewChan("b", 1)
		a.Close(t0)
		idx, _, ok := t0.Select([]SelectCase{RecvCase(a), RecvCase(b)}, false)
		t0.Assert(idx == 0 && !ok, "idx=%d ok=%v", idx, ok)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}

	// A send case on a closed channel is ready so the crash can manifest.
	out = runRR(t, func(t0 *Thread) {
		a := t0.NewChan("a", 1)
		a.Close(t0)
		t0.Select([]SelectCase{SendCase(a, 7)}, false)
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash (send on closed via select)", out.Failure)
	}
}

func TestSelectBlocksAndDeadlocks(t *testing.T) {
	// select{} without default blocks forever: modelled deadlock, not hang.
	out := runRR(t, func(t0 *Thread) {
		t0.Select(nil, false)
	})
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("Failure = %v, want deadlock", out.Failure)
	}
	// A select none of whose channels ever becomes ready deadlocks too.
	out = runRR(t, func(t0 *Thread) {
		a := t0.NewChan("a", 1)
		b := t0.NewChan("b", 1)
		b.Send(t0, 1) // fill b so its send case is not ready
		t0.Select([]SelectCase{RecvCase(a), SendCase(b, 2)}, false)
	})
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("Failure = %v, want deadlock", out.Failure)
	}
}

func TestSelectCasePickIsChooserVisibleAndCounted(t *testing.T) {
	prog := func(result *int) Program {
		return func(t0 *Thread) {
			a := t0.NewChan("a", 1)
			b := t0.NewChan("b", 1)
			a.Send(t0, 10)
			b.Send(t0, 20)
			_, v, ok := t0.Select([]SelectCase{RecvCase(a), RecvCase(b)}, false)
			t0.Assert(ok, "recv failed")
			*result = v
		}
	}
	for pick, want := range map[ThreadID]int{0: 10, 1: 20} {
		var got int
		cf := &caseForcer{picks: []ThreadID{pick}}
		out := NewWorld(Options{Chooser: cf}).Run(prog(&got))
		if out.Buggy() {
			t.Fatalf("pick %d: %v", pick, out.Failure)
		}
		if got != want {
			t.Fatalf("pick %d: received %d, want %d", pick, got, want)
		}
		if out.SelectPoints != 1 {
			t.Fatalf("pick %d: SelectPoints = %d, want 1", pick, out.SelectPoints)
		}
		if len(cf.points) != 1 || cf.points[0][1] != 2 {
			t.Fatalf("pick %d: case contexts = %v, want one with 2 ready cases", pick, cf.points)
		}
		// The case entry occupies the trace position right after the
		// selecting thread's entry.
		found := false
		for i, e := range out.Trace {
			if i > 0 && e == pick && out.Trace[i-1] == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("pick %d: trace %v does not record the case entry", pick, out.Trace)
		}
		// Replaying the recorded trace — case entry included — reproduces
		// the same commit.
		var replayed int
		rep := NewReplay(out.Trace.Clone())
		rout := NewWorld(Options{Chooser: rep}).Run(prog(&replayed))
		if rep.Failed() {
			t.Fatalf("pick %d: replay diverged at step %d", pick, rep.FailStep())
		}
		if replayed != want || rout.SelectPoints != 1 {
			t.Fatalf("pick %d: replay received %d (SelectPoints %d), want %d", pick, replayed, rout.SelectPoints, want)
		}
	}
}

func TestSelectCaseCostsAreZero(t *testing.T) {
	// The case-decision entry must not count as a preemption or a delay:
	// a select resolved either way still yields a PC=0, DC=0 round-robin
	// schedule when no thread switch happens.
	for pick := ThreadID(0); pick <= 1; pick++ {
		cf := &caseForcer{picks: []ThreadID{pick}}
		out := NewWorld(Options{Chooser: cf}).Run(Program(func(t0 *Thread) {
			a := t0.NewChan("a", 1)
			b := t0.NewChan("b", 1)
			a.Send(t0, 1)
			b.Send(t0, 2)
			t0.Select([]SelectCase{RecvCase(a), RecvCase(b)}, false)
		}))
		if out.Buggy() {
			t.Fatalf("pick %d: %v", pick, out.Failure)
		}
		if out.PC != 0 || out.DC != 0 {
			t.Fatalf("pick %d: PC=%d DC=%d, want 0,0", pick, out.PC, out.DC)
		}
	}
}

func TestSelectSendCase(t *testing.T) {
	var drained []int
	out := runRR(t, func(t0 *Thread) {
		c := t0.NewChan("c", 2)
		w := t0.Spawn(func(tw *Thread) {
			for i := 0; i < 2; i++ {
				idx, _, _ := tw.Select([]SelectCase{SendCase(c, 100+i)}, false)
				tw.Assert(idx == 0, "send case not committed")
			}
		})
		t0.Join(w)
		for c.Len() > 0 {
			v, _ := c.Recv(t0)
			drained = append(drained, v)
		}
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if len(drained) != 2 || drained[0] != 100 || drained[1] != 101 {
		t.Fatalf("drained %v, want [100 101]", drained)
	}
}

func TestSelectFootprintIsAllMemberChannels(t *testing.T) {
	// A parked 3-way select must expose every member channel in its
	// pending footprint — the N-ary generalisation the engines rely on.
	var fp Footprint
	probe := ChooserFunc(func(ctx Context) ThreadID {
		if ctx.SelectOf == NoThread && ctx.NumThreads == 2 {
			info := ctx.PendingOf(1)
			if info.Objects.Len() == 3 {
				fp = info.Objects
			}
		}
		if ctx.LastEnabled {
			return ctx.Last
		}
		return ctx.Enabled[0]
	})
	out := NewWorld(Options{Chooser: probe}).Run(Program(func(t0 *Thread) {
		a := t0.NewChan("a", 1)
		b := t0.NewChan("b", 1)
		c := t0.NewChan("c", 1)
		w := t0.Spawn(func(tw *Thread) {
			tw.Select([]SelectCase{RecvCase(a), RecvCase(b), RecvCase(c)}, false)
		})
		t0.Yield()
		a.Send(t0, 1)
		t0.Join(w)
	}))
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	for i, want := range []string{"chan/a", "chan/b", "chan/c"} {
		if fp.Len() != 3 || fp.Obj(i) != want {
			t.Fatalf("select footprint = %d objects (%v...), want chan/a,b,c", fp.Len(), fp)
		}
	}
}

func TestWaitGroupWaitBlocksUntilZero(t *testing.T) {
	var order []string
	out := runRR(t, func(t0 *Thread) {
		g := t0.NewWaitGroup("g")
		g.Add(t0, 2)
		for i := 0; i < 2; i++ {
			t0.Spawn(func(tw *Thread) {
				order = append(order, "work")
				g.Done(tw)
			})
		}
		g.Wait(t0)
		order = append(order, "after-wait")
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if len(order) != 3 || order[2] != "after-wait" {
		t.Fatalf("order = %v, want both workers before after-wait", order)
	}
}

func TestWaitGroupNegativeCounterCrashes(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		g := t0.NewWaitGroup("g")
		g.Add(t0, 1)
		g.Done(t0)
		g.Done(t0) // the double-Done bug class
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash (negative WaitGroup counter)", out.Failure)
	}
}

func TestOnceRunsExactlyOnceAndBlocksLatecomers(t *testing.T) {
	runs := 0
	var afterInit []int
	out := runRR(t, func(t0 *Thread) {
		o := t0.NewOnce("o")
		init := func(tw *Thread) {
			runs++
			tw.Yield() // make the once body span a scheduling point
		}
		var ts []*Thread
		for i := 0; i < 3; i++ {
			i := i
			ts = append(ts, t0.Spawn(func(tw *Thread) {
				o.Do(tw, init)
				afterInit = append(afterInit, i)
			}))
		}
		for _, c := range ts {
			t0.Join(c)
		}
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if runs != 1 {
		t.Fatalf("once body ran %d times, want 1", runs)
	}
	if len(afterInit) != 3 {
		t.Fatalf("only %d threads passed the Once", len(afterInit))
	}
}

func TestOnceReentrantDoDeadlocks(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		o := t0.NewOnce("o")
		o.Do(t0, func(tw *Thread) {
			o.Do(tw, func(*Thread) {}) // Go: fatal self-deadlock
		})
	})
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("Failure = %v, want deadlock (reentrant Once.Do)", out.Failure)
	}
}

func TestFootprintNaryIndependence(t *testing.T) {
	sel := PendingInfo{Objects: NewFootprint("chan/a", "chan/b", "chan/c", "chan/d")}
	onB := PendingInfo{Objects: NewFootprint("chan/b")}
	onE := PendingInfo{Objects: NewFootprint("chan/e")}
	if sel.Independent(onB) {
		t.Error("a 4-way select must not commute with an op on a member channel")
	}
	if !sel.Independent(onE) {
		t.Error("a select must commute with an op on a non-member channel")
	}
	if !onE.Independent(PendingInfo{}) {
		t.Error("footprint-free ops commute with everything non-opaque")
	}
	ro1 := PendingInfo{Objects: NewFootprint("x"), ReadOnly: true}
	ro2 := PendingInfo{Objects: NewFootprint("x"), ReadOnly: true}
	if !ro1.Independent(ro2) {
		t.Error("two read-only ops on the same object must commute")
	}
	f := NewFootprint("a", "b", "c")
	if f.Len() != 3 || f.Obj(0) != "a" || f.Obj(1) != "b" || f.Obj(2) != "c" {
		t.Errorf("NewFootprint round-trip broken: %v", f)
	}
	if !f.Contains("c") || f.Contains("d") {
		t.Error("Contains broken")
	}
}

func TestSelectRandomSchedulesDeterministicReplay(t *testing.T) {
	// The foundational SCT assumption must hold for select programs: a
	// recorded trace (case entries included) replays to the identical
	// trace and outcome.
	var prog Program = func(t0 *Thread) {
		a := t0.NewChan("a", 2)
		b := t0.NewChan("b", 2)
		done := t0.NewChan("done", 2)
		t0.Spawn(func(tw *Thread) {
			a.Send(tw, 1)
			b.Send(tw, 2)
			done.Send(tw, 0)
		})
		t0.Spawn(func(tw *Thread) {
			sum := 0
			for got := 0; got < 2; got++ {
				_, v, ok := tw.Select([]SelectCase{RecvCase(a), RecvCase(b)}, false)
				if ok {
					sum += v
				}
			}
			tw.Assert(sum == 3, "sum=%d", sum)
			done.Send(tw, 0)
		})
		done.Recv(t0)
		done.Recv(t0)
	}
	for seed := uint64(0); seed < 40; seed++ {
		ref := NewWorld(Options{Chooser: NewRandom(seed)}).Run(prog)
		if ref.Buggy() {
			t.Fatalf("seed %d: %v", seed, ref.Failure)
		}
		rep := NewReplay(ref.Trace)
		out := NewWorld(Options{Chooser: rep}).Run(prog)
		if rep.Failed() {
			t.Fatalf("seed %d: replay diverged at step %d", seed, rep.FailStep())
		}
		if !out.Trace.Equal(ref.Trace) || out.SelectPoints != ref.SelectPoints {
			t.Fatalf("seed %d: replayed trace differs (%v vs %v)", seed, out.Trace, ref.Trace)
		}
	}
}
