package vthread

import (
	"math/rand/v2"

	"sctbench/internal/sched"
)

// RoundRobin returns the deterministic scheduler of §2: non-preemptive, and
// when the current thread blocks or exits it picks the next enabled thread
// in thread-creation order, round-robin. Executing a program under this
// chooser yields the unique zero-delay terminal schedule.
func RoundRobin() Chooser {
	return ChooserFunc(func(ctx Context) ThreadID {
		if ctx.LastEnabled {
			return ctx.Last
		}
		return sched.CanonicalFirst(ctx.Enabled, ctx.Last, ctx.NumThreads)
	})
}

// NewRandom returns the naive random scheduler of the study (Rand): at
// every scheduling point one enabled thread is chosen uniformly at random.
// The schedule nondeterminism is fully controlled, so unlike schedule
// fuzzing this yields truly pseudo-random schedules; no history is kept
// across executions.
func NewRandom(seed uint64) Chooser {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	return ChooserFunc(func(ctx Context) ThreadID {
		return ctx.Enabled[rng.IntN(len(ctx.Enabled))]
	})
}

// Replay follows a recorded schedule step by step. If the recorded thread
// is not enabled at some step, or the execution outlives the recording, the
// replay is infeasible: Failed() reports it and the chooser falls back to
// round-robin so the execution still terminates.
type Replay struct {
	schedule sched.Schedule
	failed   bool
	failStep int
}

// NewReplay creates a replay chooser for the recorded schedule.
func NewReplay(schedule sched.Schedule) *Replay {
	return &Replay{schedule: schedule, failStep: -1}
}

// Choose implements Chooser.
func (r *Replay) Choose(ctx Context) ThreadID {
	if ctx.Step < len(r.schedule) {
		want := r.schedule[ctx.Step]
		if containsThread(ctx.Enabled, want) {
			return want
		}
	}
	if !r.failed {
		r.failed = true
		r.failStep = ctx.Step
	}
	if ctx.LastEnabled {
		return ctx.Last
	}
	return sched.CanonicalFirst(ctx.Enabled, ctx.Last, ctx.NumThreads)
}

// Failed reports whether the replay diverged from the recording.
func (r *Replay) Failed() bool { return r.failed }

// FailStep returns the step at which replay diverged, or -1.
func (r *Replay) FailStep() int { return r.failStep }
