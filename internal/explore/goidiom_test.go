package explore

// Exploration tests for the GoIdiom workload family: select case-decision
// points must be enumerated, replayed and counted by every engine, DFS at
// workers 1 and 8 must stay bit-identical, the pruning engines (sleep-set
// DFS, DPOR) must reach the same verdicts with no more schedules than DFS,
// and all of it must hold for every combination of the PR-4 fast-path kill
// switches. Also here: the TrySend/TryRecv/TryLock enabled-set edge-case
// equivalence the try-ops satellite asks for.

import (
	"fmt"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/vthread"
)

// debugCombos enumerates every combination of fast-path kill switches,
// all-on first (the production configuration).
func debugCombos() []vthread.Debug {
	out := make([]vthread.Debug, 0, 8)
	for bits := 0; bits < 8; bits++ {
		out = append(out, vthread.Debug{
			NoInlineStep:    bits&1 != 0,
			NoForcedStep:    bits&2 != 0,
			NoDirectHandoff: bits&4 != 0,
		})
	}
	return out
}

// pureSelectProgram has exactly one source of nondeterminism: a single
// 3-way select whose three cases are all ready. The whole schedule space
// is the three case picks.
func pureSelectProgram() vthread.Program {
	return func(t0 *vthread.Thread) {
		a := t0.NewChan("a", 1)
		b := t0.NewChan("b", 1)
		c := t0.NewChan("c", 1)
		a.Send(t0, 1)
		b.Send(t0, 2)
		t0.Select([]vthread.SelectCase{
			vthread.RecvCase(a),
			vthread.RecvCase(b),
			vthread.SendCase(c, 3),
		}, false)
	}
}

// TestDFSEnumeratesSelectCases pins the decision-dimension contract: DFS
// over a single-threaded program with one 3-ready-case select visits
// exactly three terminal schedules — the case picks — and counts the
// decision as a scheduling point even though no second thread ever exists.
func TestDFSEnumeratesSelectCases(t *testing.T) {
	r := RunDFS(Config{Program: pureSelectProgram()})
	if !r.Complete || r.Schedules != 3 {
		t.Fatalf("DFS: %d schedules (complete=%v), want exactly 3 case picks", r.Schedules, r.Complete)
	}
	if r.MaxSchedPoints != 1 {
		t.Fatalf("MaxSchedPoints = %d, want 1 (the case-decision point)", r.MaxSchedPoints)
	}
	if r.Threads != 1 {
		t.Fatalf("Threads = %d, want 1", r.Threads)
	}
	// The same space under IPB/IDB: case picks cost zero preemptions and
	// zero delays, so bound 0 already covers all three schedules.
	for name, model := range map[string]CostModel{"IPB": CostPreemptions, "IDB": CostDelays} {
		r := RunIterative(Config{Program: pureSelectProgram()}, model)
		if !r.Complete || r.Schedules != 3 || r.Bound != 0 {
			t.Fatalf("%s: %d schedules at bound %d (complete=%v), want 3 at bound 0",
				name, r.Schedules, r.Bound, r.Complete)
		}
	}
}

// goidiomConfigs builds an exploration config per GoIdiom benchmark.
func goidiomConfigs(t *testing.T) map[string]*bench.Benchmark {
	t.Helper()
	out := make(map[string]*bench.Benchmark)
	for _, name := range []string{
		"goidiom.workerpool_bad", "goidiom.pipeline_bad", "goidiom.cancel_bad",
		"goidiom.wgdone_bad", "goidiom.select_starve_bad", "goidiom.once_reenter_bad",
	} {
		b := bench.ByName(name)
		if b == nil {
			t.Fatalf("missing benchmark %s", name)
		}
		out[name] = b
	}
	return out
}

// TestGoIdiomFastPathEquivalence: on every GoIdiom benchmark, DFS,
// sleep-set DFS and DPOR produce bit-identical counts, witnesses and
// verdicts under every combination of the fast-path kill switches.
func TestGoIdiomFastPathEquivalence(t *testing.T) {
	combos := debugCombos()
	runs := map[string]func(Config) *Result{
		"DFS":      RunDFS,
		"sleepset": RunSleepSetDFS,
		"DPOR":     RunDPOR,
	}
	for name, b := range goidiomConfigs(t) {
		for tech, run := range runs {
			t.Run(fmt.Sprintf("%s/%s", tech, name), func(t *testing.T) {
				base := Config{Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps, Limit: 20000}
				want := run(base)
				if !want.BugFound {
					t.Fatalf("%s did not find the %s bug", tech, name)
				}
				if want.Failure.Kind != b.BugKind {
					t.Fatalf("%s found a %v bug, registry says %v", tech, want.Failure.Kind, b.BugKind)
				}
				for _, d := range combos[1:] {
					cfg := base
					cfg.Program = b.New()
					cfg.Debug = d
					got := run(cfg)
					assertCountsEqual(t, fmt.Sprintf("%s/%s/%+v", tech, name, d), want, got)
				}
			})
		}
	}
}

// TestGoIdiomPruningConsistency: the pruning engines reach the DFS verdict
// on every GoIdiom benchmark with no more schedules than DFS, and their
// witnesses replay to the same failure kind.
func TestGoIdiomPruningConsistency(t *testing.T) {
	for name, b := range goidiomConfigs(t) {
		t.Run(name, func(t *testing.T) {
			base := Config{Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps, Limit: 20000}
			dfs := RunDFS(base)
			if !dfs.BugFound {
				t.Fatalf("DFS did not find the %s bug", name)
			}
			for tech, run := range map[string]func(Config) *Result{
				"sleepset": RunSleepSetDFS, "DPOR": RunDPOR,
			} {
				cfg := base
				cfg.Program = b.New()
				r := run(cfg)
				if r.BugFound != dfs.BugFound {
					t.Errorf("%s: bug=%v, DFS bug=%v", tech, r.BugFound, dfs.BugFound)
				}
				if dfs.Complete {
					// On a fully enumerated space the reduced searches must
					// also complete, with no more schedules than DFS.
					if !r.Complete {
						t.Errorf("%s did not complete a space DFS completed", tech)
					}
					if r.Schedules > dfs.Schedules {
						t.Errorf("%s explored %d schedules, more than DFS's %d", tech, r.Schedules, dfs.Schedules)
					}
				} else if !r.Complete && r.Schedules != dfs.Schedules {
					// Both truncated: the schedule budget must bind identically.
					t.Errorf("%s counted %d truncated schedules, DFS %d", tech, r.Schedules, dfs.Schedules)
				}
				if out := replayWitness(b.New(), r.Witness); out == nil || out.Failure == nil || out.Failure.Kind != b.BugKind {
					t.Errorf("%s witness does not replay to a %v failure", tech, b.BugKind)
				}
			}
		})
	}
}

// TestGoIdiomParallelEquivalence: DFS and the iterative bounders stay
// bit-identical between workers 1 and 8 on the GoIdiom family — the
// branch-key merge must order case-decision points exactly like thread
// points. Bit-exact comparison applies to searches that run to
// completion; when the schedule limit truncates the space, which
// schedules land inside the budget is timing-dependent by the documented
// parallel contract, so those runs are held to verdict + totals instead.
// DPOR at 8 workers is held to verdict + witness validity (its counts are
// exact only without stealing; see parallel.go).
func TestGoIdiomParallelEquivalence(t *testing.T) {
	const workers = 8
	for name, b := range goidiomConfigs(t) {
		t.Run(name, func(t *testing.T) {
			base := Config{Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps, Limit: 20000}
			for tech, run := range map[string]func(Config) *Result{
				"DFS": RunDFS,
				"IPB": func(c Config) *Result { return RunIterative(c, CostPreemptions) },
				"IDB": func(c Config) *Result { return RunIterative(c, CostDelays) },
			} {
				seqCfg := base
				seqCfg.Program = b.New()
				seq := run(seqCfg)
				parCfg := base
				parCfg.Program = b.New()
				parCfg.Workers = workers
				par := run(parCfg)
				label := fmt.Sprintf("%s/%s", tech, name)
				if seq.Complete {
					assertEquivalent(t, label, seq, par)
					continue
				}
				if seq.Schedules != par.Schedules || seq.BugFound != par.BugFound ||
					seq.LimitHit != par.LimitHit {
					t.Errorf("%s (truncated): schedules %d/%d bug %v/%v limit %v/%v",
						label, seq.Schedules, par.Schedules, seq.BugFound, par.BugFound,
						seq.LimitHit, par.LimitHit)
				}
				if par.BugFound {
					if out := replayWitness(b.New(), par.Witness); out == nil || out.Failure == nil {
						t.Errorf("%s (truncated): parallel witness does not replay to a failure", label)
					}
				}
			}
			cfg := base
			cfg.Program = b.New()
			cfg.Workers = workers
			par := RunDPOR(cfg)
			if !par.BugFound {
				t.Errorf("parallel DPOR missed the %s bug", name)
			} else if out := replayWitness(b.New(), par.Witness); out == nil || out.Failure == nil || out.Failure.Kind != b.BugKind {
				t.Errorf("parallel DPOR witness does not replay to a %v failure", b.BugKind)
			}
		})
	}
}

// tryOpsProgram exercises the enabled-set edge cases of the non-blocking
// operations: TryLock contention, TrySend against a full buffer and
// TryRecv against an empty one, with a schedule-dependent assertion (both
// workers can fail their TryLock only under contention interleavings).
func tryOpsProgram() vthread.Program {
	return func(t0 *vthread.Thread) {
		m := t0.NewMutex("m")
		c := t0.NewChan("c", 1)
		hits := t0.NewVar("hits", 0)
		worker := func(tw *vthread.Thread) {
			if m.TryLock(tw) {
				hits.Add(tw, 1)
				m.Unlock(tw)
			}
			if !c.TrySend(tw, 1) {
				c.TryRecv(tw)
			}
		}
		a := t0.Spawn(worker)
		b := t0.Spawn(worker)
		t0.Join(a)
		t0.Join(b)
		t0.Assert(hits.Load(t0) == 2, "a TryLock was starved: hits=%d", hits.Load(t0))
	}
}

// TestTryOpsDPORvsDFSEquivalence is the try-ops satellite: on a
// channel-heavy try-op program, DFS at workers 1 and 8 is bit-identical,
// DPOR reaches the DFS verdict with no more schedules, both find the
// TryLock-starvation bug, and sequential DPOR counts are stable across
// every fast-path combination.
func TestTryOpsDPORvsDFSEquivalence(t *testing.T) {
	base := Config{Program: tryOpsProgram(), Limit: 20000}
	dfs1 := RunDFS(base)
	if !dfs1.BugFound || !dfs1.Complete {
		t.Fatalf("DFS: bug=%v complete=%v, want found+complete", dfs1.BugFound, dfs1.Complete)
	}
	par := base
	par.Workers = 8
	dfs8 := RunDFS(par)
	assertEquivalent(t, "tryops/DFS-1-vs-8", dfs1, dfs8)

	dpor := RunDPOR(base)
	if dpor.BugFound != dfs1.BugFound || dpor.Complete != dfs1.Complete {
		t.Fatalf("DPOR verdict bug=%v complete=%v differs from DFS", dpor.BugFound, dpor.Complete)
	}
	if dpor.Schedules > dfs1.Schedules {
		t.Fatalf("DPOR explored %d schedules, more than DFS's %d", dpor.Schedules, dfs1.Schedules)
	}
	if out := replayWitness(tryOpsProgram(), dpor.Witness); out == nil || out.Failure == nil {
		t.Fatal("DPOR witness does not replay to a failure")
	}
	for _, d := range debugCombos()[1:] {
		cfg := base
		cfg.Debug = d
		assertCountsEqual(t, fmt.Sprintf("tryops/DPOR/%+v", d), dpor, RunDPOR(cfg))
	}
	dpor8 := par
	dpor8.Limit = 20000
	r8 := RunDPOR(dpor8)
	if r8.BugFound != dpor.BugFound {
		t.Fatalf("parallel DPOR verdict bug=%v differs from sequential %v", r8.BugFound, dpor.BugFound)
	}
}
