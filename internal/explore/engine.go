// Package explore implements the systematic and random exploration drivers
// of the study (§5): unbounded depth-first search (DFS), iterative
// preemption bounding (IPB), iterative delay bounding (IDB) and the naive
// random scheduler (Rand), plus the schedule-limit accounting that Table 3
// of the paper reports. Every driver runs sequentially by default and as a
// work-partitioned worker pool when Config.Workers > 1 (see parallel.go),
// with identical schedule counts either way.
package explore

import (
	"fmt"

	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// CostModel selects which schedule cost a bounded search prunes on.
type CostModel int

const (
	// CostNone disables pruning (unbounded DFS).
	CostNone CostModel = iota
	// CostPreemptions prunes on the preemption count PC (§2).
	CostPreemptions
	// CostDelays prunes on the delay count DC over the non-preemptive
	// round-robin deterministic scheduler (§2).
	CostDelays
)

// String returns the cost-model name.
func (c CostModel) String() string {
	switch c {
	case CostNone:
		return "none"
	case CostPreemptions:
		return "preemptions"
	case CostDelays:
		return "delays"
	}
	return "unknown"
}

// node is one scheduling point on the DFS stack: the canonical choice
// order, the incremental cost of each choice, and which choice the current
// execution takes. hi is the last choice index this engine owns; a fresh
// node owns the whole order (hi = len(order)-1), while the parallel driver
// pins prefix nodes (hi = idx, no alternatives) and restricts a donated
// sibling range (idx..hi) so disjoint engines partition the tree.
type node struct {
	order []sched.ThreadID
	costs []int
	idx   int
	hi    int
	base  int // cumulative cost of the prefix strictly before this point
}

// engine is a depth-first stateless-search driver. It doubles as the
// vthread.Chooser of the executions it spawns: each execution replays the
// choices on the stack and extends the deepest branch; backtracking advances
// the deepest node with an untried (and, under a bound, affordable)
// alternative.
type engine struct {
	cfg   Config
	model CostModel
	bound int // ignored when model == CostNone

	stack   []node
	running int // cumulative cost of the current execution so far

	// pruned records that some alternative was skipped because it exceeded
	// the bound; if a bounded pass completes without pruning, the whole
	// schedule space has been explored.
	pruned bool

	executions int
}

func newEngine(cfg Config, model CostModel, bound int) *engine {
	return &engine{cfg: cfg, model: model, bound: bound}
}

// Choose implements vthread.Chooser.
func (e *engine) Choose(ctx vthread.Context) sched.ThreadID {
	if ctx.Step < len(e.stack) {
		nd := &e.stack[ctx.Step]
		e.running = nd.base + nd.costs[nd.idx]
		return nd.order[nd.idx]
	}
	order := sched.CanonicalOrder(ctx.Enabled, ctx.Last, ctx.NumThreads)
	costs := make([]int, len(order))
	for i, t := range order {
		costs[i] = e.stepCost(ctx, t)
	}
	nd := node{order: order, costs: costs, hi: len(order) - 1, base: e.running}
	// The canonical first choice is the deterministic scheduler's pick and
	// always has incremental cost zero under both models, so it is never
	// pruned.
	if costs[0] != 0 && e.model != CostNone {
		panic(fmt.Sprintf("explore: canonical first choice has nonzero cost %d", costs[0]))
	}
	e.stack = append(e.stack, nd)
	e.running = nd.base + costs[0]
	return order[0]
}

// stepCost is the incremental schedule cost of picking choice at ctx.
func (e *engine) stepCost(ctx vthread.Context, choice sched.ThreadID) int {
	switch e.model {
	case CostPreemptions:
		return sched.PCStep(ctx.Last, ctx.LastEnabled, choice)
	case CostDelays:
		return sched.DCStep(ctx.Last, choice, ctx.NumThreads, func(t sched.ThreadID) bool {
			for _, x := range ctx.Enabled {
				if x == t {
					return true
				}
			}
			return false
		})
	default:
		return 0
	}
}

// runOnce executes the program once, replaying the stack prefix.
func (e *engine) runOnce() *vthread.Outcome {
	e.running = 0
	e.executions++
	w := vthread.NewWorld(vthread.Options{
		Chooser:     e,
		Visible:     e.cfg.Visible,
		MaxSteps:    e.cfg.MaxSteps,
		BoundsCheck: e.cfg.BoundsCheck,
	})
	out := w.Run(e.cfg.Program)
	e.checkCost(out)
	return out
}

// checkCost cross-validates the engine's running cost against the world's
// independent online accounting; a mismatch means the cost model and the
// substrate disagree, which is an implementation bug worth failing fast on.
func (e *engine) checkCost(out *vthread.Outcome) {
	if out.StepLimitHit {
		return
	}
	switch e.model {
	case CostPreemptions:
		if out.PC != e.running {
			panic(fmt.Sprintf("explore: engine PC %d != world PC %d", e.running, out.PC))
		}
	case CostDelays:
		if out.DC != e.running {
			panic(fmt.Sprintf("explore: engine DC %d != world DC %d", e.running, out.DC))
		}
	}
}

// backtrack advances the search to the next unexplored branch, returning
// false when the (bounded) space is exhausted.
func (e *engine) backtrack() bool {
	for len(e.stack) > 0 {
		nd := &e.stack[len(e.stack)-1]
		advanced := false
		for j := nd.idx + 1; j <= nd.hi; j++ {
			if e.model != CostNone && nd.base+nd.costs[j] > e.bound {
				e.pruned = true
				continue
			}
			nd.idx = j
			advanced = true
			break
		}
		if advanced {
			return true
		}
		e.stack = e.stack[:len(e.stack)-1]
	}
	return false
}
