package explore

// Parallel exploration driver. The schedule space of one program is a tree
// whose nodes are scheduling points and whose edges are CanonicalOrder
// choices; the sequential engines walk it depth first. This driver
// partitions that tree into prefix-pinned subtrees ("units") explored by a
// pool of workers, with work-stealing: whenever the pool starves, a running
// worker donates the untried sibling range of the shallowest open node on
// its stack as a new unit (the owner works at the tail of its stack, the
// donation is carved off at the head — the deque discipline of the
// work-stealing queue benchmarked in examples/wsq). Units are generic over
// the searcher interface, so the same pool drives the plain DFS/IPB/IDB
// engine and the DPOR engine (whose donations deep-copy backtrack, done
// and sleep state; see dporEngine.split).
//
// Determinism. Depth-first search visits terminal schedules in the
// lexicographic order of their branch keys (sched.CompareBranchKeys), and
// every DFS/IPB/IDB unit covers a contiguous lexicographic range, so
// concatenating per-unit results sorted by start key reproduces the
// sequential visit order exactly — no matter how the work-stealing
// happened to cut the tree. Schedule totals, per-bound NewSchedules,
// completeness, the first-bug selection and its witness are therefore
// bit-identical to Workers: 1 whenever the search runs to completion. When
// the schedule limit truncates the search, the counted totals are still
// exact (the budget is an atomic ticket counter), but which schedules fall
// inside the budget depends on worker timing, so BugFound/Witness may
// differ from a sequential truncated run; Executions is always the actual
// work performed, including cancelled speculative bounds.
//
// DPOR is the exception to exactness: its backtrack sets grow from races
// observed at runtime, so a donated unit and its donor may later discover
// the same reversal independently and both explore it. Parallel DPOR is
// sound — every Mazurkiewicz trace the sequential search covers is covered
// — and bit-identical to Workers: 1 whenever no work was stolen, but under
// stealing the schedule count may include duplicated equivalence classes.
// The bug verdict and completeness are preserved either way.
//
// Iterative bounding (IPB/IDB) additionally overlaps bound sweeps: while
// bound k drains, a lower-priority job speculatively explores bound k+1 in
// the same pool. If bound k finds the bug or completes the space, the
// speculative job is cancelled and its results are discarded; otherwise it
// is promoted and its partial progress is kept.

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sctbench/internal/faultinject"
	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// searcher is the engine contract the worker pool drives. Both engine
// (DFS/IPB/IDB) and dporEngine implement it. A searcher is confined to
// one worker goroutine at a time; donation transfers ownership of the
// returned unit's engine to whichever worker takes it.
type searcher interface {
	// setExec points the engine at the executor of the worker currently
	// running it.
	setExec(ex *vthread.Executor)
	// runOnce executes the program once, replaying the stack prefix.
	runOnce() *vthread.Outcome
	// backtrack advances to the next branch, false when exhausted.
	backtrack() bool
	// counts reports whether out is a terminal schedule this search
	// counts (exact-bound for IPB/IDB, non-redundant for the pruning
	// engines).
	counts(out *vthread.Outcome) bool
	// split carves off a donated unit, or returns nil when every node is
	// closed (always, for a searcher that does not partition). The
	// donated state must be deep-copied: donor and donee run on
	// different workers.
	split() *unit
	// wasPruned reports that a bounded search skipped an over-bound
	// alternative (engine only; decides Complete for IPB/IDB).
	wasPruned() bool
	// prunedBranches is the number of enabled siblings retired unexplored
	// by partial-order reduction (pruning engines only; 0 otherwise).
	prunedBranches() int
	// execCount is the number of executions this engine performed.
	execCount() int
}

// searcher implementation for the DFS/IPB/IDB engine.

func (e *engine) setExec(ex *vthread.Executor) { e.exec = ex }
func (e *engine) wasPruned() bool              { return e.pruned }
func (e *engine) prunedBranches() int          { return 0 }
func (e *engine) execCount() int               { return e.executions }

// counts reports whether the execution is a terminal schedule this engine
// counts: every terminal one for DFS, exactly-at-bound ones for IPB/IDB.
func (e *engine) counts(out *vthread.Outcome) bool {
	if out.StepLimitHit {
		return false
	}
	switch e.model {
	case CostPreemptions:
		return out.PC == e.bound
	case CostDelays:
		return out.DC == e.bound
	default:
		return true
	}
}

// split carves the untried sibling range (idx, hi] off the shallowest open
// node of the engine's stack as a prefix-pinned unit, or returns nil when
// every node is closed. The donated unit is created in backtrack-first
// state so the ordinary backtracking path advances it into (and
// bound-prunes) its range.
func (e *engine) split() *unit {
	for d := 0; d < len(e.stack); d++ {
		nd := &e.stack[d]
		if nd.idx >= nd.hi {
			continue
		}
		key := make([]int, d+1)
		stack := make([]node, d+1)
		copy(stack, e.stack[:d+1])
		// Deep-copy the node buffers: the donor recycles its order/costs
		// slices through its free list on backtrack, so sharing them with
		// the donated engine (which runs on another worker) would be a
		// use-after-recycle race.
		for i := range stack {
			stack[i].order = append([]sched.ThreadID(nil), stack[i].order...)
			stack[i].costs = append([]int(nil), stack[i].costs...)
		}
		for i := 0; i < d; i++ {
			key[i] = stack[i].idx
			stack[i].hi = stack[i].idx // pin the prefix
		}
		key[d] = nd.idx + 1
		ne := newEngine(e.cfg, e.model, e.bound)
		ne.stack = stack
		nd.hi = nd.idx // the donor no longer owns the range
		return &unit{eng: ne, key: key}
	}
	return nil
}

// searcher implementation for the DPOR engine.

func (e *dporEngine) setExec(ex *vthread.Executor) { e.exec = ex }
func (e *dporEngine) wasPruned() bool              { return false }
func (e *dporEngine) prunedBranches() int          { return e.pruned }
func (e *dporEngine) execCount() int               { return e.executions }

// counts: aborted runs are detected redundancies, not terminal schedules.
func (e *dporEngine) counts(out *vthread.Outcome) bool {
	return !out.StepLimitHit && !out.Aborted
}

// searcher implementation for the sleep-set engine — used only by the
// shared sequential driver (RunSleepSetDFS never runs on the pool, so it
// never donates).

func (e *ssEngine) setExec(ex *vthread.Executor) { e.exec = ex }
func (e *ssEngine) wasPruned() bool              { return false }
func (e *ssEngine) prunedBranches() int          { return e.pruned }
func (e *ssEngine) execCount() int               { return e.executions }
func (e *ssEngine) split() *unit                 { return nil }

func (e *ssEngine) counts(out *vthread.Outcome) bool {
	return !out.StepLimitHit && !out.Aborted
}

// split donates every pending backtrack candidate of the shallowest node
// that has one, deep-copying the stack up to and including that node. The
// donee's prefix copies carry no pending work of their own (the donor
// keeps its candidates), but stay live: a race the donee discovers against
// its pinned prefix re-opens its local copy, so no reversal is ever lost —
// at worst donor and donee both explore it (see the package comment). The
// donor marks the donated candidates done: the donee will explore them
// fully, so for the donor's later sleep-set computations they count as
// explored siblings.
func (e *dporEngine) split() *unit {
	for d := 0; d < len(e.stack); d++ {
		nd := &e.stack[d]
		first := -1
		for k := range nd.order {
			if e.pendingAt(nd, k) {
				first = k
				break
			}
		}
		if first < 0 {
			continue
		}
		ne := newDPOREngine(e.cfg)
		ne.maxThreads = e.maxThreads
		ne.stack = make([]dporNode, d+1)
		for i := 0; i <= d; i++ {
			src := &e.stack[i]
			cp := dporNode{
				order:     append([]sched.ThreadID(nil), src.order...),
				infos:     append([]vthread.PendingInfo(nil), src.infos...),
				idx:       src.idx,
				done:      append([]bool(nil), src.done...),
				backtrack: make([]bool, len(src.order)),
				sleep:     make(map[sched.ThreadID]vthread.PendingInfo, len(src.sleep)),
				nthreads:  src.nthreads,
				selOf:     src.selOf,
			}
			for t, info := range src.sleep {
				cp.sleep[t] = info
			}
			// Locally, only already-explored choices and the current one
			// exist; the donor's other pending candidates stay its own.
			for k := range cp.backtrack {
				cp.backtrack[k] = cp.done[k]
			}
			cp.backtrack[cp.idx] = true
			if i == d {
				for k := range src.order {
					if e.pendingAt(src, k) {
						cp.backtrack[k] = true
					}
				}
				// The donor finishes its current choice itself.
				cp.done[cp.idx] = true
			}
			ne.stack[i] = cp
		}
		ne.borrowed = d + 1
		ne.analyzeFrom = d + 1
		for k := range nd.order {
			if e.pendingAt(nd, k) {
				nd.done[k] = true
			}
		}
		key := make([]int, d+1)
		for i := 0; i < d; i++ {
			key[i] = e.stack[i].idx
		}
		key[d] = first
		return &unit{eng: ne, key: key}
	}
	return nil
}

// pendingAt reports whether choice k of nd is donatable pending work: in
// the backtrack set, not explored, not asleep, and not the choice the
// donor is currently inside. Case nodes skip the sleep lookup: their order
// entries are case indices, which must never be matched against the
// thread-keyed sleep map.
func (e *dporEngine) pendingAt(nd *dporNode, k int) bool {
	if k == nd.idx || !nd.backtrack[k] || nd.done[k] {
		return false
	}
	if nd.selOf != vthread.NoThread {
		return true
	}
	_, asleep := nd.sleep[nd.order[k]]
	return !asleep
}

// unit is a prefix-pinned sub-search: an engine whose stack prefix is
// pinned and whose shallowest open node may be restricted to a sibling
// range (DFS) or a donated candidate set (DPOR). key is the branch key of
// the first position the unit covers; fresh units run immediately, donated
// units backtrack first (the uniform path that also handles bound-pruning
// of the donated range).
type unit struct {
	eng   searcher
	key   []int
	fresh bool
	// res carries a parked unit's partial tallies across a suspension
	// (checkpoint/resume); nil for units that have never run.
	res *unitResult
}

// runStats is the per-benchmark max-statistics fold of Table 3 (max
// enabled threads, max contested scheduling points, max thread count),
// shared by every accumulation site of the parallel driver.
type runStats struct {
	maxEnabled int
	schedPts   int
	threads    int
}

// observe folds one execution's statistics in.
func (s *runStats) observe(out *vthread.Outcome) {
	if out.MaxEnabled > s.maxEnabled {
		s.maxEnabled = out.MaxEnabled
	}
	if out.SchedPoints > s.schedPts {
		s.schedPts = out.SchedPoints
	}
	if out.Threads > s.threads {
		s.threads = out.Threads
	}
}

// fold merges another accumulator in.
func (s *runStats) fold(o runStats) {
	if o.maxEnabled > s.maxEnabled {
		s.maxEnabled = o.maxEnabled
	}
	if o.schedPts > s.schedPts {
		s.schedPts = o.schedPts
	}
	if o.threads > s.threads {
		s.threads = o.threads
	}
}

// foldInto merges the accumulator into a Result.
func (s runStats) foldInto(r *Result) {
	if s.maxEnabled > r.MaxEnabled {
		r.MaxEnabled = s.maxEnabled
	}
	if s.schedPts > r.MaxSchedPoints {
		r.MaxSchedPoints = s.schedPts
	}
	if s.threads > r.Threads {
		r.Threads = s.threads
	}
}

// unitResult is everything a finished unit contributes to the merge.
type unitResult struct {
	runStats
	key       []int
	schedules int   // terminal schedules counted by this unit
	buggyOffs []int // 1-based offsets (within this unit) of buggy schedules
	failure   *vthread.Failure
	witness   sched.Schedule
	pruned    bool
	branches  int // enabled siblings retired unexplored by POR
	// panicMsg marks a unit whose worker panicked mid-unit: its schedule
	// counts are forfeited (the merge skips them), only its run statistics
	// fold in, and the job reports the panic instead of completeness.
	panicMsg string
	// executions/steps/aborted are the unit's own work tallies, filled by
	// the distributed driver (ShardTree/RunUnit), which has no process-wide
	// atomics to count on; the in-process pool leaves them zero and counts
	// work on the job's shared counters instead. Summed over a disjoint
	// covering set of completed units they equal the sequential totals.
	executions int
	steps      int64
	aborted    int
}

// job is one complete pass over the tree (one DFS, or one bound of an
// iterative search) being explored by the pool.
type job struct {
	cfg Config

	queue   []*unit // guarded by pool.mu; donors append at the tail, thieves take the head
	pending int     // guarded by pool.mu; queued + running units
	closed  bool    // guarded by pool.mu; done has been closed

	results  []*unitResult // guarded by resMu
	resMu    sync.Mutex
	stop     atomic.Bool
	limitHit atomic.Bool
	budget   atomic.Int64 // remaining counted-schedule tickets

	// execs counts every execution performed anywhere in the exploration,
	// steps their summed trace lengths and aborts the chooser-aborted ones
	// (the honest Result.Executions / TotalSteps / AbortedExecutions
	// metrics, speculation included). own counts this job's executions
	// alone and is what execLimit — the MaxExecutions budget left when the
	// job was created, tightened as earlier bounds commit — guards, so
	// speculative work never burns the active bound's execution budget.
	execs     *atomic.Int64
	steps     *atomic.Int64
	aborts    *atomic.Int64
	own       atomic.Int64
	execLimit atomic.Int64

	// ctl is the exploration's shared stop signal; workers poll it before
	// every execution and suspend the job when it trips.
	ctl *stopCtl
	// suspend asks running units to park instead of continuing; queued
	// units are parked by suspendJob directly. suspended (guarded by
	// pool.mu) collects the parked units — each a positioned engine plus
	// its partial tallies — for checkpointing or in-process reseeding.
	suspend   atomic.Bool
	suspended []*unit

	done chan struct{}
}

// pool runs worker goroutines over an ordered list of jobs; workers always
// prefer the earliest job with queued work, so a speculative bound only
// consumes cycles the active bound cannot use.
type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*job
	idle   int
	closed bool
	wg     sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// addJob registers a job seeded with the whole-tree root unit.
func (p *pool) addJob(j *job, root searcher) *job {
	p.mu.Lock()
	j.queue = append(j.queue, &unit{eng: root, fresh: true})
	j.pending = 1
	p.jobs = append(p.jobs, j)
	p.mu.Unlock()
	p.cond.Signal()
	return j
}

// removeJob drops a finished job from the scan list.
func (p *pool) removeJob(j *job) {
	p.mu.Lock()
	for i, x := range p.jobs {
		if x == j {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// stopJob cancels a job: pending queued units are dropped, running units
// observe j.stop and finish their current execution only.
func (p *pool) stopJob(j *job) {
	p.mu.Lock()
	p.stopJobLocked(j)
	p.mu.Unlock()
}

func (p *pool) stopJobLocked(j *job) {
	j.stop.Store(true)
	j.pending -= len(j.queue)
	j.queue = nil
	if j.pending == 0 && !j.closed {
		j.closed = true
		close(j.done)
	}
}

// close stops every job and joins the workers.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	for _, j := range p.jobs {
		p.stopJobLocked(j)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// worker owns one reusable Executor for its whole lifetime: every unit it
// picks up (whatever the job or bound) runs its executions on it, so
// thread goroutines and buffers are recycled across units, not just
// within one. All jobs of a pool share one Config, so the executor's
// visibility/step options fit every unit.
func (p *pool) worker() {
	defer p.wg.Done()
	var ex *vthread.Executor
	defer func() {
		if ex != nil {
			ex.Close()
		}
	}()
	for {
		j, u := p.take()
		if u == nil {
			return
		}
		if ex == nil {
			ex = newExecutor(j.cfg)
		}
		u.eng.setExec(ex)
		if !p.runUnit(j, u) {
			// The unit panicked mid-execution: the executor may hold a
			// wedged run (on the reference engine, parked goroutines), so
			// abandon it and build a fresh one for the next unit. The flat
			// engine leaks nothing; the reference engine leaks that run's
			// parked goroutines, which is the price of surviving.
			ex = nil
		}
	}
}

// take steals the lexicographically smallest queued unit of the earliest
// job with work, or blocks. Lex-priority stealing keeps the workers
// clustered on the earliest open regions of the tree, so the frontier
// advances in approximately the sequential visit order — which makes a
// budget-truncated parallel search count (and find bugs in) nearly the
// same lexicographic window a sequential search would, instead of
// scattering the budget across distant subtrees.
func (p *pool) take() (*job, *unit) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, nil
		}
		for _, j := range p.jobs {
			if len(j.queue) > 0 {
				best := 0
				for i := 1; i < len(j.queue); i++ {
					if sched.CompareBranchKeys(j.queue[i].key, j.queue[best].key) < 0 {
						best = i
					}
				}
				u := j.queue[best]
				j.queue = append(j.queue[:best], j.queue[best+1:]...)
				return j, u
			}
		}
		p.idle++
		p.cond.Wait()
		p.idle--
	}
}

// finishUnit records a unit's result and signals job completion when it was
// the last one out.
func (p *pool) finishUnit(j *job, res *unitResult) {
	j.resMu.Lock()
	j.results = append(j.results, res)
	j.resMu.Unlock()
	p.mu.Lock()
	j.pending--
	if j.pending == 0 && !j.closed {
		j.closed = true
		close(j.done)
	}
	p.mu.Unlock()
}

// maybeDonate splits the engine's shallowest open sibling range into a new
// unit when the pool is starving and the job's queue is empty.
func (p *pool) maybeDonate(j *job, eng searcher) {
	p.mu.Lock()
	starving := p.idle > 0 && len(j.queue) == 0 && !j.stop.Load() &&
		!j.suspend.Load() && !p.closed
	p.mu.Unlock()
	if !starving {
		return
	}
	u := eng.split()
	if u == nil {
		return
	}
	p.mu.Lock()
	if j.stop.Load() || p.closed {
		// The donation raced a cancellation; the donor already gave the
		// range up, so the unit must still be explored — by nobody. That
		// is fine: a stopped job's results are discarded.
		p.mu.Unlock()
		return
	}
	j.queue = append(j.queue, u)
	j.pending++
	p.mu.Unlock()
	p.cond.Signal()
}

// runUnit explores one unit to exhaustion (or cancellation), donating work
// along the way. It returns false when the unit panicked: the panic is
// recovered here — the pool survives a worker panic by failing that unit
// alone — and the caller must abandon the worker's executor.
func (p *pool) runUnit(j *job, u *unit) (ok bool) {
	res := u.res
	if res == nil {
		res = &unitResult{key: u.key}
	}
	eng := u.eng
	ok = true
	defer func() {
		if rec := recover(); rec != nil {
			ok = false
			res.panicMsg = fmt.Sprint(rec)
			p.finishUnit(j, res)
		}
	}()
	alive := u.fresh || eng.backtrack()
	for alive && !j.stop.Load() {
		if _, stop := j.ctl.poll(); stop {
			p.suspendJob(j)
		}
		if j.suspend.Load() {
			// Park positioned: the engine sits post-backtrack, ready for
			// its next runOnce, which is exactly the state checkpoints
			// serialize and Resume re-enters.
			p.parkUnit(j, &unit{eng: eng, key: u.key, fresh: true, res: res})
			return true
		}
		if faultinject.Hit(faultinject.PoolUnitPanic) {
			panic("faultinject: worker death mid-unit")
		}
		out := eng.runOnce()
		j.execs.Add(1)
		j.steps.Add(int64(len(out.Trace)))
		if out.Aborted {
			j.aborts.Add(1)
		}
		res.observe(out)
		if eng.counts(out) {
			if j.budget.Add(-1) < 0 {
				j.limitHit.Store(true)
				p.stopJob(j)
				break
			}
			res.schedules++
			if out.Buggy() {
				res.buggyOffs = append(res.buggyOffs, res.schedules)
				if res.failure == nil {
					res.failure = out.Failure
					res.witness = out.Trace.Clone()
				}
			}
		}
		// Post-execution check with >=, matching the sequential driver: the
		// execution that exhausts the budget still runs (and counts), and a
		// space that completes exactly at the budget reports LimitHit, not
		// Complete, either way.
		if j.own.Add(1) >= j.execLimit.Load() {
			j.limitHit.Store(true)
			p.stopJob(j)
			break
		}
		p.maybeDonate(j, eng)
		alive = eng.backtrack()
	}
	res.pruned = eng.wasPruned()
	res.branches = eng.prunedBranches()
	p.finishUnit(j, res)
	return true
}

// suspendJob asks a running job to park: queued units move to the
// suspended list immediately, running units park at their next
// per-execution check. Idempotent, and a no-op on a stopped job (a
// cancelled job's state is discarded, not checkpointed).
func (p *pool) suspendJob(j *job) {
	p.mu.Lock()
	if j.stop.Load() || j.suspend.Load() {
		p.mu.Unlock()
		return
	}
	j.suspend.Store(true)
	j.suspended = append(j.suspended, j.queue...)
	j.pending -= len(j.queue)
	j.queue = nil
	if j.pending == 0 && !j.closed {
		j.closed = true
		close(j.done)
	}
	p.mu.Unlock()
}

// parkUnit records a running unit parked by a suspension.
func (p *pool) parkUnit(j *job, u *unit) {
	p.mu.Lock()
	j.suspended = append(j.suspended, u)
	j.pending--
	if j.pending == 0 && !j.closed {
		j.closed = true
		close(j.done)
	}
	p.mu.Unlock()
}

// collectJob gathers a drained job's parked units and finished results;
// safe only after j.done has closed (no worker owns any of them then).
func (p *pool) collectJob(j *job) (parked []*unit, results []*unitResult) {
	p.mu.Lock()
	parked = j.suspended
	j.suspended = nil
	p.mu.Unlock()
	j.resMu.Lock()
	results = j.results
	j.resMu.Unlock()
	return parked, results
}

// addJobUnits registers a job seeded with restored units (pool resume).
// A resume checkpoint may carry only completed units — the stop landed
// right after the last unit finished — in which case the job is born
// drained and its done channel must close here or nothing ever will.
func (p *pool) addJobUnits(j *job, units []*unit) *job {
	p.mu.Lock()
	j.queue = append(j.queue, units...)
	j.pending = len(units)
	if j.pending == 0 && !j.closed {
		j.closed = true
		close(j.done)
	}
	p.jobs = append(p.jobs, j)
	p.mu.Unlock()
	p.cond.Broadcast()
	return j
}

// passResult is the merged outcome of one job.
type passResult struct {
	runStats
	schedules      int
	buggy          int
	bugFound       bool
	firstBugOffset int // 1-based, within this pass
	failure        *vthread.Failure
	witness        sched.Schedule
	pruned         bool
	branches       int
	truncated      bool // the merge-time budget cut the walk short
	workerPanics   int
	panicMsg       string
	// Summed per-unit work tallies (distributed units only; see unitResult).
	executions int
	steps      int64
	aborted    int
}

// mergeJob merges a drained job: its finished unit results plus the
// partial tallies of any units parked by a suspension — a suspension that
// raced a budget stop must not silently drop counted (budget-consuming)
// schedules.
func mergeJob(p *pool, j *job, budget int) passResult {
	parked, results := p.collectJob(j)
	for _, u := range parked {
		if u.res != nil {
			results = append(results, u.res)
		}
	}
	return mergeUnits(results, budget)
}

// mergeUnits concatenates unit results in canonical order (branch-key
// lexicographic, prefix-orders-first — sched.CompareBranchKeys), applying
// the exact remaining schedule budget as it goes. Every DFS/IPB/IDB unit
// covers a contiguous lexicographic range, so on a fully enumerated pass
// this reproduces the sequential visit order — totals, the budget cut,
// the first-bug offset and its witness all land exactly where a
// sequential walk would put them (see the package comment; DPOR is
// verdict-level under stealing).
//
// Forfeited units — a worker panicked mid-unit, or (in the distributed
// driver) a lease was abandoned and the unit's stale result discarded —
// keep the merge honest rather than optimistic:
//   - the unit's schedule counts, bug offsets and witness are dropped, so
//     a half-explored range can never masquerade as an enumerated one;
//   - its run statistics (max enabled threads, scheduling points, thread
//     count) and work tallies still fold in — they describe executions
//     that really happened;
//   - the forfeiture surfaces as workerPanics/panicMsg, and every driver
//     withholds Complete whenever workerPanics > 0.
//
// The contract under forfeiture is therefore verdict-level: a bug found
// by a surviving unit is reported at its canonical offset, counts remain
// exact over the surviving coverage and the budget still truncates
// canonically, but completeness and totals describe only the units that
// survived.
func mergeUnits(units []*unitResult, budget int) passResult {
	sort.Slice(units, func(a, b int) bool {
		return sched.CompareBranchKeys(units[a].key, units[b].key) < 0
	})
	var m passResult
	for _, u := range units {
		m.fold(u.runStats)
		m.executions += u.executions
		m.steps += u.steps
		m.aborted += u.aborted
		if u.panicMsg != "" {
			m.workerPanics++
			if m.panicMsg == "" {
				m.panicMsg = u.panicMsg
			}
			continue
		}
		m.pruned = m.pruned || u.pruned
		m.branches += u.branches
		take := u.schedules
		if m.schedules+take > budget {
			take = budget - m.schedules
			m.truncated = true
		}
		for _, off := range u.buggyOffs {
			if off > take {
				break
			}
			m.buggy++
			if !m.bugFound {
				m.bugFound = true
				m.firstBugOffset = m.schedules + off
				m.failure = u.failure
				m.witness = u.witness
			}
		}
		m.schedules += take
	}
	return m
}

// newCounters builds the shared execution/step/abort tallies one parallel
// driver's jobs all feed.
func newCounters() (execs, steps, aborts *atomic.Int64) {
	return new(atomic.Int64), new(atomic.Int64), new(atomic.Int64)
}

// poolResume carries a restored pool checkpoint's live state into the
// parallel drivers: the parked units, the finished unit results, and every
// shared budget and counter of the suspended job.
type poolResume struct {
	units          []*unit
	results        []*unitResult
	budget         int64
	execLimit      int64
	ownExecs       int64
	execs          int64
	steps          int64
	aborts         int64
	counted        int   // iterative: schedules committed by earlier bounds
	committedExecs int64 // iterative: executions committed by earlier bounds
	bound          int   // iterative: the bound being enumerated
}

// withParkedPartials appends the partial tallies of parked units to a
// drained job's finished results — counted (budget-consuming) schedules
// must never be dropped, whether the merge is for a checkpointed partial
// result or for a suspension that raced a budget stop.
func withParkedPartials(results []*unitResult, parked []*unit) []*unitResult {
	for _, u := range parked {
		if u.res != nil {
			results = append(results, u.res)
		}
	}
	return results
}

// poolCheckpoint serializes a drained job: its parked units (each a
// positioned engine plus partial tallies), its finished unit results, and
// its budgets and counters. r must be the *pre-merge* cross-pass result:
// the serialized units' contributions are folded in on resume, so folding
// them here too would double-count.
func poolCheckpoint(cfg Config, r *Result, tech string, j *job,
	parked []*unit, results []*unitResult) *Checkpoint {
	ck := newCheckpoint(cfg, tech, r)
	ps := &PoolState{
		BudgetLeft:    j.budget.Load(),
		ExecLimitLeft: j.execLimit.Load(),
		OwnExecs:      j.own.Load(),
		Execs:         j.execs.Load(),
		Steps:         j.steps.Load(),
		Aborts:        j.aborts.Load(),
	}
	for _, u := range parked {
		us := UnitState{
			Key:        append([]int(nil), u.key...),
			Positioned: u.fresh,
			Engine:     snapshotSearcher(u.eng),
		}
		if u.res != nil {
			us.Partial = unitResultToState(u.res)
		}
		ps.Units = append(ps.Units, us)
	}
	for _, ur := range results {
		ps.Done = append(ps.Done, *unitResultToState(ur))
	}
	ck.Pool = ps
	return ck
}

// runTreeParallel is the shared single-pass driver behind parallel DFS and
// DPOR: one job seeded with root, explored to completion or the schedule
// limit.
func runTreeParallel(cfg Config, r *Result, root searcher) *Result {
	return treeParallel(cfg, r, &poolResume{
		units:     []*unit{{eng: root, fresh: true}},
		budget:    int64(cfg.Limit),
		execLimit: math.MaxInt64, // unbounded passes have no execution guard
	})
}

// treeParallel runs one single-pass job — fresh, or restored from a pool
// checkpoint — to completion, the limit, or interruption.
func treeParallel(cfg Config, r *Result, rs *poolResume) *Result {
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	p := newPool(workers)
	defer p.close()
	execs, steps, aborts := newCounters()
	execs.Store(rs.execs)
	steps.Store(rs.steps)
	aborts.Store(rs.aborts)
	ctl := newStopCtl(cfg)
	j := &job{cfg: cfg, ctl: ctl, execs: execs, steps: steps, aborts: aborts,
		done: make(chan struct{})}
	j.execLimit.Store(rs.execLimit)
	j.budget.Store(rs.budget)
	j.own.Store(rs.ownExecs)
	j.results = rs.results
	p.addJobUnits(j, rs.units)
	j = p.waitTree(cfg, r, j, newCkWriter(cfg))
	parked, results := p.collectJob(j)
	reason, stopped := ctl.reason()
	truncated := stopped && !j.limitHit.Load()
	if truncated && !ctl.crashed.Load() {
		writeCheckpoint(cfg, r, poolCheckpoint(cfg, r, r.Technique.String(), j, parked, results))
	}
	m := mergeUnits(withParkedPartials(results, parked), cfg.Limit)
	foldPass(r, &m, 0)
	r.Schedules = m.schedules
	if truncated {
		r.Stopped = reason
	} else if r.Schedules >= cfg.Limit || j.limitHit.Load() || m.truncated {
		r.LimitHit = true
		r.Stopped = StopLimit
	} else if r.WorkerPanics == 0 {
		r.Complete = true
	}
	r.Executions = int(execs.Load())
	r.TotalSteps = steps.Load()
	r.AbortedExecutions = int(aborts.Load())
	return r
}

// waitTree waits for a single-pass job to drain, taking periodic
// stop-the-world checkpoints when configured. Reseeding replaces the job
// object, so the job that finally drained is returned.
func (p *pool) waitTree(cfg Config, r *Result, j *job, ckw *ckWriter) *job {
	if ckw == nil {
		<-j.done
		return j
	}
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-j.done:
			return j
		case <-tick.C:
			if _, stopped := j.ctl.reason(); stopped || !ckw.due(int(j.execs.Load())) {
				continue
			}
			nj, ok := p.periodicTreeCheckpoint(cfg, r, j)
			j = nj
			if !ok {
				<-j.done
				return j
			}
			ckw.last = int(j.execs.Load())
		}
	}
}

// periodicTreeCheckpoint stop-the-world checkpoints a running job:
// suspend, wait for every unit to park, serialize, then reseed an
// identical job with the very same parked units (in-process — no
// serialization round trip). ok=false when the job finished or stopped
// instead of parking, or a simulated mid-write crash ended the run; the
// parked units (if any) are put back for the final drain path either way.
func (p *pool) periodicTreeCheckpoint(cfg Config, r *Result, j *job) (*job, bool) {
	p.suspendJob(j)
	<-j.done
	p.removeJob(j)
	p.mu.Lock()
	parked := j.suspended
	j.suspended = nil
	stopped := j.stop.Load()
	p.mu.Unlock()
	restore := func() {
		p.mu.Lock()
		j.suspended = parked
		p.mu.Unlock()
	}
	if _, trip := j.ctl.reason(); stopped || trip || len(parked) == 0 {
		restore()
		return j, false
	}
	j.resMu.Lock()
	results := j.results
	j.resMu.Unlock()
	if writeCheckpoint(cfg, r, poolCheckpoint(cfg, r, r.Technique.String(), j, parked, results)) {
		// Simulated death mid-write: stop everything, leave the file as
		// the crash left it.
		j.ctl.crashed.Store(true)
		j.ctl.trip(StopInterrupted)
		restore()
		return j, false
	}
	j2 := &job{cfg: cfg, ctl: j.ctl, execs: j.execs, steps: j.steps,
		aborts: j.aborts, done: make(chan struct{})}
	j2.budget.Store(j.budget.Load())
	j2.execLimit.Store(j.execLimit.Load())
	j2.own.Store(j.own.Load())
	j2.results = results
	p.addJobUnits(j2, parked)
	return j2, true
}

// runDFSParallel is RunDFS with cfg.Workers > 1.
func runDFSParallel(cfg Config) *Result {
	cfg = cfg.withDefaults()
	return runTreeParallel(cfg, &Result{Technique: DFS}, newEngine(cfg, CostNone, 0))
}

// runDPORParallel is RunDPOR with cfg.Workers > 1; see the package comment
// for the exactness caveat under work-stealing.
func runDPORParallel(cfg Config) *Result {
	cfg = cfg.withDefaults()
	return runTreeParallel(cfg, &Result{Technique: DPOR}, newDPOREngine(cfg))
}

// runIterativeParallel is RunIterative with cfg.Workers > 1: each bound is
// one job, with the next bound running speculatively behind it. A non-nil
// rs resumes a suspended sweep: the active bound's parked units are
// reseeded exactly, while the speculative bound (whose progress a
// checkpoint discards — its results would have been recomputed anyway)
// restarts from scratch.
func runIterativeParallel(cfg Config, model CostModel, r *Result, rs *poolResume) *Result {
	cfg = cfg.withDefaults()
	tech := IPB
	if model == CostDelays {
		tech = IDB
	}
	if r == nil {
		r = &Result{Technique: tech}
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	p := newPool(workers)
	defer p.close()
	execs, steps, aborts := newCounters()
	ctl := newStopCtl(cfg)

	committedExecs := int64(0)
	counted := 0
	startBound := 0
	newJob := func(bound, budget int) *job {
		j := &job{cfg: cfg, ctl: ctl, execs: execs, steps: steps, aborts: aborts,
			done: make(chan struct{})}
		j.execLimit.Store(int64(cfg.MaxExecutions) - committedExecs)
		j.budget.Store(int64(budget))
		return p.addJob(j, newEngine(cfg, model, bound))
	}

	var active *job
	if rs != nil {
		counted = rs.counted
		committedExecs = rs.committedExecs
		startBound = rs.bound
		execs.Store(rs.execs)
		steps.Store(rs.steps)
		aborts.Store(rs.aborts)
		if len(rs.units) > 0 {
			active = &job{cfg: cfg, ctl: ctl, execs: execs, steps: steps,
				aborts: aborts, done: make(chan struct{})}
			active.execLimit.Store(rs.execLimit)
			active.budget.Store(rs.budget)
			active.own.Store(rs.ownExecs)
			active.results = rs.results
			p.addJobUnits(active, rs.units)
		} else {
			active = newJob(startBound, cfg.Limit-counted)
		}
	} else {
		active = newJob(0, cfg.Limit)
	}
	var spec *job
	if startBound+1 <= cfg.MaxBound {
		spec = newJob(startBound+1, cfg.Limit-counted)
	}
	for bound := startBound; ; bound++ {
		<-active.done
		p.removeJob(active)
		parked, results := p.collectJob(active)
		reason, stopped := ctl.reason()
		if stopped && !active.limitHit.Load() {
			if spec != nil {
				p.stopJob(spec)
			}
			r.Bound = bound
			if !ctl.crashed.Load() {
				ck := poolCheckpoint(cfg, r, tech.String(), active, parked, results)
				ck.Bound = bound
				ck.Pool.Counted = counted
				ck.Pool.CommittedExecs = committedExecs
				writeCheckpoint(cfg, r, ck)
			}
			m := mergeUnits(withParkedPartials(results, parked), cfg.Limit-counted)
			r.NewSchedules = m.schedules
			foldPass(r, &m, counted)
			counted += m.schedules
			r.Schedules = counted
			r.Stopped = reason
			break
		}
		m := mergeUnits(withParkedPartials(results, parked), cfg.Limit-counted)
		r.Bound = bound
		r.NewSchedules = m.schedules
		foldPass(r, &m, counted)
		counted += m.schedules
		r.Schedules = counted
		if r.Schedules >= cfg.Limit || active.limitHit.Load() || m.truncated {
			r.LimitHit = true
			r.Stopped = StopLimit
			break
		}
		if !m.pruned {
			// Nothing was pruned anywhere: every schedule costs at most
			// bound, so the space is fully explored — unless a worker
			// panic forfeited a unit, in which case completeness cannot be
			// claimed.
			if r.WorkerPanics == 0 {
				r.Complete = true
			}
			break
		}
		if r.BugFound {
			// The bound that exposed the bug has been fully enumerated;
			// stop, as in the paper's methodology (§5).
			break
		}
		if bound == cfg.MaxBound {
			break
		}
		ownExecs := active.own.Load()
		committedExecs += ownExecs
		active = spec
		// The promoted job's budgets are stale snapshots from its creation
		// (before the just-committed bound's consumption was known);
		// tighten them by exactly what that bound consumed.
		active.budget.Add(int64(-m.schedules))
		active.execLimit.Add(-ownExecs)
		if bound+2 <= cfg.MaxBound {
			spec = newJob(bound+2, cfg.Limit-counted)
		} else {
			spec = nil
		}
	}
	r.Executions = int(execs.Load())
	r.TotalSteps = steps.Load()
	r.AbortedExecutions = int(aborts.Load())
	return r
}

// foldPass folds one merged pass into the result; prior is the number of
// schedules counted by earlier (committed) passes.
func foldPass(r *Result, m *passResult, prior int) {
	m.runStats.foldInto(r)
	r.BuggySchedules += m.buggy
	r.BranchesPruned += m.branches
	r.WorkerPanics += m.workerPanics
	if m.panicMsg != "" && r.WorkerPanicMsg == "" {
		r.WorkerPanicMsg = m.panicMsg
	}
	if m.bugFound && !r.BugFound {
		r.BugFound = true
		r.Failure = m.failure
		r.Witness = m.witness
		r.SchedulesToFirstBug = prior + m.firstBugOffset
	}
}

// runRandParallel is RunRand with cfg.Workers > 1: the runs are independent
// and the per-run seed depends only on the run index, so an atomic index
// dispenser makes the parallel result — including the witness — identical
// to the sequential one. Workers capture the witness of the lowest-index
// buggy run as they go, so exactly Limit executions are performed, as in
// the sequential sweep. start > 0 resumes a checkpointed sweep at that
// run index. An interruption checkpoints the watermark — the first run
// index not yet accounted for; runs a worker overshot beyond it re-run on
// resume, which is harmless because every run is a pure function of its
// index.
func runRandParallel(cfg Config, r *Result, start int) *Result {
	n := cfg.Limit

	type rec struct {
		terminal, buggy bool
		steps           int
	}
	recs := make([]rec, n)
	done := make([]atomic.Bool, n)
	ctl := newStopCtl(cfg)
	var next atomic.Int64
	next.Store(int64(start))
	var wg sync.WaitGroup
	stats := make([]runStats, cfg.Workers)
	var witMu sync.Mutex
	witIdx := -1
	var witness sched.Schedule
	var failure *vthread.Failure
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := newExecutor(cfg)
			defer ex.Close()
			for {
				if _, stop := ctl.poll(); stop {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out := randRun(ex, cfg, i)
				stats[w].observe(out)
				recs[i] = rec{terminal: !out.StepLimitHit, buggy: out.Buggy(), steps: len(out.Trace)}
				if out.Buggy() {
					witMu.Lock()
					if witIdx < 0 || i < witIdx {
						witIdx = i
						witness = out.Trace.Clone()
						failure = out.Failure
					}
					witMu.Unlock()
				}
				done[i].Store(true)
			}
		}(w)
	}
	wg.Wait()

	reason, stopped := ctl.reason()
	end := n
	if stopped {
		// The dispenser hands out indices in order and a claimed index
		// always runs to completion, so the done flags are a contiguous
		// prefix [start, end).
		end = start
		for end < n && done[end].Load() {
			end++
		}
	}
	for i := start; i < end; i++ {
		rc := recs[i]
		r.TotalSteps += int64(rc.steps)
		if !rc.terminal {
			continue
		}
		r.Schedules++
		if rc.buggy {
			r.BuggySchedules++
			if !r.BugFound && i == witIdx {
				r.BugFound = true
				r.SchedulesToFirstBug = r.Schedules
				r.Failure = failure
				r.Witness = witness
			}
		}
	}
	// The max-fold statistics may include overshot runs beyond the
	// watermark; re-folding them on resume is idempotent.
	for _, s := range stats {
		s.foldInto(r)
	}
	if stopped {
		r.Stopped = reason
		r.Executions = end
		writeCheckpoint(cfg, r, randCheckpoint(cfg, r, end))
		return r
	}
	r.Executions = n
	r.LimitHit = true
	r.Stopped = StopLimit
	return r
}

// randRun executes run i of a Rand sweep on the caller's executor. It is
// the single definition of the per-run seed formula, used by both the
// sequential and the parallel sweep, so the two execute identical
// schedules by construction.
func randRun(ex *vthread.Executor, cfg Config, i int) *vthread.Outcome {
	return ex.RunWith(vthread.NewRandom(cfg.Seed+uint64(i)*0x9e3779b9), nil, cfg.Program)
}
