package sched

import "testing"

func TestCompareBranchKeys(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{nil, []int{0}, -1}, // the whole tree starts before any subtree
		{[]int{0}, nil, 1},
		{[]int{0, 2}, []int{0, 2}, 0},
		{[]int{0, 1}, []int{0, 2}, -1},
		{[]int{1}, []int{0, 5, 9}, 1},     // later root branch, however deep the other
		{[]int{0, 3}, []int{0, 3, 1}, -1}, // prefix contains (and starts at) the longer key
		{[]int{2, 0, 0}, []int{2, 0, 1}, -1},
	}
	for _, c := range cases {
		if got := CompareBranchKeys(c.a, c.b); got != c.want {
			t.Errorf("CompareBranchKeys(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got, want := CompareBranchKeys(c.b, c.a), -c.want; got != want {
			t.Errorf("CompareBranchKeys(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, want)
		}
	}
}
