// Package pct implements the PCT randomized priority scheduler
// [Burckhardt et al., ASPLOS'10], the related-work technique of §7 of the
// paper, as an extension strategy for ablation benchmarks: it is not part
// of the Table 3 phases.
//
// PCT assigns each thread a random priority and always runs the
// highest-priority enabled thread; d−1 priority *change points* are chosen
// uniformly over the (estimated) execution length, and when execution
// reaches change point i the running thread's priority drops below every
// other. With d change points PCT finds every bug of depth d (d ordering
// constraints) with probability at least 1/(n·k^(d−1)) per run — unlike a
// naive random scheduler, whose per-step coin flips concentrate context
// switches uniformly rather than at a few deep points.
package pct

import (
	"math/rand/v2"

	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// Chooser is a single-execution PCT scheduler. Create a fresh one per run
// (priorities and change points are drawn once per execution).
type Chooser struct {
	rng *rand.Rand
	// base priorities per thread id; higher runs first. Assigned lazily as
	// threads appear so late-spawned threads get random priorities too.
	prio []int
	// changePoints[i] = step at which the i-th priority drop fires.
	changePoints []int
	nextPrio     int // counts down: each new assignment is lower
	steps        int
}

// New creates a PCT chooser with depth d (d−1 change points) over an
// execution of approximately k steps.
func New(seed uint64, d, k int) *Chooser {
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	c := &Chooser{rng: rng, nextPrio: 1 << 30}
	for i := 0; i < d-1; i++ {
		if k > 0 {
			c.changePoints = append(c.changePoints, rng.IntN(k))
		}
	}
	return c
}

func (c *Chooser) prioOf(t sched.ThreadID) int {
	for len(c.prio) <= int(t) {
		// A fresh random base priority strictly below all previous ones on
		// average: draw from a shrinking range to randomise initial order.
		c.prio = append(c.prio, c.rng.IntN(1<<20))
	}
	return c.prio[t]
}

// Choose implements vthread.Chooser.
func (c *Chooser) Choose(ctx vthread.Context) sched.ThreadID {
	if ctx.SelectOf != vthread.NoThread {
		// Case-decision point of a multi-way select: Enabled holds ready
		// case indices, not thread ids, so the thread-keyed priorities do
		// not apply and no change point fires. Pick a ready case uniformly,
		// matching the Go runtime's own select semantics.
		return ctx.Enabled[c.rng.IntN(len(ctx.Enabled))]
	}
	step := c.steps
	c.steps++
	// Fire any change point scheduled for this step: the currently
	// highest-priority enabled thread drops to the bottom.
	for _, cp := range c.changePoints {
		if cp == step {
			best := c.bestEnabled(ctx.Enabled)
			c.prioOf(best)
			c.nextPrio--
			c.prio[best] = -1 << 20 // below every base priority
			_ = c.nextPrio
			break
		}
	}
	return c.bestEnabled(ctx.Enabled)
}

// ObserveForcedStep implements vthread.StepObserver by delegating to
// Choose and discarding the pick (which is forced anyway). PCT counts
// steps, fires change points and lazily draws base priorities inside
// Choose, and all three must advance identically at single-enabled
// scheduling points for a fast-path run to schedule — and consume its rng
// stream — exactly like a fast-path-off run.
func (c *Chooser) ObserveForcedStep(ctx vthread.Context) { c.Choose(ctx) }

func (c *Chooser) bestEnabled(enabled []sched.ThreadID) sched.ThreadID {
	best := enabled[0]
	bestP := c.prioOf(best)
	for _, t := range enabled[1:] {
		if p := c.prioOf(t); p > bestP {
			best, bestP = t, p
		}
	}
	return best
}

// Result summarises a PCT campaign.
type Result struct {
	// BugFound reports whether any run exposed a bug.
	BugFound bool
	// Failure is the first failure observed.
	Failure *vthread.Failure
	// RunsToFirstBug is the 1-based index of the first failing run.
	RunsToFirstBug int
	// Runs is the number of executions performed.
	Runs int
	// BuggyRuns counts failing executions.
	BuggyRuns int
}

// Config parameterises a PCT campaign.
type Config struct {
	// Program builds a fresh program per run.
	Program func() vthread.Runnable
	// Runs is the number of independent executions (like Rand's budget).
	Runs int
	// Depth is the PCT bug depth d (number of ordering constraints).
	Depth int
	// Seed seeds priorities and change points.
	Seed uint64
	// Visible, BoundsCheck, MaxSteps forward to the substrate.
	Visible     func(string) bool
	BoundsCheck bool
	MaxSteps    int
}

// Run performs a PCT campaign: Runs independent executions, calibrating
// the change-point range with the previous run's observed length.
func Run(cfg Config) *Result {
	res := &Result{}
	k := 64 // initial length estimate; recalibrated after the first run
	ex := vthread.NewExecutor(vthread.Options{
		Visible:     cfg.Visible,
		BoundsCheck: cfg.BoundsCheck,
		MaxSteps:    cfg.MaxSteps,
	})
	defer ex.Close()
	for i := 0; i < cfg.Runs; i++ {
		ch := New(cfg.Seed+uint64(i)*0x9e3779b9, cfg.Depth, k)
		out := ex.RunWith(ch, nil, cfg.Program())
		res.Runs++
		if n := len(out.Trace); n > 0 {
			k = n
		}
		if out.Buggy() {
			res.BuggyRuns++
			if !res.BugFound {
				res.BugFound = true
				res.Failure = out.Failure
				res.RunsToFirstBug = res.Runs
			}
		}
	}
	return res
}
