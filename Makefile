# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test bench bench-json lint study clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 3x .

# Substrate throughput benchmarks (executions/sec, ns/step,
# allocs/execution), exploration reduction benchmarks (executions,
# steps and schedules per technique: DFS vs sleep-set vs DPOR), the
# GoIdiom family's reduction + throughput benchmarks (select-heavy
# workloads with case-decision points) and the GoTime family's
# (timer/ticker/context workloads over the virtual clock), recorded as
# JSON to seed the perf trajectory across PRs. The temp files keep a
# benchmark failure from being masked by the pipe; benchjson also exits
# non-zero when no benchmark lines parsed. The whole pipeline runs in one
# shell with an EXIT trap so the BENCH_*.txt intermediates are removed
# even when a benchmark or benchjson fails mid-way.
bench-json:
	@set -e; trap 'rm -f BENCH_substrate.txt BENCH_explore.txt BENCH_goidiom.txt BENCH_gotime.txt BENCH_swarm.txt' EXIT; \
	$(GO) test -run xxx -bench 'BenchmarkExecutorThroughput|BenchmarkSubstrateThroughput|BenchmarkStepOverhead' \
		-benchmem -benchtime 1000x . > BENCH_substrate.txt; \
	$(GO) run ./cmd/benchjson -o BENCH_substrate.json < BENCH_substrate.txt; \
	$(GO) test -run xxx -bench 'BenchmarkExploreReduction' -benchtime 3x . > BENCH_explore.txt; \
	$(GO) run ./cmd/benchjson -o BENCH_explore.json < BENCH_explore.txt; \
	$(GO) test -run xxx -bench 'BenchmarkGoIdiom' -benchmem -benchtime 3x . > BENCH_goidiom.txt; \
	$(GO) run ./cmd/benchjson -o BENCH_goidiom.json < BENCH_goidiom.txt; \
	$(GO) test -run xxx -bench 'BenchmarkGoTime' -benchmem -benchtime 3x . > BENCH_gotime.txt; \
	$(GO) run ./cmd/benchjson -o BENCH_gotime.json < BENCH_gotime.txt; \
	$(GO) test -run xxx -bench 'BenchmarkSwarmCorpusReplay' -benchtime 3x . > BENCH_swarm.txt; \
	$(GO) run ./cmd/benchjson -o BENCH_swarm.json < BENCH_swarm.txt; \
	cat BENCH_substrate.json BENCH_explore.json BENCH_goidiom.json BENCH_gotime.json BENCH_swarm.json

lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...

# The full empirical study (Tables 2-3, Figures 2-4); see EXPERIMENTS.md.
study:
	$(GO) run ./cmd/sctbench

clean:
	$(GO) clean ./...
