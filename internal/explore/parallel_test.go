package explore

// The parallel driver's contract is equivalence: for DFS/IPB/IDB every
// count a sequential search reports — totals, per-bound news, first-bug
// position, witness, completeness — must be reproduced bit-identically by
// any worker count, and for Rand the whole result is deterministic in the
// seed. These tests pin that contract on the paper-example programs and on
// a wider synthetic program whose tree is big enough to force real
// work-stealing, and stress the pool under the race detector.

import (
	"fmt"
	"testing"

	"sctbench/internal/vthread"
)

// mesh builds a program with a combinatorially wide schedule space and no
// bug: n threads each perform k visible writes to a shared variable.
func mesh(n, k int) vthread.Program {
	return func(t0 *vthread.Thread) {
		v := t0.NewVar("v", 0)
		bodies := make([]vthread.Program, n)
		for i := 0; i < n; i++ {
			bodies[i] = func(tw *vthread.Thread) {
				for j := 0; j < k; j++ {
					v.Add(tw, 1)
				}
			}
		}
		t0.SpawnAll(bodies...)
	}
}

// paperPrograms are the exploration targets the equivalence tests sweep.
func paperPrograms() map[string]func() vthread.Program {
	return map[string]func() vthread.Program{
		"figure1":  figure1,
		"reorder0": func() vthread.Program { return reorder(0) },
		"reorder2": func() vthread.Program { return reorder(2) },
		"mesh":     func() vthread.Program { return mesh(3, 2) },
	}
}

// assertEquivalent compares every deterministic Result field. Executions is
// excluded: parallel iterative search performs (and honestly reports)
// speculative work a sequential search never does.
func assertEquivalent(t *testing.T, name string, seq, par *Result) {
	t.Helper()
	if seq.Schedules != par.Schedules {
		t.Errorf("%s: Schedules %d (seq) != %d (par)", name, seq.Schedules, par.Schedules)
	}
	if seq.NewSchedules != par.NewSchedules {
		t.Errorf("%s: NewSchedules %d != %d", name, seq.NewSchedules, par.NewSchedules)
	}
	if seq.Bound != par.Bound {
		t.Errorf("%s: Bound %d != %d", name, seq.Bound, par.Bound)
	}
	if seq.BugFound != par.BugFound {
		t.Errorf("%s: BugFound %v != %v", name, seq.BugFound, par.BugFound)
	}
	if seq.SchedulesToFirstBug != par.SchedulesToFirstBug {
		t.Errorf("%s: SchedulesToFirstBug %d != %d", name, seq.SchedulesToFirstBug, par.SchedulesToFirstBug)
	}
	if seq.BuggySchedules != par.BuggySchedules {
		t.Errorf("%s: BuggySchedules %d != %d", name, seq.BuggySchedules, par.BuggySchedules)
	}
	if seq.Complete != par.Complete {
		t.Errorf("%s: Complete %v != %v", name, seq.Complete, par.Complete)
	}
	if seq.LimitHit != par.LimitHit {
		t.Errorf("%s: LimitHit %v != %v", name, seq.LimitHit, par.LimitHit)
	}
	if !seq.Witness.Equal(par.Witness) {
		t.Errorf("%s: Witness %v != %v", name, seq.Witness, par.Witness)
	}
	if (seq.Failure == nil) != (par.Failure == nil) {
		t.Errorf("%s: Failure %v != %v", name, seq.Failure, par.Failure)
	} else if seq.Failure != nil && seq.Failure.Kind != par.Failure.Kind {
		t.Errorf("%s: Failure kind %v != %v", name, seq.Failure.Kind, par.Failure.Kind)
	}
	if seq.MaxEnabled != par.MaxEnabled {
		t.Errorf("%s: MaxEnabled %d != %d", name, seq.MaxEnabled, par.MaxEnabled)
	}
	if seq.MaxSchedPoints != par.MaxSchedPoints {
		t.Errorf("%s: MaxSchedPoints %d != %d", name, seq.MaxSchedPoints, par.MaxSchedPoints)
	}
	if seq.Threads != par.Threads {
		t.Errorf("%s: Threads %d != %d", name, seq.Threads, par.Threads)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	techniques := []Technique{DFS, IPB, IDB}
	for progName, newProg := range paperPrograms() {
		for _, tech := range techniques {
			for _, workers := range []int{2, 8} {
				name := fmt.Sprintf("%s/%s/workers=%d", tech, progName, workers)
				t.Run(name, func(t *testing.T) {
					seq := Run(tech, Config{Program: newProg(), Workers: 1})
					par := Run(tech, Config{Program: newProg(), Workers: workers})
					assertEquivalent(t, name, seq, par)
				})
			}
		}
	}
}

func TestParallelRandBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		seq := Run(Rand, Config{Program: figure1(), Limit: 400, Seed: seed, Workers: 1})
		par := Run(Rand, Config{Program: figure1(), Limit: 400, Seed: seed, Workers: 8})
		assertEquivalent(t, fmt.Sprintf("rand seed=%d", seed), seq, par)
		if seq.Executions != par.Executions {
			t.Errorf("seed=%d: Executions %d != %d (Rand performs exactly Limit runs)",
				seed, seq.Executions, par.Executions)
		}
	}
}

func TestParallelLimitTruncationCountsExact(t *testing.T) {
	// Figure 1 has 11 terminal schedules; a limit of 5 truncates the DFS.
	// The schedule total must still be exactly the limit in parallel mode
	// (which schedules land inside the budget is timing-dependent, so only
	// the counts are compared).
	seq := RunDFS(Config{Program: figure1(), Limit: 5, Workers: 1})
	for _, workers := range []int{2, 8} {
		par := RunDFS(Config{Program: figure1(), Limit: 5, Workers: workers})
		if par.Schedules != seq.Schedules {
			t.Errorf("workers=%d: Schedules = %d, want %d", workers, par.Schedules, seq.Schedules)
		}
		if !par.LimitHit || par.Complete {
			t.Errorf("workers=%d: LimitHit=%v Complete=%v, want true,false",
				workers, par.LimitHit, par.Complete)
		}
	}
}

func TestParallelMoreWorkersThanWork(t *testing.T) {
	// reorder(0) has a tiny tree; a 32-worker pool must still terminate and
	// agree with the sequential result.
	seq := RunIterative(Config{Program: reorder(0), Workers: 1}, CostDelays)
	par := RunIterative(Config{Program: reorder(0), Workers: 32}, CostDelays)
	assertEquivalent(t, "reorder0/IDB/workers=32", seq, par)
}

// TestParallelSpeculationRespectsExecutionBudget pins the guard-rail
// accounting: a MaxExecutions budget that a sequential search fits into
// must not be tripped by a parallel search just because speculative bound
// sweeps performed extra work — speculation spends only its own budget.
func TestParallelSpeculationRespectsExecutionBudget(t *testing.T) {
	seq := RunIterative(Config{Program: reorder(2), Workers: 1}, CostDelays)
	if seq.LimitHit || !seq.BugFound {
		t.Fatalf("unexpected sequential baseline: %+v", seq)
	}
	budget := seq.Executions + 8 // tight: cancelled speculative work alone exceeds the slack
	tight := Config{Program: reorder(2), MaxExecutions: budget}
	seqT, parT := tight, tight
	seqT.Workers, parT.Workers = 1, 8
	assertEquivalent(t, "tight-exec-budget",
		RunIterative(seqT, CostDelays), RunIterative(parT, CostDelays))

	// Exact budget: the execution that exhausts MaxExecutions still runs
	// and counts, and the search reports LimitHit, sequentially and in
	// parallel alike.
	exact := Config{Program: reorder(2), MaxExecutions: seq.Executions}
	seqE, parE := exact, exact
	seqE.Workers, parE.Workers = 1, 8
	se, pe := RunIterative(seqE, CostDelays), RunIterative(parE, CostDelays)
	if !se.LimitHit {
		t.Fatalf("sequential exact-budget run did not report LimitHit: %+v", se)
	}
	assertEquivalent(t, "exact-exec-budget", se, pe)
}

// TestParallelExecutorReuseStress hammers the per-worker Executor reuse
// path: a deep buggy program explored by a 16-worker pool, so every worker
// runs thousands of executions on one recycled thread pool, donated units
// hop between workers (and hence between executors), and buggy outcomes
// force witness cloning out of recycled trace buffers. The results must
// stay bit-identical to a sequential search; `go test -race` is the other
// half of the assertion.
func TestParallelExecutorReuseStress(t *testing.T) {
	iters := 3
	if testing.Short() {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		for _, tech := range []Technique{DFS, IPB, IDB} {
			name := fmt.Sprintf("iter%d/%s", i, tech)
			seq := Run(tech, Config{Program: reorder(2), Workers: 1})
			par := Run(tech, Config{Program: reorder(2), Workers: 16})
			if !par.BugFound {
				t.Fatalf("%s: parallel search missed the reorder bug", name)
			}
			assertEquivalent(t, name, seq, par)
		}
	}
}

// TestParallelWorkerPoolStress drives every technique with a large worker
// pool over programs wide enough to keep the donation path hot. Its real
// assertion is the race detector: `go test -race` must pass.
func TestParallelWorkerPoolStress(t *testing.T) {
	iters := 4
	if testing.Short() {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		for _, tech := range []Technique{DFS, IPB, IDB, Rand} {
			cfg := Config{Program: mesh(3, 2), Workers: 16, Limit: 600, Seed: uint64(i + 1)}
			res := Run(tech, cfg)
			if res.BugFound {
				t.Fatalf("iter %d: %s found a bug in the bug-free mesh program: %v",
					i, tech, res.Failure)
			}
			if res.Schedules == 0 {
				t.Fatalf("iter %d: %s explored no schedules", i, tech)
			}
		}
	}
}
