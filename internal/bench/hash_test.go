package bench

import "testing"

// TestRegistryHashes pins the corpus-key properties of the registry: every
// entry has a stable 16-hex-digit content hash, no two entries collide
// (the registry has no duplicate programs, so colliding keys would merge
// unrelated corpus entries), and the hash does not depend on the
// registry name (content addressing survives renames by construction —
// the name is simply never folded in).
func TestRegistryHashes(t *testing.T) {
	seen := make(map[string]string)
	for _, b := range All() {
		h := b.Hash()
		if len(h) != 16 {
			t.Fatalf("%s: hash %q is not 16 hex digits", b.Name, h)
		}
		if other, dup := seen[h]; dup {
			t.Fatalf("hash collision: %s and %s both hash to %s", other, b.Name, h)
		}
		seen[h] = b.Name
		if again := b.Hash(); again != h {
			t.Fatalf("%s: hash not stable across calls: %s vs %s", b.Name, h, again)
		}
	}
}
