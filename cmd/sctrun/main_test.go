package main

// In-process CLI tests: the exit-status contract (0 clean, 1 bug, 2
// truncated, 3 error) and the interrupt → checkpoint → resume cycle, as
// promised in the README.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sctbench/internal/faultinject"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, nil, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodes(t *testing.T) {
	// Bug found: the expected outcome on a planted-bug benchmark.
	code, out, _ := runCLI(t, "-bench", "CS.account_bad", "-technique", "dfs",
		"-limit", "200", "-workers", "1", "-norace")
	if code != exitBug {
		t.Fatalf("bug run exited %d, want %d\n%s", code, exitBug, out)
	}
	// Clean: one canonical schedule is not enough to trip the account bug.
	code, out, _ = runCLI(t, "-bench", "CS.account_bad", "-technique", "dfs",
		"-limit", "1", "-workers", "1", "-norace")
	if code != exitClean {
		t.Fatalf("limit-1 run exited %d, want %d\n%s", code, exitClean, out)
	}
	// Errors: unknown benchmark, unknown technique, bad flag.
	for _, args := range [][]string{
		{"-bench", "no.such.benchmark"},
		{"-bench", "CS.account_bad", "-technique", "quantum"},
		{"-no-such-flag"},
	} {
		if code, _, _ := runCLI(t, args...); code != exitError {
			t.Errorf("%v exited %d, want %d", args, code, exitError)
		}
	}
}

func TestTruncateAndResume(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "ck.json")
	base, baseOut, _ := runCLI(t, "-bench", "CS.account_bad", "-technique", "dfs",
		"-limit", "200", "-workers", "1", "-norace")
	if base != exitBug {
		t.Fatalf("baseline exited %d", base)
	}

	// An already-expired wall budget truncates at the first poll.
	code, out, _ := runCLI(t, "-bench", "CS.account_bad", "-technique", "dfs",
		"-limit", "200", "-workers", "1", "-norace", "-max-wall", "1ns", "-checkpoint", ck)
	if code != exitTruncated {
		t.Fatalf("truncated run exited %d, want %d\n%s", code, exitTruncated, out)
	}
	if !strings.Contains(out, "search truncated") || !strings.Contains(out, ck) {
		t.Fatalf("truncation notice missing:\n%s", out)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Resume finishes the search; everything after the resume banner must
	// match the uninterrupted run verbatim (bit-identical counts/witness).
	code, out, _ = runCLI(t, "-resume", ck, "-workers", "1")
	if code != exitBug {
		t.Fatalf("resumed run exited %d, want %d\n%s", code, exitBug, out)
	}
	_, tail, ok := strings.Cut(out, "\n")
	if !ok || !strings.HasPrefix(out, "resuming DFS CS.account_bad") {
		t.Fatalf("missing resume banner:\n%s", out)
	}
	if tail != baseOut {
		t.Fatalf("resumed output diverged:\n got:\n%s\nwant:\n%s", tail, baseOut)
	}

	// A checkpoint for one benchmark refuses to resume as another.
	if code, _, _ := runCLI(t, "-resume", ck, "-bench", "CS.queue_bad"); code != exitError {
		t.Fatalf("mismatched -bench on resume exited %d, want %d", code, exitError)
	}
}

// TestWorkerPanicWarning: a contained exploration-worker panic must be
// surfaced on stderr — the counts are lower bounds, and a user reading
// only the summary line would otherwise mistake them for full coverage.
func TestWorkerPanicWarning(t *testing.T) {
	faultinject.Arm(faultinject.PoolUnitPanic, 1)
	t.Cleanup(faultinject.Reset)
	code, _, errOut := runCLI(t, "-bench", "CS.account_bad", "-technique", "dfs",
		"-limit", "200", "-workers", "2", "-norace")
	if code != exitBug && code != exitClean {
		t.Fatalf("panic-containing run exited %d, want %d or %d", code, exitBug, exitClean)
	}
	if !strings.Contains(errOut, "worker(s) panicked") ||
		!strings.Contains(errOut, "lower bounds") {
		t.Fatalf("missing worker-panic warning on stderr:\n%s", errOut)
	}
}

func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(p, []byte("{half a checkpoi"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "-resume", p)
	if code != exitError {
		t.Fatalf("corrupt checkpoint exited %d, want %d", code, exitError)
	}
	if !strings.Contains(errOut, "corrupt or truncated") {
		t.Fatalf("error does not say what is wrong: %s", errOut)
	}
}
