package explore

import (
	"testing"

	"sctbench/internal/corpus"
	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// lostUpdate is the canonical corpus-test bug: three unlocked
// read-modify-write threads and a final-sum assertion. Round-robin passes;
// a preemption between a load and its store loses an update. The schedule
// space is large enough that every technique needs well over ten
// executions cold, which is what the replay-first ratio tests lean on.
func lostUpdate() vthread.Program {
	return func(t0 *vthread.Thread) {
		v := t0.NewVar("v", 0)
		add := func(tw *vthread.Thread) {
			x := v.Load(tw)
			tw.Yield()
			v.Store(tw, x+1)
		}
		ts := []*vthread.Thread{t0.Spawn(add), t0.Spawn(add), t0.Spawn(add)}
		for _, c := range ts {
			t0.Join(c)
		}
		got := v.Load(t0)
		t0.Assert(got == 3, "lost update: v=%d", got)
	}
}

// corpusRunners names every corpus-aware search entry point.
var corpusRunners = []struct {
	name string
	run  func(Config) *Result
}{
	{"DFS", func(c Config) *Result { return Run(DFS, c) }},
	{"IPB", func(c Config) *Result { return Run(IPB, c) }},
	{"IDB", func(c Config) *Result { return Run(IDB, c) }},
	{"DPOR", func(c Config) *Result { return Run(DPOR, c) }},
	{"sleepset", RunSleepSetDFS},
}

func openCorpus(t *testing.T) *corpus.Store {
	t.Helper()
	s, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReplayFirstReproducesTenfoldCheaper pins the corpus's headline
// property for every technique: a second run against the corpus the first
// run populated reproduces the bug straight from the stored witness, with
// at least ten times fewer executions than the cold search spent.
func TestReplayFirstReproducesTenfoldCheaper(t *testing.T) {
	prog := lostUpdate()
	hash := vthread.ProgramHash(prog, 0)
	for _, tr := range corpusRunners {
		t.Run(tr.name, func(t *testing.T) {
			cold := tr.run(Config{Program: prog})
			if !cold.BugFound {
				t.Fatalf("cold %s missed the planted bug", tr.name)
			}
			if cold.Executions < 10 {
				t.Fatalf("cold %s spent only %d executions; the ratio test needs a harder program", tr.name, cold.Executions)
			}

			store := openCorpus(t)
			first := tr.run(Config{Program: prog, Corpus: store, ProgramHash: hash})
			if !first.BugFound || first.CorpusHit {
				t.Fatalf("first corpus run: BugFound=%v CorpusHit=%v, want found cold", first.BugFound, first.CorpusHit)
			}
			if first.CorpusError != "" {
				t.Fatalf("first corpus run: corpus error %q", first.CorpusError)
			}
			e, ok := store.Get(hash)
			if !ok || len(e.Witnesses) == 0 {
				t.Fatalf("first run did not store a witness: %+v", e)
			}

			second := tr.run(Config{Program: prog, Corpus: store, ProgramHash: hash})
			if !second.BugFound || !second.CorpusHit {
				t.Fatalf("second corpus run: BugFound=%v CorpusHit=%v, want a stored-witness hit", second.BugFound, second.CorpusHit)
			}
			if second.Failure == nil || second.Failure.Kind != cold.Failure.Kind {
				t.Fatalf("replayed failure %v, want kind %v", second.Failure, cold.Failure.Kind)
			}
			if second.Executions*10 > cold.Executions {
				t.Fatalf("replay-first spent %d executions vs %d cold — less than the pledged 10x", second.Executions, cold.Executions)
			}
		})
	}
}

// TestCorpusSeededVerdictIdentical pins the seeding equivalence: a
// corpus-seeded exploration that runs to completion reaches the same
// verdict as a cold one. Bug-free side: prefixes are planted so the probe
// phase actually runs, and the complete search must still agree with cold
// on every schedule count. Buggy side: the first corpus run (probes, then
// the unchanged cold search) must agree with the cold verdict.
func TestCorpusSeededVerdictIdentical(t *testing.T) {
	clean := yielders(3, 2)
	cleanHash := vthread.ProgramHash(clean, 0)
	buggy := lostUpdate()
	buggyHash := vthread.ProgramHash(buggy, 0)
	for _, tr := range corpusRunners {
		t.Run(tr.name, func(t *testing.T) {
			cold := tr.run(Config{Program: clean})
			if cold.BugFound || !cold.Complete {
				t.Fatalf("cold run on the bug-free program: BugFound=%v Complete=%v", cold.BugFound, cold.Complete)
			}
			store := openCorpus(t)
			if err := store.AddPrefixes(cleanHash, "clean", []sched.Schedule{{0, 1}, {0, 1, 2}, {0, 2, 2}}); err != nil {
				t.Fatal(err)
			}
			seeded := tr.run(Config{Program: clean, Corpus: store, ProgramHash: cleanHash})
			if seeded.CorpusProbes == 0 {
				t.Fatalf("planted prefixes were not probed")
			}
			if seeded.BugFound != cold.BugFound || seeded.Complete != cold.Complete {
				t.Fatalf("seeded verdict (BugFound=%v Complete=%v) != cold (BugFound=%v Complete=%v)",
					seeded.BugFound, seeded.Complete, cold.BugFound, cold.Complete)
			}
			if seeded.Schedules != cold.Schedules {
				t.Fatalf("seeded complete run counted %d schedules, cold %d", seeded.Schedules, cold.Schedules)
			}
			if seeded.Executions != cold.Executions+seeded.CorpusProbes {
				t.Fatalf("seeded executions %d != cold %d + probes %d",
					seeded.Executions, cold.Executions, seeded.CorpusProbes)
			}

			bcold := tr.run(Config{Program: buggy})
			bstore := openCorpus(t)
			bseeded := tr.run(Config{Program: buggy, Corpus: bstore, ProgramHash: buggyHash})
			if bseeded.BugFound != bcold.BugFound {
				t.Fatalf("seeded buggy verdict %v != cold %v", bseeded.BugFound, bcold.BugFound)
			}
			if bseeded.Failure.Kind != bcold.Failure.Kind {
				t.Fatalf("seeded failure kind %v != cold %v", bseeded.Failure.Kind, bcold.Failure.Kind)
			}
		})
	}
}

// TestReplayFirstDropsStaleWitness plants a witness that no longer
// reproduces (a pure round-robin schedule, which this program survives)
// and checks the run discards it, falls through to the cold search, and
// replaces it with a real one.
func TestReplayFirstDropsStaleWitness(t *testing.T) {
	prog := lostUpdate()
	hash := vthread.ProgramHash(prog, 0)
	store := openCorpus(t)
	stale := sched.Schedule{0, 0, 0, 0}
	if err := store.AddWitness(hash, "test", corpus.Witness{
		Schedule: stale, Kind: "assertion", Message: "from an older binary", Technique: "dfs",
	}); err != nil {
		t.Fatal(err)
	}

	res := Run(DFS, Config{Program: prog, Corpus: store, ProgramHash: hash})
	if res.CorpusHit {
		t.Fatalf("stale witness reported as a hit")
	}
	if res.CorpusReplays != 1 {
		t.Fatalf("CorpusReplays = %d, want 1", res.CorpusReplays)
	}
	if !res.BugFound {
		t.Fatalf("cold fallback missed the bug")
	}
	e, ok := store.Get(hash)
	if !ok {
		t.Fatalf("entry dropped entirely; want the fresh witness stored")
	}
	for _, w := range e.Witnesses {
		if w.Schedule.Equal(stale) {
			t.Fatalf("stale witness still stored: %+v", e.Witnesses)
		}
	}
	if len(e.Witnesses) == 0 {
		t.Fatalf("fresh witness not stored")
	}

	// And the fresh witness must now hit.
	again := Run(DFS, Config{Program: prog, Corpus: store, ProgramHash: hash})
	if !again.CorpusHit {
		t.Fatalf("fresh witness did not reproduce on replay")
	}
}

// TestTruncatedRunStoresFrontierPrefixes checks that a limit-truncated
// sequential search banks frontier prefixes for the next run to probe.
func TestTruncatedRunStoresFrontierPrefixes(t *testing.T) {
	prog := yielders(3, 3) // 1680 schedules, bug-free
	hash := vthread.ProgramHash(prog, 0)
	store := openCorpus(t)
	res := Run(DFS, Config{Program: prog, Limit: 50, Corpus: store, ProgramHash: hash})
	if !res.LimitHit || res.Complete {
		t.Fatalf("expected a truncated run, got LimitHit=%v Complete=%v", res.LimitHit, res.Complete)
	}
	e, ok := store.Get(hash)
	if !ok || len(e.Prefixes) == 0 {
		t.Fatalf("truncated run stored no frontier prefixes: %+v", e)
	}

	// The next run probes them.
	next := Run(DFS, Config{Program: prog, Limit: 50, Corpus: store, ProgramHash: hash})
	if next.CorpusProbes == 0 {
		t.Fatalf("stored prefixes were not probed")
	}
	if next.BugFound {
		t.Fatalf("spurious bug on the bug-free program: %v", next.Failure)
	}
}
