package pct

import (
	"testing"

	"sctbench/internal/vthread"
)

// depth2Bug is a bug of PCT depth 2: one ordering constraint beyond the
// initial priority order (the worker's store must land between the
// checker's two loads).
func depth2Bug() vthread.Runnable {
	return vthread.Program(func(t0 *vthread.Thread) {
		x := t0.NewVar("x", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			x.Store(tw, 1)
		})
		a := x.Load(t0)
		for i := 0; i < 6; i++ {
			t0.Yield()
		}
		b := x.Load(t0)
		t0.Assert(a == b, "torn observation: %d then %d", a, b)
		t0.Join(w)
	})
}

func TestPCTFindsDepth2Bug(t *testing.T) {
	res := Run(Config{Program: depth2Bug, Runs: 2000, Depth: 2, Seed: 1})
	if !res.BugFound {
		t.Fatal("PCT d=2 missed a depth-2 bug in 2000 runs")
	}
}

func TestPCTNoFalsePositives(t *testing.T) {
	clean := func() vthread.Runnable {
		return vthread.Program(func(t0 *vthread.Thread) {
			m := t0.NewMutex("m")
			v := t0.NewVar("v", 0)
			w := t0.Spawn(func(tw *vthread.Thread) {
				m.Lock(tw)
				v.Add(tw, 1)
				m.Unlock(tw)
			})
			m.Lock(t0)
			v.Add(t0, 1)
			m.Unlock(t0)
			t0.Join(w)
			t0.Assert(v.Load(t0) == 2, "v=%d", v.Load(t0))
		})
	}
	res := Run(Config{Program: clean, Runs: 500, Depth: 3, Seed: 2})
	if res.BugFound {
		t.Fatalf("false positive: %v", res.Failure)
	}
	if res.Runs != 500 {
		t.Fatalf("runs = %d, want 500", res.Runs)
	}
}

func TestPCTIsDeterministicPerSeed(t *testing.T) {
	a := Run(Config{Program: depth2Bug, Runs: 200, Depth: 2, Seed: 7})
	b := Run(Config{Program: depth2Bug, Runs: 200, Depth: 2, Seed: 7})
	if a.BugFound != b.BugFound || a.RunsToFirstBug != b.RunsToFirstBug || a.BuggyRuns != b.BuggyRuns {
		t.Fatalf("same seed, different campaign: %+v vs %+v", a, b)
	}
}

func TestPCTRunsHighestPriorityEnabled(t *testing.T) {
	// A single chooser must always pick an enabled thread (the World
	// enforces this with a panic; surviving many runs is the check) and
	// must not livelock on blocking programs.
	p := func() vthread.Runnable {
		return vthread.Program(func(t0 *vthread.Thread) {
			s := t0.NewSem("s", 0)
			w := t0.Spawn(func(tw *vthread.Thread) { s.V(tw) })
			s.P(t0)
			t0.Join(w)
		})
	}
	res := Run(Config{Program: p, Runs: 300, Depth: 3, Seed: 3})
	if res.BugFound {
		t.Fatalf("spurious failure: %v", res.Failure)
	}
}
