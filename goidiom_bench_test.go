// Benchmarks for the GoIdiom workload family: the DPOR/sleep-set reduction
// factors on select/WaitGroup/Once programs (whose schedule spaces carry a
// case-decision dimension the pthread-style suites lack) and the raw
// substrate throughput of a select-heavy program. `make bench-json`
// records them as BENCH_goidiom.json next to the substrate and explore
// numbers.
package sctbench

import (
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/vthread"
)

// goIdiomReductionPrograms: cancel/select_starve/wgdone complete under
// every technique within the limit, so the reduction factors are exact;
// pipeline's plain-DFS space exceeds two million schedules (its dfs rows
// are budget-truncated at the limit), which is itself the point — DPOR
// completes it in ~10k executions.
var goIdiomReductionPrograms = []string{
	"goidiom.cancel_bad",
	"goidiom.select_starve_bad",
	"goidiom.wgdone_bad",
	"goidiom.pipeline_bad",
}

// BenchmarkGoIdiom runs one complete exploration per iteration over the
// GoIdiom family and reports executions, counted schedules, executed
// steps and executions/sec per technique, exactly like
// BenchmarkExploreReduction does for the CS suite.
func BenchmarkGoIdiom(b *testing.B) {
	techniques := []struct {
		name string
		run  func(cfg explore.Config) *explore.Result
	}{
		{"dfs", func(cfg explore.Config) *explore.Result { return explore.RunDFS(cfg) }},
		{"sleepset", explore.RunSleepSetDFS},
		{"dpor", func(cfg explore.Config) *explore.Result { return explore.RunDPOR(cfg) }},
	}
	for _, name := range goIdiomReductionPrograms {
		bm := bench.ByName(name)
		if bm == nil {
			b.Fatalf("unknown benchmark %s", name)
		}
		for _, tech := range techniques {
			b.Run(name+"/"+tech.name, func(b *testing.B) {
				prog := bm.New()
				var execs, scheds, aborted int
				var steps int64
				bugFound := false
				for i := 0; i < b.N; i++ {
					r := tech.run(explore.Config{
						Program: prog, BoundsCheck: bm.BoundsCheck,
						MaxSteps: bm.MaxSteps, Limit: 20000,
					})
					execs += r.Executions
					scheds += r.Schedules
					aborted += r.AbortedExecutions
					steps += r.TotalSteps
					bugFound = r.BugFound
				}
				if !bugFound {
					b.Fatalf("%s/%s: bug not found", name, tech.name)
				}
				n := float64(b.N)
				b.ReportMetric(float64(execs)/n, "execs/explore")
				b.ReportMetric(float64(scheds)/n, "schedules/explore")
				b.ReportMetric(float64(steps)/n, "steps/explore")
				b.ReportMetric(float64(aborted)/n, "aborted/explore")
				reportExecRate(b, execs)
			})
		}
	}
}

// BenchmarkGoIdiomThroughput measures raw substrate throughput on a
// select-heavy program under the deterministic scheduler: what one
// execution of the new op surface costs, allocations included (the
// N-ary-footprint regression guard alongside BenchmarkExecutorThroughput).
func BenchmarkGoIdiomThroughput(b *testing.B) {
	prog := vthread.Program(func(t0 *vthread.Thread) {
		work := t0.NewChan("work", 2)
		done := t0.NewChan("done", 1)
		wg := t0.NewWaitGroup("wg")
		wg.Add(t0, 1)
		t0.Spawn(func(tw *vthread.Thread) {
			for {
				idx, _, _ := tw.Select([]vthread.SelectCase{
					vthread.RecvCase(work),
					vthread.RecvCase(done),
				}, false)
				if idx == 1 {
					wg.Done(tw)
					return
				}
			}
		})
		for i := 0; i < 4; i++ {
			work.Send(t0, i)
		}
		done.Close(t0)
		wg.Wait(t0)
	})
	b.ReportAllocs()
	ex := vthread.NewExecutor(vthread.Options{Chooser: vthread.RoundRobin()})
	defer ex.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := ex.Run(prog)
		if out.Failure != nil {
			b.Fatalf("unexpected failure: %v", out.Failure)
		}
	}
	reportExecRate(b, b.N)
}
