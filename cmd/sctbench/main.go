// Command sctbench runs the empirical study of Thomson et al. (PPoPP'14)
// over every registered benchmark — the 52 SCTBench rows plus the GoIdiom
// extension family (channels, multi-way select, WaitGroup, Once) the
// original study could not express: the race-detection phase followed by
// IPB, IDB, DFS, Rand and optionally MapleAlg, then renders Table 2,
// Table 3, the Figure 2 Venn diagrams and the Figure 3/4 scatter data.
//
// Usage:
//
//	sctbench [-limit 10000] [-seed 1] [-bench regex] [-maple] [-dpor]
//	         [-table1] [-fig3csv path] [-fig4csv path] [-par N] [-workers N]
//	         [-engine auto|ref] [-cpuprofile path] [-memprofile path] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/report"
	"sctbench/internal/study"
	"sctbench/internal/vthread"
)

func main() {
	limit := flag.Int("limit", explore.DefaultLimit, "terminal-schedule limit per technique")
	seed := flag.Uint64("seed", 1, "base random seed")
	benchRe := flag.String("bench", "", "regexp selecting benchmarks by name (default: all, goidiom and gotime families included)")
	withMaple := flag.Bool("maple", false, "also run the Maple-style idiom algorithm")
	withDPOR := flag.Bool("dpor", false,
		"also run DPOR (source-set dynamic partial-order reduction over unbounded DFS); "+
			"reduction factors land in the -table3csv output")
	table1 := flag.Bool("table1", false, "print Table 1 (suite overview) and exit")
	table3csv := flag.String("table3csv", "", "write the full Table 3 grid as CSV to this path")
	fig3csv := flag.String("fig3csv", "", "write Figure 3 scatter data CSV to this path")
	fig4csv := flag.String("fig4csv", "", "write Figure 4 scatter data CSV to this path")
	par := flag.Int("par", 0, "parallel benchmark evaluations (0 = GOMAXPROCS)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"schedule-exploration workers per technique run (1 = sequential)")
	engine := flag.String("engine", "auto",
		"execution engine: auto (compiled benchmarks on the flat single-goroutine "+
			"engine, closure benchmarks on the goroutine engine) or ref (force "+
			"everything onto the goroutine reference engine)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the study run to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this path")
	verbose := flag.Bool("v", false, "progress output per phase")
	flag.Parse()

	if msg := study.Sanity(); msg != "" {
		fmt.Fprintln(os.Stderr, "registry error:", msg)
		os.Exit(1)
	}

	var debug vthread.Debug
	switch *engine {
	case "auto":
	case "ref":
		debug.NoFlatEngine = true
	default:
		fmt.Fprintln(os.Stderr, "bad -engine (want auto or ref):", *engine)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	if *table1 {
		fmt.Printf("%-14s %-60s %5s %8s  %s\n", "Suite", "Benchmark types", "used", "skipped", "skip reason")
		for _, s := range bench.Table1() {
			fmt.Printf("%-14s %-60s %5d %8d  %s\n", s.Name, s.Kinds, s.Used, s.Skipped, s.SkipReason)
		}
		return
	}

	benches := bench.All()
	if *benchRe != "" {
		re, err := regexp.Compile(*benchRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad -bench regexp:", err)
			os.Exit(1)
		}
		var sel []*bench.Benchmark
		for _, b := range benches {
			if re.MatchString(b.Name) {
				sel = append(sel, b)
			}
		}
		benches = sel
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmarks selected")
		os.Exit(1)
	}

	cfg := study.Config{
		Limit:       *limit,
		Seed:        *seed,
		WithMaple:   *withMaple,
		Parallelism: *par,
		Workers:     *workers,
		Debug:       debug,
	}
	if *withDPOR {
		// The default technique set plus DPOR; POR stays out of the
		// bounded phases per the paper's methodology (§5), so it rides as
		// an additional unbounded-search column.
		cfg.Techniques = []explore.Technique{explore.IPB, explore.IDB,
			explore.DFS, explore.Rand, explore.DPOR}
	}
	if *verbose {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	rows := study.RunAll(benches, cfg)
	elapsed := time.Since(start)

	fmt.Println("=== Table 3: per-benchmark results ===")
	fmt.Print(report.Table3(rows, *limit))
	fmt.Println()
	fmt.Println("=== Table 2: trivial-benchmark properties ===")
	fmt.Print(report.Table2(rows, *limit))
	fmt.Println()
	fmt.Println("=== Figure 2a: bugs found (systematic techniques) ===")
	fmt.Print(report.VennSystematic(rows).Format())
	fmt.Println()
	fmt.Println("=== Figure 2b: IDB vs Rand vs MapleAlg ===")
	fmt.Print(report.VennVsNaive(rows).Format())

	fmt.Println()
	fmt.Println("=== Figure 3: schedules to first bug, IPB vs IDB (misses at the limit) ===")
	fmt.Print(report.Fig3Scatter(report.Fig3Series(rows, *limit), *limit))
	fmt.Println()
	fmt.Println("=== Figure 4: worst case (non-buggy schedules within the bound) ===")
	fmt.Print(report.Fig4Scatter(report.Fig4Series(rows, *limit), *limit))

	if *table3csv != "" {
		if err := os.WriteFile(*table3csv, []byte(report.Table3CSV(rows)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "table3:", err)
		}
	}
	if *fig3csv != "" {
		if err := os.WriteFile(*fig3csv, []byte(report.FigCSV(report.Fig3Series(rows, *limit))), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fig3:", err)
		}
	}
	if *fig4csv != "" {
		if err := os.WriteFile(*fig4csv, []byte(report.FigCSV(report.Fig4Series(rows, *limit))), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fig4:", err)
		}
	}
	fmt.Fprintf(os.Stderr, "\n%d benchmarks in %s\n", len(rows), elapsed.Round(time.Millisecond))
}
