package explore

import (
	"testing"

	"sctbench/internal/vthread"
)

// yielders builds a program with k independent threads each performing
// steps visible operations. The terminal-schedule count is the multinomial
// (k*steps)! / (steps!)^k, giving analytic ground truth for DFS.
func yielders(k, steps int) vthread.Program {
	return func(t0 *vthread.Thread) {
		bodies := make([]vthread.Program, k)
		for i := range bodies {
			bodies[i] = func(tw *vthread.Thread) {
				for s := 0; s < steps; s++ {
					tw.Yield()
				}
			}
		}
		t0.SpawnAll(bodies...)
	}
}

func multinomial(k, steps int) int {
	// (k*steps)! / (steps!)^k computed incrementally via binomials.
	binom := func(n, r int) int {
		out := 1
		for i := 1; i <= r; i++ {
			out = out * (n - r + i) / i
		}
		return out
	}
	total := 0
	out := 1
	for i := 0; i < k; i++ {
		total += steps
		out *= binom(total, steps)
	}
	return out
}

func TestDFSCountsMatchMultinomial(t *testing.T) {
	cases := []struct{ k, steps int }{
		{1, 3}, {2, 1}, {2, 2}, {2, 3}, {3, 1}, {3, 2},
	}
	for _, c := range cases {
		r := RunDFS(Config{Program: yielders(c.k, c.steps)})
		want := multinomial(c.k, c.steps)
		if !r.Complete {
			t.Fatalf("k=%d steps=%d: DFS incomplete", c.k, c.steps)
		}
		if r.Schedules != want {
			t.Errorf("k=%d steps=%d: schedules = %d, want %d", c.k, c.steps, r.Schedules, want)
		}
		if r.BugFound {
			t.Errorf("k=%d steps=%d: spurious bug %v", c.k, c.steps, r.Failure)
		}
	}
}

func TestIterativeBoundingExhaustsSameSpaceAsDFS(t *testing.T) {
	// On a bug-free program, iterative bounding run to completion must
	// count exactly the schedules DFS counts — every schedule is counted at
	// the bound equal to its cost, and each exactly once.
	p := func() vthread.Program { return yielders(3, 2) }
	dfs := RunDFS(Config{Program: p()})
	ipb := RunIterative(Config{Program: p()}, CostPreemptions)
	idb := RunIterative(Config{Program: p()}, CostDelays)
	if !dfs.Complete || !ipb.Complete || !idb.Complete {
		t.Fatalf("incomplete searches: dfs=%v ipb=%v idb=%v", dfs.Complete, ipb.Complete, idb.Complete)
	}
	if ipb.Schedules != dfs.Schedules {
		t.Errorf("IPB total %d != DFS total %d", ipb.Schedules, dfs.Schedules)
	}
	if idb.Schedules != dfs.Schedules {
		t.Errorf("IDB total %d != DFS total %d", idb.Schedules, dfs.Schedules)
	}
}

func TestScheduleLimitRespected(t *testing.T) {
	p := yielders(3, 3) // 1680 schedules, far above the limit below
	r := RunDFS(Config{Program: p, Limit: 100})
	if !r.LimitHit {
		t.Fatal("limit not reported")
	}
	if r.Schedules != 100 {
		t.Fatalf("schedules = %d, want exactly 100", r.Schedules)
	}
	if r.Complete {
		t.Fatal("limited search must not report completion")
	}
}

func TestIterativeLimitAcrossBounds(t *testing.T) {
	r := RunIterative(Config{Program: yielders(3, 3), Limit: 50}, CostDelays)
	if !r.LimitHit {
		t.Fatal("limit not reported")
	}
	if r.Schedules != 50 {
		t.Fatalf("schedules = %d, want exactly 50", r.Schedules)
	}
}

// raceAfterJoinPoint is a minimal ordering bug: the checker thread asserts
// a flag that the worker sets at its very end, with no synchronisation. The
// round-robin schedule happens to pass; one preemption/delay exposes it.
func raceAfterJoinPoint() vthread.Program {
	return func(t0 *vthread.Thread) {
		done := 0
		w := t0.Spawn(func(tw *vthread.Thread) {
			tw.Yield()
			tw.Yield()
			done = 1
		})
		t0.Yield()
		t0.Assert(done == 1 || done == 0, "unreachable")
		_ = w
	}
}

func TestFirstScheduleIsSameAcrossSystematicTechniques(t *testing.T) {
	// §3: "the initial terminal schedule explored by iterative preemption
	// bounding, iterative delay bounding and unbounded depth-first search
	// is the same for all techniques (a non-preemptive round-robin
	// schedule)."
	p := func() vthread.Program { return yielders(3, 2) }
	var first []string
	for _, run := range []func() *Result{
		func() *Result { return RunDFS(Config{Program: p(), Limit: 1}) },
		func() *Result { return RunIterative(Config{Program: p(), Limit: 1}, CostPreemptions) },
		func() *Result { return RunIterative(Config{Program: p(), Limit: 1}, CostDelays) },
	} {
		r := run()
		if r.Schedules < 1 {
			t.Fatal("no schedule explored")
		}
		_ = r
	}
	// Compare the actual first traces by capturing them via Limit=1 +
	// replaying round-robin.
	rr := vthread.NewWorld(vthread.Options{Chooser: vthread.RoundRobin()})
	out := rr.Run(p())
	first = append(first, out.Trace.String())
	for _, model := range []CostModel{CostPreemptions, CostDelays, CostNone} {
		cfg := Config{Program: p()}.withDefaults()
		eng := newEngine(cfg, model, 0)
		eng.exec = newExecutor(cfg)
		o := eng.runOnce()
		first = append(first, o.Trace.String())
		eng.exec.Close()
	}
	for i := 1; i < len(first); i++ {
		if first[i] != first[0] {
			t.Fatalf("first schedule %d differs: %s vs %s", i, first[i], first[0])
		}
	}
}

func TestRandFindsEasyBugAndReportsCounts(t *testing.T) {
	r := RunRand(Config{Program: raceAfterJoinPoint(), Limit: 200, Seed: 1})
	if r.Schedules != 200 {
		t.Fatalf("Rand schedules = %d, want 200 (always runs to the limit)", r.Schedules)
	}
	if !r.LimitHit {
		t.Fatal("Rand must report the limit")
	}
}

func TestWitnessReplays(t *testing.T) {
	r := RunIterative(Config{Program: figure1()}, CostDelays)
	if !r.BugFound {
		t.Fatal("bug not found")
	}
	rep := vthread.NewReplay(r.Witness)
	out := vthread.NewWorld(vthread.Options{Chooser: rep}).Run(figure1())
	if rep.Failed() {
		t.Fatalf("witness replay diverged at step %d", rep.FailStep())
	}
	if !out.Buggy() {
		t.Fatal("witness schedule did not reproduce the bug")
	}
	if out.Failure.Kind != r.Failure.Kind || out.Failure.Message != r.Failure.Message {
		t.Fatalf("replayed failure %v != recorded %v", out.Failure, r.Failure)
	}
}

func TestIDBFindsEverythingIPBFinds(t *testing.T) {
	// Inclusion on a mixed bag of small programs: if IPB finds the bug
	// within the limit, IDB must too (it subsumes; §1.1 of the paper). The
	// converse does not hold.
	programs := []func() vthread.Program{
		figure1,
		func() vthread.Program { return reorder(1) },
		raceAfterJoinPoint,
	}
	for i, p := range programs {
		ipb := RunIterative(Config{Program: p()}, CostPreemptions)
		idb := RunIterative(Config{Program: p()}, CostDelays)
		if ipb.BugFound && !idb.BugFound {
			t.Errorf("program %d: IPB found the bug but IDB missed it", i)
		}
	}
}

func TestResultStatsPopulated(t *testing.T) {
	r := RunDFS(Config{Program: figure1()})
	if r.MaxEnabled < 3 {
		t.Errorf("MaxEnabled = %d, want >= 3", r.MaxEnabled)
	}
	if r.MaxSchedPoints == 0 {
		t.Error("MaxSchedPoints = 0")
	}
	if r.Threads != 4 {
		t.Errorf("Threads = %d, want 4", r.Threads)
	}
	if r.Executions < r.Schedules {
		t.Errorf("Executions %d < Schedules %d", r.Executions, r.Schedules)
	}
}

func TestBuggyScheduleFractionDFS(t *testing.T) {
	// Figure 1 under DFS: of the 11 terminal schedules, exactly 3 are buggy
	// (⟨b,d,e⟩, ⟨b,e⟩, ⟨d,b,e⟩ in the labelling of §2).
	r := RunDFS(Config{Program: figure1()})
	if r.BuggySchedules != 3 {
		t.Fatalf("buggy schedules = %d, want 3", r.BuggySchedules)
	}
}

func TestMaxExecutionsGuard(t *testing.T) {
	// A tiny execution cap must stop an iterative search and report a
	// limit, not loop forever re-executing cheap schedules at high bounds.
	r := RunIterative(Config{
		Program: yielders(3, 3), Limit: 10000, MaxExecutions: 50,
	}, CostDelays)
	if !r.LimitHit {
		t.Fatal("execution cap not reported as a limit")
	}
	if r.Executions > 60 {
		t.Fatalf("executions = %d, want <= cap (plus one pass)", r.Executions)
	}
}

func TestTechniqueStrings(t *testing.T) {
	for tech, want := range map[Technique]string{
		DFS: "DFS", IPB: "IPB", IDB: "IDB", Rand: "Rand", Technique(9): "unknown",
	} {
		if tech.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(tech), tech.String(), want)
		}
	}
	for m, want := range map[CostModel]string{
		CostNone: "none", CostPreemptions: "preemptions", CostDelays: "delays", CostModel(9): "unknown",
	} {
		if m.String() != want {
			t.Errorf("cost model String() = %q, want %q", m.String(), want)
		}
	}
}
