package mapleidiom

import (
	"testing"

	"sctbench/internal/vthread"
)

// publishConsume is the idiom shape MapleAlg exists for: the reader's
// check naturally precedes the writer's publication; flipping that
// dependency exposes the bug.
func publishConsume(readerNoise, writerNoise int) func() vthread.Runnable {
	return func() vthread.Runnable {
		return vthread.Program(func(t0 *vthread.Thread) {
			published := t0.NewVar("published", 0)
			noise := t0.NewVar("noise", 0)
			w := t0.Spawn(func(tw *vthread.Thread) {
				for i := 0; i < writerNoise; i++ {
					noise.Add(tw, 1)
				}
				published.Store(tw, 1)
			})
			if published.Load(t0) == 1 {
				t0.Fail("consumed draft state")
			}
			for i := 0; i < readerNoise; i++ {
				noise.Add(t0, 1)
			}
			t0.Join(w)
		})
	}
}

func TestActivePhaseForcesFlippedIdiom(t *testing.T) {
	// Deep writer noise: randomised profiling essentially never sees the
	// flipped order, so the bug can only come from the active phase.
	res := Run(Config{Program: publishConsume(10, 60), Seed: 5})
	if !res.BugFound {
		t.Fatalf("active phase did not force the publish-before-consume flip (%d candidates)", res.Candidates)
	}
	if res.SchedulesToFirstBug <= 3 {
		t.Fatalf("bug at schedule %d: found during profiling, not by the active phase", res.SchedulesToFirstBug)
	}
}

func TestProfilingFindsRoundRobinBugImmediately(t *testing.T) {
	p := func() vthread.Runnable {
		return vthread.Program(func(t0 *vthread.Thread) {
			t0.Yield()
			t0.Fail("buggy on every schedule")
		})
	}
	res := Run(Config{Program: p, Seed: 1})
	if !res.BugFound || res.SchedulesToFirstBug != 1 {
		t.Fatalf("round-robin bug not found on schedule 1: %+v", res)
	}
	if res.Schedules != 1 {
		t.Fatalf("MapleAlg kept running after a failing run: %d schedules", res.Schedules)
	}
}

func TestNoBugNoFalsePositive(t *testing.T) {
	p := func() vthread.Runnable {
		return vthread.Program(func(t0 *vthread.Thread) {
			v := t0.NewVar("v", 0)
			m := t0.NewMutex("m")
			w := t0.Spawn(func(tw *vthread.Thread) {
				m.Lock(tw)
				v.Add(tw, 1)
				m.Unlock(tw)
			})
			m.Lock(t0)
			v.Add(t0, 1)
			m.Unlock(t0)
			t0.Join(w)
		})
	}
	res := Run(Config{Program: p, Seed: 2})
	if res.BugFound {
		t.Fatalf("false positive: %v", res.Failure)
	}
	if res.Schedules == 0 {
		t.Fatal("no executions performed")
	}
}

func TestCandidatesAreFlipsOnly(t *testing.T) {
	// A single writer with a reader ordered by a semaphore: all same-order
	// dependencies, and the flip is infeasible — the run must terminate
	// without a bug after trying the candidates.
	p := func() vthread.Runnable {
		return vthread.Program(func(t0 *vthread.Thread) {
			v := t0.NewVar("v", 0)
			s := t0.NewSem("s", 0)
			w := t0.Spawn(func(tw *vthread.Thread) {
				v.Store(tw, 1)
				s.V(tw)
			})
			s.P(t0)
			_ = v.Load(t0)
			t0.Join(w)
		})
	}
	res := Run(Config{Program: p, Seed: 3})
	if res.BugFound {
		t.Fatalf("false positive: %v", res.Failure)
	}
	// The write→read order was observed; the flip (read before write) is a
	// candidate but the semaphore makes it infeasible — the active run
	// must still terminate.
	if res.Schedules < 3 {
		t.Fatalf("profiling incomplete: %d schedules", res.Schedules)
	}
}

// blockingPublish makes the writer block halfway (a semaphore posted by a
// later-created helper), so after one hold-back the round-robin default
// wanders back to the reader: forcing the flip needs at least two steering
// actions.
func blockingPublish() vthread.Runnable {
	return vthread.Program(func(t0 *vthread.Thread) {
		published := t0.NewVar("published", 0)
		noise := t0.NewVar("noise", 0)
		s := t0.NewSem("s", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			for i := 0; i < 5; i++ {
				noise.Add(tw, 1)
			}
			s.P(tw) // blocks until the helper posts
			for i := 0; i < 5; i++ {
				noise.Add(tw, 1)
			}
			published.Store(tw, 1)
		})
		helper := t0.Spawn(func(tw *vthread.Thread) { s.V(tw) })
		if published.Load(t0) == 1 {
			t0.Fail("consumed draft state")
		}
		t0.Join(w)
		t0.Join(helper)
	})
}

func TestGiveUpBoundsInterference(t *testing.T) {
	// With a single steering action the writer's block hands control back
	// to the reader before the publication; with a real budget the reader
	// is held again and the flip completes.
	starved := Run(Config{Program: blockingPublish, Seed: 5, GiveUp: 1})
	if starved.BugFound {
		t.Fatal("GiveUp=1 should not reach the flip across the writer's block")
	}
	full := Run(Config{Program: blockingPublish, Seed: 5})
	if !full.BugFound {
		t.Fatal("default budget should force the flip across the writer's block")
	}
}

func TestProfilerRecordsInterThreadDependencies(t *testing.T) {
	p := newProfiler()
	p.Access(0, "var/x", true)  // T0 writes x
	p.Access(1, "var/x", false) // T1 reads x: idiom (w→r)
	p.Access(1, "var/x", true)  // T1 writes x: idiom (r→w) same thread? no: last reader is T1 itself
	p.Access(0, "var/x", false) // T0 reads x: idiom (w→r) from T1's write
	if !p.seen[idiom{"var/x", true, false}] {
		t.Error("write→read dependency not recorded")
	}
	if p.seen[idiom{"var/x", false, false}] {
		t.Error("read→read recorded as an idiom")
	}
}
