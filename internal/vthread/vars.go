package vthread

// This file implements shared state. Two regimes exist, matching the
// paper's data-race handling (§5, "Data Race Detection Phase"):
//
//   - IntVar/Array/Ref accesses are visible operations only when the
//     variable has been *promoted* (Options.Visible returns true for its
//     key). The study promotes exactly the variables the dynamic race
//     detector flagged, so SCT explores the sequentially consistent
//     outcomes of racy accesses without paying scheduling points for
//     well-synchronised data.
//   - Atomic accesses are always visible: atomics are synchronisation.
//
// All accesses, visible or not, are reported to the EventSink so the race
// detector sees the full access stream during the detection phase.

// IntVar is a shared integer variable. It is the workhorse of the benchmark
// suite: flags, counters, indices.
type IntVar struct {
	key     string
	val     int
	visible bool
}

// NewVar creates a shared integer with the given unique name and initial
// value.
func (t *Thread) NewVar(name string, init int) *IntVar {
	key := "var/" + name
	return &IntVar{key: key, val: init, visible: t.w.isVisibleVar(key)}
}

// Load reads the variable. A scheduling point when the variable is promoted.
func (v *IntVar) Load(t *Thread) int {
	if v.visible {
		t.visible(pendingOp{kind: opAccess, key: v.key})
	}
	return v.loadCommit(t)
}

func (v *IntVar) loadCommit(t *Thread) int {
	t.sinkAccess(v.key, false)
	return v.val
}

// Store writes the variable. A scheduling point when the variable is
// promoted.
func (v *IntVar) Store(t *Thread, x int) {
	if v.visible {
		t.visible(pendingOp{kind: opAccess, key: v.key, write: true})
	}
	v.storeCommit(t, x)
}

func (v *IntVar) storeCommit(t *Thread, x int) {
	t.sinkAccess(v.key, true)
	v.val = x
}

// Add performs the non-atomic read-modify-write v += delta as TWO separate
// accesses (a load then a store), each its own scheduling point when
// promoted — this is precisely the lost-update shape of many SCTBench bugs.
// It returns the stored value.
func (v *IntVar) Add(t *Thread, delta int) int {
	x := v.Load(t)
	x += delta
	v.Store(t, x)
	return x
}

// Key returns the promotion key of the variable ("var/<name>").
func (v *IntVar) Key() string { return v.key }

// Atomic is a shared integer with atomic (indivisible, always-visible)
// operations, modelling C++11 SC atomics. Each operation is a single
// scheduling point and a synchronisation (acquire+release) edge.
type Atomic struct {
	key string
	val int
}

// NewAtomic creates an atomic integer with the given unique name.
func (t *Thread) NewAtomic(name string, init int) *Atomic {
	return &Atomic{key: "atomic/" + name, val: init}
}

func (a *Atomic) sync(t *Thread) {
	t.visible(pendingOp{kind: opAtomic, key: a.key})
	a.syncCommit(t)
}

func (a *Atomic) syncCommit(t *Thread) {
	// An SC atomic op is both an acquire and a release on the object.
	t.sinkAcquire(a.key)
	t.sinkRelease(a.key)
}

// Load atomically reads the value.
func (a *Atomic) Load(t *Thread) int {
	a.sync(t)
	return a.val
}

// Store atomically writes the value.
func (a *Atomic) Store(t *Thread, x int) {
	a.sync(t)
	a.val = x
}

// Add atomically adds delta and returns the new value.
func (a *Atomic) Add(t *Thread, delta int) int {
	a.sync(t)
	a.val += delta
	return a.val
}

// CAS atomically compares-and-swaps, returning whether the swap happened.
func (a *Atomic) CAS(t *Thread, old, new int) bool {
	a.sync(t)
	if a.val != old {
		return false
	}
	a.val = new
	return true
}

// Swap atomically exchanges the value, returning the previous one.
func (a *Atomic) Swap(t *Thread, x int) int {
	a.sync(t)
	prev := a.val
	a.val = x
	return prev
}

// Array is a shared fixed-size integer array with a modelled out-of-bounds
// detector (§4.2). When World Options.BoundsCheck is on, an out-of-range
// access crashes the execution; when off, out-of-range stores are silently
// dropped and loads return zero, modelling corruption that "does not always
// cause a crash" and is therefore missed without extra checking.
type Array struct {
	key     string
	vals    []int
	visible bool
}

// NewArray creates a shared array of n zeroed elements with the given
// unique name. Promotion is per-array.
func (t *Thread) NewArray(name string, n int) *Array {
	key := "array/" + name
	return &Array{key: key, vals: make([]int, n), visible: t.w.isVisibleVar(key)}
}

// Len returns the array length (invisible).
func (a *Array) Len() int { return len(a.vals) }

// Get reads element i.
func (a *Array) Get(t *Thread, i int) int {
	if a.visible {
		t.visible(pendingOp{kind: opAccess, key: a.key})
	}
	return a.getCommit(t, i)
}

func (a *Array) getCommit(t *Thread, i int) int {
	t.sinkAccess(a.key, false)
	if i < 0 || i >= len(a.vals) {
		if t.w.opts.BoundsCheck {
			t.crash("out-of-bounds read %s[%d] (len %d)", a.key, i, len(a.vals))
		}
		return 0
	}
	return a.vals[i]
}

// Set writes element i.
func (a *Array) Set(t *Thread, i, x int) {
	if a.visible {
		t.visible(pendingOp{kind: opAccess, key: a.key, write: true})
	}
	a.setCommit(t, i, x)
}

func (a *Array) setCommit(t *Thread, i, x int) {
	t.sinkAccess(a.key, true)
	if i < 0 || i >= len(a.vals) {
		if t.w.opts.BoundsCheck {
			t.crash("out-of-bounds write %s[%d]=%d (len %d)", a.key, i, x, len(a.vals))
		}
		return
	}
	a.vals[i] = x
}

// Ref is a shared variable of arbitrary type (queues, slices, struct
// snapshots). Promotion and visibility work as for IntVar.
type Ref[T any] struct {
	key     string
	val     T
	visible bool
}

// NewRef creates a shared variable of type T with the given unique name.
// It is a free function because Go methods cannot introduce type
// parameters.
func NewRef[T any](t *Thread, name string, init T) *Ref[T] {
	key := "ref/" + name
	return &Ref[T]{key: key, val: init, visible: t.w.isVisibleVar(key)}
}

// Load reads the value.
func (r *Ref[T]) Load(t *Thread) T {
	if r.visible {
		t.visible(pendingOp{kind: opAccess, key: r.key})
	}
	t.sinkAccess(r.key, false)
	return r.val
}

// Store writes the value.
func (r *Ref[T]) Store(t *Thread, x T) {
	if r.visible {
		t.visible(pendingOp{kind: opAccess, key: r.key, write: true})
	}
	t.sinkAccess(r.key, true)
	r.val = x
}

// Update applies f to the current value and stores the result, as a load
// followed by a store (two scheduling points when promoted). The
// intermediate computation is invisible, matching a real unsynchronised
// read-modify-write.
func (r *Ref[T]) Update(t *Thread, f func(T) T) {
	x := r.Load(t)
	r.Store(t, f(x))
}
