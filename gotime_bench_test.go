// Benchmarks for the GoTime workload family: the DPOR/sleep-set reduction
// factors on timer/ticker/context programs (whose schedule spaces carry
// the clock pseudo-thread as an extra interleaving dimension) and the raw
// substrate throughput of a timer-heavy program. `make bench-json`
// records them as BENCH_gotime.json next to the goidiom and explore
// numbers.
package sctbench

import (
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/vthread"
)

// goTimeReductionPrograms: the whole family completes under every
// technique within the limit, so the reduction factors are exact.
var goTimeReductionPrograms = []string{
	"gotime.timeout_vs_result_bad",
	"gotime.ticker_leak_bad",
	"gotime.deadline_inherits_bad",
	"gotime.cancel_after_close_bad",
	"gotime.timer_stop_race_bad",
	"gotime.ctx_cancel_race_bad",
}

// BenchmarkGoTime runs one complete exploration per iteration over the
// GoTime family and reports executions, counted schedules, executed steps
// and executions/sec per technique, exactly like BenchmarkGoIdiom does
// for the select/WaitGroup/Once family.
func BenchmarkGoTime(b *testing.B) {
	techniques := []struct {
		name string
		run  func(cfg explore.Config) *explore.Result
	}{
		{"dfs", func(cfg explore.Config) *explore.Result { return explore.RunDFS(cfg) }},
		{"sleepset", explore.RunSleepSetDFS},
		{"dpor", func(cfg explore.Config) *explore.Result { return explore.RunDPOR(cfg) }},
	}
	for _, name := range goTimeReductionPrograms {
		bm := bench.ByName(name)
		if bm == nil {
			b.Fatalf("unknown benchmark %s", name)
		}
		for _, tech := range techniques {
			b.Run(name+"/"+tech.name, func(b *testing.B) {
				prog := bm.New()
				var execs, scheds, aborted int
				var steps int64
				bugFound := false
				for i := 0; i < b.N; i++ {
					r := tech.run(explore.Config{
						Program: prog, BoundsCheck: bm.BoundsCheck,
						MaxSteps: bm.MaxSteps, Limit: 20000,
					})
					execs += r.Executions
					scheds += r.Schedules
					aborted += r.AbortedExecutions
					steps += r.TotalSteps
					bugFound = r.BugFound
				}
				if !bugFound {
					b.Fatalf("%s/%s: bug not found", name, tech.name)
				}
				n := float64(b.N)
				b.ReportMetric(float64(execs)/n, "execs/explore")
				b.ReportMetric(float64(scheds)/n, "schedules/explore")
				b.ReportMetric(float64(steps)/n, "steps/explore")
				b.ReportMetric(float64(aborted)/n, "aborted/explore")
				reportExecRate(b, execs)
			})
		}
	}
}

// BenchmarkGoTimeThroughput measures raw substrate throughput on a
// timer-and-context-heavy program under the deterministic scheduler: what
// one execution of the virtual-time surface costs, allocations included
// (the clock-recycling regression guard alongside
// BenchmarkExecutorThroughput).
func BenchmarkGoTimeThroughput(b *testing.B) {
	prog := vthread.Program(func(t0 *vthread.Thread) {
		ctx := t0.WithTimeout("req", nil, 100)
		res := t0.NewChan("res", 1)
		wg := t0.NewWaitGroup("wg")
		wg.Add(t0, 1)
		t0.Spawn(func(tw *vthread.Thread) {
			tw.Sleep("work", 2)
			res.TrySend(tw, 1)
			wg.Done(tw)
		})
		tm := t0.NewTimer("deadline", 5)
		t0.Select([]vthread.SelectCase{
			vthread.RecvCase(res),
			vthread.RecvCase(tm.C()),
			vthread.RecvCase(ctx.Done()),
		}, false)
		tm.Stop(t0)
		wg.Wait(t0)
		ctx.Cancel(t0)
	})
	b.ReportAllocs()
	ex := vthread.NewExecutor(vthread.Options{Chooser: vthread.RoundRobin()})
	defer ex.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := ex.Run(prog)
		if out.Failure != nil {
			b.Fatalf("unexpected failure: %v", out.Failure)
		}
	}
	reportExecRate(b, b.N)
}
