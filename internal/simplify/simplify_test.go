package simplify

import (
	"testing"

	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// racyFlag: the bug needs exactly two preemptions (switch to the writer
// while the spawner is still enabled, then back between the writer's two
// stores), so any witness should minimise to PC = 2.
func racyFlag() vthread.Runnable {
	return vthread.Program(func(t0 *vthread.Thread) {
		x := t0.NewVar("x", 0)
		y := t0.NewVar("y", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			x.Store(tw, 1)
			y.Store(tw, 1)
		})
		xv := x.Load(t0)
		yv := y.Load(t0)
		t0.Assert(xv == yv, "x=%d y=%d", xv, yv)
		t0.Join(w)
	})
}

func TestMinimizeReducesRandomWitness(t *testing.T) {
	// Find the bug with the random scheduler: its witnesses tend to carry
	// incidental preemptions.
	var witness sched.Schedule
	origPC := -1
	for seed := uint64(0); seed < 400; seed++ {
		w := vthread.NewWorld(vthread.Options{Chooser: vthread.NewRandom(seed)})
		out := w.Run(racyFlag())
		if out.Buggy() && out.PC >= 3 {
			witness = out.Trace.Clone()
			origPC = out.PC
			break
		}
	}
	if witness == nil {
		t.Skip("no preemption-heavy random witness found; nothing to minimise")
	}
	res := Minimize(racyFlag, witness, Options{})
	if res.Failure == nil {
		t.Fatal("minimised witness lost the bug")
	}
	if res.PC >= origPC {
		t.Fatalf("PC not reduced: %d -> %d", origPC, res.PC)
	}
	if res.PC != 2 {
		t.Errorf("minimal witness has PC=%d, want 2 for this bug (spawn makes the\n\t\tfirst switch to the writer preemptive, and the writer is still enabled\n\t\tat the switch back)", res.PC)
	}
	// The minimised schedule must itself replay to the failure.
	ex := vthread.NewExecutor(vthread.Options{})
	defer ex.Close()
	out, ok := replayCosts(ex, racyFlag(), res.Schedule)
	if !ok || !out.Buggy() {
		t.Fatal("minimised schedule does not reproduce")
	}
}

func TestMinimizeRejectsNonWitness(t *testing.T) {
	clean := func() vthread.Runnable {
		return vthread.Program(func(t0 *vthread.Thread) {
			v := t0.NewVar("v", 0)
			w := t0.Spawn(func(tw *vthread.Thread) { v.Store(tw, 1) })
			t0.Join(w)
		})
	}
	// A feasible but non-buggy schedule: minimisation must report failure
	// to reproduce rather than inventing a bug.
	out := vthread.NewWorld(vthread.Options{Chooser: vthread.RoundRobin()}).Run(clean())
	res := Minimize(clean, out.Trace, Options{})
	if res.Failure != nil || res.PC != -1 {
		t.Fatalf("minimiser fabricated a result from a clean schedule: %+v", res)
	}
}

func TestBlocksRoundTrip(t *testing.T) {
	s := sched.Schedule{0, 0, 1, 1, 1, 0, 2}
	if got := fromBlocks(toBlocks(s)); !got.Equal(s) {
		t.Fatalf("round trip %v -> %v", s, got)
	}
	bs := toBlocks(s)
	if len(bs) != 4 {
		t.Fatalf("blocks = %v, want 4 blocks", bs)
	}
}
