package explore

// Fast-path equivalence suite: the substrate's handoff fast paths
// (same-thread continuation, forced-step fast-forward, direct baton
// handoff — vthread.Debug) must not change what any technique explores.
// These tests run every deterministic technique with all fast paths on
// versus all off and demand bit-identical results: schedule counts,
// executions, steps, verdicts and witness schedules, sequentially and on
// the worker pool.

import (
	"fmt"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/vthread"
)

// slowPath disables every scheduling fast path.
var slowPath = vthread.Debug{NoInlineStep: true, NoForcedStep: true, NoDirectHandoff: true}

// assertCountsEqual extends assertEquivalent with the work counters that
// are deterministic for sequential (and unstolen parallel) searches.
func assertCountsEqual(t *testing.T, name string, a, b *Result) {
	t.Helper()
	assertEquivalent(t, name, a, b)
	if a.Executions != b.Executions {
		t.Errorf("%s: Executions %d != %d", name, a.Executions, b.Executions)
	}
	if a.TotalSteps != b.TotalSteps {
		t.Errorf("%s: TotalSteps %d != %d", name, a.TotalSteps, b.TotalSteps)
	}
	if a.AbortedExecutions != b.AbortedExecutions {
		t.Errorf("%s: AbortedExecutions %d != %d", name, a.AbortedExecutions, b.AbortedExecutions)
	}
	if a.BranchesPruned != b.BranchesPruned {
		t.Errorf("%s: BranchesPruned %d != %d", name, a.BranchesPruned, b.BranchesPruned)
	}
}

// TestFastPathEquivalenceSequential: DFS, IPB, IDB, sleep-set DFS and
// DPOR explore bit-identical spaces with the fast paths on and off.
func TestFastPathEquivalenceSequential(t *testing.T) {
	runs := map[string]func(Config) *Result{
		"DFS":      RunDFS,
		"IPB":      func(c Config) *Result { return RunIterative(c, CostPreemptions) },
		"IDB":      func(c Config) *Result { return RunIterative(c, CostDelays) },
		"sleepset": RunSleepSetDFS,
		"DPOR":     RunDPOR,
	}
	for progName, newProg := range paperPrograms() {
		for tech, run := range runs {
			name := fmt.Sprintf("%s/%s", tech, progName)
			t.Run(name, func(t *testing.T) {
				fast := run(Config{Program: newProg()})
				slow := run(Config{Program: newProg(), Debug: slowPath})
				assertCountsEqual(t, name, slow, fast)
			})
		}
	}
}

// TestFastPathEquivalenceSCTBench repeats the check on a real CS-suite
// benchmark whose exploration exercises blocking, teardown kills and
// buggy witnesses, not just yield meshes.
func TestFastPathEquivalenceSCTBench(t *testing.T) {
	b := bench.ByName("CS.account_bad")
	cfg := Config{Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps, Limit: 20000}
	for tech, run := range map[string]func(Config) *Result{
		"DFS":      RunDFS,
		"IDB":      func(c Config) *Result { return RunIterative(c, CostDelays) },
		"sleepset": RunSleepSetDFS,
		"DPOR":     RunDPOR,
	} {
		fast := run(cfg)
		slowCfg := cfg
		slowCfg.Debug = slowPath
		slow := run(slowCfg)
		assertCountsEqual(t, tech, slow, fast)
		if !fast.BugFound {
			t.Errorf("%s: CS.account_bad bug not found", tech)
		}
	}
}

// TestFastPathEquivalenceParallel: at 8 workers the deterministic
// techniques must still produce bit-identical results with the fast paths
// on and off. DPOR is compared on verdict, completeness and witness
// validity only: under actual work-stealing its counts depend on worker
// timing within a single configuration, so count equality across
// configurations is not a defined contract (see parallel.go).
func TestFastPathEquivalenceParallel(t *testing.T) {
	const workers = 8
	for progName, newProg := range paperPrograms() {
		for tech, run := range map[string]func(Config) *Result{
			"DFS": RunDFS,
			"IPB": func(c Config) *Result { return RunIterative(c, CostPreemptions) },
			"IDB": func(c Config) *Result { return RunIterative(c, CostDelays) },
		} {
			name := fmt.Sprintf("%s/%s/workers=%d", tech, progName, workers)
			t.Run(name, func(t *testing.T) {
				fast := run(Config{Program: newProg(), Workers: workers})
				slow := run(Config{Program: newProg(), Workers: workers, Debug: slowPath})
				assertEquivalent(t, name, slow, fast)
			})
		}
	}

	b := bench.ByName("CS.account_bad")
	cfg := Config{Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps,
		Limit: 20000, Workers: workers}
	fast := RunDPOR(cfg)
	slowCfg := cfg
	slowCfg.Debug = slowPath
	slow := RunDPOR(slowCfg)
	if fast.BugFound != slow.BugFound || fast.Complete != slow.Complete {
		t.Errorf("parallel DPOR verdict differs: fast bug=%v complete=%v, slow bug=%v complete=%v",
			fast.BugFound, fast.Complete, slow.BugFound, slow.Complete)
	}
	for mode, r := range map[string]*Result{"fast": fast, "slow": slow} {
		if !r.BugFound {
			t.Errorf("parallel DPOR (%s) missed the CS.account_bad bug", mode)
			continue
		}
		if out := replayWitness(b.New(), r.Witness); out == nil || out.Failure == nil {
			t.Errorf("parallel DPOR (%s) witness does not replay to a failure", mode)
		}
	}
}
