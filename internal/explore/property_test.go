package explore

import (
	"testing"
	"testing/quick"

	"sctbench/internal/vthread"
)

// genProgram builds a small deterministic bug-free program from a shape
// seed (mirrors the vthread property generator, kept local to avoid an
// export just for tests).
func genProgram(shape uint32) vthread.Program {
	return func(t0 *vthread.Thread) {
		nWorkers := int(shape%3) + 1
		ops := int((shape/4)%2) + 1
		m := t0.NewMutex("m")
		v := t0.NewVar("v", 0)
		ts := make([]*vthread.Thread, 0, nWorkers)
		for i := 0; i < nWorkers; i++ {
			ts = append(ts, t0.Spawn(func(tw *vthread.Thread) {
				mix := shape
				for o := 0; o < ops; o++ {
					switch mix % 3 {
					case 0:
						m.Lock(tw)
						v.Add(tw, 1)
						m.Unlock(tw)
					case 1:
						v.Add(tw, 1)
					default:
						tw.Yield()
					}
					mix /= 3
				}
			}))
		}
		for _, c := range ts {
			t0.Join(c)
		}
	}
}

// Property (§2): for every bound c, the set of schedules with at most c
// delays is a subset of those with at most c preemptions — so the counted
// totals per cumulative bound must satisfy IDB ≤ IPB, and at exhaustion
// both equal the DFS total.
func TestPropertyDelayBoundSubsetOfPreemptionBound(t *testing.T) {
	f := func(shape uint32, boundRaw uint8) bool {
		bound := int(boundRaw%3) + 1
		dfs := RunDFS(Config{Program: genProgram(shape), Limit: 50000})
		if !dfs.Complete {
			return true // space too large for exhaustive comparison: skip
		}
		idb := RunIterative(Config{Program: genProgram(shape), Limit: 50000, MaxBound: bound}, CostDelays)
		ipb := RunIterative(Config{Program: genProgram(shape), Limit: 50000, MaxBound: bound}, CostPreemptions)
		if idb.Schedules > ipb.Schedules {
			t.Logf("shape %d bound %d: IDB counted %d > IPB %d", shape, bound, idb.Schedules, ipb.Schedules)
			return false
		}
		if idb.Complete && idb.Schedules != dfs.Schedules {
			t.Logf("shape %d: complete IDB %d != DFS %d", shape, idb.Schedules, dfs.Schedules)
			return false
		}
		if ipb.Complete && ipb.Schedules != dfs.Schedules {
			t.Logf("shape %d: complete IPB %d != DFS %d", shape, ipb.Schedules, dfs.Schedules)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: exploration never reports a bug on bug-free programs, and
// counted schedule totals are positive.
func TestPropertyNoFalsePositives(t *testing.T) {
	f := func(shape uint32) bool {
		for _, run := range []func() *Result{
			func() *Result { return RunDFS(Config{Program: genProgram(shape), Limit: 2000}) },
			func() *Result { return RunIterative(Config{Program: genProgram(shape), Limit: 2000}, CostDelays) },
			func() *Result { return RunRand(Config{Program: genProgram(shape), Limit: 100, Seed: uint64(shape)}) },
		} {
			r := run()
			if r.BugFound {
				t.Logf("shape %d: spurious %v", shape, r.Failure)
				return false
			}
			if r.Schedules <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: DFS enumerates distinct terminal schedules — re-running it
// yields the same count (exploration is deterministic).
func TestPropertyDFSDeterministic(t *testing.T) {
	f := func(shape uint32) bool {
		a := RunDFS(Config{Program: genProgram(shape), Limit: 5000})
		b := RunDFS(Config{Program: genProgram(shape), Limit: 5000})
		return a.Schedules == b.Schedules && a.Complete == b.Complete &&
			a.Executions == b.Executions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: NewSchedules of a completed iterative search counts exactly
// the schedules of the final bound — summing new counts over increasing
// MaxBound reproduces the totals.
func TestPropertyNewSchedulesPartition(t *testing.T) {
	f := func(shape uint32) bool {
		prevTotal := 0
		for bound := 0; bound <= 3; bound++ {
			r := RunIterative(Config{Program: genProgram(shape), Limit: 50000, MaxBound: bound}, CostDelays)
			if r.LimitHit {
				return true // not comparable
			}
			if r.Schedules != prevTotal+r.NewSchedules && r.Bound == bound {
				t.Logf("shape %d bound %d: total %d != prev %d + new %d",
					shape, bound, r.Schedules, prevTotal, r.NewSchedules)
				return false
			}
			prevTotal = r.Schedules
			if r.Complete {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
