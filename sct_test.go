package sctbench

import (
	"strings"
	"testing"
)

// lostUpdate is the quickstart program: a racy counter.
func lostUpdate() Runnable {
	return Program(func(t *Thread) {
		counter := t.NewVar("counter", 0)
		inc := func(w *Thread) { counter.Add(w, 1) }
		a := t.Spawn(inc)
		b := t.Spawn(inc)
		t.Join(a)
		t.Join(b)
		t.Assert(counter.Load(t) == 2, "lost update: %d", counter.Load(t))
	})
}

func TestExploreFindsLostUpdate(t *testing.T) {
	for _, tech := range []Technique{DFS, IPB, IDB, Rand} {
		res := Explore(tech, Config{Program: lostUpdate(), Seed: 3})
		if !res.BugFound {
			t.Errorf("%s missed the lost update", tech)
			continue
		}
		if res.Failure.Kind != FailAssert {
			t.Errorf("%s: failure kind %v, want assertion", tech, res.Failure.Kind)
		}
		if !strings.Contains(res.Failure.Message, "lost update") {
			t.Errorf("%s: message %q", tech, res.Failure.Message)
		}
	}
}

func TestReplayWitness(t *testing.T) {
	res := Explore(IDB, Config{Program: lostUpdate()})
	if !res.BugFound {
		t.Fatal("no bug")
	}
	out, ok := Replay(lostUpdate(), res.Witness)
	if !ok {
		t.Fatal("witness replay diverged")
	}
	if !out.Buggy() {
		t.Fatal("witness replay did not fail")
	}
}

func TestReplayInfeasibleSchedule(t *testing.T) {
	// A schedule naming a thread that can never be enabled at step 0 must
	// be reported as infeasible.
	_, ok := Replay(lostUpdate(), Schedule{5, 5, 5})
	if ok {
		t.Fatal("nonsense schedule replayed cleanly")
	}
}

func TestDetectRacesAndPromote(t *testing.T) {
	racy := DetectRaces(lostUpdate(), 10, 1)
	if len(racy) == 0 {
		t.Fatal("no races found in a racy program")
	}
	vis := Promote(racy)
	if !vis(racy[0]) {
		t.Fatal("promoted variable not visible")
	}
	if vis("var/never-mentioned") {
		t.Fatal("unknown variable visible")
	}
	// Exploration restricted to the promoted set still finds the bug.
	res := Explore(IDB, Config{Program: lostUpdate(), Visible: vis})
	if !res.BugFound {
		t.Fatal("bug lost under promoted visibility")
	}
}

func TestReplayVisible(t *testing.T) {
	racy := DetectRaces(lostUpdate(), 10, 1)
	vis := Promote(racy)
	res := Explore(IDB, Config{Program: lostUpdate(), Visible: vis})
	if !res.BugFound {
		t.Fatal("no bug")
	}
	out, ok := ReplayVisible(lostUpdate(), res.Witness, vis)
	if !ok || !out.Buggy() {
		t.Fatalf("visible-aware replay failed: ok=%v out=%v", ok, out.Failure)
	}
}

func TestRunOnceDefaultsToRoundRobin(t *testing.T) {
	out := RunOnce(lostUpdate(), WorldOptions{})
	if out.PC != 0 || out.DC != 0 {
		t.Fatalf("default chooser is not round-robin: PC=%d DC=%d", out.PC, out.DC)
	}
}

func TestChooserConstructors(t *testing.T) {
	if RoundRobin() == nil || RandomChooser(1) == nil {
		t.Fatal("nil chooser")
	}
	out := RunOnce(lostUpdate(), WorldOptions{Chooser: RandomChooser(9)})
	if out.Threads != 3 {
		t.Fatalf("Threads = %d, want 3", out.Threads)
	}
}

func TestRefSharedState(t *testing.T) {
	type pair struct{ a, b int }
	var p Program = func(t0 *Thread) {
		r := NewRef(t0, "pair", pair{1, 2})
		w := t0.Spawn(func(tw *Thread) {
			r.Update(tw, func(v pair) pair { return pair{v.a + 1, v.b + 1} })
		})
		t0.Join(w)
		got := r.Load(t0)
		t0.Assert(got == pair{2, 3}, "got %+v", got)
	}
	out := RunOnce(p, WorldOptions{})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

func TestExploreSleepSetPublic(t *testing.T) {
	res := ExploreSleepSet(Config{Program: lostUpdate()})
	if !res.BugFound {
		t.Fatal("sleep-set DFS missed the lost update")
	}
	dfs := Explore(DFS, Config{Program: lostUpdate()})
	if res.Schedules > dfs.Schedules {
		t.Errorf("sleep sets explored more than DFS: %d > %d", res.Schedules, dfs.Schedules)
	}
}

func TestMinimizePublic(t *testing.T) {
	res := Explore(Rand, Config{Program: lostUpdate(), Seed: 8, Limit: 500})
	if !res.BugFound {
		t.Fatal("Rand missed the lost update")
	}
	min := Minimize(lostUpdate, res.Witness, nil)
	if min.Failure == nil {
		t.Fatal("minimised witness lost the bug")
	}
	if min.PC > min.OriginalPC {
		t.Errorf("PC grew: %d -> %d", min.OriginalPC, min.PC)
	}
	out, ok := Replay(lostUpdate(), min.Schedule)
	if !ok || !out.Buggy() {
		t.Fatal("minimised witness does not replay")
	}
}
