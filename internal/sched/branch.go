package sched

// A branch key identifies a position in the canonical depth-first
// exploration order: element i is the index into the CanonicalOrder choice
// list taken at scheduling point i — whether that point is a thread choice
// or a select case-decision point (vthread.Context.SelectOf), whose ready
// case indices occupy one trace position and one key element exactly like
// a thread choice. Depth-first search with CanonicalOrder visits terminal
// schedules in exactly the lexicographic order of their branch keys
// (backtracking advances the deepest advanceable index and resets
// everything deeper to zero — lexicographic counting), so a prefix-pinned
// subtree is a contiguous lexicographic range and its start key totally
// orders it against any disjoint subtree.
//
// The parallel exploration driver (internal/explore) relies on this: it
// partitions the tree into prefix-pinned units in whatever order the
// work-stealing happens to produce, then merges per-unit results sorted by
// CompareBranchKeys to recover results identical to a sequential search.

// CompareBranchKeys orders two branch keys lexicographically, returning
// -1, 0 or +1. A key that is a strict prefix of another orders first: the
// shorter key's subtree starts at (and contains) the longer key's position.
func CompareBranchKeys(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
