package vthread

import "fmt"

// The flat engine: an entire multi-threaded execution stepped by ONE
// goroutine — the Run caller's. Where the reference engine parks each
// virtual thread's goroutine on a gate channel and transfers a baton
// per step (thread.go, world.go), the flat engine keeps every thread as an
// interp value and dispatches each granted step as a plain function call:
// a context switch is a switch statement, not a channel rendezvous.
//
// The scheduling brain is untouched: execFlat drives the very same
// World.nextStep loop — enabledness, forced-step fast-forward, the chooser,
// select case resolution, clock firing, accounting, abort and deadlock
// detection — so a flat run produces the bit-identical trace, Outcome,
// Failure and event stream as a reference run of the same program under the
// same Chooser. The fast-path Debug switches (NoInlineStep and friends)
// change goroutine routing the flat engine does not have; they are
// trivially no-ops here, exactly as documented ("transfer route only,
// never which thread runs").
//
// Threads register operations by having interp.advance fill req, published
// as Thread.pending; a grant is a flatStep call, which performs the pending
// op's effect (interp.perform, through the same commit helpers) and then
// advances to the next registration. Thread bodies therefore never block —
// which is why only CompiledPrograms run here, and why Thread.visible
// panics on a flat thread: a closure operation inside an operand callback
// has no goroutine to park (see the misuse guard in thread.go).

// execFlat is exec for compiled programs: same seeding, same decision loop,
// no goroutines, no baton. A chooser panic propagates directly to the Run
// caller (the decision runs on its goroutine), matching the reference
// engine's rethrow contract.
func (w *World) execFlat(cp *CompiledProgram) {
	w.forcedObs, _ = w.opts.Chooser.(StepObserver)
	env := cp.newEnv(w)
	w.newFlatThread(cp, env, 0, nil, nil)
	for {
		t := w.nextStep()
		if t == nil {
			break
		}
		w.flatStep(t)
	}
	w.abortRemainingFlat()
}

// newFlatThread registers a goroutine-free thread running the given body
// and runs its invisible prefix (everything before its first visible
// operation), exactly like newThread's eager prefix run. Called by execFlat
// for thread 0 and by a spawn's perform for children.
func (w *World) newFlatThread(cp *CompiledProgram, env *progEnv, body int, args []int, oargs []any) *Thread {
	id := ThreadID(len(w.threads))
	w.ensureNames(id)
	var t *Thread
	if w.pool != nil {
		t = w.pool.acquireFlat()
	} else {
		t = &Thread{}
	}
	t.w = w
	t.id = id
	t.name = w.names[id]
	t.key = w.keys[id]
	t.pending = pendingOp{}
	t.state = stateParked
	t.killed = false
	t.woken = false
	t.isClock = false
	t.parkTo = nil
	t.flat = true
	if t.fi == nil {
		t.fi = &interp{}
	}
	t.fi.init(cp, env, body, args, oargs)
	t.fi.req = &t.pending // registrations land in the published slot directly
	w.threads = append(w.threads, t)
	t.runFlatPrefix()
	return t
}

// runFlatPrefix mirrors runBody's opening: the spawn/exec acquire edge,
// then the invisible prefix up to the first registration (or exit). A
// failure in the prefix (an assertion in fully invisible code) unwinds via
// killSignal, caught here — the spawner continues and the failure surfaces
// at the next scheduling decision, as on the reference engine. Any other
// panic out of the prefix (an operand closure crashing) is contained as a
// FailPanic failure, matching runBody's containment on the reference
// engine.
func (t *Thread) runFlatPrefix() {
	defer t.w.containFlatPanic(t)
	t.sinkAcquire(t.key)
	t.w.flatAdvance(t)
}

// flatAdvance runs t's interpreter to its next registration, publishing it
// as the thread's pending op, or retires the thread at body end (the
// release edge and exited state of runBody's clean-exit path).
func (w *World) flatAdvance(t *Thread) {
	if t.fi.advance(t) {
		t.state = stateParked
		return
	}
	t.sinkRelease(t.key)
	t.state = stateExited
}

// flatStep executes one granted step: perform the pending operation's
// effect, then either publish the op's follow-up phase (condvar
// re-acquire, barrier wait, Once completion) or advance to the next
// registration. A failure inside the step (crash, assertion, negative
// WaitGroup …) unwinds via killSignal, caught here; the recorded failure
// ends the run at the next nextStep call. A non-killSignal panic — an
// instruction operand or condition closure crashing — is converted into a
// FailPanic failure the same way, so a crashing compiled program is a
// found bug with its trace intact, not a dead process.
func (w *World) flatStep(t *Thread) {
	defer w.containFlatPanic(t)
	w.stats.FlatSteps++
	if t.fi.perform(t) {
		return
	}
	w.flatAdvance(t)
}

// containFlatPanic is the flat engine's teardown/containment recover,
// deferred once per step (same count as the former killSignal-only
// recover, so the hot path is untaxed): killSignal unwinds of a failing
// thread are swallowed as before; any other panic is recorded as the
// execution's FailPanic failure and the thread retired. The recorded
// failure ends the run at the next nextStep call with the trace intact,
// and the World resets cleanly for the executor's next run.
func (w *World) containFlatPanic(t *Thread) {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := r.(killSignal); ok {
		return
	}
	if m, ok := r.(misuseError); ok {
		panic(m)
	}
	w.fail(&Failure{Kind: FailPanic, Thread: t.id,
		Message: fmt.Sprintf("panic: %v", r)})
	t.state = stateExited
}

// abortRemainingFlat is abortRemaining for a flat run: no goroutines to
// unwind, so retiring a thread is just marking it.
func (w *World) abortRemainingFlat() {
	for _, t := range w.threads {
		if t.state != stateExited {
			t.killed = true
			t.state = stateExited
		}
	}
}
