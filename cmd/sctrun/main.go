// Command sctrun explores a single registered benchmark (the 52 SCTBench
// rows or the GoIdiom extension family) with one technique and prints what
// it finds, including the witness schedule and an optional replay with a
// per-step trace — the debugging workflow the study's tools support
// (reproducing a bug by forcing its schedule).
//
// Usage:
//
//	sctrun -bench CS.account_bad [-technique idb|ipb|dfs|dpor|rand|maple|sleepset]
//	       [-limit 10000] [-seed 1] [-workers N] [-norace] [-replay]
//	       [-minimize] [-save witness.json] [-load witness.json] [-log]
//	       [-checkpoint ck.json] [-resume ck.json] [-max-wall 30s]
//	       [-list]
//
// A run cut short by SIGINT/SIGTERM or -max-wall flushes a frontier
// checkpoint to the -checkpoint path; -resume continues it with identical
// final results. Exit status: 0 clean (no bug), 1 bug found, 2 truncated
// without a bug, 3 usage or internal error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/mapleidiom"
	"sctbench/internal/race"
	"sctbench/internal/sched"
	"sctbench/internal/simplify"
	"sctbench/internal/vthread"
)

// Exit statuses (also asserted by the CLI tests and the CI resume smoke).
const (
	exitClean     = 0
	exitBug       = 1
	exitTruncated = 2
	exitError     = 3
)

func main() {
	interrupt, stop := notifyInterrupt()
	defer stop()
	os.Exit(run(os.Args[1:], interrupt, os.Stdout, os.Stderr))
}

// notifyInterrupt maps the first SIGINT/SIGTERM to closing the returned
// channel — the explore drivers poll it once per execution and flush a
// checkpoint. A second signal kills the process the usual way.
func notifyInterrupt() (<-chan struct{}, func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	interrupt := make(chan struct{})
	var once sync.Once
	go func() {
		for range ch {
			once.Do(func() { close(interrupt) })
			signal.Stop(ch)
		}
	}()
	return interrupt, func() { signal.Stop(ch) }
}

// run is the testable entry point: parses args, runs, and returns the
// exit status. interrupt may be nil (no signal handling, as in tests that
// drive truncation via -max-wall instead).
func run(args []string, interrupt <-chan struct{}, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sctrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("bench", "", "benchmark name (see -list)")
	tech := fs.String("technique", "idb", "ipb | idb | dfs | dpor | rand | maple | sleepset")
	limit := fs.Int("limit", explore.DefaultLimit, "terminal-schedule limit")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"schedule-exploration worker goroutines (1 = sequential; applies to ipb/idb/dfs/rand)")
	noRace := fs.Bool("norace", false, "skip the race-detection phase (every access visible)")
	replay := fs.Bool("replay", false, "replay the witness schedule and print it")
	minimize := fs.Bool("minimize", false, "simplify the witness (merge blocks, reduce preemptions)")
	savePath := fs.String("save", "", "write the witness to this JSON file")
	loadPath := fs.String("load", "", "replay a witness JSON file instead of exploring")
	logTrace := fs.Bool("log", false, "print a per-event trace when replaying")
	ckPath := fs.String("checkpoint", "", "write a frontier checkpoint here when the search is interrupted or times out")
	resumePath := fs.String("resume", "", "resume the search from this checkpoint file")
	maxWall := fs.Duration("max-wall", 0, "wall-clock budget for the search (0 = none)")
	list := fs.Bool("list", false, "list all registered benchmarks (SCTBench + goidiom + gotime) and exit")
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	if *list {
		for _, b := range bench.All() {
			fmt.Fprintf(stdout, "%-28s %-8s %2d threads  %-9s  %s\n", b.Name, b.Suite, b.Threads, b.BugKind, b.Desc)
		}
		return exitClean
	}

	var deadline time.Time
	if *maxWall > 0 {
		deadline = time.Now().Add(*maxWall)
	}

	if *resumePath != "" {
		return resumeRun(*resumePath, *ckPath, *name, *workers, deadline, interrupt,
			*replay, *minimize, *savePath, *logTrace, stdout, stderr)
	}

	b := bench.ByName(*name)
	if b == nil {
		fmt.Fprintf(stderr, "unknown benchmark %q (use -list)\n", *name)
		return exitError
	}

	if *loadPath != "" {
		return replayWitnessFile(b, *loadPath, *logTrace, stdout, stderr)
	}

	var visible func(string) bool
	var racyVars []string
	if !*noRace {
		phase := race.RunPhase(race.PhaseConfig{
			Program: b.New(), Seed: *seed, MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
		})
		fmt.Fprintf(stdout, "race phase: %d racy variable(s): %s\n", len(phase.Racy), strings.Join(phase.Racy, ", "))
		racyVars = phase.Racy
		visible = race.Promoted(phase.Racy)
	}

	if strings.EqualFold(*tech, "maple") {
		res := mapleidiom.Run(mapleidiom.Config{
			Program: b.New, Visible: visible, BoundsCheck: b.BoundsCheck,
			MaxSteps: b.MaxSteps, Seed: *seed,
		})
		if !res.BugFound {
			fmt.Fprintf(stdout, "MapleAlg: no bug in %d schedules (%d candidate idioms)\n", res.Schedules, res.Candidates)
			return exitClean
		}
		fmt.Fprintf(stdout, "MapleAlg: bug after %d schedules: %v\n", res.SchedulesToFirstBug, res.Failure)
		finishWitness(b, visible, racyVars, res.Witness, "maple", *replay, *minimize, *savePath, *logTrace, stdout, stderr)
		return exitBug
	}

	cfg := explore.Config{
		Program: b.New(), Visible: visible, BoundsCheck: b.BoundsCheck,
		MaxSteps: b.MaxSteps, Limit: *limit, Seed: *seed, Workers: *workers,
		Interrupt: interrupt, Deadline: deadline, CheckpointPath: *ckPath,
		Meta: explore.CheckpointMeta{Benchmark: b.Name, Racy: racyVars, NoRace: *noRace},
	}

	if strings.EqualFold(*tech, "sleepset") {
		res := explore.RunSleepSetDFS(cfg)
		return reportSleepSet(b, visible, racyVars, res, *ckPath, *replay, *minimize, *savePath, *logTrace, stdout, stderr)
	}

	var t explore.Technique
	switch strings.ToLower(*tech) {
	case "ipb":
		t = explore.IPB
	case "idb":
		t = explore.IDB
	case "dfs":
		t = explore.DFS
	case "dpor":
		t = explore.DPOR
	case "rand":
		t = explore.Rand
	default:
		fmt.Fprintf(stderr, "unknown technique %q\n", *tech)
		return exitError
	}
	res := explore.Run(t, cfg)
	return reportResult(b, visible, racyVars, t.String(), res, *ckPath,
		*replay, *minimize, *savePath, *logTrace, stdout, stderr)
}

// resumeRun continues an exploration from a frontier checkpoint. The
// benchmark and the promoted variable set come from the checkpoint itself
// (what the interrupted run measured); -bench may be given as a
// cross-check but cannot redirect the checkpoint to another program.
func resumeRun(path, ckPath, name string, workers int, deadline time.Time, interrupt <-chan struct{},
	replay, minimize bool, savePath string, logTrace bool, stdout, stderr io.Writer) int {
	ck, err := explore.LoadCheckpoint(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	if ck.Benchmark == "" {
		fmt.Fprintln(stderr, "checkpoint does not name its benchmark; cannot resume")
		return exitError
	}
	if name != "" && name != ck.Benchmark {
		fmt.Fprintf(stderr, "checkpoint is for %s, not %s\n", ck.Benchmark, name)
		return exitError
	}
	b := bench.ByName(ck.Benchmark)
	if b == nil {
		fmt.Fprintf(stderr, "checkpoint benchmark %q is not registered\n", ck.Benchmark)
		return exitError
	}
	var visible func(string) bool
	if !ck.NoRace {
		visible = race.Promoted(ck.Racy)
	}
	if ckPath == "" {
		ckPath = path // a re-interrupted resume checkpoints over its input
	}
	fmt.Fprintf(stdout, "resuming %s %s: %d schedules done\n", ck.Technique, ck.Benchmark, ck.Result.Schedules)
	res, err := explore.Resume(ck, explore.Config{
		Program: b.New(), Visible: visible, BoundsCheck: b.BoundsCheck,
		MaxSteps: b.MaxSteps, Workers: workers,
		Interrupt: interrupt, Deadline: deadline, CheckpointPath: ckPath,
		Meta: explore.CheckpointMeta{Benchmark: ck.Benchmark, Racy: ck.Racy, NoRace: ck.NoRace},
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	if ck.Technique == "sleepset" {
		return reportSleepSet(b, visible, ck.Racy, res, ckPath, replay, minimize, savePath, logTrace, stdout, stderr)
	}
	return reportResult(b, visible, ck.Racy, ck.Technique, res, ckPath,
		replay, minimize, savePath, logTrace, stdout, stderr)
}

// warnWorkerPanics surfaces contained exploration-worker panics on
// stderr: the run's counts are then lower bounds (the panicked unit's
// schedules were forfeited) and completeness is never claimed, so the
// user must not read the summary as full coverage.
func warnWorkerPanics(res *explore.Result, stderr io.Writer) {
	if res.WorkerPanics == 0 {
		return
	}
	fmt.Fprintf(stderr, "warning: %d exploration worker(s) panicked (%s); "+
		"schedule counts are lower bounds and completeness is not claimed\n",
		res.WorkerPanics, res.WorkerPanicMsg)
}

// truncatedStatus prints the truncation notice and returns whether the
// run was cut short (deadline or interrupt).
func truncatedStatus(res *explore.Result, ckPath string, stdout io.Writer) bool {
	if res.Stopped != explore.StopDeadline && res.Stopped != explore.StopInterrupted {
		return false
	}
	where := "no checkpoint configured (use -checkpoint)"
	if ckPath != "" {
		where = "checkpoint saved to " + ckPath
	}
	fmt.Fprintf(stdout, "search truncated (%s) after %d schedules; %s\n", res.Stopped, res.Schedules, where)
	return true
}

// reportResult prints an exploration summary and maps it to an exit
// status: a found bug outranks truncation.
func reportResult(b *bench.Benchmark, visible func(string) bool, racy []string, tech string,
	res *explore.Result, ckPath string, replay, minimize bool, savePath string, logTrace bool,
	stdout, stderr io.Writer) int {
	warnWorkerPanics(res, stderr)
	truncated := truncatedStatus(res, ckPath, stdout)
	if tech == explore.DPOR.String() {
		fmt.Fprintf(stdout, "DPOR: %d executions (%d aborted as redundant, %d branches pruned, %d total steps)\n",
			res.Executions, res.AbortedExecutions, res.BranchesPruned, res.TotalSteps)
	}
	if !res.BugFound {
		fmt.Fprintf(stdout, "%s: no bug within %d schedules (bound reached %d, complete=%v)\n",
			tech, res.Schedules, res.Bound, res.Complete)
		if truncated {
			return exitTruncated
		}
		return exitClean
	}
	fmt.Fprintf(stdout, "%s: bug at bound %d after %d schedules (%d total within bound, %d buggy)\n",
		tech, res.Bound, res.SchedulesToFirstBug, res.Schedules, res.BuggySchedules)
	fmt.Fprintf(stdout, "failure: %v\n", res.Failure)
	fmt.Fprintf(stdout, "witness: %v\n", res.Witness)
	finishWitness(b, visible, racy, res.Witness, tech, replay, minimize, savePath, logTrace, stdout, stderr)
	return exitBug
}

// reportSleepSet is reportResult with the sleep-set DFS phrasing.
func reportSleepSet(b *bench.Benchmark, visible func(string) bool, racy []string,
	res *explore.Result, ckPath string, replay, minimize bool, savePath string, logTrace bool,
	stdout, stderr io.Writer) int {
	warnWorkerPanics(res, stderr)
	truncated := truncatedStatus(res, ckPath, stdout)
	if !res.BugFound {
		fmt.Fprintf(stdout, "sleep-set DFS: no bug within %d schedules (complete=%v, %d of %d executions aborted as redundant)\n",
			res.Schedules, res.Complete, res.AbortedExecutions, res.Executions)
		if truncated {
			return exitTruncated
		}
		return exitClean
	}
	fmt.Fprintf(stdout, "sleep-set DFS: bug after %d schedules (%d executions, %d aborted as redundant): %v\n",
		res.SchedulesToFirstBug, res.Executions, res.AbortedExecutions, res.Failure)
	finishWitness(b, visible, racy, res.Witness, "sleepset", replay, minimize, savePath, logTrace, stdout, stderr)
	return exitBug
}

// finishWitness applies the post-discovery workflow: optional
// minimisation, optional save, optional replay with trace logging. All
// replays run on one shared Executor.
func finishWitness(b *bench.Benchmark, visible func(string) bool, racy []string,
	witness sched.Schedule, technique string, replay, minimize bool, savePath string, logTrace bool,
	stdout, stderr io.Writer) {
	ex := newReplayExecutor(b, visible)
	defer ex.Close()
	if minimize {
		res := simplify.Minimize(b.New, witness, simplify.Options{
			Visible: visible, BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps,
		})
		if res.Failure != nil {
			fmt.Fprintf(stdout, "minimized: PC %d -> %d (%d replays): %v\n",
				res.OriginalPC, res.PC, res.Replays, res.Schedule)
			witness = res.Schedule
		}
	}
	if savePath != "" {
		out, _ := replayOutcome(ex, b, witness, nil)
		wf := &sched.WitnessFile{
			Benchmark: b.Name, Technique: technique, Schedule: witness,
			Racy: racy, PC: out.PC, DC: out.DC,
		}
		if out.Failure != nil {
			wf.Failure = out.Failure.Error()
		}
		data, err := wf.Encode()
		if err == nil {
			err = os.WriteFile(savePath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(stderr, "save:", err)
		} else {
			fmt.Fprintf(stdout, "witness saved to %s\n", savePath)
		}
	}
	if replay {
		var log *vthread.TraceLogger
		if logTrace {
			log = vthread.NewTraceLogger()
		}
		out, _ := replayOutcome(ex, b, witness, log)
		fmt.Fprintf(stdout, "replay: %v (PC=%d DC=%d, %d steps)\n", out.Failure, out.PC, out.DC, len(out.Trace))
		if log != nil {
			fmt.Fprint(stdout, log.String())
		}
	}
}

// replayWitnessFile loads a saved witness and replays it. Reproducing the
// recorded bug is the expected outcome and maps to the bug exit status.
func replayWitnessFile(b *bench.Benchmark, path string, logTrace bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "load:", err)
		return exitError
	}
	wf, err := sched.DecodeWitness(data)
	if err != nil {
		fmt.Fprintln(stderr, "load:", err)
		return exitError
	}
	if wf.Benchmark != "" && wf.Benchmark != b.Name {
		fmt.Fprintf(stderr, "witness is for %s, not %s\n", wf.Benchmark, b.Name)
		return exitError
	}
	var log *vthread.TraceLogger
	if logTrace {
		log = vthread.NewTraceLogger()
	}
	ex := newReplayExecutor(b, race.Promoted(wf.Racy))
	defer ex.Close()
	out, ok := replayOutcome(ex, b, wf.Schedule, log)
	if !ok {
		fmt.Fprintln(stdout, "replay diverged: witness does not fit this benchmark build")
		return exitError
	}
	fmt.Fprintf(stdout, "replay: %v (PC=%d DC=%d, %d steps)\n", out.Failure, out.PC, out.DC, len(out.Trace))
	if log != nil {
		fmt.Fprint(stdout, log.String())
	}
	if out.Failure != nil {
		return exitBug
	}
	return exitClean
}

// newReplayExecutor builds the reusable execution context the replay
// workflow shares across its runs.
func newReplayExecutor(b *bench.Benchmark, visible func(string) bool) *vthread.Executor {
	return vthread.NewExecutor(vthread.Options{
		Visible: visible, BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps,
	})
}

// replayOutcome replays a schedule on ex with optional logging. The
// outcome is valid until ex's next run.
func replayOutcome(ex *vthread.Executor, b *bench.Benchmark, s sched.Schedule, log *vthread.TraceLogger) (*vthread.Outcome, bool) {
	rep := vthread.NewReplay(s)
	var sink vthread.EventSink
	if log != nil {
		sink = log
	}
	out := ex.RunWith(rep, sink, b.New())
	return out, !rep.Failed()
}
