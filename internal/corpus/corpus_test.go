package corpus

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sctbench/internal/faultinject"
	"sctbench/internal/fsatomic"
	"sctbench/internal/sched"
)

func w(s ...sched.ThreadID) Witness {
	return Witness{Schedule: sched.Schedule(s), PC: 1, DC: 1, Kind: "assertion", Message: "m", Technique: "dfs"}
}

const h1 = "00000000000000a1"
const h2 = "00000000000000b2"

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddWitness(h1, "CS.demo", w(0, 1, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddWitness(h1, "CS.demo", w(0, 1, 1, 2)); err != nil { // duplicate
		t.Fatal(err)
	}
	if err := s.AddWitness(h1, "CS.demo", w(2, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPrefixes(h1, "CS.demo", []sched.Schedule{{0, 0, 1}, {0}, {0, 0, 1}}); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	e, ok := re.Get(h1)
	if !ok {
		t.Fatalf("entry %s lost across reopen", h1)
	}
	if e.Benchmark != "CS.demo" {
		t.Errorf("benchmark = %q, want CS.demo", e.Benchmark)
	}
	if len(e.Witnesses) != 2 {
		t.Fatalf("got %d witnesses, want 2 (duplicate deduped): %+v", len(e.Witnesses), e.Witnesses)
	}
	if len(e.Prefixes) != 2 {
		t.Fatalf("got %d prefixes, want 2 (duplicate deduped): %v", len(e.Prefixes), e.Prefixes)
	}
	// Mutating the returned copy must not touch the store.
	e.Witnesses[0].Schedule[0] = 99
	e2, _ := re.Get(h1)
	if e2.Witnesses[0].Schedule[0] == 99 {
		t.Fatalf("Get returned an aliased entry")
	}
}

func TestPutDropsEmptyEntry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddWitness(h1, "CS.demo", w(0, 1)); err != nil {
		t.Fatal(err)
	}
	e, _ := s.Get(h1)
	e.Witnesses = nil
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(h1); ok {
		t.Fatalf("emptied entry still present")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), h1+".json")); !os.IsNotExist(err) {
		t.Fatalf("emptied entry file still on disk: %v", err)
	}
}

func TestMerge(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddWitness(h1, "CS.demo", w(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddWitness(h1, "CS.demo", w(0, 1)); err != nil { // shared
		t.Fatal(err)
	}
	if err := b.AddWitness(h1, "CS.demo", w(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddWitness(h2, "CS.other", w(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Fatalf("merged store has %d entries, want 2", a.Len())
	}
	e, _ := a.Get(h1)
	if len(e.Witnesses) != 2 {
		t.Fatalf("merged entry has %d witnesses, want 2 (shared one deduped)", len(e.Witnesses))
	}
}

func TestGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddWitness(h1, "", w(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddWitness(h2, "", w(1, 0)); err != nil {
		t.Fatal(err)
	}
	removed, err := s.GC(map[string]bool{h1: true})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("GC removed %d entries, want 1", removed)
	}
	if _, ok := s.Get(h2); ok {
		t.Fatalf("GC kept unreferenced entry %s", h2)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), h2+".json")); !os.IsNotExist(err) {
		t.Fatalf("GC left the entry file behind: %v", err)
	}
	if _, ok := s.Get(h1); !ok {
		t.Fatalf("GC removed a kept entry")
	}
}

func TestCorruptEntryIsAClearError(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, h1+".json")
	if err := os.WriteFile(bad, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	if err == nil {
		t.Fatalf("Open accepted a corrupt entry")
	}
	if !strings.Contains(err.Error(), bad) || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt-entry error does not name the file: %v", err)
	}

	// A well-formed file under the wrong name is corruption too: the
	// filename is the key.
	if err := os.WriteFile(bad, []byte(`{"hash":"feedfacecafebeef"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), bad) {
		t.Fatalf("Open accepted a mis-keyed entry: %v", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := fsatomic.WriteFile(filepath.Join(dir, "VERSION"), []byte("sctcorpus/v0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "sctcorpus/v0") {
		t.Fatalf("Open accepted a foreign corpus version: %v", err)
	}
}

// TestKillMidWrite arms the CorpusWrite crash point and proves the update
// is lost atomically: the failed write reports the simulated death and the
// previous entry file stays byte-identical.
func TestKillMidWrite(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddWitness(h1, "CS.demo", w(0, 1)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, h1+".json"))
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.CorpusWrite, 1)
	err = s.AddWitness(h1, "CS.demo", w(1, 0))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed write returned %v, want ErrInjected", err)
	}
	after, err := os.ReadFile(filepath.Join(dir, h1+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("crashed write altered the old entry:\nbefore: %s\nafter: %s", before, after)
	}

	// The process "reboots": a fresh Open sees exactly the old entry.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := re.Get(h1)
	if !ok || len(e.Witnesses) != 1 || !e.Witnesses[0].Schedule.Equal(sched.Schedule{0, 1}) {
		t.Fatalf("rebooted store does not hold the pre-crash entry: %+v", e)
	}
}

// TestGoldenFormat pins the on-disk layout: a fixed entry must serialise
// to exactly the bytes in testdata/golden_entry.json, and the VERSION file
// to the pinned format string. A diff here means the corpus format changed
// — bump Version and regenerate the golden file deliberately.
func TestGoldenFormat(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	version, err := os.ReadFile(filepath.Join(dir, "VERSION"))
	if err != nil {
		t.Fatal(err)
	}
	if string(version) != Version+"\n" {
		t.Fatalf("VERSION file holds %q, want %q", version, Version+"\n")
	}

	const gh = "00d15ea5edc0ffee"
	if err := s.Put(Entry{
		Hash:      gh,
		Benchmark: "CS.account_bad",
		Witnesses: []Witness{
			{Schedule: sched.Schedule{0, 2, 1, 1}, PC: 2, DC: 2, Kind: "deadlock", Technique: "ipb"},
			{Schedule: sched.Schedule{0, 1, 2, 1}, PC: 1, DC: 1, Kind: "assertion", Message: "account overdrawn: balance=-50", Technique: "dfs"},
		},
		Prefixes: []sched.Schedule{{0, 1, 2}, {0, 0}},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, gh+".json"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_entry.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("entry layout drifted from testdata/golden_entry.json:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
