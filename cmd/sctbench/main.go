// Command sctbench runs the empirical study of Thomson et al. (PPoPP'14)
// over every registered benchmark — the 52 SCTBench rows plus the GoIdiom
// extension family (channels, multi-way select, WaitGroup, Once) the
// original study could not express: the race-detection phase followed by
// IPB, IDB, DFS, Rand and optionally MapleAlg, then renders Table 2,
// Table 3, the Figure 2 Venn diagrams and the Figure 3/4 scatter data.
//
// Usage:
//
//	sctbench [-limit 10000] [-seed 1] [-bench regex] [-maple] [-dpor]
//	         [-table1] [-fig3csv path] [-fig4csv path] [-par N] [-workers N]
//	         [-engine auto|ref] [-checkpoint path] [-resume] [-max-wall 10m]
//	         [-cpuprofile path] [-memprofile path] [-v]
//
// A study cut short by SIGINT/SIGTERM or -max-wall keeps every cleanly
// completed benchmark row: the rows are saved to the -checkpoint path, the
// CSV artifacts are still written (covering the completed rows), and the
// process exits with status 2. Re-running with -resume skips the saved
// rows and re-runs only what is missing; since every row is deterministic
// given the seed, the resumed artifacts match an uninterrupted run's.
// Exit status: 0 clean (no bugs — unusual, the suite plants bugs), 1 at
// least one bug found (the expected outcome), 2 truncated, 3 usage or
// internal error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/corpus"
	"sctbench/internal/explore"
	"sctbench/internal/report"
	"sctbench/internal/study"
	"sctbench/internal/vthread"
)

// Exit statuses (also asserted by the CLI tests and the CI resume smoke).
const (
	exitClean     = 0
	exitBug       = 1
	exitTruncated = 2
	exitError     = 3
)

func main() {
	interrupt, stop := notifyInterrupt()
	defer stop()
	os.Exit(run(os.Args[1:], interrupt, os.Stdout, os.Stderr))
}

// notifyInterrupt maps the first SIGINT/SIGTERM to closing the returned
// channel; a second signal kills the process the usual way.
func notifyInterrupt() (<-chan struct{}, func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	interrupt := make(chan struct{})
	var once sync.Once
	go func() {
		for range ch {
			once.Do(func() { close(interrupt) })
			signal.Stop(ch)
		}
	}()
	return interrupt, func() { signal.Stop(ch) }
}

// run is the testable entry point: parses args, runs the study, renders
// the reports, and returns the exit status.
func run(args []string, interrupt <-chan struct{}, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sctbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	limit := fs.Int("limit", explore.DefaultLimit, "terminal-schedule limit per technique")
	seed := fs.Uint64("seed", 1, "base random seed")
	benchRe := fs.String("bench", "", "regexp selecting benchmarks by name (default: all, goidiom and gotime families included)")
	withMaple := fs.Bool("maple", false, "also run the Maple-style idiom algorithm")
	withDPOR := fs.Bool("dpor", false,
		"also run DPOR (source-set dynamic partial-order reduction over unbounded DFS); "+
			"reduction factors land in the -table3csv output")
	table1 := fs.Bool("table1", false, "print Table 1 (suite overview) and exit")
	table3csv := fs.String("table3csv", "", "write the full Table 3 grid as CSV to this path")
	fig3csv := fs.String("fig3csv", "", "write Figure 3 scatter data CSV to this path")
	fig4csv := fs.String("fig4csv", "", "write Figure 4 scatter data CSV to this path")
	par := fs.Int("par", 0, "parallel benchmark evaluations (0 = GOMAXPROCS)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"schedule-exploration workers per technique run (1 = sequential)")
	engine := fs.String("engine", "auto",
		"execution engine: auto (compiled benchmarks on the flat single-goroutine "+
			"engine, closure benchmarks on the goroutine engine) or ref (force "+
			"everything onto the goroutine reference engine)")
	corpusDir := fs.String("corpus", "",
		"schedule corpus directory (created if missing): explorations replay stored "+
			"witnesses before searching and write every fresh witness back")
	swarm := fs.Bool("swarm", false,
		"swarm mode: sweep technique x bound x seed over the selected benchmarks "+
			"and emit one consolidated CSV (see -swarm-seeds, -swarm-bounds, -swarmcsv)")
	swarmSeeds := fs.String("swarm-seeds", "1,2,3,4,5", "comma-separated seed axis for -swarm")
	swarmBounds := fs.String("swarm-bounds", "0",
		"comma-separated bound axis for -swarm's bounded techniques (0 = default cap)")
	swarmCSV := fs.String("swarmcsv", "", "write the swarm CSV to this path (default: stdout)")
	ckPath := fs.String("checkpoint", "", "save completed rows here when the study is interrupted or times out")
	resume := fs.Bool("resume", false, "skip rows already completed in the -checkpoint file")
	maxWall := fs.Duration("max-wall", 0, "wall-clock budget for the study (0 = none)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the study run to this path")
	memprofile := fs.String("memprofile", "", "write an allocation profile at exit to this path")
	verbose := fs.Bool("v", false, "progress output per phase")
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	if msg := study.Sanity(); msg != "" {
		fmt.Fprintln(stderr, "registry error:", msg)
		return exitError
	}

	var debug vthread.Debug
	switch *engine {
	case "auto":
	case "ref":
		debug.NoFlatEngine = true
	default:
		fmt.Fprintln(stderr, "bad -engine (want auto or ref):", *engine)
		return exitError
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "cpuprofile:", err)
			return exitError
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "cpuprofile:", err)
			return exitError
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
			}
		}()
	}

	if *table1 {
		fmt.Fprintf(stdout, "%-14s %-60s %5s %8s  %s\n", "Suite", "Benchmark types", "used", "skipped", "skip reason")
		for _, s := range bench.Table1() {
			fmt.Fprintf(stdout, "%-14s %-60s %5d %8d  %s\n", s.Name, s.Kinds, s.Used, s.Skipped, s.SkipReason)
		}
		return exitClean
	}

	benches := bench.All()
	if *benchRe != "" {
		re, err := regexp.Compile(*benchRe)
		if err != nil {
			fmt.Fprintln(stderr, "bad -bench regexp:", err)
			return exitError
		}
		var sel []*bench.Benchmark
		for _, b := range benches {
			if re.MatchString(b.Name) {
				sel = append(sel, b)
			}
		}
		benches = sel
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "no benchmarks selected")
		return exitError
	}

	var store *corpus.Store
	if *corpusDir != "" {
		var err error
		if store, err = corpus.Open(*corpusDir); err != nil {
			fmt.Fprintln(stderr, "corpus:", err)
			return exitError
		}
	}

	if *swarm {
		return runSwarm(benches, swarmOptions{
			seeds:     *swarmSeeds,
			bounds:    *swarmBounds,
			csvPath:   *swarmCSV,
			limit:     *limit,
			par:       *par,
			workers:   *workers,
			withDPOR:  *withDPOR,
			maxWall:   *maxWall,
			verbose:   *verbose,
			debug:     debug,
			store:     store,
			interrupt: interrupt,
		}, stdout, stderr)
	}

	cfg := study.Config{
		Limit:          *limit,
		Seed:           *seed,
		WithMaple:      *withMaple,
		Parallelism:    *par,
		Workers:        *workers,
		Debug:          debug,
		Interrupt:      interrupt,
		CheckpointPath: *ckPath,
		Corpus:         store,
	}
	if *maxWall > 0 {
		cfg.Deadline = time.Now().Add(*maxWall)
	}
	if *withDPOR {
		// The default technique set plus DPOR; POR stays out of the
		// bounded phases per the paper's methodology (§5), so it rides as
		// an additional unbounded-search column.
		cfg.Techniques = []explore.Technique{explore.IPB, explore.IDB,
			explore.DFS, explore.Rand, explore.DPOR}
	}
	if *verbose {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	var prior *study.Checkpoint
	if *resume {
		if *ckPath == "" {
			fmt.Fprintln(stderr, "-resume needs -checkpoint to say where the saved rows are")
			return exitError
		}
		ck, err := study.LoadCheckpoint(*ckPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitError
		}
		prior = ck
		fmt.Fprintf(stderr, "resuming: %d rows carried over from %s\n", len(ck.Rows), *ckPath)
	}

	start := time.Now()
	rows, truncated, err := study.RunStudy(benches, cfg, prior)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}

	if truncated {
		where := "no checkpoint configured (use -checkpoint)"
		if *ckPath != "" {
			where = "rows saved to " + *ckPath
		}
		fmt.Fprintf(stderr, "study truncated: %d of %d rows completed; %s\n", len(rows), len(benches), where)
	}

	// Contained worker panics make the affected rows lower bounds, never
	// complete coverage — say so loudly rather than letting the tables
	// pass as exhaustive.
	for _, r := range rows {
		for tech, res := range r.Results {
			if res != nil && res.WorkerPanics > 0 {
				fmt.Fprintf(stderr, "warning: %s %s: %d exploration worker(s) panicked (%s); "+
					"schedule counts are lower bounds and completeness is not claimed\n",
					r.Bench.Name, tech, res.WorkerPanics, res.WorkerPanicMsg)
			}
		}
	}

	// Reports cover the completed rows — on a truncated run they are the
	// partial artifact the checkpoint will later complete.
	fmt.Fprintln(stdout, "=== Table 3: per-benchmark results ===")
	fmt.Fprint(stdout, report.Table3(rows, *limit))
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "=== Table 2: trivial-benchmark properties ===")
	fmt.Fprint(stdout, report.Table2(rows, *limit))
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "=== Figure 2a: bugs found (systematic techniques) ===")
	fmt.Fprint(stdout, report.VennSystematic(rows).Format())
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "=== Figure 2b: IDB vs Rand vs MapleAlg ===")
	fmt.Fprint(stdout, report.VennVsNaive(rows).Format())

	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "=== Figure 3: schedules to first bug, IPB vs IDB (misses at the limit) ===")
	fmt.Fprint(stdout, report.Fig3Scatter(report.Fig3Series(rows, *limit), *limit))
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "=== Figure 4: worst case (non-buggy schedules within the bound) ===")
	fmt.Fprint(stdout, report.Fig4Scatter(report.Fig4Series(rows, *limit), *limit))

	if *table3csv != "" {
		if err := os.WriteFile(*table3csv, []byte(report.Table3CSV(rows)), 0o644); err != nil {
			fmt.Fprintln(stderr, "table3:", err)
		}
	}
	if *fig3csv != "" {
		if err := os.WriteFile(*fig3csv, []byte(report.FigCSV(report.Fig3Series(rows, *limit))), 0o644); err != nil {
			fmt.Fprintln(stderr, "fig3:", err)
		}
	}
	if *fig4csv != "" {
		if err := os.WriteFile(*fig4csv, []byte(report.FigCSV(report.Fig4Series(rows, *limit))), 0o644); err != nil {
			fmt.Fprintln(stderr, "fig4:", err)
		}
	}
	fmt.Fprintf(stderr, "\n%d benchmarks in %s\n", len(rows), elapsed.Round(time.Millisecond))

	if truncated {
		return exitTruncated
	}
	for _, r := range rows {
		for _, res := range r.Results {
			if res.BugFound {
				return exitBug
			}
		}
		if r.Maple != nil && r.Maple.BugFound {
			return exitBug
		}
	}
	return exitClean
}
