package vthread

import (
	"fmt"
	"sync"
)

type threadState int

const (
	// stateParked: the thread is stopped at a scheduling point with a
	// pending visible operation.
	stateParked threadState = iota
	// stateExited: the thread body returned, the thread failed, or the
	// thread was killed during execution teardown.
	stateExited
)

// killSignal is the panic value used to unwind a virtual thread's body when
// the execution is torn down. Pooled worker goroutines recover it and
// return to the pool; one-shot goroutines recover it and exit.
type killSignal struct{}

// misuseError is the panic payload of substrate misuse diagnostics (API
// contract violations in the harness, not scheduling bugs in the program).
// The panic-containment recovers rethrow it so misuse crashes loudly
// instead of masquerading as a found FailPanic bug.
type misuseError string

// Thread is a virtual thread. All operations on shared objects take the
// current thread as an argument, which is how the substrate serialises the
// program: each such operation is (or may be) a scheduling point.
//
// A Thread handle is only valid inside the execution that created it. The
// struct itself, its gate channel and its backing goroutine are recycled
// across executions when the World is owned by an Executor; newThread
// re-initialises every per-execution field before the body is handed over.
type Thread struct {
	w    *World
	id   ThreadID
	name string
	key  string // sync-object key for spawn/join happens-before edges

	gate chan struct{}
	// jobs delivers one Program per execution to this thread's pooled
	// worker goroutine. Nil for one-shot (plain World) threads, whose
	// goroutine runs a single body and exits.
	jobs chan Program
	// first receives this thread's park notifications during the eager
	// prefix run: a private channel consumed by the spawner (which owns
	// the baton for the duration of the spawn, so no other goroutine can
	// steal the message). Once the prefix has parked, the spawner clears
	// parkTo to nil — "baton mode" — and from then on the thread does not
	// notify anyone when it parks: it runs the scheduling decision itself
	// (World.continueFrom). The redirect is safe: the thread only reads
	// parkTo at its next park, which cannot happen before it is next
	// granted, which happens-after the spawner consumed the first park.
	// The channel is drained by every use, so it is recycled along with
	// the Thread.
	first   chan parkKind
	parkTo  chan parkKind
	pending pendingOp
	state   threadState
	killed  bool
	// isClock marks the virtual clock's pseudo-thread (see timer.go): a
	// Thread-shaped table entry with no goroutine, no gate and no pool
	// membership, whose steps the World executes inline.
	isClock bool
	// flat marks a goroutine-free thread of the flat engine (flat.go): no
	// gate, no jobs channel, no goroutine — its steps are function calls
	// into fi. Blocking through visible is impossible on such a thread and
	// panics (see the guard there).
	flat bool
	// fi is the thread's compiled-program interpreter, set when the thread
	// runs a CompiledProgram body (on either engine). Recycled with the
	// Thread struct.
	fi *interp

	// woken marks a condvar waiter that has been signalled and may now
	// re-contend for the mutex.
	woken bool
}

// threadKey is the sync-object key used for spawn/join happens-before
// edges of thread id.
func threadKey(id ThreadID) string { return fmt.Sprintf("thread/%d", id) }

// ensureNames extends the name/key caches to cover id.
func (w *World) ensureNames(id ThreadID) {
	for len(w.names) <= int(id) {
		n := ThreadID(len(w.names))
		w.names = append(w.names, fmt.Sprintf("T%d", n))
		w.keys = append(w.keys, threadKey(n))
	}
}

// newThread registers a thread, hands its goroutine the body, and runs the
// thread's invisible prefix up to its first visible operation (or exit)
// before returning. The caller — World.exec for thread 0, a spawning thread
// otherwise — owns the execution at that moment, so it consumes the child's
// first park itself. Running the prefix eagerly means a thread's first
// schedulable step is its first *real* visible operation, exactly the step
// model of §2; a thread with a fully invisible body never occupies a
// scheduling point at all.
//
// On a pooled World the Thread (goroutine, gate, channels) comes from the
// Executor's free list; otherwise a fresh struct and a one-shot goroutine
// are created.
func (w *World) newThread(body Program) *Thread {
	id := ThreadID(len(w.threads))
	w.ensureNames(id)
	var t *Thread
	if w.pool != nil {
		t = w.pool.acquire()
	} else {
		t = &Thread{
			gate:  make(chan struct{}),
			first: make(chan parkKind, 1),
		}
	}
	t.w = w
	t.id = id
	t.name = w.names[id]
	t.key = w.keys[id]
	t.pending = pendingOp{}
	t.state = stateParked
	t.killed = false
	t.woken = false
	t.isClock = false
	t.flat = false
	t.parkTo = t.first
	w.threads = append(w.threads, t)
	w.wg.Add(1)
	if t.jobs != nil {
		t.jobs <- body // wakes the pooled worker goroutine
	} else {
		go t.runOne(body)
	}
	t.gate <- struct{}{} // run the invisible prefix
	<-t.first            // …until the thread parks, exits or fails
	t.parkTo = nil       // baton mode: later parks schedule inline
	return t
}

// workerLoop is the goroutine body of a pooled thread: one runBody per
// assigned execution, parked on the jobs channel in between. exited is the
// Executor's shutdown WaitGroup.
func (t *Thread) workerLoop(exited *sync.WaitGroup) {
	defer exited.Done()
	for body := range t.jobs {
		t.runBody(body)
		t.w.wg.Done()
	}
}

// runOne is the goroutine body of a one-shot (plain World) thread.
func (t *Thread) runOne(body Program) {
	t.runBody(body)
	t.w.wg.Done()
}

// runBody executes one virtual-thread body to completion: clean exit,
// failure, or teardown unwind. It never lets killSignal escape, so pooled
// workers survive to serve the next execution; any other panic out of the
// body is a found bug (Failure{Kind: FailPanic}), contained exactly like a
// Fail call so the Executor stays reusable.
func (t *Thread) runBody(body Program) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); ok {
				return // execution teardown; state handled by the World
			}
			t.containPanic(r)
		}
	}()

	t.awaitGrant() // released by newThread to run the invisible prefix
	t.sinkAcquire(t.key)
	body(t)

	// Clean exit: publish exited state before passing the baton so the
	// scheduler never observes a stale parked state.
	t.sinkRelease(t.key)
	t.state = stateExited
	if t.parkTo != nil {
		// Exited during the eager spawn prefix: the spawner owns the baton
		// and consumes this park.
		t.parkTo <- parkExited
		return
	}
	t.w.exitFrom()
}

// containPanic converts a panic escaping a program body into the
// execution's failure and hands the baton on, following failNow's routing:
// the spawner consumes the park during the eager prefix, the exec
// goroutine otherwise. A body only runs while it holds the baton (chooser
// and substrate-protocol panics are captured elsewhere, see
// threadSideStep), so the send below always has a waiting receiver. The
// goroutine then returns to its pool normally — a crashing program is a
// found bug, not a dead process.
func (t *Thread) containPanic(r any) {
	if m, ok := r.(misuseError); ok {
		panic(m)
	}
	t.w.fail(&Failure{Kind: FailPanic, Thread: t.id,
		Message: fmt.Sprintf("panic: %v", r)})
	t.state = stateExited
	if t.parkTo != nil {
		t.parkTo <- parkFailed
		return
	}
	t.w.parked <- parkFailed
}

// grant wakes the thread to perform its pending operation (or, with
// killed set, to unwind). The sender must hold the baton; the send is the
// baton transfer.
func (t *Thread) grant() { t.gate <- struct{}{} }

// visible registers op as this thread's next visible operation and parks
// until the scheduler grants the thread. On return the thread owns the
// execution and must perform the operation it registered. Outside the
// eager spawn prefix the thread holds the baton, so instead of notifying
// anyone it runs the scheduling decision itself — and on the same-thread
// fast path simply keeps going.
func (t *Thread) visible(op pendingOp) {
	if t.flat {
		// A flat-engine thread has no goroutine to park: blocking API calls
		// are only legal as compiled instructions, which register through
		// the interpreter's resume points instead of parking. Reaching this
		// guard means an operand or condition closure of a compiled program
		// called a blocking operation (Lock, Send, Load on a promoted
		// var, …) — suspension outside a resume point, a program bug.
		panic(misuseError("vthread: blocking operation on a flat-engine thread (suspension outside a compiled resume point; use instructions, not closure calls, for visible operations)"))
	}
	if t.killed {
		panic(killSignal{})
	}
	t.pending = op
	t.state = stateParked
	if t.parkTo != nil {
		// Eager spawn prefix: the spawner owns the baton and consumes this
		// park; the scheduler is not involved yet.
		t.parkTo <- parkPending
		t.awaitGrant()
		return
	}
	t.w.continueFrom(t)
}

// awaitGrant blocks until the world grants this thread (or kills it: a
// grant with killed set is the teardown signal).
func (t *Thread) awaitGrant() {
	<-t.gate
	if t.killed {
		panic(killSignal{})
	}
}

// failNow records f as the execution's failure and unwinds the thread.
// It never returns. During the eager spawn prefix the spawner consumes
// the park and the failure surfaces at the spawner's next scheduling
// decision; otherwise the failing thread holds the baton and returns it
// to the exec goroutine directly.
func (t *Thread) failNow(f *Failure) {
	t.w.fail(f)
	t.state = stateExited
	if t.flat {
		// No goroutine, no baton: unwind the interpreter call stack; the
		// flat drive loop catches the signal and the recorded failure ends
		// the run at its next scheduling decision.
		panic(killSignal{})
	}
	if t.parkTo != nil {
		t.parkTo <- parkFailed
	} else {
		t.w.parked <- parkFailed
	}
	panic(killSignal{})
}

// ID returns the thread's identifier (creation order, 0 = initial thread).
func (t *Thread) ID() ThreadID { return t.id }

// Name returns the thread's display name ("T0", "T1", …) unless renamed
// with SetName.
func (t *Thread) Name() string { return t.name }

// SetName assigns a display name used in failure messages.
func (t *Thread) SetName(name string) { t.name = name }

// World returns the execution this thread belongs to.
func (t *Thread) World() *World { return t.w }

// Spawn creates a new virtual thread running body and returns its handle.
// Spawning is a visible operation. The child's invisible prefix (everything
// before its first visible operation) runs during the spawn step; its first
// schedulable step is its first visible operation.
func (t *Thread) Spawn(body Program) *Thread {
	t.visible(pendingOp{kind: opSpawn})
	childID := ThreadID(len(t.w.threads))
	t.w.ensureNames(childID)
	t.sink().spawned(t.id, childID)
	t.sinkRelease(t.w.keys[childID])
	return t.w.newThread(body)
}

// SpawnAll creates several threads in one visible operation, modelling the
// single create(T1,…,Tn) step of the paper's Figure 1 example. The children
// are numbered in argument order.
func (t *Thread) SpawnAll(bodies ...Program) []*Thread {
	t.visible(pendingOp{kind: opSpawn})
	out := make([]*Thread, len(bodies))
	for i, body := range bodies {
		childID := ThreadID(len(t.w.threads))
		t.w.ensureNames(childID)
		t.sink().spawned(t.id, childID)
		t.sinkRelease(t.w.keys[childID])
		out[i] = t.w.newThread(body)
	}
	return out
}

// Join blocks until other has exited. Joining is a visible operation; the
// joining thread is disabled until the target's body returns.
func (t *Thread) Join(other *Thread) {
	t.visible(pendingOp{kind: opJoin, target: other})
	t.sinkAcquire(other.key)
}

// Yield is a visible no-op: a pure scheduling point. It models a compute
// step that the tester wants schedulable (for example a statement the race
// detector flagged).
func (t *Thread) Yield() {
	t.visible(pendingOp{kind: opYield})
}

// Assert checks a safety property of the program under test. A false
// condition is an assertion-failure bug and terminates the execution.
// Assert itself is invisible: the reads feeding cond are the visible
// operations.
func (t *Thread) Assert(cond bool, format string, args ...any) {
	if cond {
		return
	}
	if t.killed {
		panic(killSignal{})
	}
	t.failNow(&Failure{
		Kind:    FailAssert,
		Thread:  t.id,
		Message: fmt.Sprintf(format, args...),
	})
}

// Fail unconditionally reports a bug found by the program's own checking
// code (for example an output checker, §4.2 of the paper).
func (t *Thread) Fail(format string, args ...any) {
	if t.killed {
		panic(killSignal{})
	}
	t.failNow(&Failure{
		Kind:    FailAssert,
		Thread:  t.id,
		Message: fmt.Sprintf(format, args...),
	})
}

// crash reports a modelled memory-safety failure (use of a destroyed
// object, double unlock, out-of-bounds access with checking enabled, …).
func (t *Thread) crash(format string, args ...any) {
	if t.killed {
		panic(killSignal{})
	}
	t.failNow(&Failure{
		Kind:    FailCrash,
		Thread:  t.id,
		Message: fmt.Sprintf(format, args...),
	})
}

// sink helpers: no-ops when no EventSink is configured or during teardown.

type sinkProxy struct{ t *Thread }

func (t *Thread) sink() sinkProxy { return sinkProxy{t} }

func (p sinkProxy) spawned(parent, child ThreadID) {
	if s := p.t.w.opts.Sink; s != nil && !p.t.killed {
		s.Spawned(parent, child)
	}
}

func (t *Thread) sinkAccess(key string, write bool) {
	if s := t.w.opts.Sink; s != nil && !t.killed {
		s.Access(t.id, key, write)
	}
}

func (t *Thread) sinkAcquire(key string) {
	if s := t.w.opts.Sink; s != nil && !t.killed {
		s.Acquire(t.id, key)
	}
}

func (t *Thread) sinkRelease(key string) {
	if s := t.w.opts.Sink; s != nil && !t.killed {
		s.Release(t.id, key)
	}
}
