package explore

// Golden-file regression test: the exact exploration counts and the
// canonical branch key of the first bug witness are pinned for the CS,
// GoIdiom and GoTime suites at a fixed schedule budget. Any change to
// canonical ordering, cost accounting, enabled-set construction or the
// benchmark programs themselves shows up here as a diff against testdata —
// run with -update to regenerate after an intentional change. Since the
// registry migrated to compiled programs, these rows also pin the flat
// engine's scheduling behaviour against the goroutine engine's history.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

const goldenLimit = 500 // fixed schedule budget for the pinned DFS runs

// goldenRow is what a DFS run at the fixed budget pins per benchmark.
type goldenRow struct {
	Schedules  int   `json:"schedules"`
	Executions int   `json:"executions"`
	Complete   bool  `json:"complete"`
	BugFound   bool  `json:"bugFound"`
	WitnessKey []int `json:"witnessKey,omitempty"` // canonical branch key of the first witness
}

// branchKeyOf replays witness and records, at every scheduling point, the
// index of the chosen value within sched.AppendCanonicalOrder — exactly
// the branch-key elements the engine's nodes would carry. The replaying
// chooser is not a StepObserver, so forced points also pass through Choose
// and land in the key as index 0, matching the engine's stack depth.
func branchKeyOf(t *testing.T, program vthread.Runnable, witness sched.Schedule) []int {
	t.Helper()
	key := make([]int, 0, len(witness))
	ok := true
	ch := vthread.ChooserFunc(func(ctx vthread.Context) sched.ThreadID {
		if ctx.Step >= len(witness) {
			ok = false
			return ctx.Enabled[0]
		}
		want := witness[ctx.Step]
		order := sched.AppendCanonicalOrder(nil, ctx.Enabled, ctx.Last, ctx.NumThreads)
		idx := -1
		for i, c := range order {
			if c == want {
				idx = i
				break
			}
		}
		if idx < 0 {
			ok = false
			return ctx.Enabled[0]
		}
		key = append(key, idx)
		return want
	})
	out := vthread.NewWorld(vthread.Options{Chooser: ch}).Run(program)
	if !ok || !out.Trace.Equal(witness) {
		t.Fatalf("witness %v did not replay canonically (got %v)", witness, out.Trace)
	}
	return key
}

// goldenBenchmarks is the pinned set: the CS suite (the paper's largest)
// plus the GoIdiom and GoTime families.
func goldenBenchmarks() []*bench.Benchmark {
	var out []*bench.Benchmark
	for _, b := range bench.All() {
		if b.Suite == "CS" || b.Suite == "GoIdiom" || b.Suite == "GoTime" {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func TestGoldenDFSCountsAndWitnessKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is not short")
	}
	got := make(map[string]goldenRow)
	for _, b := range goldenBenchmarks() {
		r := RunDFS(Config{Program: b.New(), BoundsCheck: b.BoundsCheck,
			MaxSteps: b.MaxSteps, Limit: goldenLimit})
		row := goldenRow{
			Schedules:  r.Schedules,
			Executions: r.Executions,
			Complete:   r.Complete,
			BugFound:   r.BugFound,
		}
		if r.BugFound {
			row.WitnessKey = branchKeyOf(t, b.New(), r.Witness)
		}
		got[b.Name] = row
	}

	path := filepath.Join("testdata", "golden_dfs.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d rows", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	want := make(map[string]goldenRow)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
	for name, w := range want {
		g, here := got[name]
		if !here {
			t.Errorf("%s: in golden file but not in registry", name)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s:\n got %+v\nwant %+v", name, g, w)
		}
	}
	for name := range got {
		if _, pinned := want[name]; !pinned {
			t.Errorf("%s: benchmark not pinned in golden file (run with -update)", name)
		}
	}
}
