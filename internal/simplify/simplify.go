// Package simplify implements counterexample-trace simplification: given a
// buggy schedule, it searches for an equivalent witness with fewer
// preemptive context switches. §1 of the paper highlights exactly this as
// a benefit of schedule bounding ("a trace with a small number of
// preemptions is likely to be easy to understand", citing the trace
// simplification literature [Jalbert & Sen, FSE'10; Huang & Zhang,
// SAS'11]); this package brings the same benefit to witnesses found by
// unbounded or random search, whose traces are typically preemption-heavy.
//
// The algorithm is greedy block merging: the schedule is a sequence of
// maximal same-thread blocks; for each pair of blocks of the same thread,
// try the schedule with the later block moved up against the earlier one,
// validate the candidate by deterministic replay (it must remain feasible
// and still expose a failure), and keep it if the preemption count
// dropped. Iterate to a fixpoint.
package simplify

import (
	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// Options configures a minimisation.
type Options struct {
	// Visible/BoundsCheck/MaxSteps must match the exploration that
	// produced the witness: a schedule is only meaningful under the same
	// visibility.
	Visible     func(string) bool
	BoundsCheck bool
	MaxSteps    int
	// MaxRounds caps fixpoint iterations (0 = 16).
	MaxRounds int
}

// Result reports the minimised witness.
type Result struct {
	// Schedule is the simplified witness (possibly the original).
	Schedule sched.Schedule
	// PC and DC are the simplified witness's costs; OriginalPC is the
	// input's preemption count, for reporting the reduction.
	PC, DC, OriginalPC int
	// Failure is the bug the simplified witness exposes.
	Failure *vthread.Failure
	// Replays counts candidate validations performed.
	Replays int
	// Rounds counts fixpoint iterations.
	Rounds int
}

type block struct {
	thread sched.ThreadID
	n      int
}

func toBlocks(s sched.Schedule) []block {
	var out []block
	for _, t := range s {
		if len(out) > 0 && out[len(out)-1].thread == t {
			out[len(out)-1].n++
			continue
		}
		out = append(out, block{t, 1})
	}
	return out
}

func fromBlocks(bs []block) sched.Schedule {
	var out sched.Schedule
	for _, b := range bs {
		for i := 0; i < b.n; i++ {
			out = append(out, b.thread)
		}
	}
	return out
}

// replayCosts replays candidate on the shared executor and reports
// (feasible && buggy, outcome). The outcome is valid until the next replay;
// callers clone what they keep.
func replayCosts(ex *vthread.Executor, program vthread.Runnable, candidate sched.Schedule) (*vthread.Outcome, bool) {
	rep := vthread.NewReplay(candidate)
	out := ex.RunWith(rep, nil, program)
	if rep.Failed() || !out.Buggy() {
		return out, false
	}
	return out, true
}

// Minimize returns a witness for newProgram's bug with a preemption count
// no larger than the input's. newProgram must build a fresh program
// instance per call (replays re-execute it repeatedly).
func Minimize(newProgram func() vthread.Runnable, witness sched.Schedule, opts Options) *Result {
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 16
	}
	res := &Result{Schedule: witness.Clone()}
	ex := vthread.NewExecutor(vthread.Options{
		Visible:     opts.Visible,
		BoundsCheck: opts.BoundsCheck,
		MaxSteps:    opts.MaxSteps,
	})
	defer ex.Close()

	base, ok := replayCosts(ex, newProgram(), res.Schedule)
	if !ok {
		// Not a reproducible witness under these options: return as-is.
		res.PC, res.DC = -1, -1
		return res
	}
	// The replayed outcome's trace may be shorter than the input (a
	// failure truncates); adopt it — truncation alone often simplifies.
	res.Schedule = base.Trace.Clone()
	res.PC, res.DC = base.PC, base.DC
	res.OriginalPC = base.PC
	res.Failure = base.Failure

	if base.SelectPoints > 0 {
		// The witness interleaves select case-decision entries with thread
		// entries (vthread doc, "Case-decision points"). The block model
		// below would merge or relocate a case entry away from its
		// selecting thread's entry, so every candidate it builds replays
		// a case index as a thread choice at the wrong position and fails
		// validation. Return the replay-truncated witness rather than
		// burning replays on candidates that can never validate;
		// case-aware block merging is future work.
		return res
	}

	for round := 0; round < maxRounds; round++ {
		res.Rounds = round + 1
		improved := false
		blocks := toBlocks(res.Schedule)
		for i := 0; i < len(blocks) && !improved; i++ {
			for j := i + 1; j < len(blocks); j++ {
				if blocks[j].thread != blocks[i].thread {
					continue
				}
				// Candidate: pull block j up against block i.
				cand := make([]block, 0, len(blocks))
				cand = append(cand, blocks[:i+1]...)
				cand[len(cand)-1].n += blocks[j].n
				cand = append(cand, blocks[i+1:j]...)
				cand = append(cand, blocks[j+1:]...)
				candidate := fromBlocks(cand)
				res.Replays++
				out, ok := replayCosts(ex, newProgram(), candidate)
				if !ok || out.PC >= res.PC {
					continue
				}
				res.Schedule = out.Trace.Clone()
				res.PC, res.DC = out.PC, out.DC
				res.Failure = out.Failure
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return res
}
