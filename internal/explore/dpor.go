package explore

// Source-set style dynamic partial-order reduction (DPOR) for the
// unbounded depth-first search — the second layer of the pruning stack §7
// of the paper names as future work, on top of the sleep sets in
// sleepset.go. Following the paper's methodology note, POR stays out of
// the bounded IPB/IDB phases (the interaction of POR and schedule
// bounding "is complex and the topic of recent and ongoing work", §5).
//
// The algorithm is classic dynamic POR [Flanagan & Godefroid, POPL'05]
// combined with sleep sets [Godefroid '96], with the source-set framing of
// Abdulla et al. for the backtrack-point choice: instead of expanding
// every enabled sibling at a scheduling point (DFS), a node starts with a
// single choice and grows a *backtrack set* on demand. After every
// execution the engine walks the newly executed suffix; for each step it
// finds every earlier step by another thread whose operation is dependent
// (vthread.PendingInfo footprints) and not already ordered by the
// happens-before relation of the executed trace (computed with vector
// clocks over the same footprints, including spawn and join program-order
// edges). Each such pair is a reversible race: the racing thread joins
// the backtrack set of the earlier scheduling point (or, when it was not
// enabled there, every enabled thread does — the conservative source-set
// over-approximation). Sleep sets then prune the
// re-explorations that would only reproduce an already-covered
// Mazurkiewicz trace, and a run whose enabled threads are all asleep is
// chooser-aborted on the spot (vthread.Context.Abort), so detected
// redundancies cost their shared prefix only.
//
// The engine reuses the free-list discipline of engine/ssEngine: node
// buffers (order, infos, done/backtrack flags, sleep maps) and the
// race-analysis scratch (vector-clock rows, per-object access state) are
// recycled, so the replay-and-extend hot path allocates only while the
// stack or thread count grows past its high-water mark.

import (
	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// dporNode is one scheduling point on the DPOR stack. order/infos list the
// enabled threads (canonical order) and their pending-operation
// footprints; idx is the choice the current execution takes; done marks
// choices whose subtrees are fully explored (or, in the parallel driver,
// owned by another unit that will fully explore them); backtrack marks the
// choices this node must explore; sleep is the inherited sleep set.
type dporNode struct {
	order     []sched.ThreadID
	infos     []vthread.PendingInfo
	idx       int
	done      []bool
	backtrack []bool
	sleep     map[sched.ThreadID]vthread.PendingInfo
	// nthreads is the thread count at this scheduling point; a thread id
	// in [nthreads(i), nthreads(i+1)) was created by step i, which is how
	// the race analysis recovers spawn happens-before edges.
	nthreads int
	// selOf marks a case-decision node: the thread whose Select this node
	// picks a case for, or NoThread for an ordinary thread-choice node. At
	// a case node order holds ready *case indices*, so the sleep map —
	// keyed by thread ids — must never be consulted with (or extended by)
	// order entries, and every case is explored unconditionally: case
	// alternatives are distinct program behaviours of the selecting thread,
	// never Mazurkiewicz-equivalent, so no commutation argument can prune
	// them.
	selOf sched.ThreadID
}

// dporObj is the per-object access state of one happens-before pass:
// the last write step and the reads since it. run is the epoch that
// invalidates stale state without clearing the map between runs.
type dporObj struct {
	run       int
	lastWrite int
	reads     []int
}

// dporEngine is the DPOR driver; like engine and ssEngine it doubles as
// the vthread.Chooser of the executions it spawns.
type dporEngine struct {
	cfg  Config
	exec *vthread.Executor

	stack []dporNode
	// analyzeFrom is the shallowest stack depth whose taken step has not
	// been race-analyzed yet: 0 for a fresh engine, the advanced node's
	// depth after a backtrack, len(stack) right after an analysis.
	analyzeFrom int
	// borrowed marks the prefix [0, borrowed) as deep copies of a donor's
	// nodes (parallel driver): their retirement is not counted as pruning
	// here, because the donor retires (and counts) the originals.
	borrowed int

	executions int
	pruned     int
	maxThreads int

	// Free lists recycling retired nodes' buffers, as in engine/ssEngine.
	freeOrders [][]sched.ThreadID
	freeInfos  [][]vthread.PendingInfo
	freeFlags  [][]bool
	freeSleeps []map[sched.ThreadID]vthread.PendingInfo

	// Race-analysis scratch, persistent across runs. vc[i] is the vector
	// clock of step i (vc[i][t] = 1 + the latest step of thread t
	// happening-before-or-equal step i, 0 for none); prevOf[t] is thread
	// t's previous step during the forward pass; spawnOf[t] is the step
	// that created thread t (-1 for the initial thread), giving every
	// first step its spawn happens-before edge — without it, a child's
	// steps would look concurrent with everything before the spawn and
	// trigger spurious backtrack points; objs carries the per-object
	// last-write/readers state, epoch-invalidated by run.
	vc      [][]int32
	prevOf  []int
	spawnOf []int
	objs    map[string]*dporObj
	run     int
}

func newDPOREngine(cfg Config) *dporEngine {
	return &dporEngine{cfg: cfg, objs: make(map[string]*dporObj)}
}

// Choose implements vthread.Chooser: replay the stack prefix, extend the
// deepest branch with the first non-sleeping thread, or abort when sleep
// sets prove the whole subtree redundant.
func (e *dporEngine) Choose(ctx vthread.Context) sched.ThreadID {
	if ctx.Step < len(e.stack) {
		nd := &e.stack[ctx.Step]
		return nd.order[nd.idx]
	}
	if idx := e.push(ctx); idx >= 0 {
		return e.stack[len(e.stack)-1].order[idx]
	}
	return ctx.Enabled[0] // ignored by the abort contract
}

// ObserveForcedStep implements vthread.StepObserver: a forced step still
// needs its node — the race analysis reads the step's footprint and
// thread-count watermark from it, sleep sets propagate through it, and a
// single enabled thread can itself be asleep, in which case push aborts
// the run exactly as Choose would have. The backtrack set of a forced
// node can only ever hold its one thread: a race against a forced step
// re-runs the same choice, which the done flag then retires.
func (e *dporEngine) ObserveForcedStep(ctx vthread.Context) {
	if ctx.Step < len(e.stack) {
		return
	}
	e.push(ctx)
}

// push appends the fresh node for ctx and returns the index of the choice
// taken (the first non-sleeping thread), or -1 after aborting a run whose
// enabled threads are all asleep: the subtree is Mazurkiewicz-equivalent
// to explored schedules, so the run is cut short instead of executing its
// tail, and the node is never pushed.
func (e *dporEngine) push(ctx vthread.Context) int {
	if ctx.SelectOf != vthread.NoThread {
		return e.pushCase(ctx)
	}
	if ctx.NumThreads > e.maxThreads {
		e.maxThreads = ctx.NumThreads
	}
	order, infos := popOrderInfos(&e.freeOrders, &e.freeInfos, ctx)
	sleep := e.getSleep()
	if n := len(e.stack); n > 0 {
		dporChildSleep(&e.stack[n-1], sleep)
	}
	idx := -1
	for i, t := range order {
		if _, asleep := sleep[t]; !asleep {
			idx = i
			break
		}
	}
	if idx < 0 {
		ctx.Abort()
		e.pruned += len(order)
		e.freeOrders = append(e.freeOrders, order[:0])
		e.freeInfos = append(e.freeInfos, infos[:0])
		e.putSleep(sleep)
		return -1
	}
	done := e.getFlags(len(order))
	backtrack := e.getFlags(len(order))
	backtrack[idx] = true
	e.stack = append(e.stack, dporNode{
		order: order, infos: infos, idx: idx,
		done: done, backtrack: backtrack, sleep: sleep,
		nthreads: ctx.NumThreads, selOf: vthread.NoThread,
	})
	return idx
}

// pushCase appends the node of a case-decision point. Every ready case
// goes straight into the backtrack set — case choices are never redundant
// — and the sleep machinery is bypassed entirely: the inherited sleep set
// (thread-keyed) is carried through for the node's children but never
// consulted against the case indices in order. The node's thread count is
// the enclosing thread node's (ctx.NumThreads is the select's case count
// here), which keeps the spawn-watermark arithmetic of the race analysis
// exact.
func (e *dporEngine) pushCase(ctx vthread.Context) int {
	order, infos := popOrderInfos(&e.freeOrders, &e.freeInfos, ctx)
	sleep := e.getSleep()
	parent := &e.stack[len(e.stack)-1]
	dporChildSleep(parent, sleep)
	done := e.getFlags(len(order))
	backtrack := e.getFlags(len(order))
	for k := range backtrack {
		backtrack[k] = true
	}
	e.stack = append(e.stack, dporNode{
		order: order, infos: infos, idx: 0,
		done: done, backtrack: backtrack, sleep: sleep,
		nthreads: parent.nthreads, selOf: ctx.SelectOf,
	})
	return 0
}

// dporChildSleep fills dst with the sleep set a child of parent inherits:
// sleeping threads and fully explored siblings whose operations are
// independent of the branch being taken now. A case-decision parent
// contributes only its inherited sleep (already filtered by the full
// select footprint at the enclosing thread node, a superset of the
// committed case's channel): its siblings are case indices, not threads,
// and must never leak into a thread-keyed sleep map.
func dporChildSleep(parent *dporNode, dst map[sched.ThreadID]vthread.PendingInfo) {
	takenInfo := parent.infos[parent.idx]
	if parent.selOf != vthread.NoThread {
		for t, info := range parent.sleep {
			if info.Independent(takenInfo) {
				dst[t] = info
			}
		}
		return
	}
	taken := parent.order[parent.idx]
	for t, info := range parent.sleep {
		if t != taken && info.Independent(takenInfo) {
			dst[t] = info
		}
	}
	for k, isDone := range parent.done {
		if isDone && parent.infos[k].Independent(takenInfo) {
			dst[parent.order[k]] = parent.infos[k]
		}
	}
}

// runOnce executes the program once, replaying the stack prefix, then
// race-analyzes the newly executed steps to grow backtrack sets.
func (e *dporEngine) runOnce() *vthread.Outcome {
	e.executions++
	out := e.exec.RunWith(e, nil, e.cfg.Program)
	e.analyze()
	e.analyzeFrom = len(e.stack)
	return out
}

// analyze performs the DPOR race pass over the current stack: a forward
// happens-before computation with vector clocks over the executed steps'
// footprints, and, for every step not analyzed before, a backward scan
// for dependent-and-concurrent steps by other threads. Each such race
// adds a backtrack point at the earlier scheduling point. The forward
// pass deliberately recomputes clocks from step 0 each run rather than
// checkpointing per-depth state: the race scan alone is already O(new
// steps x depth), the pass reuses pooled buffers, and on the CS-scale
// traces the engine targets the whole analysis is a small fraction of
// the execution it annotates.
func (e *dporEngine) analyze() {
	n := len(e.stack)
	if n == 0 || e.analyzeFrom >= n {
		return
	}
	e.run++
	nt := e.maxThreads
	e.ensureScratch(n, nt)
	for t := 0; t < nt; t++ {
		e.prevOf[t] = -1
		e.spawnOf[t] = -1
	}
	for i := 0; i < n; i++ {
		nd := &e.stack[i]
		p := int(nd.order[nd.idx])
		info := nd.infos[nd.idx]
		isCase := nd.selOf != vthread.NoThread
		if isCase {
			// A case-decision node is the second half of its select step:
			// attribute it to the selecting thread with no footprint of its
			// own. The enclosing thread node already carries the full member-
			// channel footprint (and recorded the writes), so every
			// dependence edge and race involving the select lands there —
			// where other threads were actual alternatives.
			p = int(nd.selOf)
			info = vthread.PendingInfo{}
		}
		// Threads first seen at the next scheduling point were created by
		// this step: record the spawn edge source.
		if i+1 < n {
			for t := nd.nthreads; t < e.stack[i+1].nthreads && t < nt; t++ {
				e.spawnOf[t] = i
			}
		}
		v := e.vc[i][:nt]
		for t := range v {
			v[t] = 0
		}
		if pp := e.prevOf[p]; pp >= 0 {
			joinVC(v, e.vc[pp][:nt])
		} else if sp := e.spawnOf[p]; sp >= 0 {
			joinVC(v, e.vc[sp][:nt]) // spawn happens-before the first step
		}
		// A join is ordered after every step of the joined thread (its
		// exit is not a scheduling point, so no object edge covers this).
		if info.IsJoin {
			if tgt := int(info.JoinOf); tgt >= 0 && tgt < nt {
				if tp := e.prevOf[tgt]; tp >= 0 {
					joinVC(v, e.vc[tp][:nt])
				}
			}
		}
		// Dependence edges from the per-object access history.
		for k := 0; k < info.Objects.Len(); k++ {
			st := e.obj(info.Objects.Obj(k))
			if st.lastWrite >= 0 {
				joinVC(v, e.vc[st.lastWrite][:nt])
			}
			if !info.ReadOnly {
				for _, rj := range st.reads {
					joinVC(v, e.vc[rj][:nt])
				}
			}
		}

		if i >= e.analyzeFrom && !isCase {
			e.addRaceBacktracks(i, p, info, nt)
		}

		// Update the access history and close the step's clock.
		for k := 0; k < info.Objects.Len(); k++ {
			st := e.obj(info.Objects.Obj(k))
			if info.ReadOnly {
				st.reads = append(st.reads, i)
			} else {
				st.lastWrite = i
				st.reads = st.reads[:0]
			}
		}
		v[p] = int32(i + 1)
		e.prevOf[p] = i
	}
}

// addRaceBacktracks scans backwards from step i (thread p, footprint
// info) and adds a backtrack point at every earlier step by another
// thread whose operation is dependent with i's and not already ordered
// before p by the happens-before relation of the trace. Considering every
// race of the trace — not only the most recent per step — is the
// source-set style formulation; it is what keeps the scan sound without a
// may-be-co-enabled oracle: the classic "last dependent step only" rule
// would let a release operation (never co-enabled with the acquire it
// unblocks, hence never reversible) shadow the reversible acquire-acquire
// race behind it.
func (e *dporEngine) addRaceBacktracks(i, p int, info vthread.PendingInfo, nt int) {
	// p's pre-state clock: its previous step, or the step that spawned it;
	// nil only for the initial thread's first step.
	var pre []int32
	if pp := e.prevOf[p]; pp >= 0 {
		pre = e.vc[pp][:nt]
	} else if sp := e.spawnOf[p]; sp >= 0 {
		pre = e.vc[sp][:nt]
	}
	for j := i - 1; j >= 0; j-- {
		ndj := &e.stack[j]
		if ndj.selOf != vthread.NoThread {
			// A case node has no footprint of its own and no thread
			// alternatives to reverse into; the race against its select, if
			// any, is found at the enclosing thread node right above it.
			continue
		}
		q := int(ndj.order[ndj.idx])
		if q == p {
			continue // program order, never reversible
		}
		if ndj.infos[ndj.idx].Independent(info) {
			continue
		}
		if pre != nil && pre[q] >= int32(j+1) {
			continue // already ordered before p's step by other dependences
		}
		// Reversible race (j, i): thread p must be tried at point j — or,
		// when p was not enabled there, every enabled thread must (the
		// conservative source-set over-approximation).
		hit := false
		for k, t := range ndj.order {
			if int(t) == p {
				ndj.backtrack[k] = true
				hit = true
				break
			}
		}
		if !hit {
			for k := range ndj.backtrack {
				ndj.backtrack[k] = true
			}
		}
	}
}

// backtrack advances the search to the next required branch — the first
// backtrack-set member at the deepest node that is neither explored nor
// asleep — popping exhausted nodes, and returns false when the reduced
// space is exhausted.
func (e *dporEngine) backtrack() bool {
	for len(e.stack) > 0 {
		d := len(e.stack) - 1
		nd := &e.stack[d]
		nd.done[nd.idx] = true
		next := -1
		for k := range nd.order {
			if !nd.backtrack[k] || nd.done[k] {
				continue
			}
			// Case nodes never consult the (thread-keyed) sleep map: every
			// ready case is explored.
			if nd.selOf == vthread.NoThread {
				if _, asleep := nd.sleep[nd.order[k]]; asleep {
					continue
				}
			}
			next = k
			break
		}
		if next >= 0 {
			nd.idx = next
			e.analyzeFrom = d
			return true
		}
		// Retire the node; every choice never explored is a subtree DFS
		// would have walked. Borrowed prefix copies are the donor's to
		// count.
		if d >= e.borrowed {
			for k := range nd.order {
				if !nd.done[k] {
					e.pruned++
				}
			}
		}
		e.freeOrders = append(e.freeOrders, nd.order[:0])
		e.freeInfos = append(e.freeInfos, nd.infos[:0])
		e.freeFlags = append(e.freeFlags, nd.done[:0], nd.backtrack[:0])
		e.putSleep(nd.sleep)
		nd.order, nd.infos, nd.done, nd.backtrack, nd.sleep = nil, nil, nil, nil, nil
		e.stack = e.stack[:d]
	}
	return false
}

// Buffer pools.

func (e *dporEngine) getFlags(n int) []bool {
	var f []bool
	if m := len(e.freeFlags); m > 0 {
		f, e.freeFlags = e.freeFlags[m-1], e.freeFlags[:m-1]
	}
	for i := 0; i < n; i++ {
		f = append(f, false)
	}
	return f
}

func (e *dporEngine) getSleep() map[sched.ThreadID]vthread.PendingInfo {
	if n := len(e.freeSleeps); n > 0 {
		s := e.freeSleeps[n-1]
		e.freeSleeps = e.freeSleeps[:n-1]
		return s
	}
	return make(map[sched.ThreadID]vthread.PendingInfo)
}

func (e *dporEngine) putSleep(s map[sched.ThreadID]vthread.PendingInfo) {
	clear(s)
	e.freeSleeps = append(e.freeSleeps, s)
}

// ensureScratch sizes the vector-clock rows for n steps of nt threads.
func (e *dporEngine) ensureScratch(n, nt int) {
	for len(e.vc) < n {
		e.vc = append(e.vc, nil)
	}
	for i := 0; i < n; i++ {
		if cap(e.vc[i]) < nt {
			e.vc[i] = make([]int32, nt)
		}
		e.vc[i] = e.vc[i][:nt]
	}
	if cap(e.prevOf) < nt {
		e.prevOf = make([]int, nt)
	}
	e.prevOf = e.prevOf[:nt]
	if cap(e.spawnOf) < nt {
		e.spawnOf = make([]int, nt)
	}
	e.spawnOf = e.spawnOf[:nt]
}

// obj returns the epoch-validated access state of an object key.
func (e *dporEngine) obj(key string) *dporObj {
	st := e.objs[key]
	if st == nil {
		st = &dporObj{}
		e.objs[key] = st
	}
	if st.run != e.run {
		st.run = e.run
		st.lastWrite = -1
		st.reads = st.reads[:0]
	}
	return st
}

func joinVC(dst, src []int32) {
	for t := range dst {
		if src[t] > dst[t] {
			dst[t] = src[t]
		}
	}
}

// RunDPOR performs unbounded depth-first search with source-set style
// dynamic partial-order reduction plus sleep sets. It explores at most the
// schedules sleep-set DFS would (one representative per Mazurkiewicz trace
// in the best case), reaching the same failure verdicts as RunDFS with —
// typically dramatically — fewer executions, and chooser-aborts the
// redundant runs it does start. With cfg.Workers > 1 the reduced tree is
// explored by the work-stealing pool (see parallel.go); parallel counts
// are exact when no work was stolen and may otherwise include duplicated
// equivalence classes, but the bug verdict is preserved either way.
func RunDPOR(cfg Config) *Result {
	if cfg.Workers > 1 {
		return runDPORParallel(cfg)
	}
	cfg = cfg.withDefaults()
	return runSequentialTree(cfg, &Result{Technique: DPOR}, newDPOREngine(cfg))
}
