package vthread

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// executorTestProgram exercises spawn/join, mutexes and shared variables —
// enough surface that World-vs-Executor divergence in any handoff path
// would change the trace.
var executorTestProgram Program = func(t0 *Thread) {
	m := t0.NewMutex("m")
	v := t0.NewVar("v", 0)
	worker := func(tw *Thread) {
		m.Lock(tw)
		v.Add(tw, 1)
		m.Unlock(tw)
		v.Store(tw, v.Load(tw)+1)
	}
	a := t0.Spawn(worker)
	b := t0.Spawn(worker)
	t0.Join(a)
	t0.Join(b)
	t0.Assert(v.Load(t0) >= 2, "lost updates: %d", v.Load(t0))
}

// deadlockProgram leaves three children blocked on a mutex the exiting
// root still holds, so every run ends in teardown kills.
var deadlockProgram Program = func(t0 *Thread) {
	m := t0.NewMutex("m")
	m.Lock(t0)
	for i := 0; i < 3; i++ {
		t0.Spawn(func(tc *Thread) {
			m.Lock(tc)
			m.Unlock(tc)
		})
	}
}

func outcomesEqual(a, b *Outcome) bool {
	if !a.Trace.Equal(b.Trace) || a.PC != b.PC || a.DC != b.DC ||
		a.SchedPoints != b.SchedPoints || a.SelectPoints != b.SelectPoints ||
		a.TimerPoints != b.TimerPoints || a.MaxEnabled != b.MaxEnabled ||
		a.Threads != b.Threads || a.StepLimitHit != b.StepLimitHit ||
		a.Aborted != b.Aborted {
		return false
	}
	if (a.Failure == nil) != (b.Failure == nil) {
		return false
	}
	if a.Failure != nil && a.Failure.Kind != b.Failure.Kind {
		return false
	}
	return true
}

// TestExecutorMatchesWorldAcrossReuse pins the core Executor contract: a
// reused Executor produces outcomes bit-identical to a fresh World per
// run, for clean, buggy and deadlocking executions alike.
func TestExecutorMatchesWorldAcrossReuse(t *testing.T) {
	programs := []Program{executorTestProgram, deadlockProgram}
	for pi, prog := range programs {
		ex := NewExecutor(Options{})
		for seed := uint64(0); seed < 50; seed++ {
			want := NewWorld(Options{Chooser: NewRandom(seed)}).Run(prog)
			got := ex.RunWith(NewRandom(seed), nil, prog)
			if !outcomesEqual(want, got) {
				t.Fatalf("program %d seed %d: executor outcome differs\n got %+v\nwant %+v",
					pi, seed, got, want)
			}
		}
		ex.Close()
	}
}

// TestExecutorTraceAliasingRegression pins the documented aliasing
// contract: the Outcome (and its Trace) returned by a run is overwritten
// by the next run, so retaining callers must clone. This is the regression
// test for the reuse hazard that buffer recycling introduced.
func TestExecutorTraceAliasingRegression(t *testing.T) {
	// lastEnabled picks the highest-id enabled thread: maximally different
	// from round-robin from the first contested point on.
	lastEnabled := ChooserFunc(func(ctx Context) ThreadID {
		return ctx.Enabled[len(ctx.Enabled)-1]
	})

	wantRR := NewWorld(Options{Chooser: RoundRobin()}).Run(executorTestProgram)
	wantLE := NewWorld(Options{Chooser: lastEnabled}).Run(executorTestProgram)
	if wantRR.Trace.Equal(wantLE.Trace) {
		t.Fatal("test premise broken: the two choosers produced the same trace")
	}

	ex := NewExecutor(Options{})
	defer ex.Close()

	out1 := ex.RunWith(RoundRobin(), nil, executorTestProgram)
	retained := out1.Trace // aliasing misuse: kept across the next run
	cloned := out1.Trace.Clone()

	out2 := ex.RunWith(lastEnabled, nil, executorTestProgram)
	if out1 != out2 {
		t.Error("Executor is documented to reuse its Outcome; pointers differ")
	}
	if !cloned.Equal(wantRR.Trace) {
		t.Errorf("cloned trace corrupted by reuse: %v, want %v", cloned, wantRR.Trace)
	}
	if !out2.Trace.Equal(wantLE.Trace) {
		t.Errorf("second run trace %v, want %v", out2.Trace, wantLE.Trace)
	}
	// The hazard is real: the retained alias was rewritten in place.
	if retained.Equal(wantRR.Trace) {
		t.Error("retained (un-cloned) trace still matches run 1: buffer was not recycled, aliasing contract is stale")
	}
}

// TestExecutorReuseWhileRunningPanics pins the in-flight guard: calling
// back into the Executor from inside one of its own runs must panic, not
// corrupt state.
func TestExecutorReuseWhileRunningPanics(t *testing.T) {
	// No Close: a panic mid-run leaves the Executor (deliberately)
	// unusable — its in-flight workers never finish, so Close would block.
	// The few leaked goroutines are confined to this test process.
	ex := NewExecutor(Options{})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("reentrant Executor run did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "in flight") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	reenter := ChooserFunc(func(ctx Context) ThreadID {
		ex.RunWith(RoundRobin(), nil, executorTestProgram)
		return ctx.Enabled[0]
	})
	ex.RunWith(reenter, nil, executorTestProgram)
}

// TestExecutorKilledPoolDrainsNoGoroutineLeak pins the pool's teardown
// path: 10k executions that all end in killed (deadlocked) threads must
// not grow the goroutine count — the killed workers return to the pool —
// and Close must release the pool entirely.
func TestExecutorKilledPoolDrainsNoGoroutineLeak(t *testing.T) {
	start := runtime.NumGoroutine()
	ex := NewExecutor(Options{Chooser: RoundRobin()})

	out := ex.Run(deadlockProgram)
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("expected deadlock, got %v", out.Failure)
	}
	base := runtime.NumGoroutine()

	for i := 0; i < 10000; i++ {
		out := ex.Run(deadlockProgram)
		if out.Failure == nil || out.Failure.Kind != FailDeadlock {
			t.Fatalf("run %d: expected deadlock, got %v", i, out.Failure)
		}
		if out.Threads != 4 {
			t.Fatalf("run %d: %d threads, want 4", i, out.Threads)
		}
	}
	if now := runtime.NumGoroutine(); now > base+2 {
		t.Fatalf("goroutines grew across 10k pooled executions: %d -> %d", base, now)
	}

	ex.Close()
	// Close waits for the workers' final Done, but the goroutines may need
	// a beat to fully unwind before NumGoroutine reflects it.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > start+1 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > start+1 {
		t.Fatalf("pool not drained by Close: %d goroutines, started with %d", now, start)
	}
}

// TestExecutorCloseSemantics: Close is idempotent and running after Close
// panics.
func TestExecutorCloseSemantics(t *testing.T) {
	ex := NewExecutor(Options{Chooser: RoundRobin()})
	ex.Run(executorTestProgram)
	ex.Close()
	ex.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("run after Close did not panic")
		}
	}()
	ex.Run(executorTestProgram)
}

// TestExecutorRunWithoutChooserPanics: an Executor built without a default
// chooser must reject Run (but accept RunWith).
func TestExecutorRunWithoutChooserPanics(t *testing.T) {
	ex := NewExecutor(Options{})
	defer ex.Close()
	out := ex.RunWith(RoundRobin(), nil, executorTestProgram)
	if out.Failure != nil {
		t.Fatalf("round-robin run failed: %v", out.Failure)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Run without a chooser did not panic")
		}
	}()
	ex.Run(executorTestProgram)
}

// TestExecutorSinkAndVisibleHonoured: per-run sinks observe exactly their
// own run, and the configured Visible predicate applies across reuse.
func TestExecutorSinkAndVisibleHonoured(t *testing.T) {
	prog := Program(func(t0 *Thread) {
		v := t0.NewVar("v", 0)
		h := t0.NewVar("hidden", 0)
		v.Store(t0, 1)
		h.Store(t0, 1)
	})
	ex := NewExecutor(Options{Visible: func(key string) bool { return key == "var/v" }})
	defer ex.Close()
	for i := 0; i < 3; i++ {
		log := NewTraceLogger()
		out := ex.RunWith(RoundRobin(), log, prog)
		if len(out.Trace) != 1 {
			t.Fatalf("run %d: trace %v, want exactly the one visible store", i, out.Trace)
		}
		if !strings.Contains(log.String(), "var/v") {
			t.Fatalf("run %d: sink missed the visible access:\n%s", i, log.String())
		}
	}
}
