package study

// Swarm sampling: the technique × bound × seed sweep behind `sctbench
// -swarm`. Where RunStudy evaluates the paper's fixed pipeline once per
// benchmark, RunSwarm covers a grid of configurations — every technique at
// every requested iterative bound under every seed — and (optionally)
// funnels every witness found into a shared schedule corpus, so later runs
// replay-first instead of searching cold.
//
// Determinism contract: the swarm's output is a pure function of
// (benchmarks, SwarmConfig seeds/bounds/techniques/limit) — repeated runs
// with the same inputs produce identical cells, byte-for-byte identical
// CSV. Two design points make that hold even with a live corpus:
//
//   - Parallelism is per benchmark only. Corpus entries are keyed by the
//     program's content hash, which is unique per benchmark, so
//     concurrently running benchmarks never touch the same entry.
//   - Within one benchmark, cells run in a fixed seed → technique → bound
//     order, so the sequence of corpus reads and writes for that entry is
//     deterministic.
//
// (Byte-identical CSV across *separate* swarm invocations additionally
// requires starting from the same corpus state — the CI smoke uses a fresh
// corpus dir per run.)

import (
	"runtime"
	"sort"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/corpus"
	"sctbench/internal/explore"
	"sctbench/internal/race"
	"sctbench/internal/vthread"
)

// SwarmConfig parameterises a swarm sweep.
type SwarmConfig struct {
	// Techniques to sweep (nil = the four study phases: IPB, IDB, DFS,
	// Rand).
	Techniques []explore.Technique
	// Bounds is the iterative-bound sweep axis, applied to the bounded
	// techniques (IPB, IDB) as explore.Config.MaxBound. Unbounded
	// techniques ignore the axis and run one cell per seed at bound 0.
	// Nil means {0} (the explore default cap).
	Bounds []int
	// Seeds is the seed axis; every cell's race phase and exploration
	// seeds derive from its entry. Nil means {1, 2, 3, 4, 5}.
	Seeds []uint64
	// Limit is the terminal-schedule budget per cell (0 = explore.DefaultLimit).
	Limit int
	// RaceRuns is the per-(benchmark, seed) race-detection run count
	// (0 = race.DefaultRuns).
	RaceRuns int
	// Parallelism bounds concurrent benchmark evaluations (0 = GOMAXPROCS).
	// Cells of one benchmark always run sequentially; see the determinism
	// contract above.
	Parallelism int
	// Workers is the per-exploration worker count (explore.Config.Workers).
	Workers int
	// Debug forwards the substrate kill switches to every cell.
	Debug vthread.Debug
	// Interrupt and Deadline truncate the sweep: benchmarks not yet
	// started are skipped (their cells carry a nil Result), benchmarks in
	// flight finish their current cell dirty and skip the rest.
	Interrupt <-chan struct{}
	Deadline  time.Time
	// Corpus, when non-nil, turns every cell replay-first: stored
	// witnesses are replayed before the search and every fresh witness is
	// minimised and written back under the benchmark's content hash.
	Corpus *corpus.Store
	// Progress, when non-nil, receives one line per completed cell.
	Progress func(format string, args ...any)
}

func (c SwarmConfig) withDefaults() SwarmConfig {
	if c.Techniques == nil {
		c.Techniques = []explore.Technique{explore.IPB, explore.IDB, explore.DFS, explore.Rand}
	}
	if c.Bounds == nil {
		c.Bounds = []int{0}
	}
	if c.Seeds == nil {
		c.Seeds = []uint64{1, 2, 3, 4, 5}
	}
	if c.Limit == 0 {
		c.Limit = explore.DefaultLimit
	}
	if c.RaceRuns == 0 {
		c.RaceRuns = race.DefaultRuns
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// SwarmCell is one point of the sweep grid: one benchmark under one
// technique, bound and seed.
type SwarmCell struct {
	Bench     *bench.Benchmark
	Technique explore.Technique
	// Bound is the MaxBound cap this cell ran under (0 = explore default;
	// always 0 for the unbounded techniques).
	Bound int
	// Seed is the sweep-axis seed; the cell's race-phase and exploration
	// seeds derive from it via seedFor.
	Seed uint64
	// Racy is the promoted-variable count of the cell's race phase.
	Racy int
	// Result is the exploration outcome, nil when the cell was skipped by
	// an interrupt or deadline before it started.
	Result *explore.Result
}

// bounded reports whether the technique consumes the bound axis.
func bounded(t explore.Technique) bool {
	return t == explore.IPB || t == explore.IDB
}

// cellBounds returns the bound axis for one technique: the configured
// sweep for bounded techniques, the single default cell otherwise.
func cellBounds(t explore.Technique, bounds []int) []int {
	if bounded(t) {
		return bounds
	}
	return []int{0}
}

// RunSwarm sweeps the grid over the given benchmarks (all of SCTBench when
// benches is nil). Cells come back in canonical (benchmark id, technique,
// bound, seed) order — the CSV row order — regardless of execution order.
func RunSwarm(benches []*bench.Benchmark, cfg SwarmConfig) []*SwarmCell {
	cfg = cfg.withDefaults()
	if benches == nil {
		benches = bench.All()
	}

	stopped := func() bool {
		if cfg.Interrupt != nil {
			select {
			case <-cfg.Interrupt:
				return true
			default:
			}
		}
		return !cfg.Deadline.IsZero() && !time.Now().Before(cfg.Deadline)
	}

	perBench := make([][]*SwarmCell, len(benches))
	sem := make(chan struct{}, cfg.Parallelism)
	done := make(chan struct{})
	for i, b := range benches {
		go func(i int, b *bench.Benchmark) {
			defer func() { done <- struct{}{} }()
			sem <- struct{}{}
			defer func() { <-sem }()
			perBench[i] = runSwarmBench(b, cfg, stopped)
		}(i, b)
	}
	for range benches {
		<-done
	}

	var cells []*SwarmCell
	for _, bc := range perBench {
		cells = append(cells, bc...)
	}
	sort.SliceStable(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Bench.ID != b.Bench.ID {
			return a.Bench.ID < b.Bench.ID
		}
		if a.Technique != b.Technique {
			return a.Technique < b.Technique
		}
		if a.Bound != b.Bound {
			return a.Bound < b.Bound
		}
		return a.Seed < b.Seed
	})
	return cells
}

// runSwarmBench runs every cell of one benchmark, sequentially, in the
// fixed seed → technique → bound order the determinism contract pins.
func runSwarmBench(b *bench.Benchmark, cfg SwarmConfig, stopped func() bool) []*SwarmCell {
	hash := ""
	if cfg.Corpus != nil {
		hash = b.Hash()
	}
	var cells []*SwarmCell
	for _, seed := range cfg.Seeds {
		if stopped() {
			// Skipped seeds still contribute their grid cells, so the
			// caller can see exactly what a truncated sweep deferred.
			for _, tech := range cfg.Techniques {
				for _, bound := range cellBounds(tech, cfg.Bounds) {
					cells = append(cells, &SwarmCell{Bench: b, Technique: tech, Bound: bound, Seed: seed})
				}
			}
			continue
		}

		// One race phase per (benchmark, seed): the seed axis reshuffles
		// the detection runs, so the promoted set — and through it even the
		// deterministic techniques — genuinely varies across the axis.
		phase := race.RunPhase(race.PhaseConfig{
			Program:     b.New(),
			Runs:        cfg.RaceRuns,
			Seed:        seedFor(seed, b.ID, 1),
			MaxSteps:    b.MaxSteps,
			BoundsCheck: b.BoundsCheck,
		})
		visible := race.Promoted(phase.Racy)

		for _, tech := range cfg.Techniques {
			for _, bound := range cellBounds(tech, cfg.Bounds) {
				cell := &SwarmCell{Bench: b, Technique: tech, Bound: bound, Seed: seed, Racy: len(phase.Racy)}
				if stopped() {
					cells = append(cells, cell)
					continue
				}
				cell.Result = explore.Run(tech, explore.Config{
					Program:     b.New(),
					Visible:     visible,
					BoundsCheck: b.BoundsCheck,
					MaxSteps:    b.MaxSteps,
					Limit:       cfg.Limit,
					Seed:        seedFor(seed, b.ID, 2+uint64(tech)),
					MaxBound:    bound,
					Workers:     cfg.Workers,
					Debug:       cfg.Debug,
					Interrupt:   cfg.Interrupt,
					Deadline:    cfg.Deadline,
					Corpus:      cfg.Corpus,
					ProgramHash: hash,
					Meta:        explore.CheckpointMeta{Benchmark: b.Name, Racy: phase.Racy},
				})
				cells = append(cells, cell)
				if cfg.Progress != nil {
					r := cell.Result
					cfg.Progress("%s: %s bound=%d seed=%d done (bug=%v first=%d execs=%d hit=%v)",
						b.Name, tech, bound, seed, r.BugFound, r.SchedulesToFirstBug, r.Executions, r.CorpusHit)
				}
			}
		}
	}
	return cells
}
