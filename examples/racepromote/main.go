// racepromote demonstrates the study's race-detection phase (§5): ten
// uncontrolled executions under a vector-clock detector decide which
// variables become scheduling points, and the systematic phases explore
// only the interleavings of those promoted accesses — the reduction that
// makes SCT tractable on programs with lots of well-synchronised state.
//
//	go run ./examples/racepromote
package main

import (
	"fmt"

	sctbench "sctbench"
)

func program() sctbench.Program {
	return func(t *sctbench.Thread) {
		m := t.NewMutex("m")
		safe := t.NewVar("safeCounter", 0) // always locked: no race
		racy := t.NewVar("racyFlag", 0)    // ad-hoc signalling: racy
		worker := func(w *sctbench.Thread) {
			for i := 0; i < 3; i++ {
				m.Lock(w)
				safe.Add(w, 1)
				m.Unlock(w)
			}
			racy.Store(w, 1) // unsynchronised publish
		}
		a := t.Spawn(worker)
		b := t.Spawn(worker)
		t.Join(a)
		t.Join(b)
		t.Assert(safe.Load(t) == 6, "locked counter corrupted: %d", safe.Load(t))
	}
}

func main() {
	// Phase 1: dynamic race detection over 10 random executions.
	racy := sctbench.DetectRaces(program(), 10, 42)
	fmt.Println("racy variables (promoted to visible operations):")
	for _, k := range racy {
		fmt.Println("  ", k)
	}

	// Phase 2: systematic exploration with only the racy accesses (plus
	// all synchronisation) as scheduling points.
	promoted := sctbench.Explore(sctbench.IDB, sctbench.Config{
		Program: program(),
		Visible: sctbench.Promote(racy),
	})
	// Versus: everything visible (what a naive tool would do).
	everything := sctbench.Explore(sctbench.IDB, sctbench.Config{Program: program()})

	fmt.Printf("\nschedules to exhaust the space, promoted accesses only: %d (complete=%v)\n",
		promoted.Schedules, promoted.Complete)
	fmt.Printf("schedules explored with every access visible:           %d (complete=%v)\n",
		everything.Schedules, everything.Complete)
	fmt.Println("\nthe locked counter never yields a scheduling point in the promoted run,")
	fmt.Println("which is why the paper's detection phase exists (§5).")
}
