// Package explore implements the systematic and random exploration drivers
// of the study (§5): unbounded depth-first search (DFS), iterative
// preemption bounding (IPB), iterative delay bounding (IDB) and the naive
// random scheduler (Rand), plus the schedule-limit accounting that Table 3
// of the paper reports, and the §7 partial-order-reduction extensions:
// sleep-set DFS (sleepset.go) and source-set dynamic partial-order
// reduction (dpor.go), both of which cut detected-redundant runs short
// through the substrate's chooser-abort path. Every technique driver runs
// sequentially by default and as a work-partitioned worker pool when
// Config.Workers > 1 (see parallel.go), with identical schedule counts
// either way for DFS/IPB/IDB/Rand (DPOR preserves verdicts; its counts
// are exact unless work was stolen).
package explore

import (
	"fmt"

	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// CostModel selects which schedule cost a bounded search prunes on.
type CostModel int

const (
	// CostNone disables pruning (unbounded DFS).
	CostNone CostModel = iota
	// CostPreemptions prunes on the preemption count PC (§2).
	CostPreemptions
	// CostDelays prunes on the delay count DC over the non-preemptive
	// round-robin deterministic scheduler (§2).
	CostDelays
)

// String returns the cost-model name.
func (c CostModel) String() string {
	switch c {
	case CostNone:
		return "none"
	case CostPreemptions:
		return "preemptions"
	case CostDelays:
		return "delays"
	}
	return "unknown"
}

// node is one scheduling point on the DFS stack: the canonical choice
// order, the incremental cost of each choice, and which choice the current
// execution takes. hi is the last choice index this engine owns; a fresh
// node owns the whole order (hi = len(order)-1), while the parallel driver
// pins prefix nodes (hi = idx, no alternatives) and restricts a donated
// sibling range (idx..hi) so disjoint engines partition the tree.
type node struct {
	order []sched.ThreadID
	costs []int
	idx   int
	hi    int
	base  int // cumulative cost of the prefix strictly before this point
}

// engine is a depth-first stateless-search driver. It doubles as the
// vthread.Chooser of the executions it spawns: each execution replays the
// choices on the stack and extends the deepest branch; backtracking advances
// the deepest node with an untried (and, under a bound, affordable)
// alternative.
type engine struct {
	cfg   Config
	model CostModel
	bound int // ignored when model == CostNone

	// exec runs this engine's executions. It is owned by the driver (one
	// per sequential run, one per pool worker in the parallel driver) and
	// assigned before the first runOnce; engines donated between workers
	// are re-pointed at the stealing worker's executor.
	exec *vthread.Executor

	stack   []node
	running int // cumulative cost of the current execution so far

	// freeOrders and freeCosts recycle the per-node order/costs buffers:
	// backtrack pushes a popped node's slices here and Choose pops them for
	// the next fresh node, so the replay-and-extend hot path allocates only
	// while the stack grows past its high-water mark.
	freeOrders [][]sched.ThreadID
	freeCosts  [][]int

	// pruned records that some alternative was skipped because it exceeded
	// the bound; if a bounded pass completes without pruning, the whole
	// schedule space has been explored.
	pruned bool

	executions int
}

func newEngine(cfg Config, model CostModel, bound int) *engine {
	return &engine{cfg: cfg, model: model, bound: bound}
}

// newExecutor builds the reusable execution context every driver in this
// package runs programs on. Callers own it and must Close it.
func newExecutor(cfg Config) *vthread.Executor {
	return vthread.NewExecutor(vthread.Options{
		Visible:     cfg.Visible,
		MaxSteps:    cfg.MaxSteps,
		BoundsCheck: cfg.BoundsCheck,
		Debug:       cfg.Debug,
	})
}

// Choose implements vthread.Chooser.
func (e *engine) Choose(ctx vthread.Context) sched.ThreadID {
	if ctx.Step < len(e.stack) {
		nd := &e.stack[ctx.Step]
		e.running = nd.base + nd.costs[nd.idx]
		return nd.order[nd.idx]
	}
	return e.push(ctx)
}

// ObserveForcedStep implements vthread.StepObserver: a forced step is a
// single-choice node. Pushing it keeps the stack depth equal to the trace
// length — the invariant the replay path (ctx.Step < len(stack)) indexes
// by — and keeps the branch bookkeeping bit-identical to a fast-path-off
// search; a one-element node simply never has alternatives to backtrack
// into. Forced steps always have incremental cost zero under both models
// (with one enabled thread, the choice is the deterministic scheduler's
// pick and cannot preempt), which push's canonical-first sanity check
// re-verifies.
func (e *engine) ObserveForcedStep(ctx vthread.Context) {
	if ctx.Step < len(e.stack) {
		nd := &e.stack[ctx.Step]
		e.running = nd.base + nd.costs[nd.idx]
		return
	}
	e.push(ctx)
}

// push records the fresh node for ctx, advances the running cost, and
// returns the choice taken (the canonical first).
func (e *engine) push(ctx vthread.Context) sched.ThreadID {
	var order []sched.ThreadID
	if n := len(e.freeOrders); n > 0 {
		order, e.freeOrders = e.freeOrders[n-1], e.freeOrders[:n-1]
	}
	order = sched.AppendCanonicalOrder(order, ctx.Enabled, ctx.Last, ctx.NumThreads)
	var costs []int
	if n := len(e.freeCosts); n > 0 {
		costs, e.freeCosts = e.freeCosts[n-1], e.freeCosts[:n-1]
	}
	for _, t := range order {
		costs = append(costs, e.stepCost(ctx, t))
	}
	nd := node{order: order, costs: costs, hi: len(order) - 1, base: e.running}
	// The canonical first choice is the deterministic scheduler's pick and
	// always has incremental cost zero under both models, so it is never
	// pruned.
	if costs[0] != 0 && e.model != CostNone {
		panic(fmt.Sprintf("explore: canonical first choice has nonzero cost %d", costs[0]))
	}
	e.stack = append(e.stack, nd)
	e.running = nd.base + costs[0]
	return order[0]
}

// stepCost is the incremental schedule cost of picking choice at ctx.
func (e *engine) stepCost(ctx vthread.Context, choice sched.ThreadID) int {
	switch e.model {
	case CostPreemptions:
		return sched.PCStep(ctx.Last, ctx.LastEnabled, choice)
	case CostDelays:
		return sched.DCStep(ctx.Last, choice, ctx.NumThreads, func(t sched.ThreadID) bool {
			for _, x := range ctx.Enabled {
				if x == t {
					return true
				}
			}
			return false
		})
	default:
		return 0
	}
}

// runOnce executes the program once on the engine's executor, replaying
// the stack prefix. The returned Outcome is valid until the next run on
// the same executor (clone the trace to retain it).
func (e *engine) runOnce() *vthread.Outcome {
	e.running = 0
	e.executions++
	out := e.exec.RunWith(e, nil, e.cfg.Program)
	e.checkCost(out)
	return out
}

// checkCost cross-validates the engine's running cost against the world's
// independent online accounting; a mismatch means the cost model and the
// substrate disagree, which is an implementation bug worth failing fast on.
func (e *engine) checkCost(out *vthread.Outcome) {
	if out.StepLimitHit {
		return
	}
	switch e.model {
	case CostPreemptions:
		if out.PC != e.running {
			panic(fmt.Sprintf("explore: engine PC %d != world PC %d", e.running, out.PC))
		}
	case CostDelays:
		if out.DC != e.running {
			panic(fmt.Sprintf("explore: engine DC %d != world DC %d", e.running, out.DC))
		}
	}
}

// backtrack advances the search to the next unexplored branch, returning
// false when the (bounded) space is exhausted.
func (e *engine) backtrack() bool {
	for len(e.stack) > 0 {
		nd := &e.stack[len(e.stack)-1]
		advanced := false
		for j := nd.idx + 1; j <= nd.hi; j++ {
			if e.model != CostNone && nd.base+nd.costs[j] > e.bound {
				e.pruned = true
				continue
			}
			nd.idx = j
			advanced = true
			break
		}
		if advanced {
			return true
		}
		// Pop the exhausted node and recycle its buffers. Donated stacks
		// are deep-copied by split, so the slices are exclusively ours.
		e.freeOrders = append(e.freeOrders, nd.order[:0])
		e.freeCosts = append(e.freeCosts, nd.costs[:0])
		nd.order, nd.costs = nil, nil
		e.stack = e.stack[:len(e.stack)-1]
	}
	return false
}
