package report

import (
	"fmt"
	"math"
	"strings"
)

// Scatter renders Figure 3/4-style log-log scatter plots as text: IDB
// schedule counts on the x-axis, IPB on the y-axis, both from 1 to the
// limit, with the diagonal marked. Points above the diagonal are
// benchmarks where IDB was faster (fewer schedules), the paper's
// prevailing case.
func Scatter(points []FigPoint, limit int, width, height int, xy func(FigPoint) (int, int)) string {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 24
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	lmax := math.Log10(float64(limit))
	place := func(v int, span int) int {
		if v < 1 {
			v = 1
		}
		p := int(math.Round(math.Log10(float64(v)) / lmax * float64(span-1)))
		if p < 0 {
			p = 0
		}
		if p >= span {
			p = span - 1
		}
		return p
	}
	// Diagonal y = x.
	for x := 0; x < width; x++ {
		y := int(float64(x) / float64(width-1) * float64(height-1))
		grid[height-1-y][x] = '.'
	}
	for _, p := range points {
		xv, yv := xy(p)
		x := place(xv, width)
		y := place(yv, height)
		grid[height-1-y][x] = 'o'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "IPB %d ^\n", limit)
	for _, row := range grid {
		b.WriteString("       |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("     1 +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("> IDB ")
	fmt.Fprintf(&b, "%d   (log-log; 'o' benchmark, '.' diagonal)\n", limit)
	return b.String()
}

// Fig3Scatter renders the schedules-to-first-bug comparison.
func Fig3Scatter(points []FigPoint, limit int) string {
	return Scatter(points, limit, 60, 24, func(p FigPoint) (int, int) { return p.IDB, p.IPB })
}

// Fig4Scatter renders the worst-case (non-buggy within bound) comparison.
func Fig4Scatter(points []FigPoint, limit int) string {
	return Scatter(points, limit, 60, 24, func(p FigPoint) (int, int) {
		x, y := p.IDB, p.IPB
		if x < 1 {
			x = 1
		}
		if y < 1 {
			y = 1
		}
		return x, y
	})
}
