package explore

// Exploration tests for the GoTime workload family: clock steps (timer
// firings) must be enumerated, replayed and counted by every engine, DFS
// at workers 1 and 8 must stay bit-identical, and the pruning engines
// (sleep-set DFS, DPOR) must reach the same verdicts with no more
// schedules than DFS — all of it under every combination of the fast-path
// kill switches. The virtual clock materialises as a pseudo-thread, so
// these are the same contracts goidiom_test.go pins for case-decision
// points, now over the timer dimension.

import (
	"fmt"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/pct"
	"sctbench/internal/vthread"
)

// pureTimerProgram has exactly one source of nondeterminism: when the
// clock fires a single armed timer relative to two yields. The schedule
// space is the three placements of the clock step (before either yield,
// between them, or forced once the thread blocks on the receive).
func pureTimerProgram() vthread.Program {
	return func(t0 *vthread.Thread) {
		ch := t0.After("t", 1)
		t0.Yield()
		t0.Yield()
		ch.Recv(t0)
	}
}

// TestDFSEnumeratesTimerSteps pins the clock-dimension contract: DFS over
// a single-threaded program with one armed timer and two yields visits
// exactly the three clock-step placements, counts the clock as a second
// thread, and every schedule fires the timer exactly once.
func TestDFSEnumeratesTimerSteps(t *testing.T) {
	r := RunDFS(Config{Program: pureTimerProgram()})
	if !r.Complete || r.Schedules != 3 {
		t.Fatalf("DFS: %d schedules (complete=%v), want exactly 3 clock placements", r.Schedules, r.Complete)
	}
	if r.Threads != 2 {
		t.Fatalf("Threads = %d, want 2 (program thread + clock)", r.Threads)
	}
	if r.BugFound {
		t.Fatalf("bug-free timer program reported %v", r.Failure)
	}
	// The same space under the iterative bounders: delaying the fire past
	// both yields is the zero-cost canonical schedule; the earlier
	// placements preempt the running thread, so bound 1 completes the space.
	for name, model := range map[string]CostModel{"IPB": CostPreemptions, "IDB": CostDelays} {
		r := RunIterative(Config{Program: pureTimerProgram()}, model)
		if !r.Complete || r.Schedules != 3 || r.Bound > 1 {
			t.Fatalf("%s: %d schedules at bound %d (complete=%v), want 3 within bound 1",
				name, r.Schedules, r.Bound, r.Complete)
		}
	}
}

// gotimeConfigs builds an exploration config per GoTime benchmark.
func gotimeConfigs(t *testing.T) map[string]*bench.Benchmark {
	t.Helper()
	out := make(map[string]*bench.Benchmark)
	for _, name := range []string{
		"gotime.timeout_vs_result_bad", "gotime.ticker_leak_bad",
		"gotime.deadline_inherits_bad", "gotime.cancel_after_close_bad",
		"gotime.timer_stop_race_bad", "gotime.ctx_cancel_race_bad",
	} {
		b := bench.ByName(name)
		if b == nil {
			t.Fatalf("missing benchmark %s", name)
		}
		out[name] = b
	}
	return out
}

// TestGoTimeFastPathEquivalence: on every GoTime benchmark, DFS, sleep-set
// DFS and DPOR produce bit-identical counts, witnesses and verdicts under
// every combination of the fast-path kill switches.
func TestGoTimeFastPathEquivalence(t *testing.T) {
	combos := debugCombos()
	runs := map[string]func(Config) *Result{
		"DFS":      RunDFS,
		"sleepset": RunSleepSetDFS,
		"DPOR":     RunDPOR,
	}
	for name, b := range gotimeConfigs(t) {
		for tech, run := range runs {
			t.Run(fmt.Sprintf("%s/%s", tech, name), func(t *testing.T) {
				base := Config{Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps, Limit: 20000}
				want := run(base)
				if !want.BugFound {
					t.Fatalf("%s did not find the %s bug", tech, name)
				}
				if want.Failure.Kind != b.BugKind {
					t.Fatalf("%s found a %v bug, registry says %v", tech, want.Failure.Kind, b.BugKind)
				}
				for _, d := range combos[1:] {
					cfg := base
					cfg.Program = b.New()
					cfg.Debug = d
					got := run(cfg)
					assertCountsEqual(t, fmt.Sprintf("%s/%s/%+v", tech, name, d), want, got)
				}
			})
		}
	}
}

// TestGoTimePruningConsistency: the pruning engines reach the DFS verdict
// on every GoTime benchmark with no more schedules than DFS, and their
// witnesses replay to the same failure kind — timer firings included.
func TestGoTimePruningConsistency(t *testing.T) {
	for name, b := range gotimeConfigs(t) {
		t.Run(name, func(t *testing.T) {
			base := Config{Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps, Limit: 20000}
			dfs := RunDFS(base)
			if !dfs.BugFound {
				t.Fatalf("DFS did not find the %s bug", name)
			}
			for tech, run := range map[string]func(Config) *Result{
				"sleepset": RunSleepSetDFS, "DPOR": RunDPOR,
			} {
				cfg := base
				cfg.Program = b.New()
				r := run(cfg)
				if r.BugFound != dfs.BugFound {
					t.Errorf("%s: bug=%v, DFS bug=%v", tech, r.BugFound, dfs.BugFound)
				}
				if dfs.Complete {
					if !r.Complete {
						t.Errorf("%s did not complete a space DFS completed", tech)
					}
					if r.Schedules > dfs.Schedules {
						t.Errorf("%s explored %d schedules, more than DFS's %d", tech, r.Schedules, dfs.Schedules)
					}
				} else if !r.Complete && r.Schedules != dfs.Schedules {
					t.Errorf("%s counted %d truncated schedules, DFS %d", tech, r.Schedules, dfs.Schedules)
				}
				if out := replayWitness(b.New(), r.Witness); out == nil || out.Failure == nil || out.Failure.Kind != b.BugKind {
					t.Errorf("%s witness does not replay to a %v failure", tech, b.BugKind)
				}
			}
		})
	}
}

// TestGoTimeParallelEquivalence: DFS and the iterative bounders stay
// bit-identical between workers 1 and 8 on the GoTime family — the
// branch-key merge must order clock steps exactly like thread steps.
// Bit-exact comparison applies to completed searches; truncated runs are
// held to verdict + totals, parallel DPOR to verdict + witness validity
// (see the equivalent GoIdiom test for the contract).
func TestGoTimeParallelEquivalence(t *testing.T) {
	const workers = 8
	for name, b := range gotimeConfigs(t) {
		t.Run(name, func(t *testing.T) {
			base := Config{Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps, Limit: 20000}
			for tech, run := range map[string]func(Config) *Result{
				"DFS": RunDFS,
				"IPB": func(c Config) *Result { return RunIterative(c, CostPreemptions) },
				"IDB": func(c Config) *Result { return RunIterative(c, CostDelays) },
			} {
				seqCfg := base
				seqCfg.Program = b.New()
				seq := run(seqCfg)
				parCfg := base
				parCfg.Program = b.New()
				parCfg.Workers = workers
				par := run(parCfg)
				label := fmt.Sprintf("%s/%s", tech, name)
				if seq.Complete {
					assertEquivalent(t, label, seq, par)
					continue
				}
				if seq.Schedules != par.Schedules || seq.BugFound != par.BugFound ||
					seq.LimitHit != par.LimitHit {
					t.Errorf("%s (truncated): schedules %d/%d bug %v/%v limit %v/%v",
						label, seq.Schedules, par.Schedules, seq.BugFound, par.BugFound,
						seq.LimitHit, par.LimitHit)
				}
				if par.BugFound {
					if out := replayWitness(b.New(), par.Witness); out == nil || out.Failure == nil {
						t.Errorf("%s (truncated): parallel witness does not replay to a failure", label)
					}
				}
			}
			cfg := base
			cfg.Program = b.New()
			cfg.Workers = workers
			par := RunDPOR(cfg)
			if !par.BugFound {
				t.Errorf("parallel DPOR missed the %s bug", name)
			} else if out := replayWitness(b.New(), par.Witness); out == nil || out.Failure == nil || out.Failure.Kind != b.BugKind {
				t.Errorf("parallel DPOR witness does not replay to a %v failure", b.BugKind)
			}
		})
	}
}

// TestGoTimeRandomAndPCTFindBugs: the stochastic techniques handle clock
// steps too — Rand and PCT each find every GoTime bug within a modest
// budget (the clock pseudo-thread gets a PCT priority like any other
// thread, and random walks schedule its fires like thread steps).
func TestGoTimeRandomAndPCTFindBugs(t *testing.T) {
	for name, b := range gotimeConfigs(t) {
		r := RunRand(Config{Program: b.New(), BoundsCheck: b.BoundsCheck,
			MaxSteps: b.MaxSteps, Limit: 2000, Seed: 7})
		if !r.BugFound {
			t.Errorf("Rand found no bug in %s within 2000 schedules", name)
		}
		p := pct.Run(pct.Config{Program: b.New, Runs: 2000, Depth: 3, Seed: 7,
			BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps})
		if !p.BugFound {
			t.Errorf("PCT(d=3) found no bug in %s within 2000 runs", name)
		}
	}
}
