package vthread

// Ctx models context.Context as a derived-cancellation tree over the
// substrate's channel close semantics: each context owns a one-slot Done
// channel that cancellation closes, children attach to parents, and
// cancelling a node cancels its whole uncancelled subtree in one visible
// operation whose footprint is exactly the subtree's done-channel keys —
// so partial-order reduction sees cancellation races precisely. A
// deadline context (WithTimeout) additionally arms a clock entry whose
// fire performs the same subtree cancellation under the clock
// pseudo-thread, which is how "the deadline raced my result" becomes an
// explorable interleaving instead of a flaky wall-clock accident.
//
// The name Ctx (not Context) avoids a clash with the scheduling-point
// Context type choosers receive.

// Cancellation cause strings, mirroring context.Canceled and
// context.DeadlineExceeded.
const (
	CtxCanceled         = "context canceled"
	CtxDeadlineExceeded = "context deadline exceeded"
)

// Ctx is one node of a cancellation tree.
type Ctx struct {
	done      *Chan
	parent    *Ctx
	children  []*Ctx
	cancelled bool
	err       string
	dl        *vtimer // deadline entry, nil for WithCancel contexts
}

// newCtx builds an unattached context node; attachment and inherited
// cancellation happen in the visible commit (World.attachCtx).
func newCtx(name string, parent *Ctx) *Ctx {
	return &Ctx{
		done:   &Chan{key: "ctx/" + name, buf: make([]int, 1)},
		parent: parent,
	}
}

// attachCtx links c under its parent and, when the parent is already
// cancelled, cancels c immediately with the parent's cause — a child born
// of a dead parent is born dead, as in Go.
func (w *World) attachCtx(t *Thread, c *Ctx) {
	if c.parent != nil {
		c.parent.children = append(c.parent.children, c)
		if c.parent.cancelled {
			w.cancelSubtree(t, c, c.parent.err)
		}
	}
	t.sinkRelease(c.done.key)
}

// cancelSubtree cancels c and every uncancelled descendant: records the
// cause, disarms any deadline entries, and closes the done channels with
// the same acquire-release pair an explicit Chan.Close performs, under the
// acting thread's id (a program thread for Cancel, the clock pseudo-thread
// for a deadline fire). Idempotent per node, so racing cancellers and
// deadlines compose without double-close crashes — the tree is the one
// place the substrate closes channels on the program's behalf.
func (w *World) cancelSubtree(actor *Thread, c *Ctx, cause string) {
	if c.cancelled {
		return
	}
	c.cancelled = true
	c.err = cause
	if c.dl != nil {
		c.dl.armed = false
	}
	if !c.done.closed {
		actor.sinkAcquire(c.done.key)
		c.done.closed = true
		actor.sinkRelease(c.done.key)
	}
	for _, child := range c.children {
		w.cancelSubtree(actor, child, cause)
	}
}

// ctxFootprint accumulates the done-channel keys of c's whole subtree
// (cancelled nodes included — conservative is safe for independence).
func ctxFootprint(c *Ctx, info *PendingInfo) {
	info.Objects.add(c.done.key)
	for _, child := range c.children {
		ctxFootprint(child, info)
	}
}

// WithCancel creates a context cancelled by an explicit Cancel call (or by
// its parent's cancellation). parent may be nil for a root context.
// Creation is a visible operation: it attaches to the parent's tree, whose
// cancellation state it observes.
func (t *Thread) WithCancel(name string, parent *Ctx) *Ctx {
	c := newCtx(name, parent)
	t.visible(pendingOp{kind: opCtxNew, ctx: c})
	t.ctxNewCommit(c, 0)
	return c
}

// ctxNewCommit is the opCtxNew effect: attach to the parent tree, then
// (for deadline contexts not already cancelled by inheritance) arm the
// deadline entry d ticks out.
func (t *Thread) ctxNewCommit(c *Ctx, d int64) {
	t.w.attachCtx(t, c)
	if c.dl != nil && !c.cancelled {
		t.w.armTimer(c.dl, d)
	}
}

// WithTimeout creates a context that cancels itself — and its subtree —
// when the virtual clock reaches now + d, in addition to explicit and
// inherited cancellation. The deadline is an ordinary clock entry: its
// fire is a schedulable pseudo-step racing the program's own progress.
// Note the deadline is not clamped to the parent's: as in Go, a child
// given a longer timeout than its parent simply dies with the parent
// first — the gotime.deadline_inherits_bad benchmark explores exactly
// that misunderstanding.
func (t *Thread) WithTimeout(name string, parent *Ctx, d int64) *Ctx {
	c := newCtx(name, parent)
	c.dl = &vtimer{kind: timerDeadline, ctx: c}
	t.visible(pendingOp{kind: opCtxNew, ctx: c})
	t.ctxNewCommit(c, d)
	return c
}

// Done returns the channel closed by cancellation: Recv on it (or a
// Select case) blocks until the context is cancelled, then reports
// ok=false like any closed drained channel. Invisible accessor.
func (c *Ctx) Done() *Chan { return c.done }

// Cancel cancels the context and its whole subtree. One visible operation
// whose footprint is the subtree's done keys; idempotent, as in Go.
func (c *Ctx) Cancel(t *Thread) {
	t.visible(pendingOp{kind: opCtxCancel, ctx: c})
	t.w.cancelSubtree(t, c, CtxCanceled)
}

// Err returns "" while the context is live, CtxCanceled after an explicit
// or inherited cancellation, and CtxDeadlineExceeded after a deadline
// fire. Invisible inspection helper, like Chan.Closed.
func (c *Ctx) Err() string { return c.err }
