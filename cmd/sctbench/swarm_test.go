package main

// CLI tests for swarm mode: the CSV shape and determinism contract, the
// corpus replay-first speedup across invocations, and flag validation.

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestSwarmCSVShapeAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	sel := "CS.account_bad$|CS.lazy01_bad$"
	args := func(corpus, csv string) []string {
		return []string{"-swarm", "-bench", sel, "-limit", "500", "-par", "1",
			"-workers", "1", "-swarm-seeds", "1,2", "-swarm-bounds", "2,3",
			"-corpus", corpus, "-swarmcsv", csv}
	}

	csv1 := filepath.Join(dir, "a.csv")
	code, _, errOut := runCLI(t, args(filepath.Join(dir, "corpus-a"), csv1)...)
	if code != exitBug {
		t.Fatalf("swarm exited %d, want %d\n%s", code, exitBug, errOut)
	}
	a, err := os.ReadFile(csv1)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(a), "\n"), "\n")
	// 2 benches x (IPB,IDB x 2 bounds + DFS + Rand) x 2 seeds = 24 rows.
	if want := 1 + 24; len(lines) != want {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), want, a)
	}
	if !strings.HasPrefix(lines[0], "bench_id,bench,suite,technique,bound,seed") {
		t.Fatalf("unexpected header: %s", lines[0])
	}

	// A second sweep with the same seeds into a fresh corpus is
	// byte-identical.
	csv2 := filepath.Join(dir, "b.csv")
	if code, _, errOut := runCLI(t, args(filepath.Join(dir, "corpus-b"), csv2)...); code != exitBug {
		t.Fatalf("second swarm exited %d, want %d\n%s", code, exitBug, errOut)
	}
	b, err := os.ReadFile(csv2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("swarm CSV not deterministic across runs:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestSwarmReplayFirstAcrossInvocations pins the corpus acceptance
// criterion end to end: a rerun against the corpus the first invocation
// populated reproduces every previously found bug with at least ten times
// fewer executions (for cells whose cold search was non-trivial).
func TestSwarmReplayFirstAcrossInvocations(t *testing.T) {
	dir := t.TempDir()
	corpusDir := filepath.Join(dir, "corpus")
	args := func(csv string) []string {
		return []string{"-swarm", "-bench", "CS.account_bad$|CS.queue_bad$",
			"-limit", "2000", "-par", "1", "-workers", "1", "-swarm-seeds", "1",
			"-corpus", corpusDir, "-swarmcsv", filepath.Join(dir, csv)}
	}
	if code, _, errOut := runCLI(t, args("cold.csv")...); code != exitBug {
		t.Fatalf("cold swarm exited %d\n%s", code, errOut)
	}
	if code, _, errOut := runCLI(t, args("warm.csv")...); code != exitBug {
		t.Fatalf("warm swarm exited %d\n%s", code, errOut)
	}

	parse := func(name string) map[string][2]int { // row key -> {executions, hit}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][2]int)
		for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			if i == 0 {
				continue
			}
			f := strings.Split(line, ",")
			// bench,technique,bound,seed key; found col 7, execs col 11, hit col 16.
			if f[7] != "true" {
				continue
			}
			execs, err := strconv.Atoi(f[11])
			if err != nil {
				t.Fatalf("bad executions in %q: %v", line, err)
			}
			hit := 0
			if f[16] == "true" {
				hit = 1
			}
			out[f[1]+"/"+f[3]+"/"+f[4]+"/"+f[5]] = [2]int{execs, hit}
		}
		return out
	}
	cold, warm := parse("cold.csv"), parse("warm.csv")
	if len(cold) == 0 {
		t.Fatal("cold sweep found no bugs")
	}
	checked := 0
	for key, c := range cold {
		w, ok := warm[key]
		if !ok {
			t.Fatalf("%s: bug found cold but not on the warm rerun", key)
		}
		if w[1] != 1 {
			t.Errorf("%s: warm rerun did not hit the stored witness", key)
		}
		if c[0] >= 10 {
			checked++
			if w[0]*10 > c[0] {
				t.Errorf("%s: warm executions %d vs cold %d — less than 10x cheaper", key, w[0], c[0])
			}
		}
	}
	if checked == 0 {
		t.Fatal("no cell had a non-trivial cold search; the 10x criterion went unchecked")
	}
}

func TestSwarmBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-swarm", "-bench", "CS.account_bad$", "-swarm-seeds", "1,x"},
		{"-swarm", "-bench", "CS.account_bad$", "-swarm-bounds", "-2"},
	} {
		if code, _, _ := runCLI(t, args...); code != exitError {
			t.Errorf("%v exited %d, want %d", args, code, exitError)
		}
	}
}
