package bench

// Focused per-program unit tests: controlled-schedule checks of individual
// benchmark semantics, complementing the whole-suite sweeps in
// bench_test.go and the technique signatures in signatures_test.go.

import (
	"testing"

	"sctbench/internal/explore"
	"sctbench/internal/vthread"
)

// firstBugUnder explores with the given technique at a small limit and
// returns the failure, or nil.
func firstBugUnder(t *testing.T, name string, tech explore.Technique, limit int) *vthread.Failure {
	t.Helper()
	b := ByName(name)
	if b == nil {
		t.Fatalf("missing %s", name)
	}
	r := explore.Run(tech, explore.Config{
		Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps,
		Limit: limit, Seed: 5,
	})
	if !r.BugFound {
		return nil
	}
	return r.Failure
}

func TestAccountOverdraft(t *testing.T) {
	f := firstBugUnder(t, "CS.account_bad", explore.IDB, 2000)
	if f == nil {
		t.Fatal("no overdraft found")
	}
	if f.Kind != vthread.FailAssert {
		t.Fatalf("kind = %v", f.Kind)
	}
}

func TestDiningPhilosophersDeadlockReachable(t *testing.T) {
	// Beyond the planted _sat assertion, the classic deadlock (all grab
	// their left fork) must be a real behaviour of the program: some
	// schedule must end in FailDeadlock.
	b := ByName("CS.din_phil3_sat")
	found := false
	for seed := uint64(0); seed < 500 && !found; seed++ {
		out := vthread.NewWorld(vthread.Options{
			Chooser: vthread.NewRandom(seed),
		}).Run(b.New())
		if out.Failure != nil && out.Failure.Kind == vthread.FailDeadlock {
			found = true
		}
	}
	if !found {
		t.Error("no schedule deadlocked the philosophers in 500 random runs")
	}
}

func TestPbzip2CrashMentionsQueue(t *testing.T) {
	f := firstBugUnder(t, "CB.pbzip2-0.9.4", explore.IDB, 2000)
	if f == nil {
		t.Fatal("no crash found")
	}
	if f.Kind != vthread.FailCrash {
		t.Fatalf("kind = %v, want crash", f.Kind)
	}
}

func TestWSQDuplicateDelivery(t *testing.T) {
	f := firstBugUnder(t, "chess.WSQ", explore.IDB, 2000)
	if f == nil {
		t.Fatal("no duplicate delivery found")
	}
	if f.Kind != vthread.FailAssert {
		t.Fatalf("kind = %v", f.Kind)
	}
}

func TestSplashFirstBugAtScheduleTwo(t *testing.T) {
	// The paper reports first bug at schedule 2 with bound 1 for all three
	// SPLASH-2 benchmarks, noting this is parameter-independent; our
	// analogues must reproduce it exactly.
	for _, name := range []string{"splash2.barnes", "splash2.fft", "splash2.lu"} {
		b := ByName(name)
		for _, model := range []explore.CostModel{explore.CostPreemptions, explore.CostDelays} {
			r := explore.RunIterative(explore.Config{
				Program: b.New(), Limit: 10000, Seed: 5,
			}, model)
			if !r.BugFound {
				t.Errorf("%s/%v: bug not found", name, model)
				continue
			}
			if r.SchedulesToFirstBug != 2 || r.Bound != 1 {
				t.Errorf("%s/%v: first bug at %d (bound %d), want 2 (bound 1)",
					name, model, r.SchedulesToFirstBug, r.Bound)
			}
		}
	}
}

func TestDinPhilPreemptionBoundZeroCounts(t *testing.T) {
	// The non-preemptive schedule counts of the dining philosophers are
	// combinatorial invariants that match the paper exactly: 3, 13, 73,
	// 501 for 2–5 philosophers. The bug is found at preemption bound 0 and
	// the bound is then fully enumerated, so Schedules is exactly the
	// zero-preemption count.
	want := map[string]int{
		"CS.din_phil2_sat": 3,
		"CS.din_phil3_sat": 13,
		"CS.din_phil4_sat": 73,
		"CS.din_phil5_sat": 501,
	}
	for name, n := range want {
		b := ByName(name)
		r := explore.RunIterative(explore.Config{
			Program: b.New(), Limit: 10000, Seed: 5,
		}, explore.CostPreemptions)
		if !r.BugFound || r.Bound != 0 {
			t.Errorf("%s: found=%v bound=%d, want found at bound 0", name, r.BugFound, r.Bound)
			continue
		}
		if r.Schedules != n {
			t.Errorf("%s: %d zero-preemption schedules, want %d (paper Table 3)",
				name, r.Schedules, n)
		}
	}
}

func TestStreamcluster3NeedsDelayNotPreemption(t *testing.T) {
	// The Figure 4 outlier property at the program level: the bug is
	// reachable with zero preemptions (IPB discovers at bound 0) but needs
	// a delay (IDB discovers at bound 1; the unique zero-delay schedule —
	// the round-robin schedule, checked separately — passes).
	b := ByName("parsec.streamcluster3")
	ipb := explore.RunIterative(explore.Config{
		Program: b.New(), Limit: 10000, Seed: 5,
	}, explore.CostPreemptions)
	if !ipb.BugFound || ipb.Bound != 0 {
		t.Errorf("IPB found=%v bound=%d, want found at preemption bound 0", ipb.BugFound, ipb.Bound)
	}
	idb := explore.RunIterative(explore.Config{
		Program: b.New(), Limit: 10000, Seed: 5,
	}, explore.CostDelays)
	if !idb.BugFound || idb.Bound != 1 {
		t.Errorf("IDB found=%v bound=%d, want found at delay bound 1", idb.BugFound, idb.Bound)
	}
}

func TestSafestackUsesThreeWorkers(t *testing.T) {
	b := ByName("misc.safestack")
	out := vthread.NewWorld(vthread.Options{Chooser: vthread.RoundRobin()}).Run(b.New())
	if out.Threads != 4 {
		t.Errorf("threads = %d, want 4 (main + the three Vyukov workers)", out.Threads)
	}
	if out.Buggy() {
		t.Errorf("round-robin schedule buggy: %v", out.Failure)
	}
}

func TestFerretStarvationNeedsExactlyOneDelay(t *testing.T) {
	b := ByName("parsec.ferret")
	r := explore.RunIterative(explore.Config{
		Program: b.New(), Limit: 10000, Seed: 5,
	}, explore.CostDelays)
	if !r.BugFound || r.Bound != 1 {
		t.Errorf("found=%v bound=%d, want found at delay bound 1", r.BugFound, r.Bound)
	}
	if r.BuggySchedules != 1 {
		t.Errorf("buggy schedules = %d, want exactly 1 (the delay must hit one specific operation, as the paper notes)",
			r.BuggySchedules)
	}
}
