// Command sctrun explores a single registered benchmark (the 52 SCTBench
// rows or the GoIdiom extension family) with one technique and prints what
// it finds, including the witness schedule and an optional replay with a
// per-step trace — the debugging workflow the study's tools support
// (reproducing a bug by forcing its schedule).
//
// Usage:
//
//	sctrun -bench CS.account_bad [-technique idb|ipb|dfs|dpor|rand|maple|sleepset]
//	       [-limit 10000] [-seed 1] [-workers N] [-norace] [-replay]
//	       [-minimize] [-save witness.json] [-load witness.json] [-log]
//	       [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/mapleidiom"
	"sctbench/internal/race"
	"sctbench/internal/sched"
	"sctbench/internal/simplify"
	"sctbench/internal/vthread"
)

func main() {
	name := flag.String("bench", "", "benchmark name (see -list)")
	tech := flag.String("technique", "idb", "ipb | idb | dfs | dpor | rand | maple | sleepset")
	limit := flag.Int("limit", explore.DefaultLimit, "terminal-schedule limit")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"schedule-exploration worker goroutines (1 = sequential; applies to ipb/idb/dfs/rand)")
	noRace := flag.Bool("norace", false, "skip the race-detection phase (every access visible)")
	replay := flag.Bool("replay", false, "replay the witness schedule and print it")
	minimize := flag.Bool("minimize", false, "simplify the witness (merge blocks, reduce preemptions)")
	savePath := flag.String("save", "", "write the witness to this JSON file")
	loadPath := flag.String("load", "", "replay a witness JSON file instead of exploring")
	logTrace := flag.Bool("log", false, "print a per-event trace when replaying")
	list := flag.Bool("list", false, "list all registered benchmarks (SCTBench + goidiom + gotime) and exit")
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%-28s %-8s %2d threads  %-9s  %s\n", b.Name, b.Suite, b.Threads, b.BugKind, b.Desc)
		}
		return
	}
	b := bench.ByName(*name)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (use -list)\n", *name)
		os.Exit(1)
	}

	if *loadPath != "" {
		replayWitnessFile(b, *loadPath, *logTrace)
		return
	}

	var visible func(string) bool
	var racyVars []string
	if !*noRace {
		phase := race.RunPhase(race.PhaseConfig{
			Program: b.New(), Seed: *seed, MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
		})
		fmt.Printf("race phase: %d racy variable(s): %s\n", len(phase.Racy), strings.Join(phase.Racy, ", "))
		racyVars = phase.Racy
		visible = race.Promoted(phase.Racy)
	}

	if strings.EqualFold(*tech, "maple") {
		res := mapleidiom.Run(mapleidiom.Config{
			Program: b.New, Visible: visible, BoundsCheck: b.BoundsCheck,
			MaxSteps: b.MaxSteps, Seed: *seed,
		})
		if !res.BugFound {
			fmt.Printf("MapleAlg: no bug in %d schedules (%d candidate idioms)\n", res.Schedules, res.Candidates)
			return
		}
		fmt.Printf("MapleAlg: bug after %d schedules: %v\n", res.SchedulesToFirstBug, res.Failure)
		finishWitness(b, visible, racyVars, res.Witness, "maple", *replay, *minimize, *savePath, *logTrace)
		return
	}

	if strings.EqualFold(*tech, "sleepset") {
		res := explore.RunSleepSetDFS(explore.Config{
			Program: b.New(), Visible: visible, BoundsCheck: b.BoundsCheck,
			MaxSteps: b.MaxSteps, Limit: *limit,
		})
		if !res.BugFound {
			fmt.Printf("sleep-set DFS: no bug within %d schedules (complete=%v, %d of %d executions aborted as redundant)\n",
				res.Schedules, res.Complete, res.AbortedExecutions, res.Executions)
			return
		}
		fmt.Printf("sleep-set DFS: bug after %d schedules (%d executions, %d aborted as redundant): %v\n",
			res.SchedulesToFirstBug, res.Executions, res.AbortedExecutions, res.Failure)
		finishWitness(b, visible, racyVars, res.Witness, "sleepset", *replay, *minimize, *savePath, *logTrace)
		return
	}

	var t explore.Technique
	switch strings.ToLower(*tech) {
	case "ipb":
		t = explore.IPB
	case "idb":
		t = explore.IDB
	case "dfs":
		t = explore.DFS
	case "dpor":
		t = explore.DPOR
	case "rand":
		t = explore.Rand
	default:
		fmt.Fprintf(os.Stderr, "unknown technique %q\n", *tech)
		os.Exit(1)
	}
	res := explore.Run(t, explore.Config{
		Program: b.New(), Visible: visible, BoundsCheck: b.BoundsCheck,
		MaxSteps: b.MaxSteps, Limit: *limit, Seed: *seed, Workers: *workers,
	})
	if t == explore.DPOR {
		fmt.Printf("DPOR: %d executions (%d aborted as redundant, %d branches pruned, %d total steps)\n",
			res.Executions, res.AbortedExecutions, res.BranchesPruned, res.TotalSteps)
	}
	if !res.BugFound {
		fmt.Printf("%s: no bug within %d schedules (bound reached %d, complete=%v)\n",
			t, res.Schedules, res.Bound, res.Complete)
		return
	}
	fmt.Printf("%s: bug at bound %d after %d schedules (%d total within bound, %d buggy)\n",
		t, res.Bound, res.SchedulesToFirstBug, res.Schedules, res.BuggySchedules)
	fmt.Printf("failure: %v\n", res.Failure)
	fmt.Printf("witness: %v\n", res.Witness)
	finishWitness(b, visible, racyVars, res.Witness, t.String(), *replay, *minimize, *savePath, *logTrace)
}

// finishWitness applies the post-discovery workflow: optional
// minimisation, optional save, optional replay with trace logging. All
// replays run on one shared Executor.
func finishWitness(b *bench.Benchmark, visible func(string) bool, racy []string,
	witness sched.Schedule, technique string, replay, minimize bool, savePath string, logTrace bool) {
	ex := newReplayExecutor(b, visible)
	defer ex.Close()
	if minimize {
		res := simplify.Minimize(b.New, witness, simplify.Options{
			Visible: visible, BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps,
		})
		if res.Failure != nil {
			fmt.Printf("minimized: PC %d -> %d (%d replays): %v\n",
				res.OriginalPC, res.PC, res.Replays, res.Schedule)
			witness = res.Schedule
		}
	}
	if savePath != "" {
		out, _ := replayOutcome(ex, b, witness, nil)
		wf := &sched.WitnessFile{
			Benchmark: b.Name, Technique: technique, Schedule: witness,
			Racy: racy, PC: out.PC, DC: out.DC,
		}
		if out.Failure != nil {
			wf.Failure = out.Failure.Error()
		}
		data, err := wf.Encode()
		if err == nil {
			err = os.WriteFile(savePath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
		} else {
			fmt.Printf("witness saved to %s\n", savePath)
		}
	}
	if replay {
		var log *vthread.TraceLogger
		if logTrace {
			log = vthread.NewTraceLogger()
		}
		out, _ := replayOutcome(ex, b, witness, log)
		fmt.Printf("replay: %v (PC=%d DC=%d, %d steps)\n", out.Failure, out.PC, out.DC, len(out.Trace))
		if log != nil {
			fmt.Print(log.String())
		}
	}
}

// replayWitnessFile loads a saved witness and replays it.
func replayWitnessFile(b *bench.Benchmark, path string, logTrace bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	wf, err := sched.DecodeWitness(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	if wf.Benchmark != "" && wf.Benchmark != b.Name {
		fmt.Fprintf(os.Stderr, "witness is for %s, not %s\n", wf.Benchmark, b.Name)
		os.Exit(1)
	}
	var log *vthread.TraceLogger
	if logTrace {
		log = vthread.NewTraceLogger()
	}
	ex := newReplayExecutor(b, race.Promoted(wf.Racy))
	defer ex.Close()
	out, ok := replayOutcome(ex, b, wf.Schedule, log)
	if !ok {
		fmt.Println("replay diverged: witness does not fit this benchmark build")
		return
	}
	fmt.Printf("replay: %v (PC=%d DC=%d, %d steps)\n", out.Failure, out.PC, out.DC, len(out.Trace))
	if log != nil {
		fmt.Print(log.String())
	}
}

// newReplayExecutor builds the reusable execution context the replay
// workflow shares across its runs.
func newReplayExecutor(b *bench.Benchmark, visible func(string) bool) *vthread.Executor {
	return vthread.NewExecutor(vthread.Options{
		Visible: visible, BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps,
	})
}

// replayOutcome replays a schedule on ex with optional logging. The
// outcome is valid until ex's next run.
func replayOutcome(ex *vthread.Executor, b *bench.Benchmark, s sched.Schedule, log *vthread.TraceLogger) (*vthread.Outcome, bool) {
	rep := vthread.NewReplay(s)
	var sink vthread.EventSink
	if log != nil {
		sink = log
	}
	out := ex.RunWith(rep, sink, b.New())
	return out, !rep.Failed()
}
