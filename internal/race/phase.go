package race

import (
	"sort"

	"sctbench/internal/vthread"
)

// DefaultRuns is the number of uncontrolled executions of the detection
// phase; the study uses ten (§5).
const DefaultRuns = 10

// PhaseConfig configures a race-detection phase.
type PhaseConfig struct {
	// Program is the program under test.
	Program vthread.Runnable
	// Runs is the number of randomly scheduled executions (0 = DefaultRuns).
	Runs int
	// Seed seeds the random schedules.
	Seed uint64
	// MaxSteps bounds each execution (0 = substrate default).
	MaxSteps int
	// BoundsCheck forwards the out-of-bounds detector setting.
	BoundsCheck bool
}

// PhaseResult is the outcome of a detection phase.
type PhaseResult struct {
	// Racy is the union over all runs of variables involved in a race,
	// sorted. These are the instructions "treated as visible operations"
	// for the SCT phases.
	Racy []string
	// BugsSeen counts detection runs that happened to expose the program's
	// bug (informational; the phase does not claim bug finding).
	BugsSeen int
}

// RunPhase performs the detection phase of §5: it executes the program
// Runs times under the naive random scheduler with *every* shared access
// visible, running the vector-clock detector over each execution, and
// returns the union of racy variables.
func RunPhase(cfg PhaseConfig) PhaseResult {
	runs := cfg.Runs
	if runs == 0 {
		runs = DefaultRuns
	}
	union := make(map[string]bool)
	bugs := 0
	ex := vthread.NewExecutor(vthread.Options{
		MaxSteps:    cfg.MaxSteps,
		BoundsCheck: cfg.BoundsCheck,
	})
	defer ex.Close()
	for i := 0; i < runs; i++ {
		d := NewDetector()
		out := ex.RunWith(vthread.NewRandom(cfg.Seed+uint64(i)*0x9e3779b97f4a7c15), d, cfg.Program)
		if out.Buggy() {
			bugs++
		}
		for _, k := range d.Racy() {
			union[k] = true
		}
	}
	keys := make([]string, 0, len(union))
	for k := range union {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return PhaseResult{Racy: keys, BugsSeen: bugs}
}

// Promoted converts a racy-variable list into the Visible predicate the
// substrate consumes: exactly the flagged variables are scheduling points.
func Promoted(racy []string) func(key string) bool {
	set := make(map[string]bool, len(racy))
	for _, k := range racy {
		set[k] = true
	}
	return func(key string) bool { return set[key] }
}
