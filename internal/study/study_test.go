package study

import (
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
)

func TestSanity(t *testing.T) {
	if msg := Sanity(); msg != "" {
		t.Fatal(msg)
	}
}

func TestRunBenchmarkPipeline(t *testing.T) {
	b := bench.ByName("CS.account_bad")
	row := RunBenchmark(b, Config{Limit: 300, Seed: 2, RaceRuns: 3, WithMaple: true})
	if row.Bench != b {
		t.Fatal("row lost its benchmark")
	}
	if len(row.Results) != 4 {
		t.Fatalf("got %d technique results, want 4", len(row.Results))
	}
	for _, tech := range []explore.Technique{explore.IPB, explore.IDB, explore.DFS, explore.Rand} {
		if row.Results[tech] == nil {
			t.Errorf("missing %s result", tech)
		}
	}
	if row.Maple == nil {
		t.Error("missing MapleAlg result")
	}
	if !row.Found(explore.IDB) {
		t.Error("IDB should find the account bug")
	}
	if row.Threads() != 4 {
		t.Errorf("Threads() = %d, want 4", row.Threads())
	}
	if row.MaxEnabled() < 2 || row.MaxSchedPoints() == 0 {
		t.Errorf("stats not aggregated: enabled=%d points=%d", row.MaxEnabled(), row.MaxSchedPoints())
	}
}

func TestRunAllParallelMatchesSequential(t *testing.T) {
	var benches []*bench.Benchmark
	for _, n := range []string{"CS.account_bad", "CS.sync01_bad", "splash2.fft"} {
		benches = append(benches, bench.ByName(n))
	}
	seq := RunAll(benches, Config{Limit: 200, Seed: 3, RaceRuns: 3, Parallelism: 1})
	par := RunAll(benches, Config{Limit: 200, Seed: 3, RaceRuns: 3, Parallelism: 4})
	for i := range seq {
		for _, tech := range []explore.Technique{explore.IPB, explore.IDB, explore.DFS, explore.Rand} {
			a, b := seq[i].Results[tech], par[i].Results[tech]
			if a.BugFound != b.BugFound || a.Schedules != b.Schedules ||
				a.SchedulesToFirstBug != b.SchedulesToFirstBug || a.Bound != b.Bound {
				t.Errorf("%s/%s: parallel run diverged: %+v vs %+v",
					seq[i].Bench.Name, tech, a, b)
			}
		}
	}
}

func TestTechniqueSubset(t *testing.T) {
	b := bench.ByName("CS.sync01_bad")
	row := RunBenchmark(b, Config{
		Limit: 100, Seed: 1, RaceRuns: 2,
		Techniques: []explore.Technique{explore.IDB},
	})
	if len(row.Results) != 1 || row.Results[explore.IDB] == nil {
		t.Fatalf("technique subset not honoured: %v", row.Results)
	}
}

func TestSeedsAreStable(t *testing.T) {
	if seedFor(1, 3, 2) != seedFor(1, 3, 2) {
		t.Fatal("seedFor not deterministic")
	}
	if seedFor(1, 3, 2) == seedFor(1, 4, 2) || seedFor(1, 3, 2) == seedFor(1, 3, 3) {
		t.Fatal("seedFor does not separate benchmarks/phases")
	}
}

func TestRaceBugsSeenCounted(t *testing.T) {
	// din_phil2_sat is buggy on essentially every schedule: the detection
	// phase must see the bug in (at least most of) its runs.
	b := bench.ByName("CS.din_phil2_sat")
	row := RunBenchmark(b, Config{Limit: 50, Seed: 6, RaceRuns: 5,
		Techniques: []explore.Technique{explore.IDB}})
	if row.RaceBugsSeen < 3 {
		t.Errorf("RaceBugsSeen = %d, want most of 5 runs", row.RaceBugsSeen)
	}
}
