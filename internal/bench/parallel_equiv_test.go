package bench_test

// Cross-layer check that the parallel exploration driver reproduces
// sequential results on real SCTBench programs, not just on the synthetic
// paper examples: same race-promotion pipeline as the study, then every
// systematic technique compared field by field across worker counts.

import (
	"fmt"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/race"
)

func TestParallelExplorationMatchesSequentialOnSCTBench(t *testing.T) {
	names := []string{"CS.account_bad", "CS.reorder_3_bad"}
	for _, name := range names {
		b := bench.ByName(name)
		if b == nil {
			t.Fatalf("missing benchmark %s", name)
		}
		phase := race.RunPhase(race.PhaseConfig{
			Program: b.New(), Seed: 1, MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
		})
		visible := race.Promoted(phase.Racy)
		for _, tech := range []explore.Technique{explore.IPB, explore.IDB, explore.Rand} {
			cfg := explore.Config{
				Program: b.New(), Visible: visible, BoundsCheck: b.BoundsCheck,
				MaxSteps: b.MaxSteps, Limit: 2000, Seed: 1,
			}
			seqCfg, parCfg := cfg, cfg
			seqCfg.Workers, parCfg.Workers = 1, 8
			seq := explore.Run(tech, seqCfg)
			par := explore.Run(tech, parCfg)
			id := fmt.Sprintf("%s/%s", name, tech)
			if seq.BugFound != par.BugFound {
				t.Errorf("%s: BugFound %v (seq) != %v (par)", id, seq.BugFound, par.BugFound)
			}
			if seq.Schedules != par.Schedules {
				t.Errorf("%s: Schedules %d != %d", id, seq.Schedules, par.Schedules)
			}
			if seq.Bound != par.Bound {
				t.Errorf("%s: Bound %d != %d", id, seq.Bound, par.Bound)
			}
			if seq.SchedulesToFirstBug != par.SchedulesToFirstBug {
				t.Errorf("%s: SchedulesToFirstBug %d != %d",
					id, seq.SchedulesToFirstBug, par.SchedulesToFirstBug)
			}
			if !seq.Witness.Equal(par.Witness) {
				t.Errorf("%s: Witness %v != %v", id, seq.Witness, par.Witness)
			}
		}
	}
}
