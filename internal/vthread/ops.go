package vthread

// opKind enumerates the visible-operation kinds of the substrate. The set
// mirrors the pthread surface that the paper's benchmarks use: thread
// management, mutexes, condition variables, semaphores, barriers, shared
// memory accesses and atomics.
type opKind int

const (
	opSpawn opKind = iota
	opJoin
	opYield
	opLock
	opUnlock
	opCondWait   // release mutex + enqueue on the condvar
	opCondResume // woken waiter re-acquiring the mutex
	opSignal
	opBroadcast
	opSemP
	opSemV
	opBarrierArrive
	opBarrierWait // parked inside the barrier until the generation advances
	opAccess      // promoted (racy) shared-memory access
	opAtomic
	opDestroy
	opRLock
	opRUnlock
	opWLock
	opWUnlock
)

// pendingOp is the visible operation a parked thread will perform when next
// scheduled. Enabledness (§2) is a predicate of the pending operation over
// the current state of its target object.
type pendingOp struct {
	kind    opKind
	mutex   *Mutex
	cond    *Cond
	sem     *Sem
	barrier *Barrier
	target  *Thread
	thread  *Thread // owner of this op; set for ops whose enabledness is per-thread
	rw      *RWMutex
	gen     uint64 // barrier generation observed on arrival
	key     string // accessed variable key (opAccess only)
	write   bool   // store vs load (opAccess only)
}

// enabled reports whether the operation can execute in the current state.
// Operations that would immediately fault (locking a destroyed mutex,
// double unlock, …) are enabled so that the crash can manifest — a disabled
// crash would silently mask the bug.
func (op pendingOp) enabled(w *World) bool {
	switch op.kind {
	case opLock:
		return op.mutex.owner == nil || op.mutex.destroyed
	case opCondResume:
		return op.thread.woken && (op.mutex.owner == nil || op.mutex.destroyed)
	case opSemP:
		return op.sem.count > 0
	case opJoin:
		return op.target.state == stateExited
	case opBarrierWait:
		return op.barrier.gen != op.gen
	case opRLock:
		// Shared acquisition: blocked by a writer or (writer preference) a
		// waiting writer.
		return op.rw.writer == nil && op.rw.waitingWriters == 0
	case opWLock:
		return op.rw.writer == nil && op.rw.readers == 0
	default:
		// opSpawn, opYield, opUnlock, opCondWait, opSignal,
		// opBroadcast, opSemV, opBarrierArrive, opAccess, opAtomic,
		// opDestroy are always executable.
		return true
	}
}

func (k opKind) String() string {
	switch k {
	case opSpawn:
		return "spawn"
	case opJoin:
		return "join"
	case opYield:
		return "yield"
	case opLock:
		return "lock"
	case opUnlock:
		return "unlock"
	case opCondWait:
		return "cond-wait"
	case opCondResume:
		return "cond-resume"
	case opSignal:
		return "signal"
	case opBroadcast:
		return "broadcast"
	case opSemP:
		return "sem-P"
	case opSemV:
		return "sem-V"
	case opBarrierArrive:
		return "barrier-arrive"
	case opBarrierWait:
		return "barrier-wait"
	case opAccess:
		return "access"
	case opAtomic:
		return "atomic"
	case opDestroy:
		return "destroy"
	case opRLock:
		return "rlock"
	case opRUnlock:
		return "runlock"
	case opWLock:
		return "wlock"
	case opWUnlock:
		return "wunlock"
	}
	return "unknown"
}
