package vthread

import "fmt"

// Compiled programs: the instruction-form representation the goroutine-free
// flat engine executes (see flat.go). A Program is a closure tree the
// substrate can only run by giving every virtual thread a real goroutine to
// block in; a CompiledProgram is the same program as data — explicit object
// declarations, bodies made of instructions, and operands compiled to small
// closures over a register file — which a single goroutine can step with a
// plain function call per visible operation.
//
// # Execution protocol
//
// One interpreter (interp) per thread holds the frame stack, the integer
// registers (locals), the object registers (objs) and the thread's next
// registered operation (req). Two methods drive it:
//
//   - advance runs invisible instructions until the thread either REGISTERS
//     its next visible operation (fills req, returns true) or falls off the
//     end of its body (returns false). Registration evaluates the
//     operation's operands — exactly what a closure body evaluates before
//     calling the blocking method — and performs any registration-time side
//     effects (RWMutex.Lock's waitingWriters bump, a Select's per-call case
//     snapshot, a timer's pre-visible channel allocation).
//   - perform executes the GRANTED operation's effect via the same
//     xxxCommit helpers the closure API uses, so both engines share one
//     copy of every effect and every crash message. perform returns true
//     when the operation installed a follow-up registration into req (the
//     multi-phase ops: a condvar wait's re-acquire, a barrier's wait phase,
//     a Once body's completion marker).
//
// The flat engine maps "register" to writing Thread.pending directly and
// "grant" to calling perform from the scheduling loop; the blocking bridge
// (asProgram) maps them onto Thread.visible, which parks the goroutine — so
// a CompiledProgram also runs, bit-identically, on the reference engine.
//
// # Equivalence contract
//
// A CompiledProgram translated op-for-op from a closure Program produces
// the identical trace, Outcome, Failure, event stream and footprints under
// every Chooser, on either engine. The translation rules that make this
// hold: every visible call becomes one instruction (IntVar.Add is a Load
// and a Store, never fused); operands and invisible statements evaluate at
// registration time in program order; effects and result-register writes
// happen at perform time.

// Runnable is the common interface of the two program representations an
// Executor can run: a closure Program (reference engine) or a
// *CompiledProgram (flat engine, with automatic fallback). The interface is
// sealed — those two types are the only implementations.
type Runnable interface{ runnable() }

func (Program) runnable()          {}
func (*CompiledProgram) runnable() {}

// AsProgram converts any Runnable to a closure Program: a Program is
// returned unchanged, a *CompiledProgram is bridged onto the blocking
// engine (trace-identical to its flat execution). This is how compiled
// programs run under a plain single-use World.
func AsProgram(r Runnable) Program {
	switch p := r.(type) {
	case Program:
		return p
	case *CompiledProgram:
		return p.asProgram()
	}
	panic("vthread: AsProgram on unknown Runnable implementation")
}

// Handles index a CompiledProgram's declared objects; they are valid only
// with the program that issued them. Reg and OReg index a thread's integer
// and object registers.
type (
	// VarH names a declared IntVar.
	VarH int
	// AtomicH names a declared Atomic.
	AtomicH int
	// ArrayH names a declared Array.
	ArrayH int
	// ChanH names a declared Chan.
	ChanH int
	// MutexH names a declared Mutex.
	MutexH int
	// RWMutexH names a declared RWMutex.
	RWMutexH int
	// CondH names a declared Cond.
	CondH int
	// SemH names a declared Sem.
	SemH int
	// BarrierH names a declared Barrier.
	BarrierH int
	// WGH names a declared WaitGroup.
	WGH int
	// OnceH names a declared Once.
	OnceH int
	// CellH names a declared invisible shared integer: the compiled
	// counterpart of a plain Go local captured by several closures (no
	// scheduling points, no events — invisible state, like any unpromoted
	// computation).
	CellH int
	// RefH names a declared object-valued shared reference (the compiled
	// counterpart of Ref[*Mutex] and friends): promotion and visibility
	// work as for IntVar, under the key "ref/<name>".
	RefH int
	// Reg is an integer register of one thread.
	Reg int
	// OReg is an object register of one thread: dynamically created
	// objects (timers, tickers, contexts, dynamic mutexes, child thread
	// handles) live here.
	OReg int
)

// nameInit is one declared object: its full footprint key (prefix applied
// at declaration, so instantiation concatenates nothing) plus an integer
// argument (initial value, capacity, parties — per kind).
type nameInit struct {
	name string // full key, e.g. "var/balance"
	arg  int
}

// fbody is one compiled thread body.
type fbody struct {
	nargs   int // integer arguments, delivered in locals[0:nargs]
	noargs  int // object arguments, delivered in objs[0:noargs]
	nlocals int
	nobjs   int
	code    *block
}

// CompiledProgram is a program in instruction form, built with a Builder.
// Bodies[0] is the initial thread's body. A CompiledProgram is immutable
// after Build and safe for concurrent executions (each run gets a fresh
// object environment); all mutable state lives in per-run progEnv and
// per-thread interp values.
type CompiledProgram struct {
	varSpecs  []nameInit
	atomSpecs []nameInit
	arrSpecs  []nameInit
	chanSpecs []nameInit
	muNames   []string
	rwNames   []string
	condNames []string
	semSpecs  []nameInit
	barSpecs  []nameInit
	wgNames   []string
	onceNames []string
	cellInit  []int
	refNames  []string
	bodies    []*fbody
}

// refObj is the runtime state of a RefH: an object-valued shared variable.
type refObj struct {
	key     string
	val     any
	visible bool
}

// progEnv is one run's object environment: every declared object,
// instantiated fresh per execution exactly as a closure body's NewVar /
// NewChan calls instantiate fresh objects per run.
type progEnv struct {
	vars     []*IntVar
	atomics  []*Atomic
	arrays   []*Array
	chans    []*Chan
	mutexes  []*Mutex
	rwmus    []*RWMutex
	conds    []*Cond
	sems     []*Sem
	barriers []*Barrier
	wgs      []*WaitGroup
	onces    []*Once
	cells    []int
	refs     []*refObj
}

// newEnv instantiates the declared objects for one execution. Invisible
// (object construction emits no events and takes no scheduling points, like
// the closure constructors).
func (cp *CompiledProgram) newEnv(w *World) *progEnv {
	env := &progEnv{}
	if n := len(cp.varSpecs); n > 0 {
		env.vars = make([]*IntVar, n)
		for i, s := range cp.varSpecs {
			env.vars[i] = &IntVar{key: s.name, val: s.arg, visible: w.isVisibleVar(s.name)}
		}
	}
	if n := len(cp.atomSpecs); n > 0 {
		env.atomics = make([]*Atomic, n)
		for i, s := range cp.atomSpecs {
			env.atomics[i] = &Atomic{key: s.name, val: s.arg}
		}
	}
	if n := len(cp.arrSpecs); n > 0 {
		env.arrays = make([]*Array, n)
		for i, s := range cp.arrSpecs {
			env.arrays[i] = &Array{key: s.name, vals: make([]int, s.arg), visible: w.isVisibleVar(s.name)}
		}
	}
	if n := len(cp.chanSpecs); n > 0 {
		env.chans = make([]*Chan, n)
		for i, s := range cp.chanSpecs {
			capacity := s.arg
			if capacity < 1 {
				capacity = 1
			}
			env.chans[i] = &Chan{key: s.name, buf: make([]int, capacity)}
		}
	}
	if n := len(cp.muNames); n > 0 {
		env.mutexes = make([]*Mutex, n)
		for i, name := range cp.muNames {
			env.mutexes[i] = &Mutex{key: name}
		}
	}
	if n := len(cp.rwNames); n > 0 {
		env.rwmus = make([]*RWMutex, n)
		for i, name := range cp.rwNames {
			env.rwmus[i] = &RWMutex{key: name}
		}
	}
	if n := len(cp.condNames); n > 0 {
		env.conds = make([]*Cond, n)
		for i, name := range cp.condNames {
			env.conds[i] = &Cond{key: name}
		}
	}
	if n := len(cp.semSpecs); n > 0 {
		env.sems = make([]*Sem, n)
		for i, s := range cp.semSpecs {
			env.sems[i] = &Sem{key: s.name, count: s.arg}
		}
	}
	if n := len(cp.barSpecs); n > 0 {
		env.barriers = make([]*Barrier, n)
		for i, s := range cp.barSpecs {
			env.barriers[i] = &Barrier{key: s.name, parties: s.arg}
		}
	}
	if n := len(cp.wgNames); n > 0 {
		env.wgs = make([]*WaitGroup, n)
		for i, name := range cp.wgNames {
			env.wgs[i] = &WaitGroup{key: name}
		}
	}
	if n := len(cp.onceNames); n > 0 {
		env.onces = make([]*Once, n)
		for i, name := range cp.onceNames {
			env.onces[i] = &Once{key: name}
		}
	}
	if n := len(cp.cellInit); n > 0 {
		env.cells = make([]int, n)
		copy(env.cells, cp.cellInit)
	}
	if n := len(cp.refNames); n > 0 {
		env.refs = make([]*refObj, n)
		for i, name := range cp.refNames {
			env.refs[i] = &refObj{key: name, visible: w.isVisibleVar(name)}
		}
	}
	return env
}

// iop enumerates the instruction set. Every visible operation of the
// closure API has exactly one instruction (plus the invisible control-flow
// and register instructions), so closure bodies translate op-for-op.
type iop int

const (
	iLet     iop = iota // dst = x (invisible)
	iCellSet            // cells[h] = x (invisible)
	iIf                 // cond ? blk : blk2 (blk2 may be nil)
	iWhile              // while cond { blk }
	iBreak
	iContinue
	iReturn
	iSetName // thread display name = name (invisible)
	iYield
	iVarLoad   // dst = vars[h]           (visible iff promoted)
	iVarStore  // vars[h] = x             (visible iff promoted)
	iALoad     // dst = atomics[h]
	iAStore    // atomics[h] = x
	iAAdd      // dst = (atomics[h] += x)
	iACAS      // dst = CAS(atomics[h], x, y)
	iASwap     // dst = Swap(atomics[h], x)
	iArrGet    // dst = arrays[h][x]      (visible iff promoted)
	iArrSet    // arrays[h][x] = y        (visible iff promoted)
	iLock      // mu.Lock
	iUnlock    // mu.Unlock
	iTryLock   // dst = mu.TryLock
	iDestroy   // mu.Destroy
	iNewMutex  // objs[odst] = new dynamic mutex named name (invisible)
	iRLock     // rwmus[h].RLock
	iRUnlock   // rwmus[h].RUnlock
	iWLock     // rwmus[h].Lock
	iWUnlock   // rwmus[h].Unlock
	iCondWait  // conds[h].Wait(mutexes[h2]) — two visible phases
	iSignal    // conds[h].Signal
	iBroadcast // conds[h].Broadcast
	iSemP      // sems[h].P
	iSemV      // sems[h].V
	iArrive    // barriers[h].Arrive — one or two visible phases
	iWGAdd     // wgs[h].Add(x)
	iWGWait    // wgs[h].Wait
	iOnceDo    // onces[h].Do { blk } — entry + completion phases
	iSend      // ch.Send(x)
	iRecv      // dst, dst2 = ch.Recv
	iTrySend   // dst = ch.TrySend(x)
	iTryRecv   // dst, dst2 = ch.TryRecv
	iChClose   // ch.Close
	iSelect    // dst, dst2, dst3 = select(cases, hasDefault)
	iSpawn     // spawn specs (one visible op, like Spawn/SpawnAll)
	iJoin      // join objs[osrc].(*Thread)
	iAssert    // invisible: cond or fail(str, args)
	iFail      // invisible: fail(str, args)
	iNewTimer  // objs[odst] = NewTimer(name, x)
	iAfter     // objs[odst] = After(name, x) (the delivery channel)
	iNewTicker // objs[odst] = NewTicker(name, x)
	iTimerStop // dst = objs[osrc].Stop (dst < 0 for Ticker.Stop)
	iTimerRst  // dst = objs[osrc].(*Timer).Reset(x)
	iCtxNew    // objs[odst] = WithCancel/WithTimeout(name, objs[oparent], x)
	iCtxCancel // objs[osrc].(*Ctx).Cancel
	iRefLoad   // objs[odst] = refs[h]    (visible iff promoted)
	iRefStore  // refs[h] = objs[osrc]    (visible iff promoted)
)

// cCase is one compiled Select case.
type cCase struct {
	ch   func(*Thread) *Chan
	send bool
	val  func(*Thread) int
}

// spawnSpec is one child of a compiled spawn instruction.
type spawnSpec struct {
	body  int
	args  []func(*Thread) int
	oargs []OReg
	dst   OReg
}

// instr is one compiled instruction. The struct is wide but built once per
// program; the interpreter reads only the fields its opcode uses.
type instr struct {
	op         iop
	h, h2      int
	dst        Reg
	dst2, dst3 Reg
	odst       OReg
	osrc       OReg
	oparent    OReg
	x, y       func(*Thread) int
	cond       func(*Thread) bool
	mu         func(*Thread) *Mutex
	ch         func(*Thread) *Chan
	name       func(*Thread) string
	str        string
	args       []func(*Thread) any
	blk, blk2  *block
	cases      []cCase
	specs      []spawnSpec
	// dl flags the opcode's one boolean: a deadline context for iCtxNew
	// (WithTimeout vs WithCancel), a default case for iSelect.
	dl bool
}

// block is a straight-line instruction sequence (a body, a branch arm, a
// loop body, a Once body).
type block struct {
	code []instr
}

// frKind classifies interpreter frames.
type frKind uint8

const (
	frBlock frKind = iota // an If arm: pop and continue the parent
	frLoop                // a While body: pop and re-evaluate the condition
	frOnce                // a Once body: pop via the opOnceDone completion op
)

// frame is one entry of a thread's control stack. pc indexes the current
// instruction of blk (pointing AT it, not past it).
type frame struct {
	blk  *block
	pc   int
	kind frKind
	in   *instr // the opening iOnceDo instruction (frOnce only)
}

// interp is the per-thread interpreter state of a compiled body: the
// control stack, the register files, and the currently registered visible
// operation. One interp per Thread, recycled across executions with the
// Thread struct.
type interp struct {
	cp  *CompiledProgram
	env *progEnv

	frames []frame
	locals []int
	objs   []any

	// req points at the slot receiving registrations: advance and the
	// multi-phase perform cases write through it. The flat engine aims it
	// straight at Thread.pending (no publish copy); the blocking bridge
	// aims it at reqBuf and passes the value to Thread.visible.
	req    *pendingOp
	reqBuf pendingOp
	// val and d carry register-time evaluated operands (a send value, a
	// store value, a duration) across the register→perform boundary. One
	// visible op is in flight per thread, so single scratch slots suffice.
	val int
	d   int64
	// argv is the flat register-time argument buffer of a spawn
	// instruction, consumed by its perform in spec order.
	argv []int
}

// init prepares the interpreter to run body with the given integer and
// object arguments. Buffers are reused across executions.
func (fi *interp) init(cp *CompiledProgram, env *progEnv, body int, args []int, oargs []any) {
	fb := cp.bodies[body]
	fi.cp = cp
	fi.env = env
	if cap(fi.locals) < fb.nlocals {
		fi.locals = make([]int, fb.nlocals)
	} else {
		fi.locals = fi.locals[:fb.nlocals]
		for i := range fi.locals {
			fi.locals[i] = 0
		}
	}
	copy(fi.locals, args)
	if cap(fi.objs) < fb.nobjs {
		fi.objs = make([]any, fb.nobjs)
	} else {
		fi.objs = fi.objs[:fb.nobjs]
		for i := range fi.objs {
			fi.objs[i] = nil
		}
	}
	copy(fi.objs, oargs)
	fi.frames = fi.frames[:0]
	fi.frames = append(fi.frames, frame{blk: fb.code})
	fi.req = &fi.reqBuf
	fi.reqBuf = pendingOp{}
}

func (fi *interp) top() *frame { return &fi.frames[len(fi.frames)-1] }

func (fi *interp) push(blk *block, kind frKind, in *instr) {
	fi.frames = append(fi.frames, frame{blk: blk, kind: kind, in: in})
}

// setReg writes a result register, honouring the Reg(-1) discard
// convention.
func (fi *interp) setReg(r Reg, v int) {
	if r >= 0 {
		fi.locals[r] = v
	}
}

// advance runs invisible instructions until the thread registers its next
// visible operation (req filled, true returned) or its body ends (false).
// Registration-time evaluation order matches the closure API exactly:
// operands first (in program order), then any registration-time side
// effect, then the op itself.
func (fi *interp) advance(t *Thread) bool {
	env := fi.env
	for {
		if len(fi.frames) == 0 {
			return false
		}
		f := &fi.frames[len(fi.frames)-1]
		if f.pc >= len(f.blk.code) {
			switch f.kind {
			case frOnce:
				// The Once body ended: register the completion marker. The
				// frame pops when the marker performs (the parent pc was
				// advanced when the frame was pushed).
				*fi.req = pendingOp{kind: opOnceDone, once: env.onces[f.in.h]}
				return true
			case frLoop:
				// Loop body ended: pop back to the While, which re-evaluates.
				fi.frames = fi.frames[:len(fi.frames)-1]
			default:
				fi.frames = fi.frames[:len(fi.frames)-1]
			}
			continue
		}
		in := &f.blk.code[f.pc]
		switch in.op {

		// ----- invisible instructions: executed in place -----

		case iLet:
			fi.locals[in.dst] = in.x(t)
			f.pc++
		case iCellSet:
			env.cells[in.h] = in.x(t)
			f.pc++
		case iIf:
			f.pc++
			if in.cond(t) {
				fi.push(in.blk, frBlock, nil)
			} else if in.blk2 != nil {
				fi.push(in.blk2, frBlock, nil)
			}
		case iWhile:
			// pc stays at the While: the frLoop pop returns here to
			// re-evaluate the condition.
			if in.cond(t) {
				fi.push(in.blk, frLoop, nil)
			} else {
				f.pc++
			}
		case iBreak:
			for {
				k := fi.frames[len(fi.frames)-1].kind
				fi.frames = fi.frames[:len(fi.frames)-1]
				if k == frLoop {
					break
				}
			}
			fi.top().pc++ // step past the While
		case iContinue:
			for fi.frames[len(fi.frames)-1].kind != frLoop {
				fi.frames = fi.frames[:len(fi.frames)-1]
			}
			fi.frames = fi.frames[:len(fi.frames)-1]
			// pc of the parent still points at the While: re-evaluate.
		case iReturn:
			fi.frames = fi.frames[:0]
			return false
		case iSetName:
			t.name = in.name(t)
			f.pc++
		case iAssert:
			if in.cond(t) {
				f.pc++
				continue
			}
			fi.failMsg(t, FailAssert, in)
		case iFail:
			fi.failMsg(t, FailAssert, in)
		case iNewMutex:
			fi.objs[in.odst] = &Mutex{key: "mutex/" + in.name(t)}
			f.pc++

		// ----- promoted-conditional accesses -----

		case iVarLoad:
			v := env.vars[in.h]
			if !v.visible {
				fi.setReg(in.dst, v.loadCommit(t))
				f.pc++
				continue
			}
			*fi.req = pendingOp{kind: opAccess, key: v.key}
			return true
		case iVarStore:
			v := env.vars[in.h]
			fi.val = in.x(t)
			if !v.visible {
				v.storeCommit(t, fi.val)
				f.pc++
				continue
			}
			*fi.req = pendingOp{kind: opAccess, key: v.key, write: true}
			return true
		case iArrGet:
			a := env.arrays[in.h]
			fi.val = in.x(t)
			if !a.visible {
				fi.setReg(in.dst, a.getCommit(t, fi.val))
				f.pc++
				continue
			}
			*fi.req = pendingOp{kind: opAccess, key: a.key}
			return true
		case iArrSet:
			a := env.arrays[in.h]
			fi.val = in.x(t)
			fi.d = int64(in.y(t))
			if !a.visible {
				a.setCommit(t, fi.val, int(fi.d))
				f.pc++
				continue
			}
			*fi.req = pendingOp{kind: opAccess, key: a.key, write: true}
			return true
		case iRefLoad:
			r := env.refs[in.h]
			if !r.visible {
				t.sinkAccess(r.key, false)
				fi.objs[in.odst] = r.val
				f.pc++
				continue
			}
			*fi.req = pendingOp{kind: opAccess, key: r.key}
			return true
		case iRefStore:
			r := env.refs[in.h]
			if !r.visible {
				t.sinkAccess(r.key, true)
				r.val = fi.objs[in.osrc]
				f.pc++
				continue
			}
			*fi.req = pendingOp{kind: opAccess, key: r.key, write: true}
			return true

		// ----- always-visible operations: register and stop -----

		case iYield:
			*fi.req = pendingOp{kind: opYield}
			return true
		case iALoad, iAStore, iAAdd, iACAS, iASwap:
			a := env.atomics[in.h]
			if in.x != nil {
				fi.val = in.x(t)
			}
			if in.y != nil {
				fi.d = int64(in.y(t))
			}
			*fi.req = pendingOp{kind: opAtomic, key: a.key}
			return true
		case iLock:
			*fi.req = pendingOp{kind: opLock, mutex: in.mu(t)}
			return true
		case iUnlock:
			*fi.req = pendingOp{kind: opUnlock, mutex: in.mu(t)}
			return true
		case iTryLock:
			m := in.mu(t)
			*fi.req = pendingOp{kind: opAtomic, mutex: m, key: m.key}
			return true
		case iDestroy:
			*fi.req = pendingOp{kind: opDestroy, mutex: in.mu(t)}
			return true
		case iRLock:
			*fi.req = pendingOp{kind: opRLock, rw: env.rwmus[in.h]}
			return true
		case iRUnlock:
			*fi.req = pendingOp{kind: opRUnlock, rw: env.rwmus[in.h]}
			return true
		case iWLock:
			l := env.rwmus[in.h]
			l.waitingWriters++ // registration-time: holds off new readers while parked
			*fi.req = pendingOp{kind: opWLock, rw: l}
			return true
		case iWUnlock:
			*fi.req = pendingOp{kind: opWUnlock, rw: env.rwmus[in.h]}
			return true
		case iCondWait:
			*fi.req = pendingOp{kind: opCondWait, cond: env.conds[in.h], mutex: env.mutexes[in.h2]}
			return true
		case iSignal:
			*fi.req = pendingOp{kind: opSignal, cond: env.conds[in.h]}
			return true
		case iBroadcast:
			*fi.req = pendingOp{kind: opBroadcast, cond: env.conds[in.h]}
			return true
		case iSemP:
			*fi.req = pendingOp{kind: opSemP, sem: env.sems[in.h]}
			return true
		case iSemV:
			*fi.req = pendingOp{kind: opSemV, sem: env.sems[in.h]}
			return true
		case iArrive:
			*fi.req = pendingOp{kind: opBarrierArrive, barrier: env.barriers[in.h]}
			return true
		case iWGAdd:
			fi.val = in.x(t)
			*fi.req = pendingOp{kind: opWGAdd, wg: env.wgs[in.h]}
			return true
		case iWGWait:
			*fi.req = pendingOp{kind: opWGWait, wg: env.wgs[in.h]}
			return true
		case iOnceDo:
			*fi.req = pendingOp{kind: opOnceDo, once: env.onces[in.h]}
			return true
		case iSend:
			c := in.ch(t)
			fi.val = in.x(t)
			*fi.req = pendingOp{kind: opChanSend, ch: c}
			return true
		case iRecv:
			*fi.req = pendingOp{kind: opChanRecv, ch: in.ch(t)}
			return true
		case iTrySend:
			c := in.ch(t)
			fi.val = in.x(t)
			*fi.req = pendingOp{kind: opChanTry, ch: c}
			return true
		case iTryRecv:
			*fi.req = pendingOp{kind: opChanTry, ch: in.ch(t)}
			return true
		case iChClose:
			*fi.req = pendingOp{kind: opChanClose, ch: in.ch(t)}
			return true
		case iSelect:
			// Per-call case snapshot, exactly like the closure Select: the
			// key slice and the selectOp are allocated per call by design
			// (retained footprints alias objs; see select.go).
			cases := make([]SelectCase, len(in.cases))
			objs := make([]string, len(in.cases))
			for i := range in.cases {
				cc := &in.cases[i]
				ch := cc.ch(t)
				cases[i] = SelectCase{Chan: ch, Send: cc.send}
				if cc.send {
					cases[i].Val = cc.val(t)
				}
				objs[i] = ch.key
			}
			sel := &selectOp{cases: cases, objs: objs, hasDefault: in.dl, pick: DefaultCase}
			*fi.req = pendingOp{kind: opSelect, sel: sel}
			return true
		case iSpawn:
			fi.argv = fi.argv[:0]
			for si := range in.specs {
				for _, af := range in.specs[si].args {
					fi.argv = append(fi.argv, af(t))
				}
			}
			*fi.req = pendingOp{kind: opSpawn}
			return true
		case iJoin:
			*fi.req = pendingOp{kind: opJoin, target: fi.objs[in.osrc].(*Thread)}
			return true
		case iNewTimer, iAfter:
			v := &vtimer{kind: timerOneShot, ch: newTimerChan(in.name(t))}
			fi.d = int64(in.x(t))
			*fi.req = pendingOp{kind: opTimerArm, timer: v}
			return true
		case iNewTicker:
			v := &vtimer{kind: timerTicker, ch: newTimerChan(in.name(t)), period: int64(in.x(t))}
			*fi.req = pendingOp{kind: opTimerArm, timer: v}
			return true
		case iTimerStop:
			*fi.req = pendingOp{kind: opTimerStop, timer: timerOf(fi.objs[in.osrc])}
			return true
		case iTimerRst:
			v := fi.objs[in.osrc].(*Timer).v
			fi.d = int64(in.x(t))
			*fi.req = pendingOp{kind: opTimerArm, timer: v}
			return true
		case iCtxNew:
			var parent *Ctx
			if in.oparent >= 0 {
				parent = fi.objs[in.oparent].(*Ctx)
			}
			c := newCtx(in.name(t), parent)
			if in.dl {
				c.dl = &vtimer{kind: timerDeadline, ctx: c}
				fi.d = int64(in.x(t))
			} else {
				fi.d = 0
			}
			*fi.req = pendingOp{kind: opCtxNew, ctx: c}
			return true
		case iCtxCancel:
			*fi.req = pendingOp{kind: opCtxCancel, ctx: fi.objs[in.osrc].(*Ctx)}
			return true
		default:
			panic("vthread: compiled program hit unknown instruction")
		}
	}
}

// failMsg raises an assertion/checker failure from a compiled body,
// mirroring Thread.Assert/Fail (message args evaluate at failure time over
// registers and cells — pure reads, like the argument expressions of a
// closure's Assert call).
func (fi *interp) failMsg(t *Thread, kind FailureKind, in *instr) {
	if t.killed {
		panic(killSignal{})
	}
	vals := make([]any, len(in.args))
	for i, af := range in.args {
		vals[i] = af(t)
	}
	t.failNow(&Failure{Kind: kind, Thread: t.id, Message: fmt.Sprintf(in.str, vals...)})
}

// timerOf resolves the vtimer behind a Timer or Ticker object register.
func timerOf(o any) *vtimer {
	switch v := o.(type) {
	case *Timer:
		return v.v
	case *Ticker:
		return v.v
	}
	panic("vthread: object register does not hold a timer or ticker")
}

// chanOf resolves the channel behind an object register: a timer's or
// ticker's delivery channel, a context's done channel, a dynamic channel.
func chanOf(o any) *Chan {
	switch v := o.(type) {
	case *Chan:
		return v
	case *Timer:
		return v.v.ch
	case *Ticker:
		return v.v.ch
	case *Ctx:
		return v.done
	}
	panic("vthread: object register does not hold a channel-bearing object")
}

// perform executes the granted operation's effect through the shared
// xxxCommit helpers. It returns true when the op installed a follow-up
// registration into req (condvar re-acquire, barrier wait phase, Once
// completion); the drive loop must then publish req and have the scheduler
// grant it before calling perform again.
func (fi *interp) perform(t *Thread) bool {
	// Multi-phase follow-ups registered by an earlier perform (or, for
	// opOnceDone, by a Once body's end in advance): these carry no
	// instruction of their own.
	switch t.pending.kind {
	case opCondResume:
		t.pending.cond.resumeCommit(t, t.pending.mutex)
		fi.top().pc++
		return false
	case opBarrierWait:
		t.sinkAcquire(t.pending.barrier.key)
		fi.top().pc++
		return false
	case opOnceDone:
		t.pending.once.completeCommit(t)
		fi.frames = fi.frames[:len(fi.frames)-1]
		return false
	}

	env := fi.env
	f := fi.top()
	in := &f.blk.code[f.pc]
	switch in.op {
	case iYield:
		// A pure scheduling point: no effect.
	case iVarLoad:
		fi.setReg(in.dst, env.vars[in.h].loadCommit(t))
	case iVarStore:
		env.vars[in.h].storeCommit(t, fi.val)
	case iArrGet:
		fi.setReg(in.dst, env.arrays[in.h].getCommit(t, fi.val))
	case iArrSet:
		env.arrays[in.h].setCommit(t, fi.val, int(fi.d))
	case iRefLoad:
		r := env.refs[in.h]
		t.sinkAccess(r.key, false)
		fi.objs[in.odst] = r.val
	case iRefStore:
		r := env.refs[in.h]
		t.sinkAccess(r.key, true)
		r.val = fi.objs[in.osrc]
	case iALoad:
		a := env.atomics[in.h]
		a.syncCommit(t)
		fi.setReg(in.dst, a.val)
	case iAStore:
		a := env.atomics[in.h]
		a.syncCommit(t)
		a.val = fi.val
	case iAAdd:
		a := env.atomics[in.h]
		a.syncCommit(t)
		a.val += fi.val
		fi.setReg(in.dst, a.val)
	case iACAS:
		a := env.atomics[in.h]
		a.syncCommit(t)
		if a.val != fi.val {
			fi.setReg(in.dst, 0)
		} else {
			a.val = int(fi.d)
			fi.setReg(in.dst, 1)
		}
	case iASwap:
		a := env.atomics[in.h]
		a.syncCommit(t)
		prev := a.val
		a.val = fi.val
		fi.setReg(in.dst, prev)
	case iLock:
		t.pending.mutex.lockCommit(t)
	case iUnlock:
		t.pending.mutex.unlockCommit(t)
	case iTryLock:
		if t.pending.mutex.tryLockCommit(t) {
			fi.setReg(in.dst, 1)
		} else {
			fi.setReg(in.dst, 0)
		}
	case iDestroy:
		t.pending.mutex.destroyCommit(t)
	case iRLock:
		t.pending.rw.rlockCommit(t)
	case iRUnlock:
		t.pending.rw.runlockCommit(t)
	case iWLock:
		t.pending.rw.wlockCommit(t)
	case iWUnlock:
		t.pending.rw.wunlockCommit(t)
	case iCondWait:
		c := t.pending.cond
		m := t.pending.mutex
		c.waitCommit(t, m)
		*fi.req = pendingOp{kind: opCondResume, cond: c, mutex: m, thread: t}
		return true
	case iSignal:
		t.pending.cond.signalCommit(t)
	case iBroadcast:
		t.pending.cond.broadcastCommit(t)
	case iSemP:
		t.pending.sem.pCommit(t)
	case iSemV:
		t.pending.sem.vCommit(t)
	case iArrive:
		b := t.pending.barrier
		if last, gen := b.arriveCommit(t); !last {
			*fi.req = pendingOp{kind: opBarrierWait, barrier: b, gen: gen}
			return true
		}
	case iWGAdd:
		t.pending.wg.addCommit(t, fi.val)
	case iWGWait:
		t.sinkAcquire(t.pending.wg.key)
	case iOnceDo:
		o := t.pending.once
		f.pc++
		if o.entryCommit(t) {
			fi.push(in.blk, frOnce, in)
		}
		return false
	case iSend:
		t.pending.ch.commitSend(t, fi.val)
	case iRecv:
		v, ok := t.pending.ch.commitRecv(t)
		fi.setReg(in.dst, v)
		fi.setReg(in.dst2, boolInt(ok))
	case iTrySend:
		c := t.pending.ch
		if !c.closed && c.n == len(c.buf) {
			fi.setReg(in.dst, 0)
		} else {
			c.commitSend(t, fi.val)
			fi.setReg(in.dst, 1)
		}
	case iTryRecv:
		c := t.pending.ch
		if c.n == 0 && !c.closed {
			fi.setReg(in.dst, 0)
			fi.setReg(in.dst2, 0)
		} else {
			v, ok := c.commitRecv(t)
			fi.setReg(in.dst, v)
			fi.setReg(in.dst2, boolInt(ok))
		}
	case iChClose:
		t.pending.ch.closeCommit(t)
	case iSelect:
		idx, v, ok := t.pending.sel.commitPick(t)
		fi.setReg(in.dst, idx)
		fi.setReg(in.dst2, v)
		fi.setReg(in.dst3, boolInt(ok))
	case iSpawn:
		w := t.w
		off := 0
		for si := range in.specs {
			sp := &in.specs[si]
			childID := ThreadID(len(w.threads))
			w.ensureNames(childID)
			t.sink().spawned(t.id, childID)
			t.sinkRelease(w.keys[childID])
			args := fi.argv[off : off+len(sp.args)]
			off += len(sp.args)
			var child *Thread
			if t.flat {
				var oargs []any
				if len(sp.oargs) > 0 {
					oargs = fi.oargVals(sp.oargs)
				}
				child = w.newFlatThread(fi.cp, fi.env, sp.body, args, oargs)
			} else {
				child = w.newThread(fi.cp.blockingBody(fi.env, sp.body, cloneInts(args), fi.oargVals(sp.oargs)))
			}
			if sp.dst >= 0 {
				fi.objs[sp.dst] = child
			}
		}
	case iJoin:
		t.sinkAcquire(t.pending.target.key)
	case iNewTimer:
		v := t.pending.timer
		t.timerArmCommit(v, fi.d)
		fi.objs[in.odst] = &Timer{v: v}
	case iAfter:
		v := t.pending.timer
		t.timerArmCommit(v, fi.d)
		fi.objs[in.odst] = v.ch
	case iNewTicker:
		v := t.pending.timer
		t.tickerArmCommit(v)
		fi.objs[in.odst] = &Ticker{v: v}
	case iTimerStop:
		was := t.pending.timer.stopCommit()
		fi.setReg(in.dst, boolInt(was))
	case iTimerRst:
		was := t.pending.timer.resetCommit(t, fi.d)
		fi.setReg(in.dst, boolInt(was))
	case iCtxNew:
		c := t.pending.ctx
		t.ctxNewCommit(c, fi.d)
		fi.objs[in.odst] = c
	case iCtxCancel:
		t.w.cancelSubtree(t, t.pending.ctx, CtxCanceled)
	default:
		panic("vthread: perform on non-visible instruction")
	}
	f.pc++
	return false
}

// oargVals snapshots the parent's object registers named by oargs (nil for
// none).
func (fi *interp) oargVals(oargs []OReg) []any {
	if len(oargs) == 0 {
		return nil
	}
	out := make([]any, len(oargs))
	for i, o := range oargs {
		out[i] = fi.objs[o]
	}
	return out
}

func cloneInts(s []int) []int {
	if len(s) == 0 {
		return nil
	}
	out := make([]int, len(s))
	copy(out, s)
	return out
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// runBlocking drives a compiled body on the reference (goroutine) engine:
// every registration parks through Thread.visible exactly as a closure body
// would, so the scheduler, trace and accounting see the identical
// execution.
func runBlocking(t *Thread, fi *interp) {
	for fi.advance(t) {
		t.visible(fi.reqBuf)
		for fi.perform(t) {
			t.visible(fi.reqBuf)
		}
	}
}

// asProgram bridges the compiled program onto the reference engine: the
// initial thread builds the object environment (invisible, like a closure
// body's constructors) and interprets body 0; spawned children interpret
// their bodies through blockingBody closures.
func (cp *CompiledProgram) asProgram() Program {
	return func(t *Thread) {
		env := cp.newEnv(t.w)
		if t.fi == nil {
			t.fi = &interp{}
		}
		t.fi.init(cp, env, 0, nil, nil)
		runBlocking(t, t.fi)
	}
}

// blockingBody wraps one child body as a closure Program for the reference
// engine's Spawn path.
func (cp *CompiledProgram) blockingBody(env *progEnv, body int, args []int, oargs []any) Program {
	return func(t *Thread) {
		if t.fi == nil {
			t.fi = &interp{}
		}
		t.fi.init(cp, env, body, args, oargs)
		runBlocking(t, t.fi)
	}
}

// Reg reads an integer register of the running compiled body. Only valid
// inside operand closures of the same body (the builder's func(*Thread)
// operands).
func (t *Thread) Reg(r Reg) int { return t.fi.locals[r] }

// Cell reads a declared invisible shared integer.
func (t *Thread) Cell(c CellH) int { return t.fi.env.cells[c] }

// Obj reads an object register of the running compiled body (a *Timer,
// *Ticker, *Ctx, *Chan, *Mutex or *Thread created at run time).
func (t *Thread) Obj(o OReg) any { return t.fi.objs[o] }
