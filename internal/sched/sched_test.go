package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistance(t *testing.T) {
	cases := []struct {
		x, y ThreadID
		n    int
		want int
	}{
		{0, 0, 1, 0},
		{0, 1, 4, 1},
		{1, 0, 4, 3}, // the paper's example: distance(1,0) with four threads is 3
		{3, 2, 5, 4},
		{2, 2, 5, 0},
		{4, 0, 5, 1},
	}
	for _, c := range cases {
		if got := Distance(c.x, c.y, c.n); got != c.want {
			t.Errorf("Distance(%d,%d,%d) = %d, want %d", c.x, c.y, c.n, got, c.want)
		}
	}
}

func TestDistanceIsUnique(t *testing.T) {
	// For all x, y, n: (x + Distance(x,y,n)) mod n == y and 0 <= d < n.
	f := func(xr, yr uint8, nr uint8) bool {
		n := int(nr%16) + 1
		x := ThreadID(int(xr) % n)
		y := ThreadID(int(yr) % n)
		d := Distance(x, y, n)
		return d >= 0 && d < n && ThreadID((int(x)+d)%n) == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPCStep(t *testing.T) {
	if got := PCStep(NoThread, false, 0); got != 0 {
		t.Errorf("first step cost = %d, want 0", got)
	}
	if got := PCStep(1, true, 1); got != 0 {
		t.Errorf("continuation cost = %d, want 0", got)
	}
	if got := PCStep(1, true, 2); got != 1 {
		t.Errorf("preemptive switch cost = %d, want 1", got)
	}
	if got := PCStep(1, false, 2); got != 0 {
		t.Errorf("non-preemptive switch cost = %d, want 0", got)
	}
}

func TestDCStepPaperExample(t *testing.T) {
	// §2: last(α) = 3, enabled(α) = {0,2,3,4}, N = 5. delays(α,2) = 3
	// because threads 3, 4 and 0 are skipped (but not 1: it is disabled).
	enabled := map[ThreadID]bool{0: true, 2: true, 3: true, 4: true}
	got := DCStep(3, 2, 5, func(t ThreadID) bool { return enabled[t] })
	if got != 3 {
		t.Fatalf("delays = %d, want 3", got)
	}
}

func TestDCStepContinuationIsFree(t *testing.T) {
	// Continuing the last thread, or taking the first enabled thread in
	// round-robin order when the last is disabled, costs zero delays.
	enabled := map[ThreadID]bool{1: true, 3: true}
	if got := DCStep(1, 1, 4, func(t ThreadID) bool { return enabled[t] }); got != 0 {
		t.Errorf("continuing enabled last costs %d, want 0", got)
	}
	// last = 2 disabled; next enabled round-robin is 3.
	if got := DCStep(2, 3, 4, func(t ThreadID) bool { return enabled[t] }); got != 0 {
		t.Errorf("first enabled after disabled last costs %d, want 0", got)
	}
	// Skipping the enabled 3 to reach 1 costs one delay.
	if got := DCStep(2, 1, 4, func(t ThreadID) bool { return enabled[t] }); got != 1 {
		t.Errorf("skipping one enabled thread costs %d, want 1", got)
	}
}

func TestDCStepSkippingEnabledLastCosts(t *testing.T) {
	// When the last thread is still enabled, scheduling any other thread
	// must skip it: at least one delay. This is the delay/preemption
	// correspondence for the common case.
	enabled := map[ThreadID]bool{0: true, 1: true, 2: true}
	for choice := ThreadID(1); choice <= 2; choice++ {
		got := DCStep(0, choice, 3, func(t ThreadID) bool { return enabled[t] })
		if got < 1 {
			t.Errorf("DCStep(0,%d) = %d, want >= 1", choice, got)
		}
	}
}

func TestDelayCountDominatesPreemptionCount(t *testing.T) {
	// Property (§2): the set of schedules with at most c delays is a subset
	// of those with at most c preemptions — equivalently, per-step
	// DC >= PC for every legal step. Check on random configurations.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		n := rng.Intn(8) + 2
		enabled := make(map[ThreadID]bool)
		var ids []ThreadID
		for id := 0; id < n; id++ {
			if rng.Intn(2) == 0 {
				enabled[ThreadID(id)] = true
				ids = append(ids, ThreadID(id))
			}
		}
		if len(ids) == 0 {
			continue
		}
		last := ThreadID(rng.Intn(n))
		choice := ids[rng.Intn(len(ids))]
		isEnabled := func(t ThreadID) bool { return enabled[t] }
		pc := PCStep(last, enabled[last], choice)
		dc := DCStep(last, choice, n, isEnabled)
		if dc < pc {
			t.Fatalf("n=%d last=%d (enabled=%v) choice=%d: DC=%d < PC=%d",
				n, last, enabled[last], choice, dc, pc)
		}
	}
}

func TestCanonicalOrderFirstChoiceIsFree(t *testing.T) {
	// The canonical first choice must always cost zero under both models —
	// it is the deterministic scheduler's own pick.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		n := rng.Intn(8) + 1
		var enab []ThreadID
		set := make(map[ThreadID]bool)
		for id := 0; id < n; id++ {
			if rng.Intn(2) == 0 {
				enab = append(enab, ThreadID(id))
				set[ThreadID(id)] = true
			}
		}
		if len(enab) == 0 {
			continue
		}
		last := ThreadID(rng.Intn(n))
		order := CanonicalOrder(enab, last, n)
		if len(order) != len(enab) {
			t.Fatalf("order %v does not cover enabled %v", order, enab)
		}
		first := order[0]
		if pc := PCStep(last, set[last], first); pc != 0 {
			t.Fatalf("canonical first %d after %d has PC %d", first, last, pc)
		}
		if dc := DCStep(last, first, n, func(t ThreadID) bool { return set[t] }); dc != 0 {
			t.Fatalf("canonical first %d after %d has DC %d", first, last, dc)
		}
	}
}

func TestAppendCanonicalOrderMatchesCanonicalOrder(t *testing.T) {
	// AppendCanonicalOrder must agree with CanonicalOrder element for
	// element, append strictly after dst's existing contents, and reuse
	// dst's capacity (the allocation-free property the engines rely on).
	rng := rand.New(rand.NewSource(7))
	buf := make([]ThreadID, 0, 8)
	for i := 0; i < 10000; i++ {
		n := rng.Intn(8) + 1
		var enab []ThreadID
		for id := 0; id < n; id++ {
			if rng.Intn(2) == 0 {
				enab = append(enab, ThreadID(id))
			}
		}
		if len(enab) == 0 {
			continue
		}
		last := ThreadID(rng.Intn(n))
		want := CanonicalOrder(enab, last, n)
		got := AppendCanonicalOrder(buf[:0], enab, last, n)
		if len(got) != len(want) {
			t.Fatalf("lengths differ: %v vs %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("order differs at %d: %v vs %v", j, got, want)
			}
		}
		if cap(buf) >= len(got) && &got[0] != &buf[:1][0] {
			t.Fatal("AppendCanonicalOrder reallocated despite sufficient capacity")
		}
		if first := CanonicalFirst(enab, last, n); first != want[0] {
			t.Fatalf("CanonicalFirst = %d, want %d", first, want[0])
		}
		buf = got
	}
}

func TestAppendCanonicalOrderPreservesPrefix(t *testing.T) {
	dst := []ThreadID{9, 8}
	out := AppendCanonicalOrder(dst, []ThreadID{0, 1}, NoThread, 2)
	want := []ThreadID{9, 8, 0, 1}
	if len(out) != len(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestCanonicalOrderNonPreemptiveContinuationFirst(t *testing.T) {
	order := CanonicalOrder([]ThreadID{0, 1, 2}, 1, 3)
	want := []ThreadID{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleHelpers(t *testing.T) {
	s := Schedule{0, 0, 1, 0}
	if s.ContextSwitches() != 2 {
		t.Errorf("ContextSwitches = %d, want 2", s.ContextSwitches())
	}
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone not equal")
	}
	c[0] = 3
	if s.Equal(c) {
		t.Error("clone aliases original")
	}
	if s.Equal(Schedule{0, 0, 1}) {
		t.Error("length-differing schedules reported equal")
	}
}
