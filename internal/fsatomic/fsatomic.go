// Package fsatomic writes files atomically AND durably. The classic
// tmp+rename idiom is atomic with respect to concurrent readers, but not
// to power loss: without an fsync of the file the rename can publish a
// name whose bytes never reached the platter, and without an fsync of the
// parent directory the rename itself can be rolled back by a crash. Every
// checkpoint writer in this repository (explore frontier checkpoints,
// study row checkpoints, sctserve job checkpoints) goes through WriteFile
// so that after any crash the path holds either the previous complete
// file or the new complete file — never a torn one.
package fsatomic

import (
	"os"
	"path/filepath"

	"sctbench/internal/faultinject"
)

// WriteFile writes data to path atomically and durably: the bytes land in
// path+".tmp", are fsynced, renamed over path, and the parent directory
// is fsynced so the rename survives power loss. The
// faultinject.CheckpointDirSync point simulates a crash between the
// rename and the directory sync (the narrowest durability window): the
// renamed file is already complete, so callers treating the error as "the
// process died here" still find a loadable checkpoint on disk.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if faultinject.Hit(faultinject.CheckpointDirSync) {
		return faultinject.ErrInjected
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry in it is durable.
// Filesystems that cannot fsync directories (some network mounts) make
// this a no-op rather than an error: the write already succeeded, and
// surfacing an EINVAL here would turn a durability nicety into a spurious
// checkpoint failure.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
