// Package mapleidiom implements a faithful simplification of the default
// Maple algorithm [Yu et al., OOPSLA'12], the non-systematic
// coverage-driven technique the study compares against (MapleAlg in Table
// 3). The original performs profiling runs that record inter-thread
// memory-dependency patterns ("interleaving idioms"), predicts untested
// idioms, then performs active runs that steer the scheduler to force each
// untested idiom, giving up via heuristics.
//
// Our simplification keeps that structure at variable granularity (the
// same granularity our race-promotion phase uses): a profiled idiom is an
// ordered inter-thread dependency (key, firstIsWrite, secondIsWrite); the
// candidates are the flipped orders never observed while profiling; one
// active run per candidate prioritises the flip's first access and holds
// back threads about to perform its second access, with a give-up budget.
package mapleidiom

import (
	"sort"

	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// idiom is an ordered inter-thread dependency on one variable: an access
// of kind first (write/read) by some thread, later followed by an access
// of kind second by a different thread, with at least one write.
type idiom struct {
	key           string
	first, second bool // true = write
}

// Config parameterises a MapleAlg run.
type Config struct {
	// Program builds a fresh program instance per execution.
	Program func() vthread.Runnable
	// Visible is the promoted-variable predicate shared with the SCT
	// phases (§5: the racy-instruction information is common input to all
	// techniques).
	Visible func(string) bool
	// BoundsCheck and MaxSteps forward to the substrate.
	BoundsCheck bool
	MaxSteps    int
	// Seed drives the randomised profiling runs.
	Seed uint64
	// ProfileRuns is the number of profiling executions (0 = 3: one
	// round-robin plus two randomised, mirroring Maple's handful of
	// profile runs).
	ProfileRuns int
	// GiveUp is the per-execution budget of scheduling points the active
	// scheduler may spend holding a thread back before abandoning the
	// candidate (0 = 64), mirroring Maple's infeasibility heuristics.
	GiveUp int
}

// Result summarises a MapleAlg run.
type Result struct {
	// BugFound reports whether any profiling or active run failed.
	BugFound bool
	// Failure is the first failure observed.
	Failure *vthread.Failure
	// Witness is the schedule of the first failing run.
	Witness sched.Schedule
	// Schedules counts executions performed (profile + active), the number
	// Table 3 reports for MapleAlg.
	Schedules int
	// SchedulesToFirstBug is the execution index of the first failure.
	SchedulesToFirstBug int
	// Candidates is the number of untested idioms the active phase tried.
	Candidates int
}

// profiler records observed inter-thread dependencies.
type profiler struct {
	lastWriter map[string]vthread.ThreadID
	lastReader map[string]vthread.ThreadID
	seen       map[idiom]bool
}

var _ vthread.EventSink = (*profiler)(nil)

func newProfiler() *profiler {
	return &profiler{
		lastWriter: make(map[string]vthread.ThreadID),
		lastReader: make(map[string]vthread.ThreadID),
		seen:       make(map[idiom]bool),
	}
}

func (p *profiler) Access(t vthread.ThreadID, key string, write bool) {
	if w, ok := p.lastWriter[key]; ok && w != t {
		p.seen[idiom{key, true, write}] = true
	}
	if write {
		if r, ok := p.lastReader[key]; ok && r != t {
			p.seen[idiom{key, false, true}] = true
		}
		p.lastWriter[key] = t
	} else {
		p.lastReader[key] = t
	}
}

func (p *profiler) Acquire(vthread.ThreadID, string)       {}
func (p *profiler) Release(vthread.ThreadID, string)       {}
func (p *profiler) Spawned(parent, child vthread.ThreadID) {}

// activeChooser steers one execution to force candidate c: before the
// candidate's first access has happened, threads about to perform the
// candidate's *second* access are held back (if any alternative exists)
// and threads about to perform the first access are prioritised. After
// the first access executes, the second is prioritised. A give-up budget
// bounds the interference.
type activeChooser struct {
	c      idiom
	fired  bool // first access has executed
	budget int
	// allowedBuf is reused across scheduling points for the held-back set.
	allowedBuf []vthread.ThreadID
}

func (a *activeChooser) Choose(ctx vthread.Context) vthread.ThreadID {
	if a.budget > 0 {
		if pick, ok := a.steer(ctx); ok {
			return pick
		}
	}
	// Default: non-preemptive round-robin.
	if ctx.LastEnabled {
		return ctx.Last
	}
	return sched.CanonicalFirst(ctx.Enabled, ctx.Last, ctx.NumThreads)
}

// ObserveForcedStep implements vthread.StepObserver by delegating to
// Choose and discarding the pick (which is forced anyway): steering state
// — the fired flag and the give-up budget — advances inside Choose even
// when only one thread is enabled (the candidate's first access may be
// exactly that thread's pending operation), so forced steps must run the
// same logic for an active run to behave identically with the fast path
// on or off.
func (a *activeChooser) ObserveForcedStep(ctx vthread.Context) { a.Choose(ctx) }

func (a *activeChooser) steer(ctx vthread.Context) (vthread.ThreadID, bool) {
	if ctx.SelectOf != vthread.NoThread {
		// Case-decision point: Enabled holds select case indices, not
		// thread ids, so access steering does not apply. Fall back to the
		// default pick (canonical first = lowest ready case).
		return 0, false
	}
	want := func(t vthread.ThreadID, write bool) bool {
		pi := ctx.PendingOf(t)
		return pi.IsAccess && pi.Key == a.c.key && pi.IsWrite == write
	}
	if !a.fired {
		// Prioritise the first access of the flipped idiom.
		for _, t := range ctx.Enabled {
			if want(t, a.c.first) {
				a.fired = true
				a.budget--
				return t, true
			}
		}
		// Hold back threads poised to perform the second access.
		allowed := a.allowedBuf[:0]
		for _, t := range ctx.Enabled {
			if !want(t, a.c.second) {
				allowed = append(allowed, t)
			}
		}
		a.allowedBuf = allowed
		if len(allowed) > 0 && len(allowed) < len(ctx.Enabled) {
			a.budget--
			if ctx.LastEnabled {
				for _, t := range allowed {
					if t == ctx.Last {
						return t, true
					}
				}
			}
			return sched.CanonicalFirst(allowed, ctx.Last, ctx.NumThreads), true
		}
		return 0, false
	}
	// First access done: prioritise the second.
	for _, t := range ctx.Enabled {
		if want(t, a.c.second) {
			return t, true
		}
	}
	return 0, false
}

// Run executes the MapleAlg pipeline: profile, derive untested flipped
// idioms, then one active run per candidate.
func Run(cfg Config) *Result {
	profileRuns := cfg.ProfileRuns
	if profileRuns == 0 {
		profileRuns = 3
	}
	giveUp := cfg.GiveUp
	if giveUp == 0 {
		giveUp = 64
	}
	res := &Result{}
	prof := newProfiler()
	ex := vthread.NewExecutor(vthread.Options{
		Visible:     cfg.Visible,
		BoundsCheck: cfg.BoundsCheck,
		MaxSteps:    cfg.MaxSteps,
	})
	defer ex.Close()

	record := func(out *vthread.Outcome) bool {
		res.Schedules++
		if out.Buggy() && !res.BugFound {
			res.BugFound = true
			res.Failure = out.Failure
			res.Witness = out.Trace.Clone()
			res.SchedulesToFirstBug = res.Schedules
		}
		return out.Buggy()
	}

	// Profiling phase: one deterministic run plus randomised runs, all
	// observed by the dependency profiler. Maple itself stops as soon as a
	// run fails, and so do we.
	for i := 0; i < profileRuns; i++ {
		var chooser vthread.Chooser = vthread.RoundRobin()
		if i > 0 {
			chooser = vthread.NewRandom(cfg.Seed + uint64(i))
		}
		prof.lastWriter = make(map[string]vthread.ThreadID)
		prof.lastReader = make(map[string]vthread.ThreadID)
		if record(ex.RunWith(chooser, prof, cfg.Program())) {
			return res
		}
	}

	// Candidate derivation: flip every observed idiom; drop flips that
	// were themselves observed (already tested) and read–read pairs.
	var candidates []idiom
	for id := range prof.seen {
		flip := idiom{id.key, id.second, id.first}
		if !flip.first && !flip.second {
			continue
		}
		if !prof.seen[flip] {
			candidates = append(candidates, flip)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		if a.key != b.key {
			return a.key < b.key
		}
		if a.first != b.first {
			return a.first
		}
		return a.second && !b.second
	})
	res.Candidates = len(candidates)

	// Active phase: one steered execution per untested idiom.
	for _, c := range candidates {
		if record(ex.RunWith(&activeChooser{c: c, budget: giveUp}, nil, cfg.Program())) {
			return res
		}
	}
	return res
}
