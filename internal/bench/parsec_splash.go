package bench

// PARSEC 2.0 and SPLASH-2 analogues. The paper used the "test" inputs with
// 2–3 worker threads and reduced parameters (§4.1, §6); we reduce the same
// way. ferret's pipeline and streamcluster's barrier-phase structure are
// preserved at miniature scale; the three SPLASH-2 programs share the real
// suite's bug — a macro set that omits "wait for threads to terminate", so
// the master can read results before the workers finish writing them.
//
// Registered in compiled form (New, flat engine) with the closure original
// as the Ref equivalence twin. Long noise loops (radbench churn, the
// streamcluster pre-barrier phases) compile to register-counted While
// loops rather than unrolled sequences — visible-op-identical, far fewer
// instructions.

import "sctbench/internal/vthread"

func init() {
	register(&Benchmark{
		ID: 39, Name: "parsec.ferret", Suite: "PARSEC", Threads: 11,
		BugKind: vthread.FailAssert,
		Desc:    "pipeline: a stage thread must stay unscheduled while all others drain the queue",
		New:     func() vthread.Runnable { return compiledFerret() },
		Ref:     ferret,
	})
	register(&Benchmark{
		ID: 40, Name: "parsec.streamcluster", Suite: "PARSEC", Threads: 5,
		BugKind: vthread.FailAssert,
		Desc:    "barrier phase: worker reads the median before the master finishes writing it",
		New:     func() vthread.Runnable { return compiledStreamcluster1() },
		Ref:     streamcluster1,
	})
	register(&Benchmark{
		ID: 41, Name: "parsec.streamcluster2", Suite: "PARSEC", Threads: 7,
		BugKind: vthread.FailAssert,
		Desc:    "three-worker variant: incorrect output when a straggler's contribution is dropped",
		New:     func() vthread.Runnable { return compiledStreamcluster2() },
		Ref:     streamcluster2,
	})
	register(&Benchmark{
		ID: 42, Name: "parsec.streamcluster3", Suite: "PARSEC", Threads: 5,
		BugKind: vthread.FailAssert,
		Desc:    "out-of-bounds access when the master leaves the barrier after a worker (manual assertion, §4.2)",
		New:     func() vthread.Runnable { return compiledStreamcluster3() },
		Ref:     streamcluster3,
	})

	registerSplash(49, "splash2.barnes", 60)
	registerSplash(50, "splash2.fft", 12)
	registerSplash(51, "splash2.lu", 10)

	register(&Benchmark{
		ID: 43, Name: "radbench.bug1", Suite: "RADBench", Threads: 4,
		BugKind: vthread.FailCrash,
		Desc:    "SpiderMonkey: hash table destroyed while another thread still dereferences it",
		New:     func() vthread.Runnable { return compiledRadbench1() },
		Ref:     radbench1,
	})
	register(&Benchmark{
		ID: 44, Name: "radbench.bug2", Suite: "RADBench", Threads: 2,
		BugKind: vthread.FailAssert,
		Desc:    "two threads, three ordering constraints: needs exactly three preemptions = three delays",
		New:     func() vthread.Runnable { return compiledRadbench2() },
		Ref:     radbench2,
	})
	register(&Benchmark{
		ID: 45, Name: "radbench.bug3", Suite: "RADBench", Threads: 3,
		BugKind: vthread.FailDeadlock,
		Desc:    "NSPR: notify on the wrong monitor deadlocks the round-robin schedule itself",
		New:     func() vthread.Runnable { return compiledRadbench3() },
		Ref:     radbench3,
	})
	register(&Benchmark{
		ID: 46, Name: "radbench.bug4", Suite: "RADBench", Threads: 3,
		BugKind: vthread.FailCrash,
		Desc:    "lazily initialised lock: double initialisation leads to unlocking an unheld mutex",
		New:     func() vthread.Runnable { return compiledRadbench4() },
		Ref:     radbench4,
	})
	register(&Benchmark{
		ID: 47, Name: "radbench.bug5", Suite: "RADBench", Threads: 7,
		BugKind: vthread.FailAssert,
		Desc:    "idiom bug: remote dependency flip buried under six threads of noise",
		New:     func() vthread.Runnable { return compiledRadbench5() },
		Ref:     radbench5,
	})
	register(&Benchmark{
		ID: 48, Name: "radbench.bug6", Suite: "RADBench", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "condvar wakeup consumes a state change another waiter needed",
		New:     func() vthread.Runnable { return compiledRadbench6() },
		Ref:     radbench6,
	})
}

// ferret models the PARSEC content-similarity pipeline: a load stage
// (spawned first) enqueues the work item; nine downstream stage threads
// process queue traffic and shut the pipeline down when the last of them
// finishes, checking that the load stage produced anything at all. The
// bug: a pipeline drained and shut down with the load stage never
// scheduled reports empty output. One delay achieves exactly that under
// the round-robin scheduler (the delayed thread is revisited only after
// all later threads run to completion); a random scheduler almost surely
// reschedules the load stage long before nine others finish, so Rand
// misses the bug — the Table 3 signature of this benchmark. Preemption
// bounding drowns at bound zero: ten threads' exit orderings alone exceed
// the schedule limit.
func ferret() vthread.Program {
	return func(t0 *vthread.Thread) {
		const consumers = 9
		m := t0.NewMutex("pipe")
		queued := t0.NewVar("queued", 0)
		processed := t0.NewVar("processed", 0)
		noise := t0.NewVar("noise", 0)
		ts := make([]*vthread.Thread, 0, consumers+1)
		// The load stage: its entire contribution is its first operation.
		ts = append(ts, t0.Spawn(func(tw *vthread.Thread) {
			m.Lock(tw)
			queued.Add(tw, 1)
			m.Unlock(tw)
		}))
		for i := 0; i < consumers; i++ {
			ts = append(ts, t0.Spawn(func(tw *vthread.Thread) {
				for round := 0; round < 6; round++ {
					m.Lock(tw)
					noise.Add(tw, 1)
					m.Unlock(tw)
				}
				m.Lock(tw)
				p := processed.Add(tw, 1)
				if p == consumers {
					// Shutdown: the pipeline must have seen the work item.
					tw.Assert(queued.Load(tw) > 0,
						"pipeline shut down before the load stage ran")
				}
				m.Unlock(tw)
			}))
		}
		joinAll(t0, ts)
	}
}

func compiledFerret() *vthread.CompiledProgram {
	const consumers = 9
	p := vthread.NewBuilder()
	m := p.Mutex("pipe")
	queued := p.Var("queued", 0)
	processed := p.Var("processed", 0)
	noise := p.Var("noise", 0)
	load := p.Body(0, 0)
	load.Lock(m)
	load.AddVar(queued, 1)
	load.Unlock(m)
	cons := p.Body(0, 0)
	loopN(cons, 6, func() {
		cons.Lock(m)
		cons.AddVar(noise, 1)
		cons.Unlock(m)
	})
	cons.Lock(m)
	pr := cons.AddVar(processed, 1)
	cons.If(eq(pr, consumers), func() {
		q := cons.Load(queued)
		cons.Assert(gt(q, 0), "pipeline shut down before the load stage ran")
	})
	cons.Unlock(m)
	mn := p.Main()
	hs := make([]vthread.OReg, 0, consumers+1)
	hs = append(hs, mn.Spawn(load))
	for i := 0; i < consumers; i++ {
		hs = append(hs, mn.Spawn(cons))
	}
	joinRegs(mn, hs)
	return p.Build()
}

// streamcluster1: four workers iterate six barrier-separated phases; the
// master is the last-created worker, so under round-robin it is the last
// arriver, passes straight through the barrier and writes the phase median
// before any waiter wakes. The actual PARSEC bug is the missing second
// barrier after the write: waking a waiter before the master's store (one
// preemption = one delay, since the master is still enabled) yields a
// stale read. Only the first phase checks the median, so the deep phases
// are pure schedule noise: their 3! wake orders per phase give a
// zero-preemption space of ~6^6 that buries preemption bounding, and a
// deep tail that keeps depth-first search away from the shallow bug.
func streamcluster1() vthread.Program {
	return func(t0 *vthread.Thread) {
		const workers = 4
		const phases = 6
		b := t0.NewBarrier("phase", workers)
		median := t0.NewVar("median", -1)
		ts := make([]*vthread.Thread, workers)
		for i := 0; i < workers; i++ {
			i := i
			ts[i] = t0.Spawn(func(tw *vthread.Thread) {
				for phase := 0; phase < phases; phase++ {
					b.Arrive(tw)
					if i == workers-1 {
						median.Store(tw, phase) // the master's post-barrier write
					} else if phase == 0 {
						got := median.Load(tw)
						tw.Assert(got == 0, "read stale median %d before the master wrote it", got)
					}
					// Missing barrier here in the original.
				}
			})
		}
		joinAll(t0, ts)
	}
}

func compiledStreamcluster1() *vthread.CompiledProgram {
	const workers = 4
	const phases = 6
	p := vthread.NewBuilder()
	b := p.Barrier("phase", workers)
	median := p.Var("median", -1)
	// The checker workers (i < workers-1): only phase 0 reads the median.
	wk := p.Body(0, 0)
	for phase := 0; phase < phases; phase++ {
		wk.Arrive(b)
		if phase == 0 {
			got := wk.Load(median)
			wk.Assert(eq(got, 0), "read stale median %d before the master wrote it", got)
		}
	}
	// The master (last-created worker) writes after every barrier.
	ms := p.Body(0, 0)
	for phase := 0; phase < phases; phase++ {
		ms.Arrive(b)
		ms.Store(median, phase)
	}
	mn := p.Main()
	hs := make([]vthread.OReg, 0, workers)
	for i := 0; i < workers-1; i++ {
		hs = append(hs, mn.Spawn(wk))
	}
	hs = append(hs, mn.Spawn(ms))
	joinRegs(mn, hs)
	return p.Build()
}

// streamcluster2: the three-versions variant with the paper's added output
// check. Six workers accumulate the clustering cost with a racy
// read-modify-write in the first phase only; a torn update (one
// preemption/delay inside someone's Add) loses a contribution and the
// final cost check fails. The second phase is pure barrier noise: its 5!
// wake orders push the zero-preemption space past the limit for IPB and
// give DFS a bug-free deep tail.
func streamcluster2() vthread.Program {
	return func(t0 *vthread.Thread) {
		const workers = 6
		b := t0.NewBarrier("phase", workers)
		cost := t0.NewVar("cost", 0)
		ts := make([]*vthread.Thread, workers)
		for i := 0; i < workers; i++ {
			ts[i] = t0.Spawn(func(tw *vthread.Thread) {
				cost.Add(tw, 10) // racy accumulate (phase 0)
				b.Arrive(tw)
				b.Arrive(tw) // phase 1: noise
			})
		}
		joinAll(t0, ts)
		got := cost.Load(t0)
		// Output check added by the paper (§4.2).
		t0.Assert(got == workers*10, "incorrect output: cost=%d, want %d", got, workers*10)
	}
}

func compiledStreamcluster2() *vthread.CompiledProgram {
	const workers = 6
	p := vthread.NewBuilder()
	b := p.Barrier("phase", workers)
	cost := p.Var("cost", 0)
	wk := p.Body(0, 0)
	wk.AddVar(cost, 10)
	wk.Arrive(b)
	wk.Arrive(b)
	mn := p.Main()
	hs := make([]vthread.OReg, 0, workers)
	for i := 0; i < workers; i++ {
		hs = append(hs, mn.Spawn(wk))
	}
	joinRegs(mn, hs)
	got := mn.Load(cost)
	mn.Assert(eq(got, workers*10), "incorrect output: cost=%d, want %d", got, workers*10)
	return p.Build()
}

// streamcluster3: the previously unknown out-of-bounds access found by the
// paper's OOB detector, and its IPB-beats-IDB outlier. The master (created
// first) and the checker both arrive at the resize barrier early and
// block; two noise workers arrive after long computations, the last one
// passing straight through. At the wake point the deterministic scheduler
// picks the master (creation order), which resizes the table before the
// checker indexes the new extent — so the zero-delay schedule passes, and
// exposing the bug needs exactly one delay to skip over the master. But
// the wake choice is non-preemptive (the last arriver just left), so
// preemption bounding reaches the bug at bound zero within a handful of
// schedules, while delay bounding must enumerate ~the whole bound-one
// space. The paper's Figure 4 calls this benchmark out as the worst case
// for IDB.
func streamcluster3() vthread.Program {
	return func(t0 *vthread.Thread) {
		const workers = 4
		b := t0.NewBarrier("resize", workers)
		size := t0.NewVar("size", 2)
		table := t0.NewArray("table", 8)
		traffic := t0.NewVar("traffic", 0)
		ts := make([]*vthread.Thread, workers)
		for i := 0; i < workers; i++ {
			i := i
			ts[i] = t0.Spawn(func(tw *vthread.Thread) {
				switch i {
				case 0: // master
					b.Arrive(tw)
					size.Store(tw, 4)
					table.Set(tw, 3, 1)
				case 1: // checker: indexes the resized extent
					b.Arrive(tw)
					n := size.Load(tw)
					// Manual assertion standing in for the OOB detector
					// (§4.2): indexing element 3 is valid only after the
					// master's resize.
					tw.Assert(n >= 4, "index 3 out of bounds: table extent still %d", n)
					_ = table.Get(tw, 3)
				default: // noise arrivers with long pre-barrier phases
					for r := 0; r < 300; r++ {
						traffic.Add(tw, 1)
					}
					b.Arrive(tw)
				}
			})
		}
		joinAll(t0, ts)
	}
}

func compiledStreamcluster3() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	b := p.Barrier("resize", 4)
	size := p.Var("size", 2)
	table := p.Array("table", 8)
	traffic := p.Var("traffic", 0)
	ms := p.Body(0, 0)
	ms.Arrive(b)
	ms.Store(size, 4)
	ms.SetAt(table, 3, 1)
	ck := p.Body(0, 0)
	ck.Arrive(b)
	n := ck.Load(size)
	ck.Assert(ge(n, 4), "index 3 out of bounds: table extent still %d", n)
	ck.Get(table, 3)
	nz := p.Body(0, 0)
	loopN(nz, 300, func() { nz.AddVar(traffic, 1) })
	nz.Arrive(b)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(ms), mn.Spawn(ck), mn.Spawn(nz), mn.Spawn(nz)}
	joinRegs(mn, hs)
	return p.Build()
}

// radbench1: SpiderMonkey's JSRuntime hash-table teardown race. The user
// thread locks the runtime early in its life; the destroyer tears the
// runtime down at the END of a long shutdown path; four traffic threads
// generate thousands of scheduling points. The crash (locking a destroyed
// mutex) needs just one delay — skip the user's very first operation and
// the deterministic scheduler runs the whole destroyer before coming back
// — but that delay sits at the shallowest point of the execution, which
// depth-first-ordered bound-1 enumeration reaches only after the >10,000
// deeper one-delay schedules. Every technique exhausts its budget first;
// random scheduling would have to starve the user's first step across the
// destroyer's entire shutdown path. This is the paper's "the large number
// of scheduling points pushes the bug out of reach" benchmark.
func radbench1() vthread.Program {
	return func(t0 *vthread.Thread) {
		rt := t0.NewMutex("runtime")
		traffic := t0.NewVar("traffic", 0)
		churn := func(n int) func(tw *vthread.Thread) {
			return func(tw *vthread.Thread) {
				for r := 0; r < n; r++ {
					traffic.Add(tw, 1)
				}
			}
		}
		ts := make([]*vthread.Thread, 0, 5)
		// The destroyer: a long shutdown path, then the teardown.
		ts = append(ts, t0.Spawn(func(tw *vthread.Thread) {
			churn(1000)(tw)
			rt.Destroy(tw)
		}))
		for i := 0; i < 4; i++ {
			ts = append(ts, t0.Spawn(func(tw *vthread.Thread) { churn(1000)(tw) }))
		}
		// Main is the runtime user. Its lock is its first operation after
		// the spawns, and main remains enabled throughout them, so under
		// any zero-preemption schedule the lock precedes the teardown; the
		// crash needs main's first step delayed past the destroyer's whole
		// shutdown path.
		rt.Lock(t0)
		rt.Unlock(t0)
		churn(1000)(t0)
		joinAll(t0, ts)
	}
}

func compiledRadbench1() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	rt := p.Mutex("runtime")
	traffic := p.Var("traffic", 0)
	churn := func(c *vthread.Code, n int) {
		loopN(c, n, func() { c.AddVar(traffic, 1) })
	}
	des := p.Body(0, 0)
	churn(des, 1000)
	des.DestroyMutex(rt)
	noise := p.Body(0, 0)
	churn(noise, 1000)
	mn := p.Main()
	hs := make([]vthread.OReg, 0, 5)
	hs = append(hs, mn.Spawn(des))
	for i := 0; i < 4; i++ {
		hs = append(hs, mn.Spawn(noise))
	}
	mn.Lock(rt)
	mn.Unlock(rt)
	churn(mn, 1000)
	joinRegs(mn, hs)
	return p.Build()
}

// radbench2: the two-thread SpiderMonkey bug that needs three preemptions
// — three separate ordering constraints between the same two threads:
// the watcher must observe the armed flag before main disarms it, main
// must then disarm-and-publish, and the watcher must observe the
// publication with the flag already gone. With two threads, every delay
// is a preemption and vice versa, so IPB and IDB explore identical
// schedules (§6 of the paper notes exactly this). Noise operations pad
// each segment so the bound-3 space is thousands of schedules and
// unbounded DFS drowns in the 2^points interleavings.
func radbench2() vthread.Program {
	return func(t0 *vthread.Thread) {
		armed := t0.NewVar("armed", 0)
		temp := t0.NewVar("temp", 0)
		published := t0.NewVar("published", 0)
		pad := t0.NewVar("pad", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			sawArmed := armed.Load(tw) // constraint 1: inside the armed window
			for r := 0; r < 4; r++ {
				pad.Add(tw, 1)
			}
			sawTemp := temp.Load(tw)     // constraint 2: inside the temp window
			sawPub := published.Load(tw) // constraint 3: after the publication
			tw.Assert(!(sawArmed == 1 && sawTemp == 1 && sawPub == 1),
				"watcher observed armed, temp and published states out of order")
		})
		armed.Store(t0, 1) // open window 1
		for r := 0; r < 5; r++ {
			pad.Add(t0, 1)
		}
		armed.Store(t0, 0)     // close window 1
		temp.Store(t0, 1)      // open window 2
		published.Store(t0, 1) // window 3 opens inside window 2…
		temp.Store(t0, 0)      // …which closes immediately after
		for r := 0; r < 5; r++ {
			pad.Add(t0, 1)
		}
		t0.Join(w)
	}
}

func compiledRadbench2() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	armed := p.Var("armed", 0)
	temp := p.Var("temp", 0)
	published := p.Var("published", 0)
	pad := p.Var("pad", 0)
	wt := p.Body(0, 0)
	sawArmed := wt.Load(armed)
	loopN(wt, 4, func() { wt.AddVar(pad, 1) })
	sawTemp := wt.Load(temp)
	sawPub := wt.Load(published)
	wt.Assert(func(t *vthread.Thread) bool {
		return !(t.Reg(sawArmed) == 1 && t.Reg(sawTemp) == 1 && t.Reg(sawPub) == 1)
	}, "watcher observed armed, temp and published states out of order")
	mn := p.Main()
	w := mn.Spawn(wt)
	mn.Store(armed, 1)
	loopN(mn, 5, func() { mn.AddVar(pad, 1) })
	mn.Store(armed, 0)
	mn.Store(temp, 1)
	mn.Store(published, 1)
	mn.Store(temp, 0)
	loopN(mn, 5, func() { mn.AddVar(pad, 1) })
	mn.Join(w)
	return p.Build()
}

// radbench3: NSPR monitor misuse — a notification is consumed before the
// peer waits and the reply notification is missing entirely, so the
// round-robin schedule (and nearly every other) deadlocks immediately.
func radbench3() vthread.Program {
	return func(t0 *vthread.Thread) {
		m := t0.NewMutex("mon")
		cv := t0.NewCond("mon.cv")
		stage := t0.NewVar("stage", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			m.Lock(tw)
			cv.Signal(tw) // lost or stolen: nobody waits yet
			stage.Store(tw, 1)
			for stage.Load(tw) != 2 {
				cv.Wait(tw, m)
			}
			m.Unlock(tw)
		})
		helper := t0.Spawn(func(tw *vthread.Thread) {
			m.Lock(tw)
			m.Unlock(tw)
		})
		m.Lock(t0)
		for stage.Load(t0) != 1 {
			cv.Wait(t0, m)
		}
		stage.Store(t0, 2)
		// Missing cv.Signal(t0) — the second lost notification.
		m.Unlock(t0)
		t0.Join(w)
		t0.Join(helper)
	}
}

func compiledRadbench3() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	m := p.Mutex("mon")
	cv := p.Cond("mon.cv")
	stage := p.Var("stage", 0)
	w := p.Body(0, 0)
	w.Lock(m)
	w.Signal(cv)
	w.Store(stage, 1)
	s := w.Load(stage)
	w.While(ne(s, 2), func() {
		w.Wait(cv, m)
		l := w.Load(stage)
		w.Set(s, l)
	})
	w.Unlock(m)
	hp := p.Body(0, 0)
	hp.Lock(m)
	hp.Unlock(m)
	mn := p.Main()
	hw := mn.Spawn(w)
	hh := mn.Spawn(hp)
	mn.Lock(m)
	s0 := mn.Load(stage)
	mn.While(ne(s0, 1), func() {
		mn.Wait(cv, m)
		l := mn.Load(stage)
		mn.Set(s0, l)
	})
	mn.Store(stage, 2)
	mn.Unlock(m)
	mn.Join(hw)
	mn.Join(hh)
	return p.Build()
}

// radbench4: NSPR's lazily initialised lock. Both threads run the
// "if (!initialised) { create lock; initialised = 1 }" pattern and then
// lock through the global handle, unlocking through a *fresh* read of the
// handle, as the original code does. A double initialisation replaces the
// handle while a thread is inside its critical section; that thread (or
// its peer) then unlocks a mutex it does not hold — a crash. The
// interleaving needs two precisely placed delays (one in the
// initialisation window, one inside a critical section), both early in
// the execution, and a noise thread widens the bound-2 space past the
// schedule limit: iterative delay bounding exhausts its budget at bound 2
// while random scheduling stumbles into the window — the paper's
// Rand-only benchmark.
func radbench4() vthread.Program {
	return func(t0 *vthread.Thread) {
		inited := t0.NewVar("inited", 0)
		handle := vthread.NewRef[*vthread.Mutex](t0, "handle", nil)
		noise := t0.NewVar("noise4", 0)
		use := func(me, prefix int) vthread.Program {
			return func(tw *vthread.Thread) {
				for r := 0; r < prefix; r++ {
					noise.Add(tw, 1)
				}
				if inited.Load(tw) == 0 {
					for r := 0; r < 3; r++ {
						noise.Add(tw, 1) // allocation work inside the window
					}
					handle.Store(tw, tw.NewMutex("lazy"+itoa(me)))
					inited.Store(tw, 1)
				}
				m := handle.Load(tw)
				m.Lock(tw)
				for r := 0; r < 4; r++ {
					noise.Add(tw, 1) // critical section
				}
				m2 := handle.Load(tw) // the original unlocks via the global
				m2.Unlock(tw)         // crash if the handle moved underneath
			}
		}
		// The second user's long prefix makes a double initialisation rare
		// under random scheduling (the first user normally finishes its
		// init long before the second's check) while keeping it reachable
		// with two early delays.
		w1 := t0.Spawn(use(1, 2))
		w2 := t0.Spawn(use(2, 12))
		w3 := t0.Spawn(func(tw *vthread.Thread) {
			for r := 0; r < 200; r++ {
				noise.Add(tw, 1)
			}
		})
		t0.Join(w1)
		t0.Join(w2)
		t0.Join(w3)
	}
}

func compiledRadbench4() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	inited := p.Var("inited", 0)
	handle := p.Ref("handle")
	noise := p.Var("noise4", 0)
	use := func(me, prefix int) *vthread.Code {
		c := p.Body(0, 0)
		loopN(c, prefix, func() { c.AddVar(noise, 1) })
		i := c.Load(inited)
		c.If(eq(i, 0), func() {
			loopN(c, 3, func() { c.AddVar(noise, 1) })
			o := c.NewMutex("lazy" + itoa(me))
			c.RefStore(handle, o)
			c.Store(inited, 1)
		})
		m := c.RefLoad(handle)
		c.Lock(m)
		loopN(c, 4, func() { c.AddVar(noise, 1) })
		m2 := c.RefLoad(handle)
		c.Unlock(m2)
		return c
	}
	u1 := use(1, 2)
	u2 := use(2, 12)
	nz := p.Body(0, 0)
	loopN(nz, 200, func() { nz.AddVar(noise, 1) })
	mn := p.Main()
	h1 := mn.Spawn(u1)
	h2 := mn.Spawn(u2)
	h3 := mn.Spawn(nz)
	mn.Join(h1)
	mn.Join(h2)
	mn.Join(h3)
	return p.Build()
}

// radbench5: the MapleAlg-only bug. The draft-state reader (created
// early) performs its racy check as its very first operation; the writer
// publishes at the end of a long path, behind four noise threads. Exactly
// the same buried-shallow-window structure as radbench1 — systematic
// techniques exhaust their budgets on deeper schedules and random
// scheduling cannot starve the reader long enough — but unlike radbench1
// the hazard is a plain publish/consume dependency on a shared variable,
// so idiom-driven active testing (the Maple algorithm) profiles the
// consume-before-publish order, flips it, holds the reader back, and
// exposes the bug in a handful of runs.
func radbench5() vthread.Program {
	return func(t0 *vthread.Thread) {
		published := t0.NewVar("published", 0)
		noise := t0.NewVar("noise5", 0)
		churn := func(n int) func(tw *vthread.Thread) {
			return func(tw *vthread.Thread) {
				for r := 0; r < n; r++ {
					noise.Add(tw, 1)
				}
			}
		}
		ts := make([]*vthread.Thread, 0, 6)
		// Writer: publishes at the end of a long path.
		ts = append(ts, t0.Spawn(func(tw *vthread.Thread) {
			churn(1000)(tw)
			published.Store(tw, 1)
		}))
		for i := 0; i < 5; i++ {
			ts = append(ts, t0.Spawn(func(tw *vthread.Thread) { churn(1000)(tw) }))
		}
		// Main consumes the draft state right after the spawns; its load
		// must be dragged past the writer's entire path for the bug to
		// fire, which only the idiom-driven active scheduler does reliably.
		if published.Load(t0) == 1 {
			t0.Fail("consumed draft state after publication")
		}
		churn(1000)(t0)
		joinAll(t0, ts)
	}
}

func compiledRadbench5() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	published := p.Var("published", 0)
	noise := p.Var("noise5", 0)
	churn := func(c *vthread.Code, n int) {
		loopN(c, n, func() { c.AddVar(noise, 1) })
	}
	wr := p.Body(0, 0)
	churn(wr, 1000)
	wr.Store(published, 1)
	nz := p.Body(0, 0)
	churn(nz, 1000)
	mn := p.Main()
	hs := make([]vthread.OReg, 0, 6)
	hs = append(hs, mn.Spawn(wr))
	for i := 0; i < 5; i++ {
		hs = append(hs, mn.Spawn(nz))
	}
	pub := mn.Load(published)
	mn.FailIf(eq(pub, 1), "consumed draft state after publication")
	churn(mn, 1000)
	joinRegs(mn, hs)
	return p.Build()
}

// radbench6: a condvar wakeup consumes a state change that a second
// waiter needed — one delay moves the signal between the two waiters'
// checks.
func radbench6() vthread.Program {
	return func(t0 *vthread.Thread) {
		m := t0.NewMutex("m")
		cv := t0.NewCond("cv")
		avail := t0.NewVar("avail", 0)
		shutdown := t0.NewVar("shutdown", 0)
		pad := t0.NewVar("pad6", 0)
		waiter := t0.Spawn(func(tw *vthread.Thread) {
			m.Lock(tw)
			if avail.Load(tw) == 0 && shutdown.Load(tw) == 0 {
				cv.Wait(tw, m)
			}
			// Bug: "if" instead of "while" — a barger who consumed the
			// state between the signal and this wakeup leaves nothing.
			got := avail.Load(tw)
			tw.Assert(got > 0, "woke with nothing available")
			avail.Store(tw, got-1)
			m.Unlock(tw)
		})
		barger := t0.Spawn(func(tw *vthread.Thread) {
			m.Lock(tw)
			if avail.Load(tw) > 0 { // barging path: consumes without waiting
				avail.Add(tw, -1)
			}
			m.Unlock(tw)
			for r := 0; r < 10; r++ {
				pad.Add(tw, 1)
			}
		})
		m.Lock(t0)
		avail.Store(t0, 1)
		cv.Signal(t0)
		m.Unlock(t0)
		m.Lock(t0)
		if avail.Load(t0) == 0 { // producer tops up if the first was taken
			avail.Store(t0, 1)
			cv.Signal(t0)
		}
		m.Unlock(t0)
		for r := 0; r < 10; r++ {
			pad.Add(t0, 1)
		}
		// Shutdown protocol: after the barger is done, raise the shutdown
		// flag and broadcast, so a lost-signal schedule manifests as the
		// "woke with nothing available" assertion rather than a hang —
		// mirroring the original test harness, which timed out and flagged
		// the condition.
		t0.Join(barger)
		m.Lock(t0)
		shutdown.Store(t0, 1)
		cv.Broadcast(t0)
		m.Unlock(t0)
		t0.Join(waiter)
	}
}

func compiledRadbench6() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	m := p.Mutex("m")
	cv := p.Cond("cv")
	avail := p.Var("avail", 0)
	shutdown := p.Var("shutdown", 0)
	pad := p.Var("pad6", 0)
	wt := p.Body(0, 0)
	wt.Lock(m)
	// The && short-circuits: the shutdown flag loads only when avail
	// read zero.
	a := wt.Load(avail)
	wt.If(eq(a, 0), func() {
		s := wt.Load(shutdown)
		wt.If(eq(s, 0), func() {
			wt.Wait(cv, m)
		})
	})
	got := wt.Load(avail)
	wt.Assert(gt(got, 0), "woke with nothing available")
	wt.Store(avail, plus(got, -1))
	wt.Unlock(m)
	bg := p.Body(0, 0)
	bg.Lock(m)
	ba := bg.Load(avail)
	bg.If(gt(ba, 0), func() {
		bg.AddVar(avail, -1)
	})
	bg.Unlock(m)
	loopN(bg, 10, func() { bg.AddVar(pad, 1) })
	mn := p.Main()
	hw := mn.Spawn(wt)
	hb := mn.Spawn(bg)
	mn.Lock(m)
	mn.Store(avail, 1)
	mn.Signal(cv)
	mn.Unlock(m)
	mn.Lock(m)
	pa := mn.Load(avail)
	mn.If(eq(pa, 0), func() {
		mn.Store(avail, 1)
		mn.Signal(cv)
	})
	mn.Unlock(m)
	loopN(mn, 10, func() { mn.AddVar(pad, 1) })
	mn.Join(hb)
	mn.Lock(m)
	mn.Store(shutdown, 1)
	mn.Broadcast(cv)
	mn.Unlock(m)
	mn.Join(hw)
	return p.Build()
}

// registerSplash builds the three SPLASH-2 entries. All share one bug: the
// provided macro set omits WAIT_FOR_END, so the master asserts the
// workers' completion flags right after the last synchronisation point,
// and a worker preempted between its final sync and its final store fails
// the check. steps scales the pre-bug computation (the paper reduced
// inputs until race detection completed; the step count is what differs
// between barnes, fft and lu).
func registerSplash(id int, name string, steps int) {
	register(&Benchmark{
		ID: id, Name: name, Suite: "SPLASH-2", Threads: 2,
		BugKind: vthread.FailAssert,
		Desc:    "missing WAIT_FOR_END macro: master checks results before the worker's last store",
		New:     func() vthread.Runnable { return compiledSplash(steps) },
		Ref:     func() vthread.Program { return refSplash(steps) },
	})
}

func refSplash(steps int) vthread.Program {
	return func(t0 *vthread.Thread) {
		work := t0.NewVar("work", 0)
		doneFlag := t0.NewVar("done", 0)
		started := t0.NewSem("started", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			for i := 0; i < steps; i++ {
				work.Add(tw, 1)
			}
			started.V(tw)
			// The worker's very last store: everything before it is
			// ordered by the semaphore, this one is not.
			doneFlag.Store(tw, 1)
		})
		started.P(t0)
		// Missing WAIT_FOR_END: the master should Join(w) here.
		d := doneFlag.Load(t0)
		t0.Assert(d == 1, "master proceeded before worker termination (done=%d)", d)
		t0.Join(w)
	}
}

func compiledSplash(steps int) *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	work := p.Var("work", 0)
	doneFlag := p.Var("done", 0)
	started := p.Sem("started", 0)
	wk := p.Body(0, 0)
	loopN(wk, steps, func() { wk.AddVar(work, 1) })
	wk.V(started)
	wk.Store(doneFlag, 1)
	mn := p.Main()
	w := mn.Spawn(wk)
	mn.P(started)
	d := mn.Load(doneFlag)
	mn.Assert(eq(d, 1), "master proceeded before worker termination (done=%d)", d)
	mn.Join(w)
	return p.Build()
}
