package study

import (
	"strings"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
)

// TestProgressCallback verifies that the per-phase progress hook fires for
// every pipeline stage — the study driver's -v output depends on it.
func TestProgressCallback(t *testing.T) {
	var lines []string
	b := bench.ByName("CS.sync01_bad")
	RunBenchmark(b, Config{
		Limit: 50, Seed: 1, RaceRuns: 2, WithMaple: true,
		Progress: func(format string, args ...any) {
			lines = append(lines, format)
		},
	})
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"race phase", "done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("progress output missing %q:\n%s", want, joined)
		}
	}
	// 1 race line + 4 technique lines + 1 maple line.
	if len(lines) != 6 {
		t.Errorf("progress fired %d times, want 6", len(lines))
	}
}

// TestRowAggregatesAreMaxima checks that the Table 3 statistics columns
// take maxima across techniques rather than the last writer.
func TestRowAggregatesAreMaxima(t *testing.T) {
	row := &Row{Results: map[explore.Technique]*explore.Result{
		explore.IPB: {MaxEnabled: 3, MaxSchedPoints: 10, Threads: 4},
		explore.IDB: {MaxEnabled: 5, MaxSchedPoints: 7, Threads: 4},
	}}
	if row.MaxEnabled() != 5 {
		t.Errorf("MaxEnabled = %d, want 5", row.MaxEnabled())
	}
	if row.MaxSchedPoints() != 10 {
		t.Errorf("MaxSchedPoints = %d, want 10", row.MaxSchedPoints())
	}
	if row.Threads() != 4 {
		t.Errorf("Threads = %d, want 4", row.Threads())
	}
	if row.Found(explore.Rand) {
		t.Error("Found() true for absent technique")
	}
}
