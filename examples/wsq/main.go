// wsq rebuilds the CHESS WorkStealQueue scenario with the public API: a
// Cilk-style deque with the owner taking at the tail and a thief stealing
// at the head, both with planted synchronisation bugs. It compares how
// each exploration technique fares on the same program — the per-benchmark
// view of the paper's study.
//
//	go run ./examples/wsq
package main

import (
	"fmt"

	sctbench "sctbench"
)

// deque is a miniature work-stealing queue over the shared-state API.
// head/tail are SC atomics; items is a shared array.
type deque struct {
	head, tail *sctbench.Atomic
	items      *sctbench.Array
}

func newDeque(t *sctbench.Thread, capacity int) *deque {
	return &deque{
		head:  t.NewAtomic("head", 0),
		tail:  t.NewAtomic("tail", 0),
		items: t.NewArray("items", capacity),
	}
}

func (q *deque) push(t *sctbench.Thread, v int) {
	tl := q.tail.Load(t)
	q.items.Set(t, tl, v)
	q.tail.Store(t, tl+1)
}

// take has the classic THE-protocol hazard: it trusts a head value read
// before the tail was published.
func (q *deque) take(t *sctbench.Thread) (int, bool) {
	hd := q.head.Load(t)
	tl := q.tail.Load(t) - 1
	if tl < hd {
		return 0, false
	}
	q.tail.Store(t, tl)
	v := q.items.Get(t, tl)
	if tl > hd {
		return v, true
	}
	ok := q.head.CAS(t, hd, hd+1)
	q.tail.Store(t, hd+1)
	if !ok {
		return 0, false
	}
	return v, true
}

// steal uses a check-then-act instead of a CAS.
func (q *deque) steal(t *sctbench.Thread) (int, bool) {
	hd := q.head.Load(t)
	tl := q.tail.Load(t)
	if hd >= tl {
		return 0, false
	}
	v := q.items.Get(t, hd)
	if q.head.Load(t) != hd {
		return 0, false
	}
	q.head.Store(t, hd+1)
	return v, true
}

func program() sctbench.Program {
	return func(t0 *sctbench.Thread) {
		const n = 3
		q := newDeque(t0, n+1)
		seen := t0.NewArray("seen", n)
		record := func(tw *sctbench.Thread, v int) {
			c := seen.Get(tw, v)
			tw.Assert(c == 0, "item %d delivered twice", v)
			seen.Set(tw, v, c+1)
		}
		owner := t0.Spawn(func(tw *sctbench.Thread) {
			for i := 0; i < n; i++ {
				q.push(tw, i)
			}
			for i := 0; i < n; i++ {
				if v, ok := q.take(tw); ok {
					record(tw, v)
				}
			}
		})
		thief := t0.Spawn(func(tw *sctbench.Thread) {
			for s := 0; s < 2; s++ {
				if v, ok := q.steal(tw); ok {
					record(tw, v)
				}
			}
		})
		t0.Join(owner)
		t0.Join(thief)
	}
}

func main() {
	for _, tech := range []sctbench.Technique{sctbench.DFS, sctbench.IPB, sctbench.IDB, sctbench.Rand} {
		res := sctbench.Explore(tech, sctbench.Config{Program: program(), Limit: 10000, Seed: 7})
		status := "missed"
		if res.BugFound {
			status = fmt.Sprintf("found after %d schedules (bound %d): %v",
				res.SchedulesToFirstBug, res.Bound, res.Failure)
		}
		fmt.Printf("%-4s %s\n", tech, status)
	}
}
