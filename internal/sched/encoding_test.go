package sched

import "testing"

func TestWitnessRoundTrip(t *testing.T) {
	w := &WitnessFile{
		Benchmark: "chess.WSQ",
		Technique: "IDB",
		Schedule:  Schedule{0, 0, 1, 2, 1},
		Racy:      []string{"var/x"},
		PC:        2,
		DC:        2,
		Failure:   "assertion in T1: item 1 obtained twice",
	}
	data, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWitness(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schedule.Equal(w.Schedule) || got.Benchmark != w.Benchmark ||
		got.PC != w.PC || got.DC != w.DC || len(got.Racy) != 1 {
		t.Fatalf("round trip mangled witness: %+v", got)
	}
}

func TestDecodeWitnessRejectsGarbage(t *testing.T) {
	if _, err := DecodeWitness([]byte("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := DecodeWitness([]byte(`{"schedule":[0,-3]}`)); err == nil {
		t.Error("negative thread id accepted")
	}
}
