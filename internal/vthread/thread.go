package vthread

import "fmt"

type threadState int

const (
	// stateParked: the thread is stopped at a scheduling point with a
	// pending visible operation.
	stateParked threadState = iota
	// stateExited: the thread body returned, the thread failed, or the
	// thread was killed during execution teardown.
	stateExited
)

// killSignal is the panic value used to unwind a virtual thread's goroutine
// when the execution is torn down.
type killSignal struct{}

// Thread is a virtual thread. All operations on shared objects take the
// current thread as an argument, which is how the substrate serialises the
// program: each such operation is (or may be) a scheduling point.
//
// A Thread handle is only valid inside the execution that created it.
type Thread struct {
	w    *World
	id   ThreadID
	name string
	key  string // sync-object key for spawn/join happens-before edges

	gate chan struct{}
	// parkTo receives this thread's park notifications. During the eager
	// prefix run it is a private channel consumed by the spawner (so the
	// world loop, which may simultaneously be waiting for the *spawner's*
	// park, cannot steal the message); the spawner then redirects it to the
	// world's shared channel. The redirect is safe: the thread only reads
	// parkTo at its next park, which cannot happen before the world next
	// grants it, which happens-after the spawner parks.
	parkTo  chan parkMsg
	pending pendingOp
	state   threadState
	killed  bool

	// woken marks a condvar waiter that has been signalled and may now
	// re-contend for the mutex.
	woken bool
}

// threadKey is the sync-object key used for spawn/join happens-before
// edges of thread id.
func threadKey(id ThreadID) string { return fmt.Sprintf("thread/%d", id) }

// newThread registers a thread, starts its backing goroutine, and runs the
// thread's invisible prefix up to its first visible operation (or exit)
// before returning. The caller — World.Run for thread 0, a spawning thread
// otherwise — owns the execution at that moment, so it consumes the child's
// first park itself. Running the prefix eagerly means a thread's first
// schedulable step is its first *real* visible operation, exactly the step
// model of §2; a thread with a fully invisible body never occupies a
// scheduling point at all.
func (w *World) newThread(parent *Thread, body Program) *Thread {
	id := ThreadID(len(w.threads))
	first := make(chan parkMsg, 1)
	t := &Thread{
		w:      w,
		id:     id,
		name:   fmt.Sprintf("T%d", id),
		key:    threadKey(id),
		gate:   make(chan struct{}),
		parkTo: first,
		state:  stateParked,
	}
	w.threads = append(w.threads, t)
	w.wg.Add(1)
	go t.main(body)
	t.gate <- struct{}{} // run the invisible prefix
	<-first              // …until the thread parks, exits or fails
	t.parkTo = w.parked  // all later parks go to the scheduler
	return t
}

// main is the goroutine body backing a virtual thread.
func (t *Thread) main(body Program) {
	defer t.w.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSignal); ok {
				return // execution teardown; state handled by the World
			}
			panic(r) // genuine bug in a program under test: crash loudly
		}
	}()

	t.awaitGrant() // released by newThread to run the invisible prefix
	t.sinkAcquire(t.key)
	body(t)

	// Clean exit: publish exited state before notifying the world so the
	// scheduler never observes a stale parked state.
	t.sinkRelease(t.key)
	t.state = stateExited
	t.parkTo <- parkMsg{kind: parkExited}
}

// visible registers op as this thread's next visible operation and parks
// until the scheduler grants the thread. On return the thread owns the
// execution and must perform the operation it registered.
func (t *Thread) visible(op pendingOp) {
	if t.killed {
		panic(killSignal{})
	}
	t.pending = op
	t.state = stateParked
	t.parkTo <- parkMsg{kind: parkPending}
	t.awaitGrant()
}

// awaitGrant blocks until the world grants this thread (or kills it).
func (t *Thread) awaitGrant() {
	<-t.gate
	if t.killed {
		panic(killSignal{})
	}
}

// failNow records f as the execution's failure and unwinds the thread.
// It never returns.
func (t *Thread) failNow(f *Failure) {
	t.w.fail(f)
	t.state = stateExited
	t.parkTo <- parkMsg{kind: parkFailed}
	panic(killSignal{})
}

// ID returns the thread's identifier (creation order, 0 = initial thread).
func (t *Thread) ID() ThreadID { return t.id }

// Name returns the thread's display name ("T0", "T1", …) unless renamed
// with SetName.
func (t *Thread) Name() string { return t.name }

// SetName assigns a display name used in failure messages.
func (t *Thread) SetName(name string) { t.name = name }

// World returns the execution this thread belongs to.
func (t *Thread) World() *World { return t.w }

// Spawn creates a new virtual thread running body and returns its handle.
// Spawning is a visible operation. The child's invisible prefix (everything
// before its first visible operation) runs during the spawn step; its first
// schedulable step is its first visible operation.
func (t *Thread) Spawn(body Program) *Thread {
	t.visible(pendingOp{kind: opSpawn})
	childID := ThreadID(len(t.w.threads))
	t.sink().spawned(t.id, childID)
	t.sinkRelease(threadKey(childID))
	return t.w.newThread(t, body)
}

// SpawnAll creates several threads in one visible operation, modelling the
// single create(T1,…,Tn) step of the paper's Figure 1 example. The children
// are numbered in argument order.
func (t *Thread) SpawnAll(bodies ...Program) []*Thread {
	t.visible(pendingOp{kind: opSpawn})
	out := make([]*Thread, len(bodies))
	for i, body := range bodies {
		childID := ThreadID(len(t.w.threads))
		t.sink().spawned(t.id, childID)
		t.sinkRelease(threadKey(childID))
		out[i] = t.w.newThread(t, body)
	}
	return out
}

// Join blocks until other has exited. Joining is a visible operation; the
// joining thread is disabled until the target's body returns.
func (t *Thread) Join(other *Thread) {
	t.visible(pendingOp{kind: opJoin, target: other})
	t.sinkAcquire(other.key)
}

// Yield is a visible no-op: a pure scheduling point. It models a compute
// step that the tester wants schedulable (for example a statement the race
// detector flagged).
func (t *Thread) Yield() {
	t.visible(pendingOp{kind: opYield})
}

// Assert checks a safety property of the program under test. A false
// condition is an assertion-failure bug and terminates the execution.
// Assert itself is invisible: the reads feeding cond are the visible
// operations.
func (t *Thread) Assert(cond bool, format string, args ...any) {
	if cond {
		return
	}
	if t.killed {
		panic(killSignal{})
	}
	t.failNow(&Failure{
		Kind:    FailAssert,
		Thread:  t.id,
		Message: fmt.Sprintf(format, args...),
	})
}

// Fail unconditionally reports a bug found by the program's own checking
// code (for example an output checker, §4.2 of the paper).
func (t *Thread) Fail(format string, args ...any) {
	if t.killed {
		panic(killSignal{})
	}
	t.failNow(&Failure{
		Kind:    FailAssert,
		Thread:  t.id,
		Message: fmt.Sprintf(format, args...),
	})
}

// crash reports a modelled memory-safety failure (use of a destroyed
// object, double unlock, out-of-bounds access with checking enabled, …).
func (t *Thread) crash(format string, args ...any) {
	if t.killed {
		panic(killSignal{})
	}
	t.failNow(&Failure{
		Kind:    FailCrash,
		Thread:  t.id,
		Message: fmt.Sprintf(format, args...),
	})
}

// sink helpers: no-ops when no EventSink is configured or during teardown.

type sinkProxy struct{ t *Thread }

func (t *Thread) sink() sinkProxy { return sinkProxy{t} }

func (p sinkProxy) spawned(parent, child ThreadID) {
	if s := p.t.w.opts.Sink; s != nil && !p.t.killed {
		s.Spawned(parent, child)
	}
}

func (t *Thread) sinkAccess(key string, write bool) {
	if s := t.w.opts.Sink; s != nil && !t.killed {
		s.Access(t.id, key, write)
	}
}

func (t *Thread) sinkAcquire(key string) {
	if s := t.w.opts.Sink; s != nil && !t.killed {
		s.Acquire(t.id, key)
	}
}

func (t *Thread) sinkRelease(key string) {
	if s := t.w.opts.Sink; s != nil && !t.killed {
		s.Release(t.id, key)
	}
}
