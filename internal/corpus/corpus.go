// Package corpus is the persistent schedule corpus: an on-disk store of
// minimised witness schedules and canonical frontier prefixes, keyed by
// program content hash (vthread.ProgramHash). It turns exploration into an
// incremental workload — a re-run after a code change replays the corpus
// first (bug still present: reported in milliseconds; bug gone: the entry
// is dropped) and seeds the fresh search from stored prefixes — and gives
// swarm runs a shared sink for everything they find.
//
// # Layout
//
// A corpus directory holds a VERSION file pinning the format plus one JSON
// entry file per program hash:
//
//	<dir>/VERSION            "sctcorpus/v1\n"
//	<dir>/<hash>.json        one Entry, canonical indented JSON
//
// Every write goes through internal/fsatomic, so after any crash each
// entry file is either the previous complete version or the new complete
// version, never torn (the faultinject.CorpusWrite point simulates dying
// just before the write). Entries are canonicalised before serialisation —
// witnesses and prefixes sorted and deduplicated, no timestamps — so the
// same logical content always produces byte-identical files, which is what
// lets tests and CI diff corpus directories directly.
//
// Keying by content hash rather than registry name means entries survive
// benchmark renames and invalidate on semantic change; a stale hash's
// entry is simply never looked up again and is reclaimed by GC.
package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sctbench/internal/faultinject"
	"sctbench/internal/fsatomic"
	"sctbench/internal/sched"
)

// Version is the corpus format version. Open refuses a directory written
// by a different version: schedule semantics may have changed underneath
// it, and replaying foreign-format schedules silently would be worse than
// starting cold.
const Version = "sctcorpus/v1"

// MaxPrefixes caps the stored frontier prefixes per entry. Prefixes are a
// seeding heuristic, not a completeness artifact; a handful of deep ones
// beat an unbounded pile.
const MaxPrefixes = 64

// Witness is one stored bug witness: a minimised schedule plus what it
// exposes. Schedules are replayed positionally (vthread.NewReplay), so the
// witness reproduces only while the program's scheduling structure is
// unchanged — which is exactly what the content-hash key guarantees.
type Witness struct {
	// Schedule is the minimised thread-choice sequence.
	Schedule sched.Schedule `json:"schedule"`
	// PC and DC are the schedule's preemption and delay counts.
	PC int `json:"pc"`
	DC int `json:"dc"`
	// Kind is the failure class ("assertion", "deadlock", "crash",
	// "panic") and Message its human-readable description.
	Kind    string `json:"kind"`
	Message string `json:"message,omitempty"`
	// Technique names the search that found the witness (informational).
	Technique string `json:"technique,omitempty"`
}

// Entry is everything the corpus knows about one program hash.
type Entry struct {
	// Hash is the program content hash — the entry's identity and
	// filename stem.
	Hash string `json:"hash"`
	// Benchmark is the registry name the program carried when last
	// written. Informational only: lookups never use it, so entries
	// survive renames.
	Benchmark string `json:"benchmark,omitempty"`
	// Witnesses are the known minimised bug witnesses, canonically sorted.
	Witnesses []Witness `json:"witnesses,omitempty"`
	// Prefixes are canonical schedule prefixes from earlier runs'
	// frontiers, used to seed fresh searches.
	Prefixes []sched.Schedule `json:"prefixes,omitempty"`
}

// empty reports whether the entry carries no information worth a file.
func (e *Entry) empty() bool { return len(e.Witnesses) == 0 && len(e.Prefixes) == 0 }

// clone deep-copies the entry so callers can mutate their view freely.
func (e *Entry) clone() Entry {
	out := Entry{Hash: e.Hash, Benchmark: e.Benchmark}
	if len(e.Witnesses) > 0 {
		out.Witnesses = make([]Witness, len(e.Witnesses))
		for i, w := range e.Witnesses {
			out.Witnesses[i] = w
			out.Witnesses[i].Schedule = w.Schedule.Clone()
		}
	}
	if len(e.Prefixes) > 0 {
		out.Prefixes = make([]sched.Schedule, len(e.Prefixes))
		for i, p := range e.Prefixes {
			out.Prefixes[i] = p.Clone()
		}
	}
	return out
}

// canonicalise sorts and deduplicates the entry in place: witnesses by
// (schedule, kind, technique) with equal schedules deduplicated, prefixes
// by (length, content) deduplicated and capped at MaxPrefixes. The result
// is a pure function of the entry's logical content, which makes the
// serialised form byte-stable.
func (e *Entry) canonicalise() {
	sort.SliceStable(e.Witnesses, func(i, j int) bool {
		a, b := &e.Witnesses[i], &e.Witnesses[j]
		if sa, sb := a.Schedule.String(), b.Schedule.String(); sa != sb {
			return sa < sb
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Technique < b.Technique
	})
	ws := e.Witnesses[:0]
	for i := range e.Witnesses {
		if len(ws) > 0 && ws[len(ws)-1].Schedule.Equal(e.Witnesses[i].Schedule) {
			continue
		}
		ws = append(ws, e.Witnesses[i])
	}
	e.Witnesses = ws
	sort.SliceStable(e.Prefixes, func(i, j int) bool {
		a, b := e.Prefixes[i], e.Prefixes[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a.String() < b.String()
	})
	ps := e.Prefixes[:0]
	for i := range e.Prefixes {
		if len(ps) > 0 && ps[len(ps)-1].Equal(e.Prefixes[i]) {
			continue
		}
		ps = append(ps, e.Prefixes[i])
	}
	if len(ps) > MaxPrefixes {
		ps = ps[:MaxPrefixes]
	}
	e.Prefixes = ps
}

// Store is an open corpus directory: the in-memory entry map plus the
// directory it mirrors. Safe for concurrent use; every mutation is written
// through to disk before it returns.
type Store struct {
	dir     string
	mu      sync.Mutex
	entries map[string]*Entry
}

// Open opens (creating if necessary) the corpus directory at dir, checks
// the format version and loads every entry. A corrupt entry file or a
// version mismatch is a hard error naming the offending file — a corpus
// that cannot be trusted must not be silently half-used.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	vpath := filepath.Join(dir, "VERSION")
	want := Version + "\n"
	if data, err := os.ReadFile(vpath); err == nil {
		if string(data) != want {
			return nil, fmt.Errorf("corpus: %s holds format %q, this binary speaks %q",
				vpath, strings.TrimSpace(string(data)), Version)
		}
	} else if os.IsNotExist(err) {
		if err := fsatomic.WriteFile(vpath, []byte(want), 0o644); err != nil {
			return nil, fmt.Errorf("corpus: writing %s: %w", vpath, err)
		}
	} else {
		return nil, fmt.Errorf("corpus: %w", err)
	}

	s := &Store{dir: dir, entries: make(map[string]*Entry)}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("corpus: entry %s is corrupt: %w", f, err)
		}
		stem := strings.TrimSuffix(filepath.Base(f), ".json")
		if e.Hash != stem {
			return nil, fmt.Errorf("corpus: entry %s is corrupt: declares hash %q", f, e.Hash)
		}
		for _, w := range e.Witnesses {
			for i, t := range w.Schedule {
				if t < 0 {
					return nil, fmt.Errorf("corpus: entry %s is corrupt: witness step %d names invalid thread %d", f, i, t)
				}
			}
		}
		s.entries[e.Hash] = &e
	}
	return s, nil
}

// Dir returns the directory the store mirrors.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Hashes returns the stored program hashes, sorted.
func (s *Store) Hashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for h := range s.entries {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Get returns a deep copy of the entry for hash, if present.
func (s *Store) Get(hash string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// Put canonicalises e and writes it through to disk, replacing any
// existing entry for the same hash. An entry canonicalised to empty is
// deleted instead — a hash with nothing to replay needs no file.
func (s *Store) Put(e Entry) error {
	if e.Hash == "" {
		return fmt.Errorf("corpus: Put with empty hash")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e.canonicalise()
	if e.empty() {
		return s.deleteLocked(e.Hash)
	}
	stored := e.clone()
	if err := s.saveLocked(&stored); err != nil {
		return err
	}
	s.entries[e.Hash] = &stored
	return nil
}

// AddWitness merges one witness into hash's entry (creating it if needed)
// and persists the result. benchName refreshes the informational name.
func (s *Store) AddWitness(hash, benchName string, w Witness) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entryLocked(hash, benchName)
	e.Witnesses = append(e.Witnesses, Witness{
		Schedule:  w.Schedule.Clone(),
		PC:        w.PC,
		DC:        w.DC,
		Kind:      w.Kind,
		Message:   w.Message,
		Technique: w.Technique,
	})
	e.canonicalise()
	return s.saveLocked(e)
}

// AddPrefixes merges frontier prefixes into hash's entry and persists it.
func (s *Store) AddPrefixes(hash, benchName string, prefixes []sched.Schedule) error {
	if len(prefixes) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entryLocked(hash, benchName)
	for _, p := range prefixes {
		if len(p) == 0 {
			continue
		}
		e.Prefixes = append(e.Prefixes, p.Clone())
	}
	e.canonicalise()
	return s.saveLocked(e)
}

// Merge unions every entry of other into s, persisting each changed entry.
// Used by swarm cells writing into a shared corpus and by operators
// combining corpora from different machines.
func (s *Store) Merge(other *Store) error {
	other.mu.Lock()
	foreign := make([]Entry, 0, len(other.entries))
	for _, e := range other.entries {
		foreign = append(foreign, e.clone())
	}
	other.mu.Unlock()
	sort.Slice(foreign, func(i, j int) bool { return foreign[i].Hash < foreign[j].Hash })

	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range foreign {
		fe := &foreign[i]
		e := s.entryLocked(fe.Hash, fe.Benchmark)
		e.Witnesses = append(e.Witnesses, fe.Witnesses...)
		e.Prefixes = append(e.Prefixes, fe.Prefixes...)
		e.canonicalise()
		if err := s.saveLocked(e); err != nil {
			return err
		}
	}
	return nil
}

// GC deletes every entry whose hash the keep set does not contain and
// returns how many were removed. The caller supplies the live hash set —
// typically the current registry's — so entries orphaned by semantic
// changes are reclaimed.
func (s *Store) GC(keep map[string]bool) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	hashes := make([]string, 0, len(s.entries))
	for h := range s.entries {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		if keep[h] {
			continue
		}
		if err := s.deleteLocked(h); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// entryLocked returns the live entry for hash, creating it if absent.
func (s *Store) entryLocked(hash, benchName string) *Entry {
	e, ok := s.entries[hash]
	if !ok {
		e = &Entry{Hash: hash}
		s.entries[hash] = e
	}
	if benchName != "" {
		e.Benchmark = benchName
	}
	return e
}

// path returns the entry file for hash.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash+".json")
}

// saveLocked persists e (or deletes its file when empty). The
// faultinject.CorpusWrite point fires before any byte is written, so a
// simulated crash here leaves the previous entry file byte-identical.
func (s *Store) saveLocked(e *Entry) error {
	if e.empty() {
		return s.deleteLocked(e.Hash)
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	data = append(data, '\n')
	if faultinject.Hit(faultinject.CorpusWrite) {
		return faultinject.ErrInjected
	}
	if err := fsatomic.WriteFile(s.path(e.Hash), data, 0o644); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}

// deleteLocked removes hash's entry and file.
func (s *Store) deleteLocked(hash string) error {
	delete(s.entries, hash)
	if err := os.Remove(s.path(hash)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}
