package race

import (
	"strings"
	"testing"

	"sctbench/internal/vthread"
)

// detect runs one round-robin execution of p under the detector and
// returns the racy keys.
func detect(t *testing.T, p vthread.Program, seed uint64) []string {
	t.Helper()
	d := NewDetector()
	w := vthread.NewWorld(vthread.Options{
		Chooser: vthread.NewRandom(seed),
		Sink:    d,
	})
	w.Run(p)
	return d.Racy()
}

func hasKey(keys []string, name string) bool {
	for _, k := range keys {
		if strings.HasSuffix(k, "/"+name) || k == name {
			return true
		}
	}
	return false
}

func TestUnprotectedCounterRaces(t *testing.T) {
	var p vthread.Program = func(t0 *vthread.Thread) {
		v := t0.NewVar("counter", 0)
		inc := func(tw *vthread.Thread) { v.Add(tw, 1) }
		a := t0.Spawn(inc)
		b := t0.Spawn(inc)
		t0.Join(a)
		t0.Join(b)
	}
	found := false
	for seed := uint64(0); seed < 20 && !found; seed++ {
		found = hasKey(detect(t, p, seed), "counter")
	}
	if !found {
		t.Fatal("racy counter never detected over 20 random executions")
	}
}

func TestLockProtectedCounterDoesNotRace(t *testing.T) {
	var p vthread.Program = func(t0 *vthread.Thread) {
		v := t0.NewVar("counter", 0)
		m := t0.NewMutex("m")
		inc := func(tw *vthread.Thread) {
			m.Lock(tw)
			v.Add(tw, 1)
			m.Unlock(tw)
		}
		a := t0.Spawn(inc)
		b := t0.Spawn(inc)
		t0.Join(a)
		t0.Join(b)
	}
	for seed := uint64(0); seed < 50; seed++ {
		if keys := detect(t, p, seed); len(keys) != 0 {
			t.Fatalf("seed %d: false positive on lock-protected data: %v", seed, keys)
		}
	}
}

func TestSpawnAndJoinOrderAccesses(t *testing.T) {
	var p vthread.Program = func(t0 *vthread.Thread) {
		v := t0.NewVar("v", 0)
		v.Store(t0, 1) // before spawn: ordered by the spawn edge
		w := t0.Spawn(func(tw *vthread.Thread) { v.Add(tw, 1) })
		t0.Join(w)
		v.Store(t0, 3) // after join: ordered by the join edge
	}
	for seed := uint64(0); seed < 50; seed++ {
		if keys := detect(t, p, seed); len(keys) != 0 {
			t.Fatalf("seed %d: spawn/join ordering not respected: %v", seed, keys)
		}
	}
}

func TestSemaphoreOrdersAccesses(t *testing.T) {
	var p vthread.Program = func(t0 *vthread.Thread) {
		v := t0.NewVar("v", 0)
		s := t0.NewSem("s", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			v.Store(tw, 1)
			s.V(tw)
		})
		s.P(t0)
		_ = v.Load(t0) // ordered: V happens-before P
		t0.Join(w)
	}
	for seed := uint64(0); seed < 50; seed++ {
		if keys := detect(t, p, seed); len(keys) != 0 {
			t.Fatalf("seed %d: semaphore edge not respected: %v", seed, keys)
		}
	}
}

func TestBarrierOrdersAccesses(t *testing.T) {
	var p vthread.Program = func(t0 *vthread.Thread) {
		v := t0.NewVar("v", 0)
		b := t0.NewBarrier("b", 2)
		w := t0.Spawn(func(tw *vthread.Thread) {
			v.Store(tw, 1)
			b.Arrive(tw)
		})
		b.Arrive(t0)
		_ = v.Load(t0) // ordered: the write is before the barrier
		t0.Join(w)
	}
	for seed := uint64(0); seed < 50; seed++ {
		if keys := detect(t, p, seed); len(keys) != 0 {
			t.Fatalf("seed %d: barrier edge not respected: %v", seed, keys)
		}
	}
}

func TestAtomicsDoNotRace(t *testing.T) {
	var p vthread.Program = func(t0 *vthread.Thread) {
		a := t0.NewAtomic("a", 0)
		inc := func(tw *vthread.Thread) { a.Add(tw, 1) }
		x := t0.Spawn(inc)
		y := t0.Spawn(inc)
		t0.Join(x)
		t0.Join(y)
	}
	for seed := uint64(0); seed < 50; seed++ {
		if keys := detect(t, p, seed); len(keys) != 0 {
			t.Fatalf("seed %d: atomics reported racy: %v", seed, keys)
		}
	}
}

func TestAtomicFlagPublishesData(t *testing.T) {
	// The busy-wait-free publication idiom: writer stores data then sets an
	// atomic flag; reader checks the flag (sem-like edge) before reading.
	var p vthread.Program = func(t0 *vthread.Thread) {
		data := t0.NewVar("data", 0)
		flag := t0.NewAtomic("flag", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			data.Store(tw, 42)
			flag.Store(tw, 1)
		})
		for flag.Load(t0) == 0 {
			t0.Yield()
		}
		_ = data.Load(t0)
		t0.Join(w)
	}
	for seed := uint64(0); seed < 50; seed++ {
		if keys := detect(t, p, seed); len(keys) != 0 {
			t.Fatalf("seed %d: atomic publication flagged racy: %v", seed, keys)
		}
	}
}

func TestRunPhaseUnionsAcrossRuns(t *testing.T) {
	// A race that manifests only in some interleavings must still be found
	// across ten runs, and RunPhase must name both variables.
	var p vthread.Program = func(t0 *vthread.Thread) {
		x := t0.NewVar("x", 0)
		y := t0.NewVar("y", 0)
		w := t0.Spawn(func(tw *vthread.Thread) {
			x.Store(tw, 1)
			y.Store(tw, 1)
		})
		_ = x.Load(t0)
		_ = y.Load(t0)
		t0.Join(w)
	}
	res := RunPhase(PhaseConfig{Program: p, Seed: 7})
	if !hasKey(res.Racy, "x") || !hasKey(res.Racy, "y") {
		t.Fatalf("racy = %v, want both x and y", res.Racy)
	}
}

func TestPromotedPredicate(t *testing.T) {
	vis := Promoted([]string{"var/x"})
	if !vis("var/x") {
		t.Error("promoted variable not visible")
	}
	if vis("var/y") {
		t.Error("unpromoted variable visible")
	}
}

func TestRacesReportsPairs(t *testing.T) {
	var races []Race
	var p vthread.Program = func(t0 *vthread.Thread) {
		v := t0.NewVar("v", 0)
		w := t0.Spawn(func(tw *vthread.Thread) { v.Store(tw, 1) })
		v.Store(t0, 2)
		t0.Join(w)
	}
	for seed := uint64(0); seed < 20 && len(races) == 0; seed++ {
		d := NewDetector()
		vthread.NewWorld(vthread.Options{Chooser: vthread.NewRandom(seed), Sink: d}).Run(p)
		races = d.Races()
	}
	if len(races) == 0 {
		t.Fatal("no race pair reported")
	}
	r := races[0]
	if r.Key != "var/v" || r.First == r.Second {
		t.Fatalf("unexpected race %+v", r)
	}
}

func TestVCJoinAndGet(t *testing.T) {
	var a VC
	a.join(VC{1, 5, 0})
	a.join(VC{3, 2})
	want := VC{3, 5, 0}
	for i := range want {
		if a.get(i) != want[i] {
			t.Fatalf("join = %v, want %v", a, want)
		}
	}
	if a.get(99) != 0 {
		t.Fatal("get beyond prefix should be 0")
	}
}

// TestTryRecvOnClosedChannelSynchronises pins the Go-memory-model edge of
// the non-blocking receive: a close happens before every receive that
// observes it, the ok=false drained ones included. A program whose reader
// touches shared state only after TryRecv has observed the close is
// race-free and the detector must not flag it (regression: the drained
// TryRecv path once skipped the acquire that Recv and select commits
// perform).
func TestTryRecvOnClosedChannelSynchronises(t *testing.T) {
	d := NewDetector()
	out := vthread.NewWorld(vthread.Options{Chooser: vthread.RoundRobin(), Sink: d}).Run(vthread.Program(func(t0 *vthread.Thread) {
		x := t0.NewVar("x", 0)
		c := t0.NewChan("c", 1)
		a := t0.Spawn(func(tw *vthread.Thread) {
			x.Store(tw, 1)
			c.Close(tw)
		})
		b := t0.Spawn(func(tw *vthread.Thread) {
			// Under round-robin the writer has closed by now, so TryRecv
			// observes the close (an acquire) before the read of x.
			if _, ok := c.TryRecv(tw); !ok {
				_ = x.Load(tw)
			}
		})
		t0.Join(a)
		t0.Join(b)
	}))
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if racy := d.Racy(); len(racy) != 0 {
		t.Errorf("race reported on a close-synchronised TryRecv program: %v", racy)
	}
}

// TestChannelBackpressureSynchronises pins the other direction of the
// channel happens-before contract: the k-th receive on a channel with
// capacity C happens before the (k+C)-th send completes (Go memory
// model), so the channel-as-semaphore idiom is race-free. Under
// round-robin, T1 sends into the cap-1 channel, stores, receives; T2's
// send was blocked on the full buffer, so its store is ordered after
// T1's by the recv→send edge — the detector must not flag x.
func TestChannelBackpressureSynchronises(t *testing.T) {
	d := NewDetector()
	out := vthread.NewWorld(vthread.Options{Chooser: vthread.RoundRobin(), Sink: d}).Run(vthread.Program(func(t0 *vthread.Thread) {
		x := t0.NewVar("x", 0)
		c := t0.NewChan("c", 1)
		body := func(tw *vthread.Thread) {
			c.Send(tw, 1) // semaphore acquire: blocks while the slot is taken
			x.Store(tw, int(tw.ID()))
			c.Recv(tw) // semaphore release
		}
		a := t0.Spawn(body)
		b := t0.Spawn(body)
		t0.Join(a)
		t0.Join(b)
	}))
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if racy := d.Racy(); len(racy) != 0 {
		t.Errorf("race reported on a channel-semaphore program: %v", racy)
	}
}
