package main

// In-process CLI tests for the study driver: exit statuses and the
// truncate → checkpoint → resume cycle, including that the resumed CSV
// artifact is byte-identical to an uninterrupted run's.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, nil, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodes(t *testing.T) {
	if code, _, _ := runCLI(t, "-table1"); code != exitClean {
		t.Errorf("-table1 exited %d, want %d", code, exitClean)
	}
	// A real (tiny) study on planted-bug benchmarks finds bugs: exit 1.
	code, _, errOut := runCLI(t, "-bench", "CS.account_bad$", "-limit", "100",
		"-par", "1", "-workers", "1")
	if code != exitBug {
		t.Fatalf("study exited %d, want %d\n%s", code, exitBug, errOut)
	}
	for _, args := range [][]string{
		{"-bench", "["},              // bad regexp
		{"-bench", "no.such.match$"}, // empty selection
		{"-engine", "warp"},          // bad engine
		{"-no-such-flag"},            // bad flag
		{"-resume"},                  // -resume without -checkpoint
	} {
		if code, _, _ := runCLI(t, args...); code != exitError {
			t.Errorf("%v exited %d, want %d", args, code, exitError)
		}
	}
}

func TestTruncateAndResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	baseCSV := filepath.Join(dir, "base.csv")
	resCSV := filepath.Join(dir, "resumed.csv")
	ck := filepath.Join(dir, "study.json")
	sel := "CS.account_bad$|CS.queue_bad$"

	code, _, _ := runCLI(t, "-bench", sel, "-limit", "100", "-par", "1",
		"-workers", "1", "-table3csv", baseCSV)
	if code != exitBug {
		t.Fatalf("baseline exited %d, want %d", code, exitBug)
	}

	// An expired wall budget defers every row: exit 2, checkpoint written.
	code, _, errOut := runCLI(t, "-bench", sel, "-limit", "100", "-par", "1",
		"-workers", "1", "-max-wall", "1ns", "-checkpoint", ck)
	if code != exitTruncated {
		t.Fatalf("truncated study exited %d, want %d\n%s", code, exitTruncated, errOut)
	}
	if !strings.Contains(errOut, "study truncated") {
		t.Fatalf("missing truncation notice:\n%s", errOut)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no study checkpoint written: %v", err)
	}

	// Resume completes the deferred rows; the CSV artifact must match the
	// uninterrupted run byte for byte.
	code, _, errOut = runCLI(t, "-bench", sel, "-limit", "100", "-par", "1",
		"-workers", "1", "-checkpoint", ck, "-resume", "-table3csv", resCSV)
	if code != exitBug {
		t.Fatalf("resumed study exited %d, want %d\n%s", code, exitBug, errOut)
	}
	want, err := os.ReadFile(baseCSV)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed CSV diverged:\n got:\n%s\nwant:\n%s", got, want)
	}

	// Resuming under a different seed is refused.
	if code, _, _ := runCLI(t, "-bench", sel, "-limit", "100", "-seed", "9",
		"-par", "1", "-workers", "1", "-checkpoint", ck, "-resume"); code != exitError {
		t.Errorf("seed-mismatched resume exited %d, want %d", code, exitError)
	}
}
