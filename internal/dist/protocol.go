// Package dist is the fault-tolerant distributed exploration service: a
// coordinator that shards one exploration job into leased units and
// workers that execute them with their own Executors, speaking JSON over
// HTTP on localhost-first listeners. The wire format for search state is
// the explore package's checkpoint vocabulary (UnitState out,
// UnitResultState back), so a distributed job checkpoints, resumes and
// merges with the machinery the in-process drivers already prove correct.
//
// Robustness is the design center, not speed:
//
//   - Every dispatched unit is covered by a lease with a TTL; workers
//     heartbeat to keep it alive. A dead, hung or partitioned worker's
//     lease expires and the coordinator re-dispatches the unit's original
//     frontier — determinism makes the re-run bit-identical to the run
//     that was lost.
//   - Completions are idempotent and deduplicated per unit (first wins;
//     determinism makes any later duplicate identical), so re-dispatch
//     races cannot corrupt counts. Parks are fenced by lease ID: a stale
//     park from an expired lease is rejected, never regressing a unit.
//   - The merge is the canonical branch-key merge of the in-process pool:
//     a fully completed distributed run is bit-identical to the
//     sequential (-workers 1) run for DFS/IPB/IDB and verdict-identical
//     for DPOR; truncated runs are verdict-level, as in the pool.
//   - Workers retry transient RPC failures with exponential backoff and
//     jitter; the coordinator propagates the schedule budget and the
//     wall-clock deadline to every worker.
//   - SIGTERM drains gracefully: workers park their in-flight frontiers
//     and hand them back, and the coordinator writes a resumable job
//     checkpoint (durable via fsatomic) preserving the exit contract.
package dist

import "sctbench/internal/explore"

// Reply status strings shared across endpoints.
const (
	// StatusOK acknowledges the request.
	StatusOK = "ok"
	// StatusUnit carries a leased unit (lease endpoint).
	StatusUnit = "unit"
	// StatusWait asks the worker to retry shortly (seeding, or nothing
	// pending while the pass drains).
	StatusWait = "wait"
	// StatusDone reports the job finished; the worker should exit.
	StatusDone = "done"
	// StatusDrain asks the worker to park its unit (or exit, on lease).
	StatusDrain = "drain"
	// StatusCancel asks the worker to abandon its unit: the unit or pass
	// no longer needs it (completed elsewhere, budget hit).
	StatusCancel = "cancel"
	// StatusStale rejects a request whose lease or unit is unknown.
	StatusStale = "stale"
)

// JobSpec describes the job to a connecting worker: everything it needs
// to rebuild the same program environment the coordinator shards under.
// The promoted racy-variable set rides along so every process promotes the
// same scheduling points without re-running the race phase — cross-process
// determinism by construction.
type JobSpec struct {
	Benchmark string   `json:"benchmark"`
	Technique string   `json:"technique"`
	Limit     int      `json:"limit"`
	Seed      uint64   `json:"seed,omitempty"`
	Racy      []string `json:"racy,omitempty"`
	NoRace    bool     `json:"noRace,omitempty"`
	// DeadlineMillis is the job deadline as Unix milliseconds (0 = none);
	// workers park past it even if the coordinator is unreachable.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
}

// LeaseRequest asks for a unit to execute.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseReply grants a unit (StatusUnit) or tells the worker what to do
// instead (wait/drain/done).
type LeaseReply struct {
	Status  string `json:"status"`
	LeaseID int64  `json:"leaseId,omitempty"`
	UnitID  int    `json:"unitId,omitempty"`
	// Unit is the frontier to execute, in checkpoint wire form.
	Unit *explore.UnitState `json:"unit,omitempty"`
	// Budget is the remaining global schedule budget; the worker reports
	// LimitHit when this unit alone counts that many schedules.
	Budget int `json:"budget,omitempty"`
	// HeartbeatMillis is how often the worker must heartbeat to keep the
	// lease alive; RetryMillis is the wait before retrying after
	// StatusWait.
	HeartbeatMillis int64 `json:"heartbeatMillis,omitempty"`
	RetryMillis     int64 `json:"retryMillis,omitempty"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	LeaseID int64 `json:"leaseId"`
}

// HeartbeatReply: ok, drain (park now), cancel (abandon now) or stale
// (lease expired; abandon).
type HeartbeatReply struct {
	Status string `json:"status"`
}

// CompleteRequest submits a finished unit's result. UnitID identifies the
// unit so a completion that outlived its lease (expiry re-dispatch race)
// is still accepted when the unit has no result yet — determinism makes
// it identical to what the re-dispatched run will produce.
type CompleteRequest struct {
	LeaseID  int64                    `json:"leaseId"`
	UnitID   int                      `json:"unitId"`
	Result   *explore.UnitResultState `json:"result"`
	LimitHit bool                     `json:"limitHit,omitempty"`
}

// CompleteReply: ok (recorded, or an idempotently-ignored duplicate) or
// stale (the pass moved on; the result was discarded).
type CompleteReply struct {
	Status string `json:"status"`
}

// ParkRequest hands an in-flight unit's positioned frontier back (drain,
// or worker-side interrupt). Parks are fenced by lease: a stale park is
// rejected so an expired lease can never regress a re-dispatched unit.
type ParkRequest struct {
	LeaseID int64              `json:"leaseId"`
	UnitID  int                `json:"unitId"`
	Unit    *explore.UnitState `json:"unit"`
}

// ParkReply: ok or stale.
type ParkReply struct {
	Status string `json:"status"`
}

// StatusReply is the coordinator's progress snapshot (GET /v1/status).
type StatusReply struct {
	Phase      string `json:"phase"`
	Bound      int    `json:"bound"`
	UnitsDone  int    `json:"unitsDone"`
	UnitsTotal int    `json:"unitsTotal"`
	Leases     int    `json:"leases"`
	Schedules  int    `json:"schedules"`
	Workers    int    `json:"workers"`
}
