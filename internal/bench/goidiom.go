package bench

// The GoIdiom benchmark family: Go's native concurrency idioms — worker
// pools over channels, fan-in/fan-out pipelines, cancellation via closed
// channels, multi-way select, sync.WaitGroup and sync.Once — none of which
// the pthread-style SCTBench programs (or the original study) could
// express. The family extends the registry past the paper's 52 rows (ids
// 52+, excluded from the Table 1 reproduction) and re-runs the technique
// comparison on a scenario class with a decision dimension the paper's
// programs lack: a multi-way select with several ready cases is a
// *case-decision* scheduling point (vthread.Context.SelectOf), so two of
// these bugs are reachable with zero preemptions and zero delays — pure
// select nondeterminism, cost-free for the bounded techniques — while the
// rest are classic one-preemption check-then-act races dressed in channel
// clothing.
//
// Like every suite file, each program confines all state to the body so
// one Benchmark value can be executed concurrently by the parallel
// exploration workers.

import "sctbench/internal/vthread"

func init() {
	register(&Benchmark{
		ID: 52, Name: "goidiom.workerpool_bad", Suite: "GoIdiom", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "worker pool over a jobs channel: unsynchronised result aggregation loses an update",
		New: func() vthread.Program {
			return func(t0 *vthread.Thread) {
				jobs := t0.NewChan("jobs", 3)
				sum := t0.NewVar("sum", 0)
				wg := t0.NewWaitGroup("wg")
				wg.Add(t0, 2)
				worker := func(tw *vthread.Thread) {
					for {
						v, ok := jobs.Recv(tw)
						if !ok {
							break
						}
						// Bug: the aggregate is a plain read-modify-write;
						// two workers interleaving here lose an update.
						sum.Add(tw, v)
					}
					wg.Done(tw)
				}
				t0.Spawn(worker)
				t0.Spawn(worker)
				for i := 1; i <= 3; i++ {
					jobs.Send(t0, i)
				}
				jobs.Close(t0)
				wg.Wait(t0)
				t0.Assert(sum.Load(t0) == 6, "worker pool lost an update: sum=%d", sum.Load(t0))
			}
		},
	})

	register(&Benchmark{
		ID: 53, Name: "goidiom.pipeline_bad", Suite: "GoIdiom", Threads: 4,
		BugKind: vthread.FailCrash,
		Desc:    "fan-in pipeline: racy last-producer-closes flag double-closes the merged channel",
		New: func() vthread.Program {
			return func(t0 *vthread.Thread) {
				out := t0.NewChan("out", 4)
				wg := t0.NewWaitGroup("producers")
				closed := t0.NewVar("closed", 0)
				wg.Add(t0, 2)
				producer := func(base int) vthread.Program {
					return func(tw *vthread.Thread) {
						out.Send(tw, base)
						out.Send(tw, base+1)
						wg.Done(tw)
						wg.Wait(tw) // both producers drain past here together
						// Bug: "whoever gets here first closes" is a
						// check-then-act on a plain flag; two producers
						// interleaving between the load and the store both
						// close the merged channel (Go: panic).
						if closed.Load(tw) == 0 {
							closed.Store(tw, 1)
							out.Close(tw)
						}
					}
				}
				t0.Spawn(producer(10))
				t0.Spawn(producer(20))
				total := 0
				consumer := t0.Spawn(func(tw *vthread.Thread) {
					for {
						v, ok := out.Recv(tw)
						if !ok {
							return
						}
						total += v
					}
				})
				t0.Join(consumer)
				t0.Assert(total == 62, "pipeline dropped values: total=%d", total)
			}
		},
	})

	register(&Benchmark{
		ID: 54, Name: "goidiom.cancel_bad", Suite: "GoIdiom", Threads: 3,
		BugKind: vthread.FailDeadlock,
		Desc:    "cancellation via closed channel: worker honours the done case while the producer still blocks on a send",
		New: func() vthread.Program {
			return func(t0 *vthread.Thread) {
				work := t0.NewChan("work", 1)
				done := t0.NewChan("done", 1)
				producer := t0.Spawn(func(tw *vthread.Thread) {
					// The second send blocks until the worker drains the
					// first; if the worker obeys the cancellation first,
					// nobody ever will (Go's classic leaked-producer bug,
					// here surfacing as a modelled deadlock).
					work.Send(tw, 1)
					work.Send(tw, 2)
				})
				worker := t0.Spawn(func(tw *vthread.Thread) {
					for {
						idx, _, _ := tw.Select([]vthread.SelectCase{
							vthread.RecvCase(work),
							vthread.RecvCase(done),
						}, false)
						if idx == 1 {
							return // cancelled
						}
					}
				})
				done.Close(t0)
				t0.Join(producer)
				t0.Join(worker)
			}
		},
	})

	register(&Benchmark{
		ID: 55, Name: "goidiom.wgdone_bad", Suite: "GoIdiom", Threads: 3,
		BugKind: vthread.FailCrash,
		Desc:    "double Done: two cleanup paths race on an ownership flag and both decrement the WaitGroup",
		New: func() vthread.Program {
			return func(t0 *vthread.Thread) {
				wg := t0.NewWaitGroup("wg")
				owner := t0.NewVar("owner", 0)
				wg.Add(t0, 1)
				cleanup := func(tw *vthread.Thread) {
					// Bug: "whoever sees the flag unset owns the final
					// Done" is a check-then-act; both cleanups interleaving
					// here drive the counter negative (Go: panic).
					if owner.Load(tw) == 0 {
						owner.Store(tw, 1)
						wg.Done(tw)
					}
				}
				t0.Spawn(cleanup)
				t0.Spawn(cleanup)
				wg.Wait(t0)
			}
		},
	})

	register(&Benchmark{
		ID: 56, Name: "goidiom.select_starve_bad", Suite: "GoIdiom", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "select starvation: the quit case can win over pending requests, which then go unprocessed",
		New: func() vthread.Program {
			return func(t0 *vthread.Thread) {
				reqs := t0.NewChan("reqs", 3)
				quit := t0.NewChan("quit", 1)
				processed := 0
				server := t0.Spawn(func(tw *vthread.Thread) {
					for {
						idx, _, _ := tw.Select([]vthread.SelectCase{
							vthread.RecvCase(reqs),
							vthread.RecvCase(quit),
						}, false)
						if idx == 1 {
							return // bug: quits even with requests pending
						}
						processed++
					}
				})
				client := t0.Spawn(func(tw *vthread.Thread) {
					for i := 0; i < 3; i++ {
						reqs.Send(tw, i) // buffered: never blocks
					}
					quit.Send(tw, 0)
				})
				t0.Join(client)
				t0.Join(server)
				t0.Assert(processed == 3, "server quit with %d of 3 requests processed", processed)
			}
		},
	})

	register(&Benchmark{
		ID: 57, Name: "goidiom.once_reenter_bad", Suite: "GoIdiom", Threads: 3,
		BugKind: vthread.FailDeadlock,
		Desc:    "Once reentrancy: a racy readiness flag lets the init body re-enter its own Once (Go: self-deadlock)",
		New: func() vthread.Program {
			return func(t0 *vthread.Thread) {
				once := t0.NewOnce("init")
				ready := t0.NewVar("ready", 0)
				fallback := func(tw *vthread.Thread) {}
				setter := t0.Spawn(func(tw *vthread.Thread) {
					ready.Store(tw, 1)
				})
				initer := t0.Spawn(func(tw *vthread.Thread) {
					once.Do(tw, func(ti *vthread.Thread) {
						// Bug: when the setter has not run yet, the init
						// body takes the fallback path — which re-enters
						// the same Once. Go's sync.Once self-deadlocks.
						if ready.Load(ti) == 0 {
							once.Do(ti, fallback)
						}
					})
				})
				t0.Join(setter)
				t0.Join(initer)
			}
		},
	})
}
