package study

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sctbench/internal/bench"
)

func studyBenches(t *testing.T) []*bench.Benchmark {
	t.Helper()
	var out []*bench.Benchmark
	for _, name := range []string{"CS.account_bad", "CS.circular_buffer_bad", "CS.queue_bad", "CS.stack_bad"} {
		b := bench.ByName(name)
		if b == nil {
			t.Fatalf("unknown benchmark %s", name)
		}
		out = append(out, b)
	}
	return out
}

// rowsEqual compares two row slices via their serialized form, which is
// exactly what the CSV artifacts are derived from.
func rowsEqual(t *testing.T, want, got []*Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row count %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, _ := json.Marshal(newCheckpoint(Config{}, want[i:i+1]).Rows)
		g, _ := json.Marshal(newCheckpoint(Config{}, got[i:i+1]).Rows)
		if !reflect.DeepEqual(w, g) {
			t.Errorf("row %d (%s) differs after resume:\n got %s\nwant %s",
				i, want[i].Bench.Name, g, w)
		}
	}
}

// TestStudyKillAndResume: a study truncated mid-run saves its completed
// rows; resuming with the saved checkpoint re-runs only the missing rows
// and reproduces the uninterrupted study exactly, row for row.
func TestStudyKillAndResume(t *testing.T) {
	benches := studyBenches(t)
	cfg := Config{Limit: 120, Seed: 3, RaceRuns: 3, Parallelism: 1}

	base, truncated, err := RunStudy(benches, cfg, nil)
	if err != nil || truncated {
		t.Fatalf("baseline study: truncated=%v err=%v", truncated, err)
	}
	if len(base) != len(benches) {
		t.Fatalf("baseline completed %d of %d rows", len(base), len(benches))
	}

	// Interrupt immediately: a pre-closed channel stops every row before
	// it starts, so the truncated study completes zero rows but still
	// writes a (row-less) checkpoint; then resume in two more stages with
	// the interrupt lifted partway to exercise carried-over rows.
	path := filepath.Join(t.TempDir(), "study.json")
	closed := make(chan struct{})
	close(closed)
	tcfg := cfg
	tcfg.Interrupt = closed
	tcfg.CheckpointPath = path
	rows, truncated, err := RunStudy(benches, tcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(rows) != 0 {
		t.Fatalf("pre-closed interrupt: truncated=%v rows=%d", truncated, len(rows))
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	// Stage 2: resume but interrupt again after the first two benchmarks
	// (Parallelism=1 runs them in order; close the channel from a progress
	// callback once two rows are done).
	done, fired := 0, false
	stage2 := cfg
	intr := make(chan struct{})
	stage2.Interrupt = intr
	stage2.CheckpointPath = path
	// Count completed technique phases via the progress callback — four
	// per row — and pull the plug after the second row's last technique.
	stage2.Progress = func(format string, args ...any) {
		if strings.Contains(format, "done (bug=") {
			done++
			if done == 8 && !fired {
				fired = true
				close(intr)
			}
		}
	}
	rows, truncated, err = RunStudy(benches, stage2, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("stage 2 was not truncated")
	}
	if len(rows) == 0 || len(rows) >= len(benches) {
		t.Fatalf("stage 2 completed %d rows, want partial progress", len(rows))
	}
	ck, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Rows) != len(rows) {
		t.Fatalf("checkpoint has %d rows, run returned %d", len(ck.Rows), len(rows))
	}

	// Stage 3: final resume, uninterrupted.
	final, truncated, err := RunStudy(benches, cfg, ck)
	if err != nil || truncated {
		t.Fatalf("final resume: truncated=%v err=%v", truncated, err)
	}
	rowsEqual(t, base, final)
}

// TestStudyCheckpointMismatch: resuming under a different configuration
// is refused rather than silently mixing experiments.
func TestStudyCheckpointMismatch(t *testing.T) {
	cfg := Config{Limit: 100, Seed: 3, RaceRuns: 3}.withDefaults()
	ck := newCheckpoint(cfg, nil)
	bad := cfg
	bad.Seed = 4
	if _, _, err := RunStudy(studyBenches(t), bad, ck); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	badTech := cfg
	badTech.WithMaple = true
	if _, _, err := RunStudy(studyBenches(t), badTech, ck); err == nil {
		t.Fatal("maple mismatch accepted")
	}
}

// TestStudyCheckpointCorrupt pins the clear-error contract for damaged
// study checkpoints.
func TestStudyCheckpointCorrupt(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(p, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(p); err == nil || !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Fatalf("corrupt file: %v", err)
	}
	if err := os.WriteFile(p, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(p); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: %v", err)
	}
}
