package bench

// The Concurrency Software (CS) benchmarks [Cordeiro & Fischer, ICSE'11]:
// small multithreaded algorithm test cases used to evaluate ESBMC. The
// originals carry deliberately violated ("_sat"/"_bad") safety properties;
// inputs were unconstrained and the paper picked concrete values, as do
// we. Each analogue preserves the thread count, the synchronisation
// skeleton and the bug's bound characteristics from Table 3.
//
// Every benchmark is registered in compiled (builder-DSL) form so it runs
// on the flat single-goroutine engine; the original closure form is kept
// as the Ref twin, and the registry equivalence test holds the two
// bit-identical. Translations follow the Go evaluation order exactly:
// expression operands (including assertion message arguments) that touch
// shared state become explicit Loads at the point Go would evaluate them.

import "sctbench/internal/vthread"

// joinAll joins threads in creation order.
func joinAll(t *vthread.Thread, ts []*vthread.Thread) {
	for _, c := range ts {
		t.Join(c)
	}
}

func init() {
	register(&Benchmark{
		ID: 3, Name: "CS.account_bad", Suite: "CS", Threads: 4,
		BugKind: vthread.FailAssert,
		Desc:    "bank transfer: withdraw ordered before deposit drives the balance negative",
		New:     func() vthread.Runnable { return compiledAccount() },
		Ref:     refAccount,
	})

	register(&Benchmark{
		ID: 4, Name: "CS.arithmetic_prog_bad", Suite: "CS", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "arithmetic progression with a planted off-by-one property: violated on every schedule",
		New:     func() vthread.Runnable { return compiledArithmetic() },
		Ref:     refArithmetic,
	})

	register(&Benchmark{
		ID: 5, Name: "CS.bluetooth_driver_bad", Suite: "CS", Threads: 2,
		BugKind: vthread.FailAssert,
		Desc:    "driver used after a concurrent stop request tears it down (check-then-act race)",
		New:     func() vthread.Runnable { return compiledBluetooth() },
		Ref:     refBluetooth,
	})

	register(&Benchmark{
		ID: 6, Name: "CS.carter01_bad", Suite: "CS", Threads: 5,
		BugKind: vthread.FailDeadlock,
		Desc:    "AB/BA lock-order inversion between two of four workers",
		New:     func() vthread.Runnable { return compiledCarter() },
		Ref:     refCarter,
	})

	register(&Benchmark{
		ID: 7, Name: "CS.circular_buffer_bad", Suite: "CS", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "producer/consumer over a ring buffer with an unsynchronised element count",
		New:     func() vthread.Runnable { return compiledCircular() },
		Ref:     refCircular,
	})

	register(&Benchmark{
		ID: 8, Name: "CS.deadlock01_bad", Suite: "CS", Threads: 3,
		BugKind: vthread.FailDeadlock,
		Desc:    "textbook AB/BA deadlock between two workers",
		New:     func() vthread.Runnable { return compiledDeadlock01() },
		Ref:     refDeadlock01,
	})

	for n := 2; n <= 7; n++ {
		registerDinPhil(9+n-2, n)
	}

	register(&Benchmark{
		ID: 15, Name: "CS.fsbench_bad", Suite: "CS", Threads: 28,
		BugKind: vthread.FailAssert,
		Desc:    "file-system flush: 27 workers claim slots in a 26-entry table (manual OOB assertion, §4.2)",
		New:     func() vthread.Runnable { return compiledFsbench() },
		Ref:     refFsbench,
	})

	register(&Benchmark{
		ID: 16, Name: "CS.lazy01_bad", Suite: "CS", Threads: 4,
		BugKind: vthread.FailAssert,
		Desc:    "three workers race to set a value; the checked outcome holds only for some orders",
		New:     func() vthread.Runnable { return compiledLazy01() },
		Ref:     refLazy01,
	})

	register(&Benchmark{
		ID: 17, Name: "CS.phase01_bad", Suite: "CS", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "two-phase handshake with a planted always-false postcondition",
		New:     func() vthread.Runnable { return compiledPhase01() },
		Ref:     refPhase01,
	})

	register(&Benchmark{
		ID: 18, Name: "CS.queue_bad", Suite: "CS", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "SPSC queue with a racy size field: a mid-enqueue dequeue loses an element",
		New:     func() vthread.Runnable { return compiledQueue() },
		Ref:     refQueue,
	})

	registerReorder(19, "CS.reorder_10_bad", 8)  // 11 threads
	registerReorder(20, "CS.reorder_20_bad", 18) // 21 threads
	registerReorder(21, "CS.reorder_3_bad", 1)   // 4 threads
	registerReorder(22, "CS.reorder_4_bad", 2)   // 5 threads
	registerReorder(23, "CS.reorder_5_bad", 3)   // 6 threads

	register(&Benchmark{
		ID: 24, Name: "CS.stack_bad", Suite: "CS", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "two pushers on a stack with a racy top-of-stack index lose an element",
		New:     func() vthread.Runnable { return compiledStack() },
		Ref:     refStack,
	})

	register(&Benchmark{
		ID: 25, Name: "CS.sync01_bad", Suite: "CS", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "semaphore handshake with a planted always-false postcondition",
		New:     func() vthread.Runnable { return compiledSync01() },
		Ref:     refSync01,
	})

	register(&Benchmark{
		ID: 26, Name: "CS.sync02_bad", Suite: "CS", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "condvar handshake with a planted always-false postcondition",
		New:     func() vthread.Runnable { return compiledSync02() },
		Ref:     refSync02,
	})

	register(&Benchmark{
		ID: 27, Name: "CS.token_ring_bad", Suite: "CS", Threads: 5,
		BugKind: vthread.FailAssert,
		Desc:    "four stations pass a token without synchronisation; only creation order survives",
		New:     func() vthread.Runnable { return compiledTokenRing() },
		Ref:     refTokenRing,
	})

	registerTwostage(28, "CS.twostage_100_bad", 50) // 101 threads
	registerTwostage(29, "CS.twostage_bad", 1)      // 3 threads

	registerWronglock(30, "CS.wronglock_3_bad", 3) // 5 threads
	registerWronglock(31, "CS.wronglock_bad", 7)   // 9 threads
}

func refAccount() vthread.Program {
	return func(t0 *vthread.Thread) {
		m := t0.NewMutex("account")
		balance := t0.NewVar("balance", 0)
		deposit := func(tw *vthread.Thread) {
			m.Lock(tw)
			balance.Add(tw, 100)
			m.Unlock(tw)
		}
		withdraw := func(tw *vthread.Thread) {
			m.Lock(tw)
			// Bug: no funds check — assumes the deposit already
			// happened (it does under round-robin).
			balance.Add(tw, -50)
			m.Unlock(tw)
		}
		audit := func(tw *vthread.Thread) {
			m.Lock(tw)
			b := balance.Load(tw)
			m.Unlock(tw)
			tw.Assert(b >= 0, "account overdrawn: balance=%d", b)
		}
		ts := []*vthread.Thread{t0.Spawn(deposit), t0.Spawn(withdraw), t0.Spawn(audit)}
		joinAll(t0, ts)
	}
}

func compiledAccount() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	m := p.Mutex("account")
	balance := p.Var("balance", 0)
	dep := p.Body(0, 0)
	dep.Lock(m)
	dep.AddVar(balance, 100)
	dep.Unlock(m)
	wd := p.Body(0, 0)
	wd.Lock(m)
	wd.AddVar(balance, -50)
	wd.Unlock(m)
	au := p.Body(0, 0)
	au.Lock(m)
	b := au.Load(balance)
	au.Unlock(m)
	au.Assert(ge(b, 0), "account overdrawn: balance=%d", b)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(dep), mn.Spawn(wd), mn.Spawn(au)}
	joinRegs(mn, hs)
	return p.Build()
}

func refArithmetic() vthread.Program {
	return func(t0 *vthread.Thread) {
		m := t0.NewMutex("sum")
		sum := t0.NewVar("sum", 0)
		adder := func(lo, hi int) vthread.Program {
			return func(tw *vthread.Thread) {
				for i := lo; i <= hi; i++ {
					m.Lock(tw)
					sum.Add(tw, i)
					m.Unlock(tw)
				}
			}
		}
		ts := []*vthread.Thread{t0.Spawn(adder(1, 5)), t0.Spawn(adder(6, 10))}
		joinAll(t0, ts)
		got := sum.Load(t0)
		// The ESBMC "_bad" property: deliberately wrong expected
		// value, so the assertion fails regardless of schedule.
		t0.Assert(got == 56, "progression sum=%d, claimed 56", got)
	}
}

func compiledArithmetic() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	m := p.Mutex("sum")
	sum := p.Var("sum", 0)
	adder := func(lo, hi int) *vthread.Code {
		c := p.Body(0, 0)
		for i := lo; i <= hi; i++ {
			c.Lock(m)
			c.AddVar(sum, i)
			c.Unlock(m)
		}
		return c
	}
	a1 := adder(1, 5)
	a2 := adder(6, 10)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(a1), mn.Spawn(a2)}
	joinRegs(mn, hs)
	got := mn.Load(sum)
	mn.Assert(eq(got, 56), "progression sum=%d, claimed 56", got)
	return p.Build()
}

func refBluetooth() vthread.Program {
	return func(t0 *vthread.Thread) {
		stopped := t0.NewVar("stopped", 0)
		driverUp := t0.NewVar("driverUp", 1)
		// The stopper mirrors the original's IoDecrement path.
		t0.Spawn(func(tw *vthread.Thread) {
			stopped.Store(tw, 1)
			driverUp.Store(tw, 0)
		})
		// Main is the dispatch routine: checks the stop flag, then
		// uses the driver. One preemption between check and use
		// lets the stopper tear the driver down in between.
		if stopped.Load(t0) == 0 {
			t0.Assert(driverUp.Load(t0) == 1, "dispatch on stopped driver")
		}
	}
}

func compiledBluetooth() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	stopped := p.Var("stopped", 0)
	driverUp := p.Var("driverUp", 1)
	st := p.Body(0, 0)
	st.Store(stopped, 1)
	st.Store(driverUp, 0)
	mn := p.Main()
	mn.Spawn(st)
	s := mn.Load(stopped)
	mn.If(eq(s, 0), func() {
		d := mn.Load(driverUp)
		mn.Assert(eq(d, 1), "dispatch on stopped driver")
	})
	return p.Build()
}

func refCarter() vthread.Program {
	return func(t0 *vthread.Thread) {
		a := t0.NewMutex("A")
		b := t0.NewMutex("B")
		work := t0.NewVar("work", 0)
		lockAB := func(tw *vthread.Thread) {
			a.Lock(tw)
			b.Lock(tw)
			work.Add(tw, 1)
			b.Unlock(tw)
			a.Unlock(tw)
		}
		lockBA := func(tw *vthread.Thread) {
			b.Lock(tw)
			a.Lock(tw)
			work.Add(tw, 1)
			a.Unlock(tw)
			b.Unlock(tw)
		}
		helper := func(tw *vthread.Thread) {
			a.Lock(tw)
			work.Add(tw, 1)
			a.Unlock(tw)
		}
		ts := []*vthread.Thread{
			t0.Spawn(lockAB), t0.Spawn(lockBA),
			t0.Spawn(helper), t0.Spawn(helper),
		}
		joinAll(t0, ts)
	}
}

func compiledCarter() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	a := p.Mutex("A")
	b := p.Mutex("B")
	work := p.Var("work", 0)
	ab := p.Body(0, 0)
	ab.Lock(a)
	ab.Lock(b)
	ab.AddVar(work, 1)
	ab.Unlock(b)
	ab.Unlock(a)
	ba := p.Body(0, 0)
	ba.Lock(b)
	ba.Lock(a)
	ba.AddVar(work, 1)
	ba.Unlock(a)
	ba.Unlock(b)
	help := p.Body(0, 0)
	help.Lock(a)
	help.AddVar(work, 1)
	help.Unlock(a)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(ab), mn.Spawn(ba), mn.Spawn(help), mn.Spawn(help)}
	joinRegs(mn, hs)
	return p.Build()
}

func refCircular() vthread.Program {
	return func(t0 *vthread.Thread) {
		buf := t0.NewArray("ring", 4)
		count := t0.NewVar("count", 0) // racy: updated by both sides
		producer := func(tw *vthread.Thread) {
			for i := 0; i < 2; i++ {
				buf.Set(tw, i, 100+i)
				count.Add(tw, 1) // load+store: splittable
			}
		}
		consumer := func(tw *vthread.Thread) {
			for i := 0; i < 2; i++ {
				if count.Load(tw) > i {
					v := buf.Get(tw, i)
					tw.Assert(v == 100+i, "ring[%d]=%d, want %d", i, v, 100+i)
				}
				count.Add(tw, -1)
			}
		}
		ts := []*vthread.Thread{t0.Spawn(producer), t0.Spawn(consumer)}
		joinAll(t0, ts)
		c := count.Load(t0)
		t0.Assert(c == 0, "count=%d after balanced produce/consume", c)
	}
}

func compiledCircular() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	buf := p.Array("ring", 4)
	count := p.Var("count", 0)
	prod := p.Body(0, 0)
	for i := 0; i < 2; i++ {
		prod.SetAt(buf, i, 100+i)
		prod.AddVar(count, 1)
	}
	cons := p.Body(0, 0)
	for i := 0; i < 2; i++ {
		i := i
		c := cons.Load(count)
		cons.If(gt(c, i), func() {
			v := cons.Get(buf, i)
			cons.Assert(eq(v, 100+i), "ring[%d]=%d, want %d", i, v, 100+i)
		})
		cons.AddVar(count, -1)
	}
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(prod), mn.Spawn(cons)}
	joinRegs(mn, hs)
	c := mn.Load(count)
	mn.Assert(eq(c, 0), "count=%d after balanced produce/consume", c)
	return p.Build()
}

func refDeadlock01() vthread.Program {
	return func(t0 *vthread.Thread) {
		a := t0.NewMutex("A")
		b := t0.NewMutex("B")
		x := t0.NewVar("x", 0)
		ts := []*vthread.Thread{
			t0.Spawn(func(tw *vthread.Thread) {
				a.Lock(tw)
				x.Add(tw, 1)
				b.Lock(tw)
				b.Unlock(tw)
				a.Unlock(tw)
			}),
			t0.Spawn(func(tw *vthread.Thread) {
				b.Lock(tw)
				x.Add(tw, 1)
				a.Lock(tw)
				a.Unlock(tw)
				b.Unlock(tw)
			}),
		}
		joinAll(t0, ts)
	}
}

func compiledDeadlock01() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	a := p.Mutex("A")
	b := p.Mutex("B")
	x := p.Var("x", 0)
	w1 := p.Body(0, 0)
	w1.Lock(a)
	w1.AddVar(x, 1)
	w1.Lock(b)
	w1.Unlock(b)
	w1.Unlock(a)
	w2 := p.Body(0, 0)
	w2.Lock(b)
	w2.AddVar(x, 1)
	w2.Lock(a)
	w2.Unlock(a)
	w2.Unlock(b)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(w1), mn.Spawn(w2)}
	joinRegs(mn, hs)
	return p.Build()
}

func refFsbench() vthread.Program {
	return func(t0 *vthread.Thread) {
		const workers = 27
		const slots = workers - 1
		m := t0.NewMutex("alloc")
		next := t0.NewVar("next", 0)
		table := t0.NewArray("table", slots)
		ts := make([]*vthread.Thread, workers)
		for i := 0; i < workers; i++ {
			ts[i] = t0.Spawn(func(tw *vthread.Thread) {
				m.Lock(tw)
				slot := next.Load(tw)
				next.Store(tw, slot+1)
				m.Unlock(tw)
				// The paper added this assertion by hand: the
				// original overflow corrupts memory silently.
				tw.Assert(slot < slots, "slot %d overflows %d-entry table", slot, slots)
				table.Set(tw, slot, 1)
			})
		}
		joinAll(t0, ts)
	}
}

func compiledFsbench() *vthread.CompiledProgram {
	const workers = 27
	const slots = workers - 1
	p := vthread.NewBuilder()
	m := p.Mutex("alloc")
	next := p.Var("next", 0)
	table := p.Array("table", slots)
	wk := p.Body(0, 0)
	wk.Lock(m)
	slot := wk.Load(next)
	wk.Store(next, plus(slot, 1))
	wk.Unlock(m)
	wk.Assert(lt(slot, slots), "slot %d overflows %d-entry table", slot, slots)
	wk.SetAt(table, slot, 1)
	mn := p.Main()
	hs := make([]vthread.OReg, workers)
	for i := 0; i < workers; i++ {
		hs[i] = mn.Spawn(wk)
	}
	joinRegs(mn, hs)
	return p.Build()
}

func refLazy01() vthread.Program {
	return func(t0 *vthread.Thread) {
		m := t0.NewMutex("m")
		data := t0.NewVar("data", 0)
		setter := func(v int) vthread.Program {
			return func(tw *vthread.Thread) {
				m.Lock(tw)
				data.Store(tw, v)
				m.Unlock(tw)
			}
		}
		ts := []*vthread.Thread{t0.Spawn(setter(1)), t0.Spawn(setter(2)), t0.Spawn(setter(3))}
		joinAll(t0, ts)
		d := data.Load(t0)
		// Round-robin finishes with the third setter last, so the
		// "impossible" value is exactly the one RR produces.
		t0.Assert(d != 3, "data=%d: last writer was the third setter", d)
	}
}

func compiledLazy01() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	m := p.Mutex("m")
	data := p.Var("data", 0)
	setter := p.Body(1, 0)
	setter.Lock(m)
	setter.Store(data, setter.Arg(0))
	setter.Unlock(m)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(setter, 1), mn.Spawn(setter, 2), mn.Spawn(setter, 3)}
	joinRegs(mn, hs)
	d := mn.Load(data)
	mn.Assert(ne(d, 3), "data=%d: last writer was the third setter", d)
	return p.Build()
}

func refPhase01() vthread.Program {
	return func(t0 *vthread.Thread) {
		s := t0.NewSem("phase", 0)
		a := t0.NewVar("a", 0)
		b := t0.NewVar("b", 0)
		ts := []*vthread.Thread{
			t0.Spawn(func(tw *vthread.Thread) {
				a.Store(tw, 1)
				s.V(tw)
			}),
			t0.Spawn(func(tw *vthread.Thread) {
				s.P(tw)
				b.Store(tw, a.Load(tw)+1)
			}),
		}
		joinAll(t0, ts)
		// Planted violation: claims the phases overlap, but the
		// semaphore orders them on every schedule.
		t0.Assert(a.Load(t0)+b.Load(t0) == 4, "a+b=%d, claimed 4", a.Load(t0)+b.Load(t0))
	}
}

func compiledPhase01() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	s := p.Sem("phase", 0)
	a := p.Var("a", 0)
	b := p.Var("b", 0)
	t1 := p.Body(0, 0)
	t1.Store(a, 1)
	t1.V(s)
	t2 := p.Body(0, 0)
	t2.P(s)
	l := t2.Load(a)
	t2.Store(b, plus(l, 1))
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(t1), mn.Spawn(t2)}
	joinRegs(mn, hs)
	// Go evaluates the condition's two loads, then the message
	// argument's two loads: a, b, a, b.
	a1 := mn.Load(a)
	b1 := mn.Load(b)
	a2 := mn.Load(a)
	b2 := mn.Load(b)
	mn.Assert(func(t *vthread.Thread) bool { return t.Reg(a1)+t.Reg(b1) == 4 },
		"a+b=%d, claimed 4", addr(a2, b2))
	return p.Build()
}

func refQueue() vthread.Program {
	return func(t0 *vthread.Thread) {
		items := t0.NewArray("items", 8)
		size := t0.NewVar("size", 0) // racy
		enq := func(tw *vthread.Thread, v int) {
			n := size.Load(tw)
			// Bug: the size is published before the element is
			// written, so a concurrent dequeue in between reads an
			// uninitialised cell.
			size.Store(tw, n+1)
			items.Set(tw, n, v)
		}
		deq := func(tw *vthread.Thread) int {
			n := size.Load(tw)
			if n == 0 {
				return -1
			}
			v := items.Get(tw, n-1)
			size.Store(tw, n-1)
			return v
		}
		ts := []*vthread.Thread{
			t0.Spawn(func(tw *vthread.Thread) {
				enq(tw, 10)
				enq(tw, 20)
			}),
			t0.Spawn(func(tw *vthread.Thread) {
				v := deq(tw)
				tw.Assert(v == -1 || v == 10 || v == 20, "dequeued garbage %d", v)
			}),
		}
		joinAll(t0, ts)
		n := size.Load(t0)
		t0.Assert(n == 1 || n == 2, "size=%d after 2 enq / 1 deq", n)
	}
}

func compiledQueue() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	items := p.Array("items", 8)
	size := p.Var("size", 0)
	enq := p.Body(0, 0)
	for _, v := range []int{10, 20} {
		n := enq.Load(size)
		enq.Store(size, plus(n, 1))
		enq.SetAt(items, n, v)
	}
	deq := p.Body(0, 0)
	n := deq.Load(size)
	v := deq.Let(-1)
	deq.IfElse(eq(n, 0), func() {}, func() {
		g := deq.Get(items, plus(n, -1))
		deq.Store(size, plus(n, -1))
		deq.Set(v, g)
	})
	deq.Assert(func(t *vthread.Thread) bool {
		x := t.Reg(v)
		return x == -1 || x == 10 || x == 20
	}, "dequeued garbage %d", v)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(enq), mn.Spawn(deq)}
	joinRegs(mn, hs)
	sz := mn.Load(size)
	mn.Assert(func(t *vthread.Thread) bool { return t.Reg(sz) == 1 || t.Reg(sz) == 2 },
		"size=%d after 2 enq / 1 deq", sz)
	return p.Build()
}

func refStack() vthread.Program {
	return func(t0 *vthread.Thread) {
		cells := t0.NewArray("cells", 8)
		top := t0.NewVar("top", 0) // racy
		push := func(tw *vthread.Thread, v int) {
			n := top.Load(tw)
			cells.Set(tw, n, v)
			top.Store(tw, n+1)
		}
		ts := []*vthread.Thread{
			t0.Spawn(func(tw *vthread.Thread) { push(tw, 1); push(tw, 2) }),
			t0.Spawn(func(tw *vthread.Thread) { push(tw, 3) }),
		}
		joinAll(t0, ts)
		n := top.Load(t0)
		t0.Assert(n == 3, "lost push: top=%d, want 3", n)
	}
}

func compiledStack() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	cells := p.Array("cells", 8)
	top := p.Var("top", 0)
	push := func(c *vthread.Code, v int) {
		n := c.Load(top)
		c.SetAt(cells, n, v)
		c.Store(top, plus(n, 1))
	}
	p1 := p.Body(0, 0)
	push(p1, 1)
	push(p1, 2)
	p2 := p.Body(0, 0)
	push(p2, 3)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(p1), mn.Spawn(p2)}
	joinRegs(mn, hs)
	n := mn.Load(top)
	mn.Assert(eq(n, 3), "lost push: top=%d, want 3", n)
	return p.Build()
}

func refSync01() vthread.Program {
	return func(t0 *vthread.Thread) {
		s := t0.NewSem("sync", 0)
		v := t0.NewVar("v", 0)
		ts := []*vthread.Thread{
			t0.Spawn(func(tw *vthread.Thread) {
				v.Store(tw, 1)
				s.V(tw)
			}),
			t0.Spawn(func(tw *vthread.Thread) {
				s.P(tw)
				v.Add(tw, 1)
			}),
		}
		joinAll(t0, ts)
		t0.Assert(v.Load(t0) == 3, "v=%d, claimed 3", v.Load(t0))
	}
}

func compiledSync01() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	s := p.Sem("sync", 0)
	v := p.Var("v", 0)
	t1 := p.Body(0, 0)
	t1.Store(v, 1)
	t1.V(s)
	t2 := p.Body(0, 0)
	t2.P(s)
	t2.AddVar(v, 1)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(t1), mn.Spawn(t2)}
	joinRegs(mn, hs)
	c1 := mn.Load(v)
	c2 := mn.Load(v)
	mn.Assert(eq(c1, 3), "v=%d, claimed 3", c2)
	return p.Build()
}

func refSync02() vthread.Program {
	return func(t0 *vthread.Thread) {
		m := t0.NewMutex("m")
		c := t0.NewCond("c")
		ready := t0.NewVar("ready", 0)
		v := t0.NewVar("v", 0)
		ts := []*vthread.Thread{
			t0.Spawn(func(tw *vthread.Thread) {
				m.Lock(tw)
				v.Store(tw, 10)
				ready.Store(tw, 1)
				c.Signal(tw)
				m.Unlock(tw)
			}),
			t0.Spawn(func(tw *vthread.Thread) {
				m.Lock(tw)
				for ready.Load(tw) == 0 {
					c.Wait(tw, m)
				}
				v.Add(tw, 5)
				m.Unlock(tw)
			}),
		}
		joinAll(t0, ts)
		t0.Assert(v.Load(t0) == 16, "v=%d, claimed 16", v.Load(t0))
	}
}

func compiledSync02() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	m := p.Mutex("m")
	cv := p.Cond("c")
	ready := p.Var("ready", 0)
	v := p.Var("v", 0)
	t1 := p.Body(0, 0)
	t1.Lock(m)
	t1.Store(v, 10)
	t1.Store(ready, 1)
	t1.Signal(cv)
	t1.Unlock(m)
	t2 := p.Body(0, 0)
	t2.Lock(m)
	r := t2.Load(ready)
	t2.While(eq(r, 0), func() {
		t2.Wait(cv, m)
		l := t2.Load(ready)
		t2.Set(r, l)
	})
	t2.AddVar(v, 5)
	t2.Unlock(m)
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(t1), mn.Spawn(t2)}
	joinRegs(mn, hs)
	c1 := mn.Load(v)
	c2 := mn.Load(v)
	mn.Assert(eq(c1, 16), "v=%d, claimed 16", c2)
	return p.Build()
}

func refTokenRing() vthread.Program {
	return func(t0 *vthread.Thread) {
		token := t0.NewVar("token", 0) // racy
		station := func(id int) vthread.Program {
			return func(tw *vthread.Thread) {
				got := token.Load(tw)
				token.Store(tw, got+id)
			}
		}
		ts := []*vthread.Thread{
			t0.Spawn(station(1)), t0.Spawn(station(2)),
			t0.Spawn(station(3)), t0.Spawn(station(4)),
		}
		joinAll(t0, ts)
		got := token.Load(t0)
		// Correct only when every station sees its predecessor's
		// value: any reordering or overlap loses increments.
		t0.Assert(got == 10, "token=%d, want 10", got)
	}
}

func compiledTokenRing() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	token := p.Var("token", 0)
	st := p.Body(1, 0)
	got := st.Load(token)
	st.Store(token, addr(got, st.Arg(0)))
	mn := p.Main()
	hs := []vthread.OReg{mn.Spawn(st, 1), mn.Spawn(st, 2), mn.Spawn(st, 3), mn.Spawn(st, 4)}
	joinRegs(mn, hs)
	g := mn.Load(token)
	mn.Assert(eq(g, 10), "token=%d, want 10", g)
	return p.Build()
}

// registerDinPhil builds CS.din_philN_sat: N philosophers with the classic
// left-then-right fork order (deadlock-capable) and an ESBMC-style planted
// "sat" assertion that is violated whenever all philosophers finish — so
// the round-robin schedule is already buggy and essentially every schedule
// is (Table 2's "every random schedule was buggy" group).
func registerDinPhil(id, n int) {
	register(&Benchmark{
		ID: id, Name: "CS.din_phil" + itoa(n) + "_sat", Suite: "CS", Threads: n + 1,
		BugKind: vthread.FailAssert,
		Desc:    "dining philosophers: planted 'not all finish' property plus a real deadlock",
		New:     func() vthread.Runnable { return compiledDinPhil(n) },
		Ref:     func() vthread.Program { return refDinPhil(n) },
	})
}

func refDinPhil(n int) vthread.Program {
	return func(t0 *vthread.Thread) {
		forks := make([]*vthread.Mutex, n)
		for i := range forks {
			forks[i] = t0.NewMutex("fork" + itoa(i))
		}
		eaten := t0.NewVar("eaten", 0)
		phil := func(i int) vthread.Program {
			return func(tw *vthread.Thread) {
				left, right := forks[i], forks[(i+1)%n]
				left.Lock(tw)
				right.Lock(tw)
				eaten.Add(tw, 1)
				right.Unlock(tw)
				left.Unlock(tw)
			}
		}
		ts := make([]*vthread.Thread, n)
		for i := 0; i < n; i++ {
			ts[i] = t0.Spawn(phil(i))
		}
		joinAll(t0, ts)
		got := eaten.Load(t0)
		t0.Assert(got != n, "all %d philosophers ate (the _sat property claims this is impossible)", got)
	}
}

func compiledDinPhil(n int) *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	forks := make([]vthread.MutexH, n)
	for i := range forks {
		forks[i] = p.Mutex("fork" + itoa(i))
	}
	eaten := p.Var("eaten", 0)
	mn := p.Main()
	hs := make([]vthread.OReg, n)
	for i := 0; i < n; i++ {
		left, right := forks[i], forks[(i+1)%n]
		phil := p.Body(0, 0)
		phil.Lock(left)
		phil.Lock(right)
		phil.AddVar(eaten, 1)
		phil.Unlock(right)
		phil.Unlock(left)
		hs[i] = mn.Spawn(phil)
	}
	joinRegs(mn, hs)
	got := mn.Load(eaten)
	mn.Assert(ne(got, n), "all %d philosophers ate (the _sat property claims this is impossible)", got)
	return p.Build()
}

// registerReorder builds the §2 Example 2 adversary with `extra` duplicate
// writers: the bug needs extra+1 delays but always just one preemption.
// With many writers the schedule space explodes and nothing finds the bug
// within the limit, matching rows 19 and 20.
func registerReorder(id int, name string, extra int) {
	register(&Benchmark{
		ID: id, Name: name, Suite: "CS", Threads: extra + 3,
		BugKind: vthread.FailAssert,
		Desc:    "reorder adversary: checker must run between one writer's two stores",
		New:     func() vthread.Runnable { return compiledReorder(extra) },
		Ref:     func() vthread.Program { return refReorder(extra) },
	})
}

func refReorder(extra int) vthread.Program {
	return func(t0 *vthread.Thread) {
		x := t0.NewVar("x", 0)
		y := t0.NewVar("y", 0)
		writer := func(tw *vthread.Thread) {
			x.Store(tw, 1)
			y.Store(tw, 1)
		}
		ts := make([]*vthread.Thread, 0, extra+2)
		for i := 0; i < extra+1; i++ {
			ts = append(ts, t0.Spawn(writer))
		}
		ts = append(ts, t0.Spawn(func(tw *vthread.Thread) {
			xv := x.Load(tw)
			yv := y.Load(tw)
			tw.Assert(xv == yv, "x=%d y=%d", xv, yv)
		}))
		joinAll(t0, ts)
	}
}

func compiledReorder(extra int) *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	x := p.Var("x", 0)
	y := p.Var("y", 0)
	wr := p.Body(0, 0)
	wr.Store(x, 1)
	wr.Store(y, 1)
	ck := p.Body(0, 0)
	xv := ck.Load(x)
	yv := ck.Load(y)
	ck.Assert(eqr(xv, yv), "x=%d y=%d", xv, yv)
	mn := p.Main()
	hs := make([]vthread.OReg, 0, extra+2)
	for i := 0; i < extra+1; i++ {
		hs = append(hs, mn.Spawn(wr))
	}
	hs = append(hs, mn.Spawn(ck))
	joinRegs(mn, hs)
	return p.Build()
}

// registerTwostage builds CS.twostage{,_100}_bad: `pairs` stage-one threads
// publish data then a flag under separate locks, and `pairs` stage-two
// threads read flag-then-data — the classic two-variable atomicity
// violation, exposed when a reader runs between a writer's two updates.
func registerTwostage(id int, name string, pairs int) {
	register(&Benchmark{
		ID: id, Name: name, Suite: "CS", Threads: 2*pairs + 1,
		BugKind: vthread.FailAssert,
		Desc:    "two-stage pipeline: flag set before data is complete",
		New:     func() vthread.Runnable { return compiledTwostage(pairs) },
		Ref:     func() vthread.Program { return refTwostage(pairs) },
	})
}

func refTwostage(pairs int) vthread.Program {
	return func(t0 *vthread.Thread) {
		mData := t0.NewMutex("data")
		mFlag := t0.NewMutex("flag")
		data := t0.NewVar("data", 0)
		flag := t0.NewVar("flag", 0)
		writer := func(tw *vthread.Thread) {
			mData.Lock(tw)
			data.Store(tw, 42)
			mData.Unlock(tw)
			// Bug: the flag is set under a different lock, so a
			// reader can observe flag==1 with stale data… but only
			// in the window *between* these two sections.
			mFlag.Lock(tw)
			flag.Store(tw, 1)
			mFlag.Unlock(tw)
		}
		reader := func(tw *vthread.Thread) {
			mFlag.Lock(tw)
			f := flag.Load(tw)
			mFlag.Unlock(tw)
			if f == 0 {
				return
			}
			mData.Lock(tw)
			d := data.Load(tw)
			mData.Unlock(tw)
			tw.Assert(d == 42, "flag set but data=%d", d)
		}
		ts := make([]*vthread.Thread, 0, 2*pairs)
		for i := 0; i < pairs; i++ {
			ts = append(ts, t0.Spawn(writerVariant(i, writer, data, flag, mData, mFlag)))
		}
		for i := 0; i < pairs; i++ {
			ts = append(ts, t0.Spawn(reader))
		}
		joinAll(t0, ts)
	}
}

func compiledTwostage(pairs int) *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	mData := p.Mutex("data")
	mFlag := p.Mutex("flag")
	data := p.Var("data", 0)
	flag := p.Var("flag", 0)
	// The normal writer: data under its lock, then the flag under its.
	wr := p.Body(0, 0)
	wr.Lock(mData)
	wr.Store(data, 42)
	wr.Unlock(mData)
	wr.Lock(mFlag)
	wr.Store(flag, 1)
	wr.Unlock(mFlag)
	// The variant (writer 0): flag first — the planted inversion.
	inv := p.Body(0, 0)
	inv.Lock(mFlag)
	inv.Store(flag, 1)
	inv.Unlock(mFlag)
	inv.Lock(mData)
	inv.Store(data, 42)
	inv.Unlock(mData)
	rd := p.Body(0, 0)
	rd.Lock(mFlag)
	f := rd.Load(flag)
	rd.Unlock(mFlag)
	rd.If(ne(f, 0), func() {
		rd.Lock(mData)
		d := rd.Load(data)
		rd.Unlock(mData)
		rd.Assert(eq(d, 42), "flag set but data=%d", d)
	})
	mn := p.Main()
	hs := make([]vthread.OReg, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		if i == 0 {
			hs = append(hs, mn.Spawn(inv))
		} else {
			hs = append(hs, mn.Spawn(wr))
		}
	}
	for i := 0; i < pairs; i++ {
		hs = append(hs, mn.Spawn(rd))
	}
	joinRegs(mn, hs)
	return p.Build()
}

// writerVariant plants the actual bug in exactly one writer: it sets the
// flag *before* the data (the inverted two-stage update). With one pair
// (twostage_bad) a single preemption exposes it; with 50 pairs
// (twostage_100_bad) the buggy window is buried under 100 threads of
// schedule noise and nothing finds it within the limit — matching the
// paper, where the large-thread-count variants' bugs were found by no
// technique.
func writerVariant(i int, normal vthread.Program, data, flag *vthread.IntVar, mData, mFlag *vthread.Mutex) vthread.Program {
	if i != 0 {
		return normal
	}
	return func(tw *vthread.Thread) {
		mFlag.Lock(tw)
		flag.Store(tw, 1)
		mFlag.Unlock(tw)
		mData.Lock(tw)
		data.Store(tw, 42)
		mData.Unlock(tw)
	}
}

// registerWronglock builds CS.wronglock{_3,}_bad: a writer updates shared
// state under lock A in two steps; readers take lock B (the wrong lock!)
// and assert they never observe the intermediate state. No non-preemptive
// schedule splits the writer's update, so preemption bound 0 (which
// explodes with the thread count) never finds it; one delay or preemption
// of the writer does.
func registerWronglock(id int, name string, readers int) {
	register(&Benchmark{
		ID: id, Name: name, Suite: "CS", Threads: readers + 2,
		BugKind: vthread.FailAssert,
		Desc:    "readers guard with the wrong lock and can observe a half-done update",
		New:     func() vthread.Runnable { return compiledWronglock(readers) },
		Ref:     func() vthread.Program { return refWronglock(readers) },
	})
}

func refWronglock(readers int) vthread.Program {
	return func(t0 *vthread.Thread) {
		right := t0.NewMutex("right")
		wrong := t0.NewMutex("wrong")
		v := t0.NewVar("v", 0) // racy: reader lock does not order it
		ts := make([]*vthread.Thread, 0, readers+1)
		ts = append(ts, t0.Spawn(func(tw *vthread.Thread) {
			right.Lock(tw)
			v.Store(tw, 1) // intermediate
			v.Store(tw, 2) // final
			right.Unlock(tw)
		}))
		for i := 0; i < readers; i++ {
			ts = append(ts, t0.Spawn(func(tw *vthread.Thread) {
				wrong.Lock(tw)
				got := v.Load(tw)
				wrong.Unlock(tw)
				tw.Assert(got != 1, "observed half-done update")
			}))
		}
		joinAll(t0, ts)
	}
}

func compiledWronglock(readers int) *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	right := p.Mutex("right")
	wrong := p.Mutex("wrong")
	v := p.Var("v", 0)
	wr := p.Body(0, 0)
	wr.Lock(right)
	wr.Store(v, 1)
	wr.Store(v, 2)
	wr.Unlock(right)
	rd := p.Body(0, 0)
	rd.Lock(wrong)
	got := rd.Load(v)
	rd.Unlock(wrong)
	rd.Assert(ne(got, 1), "observed half-done update")
	mn := p.Main()
	hs := make([]vthread.OReg, 0, readers+1)
	hs = append(hs, mn.Spawn(wr))
	for i := 0; i < readers; i++ {
		hs = append(hs, mn.Spawn(rd))
	}
	joinRegs(mn, hs)
	return p.Build()
}

// itoa is a minimal integer-to-string helper (avoids strconv in hot paths
// and keeps benchmark names allocation-free at init).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
