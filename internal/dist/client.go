package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"sctbench/internal/faultinject"
)

// Client is the workers' JSON/HTTP client with retry on transient
// failures: exponential backoff with jitter, bounded by Retries. Every
// endpoint it talks to is idempotent (completions deduplicate, parks are
// fenced, heartbeats and leases are naturally re-issuable), so retrying a
// request whose reply was lost is always safe.
type Client struct {
	// Base is the coordinator address, e.g. "http://127.0.0.1:4077".
	Base string
	// HTTP is the underlying client (http.DefaultClient if nil).
	HTTP *http.Client
	// Retries is the number of attempts per call (default 8).
	Retries int
	// Backoff is the initial retry delay (default 10ms), doubled per
	// attempt with up to 50% random jitter, capped at one second.
	Backoff time.Duration
}

// errTransient marks failures worth retrying (connection refused, dropped
// request or reply, 5xx).
var errTransient = errors.New("transient rpc failure")

// call POSTs req as JSON to path and decodes the reply into out, retrying
// transient failures with exponential backoff + jitter. The faultinject
// RPC points simulate a lossy network here, on the client side, where a
// real network would lose them:
//
//   - RPCDropRequest: the request never reaches the wire; the server saw
//     nothing and the retry is trivially safe.
//   - RPCDropReply: the server processed the request but the reply is
//     lost; the retry re-delivers the request, so the server must absorb
//     the duplicate idempotently.
//   - RPCDuplicate: the request is delivered twice back to back and the
//     second reply is used — the mirror image of the dropped-reply case.
func (c *Client) call(path string, req, out any) error {
	retries := c.Retries
	if retries <= 0 {
		retries = 8
	}
	delay := c.Backoff
	if delay <= 0 {
		delay = 10 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			sleep := delay + time.Duration(rand.Int63n(int64(delay)/2+1))
			time.Sleep(sleep)
			if delay *= 2; delay > time.Second {
				delay = time.Second
			}
		}
		err := c.once(path, req, out)
		if err == nil {
			return nil
		}
		if !errors.Is(err, errTransient) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("%s: retries exhausted: %w", path, lastErr)
}

// once performs a single request/response cycle with the injected network
// faults applied.
func (c *Client) once(path string, req, out any) error {
	if faultinject.Hit(faultinject.RPCDropRequest) {
		return fmt.Errorf("%w: request dropped (injected)", errTransient)
	}
	dup := faultinject.Hit(faultinject.RPCDuplicate)
	dropReply := faultinject.Hit(faultinject.RPCDropReply)
	if dup {
		// First delivery of the duplicated request; its reply is ignored.
		_ = c.send(path, req, nil)
	}
	if err := c.send(path, req, out); err != nil {
		return err
	}
	if dropReply {
		// The server-side effect happened; the caller must not see the
		// reply, so the retry re-delivers the request.
		return fmt.Errorf("%w: reply dropped (injected)", errTransient)
	}
	return nil
}

// send is one raw HTTP round trip; out may be nil to discard the reply.
func (c *Client) send(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("%s: encode: %w", path, err)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %v", errTransient, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("%w: read reply: %v", errTransient, err)
	}
	if resp.StatusCode >= 500 {
		return fmt.Errorf("%w: http %d: %s", errTransient, resp.StatusCode, data)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: http %d: %s", path, resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("%s: decode reply: %w", path, err)
	}
	return nil
}
