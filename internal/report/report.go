// Package report renders the study's tables and figures from result rows:
// Table 1 (suite overview), Table 2 (trivial-benchmark properties), Table 3
// (the full per-benchmark grid), the Figure 2 Venn diagrams and the Figure
// 3/4 scatter series. Output is plain text plus CSV, which is what the
// paper's artifact scripts produced.
package report

import (
	"fmt"
	"sort"
	"strings"

	"sctbench/internal/explore"
	"sctbench/internal/study"
)

// limitMark renders schedule counts the way Table 3 does: 'L' at the
// schedule limit.
func limitMark(v, limit int) string {
	if limit > 0 && v >= limit {
		return "L"
	}
	return fmt.Sprintf("%d", v)
}

// miss is the Table 3 "no bug found" marker (the paper uses a dagger).
const miss = "x"

// Table3 renders the full experimental grid for the given rows.
func Table3(rows []*study.Row, limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-28s %3s %3s %6s | %-5s %28s | %-5s %28s | %22s | %14s\n",
		"id", "name", "thr", "en", "pts",
		"IPB", "bound/first/total/new/buggy",
		"IDB", "bound/first/total/new/buggy",
		"DFS first/total/buggy", "Rand first/buggy")
	b.WriteString(strings.Repeat("-", 160) + "\n")
	for _, r := range rows {
		ipb := iterCells(r.Results[explore.IPB], limit)
		idb := iterCells(r.Results[explore.IDB], limit)
		dfs := dfsCells(r.Results[explore.DFS], limit)
		rnd := randCells(r.Results[explore.Rand], limit)
		fmt.Fprintf(&b, "%-3d %-28s %3d %3d %6d | %-34s | %-34s | %22s | %14s",
			r.Bench.ID, r.Bench.Name, r.Threads(), r.MaxEnabled(), r.MaxSchedPoints(),
			ipb, idb, dfs, rnd)
		if r.Maple != nil {
			found := miss
			if r.Maple.BugFound {
				found = "Y"
			}
			fmt.Fprintf(&b, " | %s %d/%d", found, r.Maple.SchedulesToFirstBug, r.Maple.Schedules)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func iterCells(r *explore.Result, limit int) string {
	if r == nil {
		return "-"
	}
	if !r.BugFound {
		return fmt.Sprintf("%d %s %s %d %s", r.Bound, miss, limitMark(r.Schedules, limit), r.NewSchedules, miss)
	}
	return fmt.Sprintf("%d %d %s %d %d", r.Bound, r.SchedulesToFirstBug,
		limitMark(r.Schedules, limit), r.NewSchedules, r.BuggySchedules)
}

func dfsCells(r *explore.Result, limit int) string {
	if r == nil {
		return "-"
	}
	pct := ""
	if r.Schedules > 0 {
		prefix := ""
		if r.LimitHit {
			prefix = "*"
		}
		pct = fmt.Sprintf(" %s%d%%", prefix, 100*r.BuggySchedules/r.Schedules)
	}
	if !r.BugFound {
		return fmt.Sprintf("%s %s %d%s", miss, limitMark(r.Schedules, limit), r.BuggySchedules, pct)
	}
	return fmt.Sprintf("%d %s %d%s", r.SchedulesToFirstBug, limitMark(r.Schedules, limit), r.BuggySchedules, pct)
}

func randCells(r *explore.Result, limit int) string {
	if r == nil {
		return "-"
	}
	if !r.BugFound {
		return fmt.Sprintf("%s 0", miss)
	}
	return fmt.Sprintf("%d %d", r.SchedulesToFirstBug, r.BuggySchedules)
}

// Venn is the found-by classification behind the Figure 2 diagrams.
type Venn struct {
	// Regions maps a subset label (e.g. "IPB∧IDB∧DFS") to benchmark count.
	Regions map[string]int
	// Names maps the label to the benchmark names in that region.
	Names map[string][]string
	// None lists benchmarks found by no technique in the diagram.
	None []string
}

// venn3 builds a three-set Venn from membership predicates.
func venn3(rows []*study.Row, names [3]string, in func(*study.Row, int) bool) *Venn {
	v := &Venn{Regions: make(map[string]int), Names: make(map[string][]string)}
	for _, r := range rows {
		var parts []string
		for i := 0; i < 3; i++ {
			if in(r, i) {
				parts = append(parts, names[i])
			}
		}
		if len(parts) == 0 {
			v.None = append(v.None, r.Bench.Name)
			continue
		}
		label := strings.Join(parts, "∧")
		v.Regions[label]++
		v.Names[label] = append(v.Names[label], r.Bench.Name)
	}
	return v
}

// VennSystematic reproduces Figure 2a: IPB vs IDB vs DFS.
func VennSystematic(rows []*study.Row) *Venn {
	return venn3(rows, [3]string{"IPB", "IDB", "DFS"}, func(r *study.Row, i int) bool {
		switch i {
		case 0:
			return r.Found(explore.IPB)
		case 1:
			return r.Found(explore.IDB)
		default:
			return r.Found(explore.DFS)
		}
	})
}

// VennVsNaive reproduces Figure 2b: IDB vs Rand vs MapleAlg.
func VennVsNaive(rows []*study.Row) *Venn {
	return venn3(rows, [3]string{"IDB", "Rand", "MapleAlg"}, func(r *study.Row, i int) bool {
		switch i {
		case 0:
			return r.Found(explore.IDB)
		case 1:
			return r.Found(explore.Rand)
		default:
			return r.Maple != nil && r.Maple.BugFound
		}
	})
}

// Format renders a Venn as sorted "region: count" lines.
func (v *Venn) Format() string {
	var b strings.Builder
	labels := make([]string, 0, len(v.Regions))
	for l := range v.Regions {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "%-22s %2d  %s\n", l, v.Regions[l], strings.Join(v.Names[l], ", "))
	}
	fmt.Fprintf(&b, "%-22s %2d  %s\n", "none", len(v.None), strings.Join(v.None, ", "))
	return b.String()
}

// Table2 computes the trivial-benchmark properties of Table 2.
func Table2(rows []*study.Row, limit int) string {
	dbZero, under, half, all := 0, 0, 0, 0
	for _, r := range rows {
		if idb := r.Results[explore.IDB]; idb != nil && idb.BugFound && idb.Bound == 0 {
			dbZero++
		}
		if dfs := r.Results[explore.DFS]; dfs != nil && dfs.Complete && dfs.Schedules < limit {
			under++
		}
		if rnd := r.Results[explore.Rand]; rnd != nil && rnd.Schedules > 0 {
			frac := float64(rnd.BuggySchedules) / float64(rnd.Schedules)
			if frac > 0.5 {
				half++
			}
			if rnd.BuggySchedules == rnd.Schedules {
				all++
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-55s %s\n", "Property", "# benchmarks")
	fmt.Fprintf(&b, "%-55s %d\n", "Bug found with DB = 0", dbZero)
	fmt.Fprintf(&b, "%-55s %d\n", fmt.Sprintf("Total terminal schedules < %d", limit), under)
	fmt.Fprintf(&b, "%-55s %d\n", "> 50% of random schedules were buggy", half)
	fmt.Fprintf(&b, "%-55s %d\n", "Every random schedule was buggy", all)
	return b.String()
}

// FigPoint is one benchmark's (IDB, IPB) pair for the Figure 3/4 scatter
// plots.
type FigPoint struct {
	ID          int
	Name        string
	IDB, IPB    int
	IDBTot      int
	IPBTot      int
	FoundEither bool
}

// Fig3Series produces the Figure 3 data: schedules to first bug (crosses)
// and total schedules within the discovering bound (squares), for every
// benchmark where at least one technique found the bug. Misses are plotted
// at the limit, as in the paper.
func Fig3Series(rows []*study.Row, limit int) []FigPoint {
	var out []FigPoint
	for _, r := range rows {
		ipb, idb := r.Results[explore.IPB], r.Results[explore.IDB]
		if ipb == nil || idb == nil {
			continue
		}
		if !ipb.BugFound && !idb.BugFound {
			continue
		}
		p := FigPoint{ID: r.Bench.ID, Name: r.Bench.Name, FoundEither: true,
			IDB: limit, IPB: limit, IDBTot: idb.Schedules, IPBTot: ipb.Schedules}
		if idb.BugFound {
			p.IDB = idb.SchedulesToFirstBug
		}
		if ipb.BugFound {
			p.IPB = ipb.SchedulesToFirstBug
		}
		out = append(out, p)
	}
	return out
}

// Fig4Series produces the Figure 4 data: the worst-case schedule counts
// (total non-buggy schedules within the bound that exposed the bug).
func Fig4Series(rows []*study.Row, limit int) []FigPoint {
	var out []FigPoint
	for _, r := range rows {
		ipb, idb := r.Results[explore.IPB], r.Results[explore.IDB]
		if ipb == nil || idb == nil {
			continue
		}
		if !ipb.BugFound && !idb.BugFound {
			continue
		}
		p := FigPoint{ID: r.Bench.ID, Name: r.Bench.Name, FoundEither: true,
			IDB: limit, IPB: limit, IDBTot: idb.Schedules, IPBTot: ipb.Schedules}
		if idb.BugFound {
			p.IDB = idb.Schedules - idb.BuggySchedules
		}
		if ipb.BugFound {
			p.IPB = ipb.Schedules - ipb.BuggySchedules
		}
		out = append(out, p)
	}
	return out
}

// FigCSV renders scatter points as CSV.
func FigCSV(points []FigPoint) string {
	var b strings.Builder
	b.WriteString("id,name,idb,ipb,idb_total,ipb_total\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%d\n", p.ID, p.Name, p.IDB, p.IPB, p.IDBTot, p.IPBTot)
	}
	return b.String()
}
