package explore

// These tests pin the exploration engines to the worked examples of §2 of
// the paper, which give exact schedule counts: the Figure 1 program has 11
// terminal schedules under a preemption bound of one but only 4 under a
// delay bound of one, and the "reorder" adversary needs one extra delay per
// extra thread while a single preemption always suffices.

import (
	"testing"

	"sctbench/internal/vthread"
)

// figure1 is the program of Figure 1: T0 creates T1, T2, T3 in one step and
// is then disabled. T1: x=1; y=1. T2: z=1. T3: assert x==y. Plain Go
// variables plus Yield model each labelled statement as exactly one visible
// operation (the Yield parks the thread; the statement executes with the
// grant).
func figure1() vthread.Program {
	return func(t0 *vthread.Thread) {
		var x, y, z int
		_ = z
		t0.SpawnAll(
			func(t1 *vthread.Thread) {
				t1.Yield() // b
				x = 1
				t1.Yield() // c
				y = 1
			},
			func(t2 *vthread.Thread) {
				t2.Yield() // d
				z = 1
			},
			func(t3 *vthread.Thread) {
				t3.Yield() // e
				t3.Assert(x == y, "x=%d y=%d", x, y)
			},
		)
	}
}

func TestFigure1PreemptionBoundOneHasElevenSchedules(t *testing.T) {
	r := RunIterative(Config{Program: figure1()}, CostPreemptions)
	if !r.BugFound {
		t.Fatal("bug not found")
	}
	if r.Bound != 1 {
		t.Fatalf("bound = %d, want 1 (the bug needs exactly one preemption)", r.Bound)
	}
	if r.Schedules != 11 {
		t.Fatalf("schedules with at most one preemption = %d, want 11 (paper §2 Example 2)", r.Schedules)
	}
}

func TestFigure1DelayBoundOneHasFourSchedules(t *testing.T) {
	r := RunIterative(Config{Program: figure1()}, CostDelays)
	if !r.BugFound {
		t.Fatal("bug not found")
	}
	if r.Bound != 1 {
		t.Fatalf("bound = %d, want 1 (the bug needs exactly one delay)", r.Bound)
	}
	if r.Schedules != 4 {
		t.Fatalf("schedules with at most one delay = %d, want 4 (paper §2 Example 2)", r.Schedules)
	}
}

func TestFigure1NotFoundAtBoundZero(t *testing.T) {
	// "The bug will not be found with a preemption bound of zero, but will
	// be found with any greater bound." Bound-zero exploration is the first
	// iteration; the bug being found at bound 1 (previous tests) plus a
	// non-buggy round-robin first schedule pins this. Here we check the
	// zero-delay schedule directly: it is unique and non-buggy.
	w := vthread.NewWorld(vthread.Options{Chooser: vthread.RoundRobin()})
	out := w.Run(figure1())
	if out.Buggy() {
		t.Fatalf("round-robin schedule is buggy: %v", out.Failure)
	}
	if out.DC != 0 || out.PC != 0 {
		t.Fatalf("round-robin schedule has PC=%d DC=%d, want 0,0", out.PC, out.DC)
	}
}

func TestFigure1DFSCountsTruncatedSchedules(t *testing.T) {
	// The full interleaving space of Figure 1 is 12 orderings, but the
	// assertion failure is a terminal state, so two orderings collapse into
	// the single terminal schedule ⟨a,b,e⟩: DFS must count 11 distinct
	// terminal schedules.
	r := RunDFS(Config{Program: figure1()})
	if !r.Complete {
		t.Fatal("DFS did not exhaust the space")
	}
	if r.Schedules != 11 {
		t.Fatalf("DFS schedules = %d, want 11", r.Schedules)
	}
	if !r.BugFound {
		t.Fatal("DFS missed the bug")
	}
}

// reorder builds the §2 Example 2 adversary: n writer threads identical to
// T1 (x=1; y=1) between T1 and the asserting thread in creation order. The
// bug (assert sees x != y) needs n+1 delays but still only one preemption.
func reorder(extra int) vthread.Program {
	return func(t0 *vthread.Thread) {
		var x, y int
		writer := func(tw *vthread.Thread) {
			tw.Yield()
			x = 1
			tw.Yield()
			y = 1
		}
		bodies := make([]vthread.Program, 0, extra+2)
		bodies = append(bodies, writer)
		for i := 0; i < extra; i++ {
			bodies = append(bodies, writer)
		}
		bodies = append(bodies, func(tc *vthread.Thread) {
			tc.Yield()
			tc.Assert(x == y, "x=%d y=%d", x, y)
		})
		t0.SpawnAll(bodies...)
	}
}

func TestReorderAdversaryDelayBoundGrowsWithThreads(t *testing.T) {
	// "Adding an additional n threads … will require n additional delays to
	// expose the bug, while still only one preemption will be needed."
	for extra := 0; extra <= 2; extra++ {
		idb := RunIterative(Config{Program: reorder(extra)}, CostDelays)
		if !idb.BugFound {
			t.Fatalf("extra=%d: IDB missed the bug", extra)
		}
		if want := extra + 1; idb.Bound != want {
			t.Errorf("extra=%d: IDB bound = %d, want %d", extra, idb.Bound, want)
		}
		ipb := RunIterative(Config{Program: reorder(extra)}, CostPreemptions)
		if !ipb.BugFound {
			t.Fatalf("extra=%d: IPB missed the bug", extra)
		}
		if ipb.Bound != 1 {
			t.Errorf("extra=%d: IPB bound = %d, want 1", extra, ipb.Bound)
		}
	}
}
