package bench

// Technique-signature regression tests: the qualitative Table 3 shape the
// study's findings rest on, pinned per benchmark. These use the real
// 10,000-schedule limit, so they run for minutes — excluded from -short.

import (
	"testing"

	"sctbench/internal/explore"
	"sctbench/internal/mapleidiom"
	"sctbench/internal/race"
)

// signature describes who must find a benchmark's bug within the limit.
type signature struct {
	name       string
	ipb, idb   bool
	rand       bool
	idbBound   int // expected discovering bound, -1 = don't check
	ipbBound   int
	checkMaple bool
	maple      bool
	// skipSystematic omits the IPB/IDB/Rand sweeps: used for the two
	// benchmarks whose 10k-limit runs take minutes each (their systematic
	// signatures are validated by the archived study run instead).
	skipSystematic bool
}

func runTech(t *testing.T, b *Benchmark, tech explore.Technique, visible func(string) bool) *explore.Result {
	t.Helper()
	return explore.Run(tech, explore.Config{
		Program: b.New(), Visible: visible, BoundsCheck: b.BoundsCheck,
		MaxSteps: b.MaxSteps, Limit: 10000, Seed: 77,
	})
}

func TestTechniqueSignatures(t *testing.T) {
	if testing.Short() {
		t.Skip("signature sweep uses the full 10k limit; run without -short")
	}
	sigs := []signature{
		// The IDB-beats-IPB family: blocking-induced zero-preemption
		// branching buries IPB while one delay suffices.
		{name: "parsec.ferret", ipb: false, idb: true, rand: false, idbBound: 1, ipbBound: -1},
		{name: "chess.IWSQ", ipb: false, idb: true, rand: true, idbBound: 1, ipbBound: -1},
		{name: "CS.wronglock_bad", ipb: false, idb: true, rand: true, idbBound: 1, ipbBound: -1},
		// Both bounded techniques succeed at small bounds.
		{name: "chess.WSQ", ipb: true, idb: true, rand: true, idbBound: 1, ipbBound: 1},
		{name: "splash2.lu", ipb: true, idb: true, rand: true, idbBound: 1, ipbBound: 1},
		// The IPB-beats-IDB outlier (Figure 4): zero preemptions, one delay.
		{name: "parsec.streamcluster3", ipb: true, idb: true, rand: true, idbBound: 1, ipbBound: 0},
		// Found by nothing within the limit. (radbench.bug1's signature is
		// the same shape but its ~12k scheduling points make the sweep
		// minutes-long; the archived study run covers it.)
		{name: "misc.safestack", ipb: false, idb: false, rand: false, idbBound: -1, ipbBound: -1},
		// Rand-only.
		{name: "radbench.bug4", ipb: false, idb: false, rand: true, idbBound: -1, ipbBound: -1},
		// MapleAlg-only: the Maple run is cheap; the systematic misses are
		// covered by the archived study run.
		{name: "radbench.bug5", skipSystematic: true, checkMaple: true, maple: true},
	}
	for _, sig := range sigs {
		sig := sig
		t.Run(sig.name, func(t *testing.T) {
			t.Parallel()
			b := ByName(sig.name)
			if b == nil {
				t.Fatalf("missing benchmark %s", sig.name)
			}
			phase := race.RunPhase(race.PhaseConfig{
				Program: b.New(), Seed: 77, MaxSteps: b.MaxSteps, BoundsCheck: b.BoundsCheck,
			})
			visible := race.Promoted(phase.Racy)

			if sig.skipSystematic {
				goto maple
			}
			{
				ipb := runTech(t, b, explore.IPB, visible)
				if ipb.BugFound != sig.ipb {
					t.Errorf("IPB found=%v, want %v (bound %d, %d schedules)",
						ipb.BugFound, sig.ipb, ipb.Bound, ipb.Schedules)
				}
				if sig.ipb && sig.ipbBound >= 0 && ipb.Bound != sig.ipbBound {
					t.Errorf("IPB bound = %d, want %d", ipb.Bound, sig.ipbBound)
				}
				idb := runTech(t, b, explore.IDB, visible)
				if idb.BugFound != sig.idb {
					t.Errorf("IDB found=%v, want %v (bound %d, %d schedules)",
						idb.BugFound, sig.idb, idb.Bound, idb.Schedules)
				}
				if sig.idb && sig.idbBound >= 0 && idb.Bound != sig.idbBound {
					t.Errorf("IDB bound = %d, want %d", idb.Bound, sig.idbBound)
				}
				rnd := runTech(t, b, explore.Rand, visible)
				if rnd.BugFound != sig.rand {
					t.Errorf("Rand found=%v, want %v (%d buggy)", rnd.BugFound, sig.rand, rnd.BuggySchedules)
				}
			}
		maple:
			if sig.checkMaple {
				m := mapleidiom.Run(mapleidiom.Config{
					Program: b.New, Visible: visible, BoundsCheck: b.BoundsCheck,
					MaxSteps: b.MaxSteps, Seed: 77,
				})
				if m.BugFound != sig.maple {
					t.Errorf("MapleAlg found=%v, want %v", m.BugFound, sig.maple)
				}
			}
		})
	}
}

// TestRadbench2PreemptionEqualsDelay pins the §6 observation that with two
// threads IPB and IDB explore identical schedule sets.
func TestRadbench2PreemptionEqualsDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("full-limit test; run without -short")
	}
	b := ByName("radbench.bug2")
	phase := race.RunPhase(race.PhaseConfig{Program: b.New(), Seed: 77})
	visible := race.Promoted(phase.Racy)
	ipb := runTech(t, b, explore.IPB, visible)
	idb := runTech(t, b, explore.IDB, visible)
	if !ipb.BugFound || !idb.BugFound {
		t.Fatalf("bug2 missed: ipb=%v idb=%v", ipb.BugFound, idb.BugFound)
	}
	if ipb.Bound != idb.Bound || ipb.Schedules != idb.Schedules ||
		ipb.SchedulesToFirstBug != idb.SchedulesToFirstBug {
		t.Errorf("two-thread IPB and IDB diverged: IPB %d/%d/%d, IDB %d/%d/%d",
			ipb.Bound, ipb.SchedulesToFirstBug, ipb.Schedules,
			idb.Bound, idb.SchedulesToFirstBug, idb.Schedules)
	}
	if ipb.Bound != 3 {
		t.Errorf("bug2 discovering bound = %d, want 3 (three ordering constraints)", ipb.Bound)
	}
}

// TestStreamcluster3WorstCase pins the Figure 4 outlier: IPB's worst case
// is tiny while IDB must enumerate essentially its whole bound-1 space.
func TestStreamcluster3WorstCase(t *testing.T) {
	if testing.Short() {
		t.Skip("full-limit test; run without -short")
	}
	b := ByName("parsec.streamcluster3")
	phase := race.RunPhase(race.PhaseConfig{Program: b.New(), Seed: 77})
	visible := race.Promoted(phase.Racy)
	ipb := runTech(t, b, explore.IPB, visible)
	idb := runTech(t, b, explore.IDB, visible)
	if !ipb.BugFound || !idb.BugFound {
		t.Fatalf("missed: ipb=%v idb=%v", ipb.BugFound, idb.BugFound)
	}
	// The direction of the outlier is the invariant: IDB must be strictly
	// worse in both first-bug position and worst case, and the bug must be
	// free for IPB (bound 0) but cost IDB a delay. The paper's magnitude
	// (3 vs 1366) depends on program scale.
	if ipb.Bound != 0 || idb.Bound != 1 {
		t.Errorf("bounds IPB=%d IDB=%d, want 0 and 1", ipb.Bound, idb.Bound)
	}
	ipbWorst := ipb.Schedules - ipb.BuggySchedules
	idbWorst := idb.Schedules - idb.BuggySchedules
	if idbWorst <= ipbWorst {
		t.Errorf("worst cases: IPB %d, IDB %d — want IDB strictly worse (the paper's outlier)",
			ipbWorst, idbWorst)
	}
}
