package vthread

import (
	"runtime"
	"testing"
	"time"
)

// runRR executes a program once under the deterministic round-robin
// scheduler.
func runRR(t *testing.T, p Program) *Outcome {
	t.Helper()
	w := NewWorld(Options{Chooser: RoundRobin()})
	return w.Run(p)
}

func TestSingleThreadTerminates(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {})
	if out.Buggy() {
		t.Fatalf("empty program reported failure: %v", out.Failure)
	}
	if out.Threads != 1 {
		t.Fatalf("Threads = %d, want 1", out.Threads)
	}
	if len(out.Trace) != 0 {
		t.Fatalf("empty program has trace %v, want none", out.Trace)
	}
}

func TestSpawnAndJoin(t *testing.T) {
	ran := false
	out := runRR(t, func(t0 *Thread) {
		c := t0.Spawn(func(t1 *Thread) { ran = true })
		t0.Join(c)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if !ran {
		t.Fatal("child body did not run before join returned")
	}
	if out.Threads != 2 {
		t.Fatalf("Threads = %d, want 2", out.Threads)
	}
}

func TestThreadIDsFollowCreationOrder(t *testing.T) {
	var ids []ThreadID
	runRR(t, func(t0 *Thread) {
		ids = append(ids, t0.ID())
		a := t0.Spawn(func(ta *Thread) {})
		b := t0.Spawn(func(tb *Thread) {})
		ids = append(ids, a.ID(), b.ID())
		t0.Join(a)
		t0.Join(b)
	})
	want := []ThreadID{0, 1, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	// Under any schedule, the critical section must never be entered twice
	// concurrently. We drive with the random chooser over many seeds.
	for seed := uint64(0); seed < 50; seed++ {
		w := NewWorld(Options{Chooser: NewRandom(seed)})
		out := w.Run(Program(func(t0 *Thread) {
			m := t0.NewMutex("m")
			in := 0
			worker := func(tw *Thread) {
				for i := 0; i < 3; i++ {
					m.Lock(tw)
					in++
					tw.Assert(in == 1, "mutual exclusion violated: in=%d", in)
					tw.Yield() // stay in the critical section across a point
					in--
					m.Unlock(tw)
				}
			}
			a := t0.Spawn(worker)
			b := t0.Spawn(worker)
			t0.Join(a)
			t0.Join(b)
		}))
		if out.Buggy() {
			t.Fatalf("seed %d: mutual exclusion violated: %v", seed, out.Failure)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		m := t0.NewMutex("m")
		m.Lock(t0)
		m.Lock(t0) // self-deadlock: non-recursive mutex
	})
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("Failure = %v, want deadlock", out.Failure)
	}
}

func TestABBADeadlockUnderSomeSchedule(t *testing.T) {
	var program Program = func(t0 *Thread) {
		a := t0.NewMutex("a")
		b := t0.NewMutex("b")
		t1 := t0.Spawn(func(tx *Thread) {
			a.Lock(tx)
			b.Lock(tx)
			b.Unlock(tx)
			a.Unlock(tx)
		})
		t2 := t0.Spawn(func(tx *Thread) {
			b.Lock(tx)
			a.Lock(tx)
			a.Unlock(tx)
			b.Unlock(tx)
		})
		t0.Join(t1)
		t0.Join(t2)
	}
	// Round-robin runs the threads serially: no deadlock.
	if out := runRR(t, program); out.Buggy() {
		t.Fatalf("round-robin should not deadlock, got %v", out.Failure)
	}
	// Some random schedule must interleave the acquisitions and deadlock.
	found := false
	for seed := uint64(0); seed < 200 && !found; seed++ {
		w := NewWorld(Options{Chooser: NewRandom(seed)})
		out := w.Run(program)
		if out.Failure != nil {
			if out.Failure.Kind != FailDeadlock {
				t.Fatalf("seed %d: failure %v, want deadlock", seed, out.Failure)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no random schedule exposed the AB/BA deadlock in 200 runs")
	}
}

func TestAssertFailureStopsExecution(t *testing.T) {
	reached := false
	out := runRR(t, func(t0 *Thread) {
		t0.Assert(false, "boom %d", 7)
		reached = true
	})
	if out.Failure == nil || out.Failure.Kind != FailAssert {
		t.Fatalf("Failure = %v, want assertion", out.Failure)
	}
	if out.Failure.Message != "boom 7" {
		t.Fatalf("Message = %q", out.Failure.Message)
	}
	if reached {
		t.Fatal("execution continued past a failed assertion")
	}
}

func TestDoubleUnlockIsCrash(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		m := t0.NewMutex("m")
		m.Lock(t0)
		m.Unlock(t0)
		m.Unlock(t0)
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash", out.Failure)
	}
}

func TestUseAfterDestroyIsCrash(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		m := t0.NewMutex("m")
		m.Destroy(t0)
		m.Lock(t0)
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash", out.Failure)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	var order []int
	out := runRR(t, func(t0 *Thread) {
		m := t0.NewMutex("m")
		c := t0.NewCond("c")
		ready := t0.NewVar("ready", 0)
		waiter := func(n int) Program {
			return func(tw *Thread) {
				m.Lock(tw)
				for ready.Load(tw) == 0 {
					c.Wait(tw, m)
				}
				order = append(order, n)
				m.Unlock(tw)
			}
		}
		w1 := t0.Spawn(waiter(1))
		w2 := t0.Spawn(waiter(2))
		// Let both waiters block: RR runs each to its Wait.
		t0.Yield()
		m.Lock(t0)
		ready.Store(t0, 1)
		c.Broadcast(t0)
		m.Unlock(t0)
		t0.Join(w1)
		t0.Join(w2)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v, want both waiters to run", order)
	}
}

func TestLostSignalHasNoEffect(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		m := t0.NewMutex("m")
		c := t0.NewCond("c")
		c.Signal(t0) // no waiters: lost, per pthread semantics
		m.Lock(t0)
		m.Unlock(t0)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

func TestSemaphoreBlocksAtZero(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		s := t0.NewSem("s", 0)
		producer := t0.Spawn(func(tp *Thread) { s.V(tp) })
		s.P(t0) // must block until the producer posts
		t0.Join(producer)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

func TestSemaphoreDeadlockWhenNeverPosted(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		s := t0.NewSem("s", 0)
		s.P(t0)
	})
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("Failure = %v, want deadlock", out.Failure)
	}
}

func TestBarrierReleasesAllParties(t *testing.T) {
	passed := 0
	out := runRR(t, func(t0 *Thread) {
		b := t0.NewBarrier("b", 3)
		worker := func(tw *Thread) {
			b.Arrive(tw)
			passed++
		}
		w1 := t0.Spawn(worker)
		w2 := t0.Spawn(worker)
		b.Arrive(t0)
		passed++
		t0.Join(w1)
		t0.Join(w2)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if passed != 3 {
		t.Fatalf("passed = %d, want 3", passed)
	}
}

func TestBarrierBlocksUntilFull(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		b := t0.NewBarrier("b", 2)
		b.Arrive(t0) // nobody else ever arrives
	})
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("Failure = %v, want deadlock", out.Failure)
	}
}

func TestAtomicCAS(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		a := t0.NewAtomic("a", 5)
		t0.Assert(a.CAS(t0, 5, 7), "CAS(5,7) should succeed")
		t0.Assert(!a.CAS(t0, 5, 9), "CAS(5,9) should fail")
		t0.Assert(a.Load(t0) == 7, "value = %d, want 7", a.Load(t0))
		t0.Assert(a.Swap(t0, 1) == 7, "swap should return 7")
		t0.Assert(a.Add(t0, 2) == 3, "add should return 3")
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

func TestIntVarAddIsTwoAccesses(t *testing.T) {
	// With everything promoted, v.Add must be a load and a store: two
	// scheduling points. A second thread interleaving between them loses an
	// update — the canonical racy-counter bug shape.
	found := false
	for seed := uint64(0); seed < 100 && !found; seed++ {
		w := NewWorld(Options{Chooser: NewRandom(seed)})
		out := w.Run(Program(func(t0 *Thread) {
			v := t0.NewVar("v", 0)
			inc := func(tw *Thread) { v.Add(tw, 1) }
			a := t0.Spawn(inc)
			b := t0.Spawn(inc)
			t0.Join(a)
			t0.Join(b)
			t0.Assert(v.Load(t0) == 2, "lost update: v=%d", v.Load(t0))
		}))
		if out.Buggy() {
			found = true
		}
	}
	if !found {
		t.Fatal("lost update never exposed: IntVar.Add is not splittable")
	}
}

func TestInvisibleVarIsNoSchedulingPoint(t *testing.T) {
	vis := func(key string) bool { return false }
	w := NewWorld(Options{Chooser: RoundRobin(), Visible: vis})
	out := w.Run(Program(func(t0 *Thread) {
		v := t0.NewVar("v", 0)
		v.Store(t0, 1)
		v.Store(t0, 2)
		t0.Assert(v.Load(t0) == 2, "v=%d", v.Load(t0))
	}))
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if len(out.Trace) != 0 {
		t.Fatalf("invisible accesses produced trace %v", out.Trace)
	}
}

func TestArrayBoundsCheckingModes(t *testing.T) {
	var oob Program = func(t0 *Thread) {
		a := t0.NewArray("a", 2)
		a.Set(t0, 5, 1)
		t0.Assert(a.Get(t0, 5) == 0, "unchecked OOB read must return 0")
	}
	// Without the detector the access is silently dropped (§4.2: such bugs
	// "do not always cause a crash").
	w := NewWorld(Options{Chooser: RoundRobin()})
	if out := w.Run(oob); out.Buggy() {
		t.Fatalf("unchecked OOB crashed: %v", out.Failure)
	}
	// With the detector it is a crash.
	w = NewWorld(Options{Chooser: RoundRobin(), BoundsCheck: true})
	if out := w.Run(oob); out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("checked OOB: Failure = %v, want crash", out.Failure)
	}
}

func TestDeterministicReplay(t *testing.T) {
	var program Program = func(t0 *Thread) {
		v := t0.NewVar("v", 0)
		m := t0.NewMutex("m")
		worker := func(tw *Thread) {
			m.Lock(tw)
			v.Add(tw, 1)
			m.Unlock(tw)
			v.Add(tw, 10)
		}
		a := t0.Spawn(worker)
		b := t0.Spawn(worker)
		t0.Join(a)
		t0.Join(b)
	}
	ref := NewWorld(Options{Chooser: NewRandom(42)}).Run(program)
	for i := 0; i < 5; i++ {
		rep := NewReplay(ref.Trace)
		out := NewWorld(Options{Chooser: rep}).Run(program)
		if rep.Failed() {
			t.Fatalf("replay diverged at step %d", rep.FailStep())
		}
		if !out.Trace.Equal(ref.Trace) {
			t.Fatalf("replayed trace differs:\n got %v\nwant %v", out.Trace, ref.Trace)
		}
		if out.PC != ref.PC || out.DC != ref.DC {
			t.Fatalf("replay costs (PC=%d,DC=%d) != reference (PC=%d,DC=%d)",
				out.PC, out.DC, ref.PC, ref.DC)
		}
	}
}

func TestNoGoroutineLeakAcrossManyExecutions(t *testing.T) {
	before := runtime.NumGoroutine()
	var program Program = func(t0 *Thread) {
		m := t0.NewMutex("m")
		s := t0.NewSem("s", 0)
		// One child deadlocks on the semaphore, so every execution aborts
		// with threads still blocked — the hard teardown path.
		t0.Spawn(func(tw *Thread) { s.P(tw) })
		t0.Spawn(func(tw *Thread) { m.Lock(tw); m.Unlock(tw) })
		m.Lock(t0)
		m.Unlock(t0)
	}
	for seed := uint64(0); seed < 300; seed++ {
		NewWorld(Options{Chooser: NewRandom(seed)}).Run(program)
	}
	// Allow the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestSpawnAllCreatesOneSchedulingStep(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		ts := t0.SpawnAll(
			func(*Thread) {},
			func(*Thread) {},
			func(*Thread) {},
		)
		for _, c := range ts {
			t0.Join(c)
		}
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if out.Threads != 4 {
		t.Fatalf("Threads = %d, want 4", out.Threads)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	w := NewWorld(Options{Chooser: RoundRobin(), MaxSteps: 10})
	out := w.Run(Program(func(t0 *Thread) {
		for {
			t0.Yield()
		}
	}))
	if !out.StepLimitHit {
		t.Fatal("runaway program did not hit the step limit")
	}
	if out.Buggy() {
		t.Fatalf("step-limited run must not report a bug, got %v", out.Failure)
	}
}

func TestOutcomeStatsTracked(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		a := t0.Spawn(func(tw *Thread) { tw.Yield(); tw.Yield() })
		b := t0.Spawn(func(tw *Thread) { tw.Yield() })
		t0.Join(a)
		t0.Join(b)
	})
	if out.MaxEnabled < 2 {
		t.Fatalf("MaxEnabled = %d, want >= 2", out.MaxEnabled)
	}
	if out.SchedPoints == 0 {
		t.Fatal("SchedPoints = 0, want > 0")
	}
	if out.Threads != 3 {
		t.Fatalf("Threads = %d, want 3", out.Threads)
	}
}
