package vthread

import (
	"testing"
	"testing/quick"

	"sctbench/internal/sched"
)

// debugCombos enumerates every combination of fast-path kill switches,
// starting with the all-off (pure slow path) baseline.
func debugCombos() []Debug {
	out := make([]Debug, 0, 8)
	for bits := 7; bits >= 0; bits-- {
		out = append(out, Debug{
			NoInlineStep:    bits&1 != 0,
			NoForcedStep:    bits&2 != 0,
			NoDirectHandoff: bits&4 != 0,
		})
	}
	return out
}

// failuresEqual compares failures including the message, which
// outcomesEqual (kind-only) does not.
func failuresEqual(a, b *Failure) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || (a.Kind == b.Kind && a.Thread == b.Thread && a.Message == b.Message)
}

// TestFastPathTogglesProperty is the fast-path equivalence property: for
// random programs and every combination of Debug kill switches, the
// round-robin, fixed-seed random and replay choosers produce executions
// bit-identical — trace, costs, statistics, failure — to the all-switches-
// off slow path. Random participates in strict equality because its
// ObserveForcedStep consumes the one draw Choose would have, keeping the
// rng stream aligned across the toggle (see randomChooser).
func TestFastPathTogglesProperty(t *testing.T) {
	combos := debugCombos()
	f := func(shape uint32, seed uint64) bool {
		prog := genProgram(shape)
		slow := combos[0]
		runWith := func(mk func() Chooser, d Debug) *Outcome {
			return NewWorld(Options{Chooser: mk(), Debug: d}).Run(prog)
		}
		choosers := map[string]func() Chooser{
			"roundrobin": RoundRobin,
			"random":     func() Chooser { return NewRandom(seed) },
		}
		var recorded *Outcome
		for name, mk := range choosers {
			want := runWith(mk, slow)
			if name == "random" {
				recorded = want
			}
			for _, d := range combos[1:] {
				got := runWith(mk, d)
				if !outcomesEqual(want, got) || !failuresEqual(want.Failure, got.Failure) {
					t.Logf("%s shape=%d seed=%d debug=%+v: outcome diverged\n got %+v\nwant %+v",
						name, shape, seed, d, got, want)
					return false
				}
			}
		}
		// Replay the random run's trace under every combination: same trace
		// back, no divergence, regardless of which fast paths fire.
		for _, d := range combos {
			rep := NewReplay(recorded.Trace)
			out := NewWorld(Options{Chooser: rep, Debug: d}).Run(prog)
			if rep.Failed() || !out.Trace.Equal(recorded.Trace) {
				t.Logf("replay shape=%d seed=%d debug=%+v: diverged (failed=%v)",
					shape, seed, d, rep.Failed())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFastPathsActuallyFire pins that the three fast paths are exercised
// (not silently dead code) on a program with contested points, blocking
// transfers and single-enabled stretches — and that the kill switches
// really kill them.
func TestFastPathsActuallyFire(t *testing.T) {
	ex := NewExecutor(Options{Chooser: RoundRobin()})
	defer ex.Close()
	out := ex.Run(executorTestProgram)
	if out.Failure != nil {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	st := ex.StepStats()
	if st.InlineSteps == 0 {
		t.Error("same-thread continuation never fired")
	}
	if st.ForcedSteps == 0 {
		t.Error("forced-step fast-forward never fired")
	}
	if st.DirectHandoffs == 0 {
		t.Error("direct thread-to-thread handoff never fired")
	}

	exOff := NewExecutor(Options{
		Chooser: RoundRobin(),
		Debug:   Debug{NoInlineStep: true, NoForcedStep: true, NoDirectHandoff: true},
	})
	defer exOff.Close()
	outOff := exOff.Run(executorTestProgram)
	if !outcomesEqual(out, outOff) {
		t.Errorf("slow path diverged:\n got %+v\nwant %+v", outOff, out)
	}
	stOff := exOff.StepStats()
	if stOff.InlineSteps != 0 || stOff.ForcedSteps != 0 || stOff.DirectHandoffs != 0 {
		t.Errorf("kill switches left fast paths on: %+v", stOff)
	}
	if stOff.Bounces == 0 {
		t.Error("slow path recorded no bounced grants")
	}
}

// TestForcedStepObserverCanAbort pins the abort contract on the forced
// path: ObserveForcedStep may call ctx.Abort, and the run then stops with
// the executed prefix, exactly like an aborting Choose (the sleep-set and
// DPOR engines rely on this when the single enabled thread is asleep).
type abortAtStep struct {
	at     int
	forced int // forced steps observed, to prove the abort came from one
}

func (a *abortAtStep) Choose(ctx Context) ThreadID {
	if ctx.Step >= a.at {
		ctx.Abort()
	}
	return ctx.Enabled[0]
}

func (a *abortAtStep) ObserveForcedStep(ctx Context) {
	a.forced++
	if ctx.Step >= a.at {
		ctx.Abort()
	}
}

func TestForcedStepObserverCanAbort(t *testing.T) {
	// Single-threaded program: every scheduling point is forced.
	var prog Program = func(t0 *Thread) {
		v := t0.NewVar("v", 0)
		for i := 0; i < 8; i++ {
			v.Store(t0, i)
		}
	}
	ch := &abortAtStep{at: 3}
	out := NewWorld(Options{Chooser: ch}).Run(prog)
	if !out.Aborted {
		t.Fatal("run not aborted")
	}
	if len(out.Trace) != 3 {
		t.Fatalf("trace %v, want the 3-step prefix", out.Trace)
	}
	if out.Failure != nil {
		t.Fatalf("aborted run has failure %v", out.Failure)
	}
	if ch.forced == 0 {
		t.Fatal("abort did not come from the forced-step path")
	}
}

// TestSchedPointsNotCountedAtStepLimit is the regression test for the
// scheduling-point off-by-one: SchedPoints and MaxEnabled used to be
// updated before the MaxSteps check, so a step-limited run counted a
// scheduling point — and could observe its enabled-thread high-water mark
// — at a point where no step ever executed.
func TestSchedPointsNotCountedAtStepLimit(t *testing.T) {
	// Thread 0's only step is the spawn (one enabled thread); the cut
	// happens at the next decision, where all three children are enabled.
	var prog Program = func(t0 *Thread) {
		t0.SpawnAll(
			func(tw *Thread) { tw.Yield() },
			func(tw *Thread) { tw.Yield() },
			func(tw *Thread) { tw.Yield() },
		)
	}
	out := NewWorld(Options{Chooser: RoundRobin(), MaxSteps: 1}).Run(prog)
	if !out.StepLimitHit {
		t.Fatal("step limit not hit")
	}
	if len(out.Trace) != 1 {
		t.Fatalf("trace %v, want exactly the spawn step", out.Trace)
	}
	if out.SchedPoints != 0 {
		t.Errorf("SchedPoints = %d at a 1-step limit, want 0: the cut-off point counted", out.SchedPoints)
	}
	if out.MaxEnabled != 1 {
		t.Errorf("MaxEnabled = %d, want 1: the never-executed point was observed", out.MaxEnabled)
	}

	// Sanity: one more step of budget executes one contested step, and
	// exactly one scheduling point is counted.
	out2 := NewWorld(Options{Chooser: RoundRobin(), MaxSteps: 2}).Run(prog)
	if !out2.StepLimitHit || len(out2.Trace) != 2 {
		t.Fatalf("MaxSteps=2: trace %v limit=%v", out2.Trace, out2.StepLimitHit)
	}
	if out2.SchedPoints != 1 || out2.MaxEnabled != 3 {
		t.Errorf("MaxSteps=2: SchedPoints=%d MaxEnabled=%d, want 1 and 3",
			out2.SchedPoints, out2.MaxEnabled)
	}
}

// TestReplayForcedDivergenceDetected pins Replay.Failed parity on the
// forced path: a recording that names the wrong thread at a single-enabled
// point is flagged as diverged whether or not the Choose call was skipped.
func TestReplayForcedDivergenceDetected(t *testing.T) {
	var prog Program = func(t0 *Thread) {
		v := t0.NewVar("v", 0)
		v.Store(t0, 1)
		v.Store(t0, 2)
	}
	bogus := sched.Schedule{0, 99} // step 1 names a thread that cannot exist
	for _, d := range debugCombos() {
		rep := NewReplay(bogus)
		NewWorld(Options{Chooser: rep, Debug: d}).Run(prog)
		if !rep.Failed() || rep.FailStep() != 1 {
			t.Errorf("debug=%+v: divergence not detected (failed=%v step=%d)",
				d, rep.Failed(), rep.FailStep())
		}
	}
}
