// Package faultinject provides deterministic crash points for the
// robustness tests of the exploration stack. A point is armed with a
// countdown; the n-th Hit call on that point fires exactly once, letting a
// test kill a search at execution N, corrupt a checkpoint write mid-file,
// or panic a pool worker between steal and merge — and then prove that
// resume reproduces the uninterrupted run.
//
// The package is a process-global registry, so tests that arm points must
// not run concurrently with each other (the explore/study test suites run
// their faultinject cases sequentially). Production code only pays one
// atomic load per call site while nothing is armed.
package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Point identifies one crash site compiled into the exploration stack.
type Point int

const (
	// ExploreInterrupt fires in the exploration drivers' per-execution
	// poll, simulating a SIGINT arriving before the N-th execution.
	ExploreInterrupt Point = iota
	// CheckpointWrite fires inside Checkpoint.Save, simulating the process
	// dying mid-write: a truncated temp file is left behind and the real
	// checkpoint is never replaced.
	CheckpointWrite
	// PoolUnitPanic fires inside the parallel pool's runUnit, panicking the
	// worker between stealing a unit and merging its result.
	PoolUnitPanic
	// CheckpointDirSync fires inside fsatomic.WriteFile between the rename
	// and the parent-directory fsync, simulating a power loss in the window
	// where the new file's bytes are durable but its directory entry may
	// not be: after "reboot" either the old or the new file is present,
	// both complete.
	CheckpointDirSync
	// RPCDropRequest fires in the distributed client before a request is
	// sent: the message is lost on the wire and the caller sees a transient
	// error (retry with backoff covers it).
	RPCDropRequest
	// RPCDropReply fires in the distributed client after the server
	// processed a request but before the reply is read: the server-side
	// effect happened, the client retries, and the server must treat the
	// duplicate idempotently.
	RPCDropReply
	// RPCDuplicate fires in the distributed client and delivers the same
	// request twice back to back; the server must absorb the duplicate.
	RPCDuplicate
	// DistWorkerCrash fires in a distributed worker's per-execution poll,
	// simulating kill -9 mid-unit: the worker abandons its lease without a
	// word and the coordinator must re-dispatch after expiry.
	DistWorkerCrash
	// DistCoordCrash fires in the coordinator's unit-completion handler
	// after the result is recorded but before it is acknowledged,
	// simulating the coordinator dying mid-merge; a resumed coordinator
	// must reconstruct the job from its last checkpoint.
	DistCoordCrash
	// CorpusWrite fires in the schedule corpus's entry save, before any
	// byte reaches the filesystem: the process dies with the update lost
	// and the previous on-disk entry must remain byte-identical.
	CorpusWrite
	numPoints
)

// ErrInjected is the sentinel returned by code paths that simulate a crash
// (rather than panic): callers treat it as "the process died here".
var ErrInjected = errors.New("faultinject: simulated crash")

var (
	armed atomic.Int32 // number of armed points; the fast-path gate
	mu    sync.Mutex
	count [numPoints]int64 // remaining Hit calls before firing; 0 = disarmed
)

// Arm schedules point to fire on its n-th Hit call (n >= 1). Arming
// replaces any previous countdown for the point.
func Arm(p Point, n int64) {
	if n < 1 {
		panic("faultinject: Arm needs n >= 1")
	}
	mu.Lock()
	if count[p] == 0 {
		armed.Add(1)
	}
	count[p] = n
	mu.Unlock()
}

// Disarm cancels a pending countdown for point.
func Disarm(p Point) {
	mu.Lock()
	if count[p] != 0 {
		count[p] = 0
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	for p := range count {
		if count[p] != 0 {
			count[p] = 0
			armed.Add(-1)
		}
	}
	mu.Unlock()
}

// Hit decrements point's countdown and reports whether it fired. With
// nothing armed anywhere it is a single atomic load.
func Hit(p Point) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	if count[p] == 0 {
		return false
	}
	count[p]--
	if count[p] == 0 {
		armed.Add(-1)
		return true
	}
	return false
}
