package dist

import (
	"errors"
	"fmt"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/faultinject"
	"sctbench/internal/race"
)

// WorkerConfig parameterises one worker process (or goroutine — the chaos
// tests run workers in-process against a real HTTP listener).
type WorkerConfig struct {
	// Addr is the coordinator base URL, e.g. "http://127.0.0.1:4077".
	Addr string
	// Name identifies the worker in coordinator status output.
	Name string
	// Interrupt, when non-nil and closed, makes the worker park its
	// in-flight unit and exit cleanly (SIGTERM drain).
	Interrupt <-chan struct{}
	// Client overrides the default retrying client (tests shorten the
	// backoff; zero value = defaults).
	Client *Client
}

// ErrWorkerKilled reports that an injected DistWorkerCrash fault killed
// the worker mid-unit: no park, no completion — exactly a kill -9. The
// coordinator recovers by lease expiry.
var ErrWorkerKilled = errors.New("dist: worker killed (injected)")

// RunWorker connects to a coordinator, executes leased units until the job
// is done (or draining, or the worker is interrupted), and returns nil on
// a clean exit. Each unit runs on the worker's own Executor; per-execution
// polls heartbeat the lease, honor the drain/cancel verdicts, and enforce
// the job deadline even when the coordinator is unreachable.
func RunWorker(wc WorkerConfig) error {
	cl := wc.Client
	if cl == nil {
		cl = &Client{}
	}
	if cl.Base == "" {
		cl.Base = wc.Addr
	}
	var spec JobSpec
	if err := cl.call("/v1/job", struct{}{}, &spec); err != nil {
		return fmt.Errorf("worker %s: fetch job: %w", wc.Name, err)
	}
	b := bench.ByName(spec.Benchmark)
	if b == nil {
		return fmt.Errorf("worker %s: unknown benchmark %q", wc.Name, spec.Benchmark)
	}
	var visible func(string) bool
	if !spec.NoRace {
		visible = race.Promoted(spec.Racy)
	}
	cfg := explore.Config{
		Program: b.New(), Visible: visible,
		BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps,
		Limit: spec.Limit, Seed: spec.Seed,
	}
	var deadline time.Time
	if spec.DeadlineMillis != 0 {
		deadline = time.UnixMilli(spec.DeadlineMillis)
	}

	for {
		select {
		case <-wc.Interrupt:
			return nil
		default:
		}
		var lease LeaseReply
		if err := cl.call("/v1/lease", LeaseRequest{Worker: wc.Name}, &lease); err != nil {
			return fmt.Errorf("worker %s: lease: %w", wc.Name, err)
		}
		switch lease.Status {
		case StatusDone, StatusDrain:
			return nil
		case StatusWait:
			wait := time.Duration(lease.RetryMillis) * time.Millisecond
			if wait <= 0 {
				wait = 20 * time.Millisecond
			}
			select {
			case <-wc.Interrupt:
				return nil
			case <-time.After(wait):
			}
			continue
		case StatusUnit:
		default:
			return fmt.Errorf("worker %s: lease: unexpected status %q", wc.Name, lease.Status)
		}

		killed, err := runLease(cl, wc, cfg, &lease, deadline)
		if killed {
			return ErrWorkerKilled
		}
		if err != nil {
			return fmt.Errorf("worker %s: %w", wc.Name, err)
		}
	}
}

// runLease executes one leased unit to its outcome: complete, park (which
// also ends the worker's run — parks only happen on drain, interrupt or
// deadline), or abandon (lease lost; back to the lease loop). killed
// reports the injected worker crash.
func runLease(cl *Client, wc WorkerConfig, cfg explore.Config, lease *LeaseReply, deadline time.Time) (killed bool, err error) {
	hb := time.Duration(lease.HeartbeatMillis) * time.Millisecond
	if hb <= 0 {
		hb = 500 * time.Millisecond
	}
	lastHB := time.Now()
	poll := func() explore.UnitAction {
		if faultinject.Hit(faultinject.DistWorkerCrash) {
			// Simulated kill -9: vanish without parking or completing.
			// The coordinator's lease expiry re-dispatches the unit.
			killed = true
			return explore.UnitAbandon
		}
		select {
		case <-wc.Interrupt:
			return explore.UnitPark
		default:
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return explore.UnitPark
		}
		if time.Since(lastHB) >= hb {
			lastHB = time.Now()
			var rep HeartbeatReply
			if err := cl.call("/v1/heartbeat", HeartbeatRequest{LeaseID: lease.LeaseID}, &rep); err != nil {
				// Coordinator unreachable after retries: the lease will
				// expire anyway; stop wasting work.
				return explore.UnitAbandon
			}
			switch rep.Status {
			case StatusDrain:
				return explore.UnitPark
			case StatusCancel, StatusStale:
				return explore.UnitAbandon
			}
		}
		return explore.UnitContinue
	}

	ur, rerr := explore.RunUnit(cfg, lease.Unit, lease.Budget, poll)
	if killed {
		return true, nil
	}
	if rerr != nil {
		return false, rerr
	}
	switch {
	case ur.Done != nil:
		var rep CompleteReply
		req := CompleteRequest{
			LeaseID: lease.LeaseID, UnitID: lease.UnitID,
			Result: ur.Done, LimitHit: ur.LimitHit,
		}
		if err := cl.call("/v1/complete", req, &rep); err != nil {
			// Undeliverable completion (coordinator crashed): the work is
			// not lost — a resumed coordinator re-dispatches the unit and
			// determinism reproduces it.
			return false, err
		}
	case ur.Parked != nil:
		var rep ParkReply
		req := ParkRequest{LeaseID: lease.LeaseID, UnitID: lease.UnitID, Unit: ur.Parked}
		if err := cl.call("/v1/park", req, &rep); err != nil {
			return false, err
		}
	}
	// A parked unit ends the worker's run via the next loop iteration:
	// the interrupt select or the coordinator's drain reply on lease.
	return false, nil
}
