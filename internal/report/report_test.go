package report

import (
	"strings"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/study"
)

// rows runs a tiny study slice once per test binary.
var cachedRows []*study.Row

func studyRows(t *testing.T) []*study.Row {
	t.Helper()
	if cachedRows != nil {
		return cachedRows
	}
	var benches []*bench.Benchmark
	for _, n := range []string{"CS.account_bad", "CS.din_phil2_sat", "splash2.lu"} {
		b := bench.ByName(n)
		if b == nil {
			t.Fatalf("missing benchmark %s", n)
		}
		benches = append(benches, b)
	}
	cachedRows = study.RunAll(benches, study.Config{
		Limit: 300, Seed: 4, RaceRuns: 3, WithMaple: true, Parallelism: 2,
	})
	return cachedRows
}

func TestTable3RendersEveryRow(t *testing.T) {
	rows := studyRows(t)
	out := Table3(rows, 300)
	for _, r := range rows {
		if !strings.Contains(out, r.Bench.Name) {
			t.Errorf("Table 3 missing %s", r.Bench.Name)
		}
	}
	if !strings.Contains(out, "IPB") || !strings.Contains(out, "Rand") {
		t.Error("Table 3 missing technique headers")
	}
}

func TestTable2CountsTrivialGroups(t *testing.T) {
	rows := studyRows(t)
	out := Table2(rows, 300)
	if !strings.Contains(out, "Bug found with DB = 0") {
		t.Fatal("Table 2 missing the DB=0 property row")
	}
	// din_phil2_sat is buggy on the round-robin schedule: the DB=0 count
	// must be at least 1.
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.Contains(l, "Bug found with DB = 0") && !strings.HasSuffix(strings.TrimSpace(l), " 0") {
			found = true
		}
	}
	if !found {
		t.Errorf("DB=0 count is zero, want >= 1:\n%s", out)
	}
}

func TestVennRegionsPartitionBenchmarks(t *testing.T) {
	rows := studyRows(t)
	for _, v := range []*Venn{VennSystematic(rows), VennVsNaive(rows)} {
		total := len(v.None)
		for _, c := range v.Regions {
			total += c
		}
		if total != len(rows) {
			t.Errorf("Venn regions sum to %d, want %d", total, len(rows))
		}
		if v.Format() == "" {
			t.Error("empty Venn rendering")
		}
	}
}

func TestVennSystematicInclusion(t *testing.T) {
	// On these three easy benchmarks every systematic technique finds the
	// bug: everything must land in the triple-overlap region.
	v := VennSystematic(studyRows(t))
	if v.Regions["IPB∧IDB∧DFS"] != len(studyRows(t)) {
		t.Errorf("regions = %v, want all in IPB∧IDB∧DFS", v.Regions)
	}
}

func TestFigSeriesAndCSV(t *testing.T) {
	rows := studyRows(t)
	f3 := Fig3Series(rows, 300)
	f4 := Fig4Series(rows, 300)
	if len(f3) != len(rows) || len(f4) != len(rows) {
		t.Fatalf("series lengths %d/%d, want %d (all bugs found)", len(f3), len(f4), len(rows))
	}
	for i := range f3 {
		if f3[i].IDB <= 0 || f3[i].IPB <= 0 {
			t.Errorf("Fig3 point %d has non-positive coordinates: %+v", i, f3[i])
		}
		if f4[i].IDB < 0 || f4[i].IPB < 0 {
			t.Errorf("Fig4 point %d negative: %+v", i, f4[i])
		}
		// Figure 4 plots non-buggy counts within the bound: never more
		// than the total schedules.
		if f4[i].IDB > f4[i].IDBTot || f4[i].IPB > f4[i].IPBTot {
			t.Errorf("Fig4 point %d exceeds totals: %+v", i, f4[i])
		}
	}
	csv := FigCSV(f3)
	if !strings.HasPrefix(csv, "id,name,idb,ipb") {
		t.Errorf("CSV header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if strings.Count(csv, "\n") != len(f3)+1 {
		t.Errorf("CSV has %d lines, want %d", strings.Count(csv, "\n"), len(f3)+1)
	}
}

func TestLimitMark(t *testing.T) {
	if limitMark(300, 300) != "L" {
		t.Error("at-limit value not marked L")
	}
	if limitMark(299, 300) != "299" {
		t.Error("below-limit value mangled")
	}
}

func TestMissedBugsPlottedAtLimit(t *testing.T) {
	// Synthesize a row pair where IPB missed: the Fig3 IPB coordinate must
	// sit at the limit, as in the paper's figures.
	rows := studyRows(t)
	r := rows[0]
	saved := r.Results[explore.IPB]
	r.Results[explore.IPB] = &explore.Result{Technique: explore.IPB, BugFound: false, Schedules: 300}
	defer func() { r.Results[explore.IPB] = saved }()
	f3 := Fig3Series(rows, 300)
	found := false
	for _, p := range f3 {
		if p.ID == r.Bench.ID {
			found = true
			if p.IPB != 300 {
				t.Errorf("missed IPB plotted at %d, want 300 (the limit)", p.IPB)
			}
		}
	}
	if !found {
		t.Fatal("row with IDB-found bug dropped from Figure 3")
	}
}

func TestScatterRendersPoints(t *testing.T) {
	pts := []FigPoint{
		{ID: 1, IDB: 10, IPB: 100},
		{ID: 2, IDB: 5000, IPB: 5000},
	}
	out := Fig3Scatter(pts, 10000)
	if !strings.Contains(out, "o") {
		t.Fatal("no points rendered")
	}
	if !strings.Contains(out, "IDB") || !strings.Contains(out, "IPB") {
		t.Fatal("axes unlabeled")
	}
	if out2 := Fig4Scatter([]FigPoint{{IDB: 0, IPB: 0}}, 10000); !strings.Contains(out2, "o") {
		t.Fatal("zero point not clamped onto the grid")
	}
}

func TestTable3CSVShape(t *testing.T) {
	rows := studyRows(t)
	csv := Table3CSV(rows)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(rows)+1)
	}
	cols := strings.Count(lines[0], ",")
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != cols {
			t.Errorf("row %d has %d separators, header has %d", i, strings.Count(l, ","), cols)
		}
	}
	if !strings.Contains(lines[0], "idb_bound") || !strings.Contains(lines[0], "maple_found") {
		t.Errorf("header missing columns: %s", lines[0])
	}
}

// TestTable3CSVDPORColumns: rows carrying a DPOR result must render the
// pruning counters and the DFS-vs-DPOR execution reduction factor; rows
// without one keep the column count stable.
func TestTable3CSVDPORColumns(t *testing.T) {
	b := bench.ByName("CS.account_bad")
	row := study.RunBenchmark(b, study.Config{
		Limit: 300, Seed: 4, RaceRuns: 3,
		Techniques: []explore.Technique{explore.DFS, explore.DPOR},
	})
	csv := Table3CSV([]*study.Row{row})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want 2", len(lines))
	}
	header := strings.Split(lines[0], ",")
	cells := strings.Split(lines[1], ",")
	if len(header) != len(cells) {
		t.Fatalf("header has %d columns, row has %d", len(header), len(cells))
	}
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return cells[i]
			}
		}
		t.Fatalf("missing column %s in %v", name, header)
		return ""
	}
	if col("dpor_found") != col("dfs_found") {
		t.Errorf("verdicts differ in CSV: dpor=%s dfs=%s", col("dpor_found"), col("dfs_found"))
	}
	for _, c := range []string{"dfs_execs", "dpor_execs", "dpor_pruned", "dpor_steps"} {
		if col(c) == "" || col(c) == "0" {
			t.Errorf("column %s empty or zero: %q", c, col(c))
		}
	}
	if !strings.Contains(col("dpor_exec_reduction"), ".") {
		t.Errorf("dpor_exec_reduction not a factor: %q", col("dpor_exec_reduction"))
	}
	// A row without DPOR results keeps the grid rectangular (shape test
	// above also covers this via the default-technique rows).
	rows := studyRows(t)
	csv2 := Table3CSV(rows)
	for i, l := range strings.Split(strings.TrimSpace(csv2), "\n") {
		if strings.Count(l, ",") != len(header)-1 {
			t.Errorf("line %d has %d separators, want %d", i, strings.Count(l, ","), len(header)-1)
		}
	}
}
