// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so benchmark runs can be recorded and
// diffed across commits. `make bench-json` pipes the substrate throughput
// benchmarks through it into BENCH_substrate.json and the exploration
// reduction benchmarks into BENCH_explore.json.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem . | go run ./cmd/benchjson [-o out.json]
//
// Without -o the document goes to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
)

// Result is one benchmark line. Custom metrics (e.g. "execs/s") land in
// Metrics keyed by unit.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full document: environment header plus results.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	outPath := flag.String("o", "", "write the JSON document to this file instead of stdout")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write an allocation profile at exit to this path")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: memprofile:", err)
			}
		}()
	}
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines in input")
		os.Exit(1)
	}
	dst := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: create:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   2000   13579 ns/op   73657 execs/s   169 B/op   7 allocs/op
//
// Fields come in "<value> <unit>" pairs after the name and iteration count.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			v := val
			r.BytesPerOp = &v
		case "allocs/op":
			v := val
			r.AllocsPerOp = &v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
