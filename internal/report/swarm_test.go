package report

import (
	"strings"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/corpus"
	"sctbench/internal/explore"
	"sctbench/internal/study"
)

func swarmBenches(t *testing.T, names ...string) []*bench.Benchmark {
	t.Helper()
	byName := make(map[string]*bench.Benchmark)
	for _, b := range bench.All() {
		byName[b.Name] = b
	}
	var out []*bench.Benchmark
	for _, n := range names {
		b, ok := byName[n]
		if !ok {
			t.Fatalf("benchmark %q not in the registry", n)
		}
		out = append(out, b)
	}
	return out
}

// TestSwarmCSVDeterministic pins the swarm's headline output contract:
// two sweeps with the same seeds (and the same corpus starting state —
// here, a fresh store each) render byte-identical CSV.
func TestSwarmCSVDeterministic(t *testing.T) {
	benches := swarmBenches(t, "CS.account_bad", "CS.lazy01_bad", "CS.deadlock01_bad")
	run := func() string {
		store, err := corpus.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cells := study.RunSwarm(benches, study.SwarmConfig{
			Techniques: []explore.Technique{explore.IPB, explore.IDB, explore.DFS, explore.Rand},
			Bounds:     []int{2, 3},
			Seeds:      []uint64{1, 2, 3},
			Limit:      500,
			Workers:    1,
			Corpus:     store,
		})
		return SwarmCSV(cells)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("swarm CSV not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if !strings.HasPrefix(a, SwarmCSVHeader) {
		t.Fatalf("CSV does not start with the header:\n%s", a)
	}
	wantRows := 3 * (2*2 + 1 + 1) * 3 // benches × (IPB,IDB × bounds + DFS + Rand) × seeds
	if got := strings.Count(a, "\n") - 1; got != wantRows {
		t.Fatalf("CSV has %d data rows, want %d", got, wantRows)
	}
}

// TestSwarmCSVRowSkipped pins the rendering of a cell the sweep never
// started.
func TestSwarmCSVRowSkipped(t *testing.T) {
	b := bench.All()[0]
	row := SwarmCSVRow(&study.SwarmCell{Bench: b, Technique: explore.IPB, Bound: 2, Seed: 7})
	if !strings.HasSuffix(row, ",skipped\n") {
		t.Fatalf("skipped row = %q, want status skipped", row)
	}
	if cols := strings.Count(SwarmCSVHeader, ","); strings.Count(row, ",") != cols {
		t.Fatalf("skipped row has %d commas, header %d", strings.Count(row, ","), cols)
	}
}
