package explore

import (
	"fmt"
	"time"

	"sctbench/internal/corpus"
	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// Technique enumerates the exploration techniques of the study.
type Technique int

const (
	// DFS is unbounded depth-first search.
	DFS Technique = iota
	// IPB is iterative preemption bounding.
	IPB
	// IDB is iterative delay bounding.
	IDB
	// Rand is the naive random scheduler (10,000 independent runs).
	Rand
	// DPOR is unbounded depth-first search with source-set style dynamic
	// partial-order reduction plus sleep sets (the §7 future-work lever).
	// Like the paper's methodology, POR is kept out of the bounded IPB/IDB
	// phases; DPOR accelerates the unbounded search only.
	DPOR
)

// String returns the technique's name as used in the paper.
func (t Technique) String() string {
	switch t {
	case DFS:
		return "DFS"
	case IPB:
		return "IPB"
	case IDB:
		return "IDB"
	case Rand:
		return "Rand"
	case DPOR:
		return "DPOR"
	}
	return "unknown"
}

// Config parameterises an exploration.
type Config struct {
	// Program is the program under test. It must be deterministic modulo
	// scheduling (§2: "the only source of nondeterminism is the scheduler").
	// With Workers > 1 the same Program value is invoked concurrently from
	// several worker goroutines (one World each), so its body must confine
	// all state to the invocation: create shared objects through the Thread
	// API inside the body, never capture mutable variables across calls.
	Program vthread.Runnable
	// Visible restricts which shared variables are scheduling points (the
	// promotion set produced by the race-detection phase). Nil promotes
	// everything.
	Visible func(key string) bool
	// BoundsCheck enables the modelled out-of-bounds detector.
	BoundsCheck bool
	// MaxSteps bounds one execution's visible operations (0 = default).
	MaxSteps int
	// Limit is the terminal-schedule budget; the study uses 10,000.
	// Zero means DefaultLimit.
	Limit int
	// Seed seeds the random scheduler (Rand only).
	Seed uint64
	// MaxBound caps iterative bounding (safety net; 0 means DefaultMaxBound).
	MaxBound int
	// MaxExecutions caps the total number of executions an iterative search
	// may spend, counting re-executions of already-counted schedules at
	// higher bounds (0 means DefaultMaxExecutions). Purely a guard rail;
	// the study's benchmarks stay far below it.
	MaxExecutions int
	// Debug forwards the substrate's fast-path kill switches to every
	// executor this exploration creates (vthread.Options.Debug). The zero
	// value — all fast paths on — is correct for every production use;
	// the fast-path equivalence tests flip individual switches to prove
	// results are bit-identical either way.
	Debug vthread.Debug
	// Workers is the number of worker goroutines exploring the schedule
	// space (0 or 1 = sequential). DFS/IPB/IDB partition the search tree
	// into prefix-pinned subtrees with work-stealing, and IPB/IDB overlap
	// bound k+1 speculatively behind bound k; Rand shards its independent
	// runs. Schedule counts, bounds and completeness are identical to the
	// sequential search; see internal/explore/parallel.go for the exact
	// determinism contract under a truncating Limit.
	Workers int
	// Deadline, when nonzero, stops the search at that wall-clock time
	// with Stopped = StopDeadline (and a checkpoint, when configured).
	Deadline time.Time
	// Interrupt, when non-nil, stops the search when it is closed — the
	// CLIs close it from their signal handlers. The search notices at its
	// next per-execution poll and stops with Stopped = StopInterrupted.
	Interrupt <-chan struct{}
	// CheckpointPath, when nonempty, is where the search writes its
	// frontier checkpoint on interruption or deadline (atomically:
	// temp file + rename). See Resume.
	CheckpointPath string
	// CheckpointEvery additionally writes a checkpoint every N executions
	// (0 = only at interruption/deadline).
	CheckpointEvery int
	// Meta is CLI context carried verbatim into checkpoint files.
	Meta CheckpointMeta
	// Corpus, together with ProgramHash, turns on replay-first
	// exploration: stored witnesses are replayed before any technique runs
	// (bug still present — reported after a handful of executions; gone —
	// the stale entry is dropped), stored frontier prefixes seed probe
	// executions next, and everything the search then finds is minimised
	// and written back. See corpus.go in this package.
	Corpus *corpus.Store
	// ProgramHash is the program's content hash (vthread.ProgramHash) —
	// the key under which Corpus stores this program's schedules. Empty
	// disables the corpus even when Corpus is non-nil.
	ProgramHash string

	// frontier, when non-nil, receives the search's unexplored frontier
	// prefixes at exit (truncated sequential runs only). Set by the
	// replay-first wrapper to harvest seeds for the corpus.
	frontier *[]sched.Schedule
}

// Defaults for Config fields left zero.
const (
	DefaultLimit         = 10000
	DefaultMaxBound      = 32
	DefaultMaxExecutions = 2_000_000
)

func (c Config) withDefaults() Config {
	if c.Limit == 0 {
		c.Limit = DefaultLimit
	}
	if c.MaxBound == 0 {
		c.MaxBound = DefaultMaxBound
	}
	if c.MaxExecutions == 0 {
		c.MaxExecutions = DefaultMaxExecutions
	}
	return c
}

// Result is the outcome of one exploration: the per-technique cell block of
// a Table 3 row.
type Result struct {
	// Technique that produced this result.
	Technique Technique
	// BugFound reports whether any explored schedule exposed the bug.
	BugFound bool
	// Failure is the first failure observed (nil if none).
	Failure *vthread.Failure
	// Witness is the schedule of the first buggy execution (nil if none).
	Witness sched.Schedule
	// Bound is the smallest preemption/delay bound that exposed the bug, or
	// the bound reached (but possibly not completed) when no bug was found.
	// Zero and meaningless for DFS and Rand.
	Bound int
	// SchedulesToFirstBug counts terminal schedules explored up to and
	// including the first buggy one (0 when no bug found).
	SchedulesToFirstBug int
	// Schedules is the total number of terminal schedules counted. For IPB
	// and IDB a schedule is counted at the iteration whose bound equals its
	// exact cost, so re-executions at higher bounds are not double-counted.
	// For Rand it is the number of runs (duplicates possible).
	Schedules int
	// NewSchedules counts schedules with exactly Bound preemptions/delays
	// (IPB/IDB only).
	NewSchedules int
	// BuggySchedules counts the explored schedules that exposed the bug.
	BuggySchedules int
	// Complete reports that the whole schedule space was explored.
	Complete bool
	// LimitHit reports that the schedule limit stopped the search.
	LimitHit bool
	// MaxEnabled and MaxSchedPoints are the per-benchmark statistics of
	// Table 3: the maximum number of simultaneously enabled threads and the
	// maximum number of scheduling points with >1 enabled thread, over all
	// executions of this exploration.
	MaxEnabled     int
	MaxSchedPoints int
	// Threads is the maximum number of threads created in any execution.
	Threads int
	// Executions counts actual program executions, including bounded-search
	// re-executions (an implementation metric, not a paper column).
	Executions int
	// AbortedExecutions counts executions the engine cut short via the
	// chooser-abort path (vthread.Context.Abort) because their remainder
	// was provably redundant. Nonzero only for the pruning engines
	// (sleep-set DFS and DPOR); aborted runs are included in Executions.
	AbortedExecutions int
	// BranchesPruned counts enabled-sibling choices the pruning engines
	// retired unexplored (sleep sets proved them redundant, or no race ever
	// required them in a backtrack set). Each pruned branch is a whole
	// subtree DFS would have walked, so this understates the saving.
	BranchesPruned int
	// TotalSteps is the summed trace length over all executions — the work
	// metric the abort path reduces (a redundancy detected at step k saves
	// the schedule's tail beyond k).
	TotalSteps int64
	// Stopped says why the search ended: StopCompleted (zero) for a
	// natural end, StopLimit when a budget truncated it, StopDeadline or
	// StopInterrupted when it was cut short externally. A truncated
	// (deadline/interrupted) result is a valid partial result, and — with
	// Config.CheckpointPath set — is accompanied by a checkpoint Resume
	// can continue from.
	Stopped StopReason
	// WorkerPanics counts parallel-pool workers that panicked mid-unit
	// (outside the substrate's own containment); each such unit's counts
	// are forfeited, the pool drains the rest, and Complete is withheld.
	// WorkerPanicMsg is the first such panic's message.
	WorkerPanics   int
	WorkerPanicMsg string
	// CheckpointError records a failed (non-injected) checkpoint write;
	// the search itself continues — losing a checkpoint never loses the
	// run.
	CheckpointError string
	// CorpusReplays and CorpusProbes count the replay-first phase's
	// executions (stored-witness replays and prefix-seeded probes; both
	// are included in Executions). CorpusHit reports the bug was
	// reproduced straight from a stored witness, so the search itself
	// never ran. CorpusError records a failed corpus read-back or
	// write-back; like a failed checkpoint it never fails the run.
	CorpusReplays int
	CorpusProbes  int
	CorpusHit     bool
	CorpusError   string
}

// Run explores the program with the given technique. With Config.Corpus
// and Config.ProgramHash set, the run is replay-first: stored witnesses
// and prefixes go first and the findings are written back (see corpus.go).
func Run(t Technique, cfg Config) *Result {
	if cfg.Corpus != nil && cfg.ProgramHash != "" {
		return runReplayFirst(t, cfg)
	}
	return runCold(t, cfg)
}

// runCold dispatches the technique with no corpus involvement.
func runCold(t Technique, cfg Config) *Result {
	switch t {
	case DFS:
		return RunDFS(cfg)
	case IPB:
		return RunIterative(cfg, CostPreemptions)
	case IDB:
		return RunIterative(cfg, CostDelays)
	case Rand:
		return RunRand(cfg)
	case DPOR:
		return RunDPOR(cfg)
	}
	panic(fmt.Sprintf("explore: unknown technique %d", int(t)))
}

// observe folds an execution's statistics into the result.
func (r *Result) observe(out *vthread.Outcome) {
	if out.MaxEnabled > r.MaxEnabled {
		r.MaxEnabled = out.MaxEnabled
	}
	if out.SchedPoints > r.MaxSchedPoints {
		r.MaxSchedPoints = out.SchedPoints
	}
	if out.Threads > r.Threads {
		r.Threads = out.Threads
	}
	r.TotalSteps += int64(len(out.Trace))
	if out.Aborted {
		r.AbortedExecutions++
	}
}

// recordBug records the first bug.
func (r *Result) recordBug(out *vthread.Outcome) {
	r.BuggySchedules++
	if !r.BugFound {
		r.BugFound = true
		r.Failure = out.Failure
		r.Witness = out.Trace.Clone()
		r.SchedulesToFirstBug = r.Schedules
	}
}

// runSequentialTree drives a single-pass engine (DFS, sleep-set DFS,
// DPOR) over the whole tree to exhaustion or the schedule limit — the
// sequential counterpart of runTreeParallel, shared so that limit
// accounting and observation live in exactly one place per driver shape.
// The engine must be positioned to run: fresh, or restored from a
// checkpoint (which is only ever taken at the loop top, post-backtrack).
func runSequentialTree(cfg Config, r *Result, eng searcher) *Result {
	ex := newExecutor(cfg)
	defer ex.Close()
	eng.setExec(ex)
	ctl := newStopCtl(cfg)
	ckw := newCkWriter(cfg)
	for {
		if reason, stop := ctl.poll(); stop {
			r.Stopped = reason
			writeCheckpoint(cfg, r, treeCheckpoint(cfg, r, eng))
			break
		}
		if ckw.due(eng.execCount()) {
			if writeCheckpoint(cfg, r, treeCheckpoint(cfg, r, eng)) {
				// Simulated death mid-write: stop as if killed, leaving
				// whatever the crash left on disk.
				r.Stopped = StopInterrupted
				break
			}
			ckw.last = eng.execCount()
		}
		out := eng.runOnce()
		r.observe(out)
		// Step-limited and chooser-aborted runs are not terminal schedules.
		if eng.counts(out) {
			r.Schedules++
			if out.Buggy() {
				r.recordBug(out)
			}
		}
		if r.Schedules >= cfg.Limit {
			r.LimitHit = true
			r.Stopped = StopLimit
			break
		}
		if !eng.backtrack() {
			r.Complete = true
			break
		}
	}
	r.Executions = eng.execCount()
	r.BranchesPruned += eng.prunedBranches()
	captureFrontier(cfg, r, eng)
	return r
}

// treeCheckpoint snapshots a single-pass sequential search. The partial
// Result is serialized as-is: the fields the driver fills only at exit
// (Executions, BranchesPruned) stay zero in the file and are reconstructed
// from the engine's own counters when the resumed run exits.
func treeCheckpoint(cfg Config, r *Result, eng searcher) *Checkpoint {
	ck := newCheckpoint(cfg, engineTechName(eng), r)
	ck.Engine = snapshotSearcher(eng)
	return ck
}

// RunDFS performs unbounded depth-first search up to the schedule limit.
// Matching the paper's methodology, the search does not stop at the first
// bug: it continues to the limit (or exhaustion) so the fraction of buggy
// schedules can be reported. With cfg.Workers > 1 the tree is explored by
// a work-stealing worker pool with identical resulting counts.
func RunDFS(cfg Config) *Result {
	if cfg.Workers > 1 {
		return runDFSParallel(cfg)
	}
	cfg = cfg.withDefaults()
	return runSequentialTree(cfg, &Result{Technique: DFS}, newEngine(cfg, CostNone, 0))
}

// RunIterative performs iterative schedule bounding (IPB for
// CostPreemptions, IDB for CostDelays): all schedules with cost 0 are
// explored, then cost 1, and so on. A terminal schedule is counted at the
// iteration whose bound equals its exact cost, which makes NewSchedules
// "schedules with exactly bound preemptions/delays" and keeps totals free
// of double counting, as in the paper's Table 3. When a bug is found the
// current bound is still enumerated to completion (within the limit), so
// worst-case schedule counts (Figure 4) are well defined.
func RunIterative(cfg Config, model CostModel) *Result {
	if model != CostPreemptions && model != CostDelays {
		panic("explore: RunIterative needs a bounding cost model")
	}
	if cfg.Workers > 1 {
		return runIterativeParallel(cfg, model, nil, nil)
	}
	cfg = cfg.withDefaults()
	tech := IPB
	if model == CostDelays {
		tech = IDB
	}
	return iterSequential(cfg, model, &Result{Technique: tech}, 0, 0, nil)
}

// iterSequential drives the bound sweeps of a sequential iterative search
// from startBound upward. A non-nil eng resumes mid-bound: it must be
// positioned to run at startBound, with r carrying the partial sweep and
// priorExecs the executions committed by earlier bounds.
func iterSequential(cfg Config, model CostModel, r *Result, startBound, priorExecs int, eng *engine) *Result {
	executions := priorExecs
	ex := newExecutor(cfg) // one pool of recycled threads across all bounds
	defer ex.Close()
	ctl := newStopCtl(cfg)
	ckw := newCkWriter(cfg)

	for bound := startBound; bound <= cfg.MaxBound; bound++ {
		r.Bound = bound
		if eng == nil {
			r.NewSchedules = 0
			eng = newEngine(cfg, model, bound)
		}
		eng.exec = ex
		boundDone := false
		stopped := false
		for {
			if reason, stop := ctl.poll(); stop {
				r.Stopped = reason
				writeCheckpoint(cfg, r, iterCheckpoint(cfg, r, bound, executions, eng))
				stopped = true
				break
			}
			if ckw.due(executions + eng.executions) {
				if writeCheckpoint(cfg, r, iterCheckpoint(cfg, r, bound, executions, eng)) {
					r.Stopped = StopInterrupted
					stopped = true
					break
				}
				ckw.last = executions + eng.executions
			}
			out := eng.runOnce()
			r.observe(out)
			if !out.StepLimitHit {
				cost := out.PC
				if model == CostDelays {
					cost = out.DC
				}
				if cost == bound {
					r.Schedules++
					r.NewSchedules++
					if out.Buggy() {
						r.recordBug(out)
					}
				}
			}
			if r.Schedules >= cfg.Limit {
				r.LimitHit = true
				r.Stopped = StopLimit
				break
			}
			if executions+eng.executions >= cfg.MaxExecutions {
				r.LimitHit = true
				r.Stopped = StopLimit
				break
			}
			if !eng.backtrack() {
				boundDone = true
				break
			}
		}
		executions += eng.executions
		pruned := eng.pruned
		if stopped || r.LimitHit {
			captureFrontier(cfg, r, eng)
			eng = nil
			break
		}
		eng = nil
		if boundDone && !pruned {
			// Nothing was pruned anywhere: every schedule costs at most
			// bound, so the space is fully explored.
			r.Complete = true
			break
		}
		if r.BugFound {
			// The bound that exposed the bug has been fully enumerated;
			// stop, as in the paper's methodology (§5).
			break
		}
	}
	r.Executions = executions
	return r
}

// iterCheckpoint snapshots a sequential iterative search mid-bound.
func iterCheckpoint(cfg Config, r *Result, bound, priorExecs int, eng *engine) *Checkpoint {
	ck := newCheckpoint(cfg, engineTechName(eng), r)
	ck.Bound = bound
	ck.BoundExecs = priorExecs
	ck.Engine = eng.snapshot()
	return ck
}

// RunRand performs Limit independent runs under the naive random scheduler.
// No state is kept between runs, so duplicate schedules are possible and
// the search never "completes" (§3 of the paper).
func RunRand(cfg Config) *Result {
	cfg = cfg.withDefaults()
	if cfg.Workers > 1 {
		return runRandParallel(cfg, &Result{Technique: Rand}, 0)
	}
	return randSequential(cfg, &Result{Technique: Rand}, 0)
}

// randSequential sweeps run indices [start, Limit). Rand's checkpoint is
// just the next run index: every run i is independently seeded from
// (cfg.Seed, i), so no scheduler state needs to survive an interruption.
func randSequential(cfg Config, r *Result, start int) *Result {
	ex := newExecutor(cfg)
	defer ex.Close()
	ctl := newStopCtl(cfg)
	ckw := newCkWriter(cfg)
	for i := start; i < cfg.Limit; i++ {
		if reason, stop := ctl.poll(); stop {
			r.Stopped = reason
			writeCheckpoint(cfg, r, randCheckpoint(cfg, r, i))
			r.Executions = i
			return r
		}
		if ckw.due(i) {
			if writeCheckpoint(cfg, r, randCheckpoint(cfg, r, i)) {
				r.Stopped = StopInterrupted
				r.Executions = i
				return r
			}
			ckw.last = i
		}
		out := randRun(ex, cfg, i)
		r.observe(out)
		if out.StepLimitHit {
			continue
		}
		r.Schedules++
		if out.Buggy() {
			r.recordBug(out)
		}
	}
	r.Executions = cfg.Limit
	r.LimitHit = true
	r.Stopped = StopLimit
	return r
}

// randCheckpoint snapshots a Rand sweep: the watermark below which every
// run's contribution is already folded into r.
func randCheckpoint(cfg Config, r *Result, nextRun int) *Checkpoint {
	ck := newCheckpoint(cfg, "Rand", r)
	ck.NextRun = nextRun
	return ck
}
