package faultinject

import "testing"

func TestCountdownFiresExactlyOnce(t *testing.T) {
	defer Reset()
	Arm(ExploreInterrupt, 3)
	for i := 0; i < 2; i++ {
		if Hit(ExploreInterrupt) {
			t.Fatalf("fired at call %d, want call 3", i+1)
		}
	}
	if !Hit(ExploreInterrupt) {
		t.Fatal("did not fire at call 3")
	}
	for i := 0; i < 5; i++ {
		if Hit(ExploreInterrupt) {
			t.Fatal("fired again after the countdown elapsed")
		}
	}
}

func TestPointsAreIndependent(t *testing.T) {
	defer Reset()
	Arm(CheckpointWrite, 1)
	if Hit(PoolUnitPanic) {
		t.Fatal("unarmed point fired")
	}
	if !Hit(CheckpointWrite) {
		t.Fatal("armed point did not fire")
	}
}

func TestDisarm(t *testing.T) {
	defer Reset()
	Arm(PoolUnitPanic, 1)
	Disarm(PoolUnitPanic)
	if Hit(PoolUnitPanic) {
		t.Fatal("disarmed point fired")
	}
	if armed.Load() != 0 {
		t.Fatalf("armed gate not restored: %d", armed.Load())
	}
}
