package vthread

// Multi-way select over channels: the first multi-object *blocking*
// operation of the substrate, and the first with its own choice dimension.
//
// A Select parks the thread with a pending op whose footprint is every
// member channel and whose enabledness is "any case ready" (or
// unconditional, with a default). When the scheduler grants the thread and
// more than one case is ready, which case commits is real program
// nondeterminism — Go's runtime picks uniformly at random — so the
// substrate surfaces it as a *case-decision scheduling point*: an extra
// Choose call whose Enabled set holds the ready case indices (see
// Context.SelectOf and doc.go, "Case-decision points"). The pick is
// appended to the trace, which makes it replayable, countable and
// enumerable by every exploration engine exactly like a thread choice.
// With zero or one ready case there is nothing to decide and no decision
// point is created.

// SelectCase describes one case of a multi-way Select: a send of Val to
// Chan, or a receive from Chan.
type SelectCase struct {
	// Chan is the channel of this case. Required.
	Chan *Chan
	// Send selects the direction: true for a send case, false for receive.
	Send bool
	// Val is the value a send case transmits (ignored for receives).
	Val int
}

// ready reports whether the case can commit right now, sharing the
// channel ops' own readiness predicates (a send on a closed channel is
// "ready" so the crash can manifest).
func (sc *SelectCase) ready() bool {
	if sc.Send {
		return sc.Chan.sendReady()
	}
	return sc.Chan.recvReady()
}

// DefaultCase is the index Select returns when its default case fires.
const DefaultCase = -1

// selectOp is the shared state of one Select invocation: the pendingOp
// holds a pointer so the World can record the committed case (pick) for
// the parked thread to act on when granted.
type selectOp struct {
	cases      []SelectCase
	objs       []string // member channel keys, aliased by the op's Footprint
	hasDefault bool
	pick       int // committed case index, or DefaultCase
}

// Select blocks until one of cases is ready, commits exactly one ready
// case, and returns its index plus the received value and ok flag (zero
// and false for send and default commits). With hasDefault, Select never
// blocks: when no case is ready it returns (DefaultCase, 0, false)
// immediately, as in Go.
//
// The whole Select is one visible operation touching every member channel
// (readiness genuinely depends on all of them), plus — only when several
// cases are ready at the grant — one case-decision scheduling point that
// exploration engines enumerate. Committing a send case on a closed
// channel is a modelled crash, like Chan.Send. An empty cases slice
// without a default blocks forever (Go's `select {}`), surfacing as a
// deadlock.
func (t *Thread) Select(cases []SelectCase, hasDefault bool) (idx int, v int, ok bool) {
	// The key slice and the selectOp are allocated per call *by design*:
	// the op's Footprint aliases objs without copying, engines retain
	// PendingInfo copies (and with them the alias) in their search-tree
	// nodes across executions, and the Footprint contract makes published
	// key slices immutable. A per-Thread scratch buffer would be rewritten
	// by the next Select while those retained footprints still point at
	// it. The cost is program-side, like the program's own channel
	// allocations — the substrate loop stays allocation-free.
	objs := make([]string, len(cases))
	for i := range cases {
		objs[i] = cases[i].Chan.key
	}
	sel := &selectOp{cases: cases, objs: objs, hasDefault: hasDefault, pick: DefaultCase}
	t.visible(pendingOp{kind: opSelect, sel: sel})
	return sel.commitPick(t)
}

// commitPick commits the case the World resolved (resolveSelect) before
// granting the selecting thread, returning Select's result triple.
func (sel *selectOp) commitPick(t *Thread) (idx int, v int, ok bool) {
	if sel.pick == DefaultCase {
		return DefaultCase, 0, false
	}
	sc := &sel.cases[sel.pick]
	if sc.Send {
		sc.Chan.commitSend(t, sc.Val)
		return sel.pick, 0, false
	}
	v, ok = sc.Chan.commitRecv(t)
	return sel.pick, v, ok
}

// Select2 is a convenience wrapper for the ubiquitous two-case select.
func (t *Thread) Select2(a, b SelectCase) (idx int, v int, ok bool) {
	return t.Select([]SelectCase{a, b}, false)
}

// RecvCase builds a receive case for Select.
func RecvCase(c *Chan) SelectCase { return SelectCase{Chan: c} }

// SendCase builds a send case for Select.
func SendCase(c *Chan, v int) SelectCase { return SelectCase{Chan: c, Send: true, Val: v} }
