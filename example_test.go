package sctbench_test

import (
	"fmt"

	sctbench "sctbench"
)

// ExampleExplore demonstrates finding and replaying a lost-update bug.
func ExampleExplore() {
	program := sctbench.Program(func(t *sctbench.Thread) {
		counter := t.NewVar("counter", 0)
		inc := func(w *sctbench.Thread) { counter.Add(w, 1) }
		a := t.Spawn(inc)
		b := t.Spawn(inc)
		t.Join(a)
		t.Join(b)
		t.Assert(counter.Load(t) == 2, "lost update: counter=%d", counter.Load(t))
	})
	res := sctbench.Explore(sctbench.IDB, sctbench.Config{Program: program})
	fmt.Println("found:", res.BugFound)
	fmt.Println("delay bound:", res.Bound)
	fmt.Println("failure:", res.Failure.Message)
	// Output:
	// found: true
	// delay bound: 1
	// failure: lost update: counter=1
}

// ExampleReplay demonstrates deterministic reproduction of a witness.
func ExampleReplay() {
	program := func() sctbench.Program {
		return func(t *sctbench.Thread) {
			flag := t.NewVar("flag", 0)
			w := t.Spawn(func(tw *sctbench.Thread) { flag.Store(tw, 1) })
			if flag.Load(t) == 1 {
				t.Fail("observed early publish")
			}
			t.Join(w)
		}
	}
	res := sctbench.Explore(sctbench.DFS, sctbench.Config{Program: program()})
	out, ok := sctbench.Replay(program(), res.Witness)
	fmt.Println("replayed:", ok && out.Buggy())
	// Output:
	// replayed: true
}

// ExampleDetectRaces demonstrates the visible-operation promotion phase.
func ExampleDetectRaces() {
	program := func() sctbench.Program {
		return func(t *sctbench.Thread) {
			m := t.NewMutex("m")
			locked := t.NewVar("locked", 0)
			racy := t.NewVar("racy", 0)
			w := t.Spawn(func(tw *sctbench.Thread) {
				m.Lock(tw)
				locked.Add(tw, 1)
				m.Unlock(tw)
				racy.Store(tw, 1)
			})
			_ = racy.Load(t)
			t.Join(w)
		}
	}
	racy := sctbench.DetectRaces(program(), 10, 1)
	fmt.Println(racy)
	// Output:
	// [var/racy]
}

// ExampleRunOnce shows a single execution under the deterministic
// round-robin scheduler — the zero-delay schedule of delay bounding.
func ExampleRunOnce() {
	out := sctbench.RunOnce(sctbench.Program(func(t *sctbench.Thread) {
		w := t.Spawn(func(tw *sctbench.Thread) { tw.Yield() })
		t.Join(w)
	}), sctbench.WorldOptions{})
	fmt.Println("preemptions:", out.PC, "delays:", out.DC)
	// Output:
	// preemptions: 0 delays: 0
}
