package vthread

// Design notes for maintainers — the handoff protocol in one place.
//
// # Serialised execution and the baton
//
// One World = one execution. Each virtual thread is a goroutine, but the
// protocol guarantees at most one runs at any instant: a conceptual baton
// — the right to execute program code *and* to run the next scheduling
// decision — is held by exactly one goroutine at a time. The exec
// goroutine (the Run caller) holds it at the start; after the initial
// grant it rides the virtual threads and returns to exec only when the
// execution is over.
//
// # Step handoff protocol
//
// When a running thread reaches its next visible operation it does not
// notify a central loop; it runs the scheduling decision itself
// (World.continueFrom → nextStep), on its own goroutine. Three dispatch
// routes exist, ordered by cost:
//
//	same-thread continuation (0 switches)      — the decision picked the
//	    running thread again: visible() simply returns and the thread
//	    proceeds into its granted operation. This is the overwhelmingly
//	    common case under round-robin, replay, non-preempted DFS prefixes
//	    and PCT between change points.
//
//	direct baton handoff (1 switch)            — the decision picked
//	    another thread U:
//
//	    thread T goroutine                 thread U goroutine
//	    ------------------                 ------------------
//	    pending = op; state = parked
//	    nextStep() picks U
//	    U.gate <- struct{}{}       ──────▶ returns from awaitGrant
//	    <-T.gate  (blocks)                 executes its pending visible op
//	                                       …until its own next visible op
//
//	bounced grant (2 switches)                 — the initial grant of each
//	    execution, and every grant under a Debug kill switch: the decider
//	    records the target in w.bounce, sends parkBounce on w.parked, and
//	    the exec goroutine performs the grant. This is the cost the old
//	    central-loop protocol paid on every step.
//
// A decision with exactly one enabled thread additionally takes the
// forced-step fast path when the Chooser opted in by implementing
// StepObserver: the Choose call is skipped entirely, ObserveForcedStep
// keeps the chooser's bookkeeping aligned, and the step is granted
// directly — almost always via same-thread continuation.
//
// When a thread's body returns, its goroutine runs one last decision
// (World.exitFrom) and passes the baton on before going back to the pool.
// When the execution is over — terminal, deadlock, failure, step limit,
// chooser abort — whoever holds the baton sends parkDone (failNow sends
// parkFailed) on w.parked and the exec goroutine tears the world down. A
// panic out of a chooser running on a thread goroutine is captured into
// w.schedPanic and rethrown by exec on the Run caller's goroutine, so the
// chooser-bug panic contract is unchanged.
//
// Exactly one goroutine holds the baton at any instant, every transfer is
// a channel operation, and every shared field of the World is accessed
// only by the baton holder (or by exec after the final handback), so no
// locks are needed anywhere in the substrate and the chooser — though it
// migrates between goroutines — is never called concurrently. `go test
// -race ./internal/vthread` runs clean. Executor reuse and the teardown
// contract below are unaffected: which goroutine computes a decision has
// no bearing on pooling, and the kill-by-grant path is driven by exec
// exactly as before.
//
// # Spawn and the private first park
//
// Spawn runs the child's invisible prefix eagerly (newThread sends the
// first grant itself and consumes the child's first park from a private
// channel). This keeps "a thread's first schedulable step is its first
// visible operation" — matching the §2 step model — and avoids a spurious
// start pseudo-op inflating schedule counts. The spawner holds the baton
// for the duration of the spawn, so the child's first park goes to the
// private channel, not to the scheduler; once it is consumed, the child's
// parkTo is cleared to nil and all of its later parks schedule inline
// (baton mode).
//
// # Teardown and the worker pool
//
// When the outcome is decided (terminal, deadlock, failure, step limit),
// abortRemaining marks every live thread killed and sends one last grant
// on its gate; the thread's receive returns, it panics with killSignal,
// and the recover in runBody unwinds it without touching shared state.
// The gate is deliberately *sent to*, never closed: under an Executor the
// same Thread struct, gate and goroutine serve the next execution. A run
// ends only after wg.Wait sees every body finish, so studies running
// millions of executions cannot leak goroutines (tested).
//
// A pooled thread's goroutine is workerLoop: it receives one Program per
// execution on t.jobs, runs it via runBody, signals the per-run WaitGroup
// and parks again. newThread re-initialises all per-execution Thread
// fields before sending on t.jobs, and the channel send/receive pair
// provides the happens-before edge that makes the reuse race-free. A
// plain World spawns runOne instead — same runBody, goroutine exits after
// one body.
//
// # Panic containment
//
// A Go panic escaping a program body is a found bug, not a crash: the
// recover in runBody (reference engine) and the interp.perform wrapper
// (flat engine) convert it into Failure{Kind: FailPanic} carrying the
// panicking thread id and the panic value's message, with the executed
// prefix as the trace — so a panic is replayable and minimisable exactly
// like an assertion failure or a deadlock. Containment reuses the normal
// failure teardown (abortRemaining, wg.Wait), so the Executor and its
// thread pool stay reusable after a panicking run, and a worker pool
// exploring in parallel survives a panicking unit. The one exception is
// engine-misuse panics (misuseError, e.g. using a Thread outside its
// execution): those are rethrown to the Run caller instead of
// masquerading as a found FailPanic bug, as are panics out of a Chooser
// (w.schedPanic above). Both engines take the same path and report the
// same verdict; panic_test.go pins the contract.
//
// # Chooser-initiated abort
//
// A Chooser may end an execution early by calling ctx.Abort() inside
// Choose (or inside ObserveForcedStep, on the forced path). The decision
// then returns the baton to exec before performing another step
// and reuses the normal teardown: abortRemaining kills the surviving
// threads by grant, the outcome carries Aborted=true, Failure=nil and the
// executed prefix as its Trace, and under an Executor the same pool
// serves the next run. Abort is idempotent within one Choose call, legal
// at step 0 (nothing has run; the trace is empty), and the thread id
// returned by the aborting Choose is ignored — it need not be enabled.
// This is the pruning hook of the partial-order-reduction engines
// (internal/explore/sleepset.go and dpor.go): a run whose remainder is
// provably redundant is cut short instead of executed to termination.
//
// # Case-decision points (multi-way select)
//
// Thread.Select introduces a second kind of scheduling point. When the
// scheduler grants a thread whose pending op is a select with two or more
// ready cases, the World consults the Chooser once more before the step
// executes: Context.SelectOf names the selecting thread and Enabled holds
// the ready case indices (see Context.SelectOf for the full shape). The
// pick is appended to the trace right after the thread's own entry, so a
// trace is no longer a pure thread-id sequence — a case entry's value is
// a case index, positioned deterministically by the schedule prefix.
// Replay needs no special handling (it replays trace positions), both
// schedule-cost models assign every case pick cost zero, and
// Outcome.SelectPoints counts the decision points. With zero (default
// fires) or one ready case there is no decision and no extra entry.
//
// # Timer-firing protocol (the virtual clock)
//
// Timers, tickers and context deadlines (timer.go, context.go) introduce
// a third step source: the clock pseudo-thread. The first arm of a run
// appends a goroutine-less Thread with isClock set to the thread table at
// the next dense id; its permanent pending op is opTimerFire, enabled
// while some timer is fireable and some program thread is live. To every
// engine the clock is indistinguishable from a thread: it appears in
// enabled sets, costs preemptions/delays by the ordinary arithmetic,
// lands in the trace and replays by position.
//
// What differs is execution. The clock has no goroutine, so the baton is
// never handed to it: when nextStep's decision picks the clock id, the
// deciding goroutine accounts the step and executes the fire inline
// (World.fireTimer), then loops to the next decision still holding the
// baton. Which timer fires is not a choice — the fireable timer with the
// smallest (deadline, arm sequence) fires and the virtual now advances to
// its deadline — so a clock trace entry is a deterministic function of
// the schedule prefix and replay needs no special handling.
//
// Fireability doubles as leak semantics: a delivery timer is fireable
// only while its one-slot channel has room, so a leaked ticker fires
// once and goes quiet, and a receiver blocked on a stopped or saturated
// timer is a real modelled deadlock ("blocked forever") while one
// blocked on a fireable timer is not ("blocked until the timer fires" —
// finishIdle reports armed-but-dead timers in the deadlock message).
// Every arm reads the virtual now and every fire advances it, so all
// arm/fire footprints share clockKey — that is what lets the
// partial-order engines see that arms and fires never commute. The clock
// Thread never enters the Executor pool (RunWith filters isClock; the
// struct is cached on World.clk across runs) and all clock state is
// cleared by reset, so reuse cannot carry virtual time across runs.
//
// # The flat engine and compiled programs
//
// Everything above describes the reference engine: virtual threads are
// goroutines and a schedule is enforced by parking all but one of them.
// The second engine (flat.go) executes a whole multi-threaded run on the
// Run caller's single goroutine — but it can only do so for programs in
// instruction form. A *CompiledProgram (prog.go, built with the Builder
// DSL in builder.go) is the program as data: declared objects, bodies as
// instruction slices, operands compiled to closures over a per-thread
// register file. One interp per thread registers the next visible
// operation by filling Thread.pending (interp.advance) and performs a
// granted operation as a plain function call (interp.perform) — a context
// switch is a switch statement, not a channel rendezvous. Both engines
// funnel every effect through the same commit helpers and both drive the
// same World.nextStep decision loop, which is why a flat run is
// bit-identical — trace, Outcome, Failure, event stream, footprints — to
// the same program's reference run, and why this whole file remains true
// under the flat engine with "goroutine switch" read as "function call".
//
// Engine selection is by representation, at the Executor: RunWith runs a
// closure Program on the reference engine and a *CompiledProgram on the
// flat engine, unless Debug.NoFlatEngine bridges it back onto the
// reference engine via AsProgram (StepStats counts FlatSteps and
// FlatFallbacks; a single-use World always takes the bridge). See
// prog.go for the registration/perform protocol and the op-for-op
// translation contract that equivalence rests on, and
// internal/bench/equiv_test.go for the registry-wide enforcement.
//
// # Determinism contract
//
// Programs under test must be deterministic modulo scheduling: no Go
// maps iterated for control flow, no wall-clock time (virtual time via
// Thread.NewTimer/After/Sleep/NewTicker is fine — that is what it is
// for), no randomness, no I/O. Given that, a recorded Schedule replays
// to the identical trace, costs and failure — the foundation of
// stateless model checking (§2 of the paper).
