package explore

// Replay-first exploration against the schedule corpus. With Config.Corpus
// and Config.ProgramHash set, Run goes through three phases:
//
//  1. Witness replay. Every stored witness schedule is replayed on the
//     current program. The bug is still there — the result is reported
//     after a handful of executions instead of a full search, which is the
//     corpus's whole point. The bug is gone (the schedule diverges or runs
//     clean) — the stale witness is dropped from the entry.
//  2. Prefix probes. Each stored frontier prefix seeds one probe
//     execution: the prefix is replayed positionally and a deterministic
//     random chooser finishes the run (divergence falls back to the
//     random continuation). Probes only add executions in front of an
//     unchanged cold search, so a corpus-seeded exploration that runs to
//     completion reaches the same verdict as a cold one: if the complete
//     search finds no bug the space has none and no probe can find one
//     either, and if it finds a bug the seeded run reports a bug too —
//     possibly sooner.
//  3. The cold technique itself, unchanged. Afterwards the harvest: a
//     found witness is minimised (internal/simplify) and written back,
//     and a truncated sequential search contributes its deepest frontier
//     prefixes as seeds for the next run.
//
// Corpus I/O failures never fail the run (Result.CorpusError records the
// first one), mirroring the checkpoint writer's contract: losing
// persistence must not lose the search.

import (
	"sctbench/internal/corpus"
	"sctbench/internal/sched"
	"sctbench/internal/simplify"
	"sctbench/internal/vthread"
)

// maxFrontierPrefixes caps how many frontier prefixes one truncated run
// contributes; the deepest ones are kept (most search progress encoded).
const maxFrontierPrefixes = 16

// prefixProbe replays a stored prefix positionally, then hands the rest of
// the execution to a deterministic random chooser; a divergent prefix step
// (the recorded thread is not enabled — the program changed shape) falls
// through to the random continuation immediately.
type prefixProbe struct {
	prefix sched.Schedule
	rnd    vthread.Chooser
	step   int
}

func (p *prefixProbe) Choose(ctx vthread.Context) vthread.ThreadID {
	if p.step < len(p.prefix) {
		want := p.prefix[p.step]
		p.step++
		for _, id := range ctx.Enabled {
			if id == want {
				return want
			}
		}
		p.prefix = nil // diverged: random from here on
	}
	return p.rnd.Choose(ctx)
}

// probeSeed derives the probe chooser's seed from the run seed and the
// probe index, so probes are deterministic per (Seed, prefix position).
func probeSeed(seed uint64, idx int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// runReplayFirst is Run's corpus path; see the file comment for phases.
func runReplayFirst(t Technique, cfg Config) *Result {
	return replayFirst(t, t.String(), cfg, func(c Config) *Result { return runCold(t, c) })
}

// replayFirst wraps any cold search with the corpus phases. techName is
// the label written into stored witnesses ("DFS", "sleepset", …); t is
// the Technique recorded on early results, matching what cold would set.
func replayFirst(t Technique, techName string, cfg Config, cold func(Config) *Result) *Result {
	store, hash := cfg.Corpus, cfg.ProgramHash
	entry, _ := store.Get(hash)
	benchName := cfg.Meta.Benchmark
	if benchName == "" {
		benchName = entry.Benchmark
	}
	dcfg := cfg.withDefaults()

	replays, probes := 0, 0
	var corpusErr string
	var early *Result
	if len(entry.Witnesses) > 0 || len(entry.Prefixes) > 0 {
		ex := newExecutor(cfg)

		// Phase 1: stored witnesses, canonical order.
		for i := range entry.Witnesses {
			w := &entry.Witnesses[i]
			rep := vthread.NewReplay(w.Schedule)
			out := ex.RunWith(rep, nil, cfg.Program)
			replays++
			if out.Buggy() && !rep.Failed() {
				r := &Result{Technique: t, BugFound: true, CorpusHit: true}
				r.observe(out)
				r.Failure = out.Failure
				r.Witness = out.Trace.Clone()
				r.Schedules = replays
				r.SchedulesToFirstBug = replays
				r.BuggySchedules = 1
				if i > 0 {
					// The witnesses before this one went stale; drop them.
					entry.Witnesses = entry.Witnesses[i:]
					if err := store.Put(entry); err != nil {
						r.CorpusError = err.Error()
					}
				}
				early = r
				break
			}
		}

		if early == nil {
			if replays > 0 {
				// Every stored witness went stale: the bug (under those
				// schedules) is gone. Drop them; prefixes stay.
				entry.Witnesses = nil
				if err := store.Put(entry); err != nil {
					corpusErr = err.Error()
				}
			}

			// Phase 2: prefix-seeded probes, one execution per prefix.
			for i, p := range entry.Prefixes {
				probe := &prefixProbe{prefix: p, rnd: vthread.NewRandom(probeSeed(cfg.Seed, i))}
				out := ex.RunWith(probe, nil, cfg.Program)
				probes++
				if out.Buggy() {
					r := &Result{Technique: t, BugFound: true}
					r.observe(out)
					r.Failure = out.Failure
					r.Witness = out.Trace.Clone()
					r.Schedules = replays + probes
					r.SchedulesToFirstBug = replays + probes
					r.BuggySchedules = 1
					early = r
					break
				}
			}
		}
		ex.Close()
	}

	var res *Result
	if early != nil {
		res = early
	} else {
		// Phase 3: the cold search, with frontier capture for the harvest.
		var frontier []sched.Schedule
		cfg.frontier = &frontier
		res = cold(cfg)
		if len(frontier) > 0 {
			if err := store.AddPrefixes(hash, benchName, frontier); err != nil && corpusErr == "" {
				corpusErr = err.Error()
			}
		}
	}
	res.CorpusReplays = replays
	res.CorpusProbes = probes
	res.Executions += replays + probes
	if res.CorpusError == "" {
		res.CorpusError = corpusErr
	}

	// Harvest: a freshly found witness (probe or cold search — a corpus
	// hit is already stored minimised) is minimised and written back.
	if res.BugFound && !res.CorpusHit && res.Witness != nil {
		wit := corpus.Witness{Technique: techName}
		min := simplify.Minimize(
			func() vthread.Runnable { return cfg.Program },
			res.Witness,
			simplify.Options{Visible: cfg.Visible, BoundsCheck: cfg.BoundsCheck, MaxSteps: dcfg.MaxSteps},
		)
		if min.Failure != nil {
			wit.Schedule = min.Schedule
			wit.PC, wit.DC = min.PC, min.DC
			wit.Kind = min.Failure.Kind.String()
			wit.Message = min.Failure.Message
		} else {
			// The witness did not survive deterministic re-replay (selects
			// or timers can do that); store it raw rather than lose it.
			wit.Schedule = res.Witness
			if res.Failure != nil {
				wit.Kind = res.Failure.Kind.String()
				wit.Message = res.Failure.Message
			}
		}
		if err := store.AddWitness(hash, benchName, wit); err != nil && res.CorpusError == "" {
			res.CorpusError = err.Error()
		}
	}
	return res
}

// captureFrontier extracts the deepest unexplored-node prefixes from a
// truncated sequential search into cfg.frontier. Complete runs have no
// frontier; parallel runs don't capture (their frontier lives across
// workers — prefixes are a seeding heuristic, not a completeness
// artifact).
func captureFrontier(cfg Config, r *Result, eng searcher) {
	if cfg.frontier == nil || r.Complete {
		return
	}
	st := snapshotSearcher(eng)
	if st == nil || len(st.Nodes) == 0 {
		return
	}
	n := len(st.Nodes)
	keep := n
	if keep > maxFrontierPrefixes {
		keep = maxFrontierPrefixes
	}
	out := make([]sched.Schedule, 0, keep)
	for i := n - keep; i < n; i++ {
		order := st.Nodes[i].Order
		if len(order) == 0 {
			continue
		}
		p := make(sched.Schedule, len(order))
		for j, v := range order {
			p[j] = sched.ThreadID(v)
		}
		out = append(out, p)
	}
	*cfg.frontier = append(*cfg.frontier, out...)
}
