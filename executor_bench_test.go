// Throughput benchmarks for the pooled execution substrate. The workload
// of the study is millions of short executions, so the numbers that matter
// are executions/sec and allocs/execution; `make bench-json` records them
// as BENCH_substrate.json.
package sctbench

import (
	"fmt"
	"runtime"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/vthread"
)

// BenchmarkExecutorThroughput contrasts the NewWorld-per-run baseline with
// a reused Executor on a CS-suite program under the deterministic
// scheduler: the pure substrate overhead of one execution, allocations
// included. The Executor rows split by engine — "ref" runs the closure
// twin on the goroutine reference engine (the pre-flat history row),
// "flat" runs the compiled form on the single-goroutine flat engine — so
// BENCH_substrate.json carries the before/after of the engine swap.
func BenchmarkExecutorThroughput(b *testing.B) {
	bm := bench.ByName("CS.account_bad")
	b.Run("NewWorldPerRun", func(b *testing.B) {
		b.ReportAllocs()
		prog := bm.Ref()
		for i := 0; i < b.N; i++ {
			out := vthread.NewWorld(vthread.Options{
				Chooser: vthread.RoundRobin(), BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps,
			}).Run(prog)
			if out.Threads == 0 {
				b.Fatal("no threads ran")
			}
		}
		reportExecRate(b, b.N)
	})
	engines := []struct {
		name string
		prog vthread.Runnable
	}{
		{"Executor/ref", bm.Ref()},
		{"Executor/flat", bm.New()},
	}
	for _, eng := range engines {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			ex := vthread.NewExecutor(vthread.Options{
				Chooser: vthread.RoundRobin(), BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps,
			})
			defer ex.Close()
			b.ResetTimer()
			steps := 0
			for i := 0; i < b.N; i++ {
				out := ex.Run(eng.prog)
				if out.Threads == 0 {
					b.Fatal("no threads ran")
				}
				steps += len(out.Trace)
			}
			reportExecRate(b, b.N)
			reportStepCost(b, steps)
		})
	}
}

// BenchmarkStepOverhead isolates the per-step handoff cost of the
// substrate's step-dispatch paths on yield-loop programs whose only work
// is scheduling, reporting ns/step for each:
//
//   - same-thread: two runnable threads under an inline-run round-robin
//     chooser that is not a StepObserver — every step runs the chooser on
//     the current thread's goroutine and continues it (zero switches).
//   - forced: one runnable thread under the opted-in RoundRobin — every
//     step is granted without a Choose call (zero switches, no decision).
//   - cross-thread: two threads under a strict-alternation chooser —
//     every step is a direct thread-to-thread baton handoff (one switch).
//   - bounced: the same alternation with direct handoff disabled — every
//     grant routes through the exec goroutine, the two context switches
//     per step the central-loop protocol paid for all steps.
//
// The flat/* rows run the same yield-loop shapes as compiled programs on
// the single-goroutine flat engine, where a context switch is a function
// call: flat/chooser (two threads, chooser consulted every step),
// flat/forced (one runnable thread, grant without a Choose call) and
// flat/cross-thread (strict alternation, one interpreter swap per step).
func BenchmarkStepOverhead(b *testing.B) {
	const yields = 64
	yielders := func(threads int) vthread.Program {
		return func(t0 *vthread.Thread) {
			bodies := make([]vthread.Program, threads)
			for i := range bodies {
				bodies[i] = func(tw *vthread.Thread) {
					for s := 0; s < yields; s++ {
						tw.Yield()
					}
				}
			}
			t0.SpawnAll(bodies...)
		}
	}
	compiledYielders := func(threads int) *vthread.CompiledProgram {
		p := vthread.NewBuilder()
		body := p.Body(0, 0)
		for s := 0; s < yields; s++ {
			body.Yield()
		}
		main := p.Main()
		for i := 0; i < threads; i++ {
			main.Spawn(body)
		}
		return p.Build()
	}
	// inlineRR mirrors RoundRobin without implementing StepObserver, so
	// the chooser runs at every point (isolating path (a) from (b)).
	inlineRR := vthread.ChooserFunc(func(ctx vthread.Context) vthread.ThreadID {
		if ctx.LastEnabled {
			return ctx.Last
		}
		return ctx.Enabled[0]
	})
	alternate := vthread.ChooserFunc(func(ctx vthread.Context) vthread.ThreadID {
		for _, t := range ctx.Enabled {
			if t != ctx.Last {
				return t
			}
		}
		return ctx.Enabled[0]
	})
	cases := []struct {
		name    string
		threads int
		chooser vthread.Chooser
		debug   vthread.Debug
		flat    bool
	}{
		{"same-thread", 2, inlineRR, vthread.Debug{}, false},
		{"forced", 1, vthread.RoundRobin(), vthread.Debug{}, false},
		{"cross-thread", 2, alternate, vthread.Debug{}, false},
		{"bounced", 2, alternate, vthread.Debug{NoDirectHandoff: true}, false},
		{"flat/chooser", 2, inlineRR, vthread.Debug{}, true},
		{"flat/forced", 1, vthread.RoundRobin(), vthread.Debug{}, true},
		{"flat/cross-thread", 2, alternate, vthread.Debug{}, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			ex := vthread.NewExecutor(vthread.Options{Chooser: c.chooser, Debug: c.debug})
			defer ex.Close()
			var prog vthread.Runnable = yielders(c.threads)
			if c.flat {
				prog = compiledYielders(c.threads)
			}
			b.ResetTimer()
			steps := 0
			for i := 0; i < b.N; i++ {
				out := ex.Run(prog)
				if out.Failure != nil {
					b.Fatalf("unexpected failure: %v", out.Failure)
				}
				steps += len(out.Trace)
			}
			reportStepCost(b, steps)
		})
	}
}

// BenchmarkSubstrateThroughputSequential measures whole-driver throughput
// (engine + substrate) on a sequential bounded search over the CS suite's
// reorder program: executions/sec with the schedule-space walk, cost
// accounting and witness handling included.
func BenchmarkSubstrateThroughputSequential(b *testing.B) {
	bm := bench.ByName("CS.reorder_4_bad")
	prog := bm.New()
	b.ReportAllocs()
	execs := 0
	for i := 0; i < b.N; i++ {
		r := explore.RunIterative(explore.Config{
			Program: prog, BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps, Limit: 500,
		}, explore.CostDelays)
		execs += r.Executions
	}
	reportExecRate(b, execs)
}

// BenchmarkSubstrateThroughputParallel is the same walk over the
// work-stealing pool with one Executor per worker.
func BenchmarkSubstrateThroughputParallel(b *testing.B) {
	bm := bench.ByName("CS.reorder_4_bad")
	prog := bm.New()
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			execs := 0
			for i := 0; i < b.N; i++ {
				r := explore.RunIterative(explore.Config{
					Program: prog, BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps,
					Limit: 500, Workers: workers,
				}, explore.CostDelays)
				execs += r.Executions
			}
			reportExecRate(b, execs)
		})
	}
}

// reportExecRate attaches the executions/sec custom metric.
func reportExecRate(b *testing.B, execs int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(execs)/s, "execs/s")
	}
}

// reportStepCost attaches the per-scheduling-step cost custom metric.
func reportStepCost(b *testing.B, steps int) {
	if steps > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(steps), "ns/step")
	}
}
