package vthread

import "sync"

// Executor is a resettable World: an execution context that is reused
// across many executions instead of being rebuilt per run. The workload of
// systematic concurrency testing is millions of short executions, so
// per-execution overhead dominates; the Executor removes it by recycling
//
//   - thread goroutines: each virtual thread's backing goroutine persists
//     as a parked pool worker that is handed a new body per run instead of
//     being spawned and torn down;
//   - Thread structs, gate channels and park channels;
//   - the trace, enabled-set and name/key buffers of the World;
//   - the Outcome struct itself.
//
// In steady state a run allocates nothing in the substrate — only what the
// program under test allocates for its own objects.
//
// # Aliasing contract
//
// Run and RunWith return a pointer to an Outcome that the next run
// overwrites, and Outcome.Trace aliases the Executor's internal schedule
// buffer, which the next run rewrites in place. Both are valid only until
// the next Run/RunWith (or Close). A caller that retains the trace must
// copy it (sched.Schedule.Clone); a caller that retains other Outcome
// fields must copy them out before the next run. Outcome.Failure is
// exempt: failures are freshly allocated per run and never recycled.
//
// # Confinement
//
// An Executor is confined to one goroutine, exactly like a World: Run,
// RunWith and Close must all be called from the same goroutine, and
// distinct Executors share no state, so one Executor per worker goroutine
// is the intended parallel pattern. Reusing an Executor while a run is in
// flight (for example from inside its own Chooser) panics.
//
// Close releases the pooled goroutines; dropping an Executor without
// calling Close leaks its parked workers.
type Executor struct {
	w    World
	free []*Thread // parked pool workers available for the next run
	// flatFree holds recyclable flat-engine threads: bare structs with an
	// interp, no goroutine, no channels. They must never enter free (Close
	// would close their nil jobs channel) and vice versa.
	flatFree []*Thread
	workers  sync.WaitGroup
	outcome  Outcome
	running  bool
	closed   bool

	// defChooser and defSink are the Options the Executor was created
	// with; Run always uses these, regardless of what earlier RunWith
	// calls installed for their runs.
	defChooser Chooser
	defSink    EventSink
}

// NewExecutor creates a reusable execution context. Unlike NewWorld,
// opts.Chooser may be nil if every run supplies its own via RunWith.
func NewExecutor(opts Options) *Executor {
	e := &Executor{defChooser: opts.Chooser, defSink: opts.Sink}
	e.w.init(opts)
	e.w.pool = e
	return e
}

// Run executes program once under the Options the Executor was created
// with. See the type comment for the aliasing contract on the result.
func (e *Executor) Run(program Runnable) *Outcome {
	return e.RunWith(e.defChooser, e.defSink, program)
}

// RunWith executes program once with this run's chooser and event sink
// (either may differ per run; sink may be nil for no observer). The other
// Options fields (Visible, MaxSteps, BoundsCheck) stay as configured. See
// the type comment for the aliasing contract on the result.
//
// Engine selection: a closure Program runs on the reference (goroutine)
// engine; a *CompiledProgram runs on the flat single-goroutine engine —
// unless Debug.NoFlatEngine forces it through the blocking bridge onto the
// reference engine (counted in StepStats.FlatFallbacks). Either way the
// execution is bit-identical: same trace, Outcome, Failure and events.
func (e *Executor) RunWith(chooser Chooser, sink EventSink, program Runnable) *Outcome {
	if chooser == nil {
		panic("vthread: Executor run without a Chooser")
	}
	if e.closed {
		panic("vthread: Executor run after Close")
	}
	if e.running {
		panic("vthread: Executor reused while a run is in flight")
	}
	e.running = true
	defer func() { e.running = false }()

	e.w.opts.Chooser = chooser
	e.w.opts.Sink = sink
	e.w.reset()
	switch p := program.(type) {
	case Program:
		e.w.exec(p)
	case *CompiledProgram:
		if e.w.opts.Debug.NoFlatEngine {
			e.w.stats.FlatFallbacks++
			e.w.exec(p.asProgram())
		} else {
			e.w.execFlat(p)
		}
	default:
		panic("vthread: Executor run on unknown Runnable implementation")
	}
	e.w.fillOutcome(&e.outcome)

	// Every body has finished (exec waits on the per-run WaitGroup; execFlat
	// retires threads inline), so the workers are parked on their jobs
	// channels again: recycle them, each kind into its own pool. The clock
	// pseudo-thread is neither — no goroutine, no jobs channel — and must
	// never enter a pool (Close would close its nil jobs and acquire would
	// hand it to a program thread); the World keeps its struct separately
	// (clock.cached).
	for _, t := range e.w.threads {
		switch {
		case t.isClock:
		case t.flat:
			e.flatFree = append(e.flatFree, t)
		default:
			e.free = append(e.free, t)
		}
	}
	e.w.threads = e.w.threads[:0]
	return &e.outcome
}

// StepStats reports how the Executor's steps were dispatched across all
// runs so far (see StepStats). Must be called between runs, like Run.
func (e *Executor) StepStats() StepStats { return e.w.StepStats() }

// acquire pops a parked pool worker, or creates one (struct, channels,
// goroutine) when the pool has none spare. Called by newThread.
func (e *Executor) acquire() *Thread {
	if n := len(e.free); n > 0 {
		t := e.free[n-1]
		e.free = e.free[:n-1]
		return t
	}
	t := &Thread{
		gate:  make(chan struct{}),
		jobs:  make(chan Program, 1),
		first: make(chan parkKind, 1),
	}
	e.workers.Add(1)
	go t.workerLoop(&e.workers)
	return t
}

// acquireFlat pops a recyclable flat-engine thread, or creates a bare
// struct (no goroutine, no channels). Called by newFlatThread.
func (e *Executor) acquireFlat() *Thread {
	if n := len(e.flatFree); n > 0 {
		t := e.flatFree[n-1]
		e.flatFree = e.flatFree[:n-1]
		return t
	}
	return &Thread{}
}

// Close shuts down the pooled worker goroutines and waits for them to
// exit. Idempotent; must not be called while a run is in flight. After
// Close, Run and RunWith panic.
func (e *Executor) Close() {
	if e.closed {
		return
	}
	if e.running {
		panic("vthread: Executor.Close during a run")
	}
	e.closed = true
	for _, t := range e.free {
		close(t.jobs)
	}
	e.free = nil
	e.flatFree = nil // nothing to shut down: flat threads have no goroutine
	e.workers.Wait()
}
