package vthread

// Design notes for maintainers — the handoff protocol in one place.
//
// # Serialised execution
//
// One World = one execution. Each virtual thread is a goroutine, but the
// protocol guarantees at most one runs at any instant:
//
//	world loop                         thread goroutine
//	----------                         ----------------
//	compute enabled set
//	chooser picks thread T
//	T.gate <- struct{}{}       ──────▶ returns from awaitGrant
//	<-w.parked  (blocks)               executes its pending visible op
//	                                   runs invisible ops…
//	                                   …until the next visible op:
//	                                   pending = op; state = parked
//	                           ◀────── parkTo <- parkMsg
//	(loop)
//
// Because the world blocks on <-w.parked while a thread runs, and threads
// block on <-gate otherwise, no locks are needed anywhere in the
// substrate: every shared field is accessed by exactly one goroutine at a
// time, with happens-before edges provided by the two channels. `go test
// -race ./internal/vthread` runs clean.
//
// # Spawn and the private first park
//
// Spawn runs the child's invisible prefix eagerly (newThread sends the
// first grant itself and consumes the child's first park from a private
// channel). This keeps "a thread's first schedulable step is its first
// visible operation" — matching the §2 step model — and avoids a spurious
// start pseudo-op inflating schedule counts. The private channel matters:
// during a spawn the world is concurrently waiting for the *parent's*
// park, and must not steal the child's.
//
// # Teardown
//
// When the outcome is decided (terminal, deadlock, failure, step limit),
// abortRemaining marks every live thread killed and closes its gate; the
// thread's receive returns, it panics with killSignal, and the recover in
// main() unwinds it without touching shared state. Run returns only after
// wg.Wait sees every goroutine exit, so studies running millions of
// executions cannot leak goroutines (tested).
//
// # Determinism contract
//
// Programs under test must be deterministic modulo scheduling: no Go
// maps iterated for control flow, no time, no randomness, no I/O. Given
// that, a recorded Schedule replays to the identical trace, costs and
// failure — the foundation of stateless model checking (§2 of the paper).
