package fsatomic

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sctbench/internal/faultinject"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	p := filepath.Join(t.TempDir(), "ck.json")
	if err := WriteFile(p, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(p, []byte("new contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Fatalf("read %q, want %q", got, "new contents")
	}
	if _, err := os.Stat(p + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// A crash between the rename and the directory fsync is the narrowest
// durability window; the caller sees ErrInjected ("the process died
// here") but the file at path must already be the complete new version —
// the file itself was fsynced before the rename published it.
func TestWriteFileCrashBetweenRenameAndDirSync(t *testing.T) {
	p := filepath.Join(t.TempDir(), "ck.json")
	if err := WriteFile(p, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.CheckpointDirSync, 1)
	defer faultinject.Reset()
	err := WriteFile(p, []byte("new complete checkpoint"), 0o644)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	got, readErr := os.ReadFile(p)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if string(got) != "new complete checkpoint" {
		t.Fatalf("after simulated crash file holds %q, want the complete new contents", got)
	}
}
