package vthread

// Virtual time. Timers, tickers and context deadlines never consult the
// wall clock: time is an int64 tick counter owned by the World, and a
// fireable timer is a schedulable pseudo-step. The clock materialises as a
// goroutine-less pseudo-thread ("the clock thread") appended to the thread
// table at the first arm, whose pending operation is opTimerFire and whose
// enabledness is "some timer can fire and some program thread is still
// live". Every exploration engine therefore enumerates timer/step
// interleavings exactly like thread steps — the clock occupies a dense
// ThreadID, appears in enabled sets, costs preemptions and delays by the
// ordinary §2 arithmetic, lands in the trace, and replays — with no
// engine-side changes at all, the same move PR 5 made for select
// case-decision points.
//
// Which timer fires is not a choice: among the fireable timers the one
// with the smallest (deadline, arm sequence) fires, and the virtual now
// advances to its deadline. The schedule space explores *when* the clock
// runs relative to program steps, never *which* timer a clock step means,
// so a recorded trace replays deterministically.
//
// Fireability is deliberately conservative in a way that doubles as leak
// semantics: a delivery-style timer is fireable only while its channel has
// room, so a leaked ticker fires once, fills its one-slot channel and goes
// quiet — a thread blocked on a stopped or saturated ticker is a real
// modelled deadlock ("blocked forever"), while a thread blocked on a
// fireable timer is not ("blocked until the timer fires"). Dropped ticks
// are unobservable, so not exploring them is a sound stutter reduction.
//
// Every arm reads the virtual now (deadline = now + d) and every fire
// advances it, so arms and fires do NOT commute with each other even when
// their channels differ. The shared clockKey in every arm/fire footprint
// makes partial-order reduction see exactly that dependence.

// clockKey is the shared-object key of the virtual now, present in the
// footprint of every operation that reads or advances it.
const clockKey = "clock"

type timerKind int

const (
	timerOneShot timerKind = iota
	timerTicker
	timerDeadline // fires by cancelling a context subtree, no delivery
)

// vtimer is one clock entry. Delivery-style timers (one-shot, ticker) own
// a one-slot channel; deadline timers cancel their context instead.
type vtimer struct {
	kind     timerKind
	ch       *Chan // delivery channel (nil for timerDeadline)
	ctx      *Ctx  // cancellation target (timerDeadline only)
	deadline int64
	period   int64 // ticker re-arm interval
	armed    bool
	seq      int // arm order, the deterministic tiebreak between equal deadlines
}

// fireable reports whether the timer can fire right now.
func (v *vtimer) fireable() bool {
	if !v.armed {
		return false
	}
	if v.kind == timerDeadline {
		return !v.ctx.cancelled
	}
	return !v.ch.closed && v.ch.n < len(v.ch.buf)
}

// clock is the World's virtual-time state. The timers slice and the cached
// pseudo-thread struct are recycled across Executor runs; everything else
// is per-run and cleared by reset.
type clock struct {
	thread *Thread // the clock pseudo-thread, nil until the first arm of a run
	cached *Thread // struct reuse across runs (never enters the Executor pool)
	timers []*vtimer
	now    int64
	seq    int
}

// reset clears all per-run clock state so Executor reuse cannot carry
// armed timers, the advanced now or the pseudo-thread across runs.
func (c *clock) reset() {
	for i := range c.timers {
		c.timers[i] = nil
	}
	c.timers = c.timers[:0]
	c.now = 0
	c.seq = 0
	c.thread = nil
}

// nextFireable returns the fireable timer with the smallest
// (deadline, seq), or nil. This total order is what makes clock steps a
// deterministic function of the schedule prefix.
func (c *clock) nextFireable() *vtimer {
	var best *vtimer
	for _, v := range c.timers {
		if !v.fireable() {
			continue
		}
		if best == nil || v.deadline < best.deadline ||
			(v.deadline == best.deadline && v.seq < best.seq) {
			best = v
		}
	}
	return best
}

// armedCount reports how many timers are still armed; finishIdle uses it
// to tell "blocked forever" apart from "blocked with dead timers around".
func (c *clock) armedCount() int {
	n := 0
	for _, v := range c.timers {
		if v.armed {
			n++
		}
	}
	return n
}

// ensureClock returns the clock pseudo-thread, materialising it at the
// next dense ThreadID on first use. The struct has no goroutine, no gate
// and no pool membership: its steps execute inline on whichever goroutine
// holds the baton (World.fireTimer), so creation is just a table append —
// observationally a spawn, which is exactly how the nthreads watermark of
// the DPOR engine orders clock steps after the arm that created it.
func (w *World) ensureClock() *Thread {
	if w.clk.thread != nil {
		return w.clk.thread
	}
	id := ThreadID(len(w.threads))
	w.ensureNames(id)
	t := w.clk.cached
	if t == nil {
		t = &Thread{}
		w.clk.cached = t
	}
	t.w = w
	t.id = id
	t.name = "clock"
	t.key = w.keys[id]
	t.pending = pendingOp{kind: opTimerFire, thread: t}
	t.state = stateParked
	t.killed = false
	t.woken = false
	t.parkTo = nil
	t.isClock = true
	w.threads = append(w.threads, t)
	w.clk.thread = t
	return t
}

// clockEnabled is the enabledness predicate of opTimerFire: some timer can
// fire AND some program thread is still live. The liveness gate is what
// ends executions cleanly instead of ticking forever after the last
// program thread exits — an unobservable fire cannot matter.
func (w *World) clockEnabled() bool {
	if w.clk.nextFireable() == nil {
		return false
	}
	for _, t := range w.threads {
		if !t.isClock && t.state != stateExited {
			return true
		}
	}
	return false
}

// armTimer registers v with the clock (deadline = now + d, fresh arm
// sequence) and makes sure the clock pseudo-thread exists. d at or below
// zero arms for the current instant, like Go's NewTimer(-1).
func (w *World) armTimer(v *vtimer, d int64) {
	if d < 0 {
		d = 0
	}
	v.deadline = w.clk.now + d
	v.armed = true
	v.seq = w.clk.seq
	w.clk.seq++
	w.clk.timers = append(w.clk.timers, v)
	w.ensureClock()
}

// rearmTimer is armTimer for a timer already in the table (Timer.Reset).
func (w *World) rearmTimer(v *vtimer, d int64) {
	if d < 0 {
		d = 0
	}
	v.deadline = w.clk.now + d
	v.armed = true
	v.seq = w.clk.seq
	w.clk.seq++
}

// fireTimer executes one clock step: the next fireable timer fires, the
// virtual now advances to its deadline, and the effect commits under the
// clock pseudo-thread's id (so the race detector sees arm → fire → observe
// happens-before edges through the timer's channel key). Called by
// nextStep after the clock id was chosen and accounted; by construction
// there is no crash path here — fireability guarantees the delivery
// channel is open with room.
func (w *World) fireTimer() {
	v := w.clk.nextFireable()
	ct := w.clk.thread
	if v.deadline > w.clk.now {
		w.clk.now = v.deadline
	}
	w.timerPoints++
	switch v.kind {
	case timerDeadline:
		v.armed = false
		w.cancelSubtree(ct, v.ctx, CtxDeadlineExceeded)
	case timerOneShot:
		v.armed = false
		w.deliverTick(ct, v.ch)
	case timerTicker:
		w.deliverTick(ct, v.ch)
		v.deadline = w.clk.now + v.period
	}
}

// deliverTick enqueues the current virtual time into a timer's one-slot
// channel, with the same acquire-release pair a committed Send performs.
func (w *World) deliverTick(ct *Thread, c *Chan) {
	ct.sinkAcquire(c.key)
	c.buf[(c.head+c.n)%len(c.buf)] = int(w.clk.now)
	c.n++
	ct.sinkRelease(c.key)
}

// newTimerChan builds the one-slot delivery channel of a timer object.
func newTimerChan(name string) *Chan {
	return &Chan{key: "timer/" + name, buf: make([]int, 1)}
}

// Timer is a one-shot virtual timer, modelling time.Timer. Its channel
// receives the virtual firing time once the clock step fires it; when and
// whether that clock step runs relative to the program's own steps is
// explored by the scheduler, not raced against a wall clock.
type Timer struct {
	v *vtimer
}

// NewTimer arms a one-shot timer firing d virtual ticks from now. Arming
// is a visible operation (it reads the virtual now and creates the
// fireable entry the clock pseudo-thread schedules).
func (t *Thread) NewTimer(name string, d int64) *Timer {
	v := &vtimer{kind: timerOneShot, ch: newTimerChan(name)}
	t.visible(pendingOp{kind: opTimerArm, timer: v})
	t.timerArmCommit(v, d)
	return &Timer{v: v}
}

// timerArmCommit is the opTimerArm effect for one-shot timers: register
// with the clock, then release on the delivery channel (the arm
// happens-before the fire's delivery).
func (t *Thread) timerArmCommit(v *vtimer, d int64) {
	t.w.armTimer(v, d)
	t.sinkRelease(v.ch.key)
}

// tickerArmCommit is the opTimerArm effect for tickers, including the
// modelled crash on a non-positive period (checked after the visible
// point, as in the public NewTicker).
func (t *Thread) tickerArmCommit(v *vtimer) {
	if v.period < 1 {
		t.crash("non-positive period for ticker %s", v.ch.key)
	}
	t.w.armTimer(v, v.period)
	t.sinkRelease(v.ch.key)
}

// C returns the timer's delivery channel: Recv on it (or a Select case)
// blocks until the timer fires. Invisible accessor.
func (tm *Timer) C() *Chan { return tm.v.ch }

// Stop disarms the timer, reporting whether it was still armed — false
// means the timer already fired (or was stopped), and as in Go the
// delivery channel is NOT drained: a fired value stays buffered, which is
// exactly the footgun gotime.timer_stop_race_bad explores. Visible.
func (tm *Timer) Stop(t *Thread) bool {
	t.visible(pendingOp{kind: opTimerStop, timer: tm.v})
	return tm.v.stopCommit()
}

func (v *vtimer) stopCommit() bool {
	was := v.armed
	v.armed = false
	return was
}

// Reset re-arms the timer to fire d ticks from the current virtual now,
// reporting whether it was still armed before the call. Visible (it reads
// the virtual now, like NewTimer).
func (tm *Timer) Reset(t *Thread, d int64) bool {
	t.visible(pendingOp{kind: opTimerArm, timer: tm.v})
	return tm.v.resetCommit(t, d)
}

func (v *vtimer) resetCommit(t *Thread, d int64) bool {
	was := v.armed
	t.w.rearmTimer(v, d)
	return was
}

// After arms a one-shot timer and returns its delivery channel directly:
// the `case <-time.After(d):` idiom. One visible operation.
func (t *Thread) After(name string, d int64) *Chan {
	v := &vtimer{kind: timerOneShot, ch: newTimerChan(name)}
	t.visible(pendingOp{kind: opTimerArm, timer: v})
	t.timerArmCommit(v, d)
	return v.ch
}

// Sleep blocks for d virtual ticks: an After plus the receive, two visible
// operations. The sleeping thread is disabled until the clock step fires —
// "blocked until a timer fires", which deadlock detection distinguishes
// from blocked forever.
func (t *Thread) Sleep(name string, d int64) {
	ch := t.After(name, d)
	ch.Recv(t)
}

// Now returns the current virtual time. Invisible inspection helper, like
// Chan.Len: using it for cross-thread control flow makes the program
// schedule-dependent in ways footprints cannot see.
func (t *Thread) Now() int64 { return t.w.clk.now }

// Ticker is a repeating virtual timer, modelling time.Ticker. Each fire
// delivers into a one-slot channel and re-arms one period later; while the
// slot is full the ticker is not fireable (the dropped ticks of a slow
// receiver are unobservable), so a leaked ticker fires exactly once more
// and then goes quiet instead of flooding the schedule space.
type Ticker struct {
	v *vtimer
}

// NewTicker arms a repeating timer with the given period in virtual ticks.
// A period below one is a modelled crash, as in Go. Visible.
func (t *Thread) NewTicker(name string, period int64) *Ticker {
	v := &vtimer{kind: timerTicker, ch: newTimerChan(name), period: period}
	t.visible(pendingOp{kind: opTimerArm, timer: v})
	t.tickerArmCommit(v)
	return &Ticker{v: v}
}

// C returns the ticker's delivery channel. Invisible accessor.
func (tk *Ticker) C() *Chan { return tk.v.ch }

// Stop disarms the ticker. As in Go it does not close or drain the
// channel: a receiver still blocked on it after Stop is blocked forever —
// the classic leaked-ticker bug, surfacing here as a modelled deadlock.
// Visible.
func (tk *Ticker) Stop(t *Thread) {
	t.visible(pendingOp{kind: opTimerStop, timer: tk.v})
	tk.v.stopCommit()
}
