// Package bench contains the 52 SCTBench programs of the study,
// re-implemented against the vthread substrate as behaviourally faithful
// analogues of the original pthread benchmarks: same thread structure,
// same synchronisation skeleton, same planted bug class, and — the
// property the study actually measures — the same qualitative difficulty
// for each exploration technique (which technique finds the bug, at what
// bound, and roughly how hard it is for random scheduling).
//
// Substitutions relative to the originals are documented per suite in the
// suite files and summarised in DESIGN.md §1/§7.
package bench

import (
	"fmt"
	"sort"
	"sync"

	"sctbench/internal/vthread"
)

// Benchmark is one SCTBench entry.
type Benchmark struct {
	// ID is the Table 3 row id (0–51).
	ID int
	// Name is the Table 3 name, e.g. "CS.account_bad".
	Name string
	// Suite is the benchmark-suite name of Table 1.
	Suite string
	// Threads is the nominal thread count (Table 3 "# threads").
	Threads int
	// BugKind classifies the planted bug.
	BugKind vthread.FailureKind
	// Desc summarises the bug in one line.
	Desc string
	// BoundsCheck enables the modelled out-of-bounds detector for this
	// benchmark (§4.2: manual assertions were added where the paper needed
	// them; the two OOB benchmarks use the checker directly).
	BoundsCheck bool
	// MaxSteps overrides the per-execution step budget (0 = default).
	MaxSteps int
	// New builds a fresh instance of the program. The returned Runnable
	// creates all its state inside the body (compiled programs instantiate
	// their environment per run), so one value can be executed any number
	// of times — including concurrently from the parallel exploration
	// driver's workers. Compiled-form benchmarks run on the flat engine;
	// closure-form ones run on the goroutine reference engine.
	New func() vthread.Runnable
	// Ref, when non-nil, builds the original closure-form twin of New's
	// compiled program. It exists purely as the equivalence oracle: the
	// registry test executes both under identical choosers and requires
	// bit-identical outcomes, failures and event streams.
	Ref func() vthread.Program

	hashOnce sync.Once
	hash     string
}

// String returns "id name".
func (b *Benchmark) String() string { return fmt.Sprintf("%02d %s", b.ID, b.Name) }

// Hash returns the benchmark's program content hash (vthread.ProgramHash
// of a fresh New() instance), the key under which the schedule corpus
// stores its witnesses and prefixes. Computed once per process and cached;
// stable across processes and across benchmark renames, changed by any
// semantic edit to the program.
func (b *Benchmark) Hash() string {
	b.hashOnce.Do(func() {
		b.hash = vthread.ProgramHash(b.New(), b.MaxSteps)
	})
	return b.hash
}

var registry []*Benchmark

// register adds a benchmark at package init; duplicate ids or names panic,
// since the table layout of the study depends on both being unique.
func register(b *Benchmark) {
	for _, o := range registry {
		if o.ID == b.ID {
			panic(fmt.Sprintf("bench: duplicate id %d (%s, %s)", b.ID, o.Name, b.Name))
		}
		if o.Name == b.Name {
			panic("bench: duplicate name " + b.Name)
		}
	}
	registry = append(registry, b)
}

// All returns the 52 benchmarks sorted by Table 3 id.
func All() []*Benchmark {
	out := make([]*Benchmark, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByName returns the named benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// ByID returns the benchmark with the given Table 3 id, or nil.
func ByID(id int) *Benchmark {
	for _, b := range registry {
		if b.ID == id {
			return b
		}
	}
	return nil
}

// Suites returns the distinct suite names in first-appearance (Table 1)
// order.
func Suites() []string {
	var out []string
	seen := make(map[string]bool)
	for _, b := range All() {
		if !seen[b.Suite] {
			seen[b.Suite] = true
			out = append(out, b.Suite)
		}
	}
	sort.Strings(out)
	return out
}
