package vthread

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// compiledExecutorTwin is executorTestProgram translated op-for-op to the
// builder DSL (see the equivalence contract in prog.go).
func compiledExecutorTwin() *CompiledProgram {
	p := NewBuilder()
	m := p.Mutex("m")
	v := p.Var("v", 0)
	wk := p.Body(0, 0)
	wk.Lock(m)
	wk.AddVar(v, 1)
	wk.Unlock(m)
	l := wk.Load(v)
	wk.Store(v, func(t *Thread) int { return t.Reg(l) + 1 })
	mn := p.Main()
	a := mn.Spawn(wk)
	b := mn.Spawn(wk)
	mn.Join(a)
	mn.Join(b)
	// Go evaluates the condition and the message arguments before Assert
	// runs: two loads, in that order.
	c1 := mn.Load(v)
	c2 := mn.Load(v)
	mn.Assert(func(t *Thread) bool { return t.Reg(c1) >= 2 }, "lost updates: %d", c2)
	return p.Build()
}

// compiledDeadlockTwin is deadlockProgram in instruction form.
func compiledDeadlockTwin() *CompiledProgram {
	p := NewBuilder()
	m := p.Mutex("m")
	child := p.Body(0, 0)
	child.Lock(m)
	child.Unlock(m)
	mn := p.Main()
	mn.Lock(m)
	for i := 0; i < 3; i++ {
		mn.Spawn(child)
	}
	return p.Build()
}

// genCompiled is genProgram translated op-for-op to the builder DSL: the
// same shape seed yields the same op mix, so a closure run and a compiled
// run of the same shape must be bit-identical under any chooser.
func genCompiled(shape uint32) *CompiledProgram {
	p := NewBuilder()
	nWorkers := int(shape%3) + 1
	ops := int((shape/4)%5) + 1
	m := p.Mutex("m")
	v := p.Var("v", 0)
	s := p.Sem("s", 1)
	a := p.Chan("a", 2)
	b := p.Chan("b", 2)
	g := p.WaitGroup("g")
	once := p.Once("o")

	// All workers run the same seed-derived mix, so one body serves them
	// all (runtime-varying names evaluate t.ID() per thread).
	wk := p.Body(0, 0)
	mix := shape
	for o := 0; o < ops; o++ {
		switch op := o; mix % 8 {
		case 0:
			wk.Lock(m)
			wk.AddVar(v, 1)
			wk.Unlock(m)
		case 1:
			wk.AddVar(v, 1)
		case 2:
			wk.P(s)
			wk.Yield()
			wk.V(s)
		case 3:
			wk.Select([]SCase{RecvC(a), RecvC(b), SendC(a, op)}, true)
		case 4:
			wk.OnceDo(once, func() { wk.AddVar(v, 1) })
			sent := wk.TrySend(a, op)
			wk.If(func(t *Thread) bool { return t.Reg(sent) == 0 }, func() {
				wk.TryRecv(b)
			})
		case 5:
			wk.Yield()
		case 6:
			wk.Sleep(func(t *Thread) string {
				return fmt.Sprintf("nap/%d/%d", t.ID(), op)
			}, int64(op%3))
			tk := wk.NewTicker(func(t *Thread) string {
				return fmt.Sprintf("tick/%d/%d", t.ID(), op)
			}, 2)
			wk.Recv(tk)
			wk.TickerStop(tk)
		default:
			par := wk.WithCancel(func(t *Thread) string {
				return fmt.Sprintf("cp/%d/%d", t.ID(), op)
			}, NoCtx)
			cc := wk.WithTimeout(func(t *Thread) string {
				return fmt.Sprintf("cc/%d/%d", t.ID(), op)
			}, par, int64(op%2)+1)
			if op%2 == 1 {
				wk.CtxCancel(par)
			}
			_, ok := wk.Recv(cc)
			wk.If(ok, func() {
				wk.Fail("ctx done channel delivered a value")
			})
		}
		mix /= 8
	}
	wk.WGDone(g)

	mn := p.Main()
	mn.WGAdd(g, nWorkers)
	mn.Send(a, 1)
	mn.Send(b, 2)
	hs := make([]OReg, 0, nWorkers)
	for i := 0; i < nWorkers; i++ {
		hs = append(hs, mn.Spawn(wk))
	}
	mn.WGWait(g)
	for _, h := range hs {
		mn.Join(h)
	}
	return p.Build()
}

// runPair executes the closure reference and the Runnable under test with
// per-run TraceLoggers and identical choosers, returning both outcomes and
// both event streams.
func runPair(t *testing.T, ref Program, got Runnable, mk func() Chooser, d Debug) (wo, go_ *Outcome, wev, gev string) {
	t.Helper()
	exRef := NewExecutor(Options{Debug: d})
	defer exRef.Close()
	exGot := NewExecutor(Options{Debug: d})
	defer exGot.Close()
	lw, lg := NewTraceLogger(), NewTraceLogger()
	wo = exRef.RunWith(mk(), lw, ref)
	go_ = exGot.RunWith(mk(), lg, got)
	return wo, go_, lw.String(), lg.String()
}

// TestFlatMatchesReferenceSmoke pins the hand-written twins: the flat
// engine reproduces the goroutine engine's outcome, failure and event
// stream on a lost-update assert program and a teardown-deadlock program,
// under round-robin and fifty random seeds.
func TestFlatMatchesReferenceSmoke(t *testing.T) {
	cases := []struct {
		name string
		ref  Program
		cp   *CompiledProgram
	}{
		{"executor-twin", executorTestProgram, compiledExecutorTwin()},
		{"deadlock-twin", deadlockProgram, compiledDeadlockTwin()},
	}
	for _, tc := range cases {
		choosers := []func() Chooser{RoundRobin}
		for seed := uint64(0); seed < 50; seed++ {
			seed := seed
			choosers = append(choosers, func() Chooser { return NewRandom(seed) })
		}
		for ci, mk := range choosers {
			want, got, wev, gev := runPair(t, tc.ref, tc.cp, mk, Debug{})
			if !outcomesEqual(want, got) || !failuresEqual(want.Failure, got.Failure) {
				t.Fatalf("%s chooser %d: flat outcome diverged\n got %+v\nwant %+v", tc.name, ci, got, want)
			}
			if wev != gev {
				t.Fatalf("%s chooser %d: event streams diverged\n got:\n%s\nwant:\n%s", tc.name, ci, gev, wev)
			}
		}
	}
}

// TestFlatMatchesReferenceOnGenerated is the fuzzed equivalence property:
// for seed-derived programs covering locks, semaphores, channels, selects
// with defaults, Once, WaitGroups, timers, tickers and context deadlines,
// a compiled run (flat engine) and the closure original (goroutine engine)
// are bit-identical — outcome, failure and event stream — and so is the
// compiled program forced through the blocking bridge (NoFlatEngine).
func TestFlatMatchesReferenceOnGenerated(t *testing.T) {
	f := func(shape uint32, seed uint64) bool {
		ref := genProgram(shape)
		cp := genCompiled(shape)
		mk := func() Chooser { return NewRandom(seed) }
		want, got, wev, gev := runPair(t, ref, cp, mk, Debug{})
		if !outcomesEqual(want, got) || !failuresEqual(want.Failure, got.Failure) || wev != gev {
			t.Logf("shape=%d seed=%d: flat diverged\n got %+v ev:\n%s\nwant %+v ev:\n%s",
				shape, seed, got, gev, want, wev)
			return false
		}
		want, got, wev, gev = runPair(t, ref, cp, mk, Debug{NoFlatEngine: true})
		if !outcomesEqual(want, got) || !failuresEqual(want.Failure, got.Failure) || wev != gev {
			t.Logf("shape=%d seed=%d: blocking bridge diverged\n got %+v\nwant %+v", shape, seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestFlatMatchesReferenceAcrossDebugCombos runs the compiled generated
// programs under every Debug kill-switch combination: the fast-path
// toggles route goroutine transfers the flat engine does not have, so all
// eight combinations (with and without NoFlatEngine on top) must stay
// bit-identical to the all-off reference run.
func TestFlatMatchesReferenceAcrossDebugCombos(t *testing.T) {
	combos := debugCombos()
	f := func(shape uint32, seed uint64) bool {
		ref := genProgram(shape)
		cp := genCompiled(shape)
		mk := func() Chooser { return NewRandom(seed) }
		want := NewWorld(Options{Chooser: mk()}).Run(ref)
		for _, d := range combos {
			for _, noFlat := range []bool{false, true} {
				d := d
				d.NoFlatEngine = noFlat
				ex := NewExecutor(Options{Debug: d})
				got := ex.RunWith(mk(), nil, cp)
				if !outcomesEqual(want, got) || !failuresEqual(want.Failure, got.Failure) {
					t.Logf("shape=%d seed=%d debug=%+v: diverged\n got %+v\nwant %+v",
						shape, seed, d, got, want)
					ex.Close()
					return false
				}
				ex.Close()
			}
		}
		// Replay the reference trace through the flat engine: same trace
		// back, no divergence.
		rep := NewReplay(want.Trace)
		ex := NewExecutor(Options{})
		defer ex.Close()
		out := ex.RunWith(rep, nil, cp)
		if rep.Failed() || !out.Trace.Equal(want.Trace) {
			t.Logf("shape=%d seed=%d: flat replay diverged (failed=%v)", shape, seed, rep.Failed())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFlatCountersFire pins that the StepStats counters are live: flat
// dispatches count FlatSteps, and NoFlatEngine routes through the bridge,
// counting FlatFallbacks and no flat steps.
func TestFlatCountersFire(t *testing.T) {
	cp := compiledExecutorTwin()

	ex := NewExecutor(Options{Chooser: RoundRobin()})
	ex.Run(cp)
	if st := ex.StepStats(); st.FlatSteps == 0 || st.FlatFallbacks != 0 {
		t.Fatalf("flat run: FlatSteps=%d FlatFallbacks=%d, want steps>0 fallbacks=0", st.FlatSteps, st.FlatFallbacks)
	}
	// A closure program on the same Executor leaves the counter alone.
	before := ex.StepStats().FlatSteps
	ex.Run(executorTestProgram)
	if st := ex.StepStats(); st.FlatSteps != before {
		t.Fatalf("closure run advanced FlatSteps: %d -> %d", before, st.FlatSteps)
	}
	ex.Close()

	exRef := NewExecutor(Options{Chooser: RoundRobin(), Debug: Debug{NoFlatEngine: true}})
	defer exRef.Close()
	out := exRef.Run(cp)
	if out.Failure != nil {
		t.Fatalf("bridged run failed: %v", out.Failure)
	}
	if st := exRef.StepStats(); st.FlatFallbacks != 1 || st.FlatSteps != 0 {
		t.Fatalf("bridged run: FlatSteps=%d FlatFallbacks=%d, want 0 and 1", st.FlatSteps, st.FlatFallbacks)
	}
}

// TestFlatMisusePanics pins the misuse guard: an operand closure that
// calls a blocking closure-API method suspends outside a compiled resume
// point — the flat thread has no goroutine to park, so the substrate
// panics with a diagnostic instead of deadlocking.
func TestFlatMisusePanics(t *testing.T) {
	p := NewBuilder()
	mn := p.Main()
	mn.Let(func(t *Thread) int {
		t.Yield() // blocking closure call inside a compiled operand
		return 0
	})
	cp := p.Build()

	ex := NewExecutor(Options{Chooser: RoundRobin()})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("misuse did not panic")
		}
		msg, ok := r.(misuseError)
		if !ok || !strings.Contains(string(msg), "flat-engine thread") {
			t.Fatalf("misuse panicked with %v, want the flat-engine diagnostic", r)
		}
	}()
	ex.Run(cp)
}
