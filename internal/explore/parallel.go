package explore

// Parallel exploration driver. The schedule space of one program is a tree
// whose nodes are scheduling points and whose edges are CanonicalOrder
// choices; the sequential engines walk it depth first. This driver
// partitions that tree into prefix-pinned subtrees ("units") explored by a
// pool of workers, with work-stealing: whenever the pool starves, a running
// worker donates the untried sibling range of the shallowest open node on
// its stack as a new unit (the owner works at the tail of its stack, the
// donation is carved off at the head — the deque discipline of the
// work-stealing queue benchmarked in examples/wsq).
//
// Determinism. Depth-first search visits terminal schedules in the
// lexicographic order of their branch keys (sched.CompareBranchKeys), and
// every unit covers a contiguous lexicographic range, so concatenating
// per-unit results sorted by start key reproduces the sequential visit
// order exactly — no matter how the work-stealing happened to cut the tree.
// Schedule totals, per-bound NewSchedules, completeness, the first-bug
// selection and its witness are therefore bit-identical to Workers: 1
// whenever the search runs to completion. When the schedule limit truncates
// the search, the counted totals are still exact (the budget is an atomic
// ticket counter), but which schedules fall inside the budget depends on
// worker timing, so BugFound/Witness may differ from a sequential
// truncated run; Executions is always the actual work performed, including
// cancelled speculative bounds.
//
// Iterative bounding (IPB/IDB) additionally overlaps bound sweeps: while
// bound k drains, a lower-priority job speculatively explores bound k+1 in
// the same pool. If bound k finds the bug or completes the space, the
// speculative job is cancelled and its results are discarded; otherwise it
// is promoted and its partial progress is kept.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// unit is a prefix-pinned sub-search: an engine whose stack prefix is
// pinned (hi == idx) and whose shallowest open node may be restricted to a
// sibling range. key is the branch key of the first position the unit
// covers; fresh units run immediately, donated units backtrack first (the
// uniform path that also handles bound-pruning of the donated range).
type unit struct {
	eng   *engine
	key   []int
	fresh bool
}

// runStats is the per-benchmark max-statistics fold of Table 3 (max
// enabled threads, max contested scheduling points, max thread count),
// shared by every accumulation site of the parallel driver.
type runStats struct {
	maxEnabled int
	schedPts   int
	threads    int
}

// observe folds one execution's statistics in.
func (s *runStats) observe(out *vthread.Outcome) {
	if out.MaxEnabled > s.maxEnabled {
		s.maxEnabled = out.MaxEnabled
	}
	if out.SchedPoints > s.schedPts {
		s.schedPts = out.SchedPoints
	}
	if out.Threads > s.threads {
		s.threads = out.Threads
	}
}

// fold merges another accumulator in.
func (s *runStats) fold(o runStats) {
	if o.maxEnabled > s.maxEnabled {
		s.maxEnabled = o.maxEnabled
	}
	if o.schedPts > s.schedPts {
		s.schedPts = o.schedPts
	}
	if o.threads > s.threads {
		s.threads = o.threads
	}
}

// foldInto merges the accumulator into a Result.
func (s runStats) foldInto(r *Result) {
	if s.maxEnabled > r.MaxEnabled {
		r.MaxEnabled = s.maxEnabled
	}
	if s.schedPts > r.MaxSchedPoints {
		r.MaxSchedPoints = s.schedPts
	}
	if s.threads > r.Threads {
		r.Threads = s.threads
	}
}

// unitResult is everything a finished unit contributes to the merge.
type unitResult struct {
	runStats
	key       []int
	schedules int   // terminal schedules counted by this unit
	buggyOffs []int // 1-based offsets (within this unit) of buggy schedules
	failure   *vthread.Failure
	witness   sched.Schedule
	pruned    bool
}

// job is one complete pass over the tree (one DFS, or one bound of an
// iterative search) being explored by the pool.
type job struct {
	cfg   Config
	model CostModel
	bound int

	queue   []*unit // guarded by pool.mu; donors append at the tail, thieves take the head
	pending int     // guarded by pool.mu; queued + running units
	closed  bool    // guarded by pool.mu; done has been closed

	results  []*unitResult // guarded by resMu
	resMu    sync.Mutex
	stop     atomic.Bool
	limitHit atomic.Bool
	budget   atomic.Int64 // remaining counted-schedule tickets

	// execs counts every execution performed anywhere in the exploration
	// (the honest Result.Executions metric, speculation included). own
	// counts this job's executions alone and is what execLimit — the
	// MaxExecutions budget left when the job was created, tightened as
	// earlier bounds commit — guards, so speculative work never burns the
	// active bound's execution budget.
	execs     *atomic.Int64
	own       atomic.Int64
	execLimit atomic.Int64

	done chan struct{}
}

// pool runs worker goroutines over an ordered list of jobs; workers always
// prefer the earliest job with queued work, so a speculative bound only
// consumes cycles the active bound cannot use.
type pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*job
	idle   int
	closed bool
	wg     sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// addJob registers a job seeded with the whole-tree root unit.
func (p *pool) addJob(j *job) *job {
	root := &unit{eng: newEngine(j.cfg, j.model, j.bound), fresh: true}
	p.mu.Lock()
	j.queue = append(j.queue, root)
	j.pending = 1
	p.jobs = append(p.jobs, j)
	p.mu.Unlock()
	p.cond.Signal()
	return j
}

// removeJob drops a finished job from the scan list.
func (p *pool) removeJob(j *job) {
	p.mu.Lock()
	for i, x := range p.jobs {
		if x == j {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// stopJob cancels a job: pending queued units are dropped, running units
// observe j.stop and finish their current execution only.
func (p *pool) stopJob(j *job) {
	p.mu.Lock()
	p.stopJobLocked(j)
	p.mu.Unlock()
}

func (p *pool) stopJobLocked(j *job) {
	j.stop.Store(true)
	j.pending -= len(j.queue)
	j.queue = nil
	if j.pending == 0 && !j.closed {
		j.closed = true
		close(j.done)
	}
}

// close stops every job and joins the workers.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	for _, j := range p.jobs {
		p.stopJobLocked(j)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// worker owns one reusable Executor for its whole lifetime: every unit it
// picks up (whatever the job or bound) runs its executions on it, so
// thread goroutines and buffers are recycled across units, not just
// within one. All jobs of a pool share one Config, so the executor's
// visibility/step options fit every unit.
func (p *pool) worker() {
	defer p.wg.Done()
	var ex *vthread.Executor
	defer func() {
		if ex != nil {
			ex.Close()
		}
	}()
	for {
		j, u := p.take()
		if u == nil {
			return
		}
		if ex == nil {
			ex = newExecutor(j.cfg)
		}
		u.eng.exec = ex
		p.runUnit(j, u)
	}
}

// take steals the lexicographically smallest queued unit of the earliest
// job with work, or blocks. Lex-priority stealing keeps the workers
// clustered on the earliest open regions of the tree, so the frontier
// advances in approximately the sequential visit order — which makes a
// budget-truncated parallel search count (and find bugs in) nearly the
// same lexicographic window a sequential search would, instead of
// scattering the budget across distant subtrees.
func (p *pool) take() (*job, *unit) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, nil
		}
		for _, j := range p.jobs {
			if len(j.queue) > 0 {
				best := 0
				for i := 1; i < len(j.queue); i++ {
					if sched.CompareBranchKeys(j.queue[i].key, j.queue[best].key) < 0 {
						best = i
					}
				}
				u := j.queue[best]
				j.queue = append(j.queue[:best], j.queue[best+1:]...)
				return j, u
			}
		}
		p.idle++
		p.cond.Wait()
		p.idle--
	}
}

// finishUnit records a unit's result and signals job completion when it was
// the last one out.
func (p *pool) finishUnit(j *job, res *unitResult) {
	j.resMu.Lock()
	j.results = append(j.results, res)
	j.resMu.Unlock()
	p.mu.Lock()
	j.pending--
	if j.pending == 0 && !j.closed {
		j.closed = true
		close(j.done)
	}
	p.mu.Unlock()
}

// maybeDonate splits the engine's shallowest open sibling range into a new
// unit when the pool is starving and the job's queue is empty.
func (p *pool) maybeDonate(j *job, eng *engine) {
	p.mu.Lock()
	starving := p.idle > 0 && len(j.queue) == 0 && !j.stop.Load() && !p.closed
	p.mu.Unlock()
	if !starving {
		return
	}
	u := split(eng)
	if u == nil {
		return
	}
	p.mu.Lock()
	if j.stop.Load() || p.closed {
		// The donation raced a cancellation; the donor already gave the
		// range up (hi was lowered), so the unit must still be explored —
		// by nobody. That is fine: a stopped job's results are discarded.
		p.mu.Unlock()
		return
	}
	j.queue = append(j.queue, u)
	j.pending++
	p.mu.Unlock()
	p.cond.Signal()
}

// split carves the untried sibling range (idx, hi] off the shallowest open
// node of eng's stack as a prefix-pinned unit, or returns nil when every
// node is closed. The donated unit is created in backtrack-first state so
// the ordinary backtracking path advances it into (and bound-prunes) its
// range.
func split(eng *engine) *unit {
	for d := 0; d < len(eng.stack); d++ {
		nd := &eng.stack[d]
		if nd.idx >= nd.hi {
			continue
		}
		key := make([]int, d+1)
		stack := make([]node, d+1)
		copy(stack, eng.stack[:d+1])
		// Deep-copy the node buffers: the donor recycles its order/costs
		// slices through its free list on backtrack, so sharing them with
		// the donated engine (which runs on another worker) would be a
		// use-after-recycle race.
		for i := range stack {
			stack[i].order = append([]sched.ThreadID(nil), stack[i].order...)
			stack[i].costs = append([]int(nil), stack[i].costs...)
		}
		for i := 0; i < d; i++ {
			key[i] = stack[i].idx
			stack[i].hi = stack[i].idx // pin the prefix
		}
		key[d] = nd.idx + 1
		ne := newEngine(eng.cfg, eng.model, eng.bound)
		ne.stack = stack
		nd.hi = nd.idx // the donor no longer owns the range
		return &unit{eng: ne, key: key}
	}
	return nil
}

// runUnit explores one unit to exhaustion (or cancellation), donating work
// along the way.
func (p *pool) runUnit(j *job, u *unit) {
	res := &unitResult{key: u.key}
	eng := u.eng
	alive := u.fresh || eng.backtrack()
	for alive && !j.stop.Load() {
		out := eng.runOnce()
		j.execs.Add(1)
		res.observe(out)
		if !out.StepLimitHit && j.counts(eng, out) {
			if j.budget.Add(-1) < 0 {
				j.limitHit.Store(true)
				p.stopJob(j)
				break
			}
			res.schedules++
			if out.Buggy() {
				res.buggyOffs = append(res.buggyOffs, res.schedules)
				if res.failure == nil {
					res.failure = out.Failure
					res.witness = out.Trace.Clone()
				}
			}
		}
		// Post-execution check with >=, matching the sequential driver: the
		// execution that exhausts the budget still runs (and counts), and a
		// space that completes exactly at the budget reports LimitHit, not
		// Complete, either way.
		if j.own.Add(1) >= j.execLimit.Load() {
			j.limitHit.Store(true)
			p.stopJob(j)
			break
		}
		p.maybeDonate(j, eng)
		alive = eng.backtrack()
	}
	res.pruned = eng.pruned
	p.finishUnit(j, res)
}

// counts reports whether the execution is a terminal schedule this job
// counts: every one for DFS, exactly-at-bound ones for IPB/IDB.
func (j *job) counts(eng *engine, out *vthread.Outcome) bool {
	switch eng.model {
	case CostPreemptions:
		return out.PC == eng.bound
	case CostDelays:
		return out.DC == eng.bound
	default:
		return true
	}
}

// passResult is the merged outcome of one job.
type passResult struct {
	runStats
	schedules      int
	buggy          int
	bugFound       bool
	firstBugOffset int // 1-based, within this pass
	failure        *vthread.Failure
	witness        sched.Schedule
	pruned         bool
	truncated      bool // the merge-time budget cut the walk short
}

// mergeJob concatenates a job's unit results in canonical order, applying
// the exact remaining schedule budget. On a fully enumerated pass this
// reproduces the sequential visit order (see the package comment).
func mergeJob(j *job, budget int) passResult {
	j.resMu.Lock()
	units := j.results
	j.resMu.Unlock()
	sort.Slice(units, func(a, b int) bool {
		return sched.CompareBranchKeys(units[a].key, units[b].key) < 0
	})
	var m passResult
	for _, u := range units {
		m.fold(u.runStats)
		m.pruned = m.pruned || u.pruned
		take := u.schedules
		if m.schedules+take > budget {
			take = budget - m.schedules
			m.truncated = true
		}
		for _, off := range u.buggyOffs {
			if off > take {
				break
			}
			m.buggy++
			if !m.bugFound {
				m.bugFound = true
				m.firstBugOffset = m.schedules + off
				m.failure = u.failure
				m.witness = u.witness
			}
		}
		m.schedules += take
	}
	return m
}

// runDFSParallel is RunDFS with cfg.Workers > 1.
func runDFSParallel(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{Technique: DFS}
	p := newPool(cfg.Workers)
	defer p.close()
	var execs atomic.Int64
	j := &job{cfg: cfg, model: CostNone, execs: &execs, done: make(chan struct{})}
	j.execLimit.Store(math.MaxInt64) // DFS has no execution guard, matching RunDFS
	j.budget.Store(int64(cfg.Limit))
	p.addJob(j)
	<-j.done
	m := mergeJob(j, cfg.Limit)
	foldPass(r, &m, 0)
	r.Schedules = m.schedules
	if r.Schedules >= cfg.Limit || j.limitHit.Load() || m.truncated {
		r.LimitHit = true
	} else {
		r.Complete = true
	}
	r.Executions = int(execs.Load())
	return r
}

// runIterativeParallel is RunIterative with cfg.Workers > 1: each bound is
// one job, with the next bound running speculatively behind it.
func runIterativeParallel(cfg Config, model CostModel) *Result {
	cfg = cfg.withDefaults()
	tech := IPB
	if model == CostDelays {
		tech = IDB
	}
	r := &Result{Technique: tech}
	p := newPool(cfg.Workers)
	defer p.close()
	var execs atomic.Int64

	committedExecs := int64(0)
	newJob := func(bound, budget int) *job {
		j := &job{cfg: cfg, model: model, bound: bound, execs: &execs,
			done: make(chan struct{})}
		j.execLimit.Store(int64(cfg.MaxExecutions) - committedExecs)
		j.budget.Store(int64(budget))
		return p.addJob(j)
	}

	counted := 0
	active := newJob(0, cfg.Limit)
	var spec *job
	if cfg.MaxBound >= 1 {
		spec = newJob(1, cfg.Limit)
	}
	for bound := 0; ; bound++ {
		<-active.done
		p.removeJob(active)
		m := mergeJob(active, cfg.Limit-counted)
		r.Bound = bound
		r.NewSchedules = m.schedules
		foldPass(r, &m, counted)
		counted += m.schedules
		r.Schedules = counted
		if r.Schedules >= cfg.Limit || active.limitHit.Load() || m.truncated {
			r.LimitHit = true
			break
		}
		if !m.pruned {
			// Nothing was pruned anywhere: every schedule costs at most
			// bound, so the space is fully explored.
			r.Complete = true
			break
		}
		if r.BugFound {
			// The bound that exposed the bug has been fully enumerated;
			// stop, as in the paper's methodology (§5).
			break
		}
		if bound == cfg.MaxBound {
			break
		}
		ownExecs := active.own.Load()
		committedExecs += ownExecs
		active = spec
		// The promoted job's budgets are stale snapshots from its creation
		// (before the just-committed bound's consumption was known);
		// tighten them by exactly what that bound consumed.
		active.budget.Add(int64(-m.schedules))
		active.execLimit.Add(-ownExecs)
		if bound+2 <= cfg.MaxBound {
			spec = newJob(bound+2, cfg.Limit-counted)
		} else {
			spec = nil
		}
	}
	r.Executions = int(execs.Load())
	return r
}

// foldPass folds one merged pass into the result; prior is the number of
// schedules counted by earlier (committed) passes.
func foldPass(r *Result, m *passResult, prior int) {
	m.runStats.foldInto(r)
	r.BuggySchedules += m.buggy
	if m.bugFound && !r.BugFound {
		r.BugFound = true
		r.Failure = m.failure
		r.Witness = m.witness
		r.SchedulesToFirstBug = prior + m.firstBugOffset
	}
}

// runRandParallel is RunRand with cfg.Workers > 1: the runs are independent
// and the per-run seed depends only on the run index, so an atomic index
// dispenser makes the parallel result — including the witness — identical
// to the sequential one. Workers capture the witness of the lowest-index
// buggy run as they go, so exactly Limit executions are performed, as in
// the sequential sweep.
func runRandParallel(cfg Config) *Result {
	cfg = cfg.withDefaults()
	r := &Result{Technique: Rand}
	n := cfg.Limit

	type rec struct{ terminal, buggy bool }
	recs := make([]rec, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	stats := make([]runStats, cfg.Workers)
	var witMu sync.Mutex
	witIdx := -1
	var witness sched.Schedule
	var failure *vthread.Failure
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := newExecutor(cfg)
			defer ex.Close()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out := randRun(ex, cfg, i)
				stats[w].observe(out)
				recs[i] = rec{terminal: !out.StepLimitHit, buggy: out.Buggy()}
				if out.Buggy() {
					witMu.Lock()
					if witIdx < 0 || i < witIdx {
						witIdx = i
						witness = out.Trace.Clone()
						failure = out.Failure
					}
					witMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	for _, rc := range recs {
		if !rc.terminal {
			continue
		}
		r.Schedules++
		if rc.buggy {
			r.BuggySchedules++
			if !r.BugFound {
				r.BugFound = true
				r.SchedulesToFirstBug = r.Schedules
				r.Failure = failure
				r.Witness = witness
			}
		}
	}
	for _, s := range stats {
		s.foldInto(r)
	}
	r.Executions = n
	r.LimitHit = true
	return r
}

// randRun executes run i of a Rand sweep on the caller's executor. It is
// the single definition of the per-run seed formula, used by both the
// sequential and the parallel sweep, so the two execute identical
// schedules by construction.
func randRun(ex *vthread.Executor, cfg Config, i int) *vthread.Outcome {
	return ex.RunWith(vthread.NewRandom(cfg.Seed+uint64(i)*0x9e3779b9), nil, cfg.Program)
}
