package explore

// Distribution hooks: the exported seams the distributed driver
// (internal/dist) builds on. The wire format is the checkpoint vocabulary
// of this package — UnitState frontiers travel from coordinator to worker,
// UnitResultState tallies travel back — so a distributed job checkpoints,
// resumes and merges with exactly the machinery the in-process pool
// already proves correct.
//
// The distributed partitioning deliberately differs from the pool's in one
// way: there is NO worker-side donation. The pool donates lazily because
// its units live in one address space and a donated range is removed from
// its donor atomically; a distributed worker that donated after its lease
// was re-dispatched would leave the re-dispatched (undonated) unit and the
// donated child double-covering a range. Sharding happens once, up front,
// in ShardTree — every unit covers a fixed contiguous lexicographic range
// for DFS/IPB/IDB, so re-dispatching a lost unit from its original
// UnitState reproduces exactly the coverage the dead worker abandoned, and
// the canonical merge (MergeUnitStates) stays bit-identical to the
// sequential walk no matter how many times a unit bounced between workers.

import (
	"fmt"

	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// ShardSet is the initial partition of one search pass — one DFS/DPOR
// tree, or one bound of an iterative sweep — into independently executable
// units.
type ShardSet struct {
	// Units are the leasable units. For DFS/IPB/IDB they cover disjoint
	// contiguous lexicographic ranges whose union is the whole pass; for
	// DPOR they cover every Mazurkiewicz trace (possibly with duplicated
	// reversals across units — the pool's verdict-level caveat).
	Units []UnitState
	// Done carries results finished during sharding itself: a tree whose
	// first execution exhausts it completes before it can be split.
	Done []UnitResultState
}

// ShardTree builds the engine for one pass and splits it into up to want
// units. The sharding run performs one execution (the stack to split only
// exists after a run); its tallies ride along in the donor unit's Partial,
// so nothing is lost or double-counted. bound is the IPB/IDB bound and
// ignored otherwise; Rand needs no sharding (runs are independent) and
// sleepset is sequential-only, so both are rejected.
func ShardTree(cfg Config, tech Technique, bound, want int) (*ShardSet, error) {
	cfg = cfg.withDefaults()
	var eng searcher
	switch tech {
	case DFS:
		eng = newEngine(cfg, CostNone, 0)
	case IPB:
		eng = newEngine(cfg, CostPreemptions, bound)
	case IDB:
		eng = newEngine(cfg, CostDelays, bound)
	case DPOR:
		eng = newDPOREngine(cfg)
	default:
		return nil, fmt.Errorf("explore: technique %s cannot be sharded", tech)
	}
	ex := newExecutor(cfg)
	defer ex.Close()
	eng.setExec(ex)
	res := &unitResult{}
	runUnitOnce(eng, res)
	if !eng.backtrack() {
		res.pruned = eng.wasPruned()
		res.branches = eng.prunedBranches()
		return &ShardSet{Done: []UnitResultState{*unitResultToState(res)}}, nil
	}
	set := &ShardSet{}
	for len(set.Units) < want-1 {
		u := eng.split()
		if u == nil {
			break
		}
		set.Units = append(set.Units, unitToState(u))
	}
	// The donor continues from its current (post-backtrack) position as a
	// positioned unit; its nil key is a prefix of every branch key, so the
	// donor — which covers the lexicographically earliest region — sorts
	// first in the canonical merge.
	set.Units = append(set.Units, UnitState{
		Positioned: true,
		Engine:     snapshotSearcher(eng),
		Partial:    unitResultToState(res),
	})
	return set, nil
}

// unitToState serializes a live unit (the per-unit core of poolCheckpoint).
func unitToState(u *unit) UnitState {
	us := UnitState{
		Key:        append([]int(nil), u.key...),
		Positioned: u.fresh,
		Engine:     snapshotSearcher(u.eng),
	}
	if u.res != nil {
		us.Partial = unitResultToState(u.res)
	}
	return us
}

// UnitAction is the verdict of a worker's per-execution poll.
type UnitAction int

const (
	// UnitContinue: keep exploring.
	UnitContinue UnitAction = iota
	// UnitPark: suspend. RunUnit returns the positioned frontier plus the
	// partial tallies, ready to be handed back to the coordinator (drain)
	// and later re-dispatched with nothing lost.
	UnitPark
	// UnitAbandon: drop the unit on the floor — the lease is lost or a
	// simulated kill -9 fired. RunUnit returns neither result nor
	// frontier; the coordinator re-dispatches the original UnitState after
	// the lease expires.
	UnitAbandon
)

// UnitRun is the outcome of RunUnit: Done for a finished (or panicked, or
// budget-cut) unit, Parked for a suspended one, both nil for an abandoned
// one.
type UnitRun struct {
	Done   *UnitResultState
	Parked *UnitState
	// LimitHit reports that this unit alone counted its whole schedule
	// budget; Done carries the exact tallies at the cut. The coordinator
	// treats it like the pool's budget stop: cancel the pass and merge
	// canonically, which reapplies the global budget exactly.
	LimitHit bool
}

// RunUnit restores a unit's frontier and explores it to exhaustion, the
// budget, or the poll callback's verdict — the distributed counterpart of
// the pool's runUnit. poll (nil = never stop early) runs before every
// execution; a park happens only at the loop top, where the engine is
// positioned post-backtrack — exactly the state checkpoints serialize and
// re-entry resumes bit-identically from. budget <= 0 means unlimited. A
// panic inside the program or substrate is contained exactly as in the
// pool: the unit completes with PanicMsg set (its counts will be forfeited
// at merge time) and the wedged executor is abandoned.
func RunUnit(cfg Config, us *UnitState, budget int, poll func() UnitAction) (ur *UnitRun, err error) {
	cfg = cfg.withDefaults()
	eng, rerr := restoreSearcher(cfg, us.Engine)
	if rerr != nil {
		return nil, fmt.Errorf("unit: %w", rerr)
	}
	res := &unitResult{key: append([]int(nil), us.Key...)}
	if us.Partial != nil {
		res = stateToUnitResult(us.Partial)
	}
	ex := newExecutor(cfg)
	wedged := false
	defer func() {
		if !wedged {
			ex.Close()
		}
	}()
	defer func() {
		if rec := recover(); rec != nil {
			wedged = true
			res.panicMsg = fmt.Sprint(rec)
			ur, err = &UnitRun{Done: unitResultToState(res)}, nil
		}
	}()
	eng.setExec(ex)
	alive := us.Positioned || eng.backtrack()
	for alive {
		if poll != nil {
			switch poll() {
			case UnitPark:
				return &UnitRun{Parked: &UnitState{
					Key:        append([]int(nil), us.Key...),
					Positioned: true,
					Engine:     snapshotSearcher(eng),
					Partial:    unitResultToState(res),
				}}, nil
			case UnitAbandon:
				return &UnitRun{}, nil
			}
		}
		if runUnitOnce(eng, res) && budget > 0 && res.schedules >= budget {
			res.pruned = eng.wasPruned()
			res.branches = eng.prunedBranches()
			return &UnitRun{Done: unitResultToState(res), LimitHit: true}, nil
		}
		alive = eng.backtrack()
	}
	res.pruned = eng.wasPruned()
	res.branches = eng.prunedBranches()
	return &UnitRun{Done: unitResultToState(res)}, nil
}

// runUnitOnce performs one execution on eng, folding every per-unit tally
// — work counters, run statistics, schedule counting, first-bug capture —
// into res, and reports whether the terminal-schedule count grew.
func runUnitOnce(eng searcher, res *unitResult) bool {
	out := eng.runOnce()
	res.executions++
	res.steps += int64(len(out.Trace))
	if out.Aborted {
		res.aborted++
	}
	res.observe(out)
	if !eng.counts(out) {
		return false
	}
	res.schedules++
	if out.Buggy() {
		res.buggyOffs = append(res.buggyOffs, res.schedules)
		if res.failure == nil {
			res.failure = out.Failure
			res.witness = out.Trace.Clone()
		}
	}
	return true
}

// PassMerge is the merged outcome of one distributed pass — the exported
// mirror of the pool's passResult, plus the summed per-unit work tallies.
type PassMerge struct {
	Schedules      int
	Buggy          int
	BugFound       bool
	FirstBugOffset int // 1-based, within this pass
	Failure        *vthread.Failure
	Witness        sched.Schedule
	Pruned         bool
	Branches       int
	Truncated      bool // the merge-time budget cut the walk short
	WorkerPanics   int
	PanicMsg       string
	MaxEnabled     int
	SchedPoints    int
	Threads        int
	Executions     int
	Steps          int64
	Aborted        int
}

// MergeUnitStates merges completed unit results in canonical order with
// the exact remaining schedule budget — the distributed counterpart of the
// pool's per-pass merge, with identical ordering, budget and forfeiture
// semantics (see mergeUnits). Duplicate completions of the same unit must
// be deduplicated by the caller before merging (the coordinator keeps the
// first completion per unit; determinism makes any later one identical
// anyway).
func MergeUnitStates(done []*UnitResultState, budget int) PassMerge {
	units := make([]*unitResult, 0, len(done))
	for _, d := range done {
		units = append(units, stateToUnitResult(d))
	}
	m := mergeUnits(units, budget)
	return PassMerge{
		Schedules:      m.schedules,
		Buggy:          m.buggy,
		BugFound:       m.bugFound,
		FirstBugOffset: m.firstBugOffset,
		Failure:        m.failure,
		Witness:        m.witness,
		Pruned:         m.pruned,
		Branches:       m.branches,
		Truncated:      m.truncated,
		WorkerPanics:   m.workerPanics,
		PanicMsg:       m.panicMsg,
		MaxEnabled:     m.maxEnabled,
		SchedPoints:    m.schedPts,
		Threads:        m.threads,
		Executions:     m.executions,
		Steps:          m.steps,
		Aborted:        m.aborted,
	}
}

// FoldInto folds a merged pass into r — foldPass plus the work tallies the
// in-process drivers read off shared atomic counters at exit. prior is the
// number of schedules committed by earlier passes (for the cross-pass
// first-bug offset).
func (m *PassMerge) FoldInto(r *Result, prior int) {
	pr := passResult{
		runStats:       runStats{maxEnabled: m.MaxEnabled, schedPts: m.SchedPoints, threads: m.Threads},
		schedules:      m.Schedules,
		buggy:          m.Buggy,
		bugFound:       m.BugFound,
		firstBugOffset: m.FirstBugOffset,
		failure:        m.Failure,
		witness:        m.Witness,
		pruned:         m.Pruned,
		branches:       m.Branches,
		truncated:      m.Truncated,
		workerPanics:   m.WorkerPanics,
		panicMsg:       m.PanicMsg,
	}
	foldPass(r, &pr, prior)
	r.Executions += m.Executions
	r.TotalSteps += m.Steps
	r.AbortedExecutions += m.Aborted
}

// CompareUnitKeys exposes the canonical unit order (branch-key
// lexicographic, prefix-orders-first) so the coordinator can dispatch
// units in approximately the sequential visit order — the same
// lex-priority heuristic the pool's take uses.
func CompareUnitKeys(a, b []int) int { return sched.CompareBranchKeys(a, b) }
