// Package study implements the experimental pipeline of §5 of the paper:
// for each benchmark, a dynamic race-detection phase chooses the visible
// operations, then iterative preemption bounding (IPB), iterative delay
// bounding (IDB), unbounded depth-first search (DFS), the naive random
// scheduler (Rand) and the Maple-style idiom algorithm (MapleAlg) are run
// with a terminal-schedule limit. The result rows regenerate Table 3 and
// everything derived from it (Table 2, Figures 2–4).
package study

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/corpus"
	"sctbench/internal/explore"
	"sctbench/internal/mapleidiom"
	"sctbench/internal/race"
	"sctbench/internal/vthread"
)

// Config parameterises a study run.
type Config struct {
	// Limit is the terminal-schedule budget per technique per benchmark
	// (the paper uses 10,000). Zero means explore.DefaultLimit.
	Limit int
	// Seed is the base seed; per-benchmark and per-phase seeds derive from
	// it deterministically.
	Seed uint64
	// RaceRuns is the number of race-detection executions (0 = 10, as in
	// the paper).
	RaceRuns int
	// Techniques restricts which techniques run (nil = the four
	// systematic/random phases of the paper: IPB, IDB, DFS, Rand). Append
	// explore.DPOR to also run the partial-order-reduction extension; its
	// reduction counters land in the Table 3 CSV columns.
	Techniques []explore.Technique
	// WithMaple additionally runs the Maple-style idiom algorithm.
	WithMaple bool
	// Parallelism bounds concurrent benchmark evaluations (0 = GOMAXPROCS).
	Parallelism int
	// Workers is the per-exploration worker count passed to
	// explore.Config.Workers (0 or 1 = sequential exploration). Benchmark-
	// level parallelism (Parallelism) and schedule-space parallelism
	// (Workers) compose; the Go scheduler multiplexes both onto GOMAXPROCS
	// threads, so Workers mainly shortens the tail of the slowest
	// benchmarks.
	Workers int
	// Progress, when non-nil, receives one line per completed phase.
	Progress func(format string, args ...any)
	// Debug forwards the substrate's kill switches (engine selection, fast
	// path disables) to every exploration this study creates. The zero
	// value is the production configuration: compiled benchmarks on the
	// flat engine; set NoFlatEngine to force the goroutine reference
	// engine for an A/B run.
	Debug vthread.Debug
	// Interrupt, when non-nil, truncates the study when it is closed: rows
	// not yet started are skipped, rows in flight finish dirty and are
	// discarded (see RunStudy).
	Interrupt <-chan struct{}
	// Deadline, when nonzero, truncates the study at that wall-clock time,
	// same semantics as Interrupt.
	Deadline time.Time
	// CheckpointPath, when nonempty, is where a truncated RunStudy saves
	// its completed rows for a later resume.
	CheckpointPath string
	// Corpus, when non-nil, makes every exploration replay-first against
	// the schedule corpus (keyed by each benchmark's content hash) and
	// writes every fresh witness back. See internal/corpus.
	Corpus *corpus.Store
}

func (c Config) withDefaults() Config {
	if c.Limit == 0 {
		c.Limit = explore.DefaultLimit
	}
	if c.RaceRuns == 0 {
		c.RaceRuns = race.DefaultRuns
	}
	if c.Techniques == nil {
		c.Techniques = []explore.Technique{explore.IPB, explore.IDB, explore.DFS, explore.Rand}
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// Row is one Table 3 row: everything measured for one benchmark.
type Row struct {
	Bench *bench.Benchmark
	// Racy is the promoted variable set from the detection phase.
	Racy []string
	// RaceBugsSeen counts detection runs that exposed the bug (context for
	// Table 2's "trivial" classification).
	RaceBugsSeen int
	// Results maps technique → exploration result. Present techniques only.
	Results map[explore.Technique]*explore.Result
	// Maple is the MapleAlg result (nil unless Config.WithMaple).
	Maple *mapleidiom.Result
}

// Found reports whether the given technique found the bug.
func (r *Row) Found(t explore.Technique) bool {
	res := r.Results[t]
	return res != nil && res.BugFound
}

// Truncated reports that an interrupt or deadline cut one of this row's
// explorations short, so its counts do not represent the full pipeline
// and the row must be re-run rather than carried into a resumed study.
func (r *Row) Truncated() bool {
	for _, res := range r.Results {
		if res.Stopped == explore.StopDeadline || res.Stopped == explore.StopInterrupted {
			return true
		}
	}
	return false
}

// MaxEnabled and MaxSchedPoints aggregate the per-technique statistics,
// matching the Table 3 columns (max over all runs of the benchmark).
func (r *Row) MaxEnabled() int {
	m := 0
	for _, res := range r.Results {
		if res.MaxEnabled > m {
			m = res.MaxEnabled
		}
	}
	return m
}

// MaxSchedPoints returns the maximum number of contested scheduling points
// observed across all systematic runs.
func (r *Row) MaxSchedPoints() int {
	m := 0
	for _, res := range r.Results {
		if res.MaxSchedPoints > m {
			m = res.MaxSchedPoints
		}
	}
	return m
}

// Threads returns the maximum thread count observed.
func (r *Row) Threads() int {
	m := 0
	for _, res := range r.Results {
		if res.Threads > m {
			m = res.Threads
		}
	}
	return m
}

// seedFor derives a stable per-benchmark, per-phase seed.
func seedFor(base uint64, benchID int, phase uint64) uint64 {
	x := base ^ (uint64(benchID+1) * 0x9e3779b97f4a7c15) ^ (phase * 0xbf58476d1ce4e5b9)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// RunBenchmark runs the full §5 pipeline on one benchmark.
func RunBenchmark(b *bench.Benchmark, cfg Config) *Row {
	cfg = cfg.withDefaults()
	row := &Row{Bench: b, Results: make(map[explore.Technique]*explore.Result)}

	// Phase 1: data race detection (10 uncontrolled runs, all accesses
	// visible).
	phase := race.RunPhase(race.PhaseConfig{
		Program:     b.New(),
		Runs:        cfg.RaceRuns,
		Seed:        seedFor(cfg.Seed, b.ID, 1),
		MaxSteps:    b.MaxSteps,
		BoundsCheck: b.BoundsCheck,
	})
	row.Racy = phase.Racy
	row.RaceBugsSeen = phase.BugsSeen
	visible := race.Promoted(phase.Racy)
	if cfg.Progress != nil {
		cfg.Progress("%s: race phase done, %d racy vars", b.Name, len(phase.Racy))
	}

	// Phases 2–5: the exploration techniques, sharing the promoted set.
	hash := ""
	if cfg.Corpus != nil {
		hash = b.Hash()
	}
	for _, tech := range cfg.Techniques {
		res := explore.Run(tech, explore.Config{
			Program:     b.New(),
			Visible:     visible,
			BoundsCheck: b.BoundsCheck,
			MaxSteps:    b.MaxSteps,
			Limit:       cfg.Limit,
			Seed:        seedFor(cfg.Seed, b.ID, 2+uint64(tech)),
			Workers:     cfg.Workers,
			Debug:       cfg.Debug,
			Interrupt:   cfg.Interrupt,
			Deadline:    cfg.Deadline,
			Corpus:      cfg.Corpus,
			ProgramHash: hash,
			Meta:        explore.CheckpointMeta{Benchmark: b.Name, Racy: phase.Racy},
		})
		row.Results[tech] = res
		if cfg.Progress != nil {
			cfg.Progress("%s: %s done (bug=%v bound=%d first=%d total=%d)",
				b.Name, tech, res.BugFound, res.Bound, res.SchedulesToFirstBug, res.Schedules)
		}
	}

	// Phase 6: the Maple-style idiom algorithm.
	if cfg.WithMaple {
		row.Maple = mapleidiom.Run(mapleidiom.Config{
			Program:     b.New,
			Visible:     visible,
			BoundsCheck: b.BoundsCheck,
			MaxSteps:    b.MaxSteps,
			Seed:        seedFor(cfg.Seed, b.ID, 99),
		})
		if cfg.Progress != nil {
			cfg.Progress("%s: MapleAlg done (bug=%v schedules=%d)",
				b.Name, row.Maple.BugFound, row.Maple.Schedules)
		}
	}
	return row
}

// RunAll evaluates the pipeline over the given benchmarks (all of SCTBench
// when benches is nil), parallelising across benchmarks. Rows come back in
// Table 3 (id) order. Truncated rows (possible only when cfg carries an
// Interrupt or Deadline) are dropped; use RunStudy to also learn whether
// the run was cut short and to checkpoint/resume it.
func RunAll(benches []*bench.Benchmark, cfg Config) []*Row {
	rows, _, err := RunStudy(benches, cfg, nil)
	if err != nil {
		// Unreachable without a prior checkpoint; keep the legacy
		// signature honest anyway.
		panic(err)
	}
	return rows
}

// RunStudy is RunAll with crash safety: rows already completed in a prior
// checkpoint are carried over verbatim instead of re-run, and when
// cfg.Interrupt fires or cfg.Deadline passes, benchmarks not yet started
// are skipped, in-flight rows finish dirty and are discarded, and the
// cleanly completed rows are saved to cfg.CheckpointPath. Because every
// row is deterministic given the study seed, the union of carried-over
// and freshly run rows is exactly what one uninterrupted run produces —
// truncation never changes a row, it only defers it.
//
// The returned rows are the completed ones, in benches order; truncated
// reports whether any were deferred. A prior checkpoint from a different
// configuration (limit, seed, technique set) is an error.
func RunStudy(benches []*bench.Benchmark, cfg Config, prior *Checkpoint) (rows []*Row, truncated bool, err error) {
	cfg = cfg.withDefaults()
	if benches == nil {
		benches = bench.All()
	}

	done := make(map[string]*Row)
	if prior != nil {
		if err := prior.matches(cfg); err != nil {
			return nil, false, err
		}
		for i := range prior.Rows {
			if row := prior.Rows[i].row(); row != nil {
				done[row.Bench.Name] = row
			}
		}
	}

	stopped := func() bool {
		if cfg.Interrupt != nil {
			select {
			case <-cfg.Interrupt:
				return true
			default:
			}
		}
		return !cfg.Deadline.IsZero() && !time.Now().Before(cfg.Deadline)
	}

	all := make([]*Row, len(benches))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	for i, b := range benches {
		if row := done[b.Name]; row != nil {
			all[i] = row
			continue
		}
		wg.Add(1)
		go func(i int, b *bench.Benchmark) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if stopped() {
				return // skipped: deferred to the resumed run
			}
			row := RunBenchmark(b, cfg)
			if !row.Truncated() {
				all[i] = row
			}
		}(i, b)
	}
	wg.Wait()

	for _, row := range all {
		if row != nil {
			rows = append(rows, row)
		}
	}
	truncated = len(rows) < len(benches)
	if truncated && cfg.CheckpointPath != "" {
		if err := newCheckpoint(cfg, rows).Save(cfg.CheckpointPath); err != nil {
			return rows, true, err
		}
	}
	return rows, truncated, nil
}

// Sanity verifies registry invariants the study depends on: the 52 paper
// benchmarks in ids 0-51, extension families (GoIdiom, GoTime) only above
// them, and contiguous ids throughout. It returns an error description
// or "".
func Sanity() string {
	all := bench.All()
	if len(all) < 52 {
		return fmt.Sprintf("registry has %d benchmarks, want at least the 52 SCTBench rows", len(all))
	}
	for i, b := range all {
		if b.ID != i {
			return fmt.Sprintf("benchmark ids not contiguous at %d (%s)", i, b.Name)
		}
		if i < 52 && (b.Suite == "GoIdiom" || b.Suite == "GoTime") {
			return fmt.Sprintf("extension benchmark %s occupies paper row %d", b.Name, i)
		}
	}
	return ""
}
