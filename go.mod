module sctbench

go 1.23
