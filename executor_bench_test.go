// Throughput benchmarks for the pooled execution substrate. The workload
// of the study is millions of short executions, so the numbers that matter
// are executions/sec and allocs/execution; `make bench-json` records them
// as BENCH_substrate.json.
package sctbench

import (
	"fmt"
	"runtime"
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/vthread"
)

// BenchmarkExecutorThroughput contrasts the NewWorld-per-run baseline with
// a reused Executor on a CS-suite program under the deterministic
// scheduler: the pure substrate overhead of one execution, allocations
// included.
func BenchmarkExecutorThroughput(b *testing.B) {
	bm := bench.ByName("CS.account_bad")
	prog := bm.New()
	b.Run("NewWorldPerRun", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := vthread.NewWorld(vthread.Options{
				Chooser: vthread.RoundRobin(), BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps,
			}).Run(prog)
			if out.Threads == 0 {
				b.Fatal("no threads ran")
			}
		}
		reportExecRate(b, b.N)
	})
	b.Run("Executor", func(b *testing.B) {
		b.ReportAllocs()
		ex := vthread.NewExecutor(vthread.Options{
			Chooser: vthread.RoundRobin(), BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps,
		})
		defer ex.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := ex.Run(prog)
			if out.Threads == 0 {
				b.Fatal("no threads ran")
			}
		}
		reportExecRate(b, b.N)
	})
}

// BenchmarkSubstrateThroughputSequential measures whole-driver throughput
// (engine + substrate) on a sequential bounded search over the CS suite's
// reorder program: executions/sec with the schedule-space walk, cost
// accounting and witness handling included.
func BenchmarkSubstrateThroughputSequential(b *testing.B) {
	bm := bench.ByName("CS.reorder_4_bad")
	prog := bm.New()
	b.ReportAllocs()
	execs := 0
	for i := 0; i < b.N; i++ {
		r := explore.RunIterative(explore.Config{
			Program: prog, BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps, Limit: 500,
		}, explore.CostDelays)
		execs += r.Executions
	}
	reportExecRate(b, execs)
}

// BenchmarkSubstrateThroughputParallel is the same walk over the
// work-stealing pool with one Executor per worker.
func BenchmarkSubstrateThroughputParallel(b *testing.B) {
	bm := bench.ByName("CS.reorder_4_bad")
	prog := bm.New()
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			execs := 0
			for i := 0; i < b.N; i++ {
				r := explore.RunIterative(explore.Config{
					Program: prog, BoundsCheck: bm.BoundsCheck, MaxSteps: bm.MaxSteps,
					Limit: 500, Workers: workers,
				}, explore.CostDelays)
				execs += r.Executions
			}
			reportExecRate(b, execs)
		})
	}
}

// reportExecRate attaches the executions/sec custom metric.
func reportExecRate(b *testing.B, execs int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(execs)/s, "execs/s")
	}
}
