// Quickstart: author a small racy program against the sctbench API,
// explore its schedules with iterative delay bounding, and replay the
// buggy schedule it finds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	sctbench "sctbench"
)

func main() {
	// A classic lost-update bug: two workers increment a shared counter
	// without a lock. IntVar.Add is a load followed by a store, so a
	// schedule that interleaves the two read-modify-writes loses one.
	program := sctbench.Program(func(t *sctbench.Thread) {
		counter := t.NewVar("counter", 0)
		inc := func(w *sctbench.Thread) { counter.Add(w, 1) }
		a := t.Spawn(inc)
		b := t.Spawn(inc)
		t.Join(a)
		t.Join(b)
		t.Assert(counter.Load(t) == 2, "lost update: counter=%d, want 2", counter.Load(t))
	})

	// Iterative delay bounding: explore all zero-delay schedules, then
	// one-delay schedules, and so on.
	res := sctbench.Explore(sctbench.IDB, sctbench.Config{Program: program})
	if !res.BugFound {
		log.Fatal("expected to find the lost update")
	}
	fmt.Printf("bug found: %v\n", res.Failure)
	fmt.Printf("smallest delay bound exposing it: %d\n", res.Bound)
	fmt.Printf("terminal schedules explored to first bug: %d (of %d within the bound)\n",
		res.SchedulesToFirstBug, res.Schedules)
	fmt.Printf("witness schedule: %v\n", res.Witness)

	// The witness replays deterministically: same schedule, same failure.
	out, ok := sctbench.Replay(program, res.Witness)
	if !ok || !out.Buggy() {
		log.Fatal("witness did not replay")
	}
	fmt.Printf("replayed: %v\n", out.Failure)
}
