package study

// Row-granularity crash safety for the study pipeline. The unit of
// checkpointing is one completed benchmark row: every phase of a row is
// deterministic given the study seed, so a row either finished cleanly —
// and can be carried verbatim into a resumed run — or it was cut short by
// an interrupt or deadline and is discarded and re-run from scratch. A
// resumed study therefore produces exactly the rows an uninterrupted run
// would have, which is what keeps the final CSV artifacts byte-comparable
// across a kill-and-resume cycle. (Finer-grained, frontier-level resume
// lives one layer down, in package explore; the study trades that
// precision for a checkpoint that is trivially correct across all six
// phases of a row, including the race-detection and Maple phases that
// have no frontier to serialize.)

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/fsatomic"
	"sctbench/internal/mapleidiom"
)

// CheckpointVersion is bumped on incompatible changes to the study
// checkpoint schema.
const CheckpointVersion = 1

// Checkpoint is a study run cut short: the configuration that identifies
// the run and every row that completed cleanly before the cut.
type Checkpoint struct {
	Version  int    `json:"version"`
	Limit    int    `json:"limit"`
	Seed     uint64 `json:"seed"`
	RaceRuns int    `json:"raceRuns"`
	// Techniques are the technique names of the run, in order.
	Techniques []string   `json:"techniques"`
	WithMaple  bool       `json:"withMaple,omitempty"`
	Rows       []RowState `json:"rows"`
}

// RowState is one completed row in serializable form (the Benchmark
// pointer becomes its registry name).
type RowState struct {
	Bench        string                     `json:"bench"`
	Racy         []string                   `json:"racy,omitempty"`
	RaceBugsSeen int                        `json:"raceBugsSeen,omitempty"`
	Results      map[string]*explore.Result `json:"results"`
	Maple        *mapleidiom.Result         `json:"maple,omitempty"`
}

func techNames(ts []explore.Technique) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

func techByName(name string) (explore.Technique, bool) {
	for _, t := range []explore.Technique{explore.IPB, explore.IDB,
		explore.DFS, explore.Rand, explore.DPOR} {
		if t.String() == name {
			return t, true
		}
	}
	return 0, false
}

// newCheckpoint captures cfg (already defaulted) and the completed rows.
func newCheckpoint(cfg Config, rows []*Row) *Checkpoint {
	ck := &Checkpoint{
		Version:    CheckpointVersion,
		Limit:      cfg.Limit,
		Seed:       cfg.Seed,
		RaceRuns:   cfg.RaceRuns,
		Techniques: techNames(cfg.Techniques),
		WithMaple:  cfg.WithMaple,
	}
	for _, r := range rows {
		rs := RowState{
			Bench:        r.Bench.Name,
			Racy:         r.Racy,
			RaceBugsSeen: r.RaceBugsSeen,
			Results:      make(map[string]*explore.Result, len(r.Results)),
			Maple:        r.Maple,
		}
		for t, res := range r.Results {
			rs.Results[t.String()] = res
		}
		ck.Rows = append(ck.Rows, rs)
	}
	return ck
}

// row reconstructs the in-memory Row for a completed RowState, or nil if
// the benchmark is no longer registered under that name.
func (rs *RowState) row() *Row {
	b := bench.ByName(rs.Bench)
	if b == nil {
		return nil
	}
	row := &Row{
		Bench:        b,
		Racy:         rs.Racy,
		RaceBugsSeen: rs.RaceBugsSeen,
		Results:      make(map[explore.Technique]*explore.Result, len(rs.Results)),
		Maple:        rs.Maple,
	}
	for name, res := range rs.Results {
		t, ok := techByName(name)
		if !ok {
			return nil
		}
		row.Results[t] = res
	}
	return row
}

// matches reports whether the checkpoint was produced by an equivalent
// study configuration — reusing rows across a different limit, seed or
// technique set would silently mix two different experiments.
func (ck *Checkpoint) matches(cfg Config) error {
	if ck.Limit != cfg.Limit || ck.Seed != cfg.Seed || ck.RaceRuns != cfg.RaceRuns {
		return fmt.Errorf("study checkpoint is for limit=%d seed=%d raceRuns=%d, this run has limit=%d seed=%d raceRuns=%d",
			ck.Limit, ck.Seed, ck.RaceRuns, cfg.Limit, cfg.Seed, cfg.RaceRuns)
	}
	want := techNames(cfg.Techniques)
	if len(want) != len(ck.Techniques) {
		return fmt.Errorf("study checkpoint ran techniques %v, this run wants %v", ck.Techniques, want)
	}
	for i := range want {
		if want[i] != ck.Techniques[i] {
			return fmt.Errorf("study checkpoint ran techniques %v, this run wants %v", ck.Techniques, want)
		}
	}
	if ck.WithMaple != cfg.WithMaple {
		return errors.New("study checkpoint and this run disagree on -maple")
	}
	return nil
}

func (ck *Checkpoint) validate() error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("format version %d, this build reads version %d", ck.Version, CheckpointVersion)
	}
	for _, name := range ck.Techniques {
		if _, ok := techByName(name); !ok {
			return fmt.Errorf("unknown technique %q", name)
		}
	}
	return nil
}

// Save writes the checkpoint atomically and durably (temp file, fsync,
// rename, parent-directory fsync), mirroring explore.Checkpoint.Save.
func (ck *Checkpoint) Save(path string) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return fmt.Errorf("study checkpoint: encode: %w", err)
	}
	data = append(data, '\n')
	if err := fsatomic.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("study checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a study checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("study checkpoint: %w", err)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("study checkpoint %s: corrupt or truncated: %v", path, err)
	}
	if err := ck.validate(); err != nil {
		return nil, fmt.Errorf("study checkpoint %s: %w", path, err)
	}
	return ck, nil
}
