package report

import (
	"fmt"
	"strings"

	"sctbench/internal/study"
)

// SwarmCSVHeader is the column list of SwarmCSVRow. Rows carry no
// timestamps or durations: given the same seeds (and corpus starting
// state) the whole CSV is byte-identical across runs, which the CI swarm
// smoke diffs directly.
const SwarmCSVHeader = "bench_id,bench,suite,technique,bound,seed,racy,found,kind,first,schedules,executions,complete,limit_hit,replays,probes,corpus_hit,status\n"

// SwarmCSVRow renders one swarm cell as a single CSV row matching
// SwarmCSVHeader. A skipped cell (nil Result — the sweep was truncated
// before it started) renders with zeroed counts and status "skipped".
func SwarmCSVRow(c *study.SwarmCell) string {
	res := c.Result
	if res == nil {
		return fmt.Sprintf("%d,%s,%s,%s,%d,%d,0,false,,0,0,0,false,false,0,0,false,skipped\n",
			c.Bench.ID, c.Bench.Name, c.Bench.Suite, c.Technique, c.Bound, c.Seed)
	}
	kind := ""
	if res.Failure != nil {
		kind = res.Failure.Kind.String()
	}
	return fmt.Sprintf("%d,%s,%s,%s,%d,%d,%d,%v,%s,%d,%d,%d,%v,%v,%d,%d,%v,%s\n",
		c.Bench.ID, c.Bench.Name, c.Bench.Suite, c.Technique, c.Bound, c.Seed,
		c.Racy, res.BugFound, kind, res.SchedulesToFirstBug, res.Schedules,
		res.Executions, res.Complete, res.LimitHit,
		res.CorpusReplays, res.CorpusProbes, res.CorpusHit, res.Stopped)
}

// SwarmCSV renders the consolidated Table-3-style sweep CSV: header plus
// one row per cell, in the canonical order RunSwarm returns.
func SwarmCSV(cells []*study.SwarmCell) string {
	var b strings.Builder
	b.WriteString(SwarmCSVHeader)
	for _, c := range cells {
		b.WriteString(SwarmCSVRow(c))
	}
	return b.String()
}
