package vthread

import "fmt"

// FailureKind classifies the bug classes of the study (§5: "Bugs are
// deadlocks, crashes or assertion failures (including those that identify
// incorrect output)").
type FailureKind int

const (
	// FailAssert is an assertion failure, including output-checker failures.
	FailAssert FailureKind = iota
	// FailDeadlock is a global deadlock: no thread enabled, some blocked.
	FailDeadlock
	// FailCrash is a modelled memory-safety crash: double unlock, use of a
	// destroyed object, out-of-bounds access with checking enabled.
	FailCrash
)

// String returns the human-readable kind.
func (k FailureKind) String() string {
	switch k {
	case FailAssert:
		return "assertion"
	case FailDeadlock:
		return "deadlock"
	case FailCrash:
		return "crash"
	}
	return "unknown"
}

// Failure describes a bug exposed by an execution.
type Failure struct {
	// Kind classifies the failure.
	Kind FailureKind
	// Thread is the thread that triggered the failure (for deadlocks, the
	// lowest-id blocked thread).
	Thread ThreadID
	// Message is a human-readable description from the failing check.
	Message string
}

// Error implements the error interface so failures flow naturally through
// test helpers.
func (f *Failure) Error() string {
	return fmt.Sprintf("%s in T%d: %s", f.Kind, f.Thread, f.Message)
}
