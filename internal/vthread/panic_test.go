package vthread

import (
	"strings"
	"testing"
)

// panicClosureProgram is a two-thread closure program whose worker panics
// after a visible operation, so the panic happens mid-schedule with a
// non-empty trace behind it.
func panicClosureProgram(t *Thread) {
	v := t.NewVar("v", 0)
	w := t.Spawn(func(u *Thread) {
		v.Store(u, 1)
		panic("worker exploded")
	})
	v.Store(t, 2)
	t.Join(w)
}

// cleanClosureProgram is a small program that must keep running cleanly on
// an executor that just contained a panic.
func cleanClosureProgram(t *Thread) {
	v := t.NewVar("v", 0)
	w := t.Spawn(func(u *Thread) { v.Add(u, 1) })
	v.Add(t, 1)
	t.Join(w)
	t.Assert(v.Load(t) == 2, "lost update: %d", v.Load(t))
}

// compiledPanicProgram builds the flat-engine counterpart: a worker whose
// Store operand panics.
func compiledPanicProgram() *CompiledProgram {
	p := NewBuilder()
	v := p.Var("v", 0)
	wk := p.Body(0, 0)
	wk.Store(v, func(t *Thread) int { panic("operand exploded") })
	mn := p.Main()
	w := mn.Spawn(wk)
	mn.Store(v, 2)
	mn.Join(w)
	return p.Build()
}

func compiledCleanProgram() *CompiledProgram {
	p := NewBuilder()
	v := p.Var("v", 0)
	wk := p.Body(0, 0)
	wk.AddVar(v, 1)
	mn := p.Main()
	w := mn.Spawn(wk)
	mn.AddVar(v, 1)
	mn.Join(w)
	c := mn.Load(v)
	mn.Assert(func(t *Thread) bool { return t.Reg(c) == 2 }, "lost update")
	return p.Build()
}

func checkPanicOutcome(t *testing.T, out *Outcome, wantMsg string) {
	t.Helper()
	if out.Failure == nil {
		t.Fatal("panicking program reported no failure")
	}
	if out.Failure.Kind != FailPanic {
		t.Fatalf("failure kind %v, want panic", out.Failure.Kind)
	}
	if !strings.Contains(out.Failure.Message, wantMsg) {
		t.Fatalf("failure message %q does not mention %q", out.Failure.Message, wantMsg)
	}
	if len(out.Trace) == 0 {
		t.Fatal("panic outcome lost its trace")
	}
}

// TestPanicContainedReferenceEngine: a panic in a closure body becomes a
// FailPanic failure with the trace intact, and the same pooled Executor
// keeps completing clean runs afterwards (goroutine-reuse regression).
func TestPanicContainedReferenceEngine(t *testing.T) {
	ex := NewExecutor(Options{Chooser: RoundRobin()})
	defer ex.Close()
	for round := 0; round < 3; round++ {
		out := ex.Run(Program(panicClosureProgram))
		checkPanicOutcome(t, out, "worker exploded")
		clean := ex.Run(Program(cleanClosureProgram))
		if clean.Failure != nil {
			t.Fatalf("round %d: clean run after contained panic failed: %v", round, clean.Failure)
		}
	}
}

// TestPanicContainedFlatEngine: same contract for a compiled-instruction
// operand on the flat engine, plus the bridge path (NoFlatEngine) that
// runs the compiled program on the goroutine reference engine.
func TestPanicContainedFlatEngine(t *testing.T) {
	for _, dbg := range []Debug{{}, {NoFlatEngine: true}} {
		ex := NewExecutor(Options{Chooser: RoundRobin(), Debug: dbg})
		for round := 0; round < 3; round++ {
			out := ex.Run(compiledPanicProgram())
			checkPanicOutcome(t, out, "operand exploded")
			clean := ex.Run(compiledCleanProgram())
			if clean.Failure != nil {
				t.Fatalf("debug %+v round %d: clean run after contained panic failed: %v",
					dbg, round, clean.Failure)
			}
		}
		ex.Close()
	}
}

// TestPanicWitnessReplays: the trace of a contained panic replays to the
// same FailPanic verdict on both engines — a panic is a replayable bug.
func TestPanicWitnessReplays(t *testing.T) {
	ex := NewExecutor(Options{Chooser: RoundRobin()})
	defer ex.Close()
	out := ex.Run(compiledPanicProgram())
	checkPanicOutcome(t, out, "operand exploded")
	witness := out.Trace.Clone()

	rep := ex.RunWith(NewReplay(witness), nil, compiledPanicProgram())
	checkPanicOutcome(t, rep, "operand exploded")
	if !rep.Trace.Equal(witness) {
		t.Fatalf("replay diverged: %v vs %v", rep.Trace, witness)
	}

	exRef := NewExecutor(Options{Debug: Debug{NoFlatEngine: true}})
	defer exRef.Close()
	ref := exRef.RunWith(NewReplay(witness), nil, compiledPanicProgram())
	checkPanicOutcome(t, ref, "operand exploded")
	if !ref.Trace.Equal(witness) {
		t.Fatalf("reference replay diverged: %v vs %v", ref.Trace, witness)
	}
}

// TestPanicInSpawnPrefix: a panic before the thread's first visible
// operation unwinds through the eager spawn prefix (the parkTo route) and
// is still contained.
func TestPanicInSpawnPrefix(t *testing.T) {
	ex := NewExecutor(Options{Chooser: RoundRobin()})
	defer ex.Close()
	prog := func(t *Thread) {
		w := t.Spawn(func(u *Thread) { panic("prefix exploded") })
		t.Join(w)
	}
	out := ex.Run(Program(prog))
	if out.Failure == nil || out.Failure.Kind != FailPanic {
		t.Fatalf("prefix panic not contained: %+v", out.Failure)
	}
	clean := ex.Run(Program(cleanClosureProgram))
	if clean.Failure != nil {
		t.Fatalf("clean run after prefix panic failed: %v", clean.Failure)
	}
}
