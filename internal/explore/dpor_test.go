package explore

import (
	"testing"
	"testing/quick"

	"sctbench/internal/bench"
	"sctbench/internal/sched"
	"sctbench/internal/vthread"
)

// TestDPORCollapsesIndependentThreads: on fully independent threads every
// interleaving is equivalent, so DPOR must explore exactly one schedule —
// and, unlike sleep-set DFS (which still *starts* the redundant runs and
// aborts them), it must never need a second execution: no race, no
// backtrack point.
func TestDPORCollapsesIndependentThreads(t *testing.T) {
	r := RunDPOR(Config{Program: independentWorkers(3, 2), Limit: 50000})
	if !r.Complete {
		t.Fatal("DPOR did not complete the reduced space")
	}
	if r.Schedules != 1 {
		t.Errorf("DPOR explored %d schedules of fully independent threads, want 1", r.Schedules)
	}
	if r.Executions != 1 {
		t.Errorf("DPOR used %d executions, want 1 (no races, no backtrack points)", r.Executions)
	}
	if r.BranchesPruned == 0 {
		t.Error("DPOR reports no pruned branches despite collapsing the space")
	}
}

// TestDPORPreservesBugFinding: the Figure 1 bug must be found, with the
// space complete and no more schedules than sleep-set DFS (whose explored
// set DPOR further thins).
func TestDPORPreservesBugFinding(t *testing.T) {
	dfs := RunDFS(Config{Program: figure1()})
	ss := RunSleepSetDFS(Config{Program: figure1()})
	dp := RunDPOR(Config{Program: figure1()})
	if !dp.BugFound {
		t.Fatal("DPOR missed the Figure 1 bug")
	}
	if !dp.Complete {
		t.Fatal("DPOR did not exhaust the reduced space")
	}
	if dp.Failure.Kind != dfs.Failure.Kind {
		t.Errorf("failure kind differs: DPOR %v, DFS %v", dp.Failure.Kind, dfs.Failure.Kind)
	}
	if dp.Schedules > ss.Schedules || ss.Schedules > dfs.Schedules {
		t.Errorf("no reduction chain: DPOR %d, sleep-set %d, DFS %d schedules",
			dp.Schedules, ss.Schedules, dfs.Schedules)
	}
	// The witness must actually reproduce the failure.
	if out := replayWitness(figure1(), dp.Witness); out == nil || out.Failure == nil {
		t.Error("DPOR witness does not replay to a failure")
	}
}

// TestDPORFindsDeadlocks mirrors the sleep-set deadlock test.
func TestDPORFindsDeadlocks(t *testing.T) {
	var program vthread.Program = func(t0 *vthread.Thread) {
		a := t0.NewMutex("a")
		b := t0.NewMutex("b")
		x := t0.Spawn(func(tw *vthread.Thread) {
			a.Lock(tw)
			b.Lock(tw)
			b.Unlock(tw)
			a.Unlock(tw)
		})
		y := t0.Spawn(func(tw *vthread.Thread) {
			b.Lock(tw)
			a.Lock(tw)
			a.Unlock(tw)
			b.Unlock(tw)
		})
		t0.Join(x)
		t0.Join(y)
	}
	dp := RunDPOR(Config{Program: program})
	if !dp.BugFound || dp.Failure.Kind != vthread.FailDeadlock {
		t.Fatalf("DPOR missed the deadlock: found=%v failure=%v", dp.BugFound, dp.Failure)
	}
}

// TestPropertyDPORSoundAndReducing: on random small programs, DPOR
// explores at most sleep-set DFS's schedule count (which is at most
// DFS's), agrees with DFS on the bug verdict, and stays complete when DFS
// is.
func TestPropertyDPORSoundAndReducing(t *testing.T) {
	f := func(shape uint32) bool {
		dfs := RunDFS(Config{Program: genProgram(shape), Limit: 20000})
		if !dfs.Complete {
			return true
		}
		ss := RunSleepSetDFS(Config{Program: genProgram(shape), Limit: 20000})
		dp := RunDPOR(Config{Program: genProgram(shape), Limit: 20000})
		if !dp.Complete {
			t.Logf("shape %d: DPOR incomplete where DFS completed", shape)
			return false
		}
		if dp.Schedules > ss.Schedules {
			t.Logf("shape %d: DPOR %d > sleep-set %d", shape, dp.Schedules, ss.Schedules)
			return false
		}
		if dp.BugFound != dfs.BugFound {
			t.Logf("shape %d: bug disagreement DPOR=%v DFS=%v", shape, dp.BugFound, dfs.BugFound)
			return false
		}
		if dp.Executions > dfs.Executions {
			t.Logf("shape %d: DPOR executions %d > DFS %d", shape, dp.Executions, dfs.Executions)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// replayWitness replays a witness schedule on a fresh World, returning
// nil when the replay diverges.
func replayWitness(program vthread.Runnable, witness sched.Schedule) *vthread.Outcome {
	rep := vthread.NewReplay(witness.Clone())
	out := vthread.NewWorld(vthread.Options{Chooser: rep}).Run(program)
	if rep.Failed() {
		return nil
	}
	return out
}

// dporEquivPrograms are the SCTBench programs the DFS-vs-DPOR equivalence
// suite runs on: the paper-example-scale CS benchmarks whose full space
// DFS can enumerate within the limit.
var dporEquivPrograms = []string{
	"CS.account_bad",
	"CS.lazy01_bad",
	"CS.sync01_bad",
	"CS.arithmetic_prog_bad",
}

// TestDPOREquivalenceOnSCTBench: the tentpole acceptance check. On real CS
// benchmarks DPOR must reach the same buggy/terminal verdict and an
// equally valid first-bug witness as DFS, sequentially and on the worker
// pool, while exploring no more schedules.
func TestDPOREquivalenceOnSCTBench(t *testing.T) {
	for _, name := range dporEquivPrograms {
		b := bench.ByName(name)
		if b == nil {
			t.Fatalf("unknown benchmark %s", name)
		}
		cfg := Config{Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps, Limit: 20000}
		dfs := RunDFS(cfg)
		seq := RunDPOR(cfg)
		if seq.BugFound != dfs.BugFound {
			t.Errorf("%s: verdict differs: DPOR=%v DFS=%v", name, seq.BugFound, dfs.BugFound)
			continue
		}
		if dfs.BugFound && seq.Failure.Kind != dfs.Failure.Kind {
			t.Errorf("%s: failure kind differs: DPOR %v, DFS %v", name, seq.Failure.Kind, dfs.Failure.Kind)
		}
		if !dfs.LimitHit && seq.Schedules > dfs.Schedules {
			t.Errorf("%s: DPOR explored more than DFS: %d > %d", name, seq.Schedules, dfs.Schedules)
		}
		if seq.BugFound {
			if out := replayWitness(b.New(), seq.Witness); out == nil || out.Failure == nil {
				t.Errorf("%s: DPOR witness does not replay to a failure", name)
			}
		}

		for _, workers := range []int{1, 8} {
			pcfg := cfg
			pcfg.Workers = workers
			par := RunDPOR(pcfg)
			if par.BugFound != seq.BugFound || par.Complete != seq.Complete {
				t.Errorf("%s workers=%d: verdict (bug=%v complete=%v) differs from sequential (bug=%v complete=%v)",
					name, workers, par.BugFound, par.Complete, seq.BugFound, seq.Complete)
			}
			// Workers=1 takes the sequential path: counts are bit-identical
			// by construction. (Under actual stealing the merge does not
			// guarantee identical counts for DPOR; see parallel.go.)
			if workers == 1 && (par.Schedules != seq.Schedules || par.Executions != seq.Executions ||
				par.AbortedExecutions != seq.AbortedExecutions || par.TotalSteps != seq.TotalSteps) {
				t.Errorf("%s workers=1: counts differ from sequential: %+v vs %+v", name, par, seq)
			}
			if par.BugFound {
				if out := replayWitness(b.New(), par.Witness); out == nil || out.Failure == nil {
					t.Errorf("%s workers=%d: witness does not replay to a failure", name, workers)
				}
			}
		}
	}
}

// TestDPORReductionOnSCTBench pins the acceptance criterion: on CS-suite
// programs DPOR explores at least 3x fewer executions than DFS with the
// identical bug verdict.
func TestDPORReductionOnSCTBench(t *testing.T) {
	reduced := 0
	for _, name := range dporEquivPrograms {
		b := bench.ByName(name)
		cfg := Config{Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps, Limit: 20000}
		dfs := RunDFS(cfg)
		dp := RunDPOR(cfg)
		if dp.BugFound != dfs.BugFound {
			t.Errorf("%s: verdict differs: DPOR=%v DFS=%v", name, dp.BugFound, dfs.BugFound)
			continue
		}
		t.Logf("%s: DFS %d execs / %d steps, DPOR %d execs / %d steps (%d aborted, %d branches pruned)",
			name, dfs.Executions, dfs.TotalSteps, dp.Executions, dp.TotalSteps,
			dp.AbortedExecutions, dp.BranchesPruned)
		if dfs.Executions >= 3*dp.Executions {
			reduced++
		}
	}
	if reduced < 2 {
		t.Errorf("DPOR achieved a 3x execution reduction on only %d programs, want >= 2", reduced)
	}
}

// TestParallelDPORRaceStress drives parallel DPOR with executor reuse
// under the race detector: many worker goroutines, stealing forced by a
// program wide enough to donate from.
func TestParallelDPORRaceStress(t *testing.T) {
	for i := 0; i < 3; i++ {
		r := RunDPOR(Config{Program: independentWorkers(4, 2), Limit: 50000, Workers: 8})
		if r.BugFound {
			t.Fatalf("iteration %d: spurious bug: %v", i, r.Failure)
		}
		if !r.Complete {
			t.Fatalf("iteration %d: incomplete", i)
		}
	}
	b := bench.ByName("CS.account_bad")
	for i := 0; i < 3; i++ {
		r := RunDPOR(Config{Program: b.New(), BoundsCheck: b.BoundsCheck,
			MaxSteps: b.MaxSteps, Limit: 20000, Workers: 8})
		if !r.BugFound {
			t.Fatalf("iteration %d: parallel DPOR missed the CS.account_bad bug", i)
		}
	}
}

// TestSleepSetAbortCutsWork: the chooser-abort conversion must leave
// sleep-set DFS counting the same schedules while executing strictly fewer
// total steps than plain DFS on a program with heavy redundancy.
func TestSleepSetAbortCutsWork(t *testing.T) {
	dfs := RunDFS(Config{Program: independentWorkers(3, 2), Limit: 50000})
	ss := RunSleepSetDFS(Config{Program: independentWorkers(3, 2), Limit: 50000})
	if ss.AbortedExecutions == 0 {
		t.Error("sleep-set DFS aborted no executions on a fully redundant space")
	}
	if ss.AbortedExecutions >= ss.Executions {
		t.Errorf("aborted %d of %d executions: counted schedules must complete", ss.AbortedExecutions, ss.Executions)
	}
	if ss.TotalSteps >= dfs.TotalSteps {
		t.Errorf("abort saved nothing: sleep-set %d steps vs DFS %d", ss.TotalSteps, dfs.TotalSteps)
	}
	if ss.BranchesPruned == 0 {
		t.Error("sleep-set DFS reports no pruned branches")
	}
}

// TestDPORSpawnEdgesSuppressFalseRaces pins the spawn happens-before edge
// of the race analysis: a parent's pre-spawn write and its child's write
// to the same variable are causally ordered, never a race, so a chain of
// parent-then-child accesses must still collapse to a single execution.
func TestDPORSpawnEdgesSuppressFalseRaces(t *testing.T) {
	var program vthread.Program = func(t0 *vthread.Thread) {
		v := t0.NewVar("v", 0)
		v.Store(t0, 1)
		c := t0.Spawn(func(tc *vthread.Thread) {
			v.Store(tc, 2)
			g := tc.Spawn(func(tg *vthread.Thread) {
				v.Store(tg, 3) // grandchild: ordered via the spawn chain
			})
			tc.Join(g)
		})
		t0.Join(c)
	}
	r := RunDPOR(Config{Program: program})
	if !r.Complete || r.BugFound {
		t.Fatalf("complete=%v bug=%v, want complete and bug-free", r.Complete, r.BugFound)
	}
	if r.Executions != 1 {
		t.Errorf("DPOR used %d executions on a fully spawn-ordered program, want 1 (spawn edges must suppress the false races)", r.Executions)
	}
}

// TestDPORJoinEdgesSuppressFalseRaces pins the join happens-before edge:
// a parent's post-join reads are ordered after the joined children's
// writes, so independent children plus a join-then-check parent must
// still collapse to a single execution.
func TestDPORJoinEdgesSuppressFalseRaces(t *testing.T) {
	var program vthread.Program = func(t0 *vthread.Thread) {
		x := t0.NewVar("x", 0)
		y := t0.NewVar("y", 0)
		a := t0.Spawn(func(ta *vthread.Thread) { x.Store(ta, 1) })
		b := t0.Spawn(func(tb *vthread.Thread) { y.Store(tb, 1) })
		t0.Join(a)
		t0.Join(b)
		t0.Assert(x.Load(t0) == 1 && y.Load(t0) == 1, "lost writes")
	}
	r := RunDPOR(Config{Program: program})
	if !r.Complete || r.BugFound {
		t.Fatalf("complete=%v bug=%v, want complete and bug-free", r.Complete, r.BugFound)
	}
	if r.Executions != 1 {
		t.Errorf("DPOR used %d executions on independent children behind a join, want 1 (join edges must suppress the false races)", r.Executions)
	}
}
