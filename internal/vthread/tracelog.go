package vthread

import (
	"fmt"
	"strings"
)

// TraceLogger is an EventSink that renders an execution as a readable
// event log — the per-step view of a witness that makes a simplified
// counterexample actually debuggable. Plug it into a replay:
//
//	log := vthread.NewTraceLogger()
//	w := vthread.NewWorld(vthread.Options{Chooser: replay, Sink: log})
//	w.Run(program)
//	fmt.Print(log.String())
type TraceLogger struct {
	lines []string
}

var _ EventSink = (*TraceLogger)(nil)

// NewTraceLogger creates an empty logger.
func NewTraceLogger() *TraceLogger { return &TraceLogger{} }

// Access implements EventSink.
func (l *TraceLogger) Access(t ThreadID, key string, write bool) {
	dir := "read "
	if write {
		dir = "write"
	}
	l.lines = append(l.lines, fmt.Sprintf("T%-2d %s %s", t, dir, key))
}

// Acquire implements EventSink.
func (l *TraceLogger) Acquire(t ThreadID, key string) {
	if strings.HasPrefix(key, "thread/") {
		l.lines = append(l.lines, fmt.Sprintf("T%-2d joined/started %s", t, key))
		return
	}
	l.lines = append(l.lines, fmt.Sprintf("T%-2d acquire %s", t, key))
}

// Release implements EventSink.
func (l *TraceLogger) Release(t ThreadID, key string) {
	if strings.HasPrefix(key, "thread/") {
		l.lines = append(l.lines, fmt.Sprintf("T%-2d exit/spawn %s", t, key))
		return
	}
	l.lines = append(l.lines, fmt.Sprintf("T%-2d release %s", t, key))
}

// Spawned implements EventSink.
func (l *TraceLogger) Spawned(parent, child ThreadID) {
	l.lines = append(l.lines, fmt.Sprintf("T%-2d spawn T%d", parent, child))
}

// Len returns the number of logged events.
func (l *TraceLogger) Len() int { return len(l.lines) }

// String renders the log, one event per line.
func (l *TraceLogger) String() string {
	return strings.Join(l.lines, "\n") + "\n"
}

// Tee fans events out to several sinks (for example a race detector and a
// trace logger on the same execution).
func Tee(sinks ...EventSink) EventSink { return teeSink(sinks) }

type teeSink []EventSink

func (s teeSink) Access(t ThreadID, key string, write bool) {
	for _, x := range s {
		x.Access(t, key, write)
	}
}
func (s teeSink) Acquire(t ThreadID, key string) {
	for _, x := range s {
		x.Acquire(t, key)
	}
}
func (s teeSink) Release(t ThreadID, key string) {
	for _, x := range s {
		x.Release(t, key)
	}
}
func (s teeSink) Spawned(parent, child ThreadID) {
	for _, x := range s {
		x.Spawned(parent, child)
	}
}
