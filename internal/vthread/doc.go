package vthread

// Design notes for maintainers — the handoff protocol in one place.
//
// # Serialised execution
//
// One World = one execution. Each virtual thread is a goroutine, but the
// protocol guarantees at most one runs at any instant:
//
//	world loop                         thread goroutine
//	----------                         ----------------
//	compute enabled set
//	chooser picks thread T
//	T.gate <- struct{}{}       ──────▶ returns from awaitGrant
//	<-w.parked  (blocks)               executes its pending visible op
//	                                   runs invisible ops…
//	                                   …until the next visible op:
//	                                   pending = op; state = parked
//	                           ◀────── parkTo <- parkKind
//	(loop)
//
// Because the world blocks on <-w.parked while a thread runs, and threads
// block on <-gate otherwise, no locks are needed anywhere in the
// substrate: every shared field is accessed by exactly one goroutine at a
// time, with happens-before edges provided by the two channels. `go test
// -race ./internal/vthread` runs clean.
//
// # Spawn and the private first park
//
// Spawn runs the child's invisible prefix eagerly (newThread sends the
// first grant itself and consumes the child's first park from a private
// channel). This keeps "a thread's first schedulable step is its first
// visible operation" — matching the §2 step model — and avoids a spurious
// start pseudo-op inflating schedule counts. The private channel matters:
// during a spawn the world is concurrently waiting for the *parent's*
// park, and must not steal the child's.
//
// # Teardown and the worker pool
//
// When the outcome is decided (terminal, deadlock, failure, step limit),
// abortRemaining marks every live thread killed and sends one last grant
// on its gate; the thread's receive returns, it panics with killSignal,
// and the recover in runBody unwinds it without touching shared state.
// The gate is deliberately *sent to*, never closed: under an Executor the
// same Thread struct, gate and goroutine serve the next execution. A run
// ends only after wg.Wait sees every body finish, so studies running
// millions of executions cannot leak goroutines (tested).
//
// A pooled thread's goroutine is workerLoop: it receives one Program per
// execution on t.jobs, runs it via runBody, signals the per-run WaitGroup
// and parks again. newThread re-initialises all per-execution Thread
// fields before sending on t.jobs, and the channel send/receive pair
// provides the happens-before edge that makes the reuse race-free. A
// plain World spawns runOne instead — same runBody, goroutine exits after
// one body.
//
// # Chooser-initiated abort
//
// A Chooser may end an execution early by calling ctx.Abort() inside
// Choose. The world loop then breaks out before performing another step
// and reuses the normal teardown: abortRemaining kills the surviving
// threads by grant, the outcome carries Aborted=true, Failure=nil and the
// executed prefix as its Trace, and under an Executor the same pool
// serves the next run. Abort is idempotent within one Choose call, legal
// at step 0 (nothing has run; the trace is empty), and the thread id
// returned by the aborting Choose is ignored — it need not be enabled.
// This is the pruning hook of the partial-order-reduction engines
// (internal/explore/sleepset.go and dpor.go): a run whose remainder is
// provably redundant is cut short instead of executed to termination.
//
// # Determinism contract
//
// Programs under test must be deterministic modulo scheduling: no Go
// maps iterated for control flow, no time, no randomness, no I/O. Given
// that, a recorded Schedule replays to the identical trace, costs and
// failure — the foundation of stateless model checking (§2 of the paper).
