package vthread

import "testing"

func TestTryLock(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		m := t0.NewMutex("m")
		t0.Assert(m.TryLock(t0), "TryLock on free mutex failed")
		t0.Assert(m.HeldBy(t0), "HeldBy false after TryLock")
		w := t0.Spawn(func(tw *Thread) {
			tw.Assert(!m.TryLock(tw), "TryLock on held mutex succeeded")
		})
		t0.Join(w)
		m.Unlock(t0)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

func TestTryLockOnDestroyedCrashes(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		m := t0.NewMutex("m")
		m.Destroy(t0)
		m.TryLock(t0)
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash", out.Failure)
	}
}

func TestCondWaitWithoutMutexCrashes(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		m := t0.NewMutex("m")
		c := t0.NewCond("c")
		c.Wait(t0, m) // not holding m
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash", out.Failure)
	}
}

func TestDestroyHeldMutexCrashes(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		m := t0.NewMutex("m")
		m.Lock(t0)
		m.Destroy(t0)
	})
	if out.Failure == nil || out.Failure.Kind != FailCrash {
		t.Fatalf("Failure = %v, want crash", out.Failure)
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	rounds := 0
	out := runRR(t, func(t0 *Thread) {
		b := t0.NewBarrier("b", 2)
		w := t0.Spawn(func(tw *Thread) {
			for i := 0; i < 3; i++ {
				b.Arrive(tw)
			}
		})
		for i := 0; i < 3; i++ {
			b.Arrive(t0)
			rounds++
		}
		t0.Join(w)
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rounds)
	}
}

func TestSemCount(t *testing.T) {
	out := runRR(t, func(t0 *Thread) {
		s := t0.NewSem("s", 2)
		t0.Assert(s.Count() == 2, "count=%d", s.Count())
		s.P(t0)
		t0.Assert(s.Count() == 1, "count=%d", s.Count())
		s.V(t0)
		t0.Assert(s.Count() == 2, "count=%d", s.Count())
	})
	if out.Buggy() {
		t.Fatalf("unexpected failure: %v", out.Failure)
	}
}

func TestThreadNames(t *testing.T) {
	runRR(t, func(t0 *Thread) {
		if t0.Name() != "T0" {
			t.Errorf("Name = %q, want T0", t0.Name())
		}
		t0.SetName("main")
		if t0.Name() != "main" {
			t.Errorf("Name = %q after SetName", t0.Name())
		}
		if t0.World() == nil {
			t.Error("World() = nil")
		}
	})
}

func TestFailureError(t *testing.T) {
	f := &Failure{Kind: FailDeadlock, Thread: 2, Message: "stuck"}
	if got := f.Error(); got != "deadlock in T2: stuck" {
		t.Errorf("Error() = %q", got)
	}
	for kind, want := range map[FailureKind]string{
		FailAssert:      "assertion",
		FailDeadlock:    "deadlock",
		FailCrash:       "crash",
		FailureKind(99): "unknown",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q, want %q", kind, kind.String(), want)
		}
	}
}

func TestArrayLenAndKeys(t *testing.T) {
	runRR(t, func(t0 *Thread) {
		a := t0.NewArray("arr", 5)
		if a.Len() != 5 {
			t.Errorf("Len = %d", a.Len())
		}
		v := t0.NewVar("x", 1)
		if v.Key() != "var/x" {
			t.Errorf("Key = %q", v.Key())
		}
	})
}

func TestOpKindStrings(t *testing.T) {
	// Every op kind must render; "unknown" means a missing case.
	for k := opSpawn; k <= opWUnlock; k++ {
		if k.String() == "unknown" {
			t.Errorf("op kind %d has no name", int(k))
		}
	}
}

func TestChooserFuncAdapter(t *testing.T) {
	called := false
	ch := ChooserFunc(func(ctx Context) ThreadID {
		called = true
		return ctx.Enabled[0]
	})
	w := NewWorld(Options{Chooser: ch})
	w.Run(Program(func(t0 *Thread) { t0.Yield() }))
	if !called {
		t.Error("ChooserFunc not invoked")
	}
}

func TestWorldRunTwicePanics(t *testing.T) {
	w := NewWorld(Options{Chooser: RoundRobin()})
	w.Run(Program(func(t0 *Thread) {}))
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	w.Run(Program(func(t0 *Thread) {}))
}

func TestMissingChooserPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld without chooser did not panic")
		}
	}()
	NewWorld(Options{})
}

func TestInvalidChoicePanics(t *testing.T) {
	bad := ChooserFunc(func(ctx Context) ThreadID { return 99 })
	w := NewWorld(Options{Chooser: bad})
	defer func() {
		if recover() == nil {
			t.Error("invalid choice did not panic")
		}
	}()
	w.Run(Program(func(t0 *Thread) { t0.Yield() }))
}
