package vthread

// Footprint is the set of shared-object keys a pending operation touches.
// It generalises the former two-element array ([2]string) to N-ary
// footprints so multi-object operations — a 4-way Select touches all four
// channels — can state what they commute with.
//
// Representation: two inline slots cover every non-select operation (the
// widest classical op, a condvar wait, touches the condvar and the mutex),
// so the common case stays a flat value with no pointer chasing and no
// allocation; operations with more objects carry the tail in an overflow
// slice that the *operation* owns and builds once (Select builds it when
// the op is registered, not per PendingOf call), which keeps the
// 7-allocs/execution hot path of the pooled Executor intact. A Footprint
// must be treated as immutable once published in a PendingInfo: engines
// retain copies across executions, and copies share the overflow slice.
type Footprint struct {
	n      int
	o0, o1 string
	ext    []string // objects 2..n-1; immutable once published
}

// NewFootprint builds a footprint over the given object keys. Exported for
// tests and choosers that synthesise PendingInfo values; substrate-internal
// sites use add/footprintOverKeys to avoid the variadic allocation.
func NewFootprint(keys ...string) Footprint {
	var f Footprint
	for _, k := range keys {
		f.add(k)
	}
	return f
}

// footprintOverKeys wraps an existing key slice as a footprint without
// copying. The caller must never mutate keys afterwards.
func footprintOverKeys(keys []string) Footprint {
	f := Footprint{n: len(keys)}
	if len(keys) > 0 {
		f.o0 = keys[0]
	}
	if len(keys) > 1 {
		f.o1 = keys[1]
	}
	if len(keys) > 2 {
		f.ext = keys[2:]
	}
	return f
}

// add appends one object key. Only the first two keys stay inline; later
// ones spill to the overflow slice (allocating, so hot paths with >2
// objects should pre-build the key slice and use footprintOverKeys).
func (f *Footprint) add(key string) {
	switch f.n {
	case 0:
		f.o0 = key
	case 1:
		f.o1 = key
	default:
		f.ext = append(f.ext, key)
	}
	f.n++
}

// Len returns the number of objects in the footprint.
func (f Footprint) Len() int { return f.n }

// Obj returns the i-th object key, 0 <= i < Len().
func (f Footprint) Obj(i int) string {
	switch i {
	case 0:
		return f.o0
	case 1:
		return f.o1
	default:
		return f.ext[i-2]
	}
}

// Contains reports whether the footprint includes key.
func (f Footprint) Contains(key string) bool {
	for i := 0; i < f.n; i++ {
		if f.Obj(i) == key {
			return true
		}
	}
	return false
}

// Overlaps reports whether the two footprints share any object.
func (f Footprint) Overlaps(o Footprint) bool {
	for i := 0; i < f.n; i++ {
		if o.Contains(f.Obj(i)) {
			return true
		}
	}
	return false
}
