// Corpus replay benchmarks: cold executions-to-first-bug versus a
// corpus-seeded rerun that replays the stored witness. `make bench-json`
// records them as BENCH_swarm.json; the replay_execs_to_bug metric is the
// paper-independent payoff of the schedule corpus — a rerun reproduces
// every known bug in a handful of executions instead of a search.
package sctbench

import (
	"testing"

	"sctbench/internal/bench"
	"sctbench/internal/corpus"
	"sctbench/internal/explore"
)

// swarmReplayCells are (benchmark, technique) pairs whose cold search is
// expensive enough for the replay ratio to mean something.
var swarmReplayCells = []struct {
	bench string
	tech  explore.Technique
}{
	{"CS.account_bad", explore.IPB},
	{"CS.account_bad", explore.DFS},
	{"CS.queue_bad", explore.IPB},
	{"CS.queue_bad", explore.IDB},
}

// BenchmarkSwarmCorpusReplay runs, per iteration, a cold exploration into
// a fresh corpus followed by a corpus-seeded rerun, and reports both
// executions-to-first-bug figures plus the speedup factor.
func BenchmarkSwarmCorpusReplay(b *testing.B) {
	for _, cell := range swarmReplayCells {
		bm := bench.ByName(cell.bench)
		if bm == nil {
			b.Fatalf("unknown benchmark %s", cell.bench)
		}
		b.Run(cell.bench+"/"+cell.tech.String(), func(b *testing.B) {
			var coldExecs, warmExecs int
			for i := 0; i < b.N; i++ {
				store, err := corpus.Open(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				cfg := explore.Config{
					Program: bm.New(), BoundsCheck: bm.BoundsCheck,
					MaxSteps: bm.MaxSteps, Limit: explore.DefaultLimit,
					Corpus: store, ProgramHash: bm.Hash(),
				}
				cold := explore.Run(cell.tech, cfg)
				if !cold.BugFound {
					b.Fatalf("cold %s/%s missed the bug", cell.bench, cell.tech)
				}
				warm := explore.Run(cell.tech, cfg)
				if !warm.BugFound || !warm.CorpusHit {
					b.Fatalf("warm %s/%s: BugFound=%v CorpusHit=%v, want a stored-witness hit",
						cell.bench, cell.tech, warm.BugFound, warm.CorpusHit)
				}
				coldExecs += cold.Executions
				warmExecs += warm.Executions
			}
			n := float64(b.N)
			b.ReportMetric(float64(coldExecs)/n, "cold_execs_to_bug")
			b.ReportMetric(float64(warmExecs)/n, "replay_execs_to_bug")
			b.ReportMetric(float64(coldExecs)/float64(warmExecs), "speedup_x")
		})
	}
}
