package vthread

// Builder constructs CompiledPrograms: declare shared objects on the
// Builder, emit instructions through per-body Code builders, then Build.
// The API is deliberately positional and Go-hosted — loops over benchmark
// parameters run at build time in plain Go, emitting unrolled instruction
// sequences — so a closure Program translates line for line:
//
//	p := vthread.NewBuilder()
//	mu := p.Mutex("m")
//	v := p.Var("v", 0)
//	worker := p.Body(0, 0)
//	worker.Lock(mu)
//	worker.AddVar(v, 1)
//	worker.Unlock(mu)
//	m := p.Main()
//	h := m.Spawn(worker)
//	m.Join(h)
//	prog := p.Build()
//
// Operand positions accept several Go types, coerced at build time into
// evaluation closures (see the coercion helpers): int literals, Reg, CellH,
// and func(*Thread) int where an integer is expected; ChanH, OReg (holding
// a *Chan, *Timer, *Ticker or *Ctx) and func(*Thread) *Chan where a channel
// is expected; MutexH, OReg and func(*Thread) *Mutex where a mutex is
// expected. Result registers use Reg(-1) ("Discard") to drop a value.

// Discard is the result-register sentinel for "drop this value".
const Discard = Reg(-1)

// Builder accumulates one CompiledProgram. Not safe for concurrent use;
// single-shot (Build may be called once).
type Builder struct {
	cp     *CompiledProgram
	bodies []*Code
	built  bool
}

// NewBuilder creates a program builder with an empty main body (retrieve it
// with Main).
func NewBuilder() *Builder {
	b := &Builder{cp: &CompiledProgram{}}
	b.Body(0, 0) // body 0 = the initial thread
	return b
}

// Main returns the initial thread's body builder.
func (b *Builder) Main() *Code { return b.bodies[0] }

// Body creates a new thread body taking nargs integer arguments (delivered
// in registers Arg(0)..Arg(nargs-1)) and noargs object arguments (object
// registers OArg(0)..OArg(noargs-1)); both are supplied by Spawn.
func (b *Builder) Body(nargs, noargs int) *Code {
	fb := &fbody{nargs: nargs, noargs: noargs, nlocals: nargs, nobjs: noargs, code: &block{}}
	c := &Code{b: b, id: len(b.bodies), fb: fb}
	c.stack = append(c.stack, fb.code)
	b.cp.bodies = append(b.cp.bodies, fb)
	b.bodies = append(b.bodies, c)
	return c
}

// Build freezes the program. The Builder must not be used afterwards.
func (b *Builder) Build() *CompiledProgram {
	if b.built {
		panic("vthread: Builder.Build called twice")
	}
	b.built = true
	for _, c := range b.bodies {
		if len(c.stack) != 1 {
			panic("vthread: Builder.Build with an unclosed block")
		}
	}
	return b.cp
}

// ----- object declarations -----

// Var declares a shared integer (IntVar) with a unique name and initial
// value.
func (b *Builder) Var(name string, init int) VarH {
	b.cp.varSpecs = append(b.cp.varSpecs, nameInit{"var/" + name, init})
	return VarH(len(b.cp.varSpecs) - 1)
}

// Atomic declares a shared atomic integer.
func (b *Builder) Atomic(name string, init int) AtomicH {
	b.cp.atomSpecs = append(b.cp.atomSpecs, nameInit{"atomic/" + name, init})
	return AtomicH(len(b.cp.atomSpecs) - 1)
}

// Array declares a shared integer array of n zeroed elements.
func (b *Builder) Array(name string, n int) ArrayH {
	b.cp.arrSpecs = append(b.cp.arrSpecs, nameInit{"array/" + name, n})
	return ArrayH(len(b.cp.arrSpecs) - 1)
}

// Chan declares a channel with the given capacity (capacity below one is
// rendezvous-like, as NewChan).
func (b *Builder) Chan(name string, capacity int) ChanH {
	b.cp.chanSpecs = append(b.cp.chanSpecs, nameInit{"chan/" + name, capacity})
	return ChanH(len(b.cp.chanSpecs) - 1)
}

// Mutex declares a mutex.
func (b *Builder) Mutex(name string) MutexH {
	b.cp.muNames = append(b.cp.muNames, "mutex/"+name)
	return MutexH(len(b.cp.muNames) - 1)
}

// RWMutex declares a reader/writer lock.
func (b *Builder) RWMutex(name string) RWMutexH {
	b.cp.rwNames = append(b.cp.rwNames, "rwmutex/"+name)
	return RWMutexH(len(b.cp.rwNames) - 1)
}

// Cond declares a condition variable.
func (b *Builder) Cond(name string) CondH {
	b.cp.condNames = append(b.cp.condNames, "cond/"+name)
	return CondH(len(b.cp.condNames) - 1)
}

// Sem declares a counting semaphore with the given initial count.
func (b *Builder) Sem(name string, count int) SemH {
	if count < 0 {
		panic("vthread: negative initial semaphore count")
	}
	b.cp.semSpecs = append(b.cp.semSpecs, nameInit{"sem/" + name, count})
	return SemH(len(b.cp.semSpecs) - 1)
}

// Barrier declares an n-party barrier.
func (b *Builder) Barrier(name string, parties int) BarrierH {
	if parties <= 0 {
		panic("vthread: barrier needs at least one party")
	}
	b.cp.barSpecs = append(b.cp.barSpecs, nameInit{"barrier/" + name, parties})
	return BarrierH(len(b.cp.barSpecs) - 1)
}

// WaitGroup declares a WaitGroup with a zero counter.
func (b *Builder) WaitGroup(name string) WGH {
	b.cp.wgNames = append(b.cp.wgNames, "wg/"+name)
	return WGH(len(b.cp.wgNames) - 1)
}

// Once declares a Once.
func (b *Builder) Once(name string) OnceH {
	b.cp.onceNames = append(b.cp.onceNames, "once/"+name)
	return OnceH(len(b.cp.onceNames) - 1)
}

// Cell declares an invisible shared integer (a plain Go local shared by
// closures, compiled).
func (b *Builder) Cell(init int) CellH {
	b.cp.cellInit = append(b.cp.cellInit, init)
	return CellH(len(b.cp.cellInit) - 1)
}

// Ref declares an object-valued shared reference (promotable under key
// "ref/<name>", like Ref[T]).
func (b *Builder) Ref(name string) RefH {
	b.cp.refNames = append(b.cp.refNames, "ref/"+name)
	return RefH(len(b.cp.refNames) - 1)
}

// ----- operand coercion -----

func intArg(x any) func(*Thread) int {
	switch v := x.(type) {
	case int:
		return func(*Thread) int { return v }
	case Reg:
		if v < 0 {
			panic("vthread: Discard used as an operand")
		}
		return func(t *Thread) int { return t.fi.locals[v] }
	case CellH:
		return func(t *Thread) int { return t.fi.env.cells[v] }
	case int64:
		return func(*Thread) int { return int(v) }
	case func(*Thread) int:
		return v
	}
	panic("vthread: operand is not an int, Reg, CellH or func(*Thread) int")
}

func condArg(x any) func(*Thread) bool {
	switch v := x.(type) {
	case bool:
		return func(*Thread) bool { return v }
	case Reg:
		return func(t *Thread) bool { return t.fi.locals[v] != 0 }
	case CellH:
		return func(t *Thread) bool { return t.fi.env.cells[v] != 0 }
	case func(*Thread) bool:
		return v
	}
	panic("vthread: condition is not a bool, Reg, CellH or func(*Thread) bool")
}

func chanArg(x any) func(*Thread) *Chan {
	switch v := x.(type) {
	case ChanH:
		return func(t *Thread) *Chan { return t.fi.env.chans[v] }
	case OReg:
		return func(t *Thread) *Chan { return chanOf(t.fi.objs[v]) }
	case func(*Thread) *Chan:
		return v
	}
	panic("vthread: operand is not a ChanH, OReg or func(*Thread) *Chan")
}

func mutexArg(x any) func(*Thread) *Mutex {
	switch v := x.(type) {
	case MutexH:
		return func(t *Thread) *Mutex { return t.fi.env.mutexes[v] }
	case OReg:
		return func(t *Thread) *Mutex { return t.fi.objs[v].(*Mutex) }
	case func(*Thread) *Mutex:
		return v
	}
	panic("vthread: operand is not a MutexH, OReg or func(*Thread) *Mutex")
}

func nameArg(x any) func(*Thread) string {
	switch v := x.(type) {
	case string:
		return func(*Thread) string { return v }
	case func(*Thread) string:
		return v
	}
	panic("vthread: name operand is not a string or func(*Thread) string")
}

func anyArg(x any) func(*Thread) any {
	switch v := x.(type) {
	case Reg:
		return func(t *Thread) any { return t.fi.locals[v] }
	case CellH:
		return func(t *Thread) any { return t.fi.env.cells[v] }
	case func(*Thread) int:
		return func(t *Thread) any { return v(t) }
	case func(*Thread) any:
		return v
	}
	return func(*Thread) any { return x }
}

func anyArgs(xs []any) []func(*Thread) any {
	if len(xs) == 0 {
		return nil
	}
	out := make([]func(*Thread) any, len(xs))
	for i, x := range xs {
		out[i] = anyArg(x)
	}
	return out
}

// ----- body builder -----

// Code builds one thread body. Block-structured statements (If, While,
// OnceDo) take sub-builder callbacks that emit into the nested block.
type Code struct {
	b     *Builder
	id    int
	fb    *fbody
	stack []*block
	// scopes tracks the open While/OnceDo nesting for Break/Continue/Return
	// validation: a branch may not jump across a Once body (it would skip
	// the completion marker and diverge from closure semantics).
	scopes []frKind
}

func (c *Code) emit(in instr) *instr {
	blk := c.stack[len(c.stack)-1]
	blk.code = append(blk.code, in)
	return &blk.code[len(blk.code)-1]
}

func (c *Code) reg() Reg {
	r := Reg(c.fb.nlocals)
	c.fb.nlocals++
	return r
}

func (c *Code) oreg() OReg {
	o := OReg(c.fb.nobjs)
	c.fb.nobjs++
	return o
}

// Arg returns the register holding the i-th integer argument of the body.
func (c *Code) Arg(i int) Reg {
	if i < 0 || i >= c.fb.nargs {
		panic("vthread: body argument index out of range")
	}
	return Reg(i)
}

// OArg returns the object register holding the i-th object argument.
func (c *Code) OArg(i int) OReg {
	if i < 0 || i >= c.fb.noargs {
		panic("vthread: body object-argument index out of range")
	}
	return OReg(i)
}

// ----- invisible statements -----

// Let evaluates x into a fresh register (invisible).
func (c *Code) Let(x any) Reg {
	r := c.reg()
	c.emit(instr{op: iLet, dst: r, x: intArg(x)})
	return r
}

// Set re-assigns an existing register (invisible).
func (c *Code) Set(r Reg, x any) {
	if r < 0 {
		panic("vthread: Set on Discard")
	}
	c.emit(instr{op: iLet, dst: r, x: intArg(x)})
}

// SetCell writes a shared invisible cell (invisible, like the plain Go
// assignment it compiles).
func (c *Code) SetCell(cell CellH, x any) {
	c.emit(instr{op: iCellSet, h: int(cell), x: intArg(x)})
}

// SetName assigns the thread's display name (invisible).
func (c *Code) SetName(name any) {
	c.emit(instr{op: iSetName, name: nameArg(name)})
}

// If emits a conditional: then runs when cond holds.
func (c *Code) If(cond any, then func()) {
	in := c.emit(instr{op: iIf, cond: condArg(cond), blk: &block{}})
	c.stack = append(c.stack, in.blk)
	then()
	c.stack = c.stack[:len(c.stack)-1]
}

// IfElse emits a two-armed conditional.
func (c *Code) IfElse(cond any, then, els func()) {
	in := c.emit(instr{op: iIf, cond: condArg(cond), blk: &block{}, blk2: &block{}})
	c.stack = append(c.stack, in.blk)
	then()
	c.stack[len(c.stack)-1] = in.blk2
	els()
	c.stack = c.stack[:len(c.stack)-1]
}

// While emits a loop re-evaluating cond before every iteration.
func (c *Code) While(cond any, body func()) {
	in := c.emit(instr{op: iWhile, cond: condArg(cond), blk: &block{}})
	c.stack = append(c.stack, in.blk)
	c.scopes = append(c.scopes, frLoop)
	body()
	c.scopes = c.scopes[:len(c.scopes)-1]
	c.stack = c.stack[:len(c.stack)-1]
}

// Break exits the innermost While. Breaking across a OnceDo body is a
// build-time error (it would skip the Once completion).
func (c *Code) Break() {
	c.checkJump("Break")
	c.emit(instr{op: iBreak})
}

// Continue re-evaluates the innermost While's condition.
func (c *Code) Continue() {
	c.checkJump("Continue")
	c.emit(instr{op: iContinue})
}

// Return ends the body. Returning from inside a OnceDo body is a build-time
// error (it would skip the Once completion, which Go's defer-free
// once-bodies cannot do either without diverging semantics).
func (c *Code) Return() {
	for _, k := range c.scopes {
		if k == frOnce {
			panic("vthread: Return inside a OnceDo body is not supported")
		}
	}
	c.emit(instr{op: iReturn})
}

func (c *Code) checkJump(what string) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		switch c.scopes[i] {
		case frLoop:
			return
		case frOnce:
			panic("vthread: " + what + " across a OnceDo body is not supported")
		}
	}
	panic("vthread: " + what + " outside a While")
}

// Assert emits the compiled Thread.Assert: invisible, failing the execution
// when cond is false. Message args may be literals, Reg, CellH or
// func(*Thread) any/int, evaluated (purely) at failure time.
func (c *Code) Assert(cond any, format string, args ...any) {
	c.emit(instr{op: iAssert, cond: condArg(cond), str: format, args: anyArgs(args)})
}

// FailIf emits a guarded Thread.Fail: when cond holds, the execution fails
// with the formatted message.
func (c *Code) FailIf(cond any, format string, args ...any) {
	c.If(cond, func() {
		c.emit(instr{op: iFail, str: format, args: anyArgs(args)})
	})
}

// Fail emits an unconditional Thread.Fail.
func (c *Code) Fail(format string, args ...any) {
	c.emit(instr{op: iFail, str: format, args: anyArgs(args)})
}

// ----- shared-memory instructions -----

// Load reads an IntVar into a fresh register (one visible op when
// promoted).
func (c *Code) Load(v VarH) Reg {
	r := c.reg()
	c.emit(instr{op: iVarLoad, h: int(v), dst: r})
	return r
}

// Store writes an IntVar (one visible op when promoted).
func (c *Code) Store(v VarH, x any) {
	c.emit(instr{op: iVarStore, h: int(v), x: intArg(x)})
}

// AddVar compiles IntVar.Add: a Load, an invisible add, a Store — two
// scheduling points when promoted, exactly the closure API's lost-update
// shape. Returns the register holding the stored value.
func (c *Code) AddVar(v VarH, delta any) Reg {
	x := c.Load(v)
	df := intArg(delta)
	sum := c.Let(func(t *Thread) int { return t.fi.locals[x] + df(t) })
	c.Store(v, sum)
	return sum
}

// LoadA reads an Atomic (always one visible op).
func (c *Code) LoadA(a AtomicH) Reg {
	r := c.reg()
	c.emit(instr{op: iALoad, h: int(a), dst: r})
	return r
}

// StoreA writes an Atomic.
func (c *Code) StoreA(a AtomicH, x any) {
	c.emit(instr{op: iAStore, h: int(a), x: intArg(x)})
}

// AddA compiles Atomic.Add, returning the new value's register.
func (c *Code) AddA(a AtomicH, delta any) Reg {
	r := c.reg()
	c.emit(instr{op: iAAdd, h: int(a), x: intArg(delta), dst: r})
	return r
}

// CAS compiles Atomic.CAS, returning a 0/1 register.
func (c *Code) CAS(a AtomicH, old, new any) Reg {
	r := c.reg()
	c.emit(instr{op: iACAS, h: int(a), x: intArg(old), y: intArg(new), dst: r})
	return r
}

// SwapA compiles Atomic.Swap, returning the previous value's register.
func (c *Code) SwapA(a AtomicH, x any) Reg {
	r := c.reg()
	c.emit(instr{op: iASwap, h: int(a), x: intArg(x), dst: r})
	return r
}

// Get reads arrays[h][i] (one visible op when promoted).
func (c *Code) Get(a ArrayH, i any) Reg {
	r := c.reg()
	c.emit(instr{op: iArrGet, h: int(a), x: intArg(i), dst: r})
	return r
}

// SetAt writes arrays[h][i] = x (one visible op when promoted).
func (c *Code) SetAt(a ArrayH, i, x any) {
	c.emit(instr{op: iArrSet, h: int(a), x: intArg(i), y: intArg(x)})
}

// RefLoad reads an object reference into a fresh object register.
func (c *Code) RefLoad(ref RefH) OReg {
	o := c.oreg()
	c.emit(instr{op: iRefLoad, h: int(ref), odst: o})
	return o
}

// RefStore writes an object register into an object reference.
func (c *Code) RefStore(ref RefH, o OReg) {
	c.emit(instr{op: iRefStore, h: int(ref), osrc: o})
}

// ----- synchronisation instructions -----

// Lock compiles Mutex.Lock. mu may be a MutexH, an OReg holding a dynamic
// mutex, or a func(*Thread) *Mutex.
func (c *Code) Lock(mu any) { c.emit(instr{op: iLock, mu: mutexArg(mu)}) }

// Unlock compiles Mutex.Unlock.
func (c *Code) Unlock(mu any) { c.emit(instr{op: iUnlock, mu: mutexArg(mu)}) }

// TryLock compiles Mutex.TryLock, returning a 0/1 register.
func (c *Code) TryLock(mu any) Reg {
	r := c.reg()
	c.emit(instr{op: iTryLock, mu: mutexArg(mu), dst: r})
	return r
}

// DestroyMutex compiles Mutex.Destroy.
func (c *Code) DestroyMutex(mu any) { c.emit(instr{op: iDestroy, mu: mutexArg(mu)}) }

// NewMutex creates a dynamic mutex at run time (invisible, like
// Thread.NewMutex), stored in a fresh object register.
func (c *Code) NewMutex(name any) OReg {
	o := c.oreg()
	c.emit(instr{op: iNewMutex, name: nameArg(name), odst: o})
	return o
}

// RLock compiles RWMutex.RLock.
func (c *Code) RLock(l RWMutexH) { c.emit(instr{op: iRLock, h: int(l)}) }

// RUnlock compiles RWMutex.RUnlock.
func (c *Code) RUnlock(l RWMutexH) { c.emit(instr{op: iRUnlock, h: int(l)}) }

// WLock compiles RWMutex.Lock (exclusive).
func (c *Code) WLock(l RWMutexH) { c.emit(instr{op: iWLock, h: int(l)}) }

// WUnlock compiles RWMutex.Unlock.
func (c *Code) WUnlock(l RWMutexH) { c.emit(instr{op: iWUnlock, h: int(l)}) }

// Wait compiles Cond.Wait (two visible phases: the wait and the
// re-acquisition).
func (c *Code) Wait(cv CondH, mu MutexH) {
	c.emit(instr{op: iCondWait, h: int(cv), h2: int(mu)})
}

// Signal compiles Cond.Signal.
func (c *Code) Signal(cv CondH) { c.emit(instr{op: iSignal, h: int(cv)}) }

// Broadcast compiles Cond.Broadcast.
func (c *Code) Broadcast(cv CondH) { c.emit(instr{op: iBroadcast, h: int(cv)}) }

// P compiles Sem.P.
func (c *Code) P(s SemH) { c.emit(instr{op: iSemP, h: int(s)}) }

// V compiles Sem.V.
func (c *Code) V(s SemH) { c.emit(instr{op: iSemV, h: int(s)}) }

// Arrive compiles Barrier.Arrive.
func (c *Code) Arrive(bar BarrierH) { c.emit(instr{op: iArrive, h: int(bar)}) }

// WGAdd compiles WaitGroup.Add.
func (c *Code) WGAdd(g WGH, delta any) { c.emit(instr{op: iWGAdd, h: int(g), x: intArg(delta)}) }

// WGDone compiles WaitGroup.Done.
func (c *Code) WGDone(g WGH) { c.WGAdd(g, -1) }

// WGWait compiles WaitGroup.Wait.
func (c *Code) WGWait(g WGH) { c.emit(instr{op: iWGWait, h: int(g)}) }

// OnceDo compiles Once.Do: the body block runs under the Once's entry and
// completion markers.
func (c *Code) OnceDo(o OnceH, body func()) {
	in := c.emit(instr{op: iOnceDo, h: int(o), blk: &block{}})
	c.stack = append(c.stack, in.blk)
	c.scopes = append(c.scopes, frOnce)
	body()
	c.scopes = c.scopes[:len(c.scopes)-1]
	c.stack = c.stack[:len(c.stack)-1]
}

// Yield compiles Thread.Yield: a pure scheduling point.
func (c *Code) Yield() { c.emit(instr{op: iYield}) }

// ----- channel instructions -----

// Send compiles Chan.Send. ch may be a ChanH, an OReg (a dynamic channel, a
// timer/ticker delivery channel, or a context's done channel) or a
// func(*Thread) *Chan.
func (c *Code) Send(ch any, v any) {
	c.emit(instr{op: iSend, ch: chanArg(ch), x: intArg(v)})
}

// Recv compiles Chan.Recv, returning the value and ok (0/1) registers.
func (c *Code) Recv(ch any) (v, ok Reg) {
	v, ok = c.reg(), c.reg()
	c.emit(instr{op: iRecv, ch: chanArg(ch), dst: v, dst2: ok})
	return v, ok
}

// TrySend compiles Chan.TrySend, returning a 0/1 register.
func (c *Code) TrySend(ch any, v any) Reg {
	r := c.reg()
	c.emit(instr{op: iTrySend, ch: chanArg(ch), x: intArg(v), dst: r})
	return r
}

// TryRecv compiles Chan.TryRecv.
func (c *Code) TryRecv(ch any) (v, ok Reg) {
	v, ok = c.reg(), c.reg()
	c.emit(instr{op: iTryRecv, ch: chanArg(ch), dst: v, dst2: ok})
	return v, ok
}

// CloseChan compiles Chan.Close.
func (c *Code) CloseChan(ch any) { c.emit(instr{op: iChClose, ch: chanArg(ch)}) }

// SCase is one case of a compiled Select: a receive from (or send of Val
// to) Ch, which may be a ChanH, OReg or func(*Thread) *Chan.
type SCase struct {
	Ch   any
	Send bool
	Val  any
}

// RecvC builds a receive case.
func RecvC(ch any) SCase { return SCase{Ch: ch} }

// SendC builds a send case.
func SendC(ch any, v any) SCase { return SCase{Ch: ch, Send: true, Val: v} }

// Select compiles Thread.Select: one visible op over every member channel,
// plus a case-decision scheduling point when several cases are ready at the
// grant. Returns the chosen index, received value and ok registers.
func (c *Code) Select(cases []SCase, hasDefault bool) (idx, v, ok Reg) {
	cc := make([]cCase, len(cases))
	for i, sc := range cases {
		cc[i] = cCase{ch: chanArg(sc.Ch), send: sc.Send}
		if sc.Send {
			cc[i].val = intArg(sc.Val)
		}
	}
	idx, v, ok = c.reg(), c.reg(), c.reg()
	c.emit(instr{op: iSelect, cases: cc, dl: hasDefault, dst: idx, dst2: v, dst3: ok})
	return idx, v, ok
}

// Select2 is the two-case convenience wrapper, like Thread.Select2.
func (c *Code) Select2(a, b SCase) (idx, v, ok Reg) {
	return c.Select([]SCase{a, b}, false)
}

// ----- thread instructions -----

// SpawnArgs describes one child of a SpawnAll.
type SpawnArgs struct {
	Child *Code
	// Args holds the child's integer arguments (int, Reg, CellH or
	// func(*Thread) int) followed by / mixed with its object arguments
	// (OReg); they are split by type and must match the child's declared
	// counts.
	Args []any
}

// Spawn compiles Thread.Spawn: one visible op creating one child running
// the given body, returning an object register holding the child's handle
// (for Join). Args supplies the child's integer arguments (evaluated at the
// spawn's registration, in order) and object arguments (OReg values,
// snapshotted at the spawn's commit).
func (c *Code) Spawn(child *Code, args ...any) OReg {
	h := c.oreg()
	c.emit(instr{op: iSpawn, specs: []spawnSpec{c.spec(child, args, h)}})
	return h
}

// SpawnAll compiles Thread.SpawnAll: several children created in one
// visible operation, returning their handles in order.
func (c *Code) SpawnAll(children ...SpawnArgs) []OReg {
	specs := make([]spawnSpec, len(children))
	out := make([]OReg, len(children))
	for i, sa := range children {
		out[i] = c.oreg()
		specs[i] = c.spec(sa.Child, sa.Args, out[i])
	}
	c.emit(instr{op: iSpawn, specs: specs})
	return out
}

func (c *Code) spec(child *Code, args []any, dst OReg) spawnSpec {
	if child.b != c.b {
		panic("vthread: Spawn of a body from a different Builder")
	}
	sp := spawnSpec{body: child.id, dst: dst}
	for _, a := range args {
		if o, isObj := a.(OReg); isObj {
			sp.oargs = append(sp.oargs, o)
		} else {
			sp.args = append(sp.args, intArg(a))
		}
	}
	if len(sp.args) != child.fb.nargs {
		panic("vthread: Spawn integer-argument count mismatch")
	}
	if len(sp.oargs) != child.fb.noargs {
		panic("vthread: Spawn object-argument count mismatch")
	}
	return sp
}

// Join compiles Thread.Join on a handle returned by Spawn.
func (c *Code) Join(h OReg) { c.emit(instr{op: iJoin, osrc: h}) }

// ----- timer and context instructions -----

// NewTimer compiles Thread.NewTimer, returning an object register holding
// the *Timer (pass it to Recv/Select for its channel, TimerStop,
// TimerReset).
func (c *Code) NewTimer(name any, d any) OReg {
	o := c.oreg()
	c.emit(instr{op: iNewTimer, name: nameArg(name), x: intArg(d), odst: o})
	return o
}

// After compiles Thread.After, returning an object register holding the
// delivery channel.
func (c *Code) After(name any, d any) OReg {
	o := c.oreg()
	c.emit(instr{op: iAfter, name: nameArg(name), x: intArg(d), odst: o})
	return o
}

// Sleep compiles Thread.Sleep: an After plus the receive (two visible
// operations).
func (c *Code) Sleep(name any, d any) {
	ch := c.After(name, d)
	c.Recv(ch)
}

// NewTicker compiles Thread.NewTicker, returning an object register holding
// the *Ticker.
func (c *Code) NewTicker(name any, period any) OReg {
	o := c.oreg()
	c.emit(instr{op: iNewTicker, name: nameArg(name), x: intArg(period), odst: o})
	return o
}

// TimerStop compiles Timer.Stop, returning the was-armed 0/1 register.
func (c *Code) TimerStop(tm OReg) Reg {
	r := c.reg()
	c.emit(instr{op: iTimerStop, osrc: tm, dst: r})
	return r
}

// TickerStop compiles Ticker.Stop.
func (c *Code) TickerStop(tk OReg) {
	c.emit(instr{op: iTimerStop, osrc: tk, dst: Discard})
}

// TimerReset compiles Timer.Reset, returning the was-armed 0/1 register.
func (c *Code) TimerReset(tm OReg, d any) Reg {
	r := c.reg()
	c.emit(instr{op: iTimerRst, osrc: tm, x: intArg(d), dst: r})
	return r
}

// NoCtx is the parent argument of a root context.
const NoCtx = OReg(-1)

// WithCancel compiles Thread.WithCancel. parent is an OReg holding the
// parent *Ctx, or vthread.NoCtx for a root context.
func (c *Code) WithCancel(name any, parent OReg) OReg {
	o := c.oreg()
	c.emit(instr{op: iCtxNew, name: nameArg(name), oparent: parent, odst: o})
	return o
}

// WithTimeout compiles Thread.WithTimeout.
func (c *Code) WithTimeout(name any, parent OReg, d any) OReg {
	o := c.oreg()
	c.emit(instr{op: iCtxNew, name: nameArg(name), oparent: parent, x: intArg(d), odst: o, dl: true})
	return o
}

// CtxCancel compiles Ctx.Cancel.
func (c *Code) CtxCancel(ctx OReg) { c.emit(instr{op: iCtxCancel, osrc: ctx}) }
