package dist

// The chaos harness: every fault the protocol claims to survive is
// injected here — worker kills mid-unit, dropped/duplicated messages,
// lease expiry with stale-park fencing, coordinator crash mid-merge with
// resume — and every surviving run must be bit-identical to the sequential
// in-process exploration (DFS/IPB/IDB) or verdict-identical (DPOR).

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"sctbench/internal/bench"
	"sctbench/internal/explore"
	"sctbench/internal/faultinject"
)

const distLimit = 20000

// baseCfg is the sequential baseline configuration: everything visible
// (the jobs run NoRace for the same promotion-free environment).
func baseCfg(t *testing.T, name string, limit int) explore.Config {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	return explore.Config{
		Program: b.New(), BoundsCheck: b.BoundsCheck, MaxSteps: b.MaxSteps,
		Limit: limit, Seed: 7,
	}
}

// testJob builds a JobConfig with chaos-friendly knobs: short leases so
// expiry-based failover happens within test time.
func testJob(t *testing.T, name string, tech explore.Technique, limit int) JobConfig {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	return JobConfig{
		Bench: b, Technique: tech, Limit: limit, Seed: 7, NoRace: true,
		LeaseTTL: 200 * time.Millisecond, Shards: 6,
	}
}

// startCoord serves a coordinator on an ephemeral localhost port.
func startCoord(t *testing.T, c *Coordinator) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	c.Serve(l)
	t.Cleanup(c.Close)
}

// fastClient retries aggressively so injected faults resolve quickly.
func fastClient(c *Coordinator) *Client {
	return &Client{Base: "http://" + c.Addr(), Backoff: 2 * time.Millisecond}
}

// runWorkers runs n workers to completion and returns their errors.
func runWorkers(c *Coordinator, n int) []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(WorkerConfig{
				Addr: "http://" + c.Addr(), Name: fmt.Sprintf("w%d", i),
				Client: fastClient(c),
			})
		}(i)
	}
	wg.Wait()
	return errs
}

func requireSame(t *testing.T, label string, want, got *explore.Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: result differs from sequential baseline\n want %+v\n  got %+v", label, want, got)
	}
}

// TestDistEquivalence: a fault-free distributed run over two workers is
// bit-identical to the sequential in-process run, for the single-pass and
// the iterative techniques alike.
func TestDistEquivalence(t *testing.T) {
	cases := []struct {
		bench string
		tech  explore.Technique
	}{
		{"CS.account_bad", explore.DFS},
		{"CS.queue_bad", explore.DFS},
		{"CS.circular_buffer_bad", explore.DFS},
		{"CS.account_bad", explore.IPB},
		{"CS.account_bad", explore.IDB},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/%s", tc.bench, tc.tech), func(t *testing.T) {
			base := explore.Run(tc.tech, baseCfg(t, tc.bench, distLimit))
			if base.LimitHit {
				t.Fatalf("baseline hit the limit; bit-identity needs a completed run")
			}
			c, err := NewCoordinator(testJob(t, tc.bench, tc.tech, distLimit))
			if err != nil {
				t.Fatalf("NewCoordinator: %v", err)
			}
			startCoord(t, c)
			for i, werr := range runWorkers(c, 2) {
				if werr != nil {
					t.Errorf("worker %d: %v", i, werr)
				}
			}
			got, err := c.Wait()
			if err != nil {
				t.Fatalf("Wait: %v", err)
			}
			requireSame(t, tc.tech.String(), base, got)
		})
	}
}

// TestDistDPORVerdict: distributed DPOR keeps the pool's verdict-level
// contract — bug and completeness survive sharding across workers.
func TestDistDPORVerdict(t *testing.T) {
	base := explore.Run(explore.DPOR, baseCfg(t, "CS.account_bad", 500))
	c, err := NewCoordinator(testJob(t, "CS.account_bad", explore.DPOR, 500))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	startCoord(t, c)
	for i, werr := range runWorkers(c, 2) {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	got, err := c.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if base.BugFound != got.BugFound || base.Complete != got.Complete {
		t.Errorf("verdict = (bug %v, complete %v), want (%v, %v)",
			got.BugFound, got.Complete, base.BugFound, base.Complete)
	}
}

// TestDistWorkerFailover: an injected kill -9 takes one worker down
// mid-unit; the lease expires, the survivor re-runs the unit from its
// original frontier, and the merged result is still bit-identical.
func TestDistWorkerFailover(t *testing.T) {
	base := explore.RunDFS(baseCfg(t, "CS.account_bad", distLimit))
	if !base.Complete {
		t.Fatalf("baseline did not complete")
	}
	c, err := NewCoordinator(testJob(t, "CS.account_bad", explore.DFS, distLimit))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	startCoord(t, c)
	faultinject.Arm(faultinject.DistWorkerCrash, 10)
	t.Cleanup(faultinject.Reset)
	killed := 0
	for i, werr := range runWorkers(c, 2) {
		switch {
		case errors.Is(werr, ErrWorkerKilled):
			killed++
		case werr != nil:
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	if killed != 1 {
		t.Fatalf("killed workers = %d, want exactly 1 (the armed crash)", killed)
	}
	got, err := c.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	requireSame(t, "failover", base, got)
}

// TestDistRPCFaults: lost requests, lost replies (the server-side effect
// happened — the retry must be absorbed idempotently) and duplicated
// deliveries do not perturb the result.
func TestDistRPCFaults(t *testing.T) {
	base := explore.RunDFS(baseCfg(t, "CS.account_bad", distLimit))
	if !base.Complete {
		t.Fatalf("baseline did not complete")
	}
	faults := []struct {
		name  string
		point faultinject.Point
	}{
		{"drop-request", faultinject.RPCDropRequest},
		{"drop-reply", faultinject.RPCDropReply},
		{"duplicate", faultinject.RPCDuplicate},
	}
	for _, f := range faults {
		t.Run(f.name, func(t *testing.T) {
			c, err := NewCoordinator(testJob(t, "CS.account_bad", explore.DFS, distLimit))
			if err != nil {
				t.Fatalf("NewCoordinator: %v", err)
			}
			startCoord(t, c)
			// The 5th RPC of the job lands mid-protocol (past the job
			// fetches, into lease/complete traffic).
			faultinject.Arm(f.point, 5)
			t.Cleanup(faultinject.Reset)
			for i, werr := range runWorkers(c, 2) {
				if werr != nil {
					t.Errorf("worker %d: %v", i, werr)
				}
			}
			got, err := c.Wait()
			if err != nil {
				t.Fatalf("Wait: %v", err)
			}
			requireSame(t, f.name, base, got)
		})
	}
}

// TestDistLeaseExpiryFencing drives the protocol by hand through the
// nastiest interleaving: a worker goes silent holding a lease, the unit is
// re-dispatched, and then the silent worker comes back — its park must be
// rejected (a stale park could regress the unit's frontier) while its
// completed result is accepted idempotently (first wins) and the
// re-dispatched worker is cancelled at its next heartbeat.
func TestDistLeaseExpiryFencing(t *testing.T) {
	base := explore.RunDFS(baseCfg(t, "CS.account_bad", distLimit))
	jc := testJob(t, "CS.account_bad", explore.DFS, distLimit)
	jc.LeaseTTL = 100 * time.Millisecond
	c, err := NewCoordinator(jc)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	startCoord(t, c)
	cl := fastClient(c)

	// The hung worker takes a lease and goes silent.
	var hung LeaseReply
	for {
		if err := cl.call("/v1/lease", LeaseRequest{Worker: "hung"}, &hung); err != nil {
			t.Fatalf("lease: %v", err)
		}
		if hung.Status == StatusUnit {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Its lease expires and the unit is re-dispatched to a second worker.
	var redisp LeaseReply
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("unit %d was never re-dispatched", hung.UnitID)
		}
		if err := cl.call("/v1/lease", LeaseRequest{Worker: "second"}, &redisp); err != nil {
			t.Fatalf("lease: %v", err)
		}
		if redisp.Status == StatusUnit && redisp.UnitID == hung.UnitID {
			break
		}
		if redisp.Status == StatusUnit {
			// Not the unit we're watching; hand it straight back via a
			// park of its own dispatched state (a no-op park).
			var pr ParkReply
			if err := cl.call("/v1/park", ParkRequest{
				LeaseID: redisp.LeaseID, UnitID: redisp.UnitID, Unit: redisp.Unit,
			}, &pr); err != nil {
				t.Fatalf("park: %v", err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The expired worker's heartbeat reports the lease gone.
	var hb HeartbeatReply
	if err := cl.call("/v1/heartbeat", HeartbeatRequest{LeaseID: hung.LeaseID}, &hb); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if hb.Status != StatusStale {
		t.Errorf("expired heartbeat = %q, want %q", hb.Status, StatusStale)
	}

	// A park under the expired lease must be fenced off.
	var pr ParkReply
	if err := cl.call("/v1/park", ParkRequest{
		LeaseID: hung.LeaseID, UnitID: hung.UnitID, Unit: hung.Unit,
	}, &pr); err != nil {
		t.Fatalf("park: %v", err)
	}
	if pr.Status != StatusStale {
		t.Errorf("stale park = %q, want %q", pr.Status, StatusStale)
	}

	// But its finished result is accepted — first completion wins.
	ur, err := explore.RunUnit(baseCfg(t, "CS.account_bad", distLimit), hung.Unit, hung.Budget, nil)
	if err != nil || ur.Done == nil {
		t.Fatalf("RunUnit: %v (%+v)", err, ur)
	}
	var cr CompleteReply
	if err := cl.call("/v1/complete", CompleteRequest{
		LeaseID: hung.LeaseID, UnitID: hung.UnitID, Result: ur.Done,
	}, &cr); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if cr.Status != StatusOK {
		t.Errorf("expired-lease completion = %q, want %q", cr.Status, StatusOK)
	}

	// The re-dispatched worker is told to stop wasting its time...
	if err := cl.call("/v1/heartbeat", HeartbeatRequest{LeaseID: redisp.LeaseID}, &hb); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if hb.Status != StatusCancel {
		t.Errorf("re-dispatch heartbeat = %q, want %q", hb.Status, StatusCancel)
	}
	// ...and its duplicate completion is discarded idempotently.
	if err := cl.call("/v1/complete", CompleteRequest{
		LeaseID: redisp.LeaseID, UnitID: redisp.UnitID, Result: ur.Done,
	}, &cr); err != nil {
		t.Fatalf("complete: %v", err)
	}
	if cr.Status != StatusOK {
		t.Errorf("duplicate completion = %q, want %q", cr.Status, StatusOK)
	}

	// Real workers finish the rest; nothing was corrupted.
	for i, werr := range runWorkers(c, 2) {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	got, err := c.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	requireSame(t, "fencing", base, got)
}

// TestDistCoordCrashResume: the coordinator dies mid-merge (after
// recording a completion, before acknowledging it). A fresh coordinator
// rebuilt from the durable checkpoint finishes the job bit-identically.
func TestDistCoordCrashResume(t *testing.T) {
	base := explore.RunDFS(baseCfg(t, "CS.account_bad", distLimit))
	if !base.Complete {
		t.Fatalf("baseline did not complete")
	}
	ckPath := filepath.Join(t.TempDir(), "job.ckpt")
	jc := testJob(t, "CS.account_bad", explore.DFS, distLimit)
	jc.CheckpointPath = ckPath
	c, err := NewCoordinator(jc)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	startCoord(t, c)
	faultinject.Arm(faultinject.DistCoordCrash, 2)
	t.Cleanup(faultinject.Reset)
	for _, werr := range runWorkers(c, 2) {
		if werr == nil {
			t.Errorf("a worker exited cleanly through a coordinator crash")
		}
	}
	if _, err := c.Wait(); !errors.Is(err, ErrCoordinatorCrashed) {
		t.Fatalf("Wait error = %v, want ErrCoordinatorCrashed", err)
	}
	c.Close()

	ck, err := explore.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	c2, err := ResumeCoordinator(ck, testJob(t, "CS.account_bad", explore.DFS, distLimit))
	if err != nil {
		t.Fatalf("ResumeCoordinator: %v", err)
	}
	startCoord(t, c2)
	for i, werr := range runWorkers(c2, 2) {
		if werr != nil {
			t.Errorf("resumed worker %d: %v", i, werr)
		}
	}
	got, err := c2.Wait()
	if err != nil {
		t.Fatalf("resumed Wait: %v", err)
	}
	requireSame(t, "coord-crash-resume", base, got)
}

// TestDistDrainResumeInProcess: SIGTERM-style drain parks the in-flight
// frontiers and writes a job checkpoint that the *in-process* resume path
// (sctrun -resume) finishes bit-identically — the cross-driver half of the
// checkpoint contract.
func TestDistDrainResumeInProcess(t *testing.T) {
	base := explore.RunDFS(baseCfg(t, "CS.account_bad", distLimit))
	if !base.Complete {
		t.Fatalf("baseline did not complete")
	}
	ckPath := filepath.Join(t.TempDir(), "job.ckpt")
	interrupt := make(chan struct{})
	jc := testJob(t, "CS.account_bad", explore.DFS, distLimit)
	jc.CheckpointPath = ckPath
	jc.Interrupt = interrupt
	jc.LeaseTTL = 90 * time.Millisecond // heartbeat ≈30ms: parks land fast
	c, err := NewCoordinator(jc)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	startCoord(t, c)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(WorkerConfig{
				Addr: "http://" + c.Addr(), Name: fmt.Sprintf("w%d", i),
				Client: fastClient(c),
			})
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(interrupt)
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	r1, err := c.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if r1.Stopped == explore.StopCompleted {
		// The job beat the interrupt; equivalence is still required, but
		// there is nothing to resume.
		requireSame(t, "drain(too fast)", base, r1)
		return
	}
	if r1.Stopped != explore.StopInterrupted {
		t.Fatalf("Stopped = %v, want interrupted", r1.Stopped)
	}
	ck, err := explore.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	got, err := explore.Resume(ck, baseCfg(t, "CS.account_bad", distLimit))
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	requireSame(t, "drain-resume", base, got)
}
