package vthread

// opKind enumerates the visible-operation kinds of the substrate. The set
// mirrors the pthread surface that the paper's benchmarks use — thread
// management, mutexes, condition variables, semaphores, barriers, shared
// memory accesses and atomics — plus the Go-idiom surface (first-class
// channels, multi-way select, WaitGroup, Once) that opens the goidiom
// workload family.
type opKind int

const (
	opSpawn opKind = iota
	opJoin
	opYield
	opLock
	opUnlock
	opCondWait   // release mutex + enqueue on the condvar
	opCondResume // woken waiter re-acquiring the mutex
	opSignal
	opBroadcast
	opSemP
	opSemV
	opBarrierArrive
	opBarrierWait // parked inside the barrier until the generation advances
	opAccess      // promoted (racy) shared-memory access
	opAtomic
	opDestroy
	opRLock
	opRUnlock
	opWLock
	opWUnlock
	opChanSend  // blocking channel send: disabled while the channel is full
	opChanRecv  // blocking channel receive: disabled while empty and open
	opChanTry   // non-blocking TrySend/TryRecv: always executable
	opChanClose // channel close: always executable (double close crashes)
	opSelect    // multi-way select: enabled when any case is ready (or default)
	opWGAdd     // WaitGroup Add/Done: always executable (negative count crashes)
	opWGWait    // WaitGroup Wait: disabled while the counter is positive
	opOnceDo    // Once entry: disabled while another thread is inside the Once
	opOnceDone  // Once completion marker: always executable
	opTimerArm  // NewTimer/After/NewTicker/Reset: always executable, reads the virtual now
	opTimerStop // Timer.Stop/Ticker.Stop: always executable
	opTimerFire // the clock pseudo-thread's step: enabled while a timer can fire
	opCtxNew    // WithCancel/WithTimeout: always executable
	opCtxCancel // Ctx.Cancel: always executable (cancellation is idempotent)
)

// pendingOp is the visible operation a parked thread will perform when next
// scheduled. Enabledness (§2) is a predicate of the pending operation over
// the current state of its target object.
type pendingOp struct {
	kind    opKind
	mutex   *Mutex
	cond    *Cond
	sem     *Sem
	barrier *Barrier
	target  *Thread
	thread  *Thread // owner of this op; set for ops whose enabledness is per-thread
	rw      *RWMutex
	ch      *Chan
	wg      *WaitGroup
	once    *Once
	sel     *selectOp
	timer   *vtimer // timer arm/stop target
	ctx     *Ctx    // context create/cancel target
	gen     uint64  // barrier generation observed on arrival
	key     string  // accessed variable key (opAccess only)
	write   bool    // store vs load (opAccess only)
}

// enabled reports whether the operation can execute in the current state.
// Operations that would immediately fault (locking a destroyed mutex,
// double unlock, sending on a closed channel, …) are enabled so that the
// crash can manifest — a disabled crash would silently mask the bug.
func (op *pendingOp) enabled(w *World) bool {
	switch op.kind {
	case opLock:
		return op.mutex.owner == nil || op.mutex.destroyed
	case opCondResume:
		return op.thread.woken && (op.mutex.owner == nil || op.mutex.destroyed)
	case opSemP:
		return op.sem.count > 0
	case opJoin:
		return op.target.state == stateExited
	case opBarrierWait:
		return op.barrier.gen != op.gen
	case opRLock:
		// Shared acquisition: blocked by a writer or (writer preference) a
		// waiting writer.
		return op.rw.writer == nil && op.rw.waitingWriters == 0
	case opWLock:
		return op.rw.writer == nil && op.rw.readers == 0
	case opChanSend:
		// A send on a closed channel is enabled so the crash can manifest.
		return op.ch.sendReady()
	case opChanRecv:
		return op.ch.recvReady()
	case opSelect:
		if op.sel.hasDefault {
			return true
		}
		for i := range op.sel.cases {
			if op.sel.cases[i].ready() {
				return true
			}
		}
		return false
	case opWGWait:
		return op.wg.count == 0
	case opOnceDo:
		// Disabled while another thread is between the Once's entry and its
		// completion marker — exactly Go's "Do blocks until f returns"
		// semantics, including the reentrant-Do self-deadlock.
		return !op.once.started || op.once.done
	case opTimerFire:
		// The clock pseudo-thread: schedulable while some timer can fire
		// and some program thread is live to observe it.
		return w.clockEnabled()
	default:
		// opSpawn, opYield, opUnlock, opCondWait, opSignal,
		// opBroadcast, opSemV, opBarrierArrive, opAccess, opAtomic,
		// opDestroy, opChanTry, opChanClose, opWGAdd, opOnceDone,
		// opTimerArm, opTimerStop, opCtxNew, opCtxCancel are always
		// executable.
		return true
	}
}

func (k opKind) String() string {
	switch k {
	case opSpawn:
		return "spawn"
	case opJoin:
		return "join"
	case opYield:
		return "yield"
	case opLock:
		return "lock"
	case opUnlock:
		return "unlock"
	case opCondWait:
		return "cond-wait"
	case opCondResume:
		return "cond-resume"
	case opSignal:
		return "signal"
	case opBroadcast:
		return "broadcast"
	case opSemP:
		return "sem-P"
	case opSemV:
		return "sem-V"
	case opBarrierArrive:
		return "barrier-arrive"
	case opBarrierWait:
		return "barrier-wait"
	case opAccess:
		return "access"
	case opAtomic:
		return "atomic"
	case opDestroy:
		return "destroy"
	case opRLock:
		return "rlock"
	case opRUnlock:
		return "runlock"
	case opWLock:
		return "wlock"
	case opWUnlock:
		return "wunlock"
	case opChanSend:
		return "chan-send"
	case opChanRecv:
		return "chan-recv"
	case opChanTry:
		return "chan-try"
	case opChanClose:
		return "chan-close"
	case opSelect:
		return "select"
	case opWGAdd:
		return "wg-add"
	case opWGWait:
		return "wg-wait"
	case opOnceDo:
		return "once-do"
	case opOnceDone:
		return "once-done"
	case opTimerArm:
		return "timer-arm"
	case opTimerStop:
		return "timer-stop"
	case opTimerFire:
		return "timer-fire"
	case opCtxNew:
		return "ctx-new"
	case opCtxCancel:
		return "ctx-cancel"
	}
	return "unknown"
}
