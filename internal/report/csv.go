package report

import (
	"fmt"
	"strings"

	"sctbench/internal/explore"
	"sctbench/internal/study"
)

// Table3CSV renders the full per-benchmark grid in machine-readable form:
// one row per benchmark, one column group per technique. This is the
// artifact downstream comparisons consume (the paper's point about
// schedule counts being implementation-independent, §5).
func Table3CSV(rows []*study.Row) string {
	var b strings.Builder
	b.WriteString("id,name,threads,max_enabled,max_sched_points,racy_vars")
	for _, tech := range []string{"ipb", "idb"} {
		fmt.Fprintf(&b, ",%s_found,%s_bound,%s_first,%s_total,%s_new,%s_buggy,%s_status", tech, tech, tech, tech, tech, tech, tech)
	}
	b.WriteString(",dfs_found,dfs_first,dfs_total,dfs_buggy,dfs_complete,dfs_execs,dfs_steps,dfs_status")
	b.WriteString(",dpor_found,dpor_first,dpor_total,dpor_buggy,dpor_complete")
	b.WriteString(",dpor_execs,dpor_aborted,dpor_pruned,dpor_steps,dpor_exec_reduction,dpor_status")
	b.WriteString(",rand_found,rand_first,rand_buggy,rand_status")
	b.WriteString(",maple_found,maple_first,maple_total\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%d", r.Bench.ID, r.Bench.Name,
			r.Threads(), r.MaxEnabled(), r.MaxSchedPoints(), len(r.Racy))
		for _, tech := range []explore.Technique{explore.IPB, explore.IDB} {
			res := r.Results[tech]
			if res == nil {
				b.WriteString(",,,,,,,")
				continue
			}
			fmt.Fprintf(&b, ",%v,%d,%d,%d,%d,%d,%s", res.BugFound, res.Bound,
				res.SchedulesToFirstBug, res.Schedules, res.NewSchedules, res.BuggySchedules,
				res.Stopped)
		}
		dfs := r.Results[explore.DFS]
		if dfs != nil {
			fmt.Fprintf(&b, ",%v,%d,%d,%d,%v,%d,%d,%s", dfs.BugFound,
				dfs.SchedulesToFirstBug, dfs.Schedules, dfs.BuggySchedules, dfs.Complete,
				dfs.Executions, dfs.TotalSteps, dfs.Stopped)
		} else {
			b.WriteString(",,,,,,,,")
		}
		if res := r.Results[explore.DPOR]; res != nil {
			fmt.Fprintf(&b, ",%v,%d,%d,%d,%v,%d,%d,%d,%d", res.BugFound,
				res.SchedulesToFirstBug, res.Schedules, res.BuggySchedules, res.Complete,
				res.Executions, res.AbortedExecutions, res.BranchesPruned, res.TotalSteps)
			// The headline reduction factor: executions DFS spent per
			// execution DPOR needed on the same program.
			if dfs != nil && res.Executions > 0 {
				fmt.Fprintf(&b, ",%.2f", float64(dfs.Executions)/float64(res.Executions))
			} else {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, ",%s", res.Stopped)
		} else {
			b.WriteString(",,,,,,,,,,,")
		}
		if res := r.Results[explore.Rand]; res != nil {
			fmt.Fprintf(&b, ",%v,%d,%d,%s", res.BugFound, res.SchedulesToFirstBug, res.BuggySchedules, res.Stopped)
		} else {
			b.WriteString(",,,,")
		}
		if r.Maple != nil {
			fmt.Fprintf(&b, ",%v,%d,%d", r.Maple.BugFound, r.Maple.SchedulesToFirstBug, r.Maple.Schedules)
		} else {
			b.WriteString(",,,")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
