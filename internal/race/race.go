// Package race implements the dynamic data-race detection phase of the
// study (§5). A vector-clock detector (Djit+-style, the precise
// happens-before algorithm FastTrack optimises) watches the event stream of
// uncontrolled (randomly scheduled) executions; the variables it flags as
// racy are promoted to visible operations for the SCT phases, and every
// other shared access runs without a scheduling point.
//
// Happens-before edges come from the substrate's sync events: mutex
// unlock→lock, semaphore V→P, condvar signal→wakeup, barrier entry→exit,
// spawn→first step and exit→join, and atomic operations (modelled as
// acquire+release, i.e. SC atomics). Sync objects accumulate release clocks
// by joining, which is exact for totally ordered objects (mutexes) and a
// sound over-approximation of happens-before for barriers and condvars —
// over-approximating HB can only under-report races, never invent them.
package race

import (
	"sort"

	"sctbench/internal/vthread"
)

// VC is a vector clock indexed by thread id. The zero value is usable; it
// grows on demand as threads are created.
type VC []uint64

func (v *VC) ensure(n int) {
	for len(*v) < n {
		*v = append(*v, 0)
	}
}

// get returns component i (zero when beyond the allocated prefix).
func (v VC) get(i int) uint64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

// join sets v to the componentwise maximum of v and o.
func (v *VC) join(o VC) {
	v.ensure(len(o))
	for i, x := range o {
		if x > (*v)[i] {
			(*v)[i] = x
		}
	}
}

type varState struct {
	// writes[t] is the local clock of thread t's last write; reads[t]
	// likewise for reads (the Djit+ per-variable clocks).
	writes VC
	reads  VC
}

// Race describes one detected data race: two unordered accesses to the same
// variable, at least one a write.
type Race struct {
	// Key identifies the variable ("var/…", "array/…", "ref/…").
	Key string
	// First and Second are the racing threads (Second is the later access).
	First, Second vthread.ThreadID
	// SecondWrite reports whether the later access was a write.
	SecondWrite bool
}

// Detector is a vthread.EventSink that performs happens-before race
// detection over one execution.
type Detector struct {
	clocks []VC          // per-thread clocks
	syncs  map[string]VC // per-sync-object accumulated release clocks
	vars   map[string]*varState
	racy   map[string]bool
	races  []Race
}

var _ vthread.EventSink = (*Detector)(nil)

// NewDetector creates a detector for a single execution.
func NewDetector() *Detector {
	return &Detector{
		syncs: make(map[string]VC),
		vars:  make(map[string]*varState),
		racy:  make(map[string]bool),
	}
}

func (d *Detector) clock(t vthread.ThreadID) *VC {
	for len(d.clocks) <= int(t) {
		id := len(d.clocks)
		c := make(VC, id+1)
		c[id] = 1 // epoch 1: distinguishes "has run" from the zero clock
		d.clocks = append(d.clocks, c)
	}
	return &d.clocks[t]
}

// Spawned implements vthread.EventSink. The explicit edge is carried by the
// Release/Acquire pair on the child's thread key; Spawned only ensures the
// clocks exist in creation order.
func (d *Detector) Spawned(parent, child vthread.ThreadID) {
	d.clock(parent)
	d.clock(child)
}

// Acquire implements vthread.EventSink: the thread's clock absorbs the
// object's accumulated release clock.
func (d *Detector) Acquire(t vthread.ThreadID, key string) {
	c := d.clock(t)
	if l, ok := d.syncs[key]; ok {
		c.join(l)
	}
}

// Release implements vthread.EventSink: the object's clock absorbs the
// thread's, and the thread advances to a fresh epoch.
func (d *Detector) Release(t vthread.ThreadID, key string) {
	c := d.clock(t)
	l := d.syncs[key]
	l.join(*c)
	d.syncs[key] = l
	(*c)[t]++
}

// Access implements vthread.EventSink: Djit+ read/write checks.
func (d *Detector) Access(t vthread.ThreadID, key string, write bool) {
	c := d.clock(t)
	vs := d.vars[key]
	if vs == nil {
		vs = &varState{}
		d.vars[key] = vs
	}
	// A write races with any unordered prior read or write; a read races
	// with any unordered prior write.
	d.check(key, t, *c, vs.writes, write)
	if write {
		d.check(key, t, *c, vs.reads, true)
		vs.writes.ensure(int(t) + 1)
		vs.writes[t] = c.get(int(t))
	} else {
		vs.reads.ensure(int(t) + 1)
		vs.reads[t] = c.get(int(t))
	}
}

func (d *Detector) check(key string, t vthread.ThreadID, c VC, prior VC, write bool) {
	for u, clk := range prior {
		if vthread.ThreadID(u) == t || clk == 0 {
			continue
		}
		if clk > c.get(u) {
			if !d.racy[key] {
				d.racy[key] = true
				d.races = append(d.races, Race{
					Key:         key,
					First:       vthread.ThreadID(u),
					Second:      t,
					SecondWrite: write,
				})
			}
			return
		}
	}
}

// Racy returns the keys of the variables involved in at least one race
// during this execution, sorted for determinism.
func (d *Detector) Racy() []string {
	out := make([]string, 0, len(d.racy))
	for k := range d.racy {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Races returns one representative race per racy variable, in detection
// order.
func (d *Detector) Races() []Race { return d.races }
