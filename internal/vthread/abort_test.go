package vthread

import (
	"runtime"
	"testing"
	"time"
)

// abortAfter aborts at step n (round-robin before that). The returned id
// after an abort is deliberately garbage: the contract says it is ignored.
func abortAfter(n int) Chooser {
	return ChooserFunc(func(ctx Context) ThreadID {
		if ctx.Step >= n {
			ctx.Abort()
			return ThreadID(9999) // ignored by contract, even though not enabled
		}
		return RoundRobin().Choose(ctx)
	})
}

// TestAbortAtStepZero pins the edge case the Context.Abort doc promises:
// aborting before any step runs yields an empty trace, no failure, and a
// substrate that remains fully usable.
func TestAbortAtStepZero(t *testing.T) {
	out := NewWorld(Options{Chooser: abortAfter(0)}).Run(executorTestProgram)
	if !out.Aborted {
		t.Fatal("outcome not marked Aborted")
	}
	if len(out.Trace) != 0 {
		t.Fatalf("aborted at step 0 but trace has %d steps: %v", len(out.Trace), out.Trace)
	}
	if out.Failure != nil {
		t.Fatalf("aborted run reports a failure: %v", out.Failure)
	}
	if out.StepLimitHit {
		t.Fatal("abort misreported as step-limit hit")
	}
}

// TestAbortTwiceIsIdempotent: calling Abort twice within one Choose (and
// again at a later Choose, defensively) must behave exactly like one call.
func TestAbortTwiceIsIdempotent(t *testing.T) {
	calls := 0
	doubleAbort := ChooserFunc(func(ctx Context) ThreadID {
		calls++
		if ctx.Step >= 2 {
			ctx.Abort()
			ctx.Abort()
			return ThreadID(-7)
		}
		return ctx.Enabled[0]
	})
	out := NewWorld(Options{Chooser: doubleAbort}).Run(executorTestProgram)
	if !out.Aborted || len(out.Trace) != 2 || out.Failure != nil {
		t.Fatalf("double abort at step 2: aborted=%v trace=%v failure=%v",
			out.Aborted, out.Trace, out.Failure)
	}
	// The world must stop consulting the chooser after the aborting call.
	if calls != 3 {
		t.Fatalf("chooser consulted %d times, want 3 (two steps + the aborting call)", calls)
	}
}

// TestAbortPrefixMatchesUnaborted: an execution aborted at step n must have
// executed exactly the first n steps of the equivalent full run.
func TestAbortPrefixMatchesUnaborted(t *testing.T) {
	full := NewWorld(Options{Chooser: RoundRobin()}).Run(executorTestProgram)
	if full.Aborted {
		t.Fatal("premise: full run aborted")
	}
	// n stays below the full length: at n == len(full.Trace) the run ends
	// before the chooser is consulted again, so nothing aborts.
	for n := 0; n < len(full.Trace); n += 3 {
		out := NewWorld(Options{Chooser: abortAfter(n)}).Run(executorTestProgram)
		if !out.Aborted {
			t.Fatalf("n=%d: not aborted", n)
		}
		if len(out.Trace) != n || !out.Trace.Equal(full.Trace[:n]) {
			t.Fatalf("n=%d: aborted trace %v, want prefix %v", n, out.Trace, full.Trace[:n])
		}
	}
}

// TestAbortExecutorStaysReusable pins the tentpole substrate contract: an
// Executor whose runs are chooser-aborted (at every depth, including 0)
// keeps its worker pool, leaks no goroutines, and still produces
// World-identical outcomes afterwards.
func TestAbortExecutorStaysReusable(t *testing.T) {
	start := runtime.NumGoroutine()
	ex := NewExecutor(Options{})

	// Warm the pool with one full run, then hammer aborts at varying depths.
	ex.RunWith(RoundRobin(), nil, executorTestProgram)
	base := runtime.NumGoroutine()
	for i := 0; i < 5000; i++ {
		out := ex.RunWith(abortAfter(i%7), nil, executorTestProgram)
		if !out.Aborted || out.Failure != nil {
			t.Fatalf("run %d: aborted=%v failure=%v", i, out.Aborted, out.Failure)
		}
		if len(out.Trace) != i%7 {
			t.Fatalf("run %d: trace length %d, want %d", i, len(out.Trace), i%7)
		}
	}
	if now := runtime.NumGoroutine(); now > base+2 {
		t.Fatalf("goroutines grew across 5k aborted executions: %d -> %d", base, now)
	}

	// Interleave aborted and clean runs: outcomes must match a fresh World.
	for seed := uint64(0); seed < 20; seed++ {
		ex.RunWith(abortAfter(int(seed)%5), nil, executorTestProgram)
		want := NewWorld(Options{Chooser: NewRandom(seed)}).Run(executorTestProgram)
		got := ex.RunWith(NewRandom(seed), nil, executorTestProgram)
		if !outcomesEqual(want, got) {
			t.Fatalf("seed %d after aborts: executor outcome differs\n got %+v\nwant %+v",
				seed, got, want)
		}
	}

	ex.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > start+1 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > start+1 {
		t.Fatalf("pool not drained by Close after aborts: %d goroutines, started with %d", now, start)
	}
}

// TestAbortWithDeadlockProgram: aborting a run whose threads would deadlock
// must not classify the blocked threads as a deadlock — the outcome is
// decided by the abort, not by finishIdle.
func TestAbortWithDeadlockProgram(t *testing.T) {
	ex := NewExecutor(Options{})
	defer ex.Close()
	out := ex.RunWith(abortAfter(1), nil, deadlockProgram)
	if !out.Aborted || out.Failure != nil {
		t.Fatalf("aborted=%v failure=%v, want aborted with nil failure", out.Aborted, out.Failure)
	}
	// And the very next run still detects the deadlock normally.
	out = ex.RunWith(RoundRobin(), nil, deadlockProgram)
	if out.Failure == nil || out.Failure.Kind != FailDeadlock {
		t.Fatalf("post-abort run missed the deadlock: %v", out.Failure)
	}
}
