package bench

// The GoIdiom benchmark family: Go's native concurrency idioms — worker
// pools over channels, fan-in/fan-out pipelines, cancellation via closed
// channels, multi-way select, sync.WaitGroup and sync.Once — none of which
// the pthread-style SCTBench programs (or the original study) could
// express. The family extends the registry past the paper's 52 rows (ids
// 52+, excluded from the Table 1 reproduction) and re-runs the technique
// comparison on a scenario class with a decision dimension the paper's
// programs lack: a multi-way select with several ready cases is a
// *case-decision* scheduling point (vthread.Context.SelectOf), so two of
// these bugs are reachable with zero preemptions and zero delays — pure
// select nondeterminism, cost-free for the bounded techniques — while the
// rest are classic one-preemption check-then-act races dressed in channel
// clothing.
//
// Like every suite file, each program confines all state to the body (the
// compiled forms instantiate their environment per run), so one Benchmark
// value can be executed concurrently by the parallel exploration workers.
// Plain Go locals shared between closures (pipeline_bad's `total`,
// select_starve_bad's `processed`) compile to invisible Cells.

import "sctbench/internal/vthread"

func init() {
	register(&Benchmark{
		ID: 52, Name: "goidiom.workerpool_bad", Suite: "GoIdiom", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "worker pool over a jobs channel: unsynchronised result aggregation loses an update",
		New:     func() vthread.Runnable { return compiledWorkerpool() },
		Ref:     refWorkerpool,
	})

	register(&Benchmark{
		ID: 53, Name: "goidiom.pipeline_bad", Suite: "GoIdiom", Threads: 4,
		BugKind: vthread.FailCrash,
		Desc:    "fan-in pipeline: racy last-producer-closes flag double-closes the merged channel",
		New:     func() vthread.Runnable { return compiledPipeline() },
		Ref:     refPipeline,
	})

	register(&Benchmark{
		ID: 54, Name: "goidiom.cancel_bad", Suite: "GoIdiom", Threads: 3,
		BugKind: vthread.FailDeadlock,
		Desc:    "cancellation via closed channel: worker honours the done case while the producer still blocks on a send",
		New:     func() vthread.Runnable { return compiledCancel() },
		Ref:     refCancel,
	})

	register(&Benchmark{
		ID: 55, Name: "goidiom.wgdone_bad", Suite: "GoIdiom", Threads: 3,
		BugKind: vthread.FailCrash,
		Desc:    "double Done: two cleanup paths race on an ownership flag and both decrement the WaitGroup",
		New:     func() vthread.Runnable { return compiledWgdone() },
		Ref:     refWgdone,
	})

	register(&Benchmark{
		ID: 56, Name: "goidiom.select_starve_bad", Suite: "GoIdiom", Threads: 3,
		BugKind: vthread.FailAssert,
		Desc:    "select starvation: the quit case can win over pending requests, which then go unprocessed",
		New:     func() vthread.Runnable { return compiledSelectStarve() },
		Ref:     refSelectStarve,
	})

	register(&Benchmark{
		ID: 57, Name: "goidiom.once_reenter_bad", Suite: "GoIdiom", Threads: 3,
		BugKind: vthread.FailDeadlock,
		Desc:    "Once reentrancy: a racy readiness flag lets the init body re-enter its own Once (Go: self-deadlock)",
		New:     func() vthread.Runnable { return compiledOnceReenter() },
		Ref:     refOnceReenter,
	})
}

func refWorkerpool() vthread.Program {
	return func(t0 *vthread.Thread) {
		jobs := t0.NewChan("jobs", 3)
		sum := t0.NewVar("sum", 0)
		wg := t0.NewWaitGroup("wg")
		wg.Add(t0, 2)
		worker := func(tw *vthread.Thread) {
			for {
				v, ok := jobs.Recv(tw)
				if !ok {
					break
				}
				// Bug: the aggregate is a plain read-modify-write;
				// two workers interleaving here lose an update.
				sum.Add(tw, v)
			}
			wg.Done(tw)
		}
		t0.Spawn(worker)
		t0.Spawn(worker)
		for i := 1; i <= 3; i++ {
			jobs.Send(t0, i)
		}
		jobs.Close(t0)
		wg.Wait(t0)
		t0.Assert(sum.Load(t0) == 6, "worker pool lost an update: sum=%d", sum.Load(t0))
	}
}

func compiledWorkerpool() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	jobs := p.Chan("jobs", 3)
	sum := p.Var("sum", 0)
	wg := p.WaitGroup("wg")
	wk := p.Body(0, 0)
	wk.While(true, func() {
		v, ok := wk.Recv(jobs)
		wk.If(eq(ok, 0), func() { wk.Break() })
		wk.AddVar(sum, v)
	})
	wk.WGDone(wg)
	mn := p.Main()
	mn.WGAdd(wg, 2)
	mn.Spawn(wk)
	mn.Spawn(wk)
	for i := 1; i <= 3; i++ {
		mn.Send(jobs, i)
	}
	mn.CloseChan(jobs)
	mn.WGWait(wg)
	c1 := mn.Load(sum)
	c2 := mn.Load(sum)
	mn.Assert(eq(c1, 6), "worker pool lost an update: sum=%d", c2)
	return p.Build()
}

func refPipeline() vthread.Program {
	return func(t0 *vthread.Thread) {
		out := t0.NewChan("out", 4)
		wg := t0.NewWaitGroup("producers")
		closed := t0.NewVar("closed", 0)
		wg.Add(t0, 2)
		producer := func(base int) vthread.Program {
			return func(tw *vthread.Thread) {
				out.Send(tw, base)
				out.Send(tw, base+1)
				wg.Done(tw)
				wg.Wait(tw) // both producers drain past here together
				// Bug: "whoever gets here first closes" is a
				// check-then-act on a plain flag; two producers
				// interleaving between the load and the store both
				// close the merged channel (Go: panic).
				if closed.Load(tw) == 0 {
					closed.Store(tw, 1)
					out.Close(tw)
				}
			}
		}
		t0.Spawn(producer(10))
		t0.Spawn(producer(20))
		total := 0
		consumer := t0.Spawn(func(tw *vthread.Thread) {
			for {
				v, ok := out.Recv(tw)
				if !ok {
					return
				}
				total += v
			}
		})
		t0.Join(consumer)
		t0.Assert(total == 62, "pipeline dropped values: total=%d", total)
	}
}

func compiledPipeline() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	out := p.Chan("out", 4)
	wg := p.WaitGroup("producers")
	closed := p.Var("closed", 0)
	total := p.Cell(0) // the consumer's plain Go local, shared with main
	prod := p.Body(1, 0)
	prod.Send(out, prod.Arg(0))
	prod.Send(out, plus(prod.Arg(0), 1))
	prod.WGDone(wg)
	prod.WGWait(wg)
	c := prod.Load(closed)
	prod.If(eq(c, 0), func() {
		prod.Store(closed, 1)
		prod.CloseChan(out)
	})
	cons := p.Body(0, 0)
	cons.While(true, func() {
		v, ok := cons.Recv(out)
		cons.If(eq(ok, 0), func() { cons.Return() })
		cons.SetCell(total, func(t *vthread.Thread) int { return t.Cell(total) + t.Reg(v) })
	})
	mn := p.Main()
	mn.WGAdd(wg, 2)
	mn.Spawn(prod, 10)
	mn.Spawn(prod, 20)
	hc := mn.Spawn(cons)
	mn.Join(hc)
	mn.Assert(func(t *vthread.Thread) bool { return t.Cell(total) == 62 },
		"pipeline dropped values: total=%d", total)
	return p.Build()
}

func refCancel() vthread.Program {
	return func(t0 *vthread.Thread) {
		work := t0.NewChan("work", 1)
		done := t0.NewChan("done", 1)
		producer := t0.Spawn(func(tw *vthread.Thread) {
			// The second send blocks until the worker drains the
			// first; if the worker obeys the cancellation first,
			// nobody ever will (Go's classic leaked-producer bug,
			// here surfacing as a modelled deadlock).
			work.Send(tw, 1)
			work.Send(tw, 2)
		})
		worker := t0.Spawn(func(tw *vthread.Thread) {
			for {
				idx, _, _ := tw.Select([]vthread.SelectCase{
					vthread.RecvCase(work),
					vthread.RecvCase(done),
				}, false)
				if idx == 1 {
					return // cancelled
				}
			}
		})
		done.Close(t0)
		t0.Join(producer)
		t0.Join(worker)
	}
}

func compiledCancel() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	work := p.Chan("work", 1)
	done := p.Chan("done", 1)
	prod := p.Body(0, 0)
	prod.Send(work, 1)
	prod.Send(work, 2)
	wk := p.Body(0, 0)
	wk.While(true, func() {
		idx, _, _ := wk.Select([]vthread.SCase{vthread.RecvC(work), vthread.RecvC(done)}, false)
		wk.If(eq(idx, 1), func() { wk.Return() })
	})
	mn := p.Main()
	hp := mn.Spawn(prod)
	hw := mn.Spawn(wk)
	mn.CloseChan(done)
	mn.Join(hp)
	mn.Join(hw)
	return p.Build()
}

func refWgdone() vthread.Program {
	return func(t0 *vthread.Thread) {
		wg := t0.NewWaitGroup("wg")
		owner := t0.NewVar("owner", 0)
		wg.Add(t0, 1)
		cleanup := func(tw *vthread.Thread) {
			// Bug: "whoever sees the flag unset owns the final
			// Done" is a check-then-act; both cleanups interleaving
			// here drive the counter negative (Go: panic).
			if owner.Load(tw) == 0 {
				owner.Store(tw, 1)
				wg.Done(tw)
			}
		}
		t0.Spawn(cleanup)
		t0.Spawn(cleanup)
		wg.Wait(t0)
	}
}

func compiledWgdone() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	wg := p.WaitGroup("wg")
	owner := p.Var("owner", 0)
	cl := p.Body(0, 0)
	c := cl.Load(owner)
	cl.If(eq(c, 0), func() {
		cl.Store(owner, 1)
		cl.WGDone(wg)
	})
	mn := p.Main()
	mn.WGAdd(wg, 1)
	mn.Spawn(cl)
	mn.Spawn(cl)
	mn.WGWait(wg)
	return p.Build()
}

func refSelectStarve() vthread.Program {
	return func(t0 *vthread.Thread) {
		reqs := t0.NewChan("reqs", 3)
		quit := t0.NewChan("quit", 1)
		processed := 0
		server := t0.Spawn(func(tw *vthread.Thread) {
			for {
				idx, _, _ := tw.Select([]vthread.SelectCase{
					vthread.RecvCase(reqs),
					vthread.RecvCase(quit),
				}, false)
				if idx == 1 {
					return // bug: quits even with requests pending
				}
				processed++
			}
		})
		client := t0.Spawn(func(tw *vthread.Thread) {
			for i := 0; i < 3; i++ {
				reqs.Send(tw, i) // buffered: never blocks
			}
			quit.Send(tw, 0)
		})
		t0.Join(client)
		t0.Join(server)
		t0.Assert(processed == 3, "server quit with %d of 3 requests processed", processed)
	}
}

func compiledSelectStarve() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	reqs := p.Chan("reqs", 3)
	quit := p.Chan("quit", 1)
	processed := p.Cell(0) // the server's plain Go local, shared with main
	srv := p.Body(0, 0)
	srv.While(true, func() {
		idx, _, _ := srv.Select([]vthread.SCase{vthread.RecvC(reqs), vthread.RecvC(quit)}, false)
		srv.If(eq(idx, 1), func() { srv.Return() })
		srv.SetCell(processed, func(t *vthread.Thread) int { return t.Cell(processed) + 1 })
	})
	cli := p.Body(0, 0)
	for i := 0; i < 3; i++ {
		cli.Send(reqs, i)
	}
	cli.Send(quit, 0)
	mn := p.Main()
	hs := mn.Spawn(srv)
	hc := mn.Spawn(cli)
	mn.Join(hc)
	mn.Join(hs)
	mn.Assert(func(t *vthread.Thread) bool { return t.Cell(processed) == 3 },
		"server quit with %d of 3 requests processed", processed)
	return p.Build()
}

func refOnceReenter() vthread.Program {
	return func(t0 *vthread.Thread) {
		once := t0.NewOnce("init")
		ready := t0.NewVar("ready", 0)
		fallback := func(tw *vthread.Thread) {}
		setter := t0.Spawn(func(tw *vthread.Thread) {
			ready.Store(tw, 1)
		})
		initer := t0.Spawn(func(tw *vthread.Thread) {
			once.Do(tw, func(ti *vthread.Thread) {
				// Bug: when the setter has not run yet, the init
				// body takes the fallback path — which re-enters
				// the same Once. Go's sync.Once self-deadlocks.
				if ready.Load(ti) == 0 {
					once.Do(ti, fallback)
				}
			})
		})
		t0.Join(setter)
		t0.Join(initer)
	}
}

func compiledOnceReenter() *vthread.CompiledProgram {
	p := vthread.NewBuilder()
	once := p.Once("init")
	ready := p.Var("ready", 0)
	set := p.Body(0, 0)
	set.Store(ready, 1)
	ini := p.Body(0, 0)
	ini.OnceDo(once, func() {
		r := ini.Load(ready)
		ini.If(eq(r, 0), func() {
			ini.OnceDo(once, func() {})
		})
	})
	mn := p.Main()
	h1 := mn.Spawn(set)
	h2 := mn.Spawn(ini)
	mn.Join(h1)
	mn.Join(h2)
	return p.Build()
}
