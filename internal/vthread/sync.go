package vthread

// This file implements the synchronisation objects of the substrate. Every
// blocking/releasing operation is a visible operation (§2 of the paper):
// the thread parks with a pending op describing what it wants to do, the
// scheduler grants it only when the op is enabled, and the op then executes
// atomically with respect to other virtual threads (execution is serial).
//
// Misuse that corresponds to real memory-safety bugs in the benchmark suite
// (double unlock, use after destroy, wait without the mutex held) is
// modelled as a crash failure rather than a Go panic, because those are
// exactly the bugs several SCTBench programs plant (CB.pbzip2,
// radbench.bug1, radbench.bug4).

// Mutex is a non-recursive mutual-exclusion lock.
type Mutex struct {
	key       string
	owner     *Thread
	destroyed bool
}

// NewMutex creates a mutex. The name must be unique within the program; it
// keys the happens-before edges seen by the race detector.
func (t *Thread) NewMutex(name string) *Mutex {
	return &Mutex{key: "mutex/" + name}
}

// Lock acquires m. The thread is disabled while another thread holds m.
// Locking a destroyed mutex is a modelled crash.
func (m *Mutex) Lock(t *Thread) {
	t.visible(pendingOp{kind: opLock, mutex: m})
	m.lockCommit(t)
}

// lockCommit is Lock's granted effect, shared with the compiled-program
// interpreter (see prog.go): every visible operation in this file is split
// into its registration (the pendingOp) and its commit so both engines
// execute the identical effect code.
func (m *Mutex) lockCommit(t *Thread) {
	if m.destroyed {
		t.crash("lock of destroyed mutex %s", m.key)
	}
	m.owner = t
	t.sinkAcquire(m.key)
}

// Unlock releases m. Unlocking a mutex the thread does not hold is a
// modelled crash (undefined behaviour for pthread mutexes, and the actual
// failure mode of the radbench.bug4 analogue).
func (m *Mutex) Unlock(t *Thread) {
	t.visible(pendingOp{kind: opUnlock, mutex: m})
	m.unlockCommit(t)
}

func (m *Mutex) unlockCommit(t *Thread) {
	if m.destroyed {
		t.crash("unlock of destroyed mutex %s", m.key)
	}
	if m.owner != t {
		t.crash("unlock of mutex %s not held by %s", m.key, t.name)
	}
	t.sinkRelease(m.key)
	m.owner = nil
}

// TryLock attempts to acquire m without blocking; it is a visible operation
// whether or not it succeeds.
func (m *Mutex) TryLock(t *Thread) bool {
	t.visible(pendingOp{kind: opAtomic, mutex: m, key: m.key})
	return m.tryLockCommit(t)
}

func (m *Mutex) tryLockCommit(t *Thread) bool {
	if m.destroyed {
		t.crash("trylock of destroyed mutex %s", m.key)
	}
	if m.owner != nil {
		return false
	}
	m.owner = t
	t.sinkAcquire(m.key)
	return true
}

// Destroy marks the mutex destroyed; any later use crashes. Destroying a
// held mutex crashes immediately.
func (m *Mutex) Destroy(t *Thread) {
	t.visible(pendingOp{kind: opDestroy, mutex: m})
	m.destroyCommit(t)
}

func (m *Mutex) destroyCommit(t *Thread) {
	if m.owner != nil {
		t.crash("destroy of held mutex %s", m.key)
	}
	m.destroyed = true
}

// HeldBy reports whether t currently owns the mutex. Invisible (a pure
// inspection helper for assertions in programs under test).
func (m *Mutex) HeldBy(t *Thread) bool { return m.owner == t }

// Cond is a condition variable with FIFO wakeup order. FIFO makes the
// wakeup deterministic given the schedule; the scheduler still controls all
// interleaving through the two scheduling points of Wait (the wait itself
// and the re-acquisition).
type Cond struct {
	key     string
	waiters []*Thread
}

// NewCond creates a condition variable. The name must be unique within the
// program.
func (t *Thread) NewCond(name string) *Cond {
	return &Cond{key: "cond/" + name}
}

// Wait atomically releases m and blocks until signalled, then re-acquires
// m. The caller must hold m. Both the wait and the re-acquisition are
// scheduling points, so a signalled waiter races with other threads for the
// mutex exactly as in pthreads.
func (c *Cond) Wait(t *Thread, m *Mutex) {
	t.visible(pendingOp{kind: opCondWait, cond: c, mutex: m})
	c.waitCommit(t, m)
	t.visible(pendingOp{kind: opCondResume, cond: c, mutex: m, thread: t})
	c.resumeCommit(t, m)
}

// waitCommit is the first phase of Wait: release the mutex and enqueue.
func (c *Cond) waitCommit(t *Thread, m *Mutex) {
	if m.owner != t {
		t.crash("cond wait on %s without holding %s", c.key, m.key)
	}
	t.sinkRelease(m.key)
	m.owner = nil
	t.woken = false
	c.waiters = append(c.waiters, t)
}

// resumeCommit is the second phase of Wait: the woken waiter re-acquires.
func (c *Cond) resumeCommit(t *Thread, m *Mutex) {
	if m.destroyed {
		t.crash("wakeup on destroyed mutex %s", m.key)
	}
	m.owner = t
	t.sinkAcquire(m.key)
	t.sinkAcquire(c.key)
}

// Signal wakes the longest-waiting waiter, if any. Signalling with no
// waiter is a no-op (pthread semantics — the wakeup is lost).
func (c *Cond) Signal(t *Thread) {
	t.visible(pendingOp{kind: opSignal, cond: c})
	c.signalCommit(t)
}

func (c *Cond) signalCommit(t *Thread) {
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.woken = true
		t.sinkRelease(c.key)
	}
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast(t *Thread) {
	t.visible(pendingOp{kind: opBroadcast, cond: c})
	c.broadcastCommit(t)
}

func (c *Cond) broadcastCommit(t *Thread) {
	if len(c.waiters) > 0 {
		for _, w := range c.waiters {
			w.woken = true
		}
		c.waiters = c.waiters[:0]
		t.sinkRelease(c.key)
	}
}

// Sem is a counting semaphore.
type Sem struct {
	key   string
	count int
}

// NewSem creates a semaphore with the given initial count. The name must be
// unique within the program.
func (t *Thread) NewSem(name string, count int) *Sem {
	if count < 0 {
		panic("vthread: negative initial semaphore count")
	}
	return &Sem{key: "sem/" + name, count: count}
}

// P (wait/down) decrements the semaphore, blocking while the count is zero.
func (s *Sem) P(t *Thread) {
	t.visible(pendingOp{kind: opSemP, sem: s})
	s.pCommit(t)
}

func (s *Sem) pCommit(t *Thread) {
	s.count--
	t.sinkAcquire(s.key)
}

// V (post/up) increments the semaphore.
func (s *Sem) V(t *Thread) {
	t.visible(pendingOp{kind: opSemV, sem: s})
	s.vCommit(t)
}

func (s *Sem) vCommit(t *Thread) {
	s.count++
	t.sinkRelease(s.key)
}

// Count returns the current count (invisible inspection helper).
func (s *Sem) Count() int { return s.count }

// Barrier is an n-party generation barrier. The order in which released
// waiters leave the barrier is under scheduler control, which is the
// nondeterminism the SPLASH-2 and streamcluster benchmarks exercise.
type Barrier struct {
	key     string
	parties int
	arrived int
	gen     uint64
}

// NewBarrier creates a barrier for parties threads. The name must be unique
// within the program.
func (t *Thread) NewBarrier(name string, parties int) *Barrier {
	if parties <= 0 {
		panic("vthread: barrier needs at least one party")
	}
	return &Barrier{key: "barrier/" + name, parties: parties}
}

// Arrive enters the barrier and blocks until all parties have arrived. The
// last arriver passes through without blocking; the remaining waiters
// become enabled simultaneously and leave in scheduler-chosen order.
func (b *Barrier) Arrive(t *Thread) {
	t.visible(pendingOp{kind: opBarrierArrive, barrier: b})
	if last, gen := b.arriveCommit(t); !last {
		t.visible(pendingOp{kind: opBarrierWait, barrier: b, gen: gen})
		t.sinkAcquire(b.key)
	}
}

// arriveCommit is the entry phase of Arrive. The last arriver passes
// through (last=true); every other arriver must park on opBarrierWait with
// the returned generation snapshot.
func (b *Barrier) arriveCommit(t *Thread) (last bool, gen uint64) {
	t.sinkRelease(b.key)
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		t.sinkAcquire(b.key)
		return true, 0
	}
	return false, b.gen
}

// RWMutex is a writer-preferring reader/writer lock built on the
// substrate's enabledness machinery: readers share, writers exclude, and
// a waiting writer blocks new readers (no writer starvation under fair
// schedules).
type RWMutex struct {
	key            string
	readers        int
	writer         *Thread
	waitingWriters int
}

// NewRWMutex creates a reader/writer lock with the given unique name.
func (t *Thread) NewRWMutex(name string) *RWMutex {
	return &RWMutex{key: "rwmutex/" + name}
}

// RLock acquires the lock shared. Disabled while a writer holds it or
// waits for it.
func (l *RWMutex) RLock(t *Thread) {
	t.visible(pendingOp{kind: opRLock, rw: l})
	l.rlockCommit(t)
}

func (l *RWMutex) rlockCommit(t *Thread) {
	l.readers++
	t.sinkAcquire(l.key)
}

// RUnlock releases a shared hold; releasing without holding is a crash.
func (l *RWMutex) RUnlock(t *Thread) {
	t.visible(pendingOp{kind: opRUnlock, rw: l})
	l.runlockCommit(t)
}

func (l *RWMutex) runlockCommit(t *Thread) {
	if l.readers == 0 {
		t.crash("RUnlock of %s with no readers", l.key)
	}
	t.sinkRelease(l.key)
	l.readers--
}

// Lock acquires the lock exclusive. The thread is disabled while readers
// or another writer hold the lock; while it waits, new readers are held
// off (writer preference).
func (l *RWMutex) Lock(t *Thread) {
	l.waitingWriters++ // registration-time: holds off new readers while parked
	t.visible(pendingOp{kind: opWLock, rw: l})
	l.wlockCommit(t)
}

func (l *RWMutex) wlockCommit(t *Thread) {
	l.waitingWriters--
	l.writer = t
	t.sinkAcquire(l.key)
}

// Unlock releases the exclusive hold; releasing without holding crashes.
func (l *RWMutex) Unlock(t *Thread) {
	t.visible(pendingOp{kind: opWUnlock, rw: l})
	l.wunlockCommit(t)
}

func (l *RWMutex) wunlockCommit(t *Thread) {
	if l.writer != t {
		t.crash("Unlock of %s not held by %s", l.key, t.name)
	}
	t.sinkRelease(l.key)
	l.writer = nil
}

// WaitGroup models sync.WaitGroup: a counter that Wait blocks on until it
// reaches zero. Add and Done are release operations and Wait is an acquire
// for the race detector's happens-before relation, matching the Go memory
// model (a Done happens before the Wait it unblocks).
type WaitGroup struct {
	key   string
	count int
}

// NewWaitGroup creates a WaitGroup with the given unique name and a zero
// counter.
func (t *Thread) NewWaitGroup(name string) *WaitGroup {
	return &WaitGroup{key: "wg/" + name}
}

// Add adds delta (which may be negative) to the counter. Driving the
// counter negative is a modelled crash, exactly Go's "negative WaitGroup
// counter" panic — the double-Done bug class.
func (g *WaitGroup) Add(t *Thread, delta int) {
	t.visible(pendingOp{kind: opWGAdd, wg: g})
	g.addCommit(t, delta)
}

func (g *WaitGroup) addCommit(t *Thread, delta int) {
	g.count += delta
	if g.count < 0 {
		t.crash("negative WaitGroup counter on %s", g.key)
	}
	t.sinkRelease(g.key)
}

// Done decrements the counter by one.
func (g *WaitGroup) Done(t *Thread) { g.Add(t, -1) }

// Wait blocks until the counter is zero.
func (g *WaitGroup) Wait(t *Thread) {
	t.visible(pendingOp{kind: opWGWait, wg: g})
	t.sinkAcquire(g.key)
}

// Count returns the current counter (invisible inspection helper).
func (g *WaitGroup) Count() int { return g.count }

// Once models sync.Once: the first caller of Do runs f, later callers
// block until f has completed and then return without running anything.
// Go's semantics are preserved precisely, including the self-deadlock of a
// reentrant Do (calling Do on the same Once from inside f): the inner call
// is disabled until the outer completes, which can never happen.
type Once struct {
	key     string
	started bool
	done    bool
}

// NewOnce creates a Once with the given unique name.
func (t *Thread) NewOnce(name string) *Once {
	return &Once{key: "once/" + name}
}

// Do runs f if no Do on this Once has run before, and otherwise blocks
// until the first caller's f has completed. Entry and completion are each
// one visible operation; f's own visible operations schedule as usual in
// between. The completion is a release and a latecomer's entry an acquire,
// giving the race detector the "f happens before any Do return" edge of
// the Go memory model.
func (o *Once) Do(t *Thread, f Program) {
	t.visible(pendingOp{kind: opOnceDo, once: o})
	if !o.entryCommit(t) {
		return
	}
	f(t)
	t.visible(pendingOp{kind: opOnceDone, once: o})
	o.completeCommit(t)
}

// entryCommit is the Do entry: false means the Once had completed and the
// caller returns without running f (the acquire pairs with completeCommit's
// release).
func (o *Once) entryCommit(t *Thread) bool {
	if o.done {
		t.sinkAcquire(o.key)
		return false
	}
	o.started = true
	return true
}

// completeCommit is the opOnceDone effect: f has returned.
func (o *Once) completeCommit(t *Thread) {
	o.done = true
	t.sinkRelease(o.key)
}

// DoneOnce reports whether the Once has completed (invisible inspection
// helper).
func (o *Once) DoneOnce() bool { return o.done }
