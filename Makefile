# Developer entry points; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test bench lint study clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 3x .

lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...

# The full empirical study (Tables 2-3, Figures 2-4); see EXPERIMENTS.md.
study:
	$(GO) run ./cmd/sctbench

clean:
	$(GO) clean ./...
