// Package vthread implements the cooperative virtual-threading substrate on
// which all systematic concurrency testing (SCT) in this repository runs.
//
// Programs are written against an explicit API: virtual threads are spawned
// with Spawn, synchronise through Mutex/Cond/Sem/Barrier, and share state
// through IntVar/Atomic/Array objects. A World executes a program with
// concurrency fully serialised: exactly one virtual thread runs at a time,
// and at every visible operation (§2 of Thomson et al., PPoPP'14) a pluggable
// Chooser decides which enabled thread performs the next step. Executions are
// deterministic given the sequence of choices, which is what makes stateless
// model checking — repeated execution under different schedules — possible.
//
// The substrate corresponds to the modified Maple tool of the paper: Maple
// serialises pthread programs via PIN instrumentation; we serialise virtual
// threads via channel-gated goroutines, because the Go runtime scheduler
// cannot be hooked. The visible-operation model, enabledness semantics,
// deadlock detection and schedule accounting follow the paper's §2 directly.
package vthread

import (
	"fmt"
	"sync"

	"sctbench/internal/sched"
)

// ThreadID identifies a virtual thread within one execution. Threads are
// numbered in creation order starting from 0 (the initial thread), exactly
// as the delay-bounding definition in the paper requires.
type ThreadID = sched.ThreadID

// NoThread is the sentinel used before any thread has run.
const NoThread = sched.NoThread

// Program is the body of the initial thread (thread 0) of an execution.
type Program func(t *Thread)

// Context describes one scheduling point: the state a Chooser sees when it
// must pick the next thread to run.
type Context struct {
	// Step is the index of this scheduling point in the execution (0-based).
	Step int
	// Enabled lists the enabled threads in ascending ThreadID order. It is
	// never empty and must not be mutated.
	Enabled []ThreadID
	// Last is the thread that executed the previous step, or NoThread at the
	// first step.
	Last ThreadID
	// LastEnabled reports whether Last is currently enabled (i.e. whether
	// switching away from it would be a preemptive context switch).
	LastEnabled bool
	// NumThreads is the number of threads created so far (ids 0..NumThreads-1).
	NumThreads int
	// PendingOf reports what operation a thread is about to perform —
	// enough for idiom-driven active scheduling (the Maple algorithm) to
	// steer particular accesses. Valid for any non-exited thread.
	PendingOf func(ThreadID) PendingInfo

	// world backs Abort. A Context is only valid during the Choose call it
	// was built for, which is what makes the pointer safe to embed.
	world *World
}

// Abort requests that the execution stop at this scheduling point instead
// of performing another step. The World kills every remaining thread
// through the ordinary teardown path (kill-by-grant, so pooled Executor
// workers survive and the Executor stays reusable) and returns an Outcome
// with Aborted set: no further step is executed, the Trace holds exactly
// the prefix executed so far, and Failure is nil. The thread id the
// Chooser returns from the same Choose call is ignored (it may be any
// value, enabled or not).
//
// Abort is the pruning hook of the exploration engines: a chooser that can
// prove the remainder of the execution redundant (for example because
// every enabled thread is in a sleep set) cuts the run short rather than
// paying for the schedule's tail. Calling Abort more than once within a
// Choose call is idempotent; calling it at step 0 aborts before any step
// runs (empty trace). A Context must not be retained: Abort outside the
// Choose invocation the Context was passed to is unsupported.
func (c Context) Abort() {
	c.world.aborted = true
}

// PendingInfo describes a parked thread's next visible operation: enough
// for idiom-driven active scheduling (the Maple algorithm) to steer
// particular accesses, and for partial-order reduction to judge
// independence of pending operations.
type PendingInfo struct {
	// IsAccess reports a promoted shared-memory access.
	IsAccess bool
	// Key is the accessed variable's key (empty unless IsAccess).
	Key string
	// IsWrite distinguishes stores from loads (meaningful only when
	// IsAccess).
	IsWrite bool
	// Objects lists the shared objects the operation touches (at most
	// two: a condvar wait touches the condvar and the mutex). Empty
	// entries mean "touches nothing shared" (spawn, yield).
	Objects [2]string
	// ReadOnly reports that the operation does not modify its objects
	// (a load, a read-lock). Two read-only operations on the same object
	// commute.
	ReadOnly bool
	// Opaque reports that the operation's footprint is unknown: a Yield
	// gates arbitrary invisible statements (the figure-1 idiom models
	// plain-variable accesses exactly this way), so nothing can be proven
	// about what commutes with it. An opaque operation is never
	// independent of anything, other opaque operations and footprint-free
	// operations included.
	Opaque bool
	// IsJoin marks a thread join, and JoinOf is then the joined thread's
	// id (undefined otherwise). Exits are not scheduling points, so a
	// joined thread's steps never touch the join's thread-key object;
	// partial-order reduction needs this field to recover the
	// target-exits-before-join ordering edge.
	IsJoin bool
	JoinOf ThreadID
}

// Independent reports whether two pending operations commute: they touch
// disjoint objects, or share objects only read-only, and neither has an
// unknown (Opaque) footprint. Conservative in the partial-order-reduction
// sense: "false" is always safe.
func (a PendingInfo) Independent(b PendingInfo) bool {
	if a.Opaque || b.Opaque {
		return false
	}
	for _, x := range a.Objects {
		if x == "" {
			continue
		}
		for _, y := range b.Objects {
			if x == y && !(a.ReadOnly && b.ReadOnly) {
				return false
			}
		}
	}
	return true
}

// Chooser selects the next thread to execute at a scheduling point. The
// returned id must be an element of ctx.Enabled; the World panics otherwise,
// since a chooser violating this invariant is an implementation bug, not a
// property of the program under test. The one exception: a Choose call
// that invoked ctx.Abort may return anything — the execution stops at this
// point and the value is ignored (see Context.Abort).
type Chooser interface {
	Choose(ctx Context) ThreadID
}

// ChooserFunc adapts a function to the Chooser interface.
type ChooserFunc func(ctx Context) ThreadID

// Choose calls f(ctx).
func (f ChooserFunc) Choose(ctx Context) ThreadID { return f(ctx) }

// EventSink observes the synchronisation and memory-access events of an
// execution. It is how the dynamic race detector (internal/race) watches a
// run. All callbacks happen on the single executing thread; implementations
// need no locking.
type EventSink interface {
	// Access reports a shared-memory access to the variable identified by
	// key. write distinguishes stores from loads.
	Access(t ThreadID, key string, write bool)
	// Acquire reports an acquire-side synchronisation on the object key
	// (mutex lock, semaphore P, condvar wakeup, barrier exit, join).
	Acquire(t ThreadID, key string)
	// Release reports a release-side synchronisation on the object key
	// (mutex unlock, semaphore V, condvar signal, barrier entry, exit).
	Release(t ThreadID, key string)
	// Spawned reports creation of a child thread by parent.
	Spawned(parent, child ThreadID)
}

// Options configures a World.
//
// Concurrency contract: a World and everything wired into it (the Chooser,
// the Sink) are confined to the goroutine that calls Run — none of them is
// ever called from two goroutines at once, so implementations need no
// locking. Distinct Worlds share no state (the package has no mutable
// globals), so running one World per goroutine is safe; that is exactly
// how the parallel exploration driver uses this package. The one shared
// input is the Program value itself: with concurrent Worlds it is invoked
// concurrently and must confine all state to the invocation.
type Options struct {
	// Chooser picks the next thread at every scheduling point. Required.
	Chooser Chooser
	// Visible, when non-nil, restricts which shared variables yield
	// scheduling points: an IntVar/Array access is a visible operation only
	// if Visible(key) is true. Synchronisation operations and Atomics are
	// always visible. A nil Visible treats every shared access as visible
	// (used by the race-detection phase).
	Visible func(key string) bool
	// Sink, when non-nil, observes synchronisation and access events.
	Sink EventSink
	// MaxSteps bounds the number of visible operations in one execution as a
	// livelock guard. Zero means DefaultMaxSteps.
	MaxSteps int
	// BoundsCheck enables the out-of-bounds access detector on Array objects
	// (§4.2 of the paper). When false, out-of-bounds accesses are silently
	// dropped, modelling the paper's observation that such bugs "do not
	// always cause a crash" and are missed without additional checking.
	BoundsCheck bool
}

// DefaultMaxSteps is the per-execution visible-operation budget used when
// Options.MaxSteps is zero.
const DefaultMaxSteps = 200000

// Outcome summarises one terminated execution.
type Outcome struct {
	// Failure is nil for a clean terminal execution and non-nil when the
	// execution exposed a bug (deadlock, assertion failure, crash, …).
	Failure *Failure
	// Trace is the executed schedule: the thread chosen at each scheduling
	// point, in order. A World-produced Outcome owns its trace; an
	// Executor-produced Outcome's trace aliases a buffer the next run
	// rewrites, so retaining callers must Clone it (see Executor).
	Trace sched.Schedule
	// PC and DC are the preemption count and delay count of Trace, computed
	// online with the paper's §2 definitions.
	PC, DC int
	// SchedPoints is the number of scheduling points at which more than one
	// thread was enabled (the paper's "# max scheduling points" is the max
	// of this over all executions of a benchmark).
	SchedPoints int
	// MaxEnabled is the largest number of simultaneously enabled threads
	// observed at any scheduling point.
	MaxEnabled int
	// Threads is the total number of threads created.
	Threads int
	// StepLimitHit reports that the execution was cut off by MaxSteps; such
	// executions are not terminal schedules and their Failure is nil.
	StepLimitHit bool
	// Aborted reports that the Chooser cut the execution short with
	// Context.Abort. Like step-limited runs, aborted runs are not terminal
	// schedules and their Failure is nil; Trace holds the executed prefix.
	Aborted bool
}

// Buggy reports whether the execution exposed a bug.
func (o *Outcome) Buggy() bool { return o.Failure != nil }

type parkKind int

const (
	parkPending parkKind = iota // parked at the next visible operation
	parkExited                  // thread body returned
	parkFailed                  // thread reported a failure; execution aborts
)

// World is a single execution of a Program. A World must not be reused:
// create a fresh World for every execution, or use an Executor, which is a
// resettable World that recycles its thread goroutines and buffers across
// executions.
type World struct {
	opts Options
	pool *Executor // non-nil when owned by an Executor: threads are pooled

	threads []*Thread
	last    ThreadID
	trace   sched.Schedule
	pc, dc  int

	schedPoints int
	maxEnabled  int

	failure      *Failure
	stepLimitHit bool
	aborted      bool

	parked chan parkKind
	wg     sync.WaitGroup

	enabledBuf []ThreadID
	// pendingFn is w.pendingOf bound once; building the method value at
	// every scheduling point would allocate a closure per step.
	pendingFn func(ThreadID) PendingInfo

	// names and keys cache the per-id display names ("T0", …) and
	// sync-object keys ("thread/0", …). Ids repeat across the executions of
	// an Executor, so the formatting cost is paid once per id, not per run.
	names []string
	keys  []string

	running bool
}

// NewWorld creates a single-use execution context with the given options.
func NewWorld(opts Options) *World {
	if opts.Chooser == nil {
		panic("vthread: Options.Chooser is required")
	}
	w := &World{}
	w.init(opts)
	return w
}

// init sets up the invariant parts of a World; shared by NewWorld and
// NewExecutor (which validates the Chooser per run instead).
func (w *World) init(opts Options) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	w.opts = opts
	w.last = NoThread
	w.parked = make(chan parkKind, 1)
	w.pendingFn = w.pendingOf
}

// reset prepares the World for another execution. Only an Executor resets a
// World; the thread pool, trace capacity, enabled buffer and name caches
// survive the reset.
func (w *World) reset() {
	w.threads = w.threads[:0]
	w.last = NoThread
	w.trace = w.trace[:0]
	w.pc, w.dc = 0, 0
	w.schedPoints, w.maxEnabled = 0, 0
	w.failure = nil
	w.stepLimitHit = false
	w.aborted = false
}

// Run executes program to a terminal state (all threads exited), a failure,
// or the step limit, and returns the outcome. Run must be called exactly once
// per World. It returns only after every virtual thread's body has finished
// (exited or unwound), so nothing touches the program's state afterwards.
// The returned Outcome and its Trace are owned by the caller: a single-use
// World never writes to them again.
func (w *World) Run(program Program) *Outcome {
	if w.running {
		panic("vthread: World.Run called twice")
	}
	w.running = true

	w.exec(program)

	out := &Outcome{}
	w.fillOutcome(out)
	return out
}

// exec is the scheduling loop shared by World.Run and Executor runs.
func (w *World) exec(program Program) {
	w.newThread(program)

	for {
		enabled := w.enabledThreads()
		if len(enabled) == 0 {
			w.finishIdle()
			break
		}
		if len(enabled) > 1 {
			w.schedPoints++
		}
		if len(enabled) > w.maxEnabled {
			w.maxEnabled = len(enabled)
		}
		if len(w.trace) >= w.opts.MaxSteps {
			w.stepLimitHit = true
			break
		}

		choice := w.choose(enabled)
		if w.aborted {
			// The chooser pruned the rest of the execution; no further step
			// runs and abortRemaining below kills the surviving threads.
			break
		}
		w.accountStep(choice, enabled)

		t := w.threads[choice]
		t.gate <- struct{}{}
		<-w.parked

		w.last = choice
		// A failure may have been reported by the granted thread itself or,
		// via Spawn's eager prefix execution, by a child it created.
		if w.failure != nil {
			break
		}
	}

	w.abortRemaining()
	w.wg.Wait()
}

// fillOutcome writes the execution's summary into out. The Trace field
// aliases w.trace; the caller decides whether that buffer is single-use
// (World) or recycled (Executor).
func (w *World) fillOutcome(out *Outcome) {
	*out = Outcome{
		Failure:      w.failure,
		Trace:        w.trace,
		PC:           w.pc,
		DC:           w.dc,
		SchedPoints:  w.schedPoints,
		MaxEnabled:   w.maxEnabled,
		Threads:      len(w.threads),
		StepLimitHit: w.stepLimitHit,
		Aborted:      w.aborted,
	}
}

// choose consults the chooser and validates its decision.
func (w *World) choose(enabled []ThreadID) ThreadID {
	ctx := Context{
		Step:        len(w.trace),
		Enabled:     enabled,
		Last:        w.last,
		LastEnabled: w.lastEnabled(enabled),
		NumThreads:  len(w.threads),
		PendingOf:   w.pendingFn,
		world:       w,
	}
	choice := w.opts.Chooser.Choose(ctx)
	if w.aborted {
		// The return value of an aborting Choose is ignored by contract;
		// skip the enabledness validation.
		return NoThread
	}
	if !containsThread(enabled, choice) {
		panic(fmt.Sprintf("vthread: chooser picked thread %d which is not enabled %v", choice, enabled))
	}
	return choice
}

// accountStep appends the choice to the trace and updates the online
// preemption and delay counts with the §2 definitions.
func (w *World) accountStep(choice ThreadID, enabled []ThreadID) {
	lastEnabled := w.lastEnabled(enabled)
	w.pc += sched.PCStep(w.last, lastEnabled, choice)
	w.dc += sched.DCStep(w.last, choice, len(w.threads), func(t ThreadID) bool {
		return containsThread(enabled, t)
	})
	w.trace = append(w.trace, choice)
}

func (w *World) lastEnabled(enabled []ThreadID) bool {
	return w.last != NoThread && containsThread(enabled, w.last)
}

// enabledThreads returns the enabled threads in ascending id order. The
// returned slice is reused across calls.
func (w *World) enabledThreads() []ThreadID {
	w.enabledBuf = w.enabledBuf[:0]
	for _, t := range w.threads {
		if t.state == stateParked && t.pending.enabled(w) {
			w.enabledBuf = append(w.enabledBuf, t.id)
		}
	}
	return w.enabledBuf
}

// finishIdle classifies the no-enabled-thread state: clean termination if
// every thread exited, deadlock otherwise.
func (w *World) finishIdle() {
	var blocked []ThreadID
	for _, t := range w.threads {
		if t.state != stateExited {
			blocked = append(blocked, t.id)
		}
	}
	if len(blocked) > 0 && w.failure == nil {
		w.failure = &Failure{
			Kind:    FailDeadlock,
			Thread:  blocked[0],
			Message: fmt.Sprintf("deadlock: threads %v blocked with no enabled thread", blocked),
		}
	}
}

// abortRemaining kills every thread that has not exited so its body
// unwinds. Called once the execution outcome is decided. Every non-exited
// thread is blocked in (or about to enter) awaitGrant, so the kill is a
// grant with killed set: the thread panics with killSignal out of the
// receive and unwinds without touching shared state or parking again.
// The gate is never closed — it is recycled by the Executor pool — and
// exec's wg.Wait observes the unwinding complete.
func (w *World) abortRemaining() {
	for _, t := range w.threads {
		if t.state == stateExited {
			continue
		}
		t.killed = true
		t.state = stateExited
		t.gate <- struct{}{}
	}
}

// fail records the first failure of the execution.
func (w *World) fail(f *Failure) {
	if w.failure == nil {
		w.failure = f
	}
}

// pendingOf exposes pending-operation metadata to choosers.
func (w *World) pendingOf(t ThreadID) PendingInfo {
	if int(t) < 0 || int(t) >= len(w.threads) {
		return PendingInfo{}
	}
	op := w.threads[t].pending
	info := PendingInfo{}
	switch op.kind {
	case opAccess:
		info.IsAccess = true
		info.Key = op.key
		info.IsWrite = op.write
		info.Objects[0] = op.key
		info.ReadOnly = !op.write
	case opLock, opUnlock, opDestroy:
		info.Objects[0] = op.mutex.key
	case opCondWait, opCondResume:
		info.Objects[0] = op.cond.key
		info.Objects[1] = op.mutex.key
	case opSignal, opBroadcast:
		info.Objects[0] = op.cond.key
	case opSemP, opSemV:
		info.Objects[0] = op.sem.key
	case opBarrierArrive, opBarrierWait:
		info.Objects[0] = op.barrier.key
	case opJoin:
		info.Objects[0] = op.target.key
		info.ReadOnly = true
		info.IsJoin = true
		info.JoinOf = op.target.id
	case opAtomic:
		info.Objects[0] = op.key
	case opRLock, opRUnlock:
		info.Objects[0] = op.rw.key
		info.ReadOnly = true
	case opWLock, opWUnlock:
		info.Objects[0] = op.rw.key
	case opSpawn:
		// No shared objects: commutes with everything.
	case opYield:
		// A yield gates arbitrary invisible statements; its footprint is
		// unknown, so it commutes with nothing (see PendingInfo.Opaque).
		info.Opaque = true
	}
	return info
}

func (w *World) isVisibleVar(key string) bool {
	if w.opts.Visible == nil {
		return true
	}
	return w.opts.Visible(key)
}

func containsThread(s []ThreadID, t ThreadID) bool {
	for _, x := range s {
		if x == t {
			return true
		}
	}
	return false
}
