// Package vthread implements the cooperative virtual-threading substrate on
// which all systematic concurrency testing (SCT) in this repository runs.
//
// Programs are written against an explicit API: virtual threads are spawned
// with Spawn, synchronise through Mutex/Cond/Sem/Barrier, and share state
// through IntVar/Atomic/Array objects. A World executes a program with
// concurrency fully serialised: exactly one virtual thread runs at a time,
// and at every visible operation (§2 of Thomson et al., PPoPP'14) a pluggable
// Chooser decides which enabled thread performs the next step. Executions are
// deterministic given the sequence of choices, which is what makes stateless
// model checking — repeated execution under different schedules — possible.
//
// The substrate corresponds to the modified Maple tool of the paper: Maple
// serialises pthread programs via PIN instrumentation; we serialise virtual
// threads via channel-gated goroutines, because the Go runtime scheduler
// cannot be hooked. The visible-operation model, enabledness semantics,
// deadlock detection and schedule accounting follow the paper's §2 directly.
package vthread

import (
	"fmt"
	"sync"

	"sctbench/internal/sched"
)

// ThreadID identifies a virtual thread within one execution. Threads are
// numbered in creation order starting from 0 (the initial thread), exactly
// as the delay-bounding definition in the paper requires.
type ThreadID = sched.ThreadID

// NoThread is the sentinel used before any thread has run.
const NoThread = sched.NoThread

// Program is the body of the initial thread (thread 0) of an execution.
type Program func(t *Thread)

// Context describes one scheduling point: the state a Chooser sees when it
// must pick the next thread to run.
type Context struct {
	// Step is the index of this scheduling point in the execution (0-based).
	Step int
	// Enabled lists the enabled threads in ascending ThreadID order. It is
	// never empty and must not be mutated.
	Enabled []ThreadID
	// Last is the thread that executed the previous step, or NoThread at the
	// first step.
	Last ThreadID
	// LastEnabled reports whether Last is currently enabled (i.e. whether
	// switching away from it would be a preemptive context switch).
	LastEnabled bool
	// NumThreads is the number of threads created so far (ids 0..NumThreads-1).
	// At a case-decision point (SelectOf != NoThread) it is instead the
	// select's total case count, so sched.CanonicalOrder arithmetic over
	// Enabled works unchanged.
	NumThreads int
	// PendingOf reports what operation a thread is about to perform —
	// enough for idiom-driven active scheduling (the Maple algorithm) to
	// steer particular accesses. Valid for any non-exited thread. At a
	// case-decision point it maps a *case index* to that case's footprint
	// (the one channel the case touches) instead.
	PendingOf func(ThreadID) PendingInfo

	// SelectOf distinguishes the two kinds of scheduling point. NoThread
	// (the overwhelmingly common value) marks an ordinary thread choice.
	// Otherwise this is a case-decision point: the thread SelectOf has been
	// granted a multi-way Select with several ready cases, Enabled lists
	// the ready *case indices* (ascending) rather than thread ids, and the
	// Chooser's pick selects which case commits. Case-decision Contexts
	// carry Last = NoThread and NumThreads = the select's case count, so
	// canonical-order and cost arithmetic stay valid (every case pick has
	// preemption and delay cost zero). Choosers that interpret Enabled as
	// thread ids (priority or pending-op driven ones) must branch on this
	// field.
	SelectOf ThreadID

	// world backs Abort. A Context is only valid during the Choose (or
	// ObserveForcedStep) call it was built for, which is what makes the
	// pointer safe to embed.
	world *World
}

// Abort requests that the execution stop at this scheduling point instead
// of performing another step. The World kills every remaining thread
// through the ordinary teardown path (kill-by-grant, so pooled Executor
// workers survive and the Executor stays reusable) and returns an Outcome
// with Aborted set: no further step is executed, the Trace holds exactly
// the prefix executed so far, and Failure is nil. The thread id the
// Chooser returns from the same Choose call is ignored (it may be any
// value, enabled or not).
//
// Abort is the pruning hook of the exploration engines: a chooser that can
// prove the remainder of the execution redundant (for example because
// every enabled thread is in a sleep set) cuts the run short rather than
// paying for the schedule's tail. Calling Abort more than once within a
// Choose call is idempotent; calling it at step 0 aborts before any step
// runs (empty trace). ObserveForcedStep may abort under the same
// contract. A Context must not be retained: Abort outside the Choose (or
// ObserveForcedStep) invocation the Context was passed to is unsupported.
func (c Context) Abort() {
	c.world.aborted = true
}

// PendingInfo describes a parked thread's next visible operation: enough
// for idiom-driven active scheduling (the Maple algorithm) to steer
// particular accesses, and for partial-order reduction to judge
// independence of pending operations.
type PendingInfo struct {
	// IsAccess reports a promoted shared-memory access.
	IsAccess bool
	// Key is the accessed variable's key (empty unless IsAccess).
	Key string
	// IsWrite distinguishes stores from loads (meaningful only when
	// IsAccess).
	IsWrite bool
	// Objects lists the shared objects the operation touches: none for
	// spawn, one for most synchronisation ops, two for a condvar wait
	// (the condvar and the mutex), N for a multi-way Select (every member
	// channel — readiness depends on all of them, so a select commutes
	// with nothing touching any of its channels).
	Objects Footprint
	// ReadOnly reports that the operation does not modify its objects
	// (a load, a read-lock). Two read-only operations on the same object
	// commute.
	ReadOnly bool
	// Opaque reports that the operation's footprint is unknown: a Yield
	// gates arbitrary invisible statements (the figure-1 idiom models
	// plain-variable accesses exactly this way), so nothing can be proven
	// about what commutes with it. An opaque operation is never
	// independent of anything, other opaque operations and footprint-free
	// operations included.
	Opaque bool
	// IsJoin marks a thread join, and JoinOf is then the joined thread's
	// id (undefined otherwise). Exits are not scheduling points, so a
	// joined thread's steps never touch the join's thread-key object;
	// partial-order reduction needs this field to recover the
	// target-exits-before-join ordering edge.
	IsJoin bool
	JoinOf ThreadID
}

// Independent reports whether two pending operations commute: they touch
// disjoint objects, or share objects only read-only, and neither has an
// unknown (Opaque) footprint. Conservative in the partial-order-reduction
// sense: "false" is always safe.
func (a PendingInfo) Independent(b PendingInfo) bool {
	if a.Opaque || b.Opaque {
		return false
	}
	if a.ReadOnly && b.ReadOnly {
		return true
	}
	return !a.Objects.Overlaps(b.Objects)
}

// Chooser selects the next thread to execute at a scheduling point. The
// returned id must be an element of ctx.Enabled; the World panics otherwise,
// since a chooser violating this invariant is an implementation bug, not a
// property of the program under test. The one exception: a Choose call
// that invoked ctx.Abort may return anything — the execution stops at this
// point and the value is ignored (see Context.Abort).
//
// Goroutine migration: Choose is always called with the baton held (never
// from two goroutines at once), but not always from the same goroutine —
// the hot path runs it inline on the goroutine of the virtual thread that
// just finished a step (see doc.go, "Step handoff protocol"). The channel
// operations that pass the baton provide the happens-before edges, so a
// chooser needs no locking; it only must not assume goroutine identity.
type Chooser interface {
	Choose(ctx Context) ThreadID
}

// StepObserver is the opt-in capability interface of the forced-step fast
// path. When exactly one thread is enabled at a scheduling point there is
// no decision to make; if the Chooser also implements StepObserver, the
// World skips the Choose call entirely and grants that thread directly,
// invoking ObserveForcedStep instead so the chooser can keep its per-step
// bookkeeping (replay cursors, search-tree nodes, pending-operation
// footprints) bit-identical to a run with the fast path off. The Context
// is exactly what Choose would have received — ctx.Enabled has length 1
// and ctx.Enabled[0] is the thread about to run — and ObserveForcedStep
// may call ctx.Abort() under the usual abort contract. The forced step is
// still appended to the trace, still accounted in PC/DC/SchedPoints, and
// still delivers its events to the EventSink when it executes.
//
// Choosers whose Choose call has side effects that must happen at every
// scheduling point can either replicate them here (see NewRandom, which
// consumes the one random draw Choose would have) or simply not implement
// the interface, in which case they are consulted at every point as
// always.
type StepObserver interface {
	ObserveForcedStep(ctx Context)
}

// ChooserFunc adapts a function to the Chooser interface.
type ChooserFunc func(ctx Context) ThreadID

// Choose calls f(ctx).
func (f ChooserFunc) Choose(ctx Context) ThreadID { return f(ctx) }

// EventSink observes the synchronisation and memory-access events of an
// execution. It is how the dynamic race detector (internal/race) watches a
// run. All callbacks happen on the single executing thread; implementations
// need no locking.
type EventSink interface {
	// Access reports a shared-memory access to the variable identified by
	// key. write distinguishes stores from loads.
	Access(t ThreadID, key string, write bool)
	// Acquire reports an acquire-side synchronisation on the object key
	// (mutex lock, semaphore P, condvar wakeup, barrier exit, join).
	Acquire(t ThreadID, key string)
	// Release reports a release-side synchronisation on the object key
	// (mutex unlock, semaphore V, condvar signal, barrier entry, exit).
	Release(t ThreadID, key string)
	// Spawned reports creation of a child thread by parent.
	Spawned(parent, child ThreadID)
}

// Options configures a World.
//
// Concurrency contract: a World and everything wired into it (the Chooser,
// the Sink) are confined to one execution at a time — none of them is
// ever called from two goroutines at once, so implementations need no
// locking. They are not confined to one *goroutine*: the hot path runs
// the Chooser on the granted virtual thread's goroutine, and the Sink has
// always been called from thread goroutines; the baton-passing channel
// operations provide the happens-before edges (see doc.go, "Step handoff
// protocol"). Distinct Worlds share no state (the package has no mutable
// globals), so running one World per driver goroutine is safe; that is
// exactly how the parallel exploration driver uses this package. The one
// shared input is the Program value itself: with concurrent Worlds it is
// invoked concurrently and must confine all state to the invocation.
type Options struct {
	// Chooser picks the next thread at every scheduling point. Required.
	Chooser Chooser
	// Visible, when non-nil, restricts which shared variables yield
	// scheduling points: an IntVar/Array access is a visible operation only
	// if Visible(key) is true. Synchronisation operations and Atomics are
	// always visible. A nil Visible treats every shared access as visible
	// (used by the race-detection phase).
	Visible func(key string) bool
	// Sink, when non-nil, observes synchronisation and access events.
	Sink EventSink
	// MaxSteps bounds the number of visible operations in one execution as a
	// livelock guard. Zero means DefaultMaxSteps.
	MaxSteps int
	// BoundsCheck enables the out-of-bounds access detector on Array objects
	// (§4.2 of the paper). When false, out-of-bounds accesses are silently
	// dropped, modelling the paper's observation that such bugs "do not
	// always cause a crash" and are missed without additional checking.
	BoundsCheck bool
	// Debug holds the kill switches for the scheduling fast paths. The
	// zero value (all paths on) is correct for every production use;
	// equivalence tests flip individual switches to prove that the fast
	// and slow paths produce bit-identical executions.
	Debug Debug
}

// Debug bundles the substrate's fast-path kill switches. Disabling a path
// changes only how control is transferred between goroutines (and
// therefore speed), never which thread runs a step: a run with any
// combination of switches produces the identical trace, Outcome and
// Failure as a run with none, which is what the fast-path equivalence
// tests assert.
type Debug struct {
	// NoInlineStep disables same-thread continuation: even when the
	// scheduling decision picks the thread that is already running, the
	// grant is routed through the exec goroutine instead of simply
	// returning into the thread's body.
	NoInlineStep bool
	// NoForcedStep disables forced-step fast-forward: the Chooser is
	// consulted at scheduling points with exactly one enabled thread even
	// when it implements StepObserver.
	NoForcedStep bool
	// NoDirectHandoff disables direct thread-to-thread baton passing:
	// cross-thread grants bounce through the exec goroutine, reproducing
	// the two context switches per step of the pre-fast-path protocol.
	NoDirectHandoff bool
	// NoFlatEngine disables the goroutine-free flat engine for
	// CompiledPrograms: the program runs through the blocking bridge on the
	// reference engine instead (counted in StepStats.FlatFallbacks). Like
	// the other switches this changes only how steps are dispatched, never
	// which thread runs one — the equivalence tests flip it to prove the
	// two engines bit-identical.
	NoFlatEngine bool
}

// StepStats counts how scheduling decisions and grants were dispatched,
// cumulative over the life of a World or Executor. InlineSteps,
// DirectHandoffs and Bounces partition the grants by transfer route;
// ForcedSteps counts decisions (a forced step's grant is also counted in
// one of the route fields, usually InlineSteps).
type StepStats struct {
	// InlineSteps counts same-thread continuations: the decision picked
	// the thread that was already running, so control never left its
	// goroutine (zero context switches).
	InlineSteps int64
	// ForcedSteps counts scheduling points fast-forwarded because exactly
	// one thread was enabled and the chooser opted in via StepObserver:
	// the step was granted without a Choose call.
	ForcedSteps int64
	// DirectHandoffs counts cross-thread baton passes: the finishing
	// thread granted the next one gate-to-gate (one context switch).
	DirectHandoffs int64
	// Bounces counts grants routed through the exec goroutine (two
	// context switches): the initial grant of every execution, and every
	// grant suppressed by a Debug kill switch.
	Bounces int64
	// FlatSteps counts steps dispatched by the flat engine: a granted
	// operation performed as a direct function call into the thread's
	// interpreter — zero goroutine switches by construction, so flat steps
	// appear in none of the transfer-route fields above.
	FlatSteps int64
	// FlatFallbacks counts runs of a CompiledProgram that were routed to
	// the reference engine instead of the flat engine (Debug.NoFlatEngine).
	FlatFallbacks int64
}

// DefaultMaxSteps is the per-execution visible-operation budget used when
// Options.MaxSteps is zero.
const DefaultMaxSteps = 200000

// Outcome summarises one terminated execution.
type Outcome struct {
	// Failure is nil for a clean terminal execution and non-nil when the
	// execution exposed a bug (deadlock, assertion failure, crash, …).
	Failure *Failure
	// Trace is the executed schedule: the thread chosen at each scheduling
	// point, in order. A World-produced Outcome owns its trace; an
	// Executor-produced Outcome's trace aliases a buffer the next run
	// rewrites, so retaining callers must Clone it (see Executor).
	Trace sched.Schedule
	// PC and DC are the preemption count and delay count of Trace, computed
	// online with the paper's §2 definitions.
	PC, DC int
	// SchedPoints is the number of scheduling points at which more than one
	// choice existed: thread points with more than one enabled thread (the
	// paper's "# max scheduling points" is the max of this over all
	// executions of a benchmark) plus case-decision points (which always
	// have at least two ready cases by construction).
	SchedPoints int
	// SelectPoints is the number of case-decision scheduling points: a
	// Select granted with two or more ready cases contributes one (and one
	// extra trace entry recording the committed case index). Selects that
	// had nothing to decide — zero or one ready case — contribute none.
	SelectPoints int
	// TimerPoints is the number of timer-firing steps executed: trace
	// entries naming the clock pseudo-thread. Like SelectPoints and
	// SchedPoints it is recomputed from zero every run, so an Executor
	// never carries a previous run's counters (tested).
	TimerPoints int
	// MaxEnabled is the largest number of simultaneously enabled threads
	// observed at any scheduling point.
	MaxEnabled int
	// Threads is the total number of threads created, the clock
	// pseudo-thread included when the program armed any timer.
	Threads int
	// StepLimitHit reports that the execution was cut off by MaxSteps; such
	// executions are not terminal schedules and their Failure is nil.
	StepLimitHit bool
	// Aborted reports that the Chooser cut the execution short with
	// Context.Abort. Like step-limited runs, aborted runs are not terminal
	// schedules and their Failure is nil; Trace holds the executed prefix.
	Aborted bool
}

// Buggy reports whether the execution exposed a bug.
func (o *Outcome) Buggy() bool { return o.Failure != nil }

type parkKind int

const (
	parkPending parkKind = iota // parked at the next visible operation
	parkExited                  // thread body returned
	parkFailed                  // thread reported a failure; execution aborts
	// parkBounce asks the exec goroutine to perform the grant recorded in
	// w.bounce: the slow handoff route used for the initial grant's
	// siblings under the Debug kill switches (see World.dispatch).
	parkBounce
	// parkDone reports the execution over (terminal, deadlock, failure,
	// step limit, abort, or a captured scheduling panic): the baton
	// returns to the exec goroutine for teardown.
	parkDone
)

// World is a single execution of a Program. A World must not be reused:
// create a fresh World for every execution, or use an Executor, which is a
// resettable World that recycles its thread goroutines and buffers across
// executions.
type World struct {
	opts Options
	pool *Executor // non-nil when owned by an Executor: threads are pooled

	threads []*Thread
	last    ThreadID
	trace   sched.Schedule
	pc, dc  int

	schedPoints int
	maxEnabled  int
	selPoints   int
	timerPoints int

	// clk is the virtual-time state: the timer table, the virtual now and
	// the clock pseudo-thread (see timer.go).
	clk clock

	failure      *Failure
	stepLimitHit bool
	aborted      bool

	parked chan parkKind
	wg     sync.WaitGroup

	// bounce is the thread the exec goroutine must grant after receiving
	// parkBounce; schedPanic is a panic captured from a scheduling
	// decision that ran on a virtual thread's goroutine, rethrown by exec
	// on the Run caller's goroutine. Both are baton-protected.
	bounce     *Thread
	schedPanic any

	// forcedObs is opts.Chooser's StepObserver capability, type-asserted
	// once per run (nil when the chooser does not opt in).
	forcedObs StepObserver

	stats StepStats

	enabledBuf []ThreadID
	// pendingFn is w.pendingOf bound once; building the method value at
	// every scheduling point would allocate a closure per step. casePendFn
	// is the case-decision counterpart (w.casePendingOf), reading the
	// select being resolved from caseSel.
	pendingFn  func(ThreadID) PendingInfo
	casePendFn func(ThreadID) PendingInfo

	// readyBuf is the reused ready-case buffer of resolveSelect; caseSel is
	// the select op being resolved, set only for the duration of its
	// case-decision Choose call (baton-protected, like every World field).
	readyBuf []ThreadID
	caseSel  *selectOp

	// names and keys cache the per-id display names ("T0", …) and
	// sync-object keys ("thread/0", …). Ids repeat across the executions of
	// an Executor, so the formatting cost is paid once per id, not per run.
	names []string
	keys  []string

	running bool
}

// NewWorld creates a single-use execution context with the given options.
func NewWorld(opts Options) *World {
	if opts.Chooser == nil {
		panic("vthread: Options.Chooser is required")
	}
	w := &World{}
	w.init(opts)
	return w
}

// init sets up the invariant parts of a World; shared by NewWorld and
// NewExecutor (which validates the Chooser per run instead).
func (w *World) init(opts Options) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	w.opts = opts
	w.last = NoThread
	w.parked = make(chan parkKind, 1)
	w.pendingFn = w.pendingOf
	w.casePendFn = w.casePendingOf
}

// reset prepares the World for another execution. Only an Executor resets a
// World; the thread pool, trace capacity, enabled buffer and name caches
// survive the reset.
func (w *World) reset() {
	w.threads = w.threads[:0]
	w.last = NoThread
	w.trace = w.trace[:0]
	w.pc, w.dc = 0, 0
	w.schedPoints, w.maxEnabled = 0, 0
	w.selPoints = 0
	w.timerPoints = 0
	w.clk.reset()
	w.caseSel = nil
	w.failure = nil
	w.stepLimitHit = false
	w.aborted = false
	w.bounce = nil
	w.schedPanic = nil
}

// Run executes program to a terminal state (all threads exited), a failure,
// or the step limit, and returns the outcome. Run must be called exactly once
// per World. It returns only after every virtual thread's body has finished
// (exited or unwound), so nothing touches the program's state afterwards.
// The returned Outcome and its Trace are owned by the caller: a single-use
// World never writes to them again. A single-use World always runs the
// blocking reference engine: a *CompiledProgram is bridged via AsProgram
// (trace-identical to its flat execution under an Executor).
func (w *World) Run(program Runnable) *Outcome {
	if w.running {
		panic("vthread: World.Run called twice")
	}
	w.running = true

	w.exec(AsProgram(program))

	out := &Outcome{}
	w.fillOutcome(out)
	return out
}

// exec is the execution driver shared by World.Run and Executor runs. It
// seeds thread 0, makes the first scheduling decision on the calling
// goroutine, and then waits for the baton to come back: every later
// decision runs inline on the goroutine of the virtual thread that just
// finished a step (see doc.go, "Step handoff protocol"), so the common
// step costs zero goroutine switches (same-thread continuation) or one
// (direct thread-to-thread handoff). The round trip through w.parked
// survives only for the initial grant, the Debug slow routes, and the
// end-of-execution notification.
func (w *World) exec(program Program) {
	w.forcedObs, _ = w.opts.Chooser.(StepObserver)
	w.newThread(program)

	next := w.nextStep() // first decision: a chooser panic propagates directly
	for next != nil {
		w.stats.Bounces++
		next.grant()
		if <-w.parked != parkBounce {
			break
		}
		next = w.bounce
	}
	if p := w.schedPanic; p != nil {
		// A scheduling decision running on a virtual thread's goroutine
		// panicked (chooser bug, invalid choice, reentrant run). Rethrow on
		// the Run caller's goroutine, where the pre-baton protocol raised
		// it. No teardown: the execution is abandoned mid-flight, exactly
		// as when the central loop unwound (the Executor is then unusable
		// by the documented panic contract).
		w.schedPanic = nil
		panic(p)
	}
	w.abortRemaining()
	w.wg.Wait()
}

// nextStep runs scheduling decisions until one grants a program thread:
// termination checks, accounting, the forced-step fast path or the
// chooser — and, when the decision picks the clock pseudo-thread, the
// timer fire itself, performed inline before looping to the next decision
// (the clock has no goroutine to grant; see timer.go). It returns the
// thread to grant, or nil when the execution is over (terminal, deadlock,
// failure, step limit, or chooser abort). Runs on whichever goroutine
// holds the baton.
func (w *World) nextStep() *Thread {
	for {
		// A failure may have been reported by the previous step's thread or,
		// via Spawn's eager prefix execution, by a child it created.
		if w.failure != nil {
			return nil
		}
		enabled := w.enabledThreads()
		if len(enabled) == 0 {
			w.finishIdle()
			return nil
		}
		if len(w.trace) >= w.opts.MaxSteps {
			w.stepLimitHit = true
			return nil
		}
		// Scheduling-point statistics strictly after the step-limit check: a
		// step-limited run must not count a scheduling point at which no step
		// executed.
		if len(enabled) > 1 {
			w.schedPoints++
		}
		if len(enabled) > w.maxEnabled {
			w.maxEnabled = len(enabled)
		}

		var choice ThreadID
		if len(enabled) == 1 && w.forcedObs != nil && !w.opts.Debug.NoForcedStep {
			// Forced-step fast-forward: a single enabled thread leaves nothing
			// to decide, and the chooser opted in to not being asked.
			choice = enabled[0]
			w.forcedObs.ObserveForcedStep(w.makeContext(enabled))
			if w.aborted {
				return nil
			}
			w.stats.ForcedSteps++
		} else {
			choice = w.choose(enabled)
			if w.aborted {
				return nil
			}
		}
		t := w.threads[choice]
		if t.isClock {
			// A clock step: account it like any thread step (it occupies a
			// trace entry and costs preemptions/delays by the ordinary
			// arithmetic), fire the due timer inline on this goroutine, and
			// continue to the next decision — no baton transfer, because
			// the clock has no goroutine.
			w.accountStep(choice, enabled)
			w.last = choice
			w.fireTimer()
			continue
		}
		casePick := NoThread
		if t.pending.kind == opSelect {
			var ok bool
			if casePick, ok = w.resolveSelect(t); !ok {
				// Aborted at the case-decision point: nothing was accounted, so
				// the trace holds exactly the executed prefix.
				return nil
			}
		}
		w.accountStep(choice, enabled)
		if casePick != NoThread {
			// The case-decision entry: trace position step+1, cost zero under
			// both schedule-cost models (no thread switched).
			w.trace = append(w.trace, casePick)
		}
		w.last = choice
		return t
	}
}

// resolveSelect decides which case of t's granted Select commits, writing
// the pick into the select op for t to act on. With two or more ready
// cases this is a case-decision scheduling point: the Chooser picks among
// the ready case indices and the pick is returned for the trace (it
// occupies the position right after t's own entry). With zero (default
// fires) or one ready case there is nothing to decide and NoThread is
// returned. ok is false when the Chooser aborted at the decision point.
func (w *World) resolveSelect(t *Thread) (pick ThreadID, ok bool) {
	sel := t.pending.sel
	ready := w.readyBuf[:0]
	for i := range sel.cases {
		if sel.cases[i].ready() {
			ready = append(ready, ThreadID(i))
		}
	}
	w.readyBuf = ready
	switch len(ready) {
	case 0:
		// Only reachable with a default (the op is disabled otherwise).
		sel.pick = DefaultCase
		return NoThread, true
	case 1:
		sel.pick = int(ready[0])
		return NoThread, true
	}
	w.schedPoints++
	w.selPoints++
	w.caseSel = sel
	choice := w.opts.Chooser.Choose(w.makeCaseContext(t, ready))
	w.caseSel = nil
	if w.aborted {
		return NoThread, false
	}
	if !containsThread(ready, choice) {
		panic(fmt.Sprintf("vthread: chooser picked select case %d which is not ready %v", choice, ready))
	}
	sel.pick = int(choice)
	return choice, true
}

// makeCaseContext builds the Context of a case-decision point: Enabled
// holds the ready case indices, Last is NoThread and NumThreads the
// select's case count so canonical-order and cost arithmetic hold (every
// pick costs zero), and PendingOf maps case indices to per-case
// footprints.
func (w *World) makeCaseContext(t *Thread, ready []ThreadID) Context {
	return Context{
		Step:       len(w.trace) + 1, // right after the granted thread's entry
		Enabled:    ready,
		Last:       NoThread,
		NumThreads: len(t.pending.sel.cases),
		PendingOf:  w.casePendFn,
		SelectOf:   t.id,
		world:      w,
	}
}

// continueFrom runs the scheduler on t's goroutine after t parked at its
// next visible operation. It returns when t is granted again — immediately
// on the same-thread fast path — and unwinds via killSignal when the
// execution is torn down before that.
func (w *World) continueFrom(t *Thread) {
	next, ok := w.threadSideStep()
	if ok && next == t && !w.opts.Debug.NoInlineStep {
		// Same-thread continuation: the running thread keeps the baton and
		// proceeds straight into its granted operation. Zero switches.
		w.stats.InlineSteps++
		return
	}
	w.dispatch(t, next, ok)
	t.awaitGrant()
}

// exitFrom runs the scheduler on the goroutine of a thread whose body just
// returned; the exiting thread passes the baton on and its goroutine goes
// back to the pool (or exits, for a one-shot World).
func (w *World) exitFrom() {
	next, ok := w.threadSideStep()
	w.dispatch(nil, next, ok)
}

// dispatch hands the baton onward from cur's goroutine (cur is nil for an
// exited thread): directly to next's gate, through the exec goroutine when
// a Debug switch demands it or when next is cur itself (a goroutine cannot
// rendezvous with its own unbuffered gate), or back to exec when the
// execution is over.
func (w *World) dispatch(cur, next *Thread, ok bool) {
	switch {
	case !ok || next == nil:
		w.parked <- parkDone
	case next == cur || w.opts.Debug.NoDirectHandoff:
		w.bounce = next
		w.parked <- parkBounce
	default:
		w.stats.DirectHandoffs++
		next.grant()
	}
}

// threadSideStep is nextStep for decisions running on a virtual thread's
// goroutine: panics out of the chooser (or the enabledness validation) are
// captured into w.schedPanic so exec can rethrow them on the Run caller's
// goroutine, preserving the panic contract of the central-loop protocol.
// ok is false when a panic was captured.
func (w *World) threadSideStep() (next *Thread, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			w.schedPanic = r
			next, ok = nil, false
		}
	}()
	return w.nextStep(), true
}

// StepStats reports how this World's steps were dispatched, cumulative
// across the executions it has run (one for a plain World, many under an
// Executor). Purely diagnostic: benchmarks and fast-path tests read it;
// nothing in the substrate does.
func (w *World) StepStats() StepStats { return w.stats }

// fillOutcome writes the execution's summary into out. The Trace field
// aliases w.trace; the caller decides whether that buffer is single-use
// (World) or recycled (Executor).
func (w *World) fillOutcome(out *Outcome) {
	*out = Outcome{
		Failure:      w.failure,
		Trace:        w.trace,
		PC:           w.pc,
		DC:           w.dc,
		SchedPoints:  w.schedPoints,
		SelectPoints: w.selPoints,
		TimerPoints:  w.timerPoints,
		MaxEnabled:   w.maxEnabled,
		Threads:      len(w.threads),
		StepLimitHit: w.stepLimitHit,
		Aborted:      w.aborted,
	}
}

// makeContext builds the Context for the current scheduling point.
func (w *World) makeContext(enabled []ThreadID) Context {
	return Context{
		Step:        len(w.trace),
		Enabled:     enabled,
		Last:        w.last,
		LastEnabled: w.lastEnabled(enabled),
		NumThreads:  len(w.threads),
		PendingOf:   w.pendingFn,
		SelectOf:    NoThread,
		world:       w,
	}
}

// choose consults the chooser and validates its decision.
func (w *World) choose(enabled []ThreadID) ThreadID {
	choice := w.opts.Chooser.Choose(w.makeContext(enabled))
	if w.aborted {
		// The return value of an aborting Choose is ignored by contract;
		// skip the enabledness validation.
		return NoThread
	}
	if !containsThread(enabled, choice) {
		panic(fmt.Sprintf("vthread: chooser picked thread %d which is not enabled %v", choice, enabled))
	}
	return choice
}

// accountStep appends the choice to the trace and updates the online
// preemption and delay counts with the §2 definitions.
func (w *World) accountStep(choice ThreadID, enabled []ThreadID) {
	lastEnabled := w.lastEnabled(enabled)
	w.pc += sched.PCStep(w.last, lastEnabled, choice)
	w.dc += sched.DCStep(w.last, choice, len(w.threads), func(t ThreadID) bool {
		return containsThread(enabled, t)
	})
	w.trace = append(w.trace, choice)
}

func (w *World) lastEnabled(enabled []ThreadID) bool {
	return w.last != NoThread && containsThread(enabled, w.last)
}

// enabledThreads returns the enabled threads in ascending id order. The
// returned slice is reused across calls.
func (w *World) enabledThreads() []ThreadID {
	w.enabledBuf = w.enabledBuf[:0]
	for _, t := range w.threads {
		if t.state == stateParked && t.pending.enabled(w) {
			w.enabledBuf = append(w.enabledBuf, t.id)
		}
	}
	return w.enabledBuf
}

// finishIdle classifies the no-enabled-thread state: clean termination if
// every program thread exited, deadlock otherwise. The clock pseudo-thread
// never counts as blocked — a program that exits with timers still armed
// has leaked them, not deadlocked — but armed-yet-unfireable timers are
// named in the deadlock message, because "blocked on a stopped ticker" and
// "blocked forever" deserve different diagnoses even though both are
// deadlocks (a *fireable* timer would have kept the clock enabled and the
// execution running).
func (w *World) finishIdle() {
	var blocked []ThreadID
	for _, t := range w.threads {
		if t.isClock {
			continue
		}
		if t.state != stateExited {
			blocked = append(blocked, t.id)
		}
	}
	if len(blocked) > 0 && w.failure == nil {
		msg := fmt.Sprintf("deadlock: threads %v blocked with no enabled thread", blocked)
		if n := w.clk.armedCount(); n > 0 {
			msg += fmt.Sprintf(" (%d armed timer(s) can no longer fire)", n)
		}
		w.failure = &Failure{
			Kind:    FailDeadlock,
			Thread:  blocked[0],
			Message: msg,
		}
	}
}

// abortRemaining kills every thread that has not exited so its body
// unwinds. Called once the execution outcome is decided. Every non-exited
// thread is blocked in (or about to enter) awaitGrant, so the kill is a
// grant with killed set: the thread panics with killSignal out of the
// receive and unwinds without touching shared state or parking again.
// The gate is never closed — it is recycled by the Executor pool — and
// exec's wg.Wait observes the unwinding complete.
func (w *World) abortRemaining() {
	for _, t := range w.threads {
		if t.state == stateExited {
			continue
		}
		if t.isClock {
			// The clock pseudo-thread has no goroutine and no gate; there
			// is nothing to unwind.
			t.state = stateExited
			continue
		}
		t.killed = true
		t.state = stateExited
		t.gate <- struct{}{}
	}
}

// fail records the first failure of the execution.
func (w *World) fail(f *Failure) {
	if w.failure == nil {
		w.failure = f
	}
}

// pendingOf exposes pending-operation metadata to choosers.
func (w *World) pendingOf(t ThreadID) PendingInfo {
	if int(t) < 0 || int(t) >= len(w.threads) {
		return PendingInfo{}
	}
	op := w.threads[t].pending
	info := PendingInfo{}
	switch op.kind {
	case opAccess:
		info.IsAccess = true
		info.Key = op.key
		info.IsWrite = op.write
		info.Objects.add(op.key)
		info.ReadOnly = !op.write
	case opLock, opUnlock, opDestroy:
		info.Objects.add(op.mutex.key)
	case opCondWait, opCondResume:
		info.Objects.add(op.cond.key)
		info.Objects.add(op.mutex.key)
	case opSignal, opBroadcast:
		info.Objects.add(op.cond.key)
	case opSemP, opSemV:
		info.Objects.add(op.sem.key)
	case opBarrierArrive, opBarrierWait:
		info.Objects.add(op.barrier.key)
	case opJoin:
		info.Objects.add(op.target.key)
		info.ReadOnly = true
		info.IsJoin = true
		info.JoinOf = op.target.id
	case opAtomic:
		info.Objects.add(op.key)
	case opRLock, opRUnlock:
		info.Objects.add(op.rw.key)
		info.ReadOnly = true
	case opWLock, opWUnlock:
		info.Objects.add(op.rw.key)
	case opChanSend, opChanRecv, opChanTry, opChanClose:
		info.Objects.add(op.ch.key)
	case opSelect:
		// Readiness depends on every member channel and the commit mutates
		// one of them, so the footprint is the full member set — a select
		// commutes with nothing touching any of its channels. The key slice
		// was built once when the op was registered; the footprint aliases
		// it without copying.
		info.Objects = footprintOverKeys(op.sel.objs)
	case opWGAdd, opWGWait:
		info.Objects.add(op.wg.key)
	case opOnceDo, opOnceDone:
		info.Objects.add(op.once.key)
	case opTimerArm:
		// Arming reads the virtual now (deadline = now + d), so arms never
		// commute with fires — the shared clock key carries that edge.
		info.Objects.add(clockKey)
		info.Objects.add(op.timer.ch.key)
	case opTimerStop:
		// Stop only disarms: it does not read the now, so it commutes with
		// a fire unless that fire targets this very timer (whose channel
		// key the fire's footprint then carries).
		info.Objects.add(op.timer.ch.key)
	case opTimerFire:
		// The clock pseudo-thread's step: advances the virtual now, plus
		// the effect footprint of the specific timer due at this decision
		// point — its delivery channel, or the done keys of the context
		// subtree a deadline would cancel.
		info.Objects.add(clockKey)
		if v := w.clk.nextFireable(); v != nil {
			if v.kind == timerDeadline {
				ctxFootprint(v.ctx, &info)
			} else {
				info.Objects.add(v.ch.key)
			}
		}
	case opCtxNew:
		// Creation observes the parent's cancellation state and, for a
		// deadline context, reads the virtual now.
		if op.ctx.dl != nil {
			info.Objects.add(clockKey)
		}
		if op.ctx.parent != nil {
			info.Objects.add(op.ctx.parent.done.key)
		}
		info.Objects.add(op.ctx.done.key)
	case opCtxCancel:
		// Cancellation touches the whole subtree's done channels.
		ctxFootprint(op.ctx, &info)
	case opSpawn:
		// No shared objects: commutes with everything.
	case opYield:
		// A yield gates arbitrary invisible statements; its footprint is
		// unknown, so it commutes with nothing (see PendingInfo.Opaque).
		info.Opaque = true
	}
	return info
}

// casePendingOf is Context.PendingOf at a case-decision point: it maps a
// ready *case index* of the select being resolved to that case's
// footprint — the single channel the case would commit on.
func (w *World) casePendingOf(i ThreadID) PendingInfo {
	sel := w.caseSel
	if sel == nil || int(i) < 0 || int(i) >= len(sel.cases) {
		return PendingInfo{}
	}
	info := PendingInfo{}
	info.Objects.add(sel.cases[i].Chan.key)
	return info
}

func (w *World) isVisibleVar(key string) bool {
	if w.opts.Visible == nil {
		return true
	}
	return w.opts.Visible(key)
}

func containsThread(s []ThreadID, t ThreadID) bool {
	for _, x := range s {
		if x == t {
			return true
		}
	}
	return false
}
